(* Cholera under unpredictable rainfall (the paper's motivation [3]):
   the water-borne infection rate theta depends on rainfall, which
   varies in time with no usable model — only a range is known.

   The model is specified symbolically, so this example also shows the
   certified tool-chain: exact Jacobians for the Pontryagin bounds and
   interval-arithmetic differential hulls that are guaranteed, not
   sampled.

   Run with: dune exec examples/cholera_rainfall.exe *)
open Umf

let () =
  let p = Cholera.default_params in
  let s = Cholera.make p in
  let di = Cholera.di p in
  Printf.printf "water-borne infection rate theta in [%g, %g] (rainfall-driven)\n"
    (Interval.lo p.Cholera.theta) (Interval.hi p.Cholera.theta);
  Printf.printf "drift affine in theta: %b (vertex bang-bang controls exact)\n\n"
    (Model.affine_in_theta s);

  (* worst-case infected fraction over the first weeks *)
  print_endline "t\tworst-case infected (imprecise)\tbest-case";
  List.iter
    (fun t ->
      let hi =
        (Pontryagin.solve ~steps:250 di ~x0:Cholera.x0 ~horizon:t ~sense:`Max
           (`Coord 1))
          .Pontryagin.value
      in
      let lo =
        (Pontryagin.solve ~steps:250 di ~x0:Cholera.x0 ~horizon:t ~sense:`Min
           (`Coord 1))
          .Pontryagin.value
      in
      Printf.printf "%.1f\t%.4f\t\t\t\t%.4f\n" t hi lo)
    [ 1.; 2.; 4.; 8. ];

  (* certified hull: guaranteed envelope for all three state variables
     over the early outbreak (like all rectangular hulls it loosens
     over long horizons — see Figure 4 of the paper) *)
  let h =
    Certified.hull_bounds ~clip:Cholera.state_clip s ~x0:Cholera.x0 ~horizon:2.
      ~dt:0.01
  in
  let lo = Hull.lower_at h 2. and hi = Hull.upper_at h 2. in
  Printf.printf
    "\ncertified 2-week envelope (interval arithmetic, guaranteed):\n\
    \  S in [%.3f, %.3f], I in [%.3f, %.3f], W in [%.3f, %.3f]\n"
    lo.(0) hi.(0) lo.(1) hi.(1) lo.(2) hi.(2);

  (* what sanitation does: a higher bacterial decay rate delta *)
  print_endline "\nsanitation study: worst-case infected at t=8 vs decay rate";
  List.iter
    (fun delta ->
      let di' = Cholera.di { p with Cholera.delta } in
      let worst =
        (Pontryagin.solve ~steps:250 di' ~x0:Cholera.x0 ~horizon:8. ~sense:`Max
           (`Coord 1))
          .Pontryagin.value
      in
      Printf.printf "delta = %.1f\t->\t%.4f\n" delta worst)
    [ 0.5; 1.; 2.; 4. ];

  (* validate against a finite community: the infected level at week 8
     under a seasonal rainfall pattern stays within the imprecise bounds *)
  let model = Cholera.model p in
  let rng = Rng.create 11 in
  let monsoon =
    Policy.feedback "monsoon" (fun t _x ->
        (* alternating dry/wet seasons *)
        if Float.rem t 4. < 2. then [| Interval.lo p.Cholera.theta |]
        else [| Interval.hi p.Cholera.theta |])
  in
  let acc = Stats.Running.create () in
  for _ = 1 to 20 do
    let x = Ssa.final model ~n:2000 ~x0:Cholera.x0 ~policy:monsoon ~tmax:8. rng in
    Stats.Running.add acc x.(1)
  done;
  let bound sense =
    (Pontryagin.solve ~steps:250 di ~x0:Cholera.x0 ~horizon:8. ~sense (`Coord 1))
      .Pontryagin.value
  in
  Printf.printf
    "\nseasonal simulation (N = 2000): infected at week 8 = %.4f +/- %.4f,\n\
     inside the imprecise envelope [%.4f, %.4f]\n"
    (Stats.Running.mean acc) (Stats.Running.std acc) (bound `Min) (bound `Max)
