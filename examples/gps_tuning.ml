(* Robust capacity planning for a shared machine (Sec. VI-C): choose
   the GPS weight phi1 so that the worst-case total backlog — over
   every possible time-varying arrival-rate pattern — is minimised.

   Run with: dune exec examples/gps_tuning.exe *)
open Umf

let worst_total_queue p phi1 =
  let di = Gps.map_di (Gps.with_phi1 p phi1) in
  (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_map ~horizon:10. ~sense:`Max
     (`Linear [| 1.; 0.; 1.; 0. |]))
    .Pontryagin.value

let () =
  let p = Gps.default_params in
  Printf.printf
    "two job classes on one machine: mu = (%.0f, %.0f), arrival rates\n\
     imprecise in [%g, %g] and [%g, %g]; tuning the GPS weight phi1\n\n"
    p.Gps.mu1 p.Gps.mu2 (Interval.lo p.Gps.lambda1) (Interval.hi p.Gps.lambda1)
    (Interval.lo p.Gps.lambda2) (Interval.hi p.Gps.lambda2);
  print_endline "phi1\tworst-case Q1+Q2 at T=10";
  let phis = [ 0.5; 1.; 2.; 4.; 6.; 9.; 14.; 20. ] in
  let values = List.map (fun f -> (f, worst_total_queue p f)) phis in
  List.iter (fun (f, v) -> Printf.printf "%.1f\t%.4f\n" f v) values;
  let best_phi, best_v =
    List.fold_left
      (fun (bf, bv) (f, v) -> if v < bv then (f, v) else (bf, bv))
      (1., infinity) values
  in
  (* refine around the grid optimum with golden-section search *)
  let refined, refined_v =
    Optim.golden_section_min ~tol:0.2
      (fun f -> worst_total_queue p f)
      (Float.max 0.5 (best_phi /. 2.))
      (best_phi *. 2.)
  in
  Printf.printf "\ngrid optimum phi1 = %.1f (Qbar = %.4f)\n" best_phi best_v;
  Printf.printf "refined optimum phi1 = %.1f (Qbar = %.4f)\n" refined refined_v;
  Printf.printf
    "=> prioritise the fast class roughly %.0fx; equal weights cost +%.0f%%\n"
    refined
    (100. *. ((List.assoc 1. values /. refined_v) -. 1.))
