(* Quickstart: define an imprecise population model from scratch and
   run the three analyses the library offers.

   The model: machines in a cluster fail at an imprecise rate
   theta_f in [0.1, 0.5] (the environment decides) and are repaired at
   a known rate 2.  How many machines can be down at time t, whatever
   the environment does?

   Run with: dune exec examples/quickstart.exe *)
open Umf

let () =
  (* 1. the model: one density variable D (fraction of machines down),
     one imprecise parameter theta_f.  Rates are symbolic expressions,
     so the library derives the drift, exact Jacobians and certified
     interval bounds from this single definition. *)
  let theta_box = Optim.Box.make [| 0.1 |] [| 0.5 |] in
  let x0 = [| 0.05 |] in
  let model =
    let open Expr in
    let tr name change rate = { Model.name; change; rate } in
    Model.make ~name:"cluster" ~var_names:[| "Down" |]
      ~theta_names:[| "fail_rate" |] ~theta:theta_box ~x0
      [
        tr "failure" [| 1. |]
          (theta 0 *: max_ (const 0.) (const 1. -: var 0));
        tr "repair" [| -1. |] (const 2. *: var 0);
      ]
  in

  (* 2. transient bounds in the imprecise scenario: the exact envelope
     of the mean-field differential inclusion, by Pontryagin.  One
     Analysis.spec names the model + horizon and is reused below. *)
  let spec = Analysis.spec ~horizon:5. model in
  let bounds = Analysis.transient_bounds spec ~x0 ~coord:0 in
  print_endline "t\tdown_min\tdown_max   (imprecise envelope, N -> inf)";
  Array.iteri
    (fun i t ->
      Printf.printf "%.1f\t%.4f\t%.4f\n" t bounds.Analysis.lower.(i)
        bounds.Analysis.upper.(i))
    bounds.Analysis.times;

  (* 3. compare with the uncertain scenario (failure rate constant but
     unknown): here the drift is monotone in theta, so the envelopes
     coincide *)
  let uspec = Analysis.spec ~scenario:(Analysis.Uncertain 11) ~horizon:5. model in
  let ub = Analysis.transient_bounds uspec ~x0 ~coord:0 in
  let lo_u = ub.Analysis.lower.(10) and hi_u = ub.Analysis.upper.(10) in
  let lo_i = bounds.Analysis.lower.(10) and hi_i = bounds.Analysis.upper.(10) in
  Printf.printf
    "\nat t=5: uncertain [%.4f, %.4f] vs imprecise [%.4f, %.4f]\n" lo_u hi_u
    lo_i hi_i;

  (* 4. a finite cluster: simulate N = 50 machines under an adversarial
     environment that fails machines hardest when few are down *)
  let adversary =
    Policy.feedback "adversary" (fun _t x ->
        if x.(0) < 0.1 then [| 0.5 |] else [| 0.1 |])
  in
  let rng = Rng.create 42 in
  let final =
    Ssa.final (Model.population model) ~n:50 ~x0 ~policy:adversary ~tmax:5. rng
  in
  Printf.printf "\nN=50 sample run under adversarial environment: %.0f%% down at t=5\n"
    (100. *. final.(0));
  let lo5 = bounds.Analysis.lower.(10) and hi5 = bounds.Analysis.upper.(10) in
  Printf.printf "mean-field envelope at t=5 was [%.1f%%, %.1f%%]\n" (100. *. lo5)
    (100. *. hi5)
