(* Designing a robust patching campaign (the paper's introductory
   motivation): the contact infection rate theta varies unpredictably in
   [1, 10].  We must pick a patch (recovery) rate b such that the
   long-run infected fraction stays below a safety threshold.

   Sizing against the UNCERTAIN model (theta constant but unknown) means
   checking the worst equilibrium over constant theta.  But a
   time-varying environment can sustain infection levels far above any
   constant-theta equilibrium (Fig. 3 of the paper): the IMPRECISE
   analysis is the sound design criterion.

   Run with: dune exec examples/sir_epidemic.exe *)
open Umf

(* worst long-run infected level over constant theta: the largest
   equilibrium along the uncertain curve *)
let worst_uncertain p =
  let di = Sir.di p in
  Uncertain.equilibria ~grid:11 di ~x0:Sir.x0
  |> List.fold_left (fun acc e -> Float.max acc e.(1)) 0.

(* worst long-run infected level of the imprecise model: the adversary
   times a dip-and-spike pattern to peak at the audit horizon, so the
   long-horizon Pontryagin bound reaches the top of the asymptotic set *)
let worst_imprecise p =
  let di = Sir.di p in
  (Pontryagin.solve ~steps:400 di ~x0:Sir.x0 ~horizon:25. ~sense:`Max
     (`Coord 1))
    .Pontryagin.value

let () =
  let base = Sir.default_params in
  let threshold = 0.12 in
  Printf.printf
    "contact rate imprecise in [%g, %g]; target: long-run infected < %.0f%%\n\n"
    base.Sir.theta_min base.Sir.theta_max (100. *. threshold);
  print_endline "patch rate b\tworst long-run x_I\t\t";
  print_endline "\t\tuncertain\timprecise";
  let rates = [ 5.; 6.; 7.; 8.; 10.; 12. ] in
  let rows =
    List.map
      (fun b ->
        let p = { base with Sir.b } in
        let wu = worst_uncertain p and wi = worst_imprecise p in
        Printf.printf "%.0f\t\t%.4f\t\t%.4f\n" b wu wi;
        (b, wu, wi))
      rates
  in
  let first_ok metric = List.find_opt (fun (_, wu, wi) -> metric wu wi <= threshold) rows in
  let b_unc =
    match first_ok (fun wu _ -> wu) with Some (b, _, _) -> b | None -> nan
  in
  let b_imp =
    match first_ok (fun _ wi -> wi) with Some (b, _, _) -> b | None -> nan
  in
  Printf.printf
    "\nsized against the UNCERTAIN model: b = %.0f looks sufficient.\n" b_unc;
  Printf.printf
    "sized against the IMPRECISE model: b = %.0f is actually needed.\n" b_imp;

  (* demonstrate the fragility: run the uncertain-safe design against an
     adversarial time-varying environment and watch it blow through the
     threshold *)
  let p_fragile = { base with Sir.b = b_unc } in
  Printf.printf
    "\nattack on the b = %.0f design (hysteresis environment, N = 2000):\n"
    b_unc;
  let model = Sir.make p_fragile in
  let spec = Analysis.spec ~horizon:100. model in
  let cloud =
    Analysis.stationary_cloud spec ~n:2000 ~x0:Sir.x0
      ~policy:(Sir.policy_theta1 p_fragile) ~warmup:10. ~samples:500 ~seed:7
  in
  let infected = Array.map (fun x -> x.(1)) cloud.Analysis.states in
  let q95 = Stats.quantile infected 0.95 in
  let recur = Stats.quantile infected 0.999 in
  Printf.printf
    "  stationary infected level: 95th pct %.4f, peak %.4f\n\
    \  (worst constant-theta equilibrium was %.4f, imprecise bound %.4f)\n"
    q95 recur
    (worst_uncertain p_fragile)
    (worst_imprecise p_fragile);
  if recur > worst_uncertain p_fragile then
    print_endline
      "  => the time-varying environment recurrently drives infection above\n\
      \    every constant-theta equilibrium; only the imprecise bound is safe."
