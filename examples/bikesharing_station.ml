(* Sizing a bike-sharing station (the paper's running example of
   Secs. II-III): demand rates vary with weather, events and transit
   disruptions, so we only know intervals for the pickup rate theta_a
   and return rate theta_r.  How likely is the station to be found
   empty, and how many racks make that risk acceptable whatever the
   environment does?

   Run with: dune exec examples/bikesharing_station.exe *)
open Umf

let () =
  let p = Bikesharing.default_params in
  Printf.printf
    "pickup rate in [%g, %g], return rate in [%g, %g] (bikes/hour)\n\n"
    (Interval.lo p.Bikesharing.arrival)
    (Interval.hi p.Bikesharing.arrival)
    (Interval.lo p.Bikesharing.return_)
    (Interval.hi p.Bikesharing.return_);

  (* exact imprecise bounds on the finite chain, per station size *)
  print_endline "capacity\tP(empty at t=8), worst case over environments";
  let horizon = 8. in
  List.iter
    (fun capacity ->
      let m = Bikesharing.ictmc p ~capacity in
      let h = Bikesharing.empty_indicator ~capacity in
      let hi =
        (Ctmc.Imprecise.fixed_series ~sense:`Upper m ~h ~times:[| horizon |])
          .values.(0)
      in
      (* start half full *)
      Printf.printf "%d\t\t%.4f\n" capacity hi.(capacity / 2))
    [ 4; 8; 12; 16; 24 ];

  (* the mean-field view for a large station *)
  let di = Bikesharing.di p in
  let lo =
    (Pontryagin.solve ~steps:200 di ~x0:[| 0.5 |] ~horizon:0.4 ~sense:`Min
       (`Coord 0))
      .Pontryagin.value
  in
  let hi =
    (Pontryagin.solve ~steps:200 di ~x0:[| 0.5 |] ~horizon:0.4 ~sense:`Max
       (`Coord 0))
      .Pontryagin.value
  in
  Printf.printf
    "\nlarge-station fluid limit: occupancy after 0.4 rescaled time units\n\
     can be anywhere in [%.2f, %.2f] of capacity\n" lo hi;

  (* simulate a small station under a rush-hour-like policy *)
  let m = Bikesharing.ictmc p ~capacity:12 in
  let rush ~t ~x:_ =
    if t < 3. then [| Interval.hi p.Bikesharing.arrival; Interval.lo p.Bikesharing.return_ |]
    else [| Interval.lo p.Bikesharing.arrival; Interval.hi p.Bikesharing.return_ |]
  in
  let rng = Rng.create 2 in
  let empty_runs = ref 0 in
  let runs = 1000 in
  for _ = 1 to runs do
    let path = Ctmc.Imprecise.simulate rng m rush ~x0:6 ~tmax:horizon in
    let hit_empty = ref false in
    Array.iter (fun s -> if s = 0 then hit_empty := true) path.Ctmc_path.states;
    if !hit_empty then incr empty_runs
  done;
  Printf.printf
    "\nrush-hour scenario on a 12-rack station: ran dry in %d/%d runs (%.1f%%)\n"
    !empty_runs runs
    (100. *. float_of_int !empty_runs /. float_of_int runs)
