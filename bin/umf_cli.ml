(* Command-line front end: analyse the bundled models without writing
   OCaml.

     umf_cli list
     umf_cli models
     umf_cli bounds --model sir --var I --horizon 4 --points 20
     umf_cli bounds --model sir --var I --scenario uncertain --jobs 4
     umf_cli bounds --model sir --var I --scenario pw:3
     umf_cli hull --model sir --horizon 10
     umf_cli steady --model sir
     umf_cli simulate --model sir --n 1000 --tmax 20 --policy theta1
     umf_cli simulate --model sir --n 1000 --reps 50 --jobs 0
     umf_cli ctmc transient --model sir -n 200 --horizon 5
     umf_cli ctmc stationary --model sir -n 100 --theta hi
     umf_cli ctmc bounds --model sir -n 100 --var I --scenario imprecise
     umf_cli ctmc bounds --model sir -n 100 --var I --scenario imprecise \
       --epsilon 1e-3 --metrics
     umf_cli ctmc bounds --model sir -n 2000 --var I --max-states 50000 \
       --truncation adaptive
     umf_cli ctmc first-passage --model sir -n 50 --var I --above 0.4 \
       --horizon 8 --epsilon 1e-3 --metrics
     umf_cli lint sir --tape
     umf_cli lint --all --tape --strict --json

   lint exit codes are part of the interface: 0 = clean, 1 = --strict
   with Warning-level findings, 2 = Error-level findings.  Model names
   parse through one shared cmdliner converter backed by
   {!Registry.find}, so every subcommand rejects an unknown model with
   the catalogue and a nearest-name suggestion.

   Every command pulls its model from {!Umf.Registry} — the CLI holds
   no model definitions of its own.  The registered [Model.t] carries
   everything a command needs: x0, the state clip box, named policies
   and the symbolic transitions the linter checks.

   --jobs (or UMF_JOBS) only changes wall-clock time, never results:
   parallel sweeps use per-task RNG streams split deterministically
   from the seed.

   The analysis commands accept --trace FILE (NDJSON stream of solver
   spans/counters/gauges) and --metrics (aggregate summary on stderr).
   Neither changes results; a run whose iterative solver failed to
   converge exits non-zero either way, reporting the iteration count
   from the same metrics. *)
open Umf
open Cmdliner

(* Models parse at the command line, not inside run bodies: every
   subcommand taking a model shares this converter, so an unknown name
   fails fast with the registry catalogue and a nearest-name suggestion
   (from {!Registry.find}) before any work starts. *)
let model_conv =
  let print fmt m = Format.pp_print_string fmt (Model.name m) in
  Arg.conv ~docv:"MODEL" (Registry.find, print)

let var_index m name =
  let names = Model.var_names m in
  let found = ref None in
  Array.iteri (fun i n -> if n = name then found := Some i) names;
  match !found with
  | Some i -> Ok i
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown variable %s (model has: %s)" name
             (String.concat ", " (Array.to_list names))))

let parse_scenario = function
  | "imprecise" -> Ok Scenario.Imprecise
  | "uncertain" -> Ok Scenario.Uncertain
  | s when String.length s > 3 && String.sub s 0 3 = "pw:" -> (
      match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
      | Some k when k >= 1 -> Ok (Scenario.Piecewise k)
      | _ -> Error (`Msg "pw:<k> needs a positive integer"))
  | s -> Error (`Msg (Printf.sprintf "unknown scenario %s" s))

(* --epsilon and --dt are rival tolerance contracts (certified-error
   target vs raw step); accepting both silently meant --dt was ignored
   on one command and half-honoured on another.  The combination is a
   hard command-line error (exit code 124, like any other usage
   error), and the message names the surviving flag. *)
let epsilon_dt_conflict epsilon_arg dt_arg =
  let check epsilon dt =
    match (epsilon, dt) with
    | Some _, Some _ ->
        Error
          (`Msg
            "--epsilon and --dt cannot be combined: --epsilon (the target \
             certified error) is the winner and --dt is deprecated; drop \
             --dt")
    | _ -> Ok (epsilon, dt)
  in
  Term.(term_result (const check $ epsilon_arg $ dt_arg))

(* common args *)
let model_arg =
  Arg.(
    required
    & opt (some model_conv) None
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "Model name (see `models').  Unknown names list the catalogue \
           and suggest the nearest registered model.")

let horizon_arg default =
  Arg.(value & opt float default & info [ "horizon" ] ~docv:"T" ~doc:"Time horizon.")

(* parallel execution: 1 = sequential (default), 0 = one worker domain
   per core, N > 1 = N worker domains.  Results are bit-identical for
   any value, so --jobs is purely a wall-clock knob. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~env:(Cmd.Env.info "UMF_JOBS")
        ~docv:"JOBS"
        ~doc:
          "Worker domains for parallel sweeps: 1 runs sequentially \
           (default), 0 picks one per core, $(docv) uses that many \
           domains.  Output is bit-identical for any value.")

let with_jobs ?(obs = Obs.off) jobs f =
  if jobs < 0 then Error (`Msg "--jobs must be >= 0")
  else if jobs = 1 then f None
  else
    let pool =
      if jobs = 0 then Runtime.Pool.create ~obs ()
      else Runtime.Pool.create ~obs ~domains:jobs ()
    in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () -> f (Some pool))

(* observability: --trace streams NDJSON solver events, --metrics prints
   an aggregate summary.  Every analysis run keeps an in-memory registry
   regardless, so non-convergence is detected (and turned into a
   non-zero exit) from the solver counters. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream solver spans, counters and gauges to $(docv) as \
           NDJSON, one event object per line.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print a per-span/counter/gauge summary to stderr after the run.")

let print_metrics agg =
  Printf.eprintf "# metrics\n";
  List.iter
    (fun (name, st) ->
      Printf.eprintf "# span  %-28s calls=%-6d total=%.6fs max=%.6fs\n" name
        st.Obs.Agg.calls st.Obs.Agg.total st.Obs.Agg.max)
    (Obs.Agg.span_stats agg);
  List.iter
    (fun (name, v) -> Printf.eprintf "# count %-28s %.0f\n" name v)
    (Obs.Agg.counters agg);
  List.iter
    (fun (name, g) ->
      Printf.eprintf "# gauge %-28s last=%g min=%g max=%g\n" name
        g.Obs.Agg.last g.Obs.Agg.g_min g.Obs.Agg.g_max)
    (Obs.Agg.gauges agg)

(* the itemised error ledger of a result, printed to stderr next to the
   metrics summary: one line for the certified enclosure, one per
   budget line (discretisation, truncation, rounding, optimiser) *)
let print_cert name (c : Cert.t) =
  Printf.eprintf "# cert  %-28s value=[%g, %g] width=%g total=%g%s\n" name
    (Interval.lo c.Cert.value) (Interval.hi c.Cert.value) (Cert.width c)
    (Cert.total c)
    (if Cert.is_vacuous c then " VACUOUS" else "");
  List.iter
    (fun (line, v) -> Printf.eprintf "# cert  %-28s %s=%g\n" name line v)
    (Cert.lines c)

(* the solvers report failed fixpoints through dedicated counters *)
let check_converged agg =
  let n = Obs.Agg.counter agg in
  if n "pontryagin.nonconverged" > 0. then
    Error
      (`Msg
        (Printf.sprintf "Pontryagin fixpoint did not converge (%.0f sweeps)"
           (n "pontryagin.sweeps")))
  else if n "birkhoff.nonconverged" > 0. then
    Error
      (`Msg
        (Printf.sprintf "Birkhoff iteration did not converge (%.0f rounds)"
           (n "birkhoff.iterations")))
  else Ok ()

let with_obs ~trace ~metrics f =
  let ( let* ) = Result.bind in
  let agg = Obs.Agg.create () in
  let run tr = f (Obs.make ~agg ?trace:tr ()) in
  let* () =
    match trace with
    | None -> run None
    | Some file ->
        (* the sink owns the channel: close flushes the tail even when
           the run raises, so killed-mid-run traces stay complete up to
           the last emitted event *)
        let tr = Obs.Trace.to_file file in
        Fun.protect
          ~finally:(fun () -> Obs.Trace.close tr)
          (fun () -> run (Some tr))
  in
  if metrics then print_metrics agg;
  check_converged agg

let exit_of_result = function
  | Ok () -> ()
  | Error (`Msg m) ->
      Printf.eprintf "error: %s\n" m;
      exit 1

(* list command *)
let list_cmd =
  let doc = "List the bundled models, their variables and policies." in
  let run () =
    List.iter
      (fun (name, m) ->
        Printf.printf "%-12s vars: %s; theta: %s; policies: %s\n" name
          (String.concat ", " (Array.to_list (Model.var_names m)))
          (String.concat ", " (Array.to_list (Model.theta_names m)))
          (match Model.policies m with
          | [] -> "(constant/feedback only)"
          | ps -> String.concat ", " (List.map fst ps)))
      (Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* models command *)
let models_cmd =
  let doc =
    "Inventory of the registered models: dimension, parameter-box \
     vertex count, structure flags and lint status."
  in
  let run () =
    Printf.printf "%-12s %4s %6s %9s %7s %11s %s\n" "name" "dim" "|theta|"
      "vertices" "affine" "multilinear" "lint";
    List.iter
      (fun (name, m) ->
        let report = Lint.analyze m in
        Printf.printf "%-12s %4d %6d %9d %7b %11b %s\n" name (Model.dim m)
          (Model.theta_dim m)
          (1 lsl Model.theta_dim m)
          (Model.affine_in_theta m) (Model.multilinear m)
          (if Lint.ok report then "ok" else "errors"))
      (Registry.all ())
  in
  Cmd.v (Cmd.info "models" ~doc) Term.(const run $ const ())

(* bounds command *)
let bounds_cmd =
  let doc = "Reachability envelope of one variable over time." in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"VAR" ~doc:"Variable name.")
  in
  let scenario_arg =
    Arg.(
      value & opt string "imprecise"
      & info [ "scenario" ] ~docv:"S"
          ~doc:"imprecise | uncertain | pw:<k> (piecewise-constant).")
  in
  let points_arg =
    Arg.(value & opt int 11 & info [ "points" ] ~docv:"N" ~doc:"Sample times.")
  in
  let steps_arg =
    Arg.(value & opt int 300 & info [ "steps" ] ~docv:"K" ~doc:"Pontryagin grid.")
  in
  let epsilon_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon" ] ~docv:"EPS"
          ~doc:
            "Target certified error: refine the solver grids until the \
             discretisation line of the result's ledger is at most \
             $(docv), and set the optimiser tolerance to $(docv).  The \
             itemised budget prints with $(b,--metrics).")
  in
  let dt_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "dt" ] ~docv:"DT"
          ~doc:
            "Deprecated: raw integrator step for the uncertain sweep.  \
             Pass $(b,--epsilon) (a target certified error) instead.")
  in
  let run m var scenario horizon points steps (epsilon, dt) jobs trace metrics =
    exit_of_result
      (let ( let* ) = Result.bind in
       let* coord = var_index m var in
       let* scen = parse_scenario scenario in
       let* () =
         match epsilon with
         | Some e when e <= 0. -> Error (`Msg "--epsilon must be > 0")
         | _ -> Ok ()
       in
       let* () =
         match dt with
         | Some d when d <= 0. -> Error (`Msg "--dt must be > 0")
         | _ -> Ok ()
       in
       if points < 2 then Error (`Msg "need at least 2 points")
       else begin
         if dt <> None then
           prerr_endline
             "warning: --dt is deprecated; pass --epsilon EPS (a target \
              certified error — the grid is refined until the ledger's \
              discretisation line meets it) instead";
         with_obs ~trace ~metrics (fun obs ->
             with_jobs ~obs jobs (fun pool ->
                 let times = Vec.linspace 0. horizon points in
                 let steps =
                   match epsilon with
                   | Some e ->
                       Int.max steps (int_of_float (Float.ceil (horizon /. e)))
                   | None -> steps
                 in
                 let dt_eff =
                   match (epsilon, dt) with
                   | Some e, _ -> Float.min 1e-2 e
                   | None, Some d -> d
                   | None, None -> 1e-2
                 in
                 match scen with
                 | Scenario.Imprecise | Scenario.Uncertain ->
                     let scenario =
                       match scen with
                       | Scenario.Uncertain -> Analysis.Uncertain 5
                       | _ -> Analysis.Imprecise
                     in
                     let tol =
                       match epsilon with Some e -> e | None -> 1e-4
                     in
                     let spec =
                       Analysis.spec ~scenario ~horizon ~steps ~dt:dt_eff ~tol
                         ?pool ~obs m
                     in
                     let b =
                       Analysis.transient_bounds ~times spec ~x0:(Model.x0 m)
                         ~coord
                     in
                     Printf.printf "t\t%s_min\t%s_max\n" var var;
                     Array.iteri
                       (fun i t ->
                         Printf.printf "%.3f\t%.5f\t%.5f\n" t
                           b.Analysis.lower.(i) b.Analysis.upper.(i))
                       times;
                     if metrics then
                       print_cert "analysis.transient_bounds" b.Analysis.cert;
                     Ok ()
                 | scen ->
                     (* the intermediate adversaries (pw:k, …) keep the
                        per-horizon extremal search: certified inner
                        bounds by construction, no error ledger yet *)
                     let di = Di.of_model m in
                     let x0 = Model.x0 m in
                     Printf.printf "t\t%s_min\t%s_max\n" var var;
                     Array.iter
                       (fun t ->
                         if t <= 0. then
                           Printf.printf "%.3f\t%.5f\t%.5f\n" t x0.(coord)
                             x0.(coord)
                         else begin
                           let lo, hi =
                             Scenario.extremal_coord ?pool ~obs ~steps
                               ~dt:dt_eff scen di ~x0 ~coord ~horizon:t
                           in
                           Printf.printf "%.3f\t%.5f\t%.5f\n" t lo hi
                         end)
                       times;
                     Ok ()))
       end)
  in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(
      const run $ model_arg $ var_arg $ scenario_arg $ horizon_arg 4.
      $ points_arg $ steps_arg
      $ epsilon_dt_conflict epsilon_arg dt_arg
      $ jobs_arg $ trace_arg $ metrics_arg)

(* hull command *)
let hull_cmd =
  let doc = "Differential-hull rectangle over time (fast, conservative)." in
  let dt_arg =
    Arg.(value & opt float 0.02 & info [ "dt" ] ~docv:"DT" ~doc:"Hull step.")
  in
  let run m horizon dt trace metrics =
    exit_of_result
      (with_obs ~trace ~metrics (fun obs ->
           let h =
             Hull.bounds ~clip:(Model.clip m) ~obs (Di.of_model m)
               ~x0:(Model.x0 m) ~horizon ~dt
           in
           let names = Model.var_names m in
           print_string "t";
           Array.iter (fun n -> Printf.printf "\t%s_lo\t%s_hi" n n) names;
           print_newline ();
           Array.iter
             (fun t ->
               Printf.printf "%.3f" t;
               let lo = Hull.lower_at h t and hi = Hull.upper_at h t in
               Array.iteri
                 (fun i _ -> Printf.printf "\t%.5f\t%.5f" lo.(i) hi.(i))
                 names;
               print_newline ())
             (Vec.linspace 0. horizon 11);
           Ok ()))
  in
  Cmd.v (Cmd.info "hull" ~doc)
    Term.(
      const run $ model_arg $ horizon_arg 10. $ dt_arg $ trace_arg
      $ metrics_arg)

(* steady command *)
let steady_cmd =
  let doc = "Steady-state Birkhoff region of a 2-variable model." in
  let run m trace metrics =
    exit_of_result
      (if Model.dim m <> 2 then
         Error (`Msg "steady-state regions are computed for 2-variable models")
       else
         with_obs ~trace ~metrics (fun obs ->
             let b =
               Birkhoff.compute ~obs (Di.of_model m) ~x_start:(Model.x0 m)
             in
             Printf.printf "# %s\n" (Birkhoff.result_to_string b);
             let names = Model.var_names m in
             Printf.printf "%s\t%s\n" names.(0) names.(1);
             List.iter
               (fun (x, y) -> Printf.printf "%.5f\t%.5f\n" x y)
               (Geometry.resample_boundary b.Birkhoff.polygon 60);
             Ok ()))
  in
  Cmd.v (Cmd.info "steady" ~doc)
    Term.(const run $ model_arg $ trace_arg $ metrics_arg)

(* simulate command *)
let simulate_cmd =
  let doc = "Exact stochastic simulation of the size-N system." in
  let n_arg =
    Arg.(
      value & opt int 1000
      & info [ "n"; "size" ] ~docv:"N" ~doc:"Population size.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let points_arg =
    Arg.(value & opt int 50 & info [ "points" ] ~docv:"P" ~doc:"Output samples.")
  in
  let policy_arg =
    Arg.(
      value & opt string "mid"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Named policy, `mid' (θ midpoint), `lo', or `hi'.")
  in
  let reps_arg =
    Arg.(
      value & opt int 1
      & info [ "reps" ] ~docv:"R"
          ~doc:
            "Independent replications.  With $(docv) = 1 (default) one \
             trajectory is sampled over time; with $(docv) > 1 the final \
             state of $(docv) runs is reported (parallelises with --jobs).")
  in
  let run m n tmax seed points policy reps jobs trace metrics =
    exit_of_result
      (let ( let* ) = Result.bind in
       let pop = Model.population m in
       let x0 = Model.x0 m in
       let box = Model.theta m in
       let* pol =
         match policy with
         | "mid" -> Ok (Policy.constant (Optim.Box.midpoint box))
         | "lo" -> Ok (Policy.constant box.Optim.Box.lo)
         | "hi" -> Ok (Policy.constant box.Optim.Box.hi)
         | name -> (
             match List.assoc_opt name (Model.policies m) with
             | Some p -> Ok p
             | None ->
                 Error
                   (`Msg
                     (Printf.sprintf "unknown policy %s for this model" name)))
       in
       if points < 1 then Error (`Msg "need at least one point")
       else if reps < 1 then Error (`Msg "need at least one replication")
       else
         with_obs ~trace ~metrics (fun obs ->
             if reps = 1 then begin
               let times =
                 Array.init points (fun i ->
                     tmax *. float_of_int (i + 1) /. float_of_int points)
               in
               let states =
                 Ssa.sampled ~obs pop ~n ~x0 ~policy:pol ~times
                   (Rng.create seed)
               in
               let names = Model.var_names m in
               Printf.printf "t\t%s\n"
                 (String.concat "\t" (Array.to_list names));
               Array.iteri
                 (fun i t ->
                   Printf.printf "%.3f" t;
                   Array.iter (fun v -> Printf.printf "\t%.5f" v) states.(i);
                   print_newline ())
                 times;
               Ok ()
             end
             else
               with_jobs ~obs jobs (fun pool ->
                   let finals =
                     Ssa.replicate ?pool ~obs pop ~n ~x0 ~policy:pol ~tmax
                       ~reps ~seed
                   in
                   let names = Model.var_names m in
                   Printf.printf "rep\t%s\n"
                     (String.concat "\t" (Array.to_list names));
                   Array.iteri
                     (fun i x ->
                       Printf.printf "%d" i;
                       Array.iter (fun v -> Printf.printf "\t%.5f" v) x;
                       print_newline ())
                     finals;
                   let dim = Model.dim m in
                   Printf.printf "mean";
                   for c = 0 to dim - 1 do
                     let s =
                       Array.fold_left (fun acc x -> acc +. x.(c)) 0. finals
                     in
                     Printf.printf "\t%.5f" (s /. float_of_int reps)
                   done;
                   print_newline ();
                   Ok ())))
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ model_arg $ n_arg $ horizon_arg 10. $ seed_arg $ points_arg
      $ policy_arg $ reps_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* ctmc command: the finite-N engine behind Ctmc.Engine.spec *)
let ctmc_cmd =
  let doc =
    "Finite-N CTMC analysis through the Ctmc.Engine spec front door: \
     enumerate the N-scaled lattice of a model (exactly, or adaptively \
     truncated with certified escaped-mass bounds) and solve it with the \
     sparse uniformisation engine."
  in
  let mode_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("transient", `Transient);
                  ("stationary", `Stationary);
                  ("bounds", `Bounds);
                  ("first-passage", `FirstPassage);
                ]))
          None
      & info [] ~docv:"MODE"
          ~doc:
            "What to compute: `transient' (exact E[x(t)] per variable), \
             `stationary' (exact stationary means), `bounds' (exact \
             envelope of one variable over the $(b,theta)-box), or \
             `first-passage' (certified hitting-probability and \
             mean-first-passage-time bounds for a threshold on one \
             variable, over every adapted $(b,theta)-process).")
  in
  let n_arg =
    Arg.(
      value & opt int 100
      & info [ "n"; "size" ] ~docv:"N" ~doc:"Population size.")
  in
  let var_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "var" ] ~docv:"VAR" ~doc:"Variable name (required for bounds).")
  in
  let theta_arg =
    Arg.(
      value & opt string "mid"
      & info [ "theta" ] ~docv:"THETA"
          ~doc:
            "Parameter point for transient/stationary: `mid', `lo' or `hi' \
             corner of the $(b,theta)-box.")
  in
  let scenario_arg =
    Arg.(
      value & opt string "uncertain"
      & info [ "scenario" ] ~docv:"S"
          ~doc:
            "Envelope scenario for bounds: `uncertain' ($(b,theta) constant, \
             grid sweep) or `imprecise' (time-varying $(b,theta), backward \
             sweeps; needs rates affine in $(b,theta)).")
  in
  let grid_arg =
    Arg.(
      value & opt int 3
      & info [ "grid" ] ~docv:"G"
          ~doc:"Per-axis grid for the uncertain envelope.")
  in
  let points_arg =
    Arg.(value & opt int 11 & info [ "points" ] ~docv:"P" ~doc:"Sample times.")
  in
  let epsilon_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "epsilon" ] ~docv:"EPS"
          ~doc:
            "Target certified error.  For transient/stationary/bounds the \
             budget splits evenly between the uniformisation mass \
             tolerance and — on the imprecise envelope — the adaptive \
             backward sweep's a-priori discretisation budget; for \
             first-passage it is the sweep budget directly.  Default: \
             mass tolerance 1e-12 with the fixed stability grid \
             (first-passage: 1e-3).  The itemised budget prints with \
             $(b,--metrics).")
  in
  let dt_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "dt" ] ~docv:"DT"
          ~doc:
            "Deprecated: raw backward-sweep step for the imprecise \
             envelope (step budget ceil(horizon/$(docv))).  Pass \
             $(b,--epsilon) (a target certified error with an a-priori \
             ledger) instead.")
  in
  let above_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "above" ] ~docv:"X"
          ~doc:
            "first-passage target: the set where --var's density is >= \
             $(docv).")
  in
  let below_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "below" ] ~docv:"X"
          ~doc:
            "first-passage target: the set where --var's density is <= \
             $(docv).")
  in
  let max_states_arg =
    Arg.(
      value & opt int 2_000_000
      & info [ "max-states" ] ~docv:"M" ~doc:"Lattice enumeration budget.")
  in
  let truncation_arg =
    Arg.(
      value
      & opt (enum [ ("exact", `Exact); ("adaptive", `Adaptive) ]) `Exact
      & info [ "truncation" ] ~docv:"POLICY"
          ~doc:
            "What happens when the lattice outgrows --max-states: `exact' \
             fails loudly; `adaptive' retains the closest states and \
             reports the escaped probability mass as a certified bound \
             (escaped column).")
  in
  let theta_of m = function
    | "mid" -> Ok (Optim.Box.midpoint (Model.theta m))
    | "lo" -> Ok ((Model.theta m).Optim.Box.lo)
    | "hi" -> Ok ((Model.theta m).Optim.Box.hi)
    | s -> Error (`Msg (Printf.sprintf "unknown theta point %s" s))
  in
  let run mode m n var theta scenario grid horizon points (epsilon, dt) above
      below max_states truncation jobs trace metrics =
    exit_of_result
      (let ( let* ) = Result.bind in
       let* () =
         match epsilon with
         | Some e when e <= 0. -> Error (`Msg "--epsilon must be > 0")
         | _ -> Ok ()
       in
       let* () =
         match dt with
         | Some d when d <= 0. -> Error (`Msg "--dt must be > 0")
         | _ -> Ok ()
       in
       if n < 1 then Error (`Msg "--n must be >= 1")
       else if points < 2 then Error (`Msg "need at least 2 points")
       else
         try
           if dt <> None then
             prerr_endline
               "warning: --dt is deprecated; pass --epsilon EPS (a target \
                certified error — the adaptive sweep spends it with an \
                a-priori ledger) instead";
           with_obs ~trace ~metrics (fun obs ->
               with_jobs ~obs jobs (fun pool ->
                   let names = Model.var_names m in
                   let truncation =
                     match truncation with
                     | `Exact -> Ctmc.Engine.Exact { max_states }
                     | `Adaptive -> Ctmc.Engine.Adaptive { max_states }
                   in
                   (* --epsilon is the whole certified-error target: half
                      goes to the uniformisation mass tolerance, half to
                      the adaptive sweep's discretisation budget.  --dt
                      (deprecated) only coarsens the fixed grid. *)
                   let mass_eps, sweep_eps =
                     match epsilon with
                     | Some e -> (e /. 2., Some (e /. 2.))
                     | None -> (1e-12, None)
                   in
                   let steps =
                     Option.map
                       (fun d ->
                         Int.max 1 (int_of_float (Float.ceil (horizon /. d))))
                       dt
                   in
                   let spec_of scenario =
                     Ctmc.Engine.spec ~scenario ~horizon
                       ~times:(Vec.linspace 0. horizon points)
                       ~epsilon:mass_eps ?steps ?sweep_eps ~truncation ?pool
                       ~obs ~n m
                   in
                   let lost (c : Ctmc.Engine.certificate) =
                     c.escaped +. c.tail
                   in
                   match mode with
                   | `Bounds ->
                       let* var =
                         match var with
                         | Some v -> Ok v
                         | None -> Error (`Msg "bounds needs --var")
                       in
                       let* coord = var_index m var in
                       let* scen =
                         match scenario with
                         | "imprecise" -> Ok Ctmc.Engine.Imprecise
                         | "uncertain" -> Ok (Ctmc.Engine.Uncertain grid)
                         | s ->
                             Error
                               (`Msg (Printf.sprintf "unknown scenario %s" s))
                       in
                       let spec = spec_of scen in
                       let env =
                         Ctmc.Engine.envelope spec
                           ~reward:(Ctmc.Engine.Coord coord)
                       in
                       Printf.printf "# states=%d escaped<=%.3g\n"
                         env.Ctmc.Engine.states env.escaped;
                       Printf.printf "t\t%s_mean\t%s_min\t%s_max\tescaped\n"
                         var var var;
                       Array.iteri
                         (fun j t ->
                           Printf.printf "%.3f\t%.5f\t%.5f\t%.5f\t%.3g\n" t
                             env.mean.(j) env.lower.(j) env.upper.(j)
                             (lost env.certificates.(j)))
                         env.times;
                       if metrics then begin
                         let last = Array.length env.Ctmc.Engine.certs - 1 in
                         if last >= 0 then
                           print_cert
                             (Printf.sprintf "ctmc.envelope.%s" var)
                             env.Ctmc.Engine.certs.(last)
                       end;
                       Ok ()
                   | `FirstPassage ->
                       let* var =
                         match var with
                         | Some v -> Ok v
                         | None -> Error (`Msg "first-passage needs --var")
                       in
                       let* coord = var_index m var in
                       let* target =
                         match (above, below) with
                         | Some a, None -> Ok (fun (x : Vec.t) -> x.(coord) >= a)
                         | None, Some b -> Ok (fun (x : Vec.t) -> x.(coord) <= b)
                         | _ ->
                             Error
                               (`Msg
                                 "first-passage needs exactly one of \
                                  --above/--below")
                       in
                       let spec = Analysis.spec ~horizon ?pool ~obs m in
                       let fp =
                         Analysis.first_passage
                           ~times:(Vec.linspace 0. horizon points)
                           ?epsilon ~max_states spec ~n ~target
                       in
                       Printf.printf "# states=%d mfpt in [%.5f, %.5f]\n"
                         fp.Analysis.states fp.Analysis.mfpt_lower
                         fp.Analysis.mfpt_upper;
                       Printf.printf "t\thit_min\thit_max\n";
                       Array.iteri
                         (fun j t ->
                           Printf.printf "%.3f\t%.5f\t%.5f\n" t
                             fp.Analysis.hit_lower.(j) fp.Analysis.hit_upper.(j))
                         fp.Analysis.times;
                       if metrics then
                         print_cert "analysis.first_passage" fp.Analysis.cert;
                       Ok ()
                   | (`Transient | `Stationary) as mode ->
                       let* th = theta_of m theta in
                       let spec = spec_of Ctmc.Engine.Imprecise in
                       let space = Ctmc.Engine.space spec in
                       let rewards =
                         Array.mapi (fun c _ -> Ctmc.Engine.Coord c) names
                       in
                       (match mode with
                       | `Transient ->
                           let tr =
                             Ctmc.Engine.transient ~theta:th ~space spec
                               ~rewards
                           in
                           Printf.printf "# states=%d\n" tr.Ctmc.Engine.states;
                           Printf.printf "t\t%s\tescaped\n"
                             (String.concat "\t" (Array.to_list names));
                           Array.iteri
                             (fun j t ->
                               Printf.printf "%.3f" t;
                               Array.iteri
                                 (fun c _ ->
                                   Printf.printf "\t%.5f" tr.value.(j).(c))
                                 names;
                               Printf.printf "\t%.3g"
                                 (lost tr.certificates.(j));
                               print_newline ())
                             tr.times;
                           if metrics then begin
                             let nt = Array.length tr.Ctmc.Engine.certs in
                             if nt > 0 then
                               Array.iteri
                                 (fun c name ->
                                   print_cert ("ctmc.transient." ^ name)
                                     tr.Ctmc.Engine.certs.(nt - 1).(c))
                                 names
                           end
                       | `Stationary ->
                           let st =
                             Ctmc.Engine.stationary ~theta:th ~space spec
                               ~rewards
                           in
                           Printf.printf "# states=%d\n" st.Ctmc.Engine.states;
                           Printf.printf "var\tmean\n";
                           Array.iteri
                             (fun c name ->
                               Printf.printf "%s\t%.5f\n" name st.values.(c))
                             names;
                           if metrics then
                             Array.iteri
                               (fun c name ->
                                 print_cert ("ctmc.stationary." ^ name)
                                   st.Ctmc.Engine.certs.(c))
                               names);
                       Ok ()))
         with
         | Failure msg -> Error (`Msg msg)
         | Invalid_argument msg -> Error (`Msg msg))
  in
  Cmd.v (Cmd.info "ctmc" ~doc)
    Term.(
      const run $ mode_arg $ model_arg $ n_arg $ var_arg $ theta_arg
      $ scenario_arg $ grid_arg $ horizon_arg 10. $ points_arg
      $ epsilon_dt_conflict epsilon_arg dt_arg
      $ above_arg $ below_arg $ max_states_arg $ truncation_arg
      $ jobs_arg $ trace_arg $ metrics_arg)

(* lint command *)
let lint_cmd =
  let doc =
    "Statically analyse a model: certified rate soundness, structure \
     classification, conservation laws, a Lipschitz certificate and \
     dead-code lints; --tape adds the tape tier (certified \
     float-safety, rounding-error bounds and sign/monotonicity facts \
     for the compiled drift)."
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"every linted model is clean (no findings gate).";
      Cmd.Exit.info 1
        ~doc:
          "$(b,--strict) and at least one Warning-level finding (but no \
           errors).";
      Cmd.Exit.info 2 ~doc:"at least one Error-level finding (always fatal).";
      Cmd.Exit.info Cmd.Exit.cli_error ~doc:"command-line parse error.";
    ]
  in
  let model_pos_arg =
    Arg.(
      value
      & pos 0 (some model_conv) None
      & info [] ~docv:"MODEL" ~doc:"Model name (see `models').")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every bundled model.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Treat Warning-level findings as failures: exit 1 when any \
             linted model has warnings (errors exit 2 regardless).")
  in
  let tape_arg =
    Arg.(
      value & flag
      & info [ "tape" ]
          ~doc:
            "Run the tape tier too: abstractly interpret the compiled \
             drift (and its $(b,theta)-Jacobian) over clip box × \
             $(b,theta)-box, certifying float-safety, an a-priori \
             rounding-error bound per drift coordinate, and \
             sign/monotonicity facts (T-codes).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: NDJSON, one object per finding \
             followed by one summary object per model.")
  in
  let lint_model ~tape ~json m =
    let report = Lint.analyze ~tape m in
    if json then begin
      List.iter
        (fun f ->
          print_endline (Obs.Json.to_string (Lint.finding_to_json report f)))
        report.Lint.findings;
      print_endline (Obs.Json.to_string (Lint.summary_to_json report))
    end
    else Format.printf "%a@." Lint.pp_report report;
    (List.length (Lint.errors report), List.length (Lint.warnings report))
  in
  let run model all tape json strict =
    let models =
      match (model, all) with
      | None, false ->
          Printf.eprintf "error: need a MODEL argument (or --all)\n";
          exit Cmd.Exit.cli_error
      | Some m, false -> [ m ]
      | _, true -> List.map snd (Registry.all ())
    in
    let errors, warnings =
      List.fold_left
        (fun (e, w) m ->
          let e', w' = lint_model ~tape ~json m in
          (e + e', w + w'))
        (0, 0) models
    in
    if errors > 0 then begin
      Printf.eprintf "error: lint found %d Error-level finding(s)\n" errors;
      exit 2
    end;
    if strict && warnings > 0 then begin
      Printf.eprintf
        "error: lint found %d Warning-level finding(s) (--strict)\n" warnings;
      exit 1
    end
  in
  Cmd.v (Cmd.info "lint" ~doc ~exits)
    Term.(const run $ model_pos_arg $ all_arg $ tape_arg $ json_arg
          $ strict_arg)

let () =
  let doc = "mean-field analysis of uncertain and imprecise stochastic models" in
  let info = Cmd.info "umf_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            models_cmd;
            bounds_cmd;
            hull_cmd;
            steady_cmd;
            simulate_cmd;
            ctmc_cmd;
            lint_cmd;
          ]))
