(* Long-running NDJSON analysis daemon front end.

     umf_serve                         # serve stdin/stdout until EOF
     umf_serve --socket /tmp/umf.sock  # unix-domain socket accept loop
     umf_serve --jobs 4 --deadline-ms 5000 --trace /tmp/serve-trace.ndjson

   One JSON request object per line in, one response line out (see the
   Umf.Codec docs for the schema).  Example session over stdio:

     $ printf '%s\n%s\n' \
         '{"id":1,"op":"bounds","model":"sir","coord":1,"horizon":4}' \
         '{"id":2,"op":"metrics"}' | umf_serve
     {"id":1,"ok":true,"cached":false,...,"result":{...},"cert":{...}}
     {"id":2,"ok":true,...,"result":{"uptime_s":...,...},...}

   Requests pipelined into one read are scheduled as one batch over the
   shared worker pool; repeated requests are answered from the
   exact-match result cache bitwise-identically to the cold run. *)
open Umf
open Cmdliner

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ]
        ~env:(Cmd.Env.info "UMF_JOBS")
        ~docv:"JOBS"
        ~doc:
          "Worker domains for the request pool: 0 (default) picks one per \
           core, $(docv) uses that many.  Results are bit-identical for \
           any value.")

let cache_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Exact-match results memoised (content-addressed by model, \
           scenario, $(b,theta)-box, horizon and tolerances); 0 disables \
           the cache.  Hits re-emit the cold run's payload bytes.")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "Analysis requests admitted per batch; the excess is refused \
           with an `overloaded' error instead of growing a backlog.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline.  An expired request unwinds at \
           the next solver probe and answers with a structured \
           `deadline_exceeded' error carrying its partial error ledger; \
           requests may override with their own \"deadline_ms\" field.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream solver and pool events to $(docv) as NDJSON (flushed at \
           least every 0.5 s).")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a unix-domain socket at $(docv) (clients accepted \
           sequentially) instead of serving stdin/stdout.")

let run jobs cache_capacity queue_limit deadline trace socket =
  try
    let trace_sink =
      Option.map (Obs.Trace.to_file ~flush_interval:0.5) trace
    in
    let obs =
      match trace_sink with
      | None -> Obs.off
      | Some tr -> Obs.make ~trace:tr ()
    in
    let cfg =
      Serve.config
        ?domains:(if jobs = 0 then None else Some jobs)
        ~cache_capacity ~queue_limit ?default_deadline_ms:deadline ~obs ()
    in
    let t = Serve.create cfg in
    Fun.protect
      ~finally:(fun () ->
        Serve.shutdown t;
        Option.iter Obs.Trace.close trace_sink)
      (fun () ->
        match socket with
        | None -> Serve.serve_stdio t
        | Some path -> Serve.serve_socket t path);
    Ok ()
  with Invalid_argument m | Failure m -> Error (`Msg m)

let () =
  let doc = "long-running NDJSON analysis daemon over the umf spec API" in
  let info = Cmd.info "umf_serve" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            term_result
              (const run $ jobs_arg $ cache_arg $ queue_arg $ deadline_arg
             $ trace_arg $ socket_arg))))
