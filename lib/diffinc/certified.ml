open Umf_numerics
module Symbolic = Umf_meanfield.Symbolic
module Population = Umf_meanfield.Population

let di s =
  Di.of_population ~jacobian:(Symbolic.jacobian s) (Symbolic.population s)

let hull_bounds ?clip s ~x0 ~horizon ~dt =
  let model = Symbolic.population s in
  let theta_ivs =
    Array.to_list
      (Array.mapi
         (fun j _ ->
           Interval.make model.Population.theta.Optim.Box.lo.(j)
             model.Population.theta.Optim.Box.hi.(j))
         model.Population.theta.Optim.Box.lo)
    |> Array.of_list
  in
  let face_extremum ~lo ~hi ~coord ~value sense =
    let x =
      Array.init (Vec.dim lo) (fun i ->
          if i = coord then Interval.make value value
          else Interval.make lo.(i) hi.(i))
    in
    let enclosure = (Symbolic.drift_interval s ~x ~th:theta_ivs).(coord) in
    match sense with
    | `Min -> Interval.lo enclosure
    | `Max -> Interval.hi enclosure
  in
  Hull.bounds ?clip ~face_extremum (di s) ~x0 ~horizon ~dt

let recommended_hamiltonian_opt s =
  if Symbolic.affine_in_theta s then `Vertices else `Box 5
