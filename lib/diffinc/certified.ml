open Umf_numerics
module Model = Umf_meanfield.Model
module Lint = Umf_lint.Lint

exception Rejected of Lint.report

let di = Di.of_model

(* gate: refuse models the static analyzer rejects — both tiers, so a
   certain division-by-zero in the compiled tape (T002) blocks the
   solve exactly like a certifiably negative rate (L001) — and reuse
   the proven sign facts to pick the Hamiltonian arg-max strategy *)
let gate ?domain ?(lint = true) m =
  if not lint then None
  else begin
    let report = Lint.analyze ?domain ~tape:true m in
    if not (Lint.ok report) then raise (Rejected report);
    Some report
  end

let static_report ?domain m = Lint.analyze ?domain ~tape:true m

(* the per-coordinate drift certificate: interval enclosure over
   domain × Θ with the tape tier's rounding bound on the ledger — the
   object the C-code lint tier checks for vacuity *)
let drift_cert ?domain m =
  let box = match domain with Some b -> b | None -> Model.clip m in
  let ivs (b : Optim.Box.t) =
    Array.mapi (fun i lo -> Interval.make lo b.Optim.Box.hi.(i)) b.Optim.Box.lo
  in
  let enclosure = Model.drift_interval m ~x:(ivs box) ~th:(ivs (Model.theta m)) in
  let rounding =
    match (static_report ?domain m).Lint.tape with
    | Some t -> t.Tape_check.max_abs_err
    | None -> infinity
  in
  Array.map (fun iv -> Cert.widen ~rounding (Cert.of_interval iv)) enclosure

let float_error_bound ?domain m =
  Array.fold_left
    (fun acc (c : Cert.t) -> Float.max acc c.Cert.budget.Cert.rounding)
    0. (drift_cert ?domain m)

let usable_bounds ?domain m =
  Array.for_all (fun c -> not (Cert.is_vacuous c)) (drift_cert ?domain m)

let recommended_hamiltonian_opt ?domain m =
  (static_report ?domain m).Lint.recommended_opt

let opt_of ?domain report m =
  match report with
  | Some r -> r.Lint.recommended_opt
  | None -> recommended_hamiltonian_opt ?domain m

let pontryagin ?steps ?max_iter ?tol ?relax ?domain ?lint ?obs m ~x0 ~horizon
    ~sense obj =
  let report = gate ?domain ?lint m in
  let opt = opt_of ?domain report m in
  Pontryagin.solve ?steps ?max_iter ?tol ?relax ~opt ~check:true ?obs (di m)
    ~x0 ~horizon ~sense obj

let bound_series ?steps ?max_iter ?tol ?relax ?domain ?lint ?obs m ~x0 ~coord
    ~times =
  let report = gate ?domain ?lint m in
  let opt = opt_of ?domain report m in
  Pontryagin.bound_series ?steps ?max_iter ?tol ?relax ~opt ~check:true ?obs
    (di m) ~x0 ~coord ~times

let hull_bounds ?clip ?lint ?obs m ~x0 ~horizon ~dt =
  ignore (gate ?domain:clip ?lint m : Lint.report option);
  let theta = Model.theta m in
  let theta_ivs =
    Array.mapi
      (fun j lo -> Interval.make lo theta.Optim.Box.hi.(j))
      theta.Optim.Box.lo
  in
  let face_extremum ~lo ~hi ~coord ~value sense =
    let x =
      Array.init (Vec.dim lo) (fun i ->
          if i = coord then Interval.make value value
          else Interval.make lo.(i) hi.(i))
    in
    let enclosure = (Model.drift_interval m ~x ~th:theta_ivs).(coord) in
    match sense with
    | `Min -> Interval.lo enclosure
    | `Max -> Interval.hi enclosure
  in
  Hull.bounds ~check:true ?clip ~face_extremum ?obs (di m) ~x0 ~horizon ~dt
