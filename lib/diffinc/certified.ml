open Umf_numerics
module Symbolic = Umf_meanfield.Symbolic
module Population = Umf_meanfield.Population
module Lint = Umf_lint.Lint

exception Rejected of Lint.report

let di s =
  Di.of_population ~jacobian:(Symbolic.jacobian s) (Symbolic.population s)

(* gate: refuse models the static analyzer rejects, and reuse its
   structure classification to pick the Hamiltonian arg-max strategy *)
let gate ?domain ?(lint = true) s =
  if not lint then None
  else begin
    let report = Lint.analyze ?domain s in
    if not (Lint.ok report) then raise (Rejected report);
    Some report
  end

let recommended_hamiltonian_opt ?domain s =
  (Lint.analyze ?domain s).Lint.recommended_opt

let opt_of ?domain report s =
  match report with
  | Some r -> r.Lint.recommended_opt
  | None -> recommended_hamiltonian_opt ?domain s

let pontryagin ?steps ?max_iter ?tol ?relax ?domain ?lint ?obs s ~x0 ~horizon
    ~sense obj =
  let report = gate ?domain ?lint s in
  let opt = opt_of ?domain report s in
  Pontryagin.solve ?steps ?max_iter ?tol ?relax ~opt ~check:true ?obs (di s)
    ~x0 ~horizon ~sense obj

let bound_series ?steps ?max_iter ?tol ?relax ?domain ?lint ?obs s ~x0 ~coord
    ~times =
  let report = gate ?domain ?lint s in
  let opt = opt_of ?domain report s in
  Pontryagin.bound_series ?steps ?max_iter ?tol ?relax ~opt ~check:true ?obs
    (di s) ~x0 ~coord ~times

let hull_bounds ?clip ?lint ?obs s ~x0 ~horizon ~dt =
  ignore (gate ?domain:clip ?lint s : Lint.report option);
  let model = Symbolic.population s in
  let theta_ivs =
    Array.to_list
      (Array.mapi
         (fun j _ ->
           Interval.make model.Population.theta.Optim.Box.lo.(j)
             model.Population.theta.Optim.Box.hi.(j))
         model.Population.theta.Optim.Box.lo)
    |> Array.of_list
  in
  let face_extremum ~lo ~hi ~coord ~value sense =
    let x =
      Array.init (Vec.dim lo) (fun i ->
          if i = coord then Interval.make value value
          else Interval.make lo.(i) hi.(i))
    in
    let enclosure = (Symbolic.drift_interval s ~x ~th:theta_ivs).(coord) in
    match sense with
    | `Min -> Interval.lo enclosure
    | `Max -> Interval.hi enclosure
  in
  Hull.bounds ~check:true ?clip ~face_extremum ?obs (di s) ~x0 ~horizon ~dt
