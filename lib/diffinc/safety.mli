(** Bounded-horizon safety verification of imprecise mean-field models.

    A safety property is a conjunction of linear constraints
    a·x(t) ≤ b required to hold at {e every} time in [0, T], for
    {e every} solution of the differential inclusion — i.e. whatever
    the imprecise parameters do.  Verification reduces to support
    functions: the property holds iff max over solutions of a·x(t)
    stays ≤ b, which the Pontryagin solver computes on a time grid.

    When violated, the checker returns a {e witness}: the violating
    time, the extremal value, and the bang-bang parameter trajectory
    realising it — directly usable as a counterexample (e.g. the
    environment pattern that breaks a vaccination design). *)

open Umf_numerics

type constraint_ = {
  label : string;
  normal : Vec.t;  (** a *)
  bound : float;  (** b: the constraint is a·x ≤ b *)
}

val le : ?label:string -> coord:int -> dim:int -> float -> constraint_
(** [le ~coord ~dim b]: x_coord ≤ b. *)

val ge : ?label:string -> coord:int -> dim:int -> float -> constraint_
(** [ge ~coord ~dim b]: x_coord ≥ b (encoded as −x ≤ −b). *)

type witness = {
  constraint_ : constraint_;
  time : float;  (** Grid time of the worst violation. *)
  value : float;  (** Extremal a·x(time) (> bound). *)
  control : Pontryagin.result;  (** The violating parameter pattern. *)
}

type verdict = Safe of float | Violated of witness
(** [Safe margin]: the property holds with [margin] = min over
    constraints and grid times of (b − worst-case a·x). *)

val verify :
  ?steps:int ->
  ?check_points:int ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  constraint_ list ->
  verdict
(** Checks each constraint at [check_points] (default 20) evenly spaced
    times (plus the initial state).  Sound up to the time grid: the
    maximum of a·x(t) between check points is not examined, so choose
    [check_points] commensurate with the system's time scale.
    @raise Invalid_argument on an empty constraint list or dimension
    mismatches. *)
