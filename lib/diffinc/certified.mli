(** Certified analyses of symbolically-specified models.

    For symbolically-defined models ({!Umf_meanfield.Model}), the
    solvers can replace sampling-based ingredients with sound symbolic
    ones:

    - {!di} builds the differential inclusion with the {e exact}
      Jacobian (Pontryagin costates free of finite-difference error);
    - {!hull_bounds} integrates the differential hull with per-face
      drift ranges from interval arithmetic — a mathematically
      guaranteed over-approximation, not a sampled one (possibly wider,
      by the interval dependency problem).

    Every entry point first runs the static analyzer
    ({!Umf_lint.Lint}) unless [~lint:false]: models with Error-level
    findings (certifiably negative rates, malformed transitions) are
    refused with {!Rejected}, and the linter's structure
    classification auto-selects the Hamiltonian arg-max strategy —
    vertex enumeration exactly when the drift is affine in θ, where
    bang-bang controls are provably optimal. *)

open Umf_numerics
module Lint = Umf_lint.Lint

exception Rejected of Lint.report
(** Raised when the pre-solve lint finds Error-level problems; the
    payload is the full diagnostic report. *)

val di : Umf_meanfield.Model.t -> Di.t

val pontryagin :
  ?steps:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?relax:float ->
  ?domain:Optim.Box.t ->
  ?lint:bool ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  x0:Vec.t ->
  horizon:float ->
  sense:[ `Max | `Min ] ->
  Pontryagin.objective ->
  Pontryagin.result
(** {!Pontryagin.solve} on {!di}, gated by the linter ([lint] defaults
    to [true]) and with the Hamiltonian optimiser auto-selected from
    the lint classification; the chosen strategy is recorded in the
    result's [opt] field.  [domain] is passed to the linter (defaults
    to the model's clip box).  Runs with the [~check:true] non-finiteness
    sanitizer on, and threads [obs] into the solver — the one
    observation context convention shared by every certified entry
    point.
    @raise Rejected when the lint report contains errors. *)

val bound_series :
  ?steps:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?relax:float ->
  ?domain:Optim.Box.t ->
  ?lint:bool ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  x0:Vec.t ->
  coord:int ->
  times:float array ->
  (float * float) array
(** {!Pontryagin.bound_series} with the same lint gate, optimiser
    auto-selection, [~check:true] sanitizer and [obs] threading as
    {!pontryagin}.
    @raise Rejected when the lint report contains errors. *)

val hull_bounds :
  ?clip:Optim.Box.t ->
  ?lint:bool ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Hull.traj
(** Interval-certified differential hull.  Runs the linter first
    (over [clip] when given, else the model's clip box) and integrates with
    the {!Hull.bounds} [~check:true] NaN/Inf sanitizer on; [obs] is
    threaded into the hull integration.
    @raise Rejected when the lint report contains errors. *)

val recommended_hamiltonian_opt :
  ?domain:Optim.Box.t -> Umf_meanfield.Model.t -> [ `Vertices | `Box of int ]
(** The linter's solver recommendation: [`Vertices] when every drift
    coordinate is affine in θ (exact bang-bang), [`Box 5] otherwise. *)
