(** Certified analyses of symbolically-specified models.

    For models whose rates are {!Umf_numerics.Expr} trees
    ({!Umf_meanfield.Symbolic}), the solvers can replace sampling-based
    ingredients with sound symbolic ones:

    - {!di} builds the differential inclusion with the {e exact}
      Jacobian (Pontryagin costates free of finite-difference error);
    - {!hull_bounds} integrates the differential hull with per-face
      drift ranges from interval arithmetic — a mathematically
      guaranteed over-approximation, not a sampled one (possibly wider,
      by the interval dependency problem). *)

open Umf_numerics
module Symbolic = Umf_meanfield.Symbolic

val di : Symbolic.t -> Di.t

val hull_bounds :
  ?clip:Optim.Box.t ->
  Symbolic.t ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Hull.traj

val recommended_hamiltonian_opt : Symbolic.t -> [ `Vertices | `Box of int ]
(** [`Vertices] when every drift coordinate is affine in θ (exact),
    [`Box 5] otherwise. *)
