(** Certified analyses of symbolically-specified models.

    For symbolically-defined models ({!Umf_meanfield.Model}), the
    solvers can replace sampling-based ingredients with sound symbolic
    ones:

    - {!di} builds the differential inclusion with the {e exact}
      Jacobian (Pontryagin costates free of finite-difference error);
    - {!hull_bounds} integrates the differential hull with per-face
      drift ranges from interval arithmetic — a mathematically
      guaranteed over-approximation, not a sampled one (possibly wider,
      by the interval dependency problem).

    Every entry point first runs the static analyzer
    ({!Umf_lint.Lint}) with the tape tier on ([~tape:true]) unless
    [~lint:false]: models with Error-level findings at either tier —
    certifiably negative rates, malformed transitions (L-codes), or a
    certain division-by-zero in the compiled tape (T002) — are refused
    with {!Rejected}.  The Hamiltonian arg-max strategy is no longer a
    syntactic heuristic: vertex enumeration is selected exactly when
    the linter {e proves} vertex optimality ([vertex_certified] —
    coordinatewise θ-affinity with θ-free kinks, established
    syntactically or from certified-zero second θ-derivatives), which
    also covers multilinear-in-θ drifts the old affinity test
    rejected. *)

open Umf_numerics
module Lint = Umf_lint.Lint

exception Rejected of Lint.report
(** Raised when the pre-solve lint finds Error-level problems; the
    payload is the full diagnostic report. *)

val di : Umf_meanfield.Model.t -> Di.t

val pontryagin :
  ?steps:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?relax:float ->
  ?domain:Optim.Box.t ->
  ?lint:bool ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  x0:Vec.t ->
  horizon:float ->
  sense:[ `Max | `Min ] ->
  Pontryagin.objective ->
  Pontryagin.result
(** {!Pontryagin.solve} on {!di}, gated by the linter ([lint] defaults
    to [true]) and with the Hamiltonian optimiser auto-selected from
    the lint classification; the chosen strategy is recorded in the
    result's [opt] field.  [domain] is passed to the linter (defaults
    to the model's clip box).  Runs with the [~check:true] non-finiteness
    sanitizer on, and threads [obs] into the solver — the one
    observation context convention shared by every certified entry
    point.
    @raise Rejected when the lint report contains errors. *)

val bound_series :
  ?steps:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?relax:float ->
  ?domain:Optim.Box.t ->
  ?lint:bool ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  x0:Vec.t ->
  coord:int ->
  times:float array ->
  (float * float) array
(** {!Pontryagin.bound_series} with the same lint gate, optimiser
    auto-selection, [~check:true] sanitizer and [obs] threading as
    {!pontryagin}.
    @raise Rejected when the lint report contains errors. *)

val hull_bounds :
  ?clip:Optim.Box.t ->
  ?lint:bool ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Hull.traj
(** Interval-certified differential hull.  Runs the linter first
    (over [clip] when given, else the model's clip box) and integrates with
    the {!Hull.bounds} [~check:true] NaN/Inf sanitizer on; [obs] is
    threaded into the hull integration.
    @raise Rejected when the lint report contains errors. *)

val recommended_hamiltonian_opt :
  ?domain:Optim.Box.t -> Umf_meanfield.Model.t -> [ `Vertices | `Box of int ]
(** The linter's solver recommendation: [`Vertices] exactly when
    vertex optimality of the Hamiltonian arg max is proven
    ([Lint.vertex_certified]), [`Box 5] otherwise. *)

val static_report :
  ?domain:Optim.Box.t -> Umf_meanfield.Model.t -> Lint.report
(** The full two-tier static-analysis report the gate runs on
    ([Lint.analyze ~tape:true]): L-codes plus tape-level T-codes
    (float-safety, rounding-error bounds, sign facts).  Never raises —
    inspect the report instead of catching {!Rejected}. *)

val drift_cert :
  ?domain:Optim.Box.t -> Umf_meanfield.Model.t -> Cert.t array
(** Per-coordinate certificate of the drift over [domain] (default:
    the model's clip box) × Θ: the interval-arithmetic enclosure as the
    value, the tape tier's a-priori rounding bound on the rounding line
    ([infinity] when not certifiable).  A vacuous entry
    ({!Cert.is_vacuous}) means interval-based bounds on that coordinate
    carry no information — the condition the [umf_lint] C-code tier
    names. *)

val float_error_bound :
  ?domain:Optim.Box.t -> Umf_meanfield.Model.t -> float
(** Certified a-priori bound on the absolute rounding error of one
    compiled drift evaluation, maximised over drift coordinates and
    the whole [domain] × Θ box — the largest rounding line of
    {!drift_cert}; [infinity] when not certifiable. *)

val usable_bounds : ?domain:Optim.Box.t -> Umf_meanfield.Model.t -> bool
(** [true] when no {!drift_cert} coordinate is vacuous — the gate
    certified interval consumers should check before trusting hull
    enclosures. *)
