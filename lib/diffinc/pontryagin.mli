(** Reachability bounds by Pontryagin's maximum principle
    (Sec. IV-C of the paper).

    Computes the exact extremal value of a linear functional c·x(T)
    over all solutions of the differential inclusion, by the
    forward–backward fixpoint iteration of equations (7)–(9):

    - forward:  ẋ = f(x, θ(t)) with the current control,
    - backward: ṗ = −(∂f/∂x)ᵀ p with p(T) = c,
    - update:   θ(t) ∈ arg max_θ f(x(t), θ)·p(t),

    repeated until the control and the objective stabilise.  For
    drifts affine in θ the optimal control is bang-bang and the arg max
    is taken over the vertices of Θ. *)

open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

type objective = [ `Coord of int | `Linear of Vec.t ]
(** Extremise one coordinate x_i(T), or a general linear combination
    c·x(T) (template direction for polyhedral reach sets). *)

type result = {
  value : float;  (** The extremal objective value c·x(T). *)
  times : float array;  (** The uniform time grid. *)
  x : Vec.t array;  (** Optimal state trajectory on the grid. *)
  p : Vec.t array;  (** Costate trajectory. *)
  control : Vec.t array;  (** Optimal (bang-bang) control on the grid. *)
  iterations : int;
  converged : bool;
  opt : [ `Vertices | `Box of int ];
      (** The Hamiltonian arg-max strategy actually used — records
          whether {!Certified.pontryagin}'s auto-selection picked vertex
          enumeration. *)
}

val solve :
  ?steps:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?relax:float ->
  ?opt:[ `Vertices | `Box of int ] ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  sense:[ `Max | `Min ] ->
  objective ->
  result
(** Defaults: [steps = 400] grid intervals, [max_iter = 200],
    [relax = 0.5] under-relaxation of the control update (full updates
    make the sweep cycle between suboptimal bang-bang patterns).

    [check] (default false) raises [Failure] as soon as the objective
    value goes non-finite during a sweep — the same runtime sanitizer
    convention as {!Hull.bounds} and {!Birkhoff.compute}, switched on
    by the {!Certified} wrappers.  [obs] records the
    ["pontryagin.solve"] span, the ["pontryagin.sweeps"] /
    ["pontryagin.hamiltonian_evals"] / ["pontryagin.nonconverged"]
    counters and the ["pontryagin.switches"] gauge (bang-bang switch
    count of the returned control).

    Near the optimal switch the value enters a small limit cycle whose
    amplitude is the grid-discretisation precision; the solver declares
    convergence when the value oscillation over a 10-sweep window drops
    below [tol] (default 1e-4, relative) and returns the best control
    encountered, snapped to pure bang-bang form when that does not lose
    value.
    @raise Invalid_argument on a bad coordinate or non-positive
    horizon. *)

val bound_series :
  ?pool:Pool.t ->
  ?steps:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?relax:float ->
  ?opt:[ `Vertices | `Box of int ] ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  Di.t ->
  x0:Vec.t ->
  coord:int ->
  times:float array ->
  (float * float) array
(** For every horizon T in [times]: [(min, max)] of x_coord(T) over the
    inclusion — the curves of Figure 1.  A zero horizon yields the
    initial value on both sides.  Each horizon is an independent
    min/max solve pair, so with [pool] the series fans out across the
    worker domains with results stored by time index.  [check]/[obs]
    are threaded to every {!solve}; the whole series is additionally
    wrapped in a ["pontryagin.bound_series"] span. *)

val pp_result : Format.formatter -> result -> unit
(** One-line summary: value, iterations, convergence and the
    Hamiltonian arg-max strategy — the uniform result format shared
    with {!Hull.pp_traj} and {!Birkhoff.pp_result}. *)

val result_to_string : result -> string

val switch_times : ?min_dwell:float -> result -> coord:int -> float list
(** Times at which the [coord]-th control component changes value — the
    bang-bang switching instants reported in Figure 2.  Control runs
    shorter than [min_dwell] (default 5 grid cells) are treated as
    discretisation chatter and absorbed into their neighbour. *)
