open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

type t = { directions : Vec.t array; support : float array }

let directions_2d k =
  if k < 3 then invalid_arg "Template.directions_2d: need k >= 3";
  Array.init k (fun i ->
      let a = 2. *. Float.pi *. float_of_int i /. float_of_int k in
      [| Float.cos a; Float.sin a |])

let axis_directions d =
  if d < 1 then invalid_arg "Template.axis_directions: need d >= 1";
  Array.init (2 * d) (fun i ->
      let v = Vec.zeros d in
      v.(i / 2) <- (if i mod 2 = 0 then 1. else -1.);
      v)

let compute ?pool ?steps ?max_iter ?relax di ~x0 ~horizon ~directions =
  let solve_dir alpha =
    (Pontryagin.solve ?steps ?max_iter ?relax di ~x0 ~horizon ~sense:`Max
       (`Linear alpha))
      .Pontryagin.value
  in
  let support =
    match pool with
    | Some p -> Pool.parallel_map ~stage:"template-directions" p solve_dir directions
    | None -> Array.map solve_dir directions
  in
  { directions; support }

let mem ?(tol = 1e-9) t x =
  let ok = ref true in
  Array.iteri
    (fun i alpha -> if Vec.dot alpha x > t.support.(i) +. tol then ok := false)
    t.directions;
  !ok

(* Sutherland–Hodgman clipping of a polygon by the half-plane
   {p : n.p <= h}. *)
let clip_halfplane poly (nx, ny) h =
  let inside (px, py) = (nx *. px) +. (ny *. py) <= h +. 1e-12 in
  let intersect (ax, ay) (bx, by) =
    let da = (nx *. ax) +. (ny *. ay) -. h in
    let db = (nx *. bx) +. (ny *. by) -. h in
    let s = da /. (da -. db) in
    (ax +. (s *. (bx -. ax)), ay +. (s *. (by -. ay)))
  in
  match poly with
  | [] -> []
  | _ ->
      let n = List.length poly in
      let arr = Array.of_list poly in
      let out = ref [] in
      for i = 0 to n - 1 do
        let cur = arr.(i) and next = arr.((i + 1) mod n) in
        let cin = inside cur and nin = inside next in
        if cin then out := cur :: !out;
        if cin <> nin then out := intersect cur next :: !out
      done;
      List.rev !out

let polygon_2d t =
  if Array.length t.directions = 0 then
    invalid_arg "Template.polygon_2d: no directions";
  Array.iter
    (fun d ->
      if Vec.dim d <> 2 then
        invalid_arg "Template.polygon_2d: directions are not 2-D")
    t.directions;
  (* start from a huge square and clip by every template half-plane *)
  let big = 1e6 in
  let square = [ (-.big, -.big); (big, -.big); (big, big); (-.big, big) ] in
  let poly = ref square in
  Array.iteri
    (fun i alpha ->
      poly := clip_halfplane !poly (alpha.(0), alpha.(1)) t.support.(i))
    t.directions;
  Geometry.convex_hull !poly

let area_2d t = Geometry.polygon_area (polygon_2d t)
