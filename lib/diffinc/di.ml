open Umf_numerics

type t = {
  dim : int;
  theta : Optim.Box.t;
  drift : Vec.t -> Vec.t -> Vec.t;
  jacobian : (Vec.t -> Vec.t -> Mat.t) option;
}

let make ?jacobian ~dim ~theta drift =
  if dim <= 0 then invalid_arg "Di.make: need dim > 0";
  { dim; theta; drift; jacobian }

let of_population ?jacobian (m : Umf_meanfield.Population.t) =
  {
    dim = Umf_meanfield.Population.dim m;
    theta = m.Umf_meanfield.Population.theta;
    drift = Umf_meanfield.Population.drift m;
    jacobian;
  }

let of_model (m : Umf_meanfield.Model.t) =
  {
    dim = Umf_meanfield.Model.dim m;
    theta = Umf_meanfield.Model.theta m;
    drift = Umf_meanfield.Model.drift m;
    jacobian = Some (Umf_meanfield.Model.jacobian m);
  }

let integrate_constant ?obs di ~theta ~x0 ~horizon ~dt =
  Ode.integrate ?obs (fun _t x -> di.drift x theta) ~t0:0. ~y0:x0 ~t1:horizon
    ~dt

let integrate_control ?obs di ~control ~x0 ~horizon ~dt =
  Ode.integrate ?obs
    (fun t x -> di.drift x (Optim.Box.clamp di.theta (control t x)))
    ~t0:0. ~y0:x0 ~t1:horizon ~dt

let costate_rhs di ~x ~theta ~p =
  match di.jacobian with
  | Some jac -> Vec.scale (-1.) (Mat.tmulv (jac x theta) p)
  | None -> Vec.scale (-1.) (Diff.jacobian_tv (fun y -> di.drift y theta) x p)

let hamiltonian di ~x ~p theta = Vec.dot (di.drift x theta) p

let argmax_hamiltonian ?(opt = `Vertices) di ~x ~p =
  let h theta = hamiltonian di ~x ~p theta in
  match opt with
  | `Vertices -> fst (Optim.argmax_vertices h di.theta)
  | `Box k -> fst (Optim.maximize_box ~grid:k ~refine_iters:15 h di.theta)
