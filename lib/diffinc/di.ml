open Umf_numerics

type t = {
  dim : int;
  theta : Optim.Box.t;
  drift : Vec.t -> Vec.t -> Vec.t;
  jacobian : (Vec.t -> Vec.t -> Mat.t) option;
  plan : Tape.Plan.t option;
}

let make ?jacobian ?plan ~dim ~theta drift =
  if dim <= 0 then invalid_arg "Di.make: need dim > 0";
  (match plan with
  | Some p when Tape.n_outputs (Tape.Plan.tape p) <> dim ->
      invalid_arg "Di.make: plan output count differs from dim"
  | _ -> ());
  { dim; theta; drift; jacobian; plan }

let of_population ?jacobian (m : Umf_meanfield.Population.t) =
  {
    dim = Umf_meanfield.Population.dim m;
    theta = m.Umf_meanfield.Population.theta;
    drift = Umf_meanfield.Population.drift m;
    jacobian;
    plan = None;
  }

let of_model (m : Umf_meanfield.Model.t) =
  {
    dim = Umf_meanfield.Model.dim m;
    theta = Umf_meanfield.Model.theta m;
    drift = Umf_meanfield.Model.drift m;
    jacobian = Some (Umf_meanfield.Model.jacobian m);
    plan = Some (Umf_meanfield.Model.drift_plan m);
  }

let integrate_constant ?obs di ~theta ~x0 ~horizon ~dt =
  Ode.integrate ?obs (fun _t x -> di.drift x theta) ~t0:0. ~y0:x0 ~t1:horizon
    ~dt

let integrate_control ?obs di ~control ~x0 ~horizon ~dt =
  Ode.integrate ?obs
    (fun t x -> di.drift x (Optim.Box.clamp di.theta (control t x)))
    ~t0:0. ~y0:x0 ~t1:horizon ~dt

(* ---- lockstep batched integration over a compiled drift plan ----

   All lanes share the time grid (it never depends on the state), so a
   whole family of selections advances through one RK4 step at a time
   with the four stage drifts evaluated by [Tape.Plan.run_batch].  The
   per-lane arithmetic below transcribes [Ode.rk4_step] /
   [Ode.integrate] term for term — [axpy_rows] is [Vec.axpy_into],
   [combine_rows] the stage combination, [Float.min dt (t1 - t)] the
   step clamp — and the batch kernel is bit-identical to the scalar
   tape, so every lane's trajectory equals its [integrate_constant] /
   [integrate_control] twin bitwise, for any [par]. *)

(* tmp := (a * k) + y, per entry (= Vec.axpy_into per lane) *)
let axpy_rows a (k : Mat.t) (y : Mat.t) (tmp : Mat.t) =
  let kd = Mat.data k and yd = Mat.data y and td = Mat.data tmp in
  for i = 0 to Array.length td - 1 do
    td.(i) <- (a *. kd.(i)) +. yd.(i)
  done

(* y := y + (h/6)(k1 + 2 k2 + 2 k3 + k4), as [Ode.rk4_step] *)
let combine_rows h (y : Mat.t) k1 k2 k3 k4 =
  let yd = Mat.data y
  and k1d = Mat.data k1
  and k2d = Mat.data k2
  and k3d = Mat.data k3
  and k4d = Mat.data k4 in
  for i = 0 to Array.length yd - 1 do
    yd.(i) <-
      yd.(i)
      +. ((h /. 6.) *. (k1d.(i) +. (2. *. k2d.(i)) +. (2. *. k3d.(i)) +. k4d.(i)))
  done

(* one lockstep RK4 step; [theta_at t xs ths] refreshes the per-lane
   parameter rows at a stage time/state (no-op for constant θ) *)
let lockstep_step ?par plan ~theta_at ~t ~h ~ys ~ths ~tmp ~k1 ~k2 ~k3 ~k4 =
  theta_at t ys ths;
  Tape.Plan.run_batch ?par plan ~xs:ys ~ths ~out:k1;
  axpy_rows (h /. 2.) k1 ys tmp;
  theta_at (t +. (h /. 2.)) tmp ths;
  Tape.Plan.run_batch ?par plan ~xs:tmp ~ths ~out:k2;
  axpy_rows (h /. 2.) k2 ys tmp;
  theta_at (t +. (h /. 2.)) tmp ths;
  Tape.Plan.run_batch ?par plan ~xs:tmp ~ths ~out:k3;
  axpy_rows h k3 ys tmp;
  theta_at (t +. h) tmp ths;
  Tape.Plan.run_batch ?par plan ~xs:tmp ~ths ~out:k4;
  combine_rows h ys k1 k2 k3 k4

(* drive [n] lanes from x0 to the horizon; [record t ys] observes the
   shared time grid exactly as [Ode.integrate] builds it *)
let lockstep_run ?par di plan ~theta_at ~theta_cols ~record ~x0 ~horizon ~dt ~n
    =
  if horizon < 0. then invalid_arg "Ode: t1 < t0";
  if dt <= 0. then invalid_arg "Ode: dt <= 0";
  let d = di.dim in
  if Vec.dim x0 <> d then invalid_arg "Di: x0 dimension mismatch";
  let ys = Mat.init n d (fun _ j -> x0.(j)) in
  let ths = Mat.zeros n (Stdlib.max 1 theta_cols) in
  let tmp = Mat.zeros n d
  and k1 = Mat.zeros n d
  and k2 = Mat.zeros n d
  and k3 = Mat.zeros n d
  and k4 = Mat.zeros n d in
  let t = ref 0. in
  record !t ys;
  while !t < horizon -. 1e-12 do
    let h = Float.min dt (horizon -. !t) in
    lockstep_step ?par plan ~theta_at ~t:!t ~h ~ys ~ths ~tmp ~k1 ~k2 ~k3 ~k4;
    t := !t +. h;
    record !t ys
  done

let mat_row (m : Mat.t) i =
  let d = Mat.cols m in
  Array.init d (fun j -> Mat.get m i j)

let fill_thetas (ths : Mat.t) (thetas : Vec.t array) =
  Array.iteri
    (fun l th ->
      for j = 0 to Vec.dim th - 1 do
        Mat.set ths l j th.(j)
      done)
    thetas

let theta_width di (thetas : Vec.t array) =
  Array.fold_left (fun w th -> Stdlib.max w (Vec.dim th))
    (Optim.Box.dim di.theta) thetas

let integrate_constant_batch ?par di ~(thetas : Vec.t array) ~x0 ~horizon ~dt =
  let n = Array.length thetas in
  if n = 0 then [||]
  else
    match di.plan with
    | None ->
        Array.map
          (fun theta -> integrate_constant di ~theta ~x0 ~horizon ~dt)
          thetas
    | Some plan ->
        let times = ref [] and states = Array.make n [] in
        let record t ys =
          times := t :: !times;
          for l = 0 to n - 1 do
            states.(l) <- mat_row ys l :: states.(l)
          done
        in
        let theta_cols = theta_width di thetas in
        (* constant θ: fill the rows once, before the first stage *)
        let primed = ref false in
        let theta_at _t _xs ths =
          if not !primed then begin
            primed := true;
            fill_thetas ths thetas
          end
        in
        lockstep_run ?par di plan ~theta_at ~theta_cols ~record ~x0 ~horizon
          ~dt ~n;
        Array.map
          (fun rev ->
            let sts = Array.of_list (List.rev rev) in
            Ode.Traj.of_arrays (Array.of_list (List.rev !times)) sts)
          states

let integrate_to_constant_batch ?par di ~(thetas : Vec.t array) ~x0 ~horizon
    ~dt =
  let n = Array.length thetas in
  if n = 0 then [||]
  else
    match di.plan with
    | None ->
        Array.map
          (fun theta ->
            Ode.Traj.last (integrate_constant di ~theta ~x0 ~horizon ~dt))
          thetas
    | Some plan ->
        let last = ref None in
        let record _t ys = last := Some ys in
        let theta_cols = theta_width di thetas in
        let primed = ref false in
        let theta_at _t _xs ths =
          if not !primed then begin
            primed := true;
            fill_thetas ths thetas
          end
        in
        lockstep_run ?par di plan ~theta_at ~theta_cols ~record ~x0 ~horizon
          ~dt ~n;
        let ys = match !last with Some m -> m | None -> assert false in
        Array.init n (fun l -> mat_row ys l)

let integrate_control_batch ?par di
    ~(controls : (float -> Vec.t -> Vec.t) array) ~x0 ~horizon ~dt =
  let n = Array.length controls in
  if n = 0 then [||]
  else
    match di.plan with
    | None ->
        Array.map
          (fun control ->
            Ode.Traj.last (integrate_control di ~control ~x0 ~horizon ~dt))
          controls
    | Some plan ->
        let last = ref None in
        let record _t ys = last := Some ys in
        let theta_cols = Optim.Box.dim di.theta in
        let theta_at t xs ths =
          for l = 0 to n - 1 do
            let th = Optim.Box.clamp di.theta (controls.(l) t (mat_row xs l)) in
            for j = 0 to Vec.dim th - 1 do
              Mat.set ths l j th.(j)
            done
          done
        in
        lockstep_run ?par di plan ~theta_at ~theta_cols ~record ~x0 ~horizon
          ~dt ~n;
        let ys = match !last with Some m -> m | None -> assert false in
        Array.init n (fun l -> mat_row ys l)

let costate_rhs di ~x ~theta ~p =
  match di.jacobian with
  | Some jac -> Vec.scale (-1.) (Mat.tmulv (jac x theta) p)
  | None -> Vec.scale (-1.) (Diff.jacobian_tv (fun y -> di.drift y theta) x p)

let hamiltonian di ~x ~p theta = Vec.dot (di.drift x theta) p

let argmax_hamiltonian ?(opt = `Vertices) di ~x ~p =
  let h theta = hamiltonian di ~x ~p theta in
  match opt with
  | `Vertices -> fst (Optim.argmax_vertices h di.theta)
  | `Box k -> fst (Optim.maximize_box ~grid:k ~refine_iters:15 h di.theta)
