(** Template-polyhedron reach sets (the extension sketched at the end
    of Sec. IV-C and in the paper's future work).

    The coordinate bounds x_i^min(T), x_i^max(T) describe the reach set
    only as a rectangle.  Running the Pontryagin solver on linear
    objectives α·x(T) for a set of template directions α yields the
    exact support function of the reach set in those directions; the
    intersection of the half-spaces {x : α·x ≤ h(α)} is a convex
    polyhedron that over-approximates the reach set and refines the
    rectangle (it IS the convex hull of the reach set as the number of
    directions grows). *)

open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

type t = {
  directions : Vec.t array;  (** Outward template normals α. *)
  support : float array;  (** h(α) = max α·x(T) over the inclusion. *)
}

val directions_2d : int -> Vec.t array
(** [k] unit directions evenly spread on the circle ([k >= 3]). *)

val axis_directions : int -> Vec.t array
(** The 2d axis-aligned directions ±e_i of a d-dimensional system —
    template bounds with these recover the coordinate rectangle. *)

val compute :
  ?pool:Pool.t ->
  ?steps:int ->
  ?max_iter:int ->
  ?relax:float ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  directions:Vec.t array ->
  t
(** One Pontryagin solve per direction; with [pool] the directions fan
    out across the worker domains (supports are stored by direction
    index, so the result is identical for any domain count). *)

val mem : ?tol:float -> t -> Vec.t -> bool
(** Whether a point satisfies every template inequality. *)

val polygon_2d : t -> Geometry.point list
(** For 2-D systems: the polygon of the template polyhedron (vertices
    of the intersection of half-planes, computed by clipping a large
    bounding square).
    @raise Invalid_argument if the directions are not 2-D. *)

val area_2d : t -> float
(** Area of {!polygon_2d}. *)
