(** Differential hulls (Sec. IV-B, Theorem 4).

    A rectangular over-approximation of the reach set of the
    differential inclusion: two coupled trajectories x̲(t) ≤ x̄(t) such
    that every solution stays coordinate-wise between them.  The hull
    right-hand sides are

    ẋ̲_i = min { f_i(z, θ) : z ∈ [x̲, x̄], z_i = x̲_i, θ ∈ Θ }
    ẋ̄_i = max { f_i(z, θ) : z ∈ [x̲, x̄], z_i = x̄_i, θ ∈ Θ }

    computed by box optimisation (exact for multilinear drifts, where
    the extremum is attained at a box vertex).  Cheap but — as the
    paper shows in Figures 4–5 — increasingly loose as Θ grows. *)

open Umf_numerics

type traj = {
  times : float array;
  lower : Vec.t array;
  upper : Vec.t array;
}

type face_extremum =
  lo:Vec.t -> hi:Vec.t -> coord:int -> value:float -> [ `Min | `Max ] -> float
(** Extremum of the drift coordinate [coord] over the hull face
    {z ∈ [lo, hi] : z_coord = value} × Θ.  The default implementation
    optimises numerically; a symbolic model can supply a certified
    interval-arithmetic bound instead (see {!Certified}). *)

val bounds :
  ?grid:int ->
  ?refine:int ->
  ?check:bool ->
  ?clip:Optim.Box.t ->
  ?face_extremum:face_extremum ->
  ?obs:Umf_obs.Obs.t ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  traj
(** Integrate the 2d-dimensional hull system from the degenerate hull
    [x0, x0].  [grid]/[refine] tune the default per-face box
    optimisation (defaults 2 and 8; vertices are always included).
    [check] (default false) raises [Failure] as soon as a hull bound
    becomes NaN or infinite, reporting the offending time and step —
    the runtime sanitizer the {!Certified} path switches on.
    [clip] bounds the hull inside an invariant state box (e.g. the unit
    simplex box for densities) — without it, hulls that blow up take
    the drift far outside the model's domain.
    [obs] records the ["hull.bounds"] span, the ["hull.steps"] /
    ["hull.face_evals"] counters and the ["hull.final_width"] gauge. *)

val lower_at : traj -> float -> Vec.t

val upper_at : traj -> float -> Vec.t

val contains : ?tol:float -> traj -> float -> Vec.t -> bool
(** Whether a state lies inside the hull rectangle at a given time,
    with [tol] slack per coordinate (default 1e-6): extremal solutions
    lie exactly on the hull boundary, where independent integration
    grids disagree by interpolation error. *)

val final_width : traj -> Vec.t
(** x̄(T) − x̲(T): the looseness of the hull at the end of the
    horizon. *)

val final_certs : ?rounding:float -> traj -> Cert.t array
(** The final-time enclosure of each coordinate as a certificate: the
    hull interval [lower, upper] is itself the certified answer (sound
    whenever the face extrema were, e.g. under {!Certified}'s interval
    arithmetic), outward-widened by [rounding] (default 0; pass
    [Certified.float_error_bound] for the compiled-drift rounding
    budget) on the rounding line. *)

val pp_traj : Format.formatter -> traj -> unit
(** One-line summary (max final width as the result's value,
    integration steps, horizon, dimension) in the uniform format
    shared with {!Pontryagin.pp_result} and {!Birkhoff.pp_result}. *)

val traj_to_string : traj -> string
