(** Monte-Carlo under-approximation of reach sets.

    Random piecewise-constant controls (biased towards the vertices of
    Θ, where the extremal bang-bang controls live) yield a cloud of
    genuinely reachable states — an inner approximation that
    complements the outer Pontryagin/hull bounds, in the spirit of the
    sampling methods [39–41] cited by the paper. *)

open Umf_numerics

val sample_states :
  ?dt:float ->
  ?switches:int ->
  ?vertex_bias:float ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  n_controls:int ->
  Rng.t ->
  Vec.t list
(** [n_controls] random controls, each a piecewise-constant function
    with at most [switches] (default 4) switching times; with
    probability [vertex_bias] (default 0.7) each piece is a vertex of
    Θ, otherwise uniform in Θ.  Returns the states reached at
    [horizon]. *)

val hull_2d :
  ?dt:float ->
  ?switches:int ->
  ?vertex_bias:float ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  n_controls:int ->
  Rng.t ->
  Geometry.point list
(** Convex hull of the reachable cloud for 2-D systems.
    @raise Invalid_argument if the system is not 2-dimensional. *)
