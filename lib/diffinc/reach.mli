(** Monte-Carlo under-approximation of reach sets.

    Random piecewise-constant controls (biased towards the vertices of
    Θ, where the extremal bang-bang controls live) yield a cloud of
    genuinely reachable states — an inner approximation that
    complements the outer Pontryagin/hull bounds, in the spirit of the
    sampling methods [39–41] cited by the paper. *)

open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

val sample_states :
  ?pool:Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?dt:float ->
  ?switches:int ->
  ?vertex_bias:float ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  n_controls:int ->
  Rng.t ->
  Vec.t list
(** [n_controls] random controls, each a piecewise-constant function
    with at most [switches] (default 4) switching times; with
    probability [vertex_bias] (default 0.7) each piece is a vertex of
    Θ, otherwise uniform in Θ.  Returns the states reached at
    [horizon].

    Without [pool] the caller's generator is consumed in program
    order, exactly as before.  With a pool, a single [uint64] draw
    from [rng] picks a root seed and control [i] runs on the derived
    stream [Seeds.rng ~root i]: the cloud is then bit-identical for
    any number of domains (including a pool of one), though different
    from the sequential shared-stream cloud.

    [obs] records the sweep as a ["reach.sample"] span plus a
    ["reach.controls"] counter. *)

val hull_2d :
  ?pool:Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?dt:float ->
  ?switches:int ->
  ?vertex_bias:float ->
  Di.t ->
  x0:Vec.t ->
  horizon:float ->
  n_controls:int ->
  Rng.t ->
  Geometry.point list
(** Convex hull of the reachable cloud for 2-D systems.
    @raise Invalid_argument if the system is not 2-dimensional. *)
