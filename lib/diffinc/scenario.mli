(** The hierarchy of adversary classes between uncertain and imprecise.

    Sec. II of the paper notes that between the two extremes — θ
    constant (uncertain) and θ an arbitrary adapted process (imprecise)
    — lie intermediate classes such as deterministic time-dependent
    parameters.  This module quantifies the hierarchy on reachability
    envelopes: piecewise-constant deterministic θ with k pieces gives a
    monotone family

    Uncertain = PW 1 ⊆ PW 2 ⊆ … ⊆ Imprecise,

    whose envelopes converge to the imprecise (bang-bang) bound as k
    grows. *)

open Umf_numerics

type t =
  | Uncertain  (** θ constant. *)
  | Piecewise of int
      (** Deterministic θ, constant on k equal sub-intervals of the
          horizon. *)
  | Deterministic of (float -> Umf_numerics.Vec.t)
      (** One known time-inhomogeneous parameter function θ(t) — the
          classical time-varying CTMC case; the envelope degenerates to
          a single trajectory. *)
  | RateLimited of float
      (** Deterministic θ(t) with a slew-rate constraint
          |dθ/dt| <= L per component: an environment that cannot jump
          (temperature, rainfall).  L → 0 recovers Uncertain, L → ∞
          recovers the imprecise bound.  Searched over piecewise-linear
          controls on a 32-knot grid by constrained coordinate ascent —
          like Piecewise, the result is attained by an admissible
          control, hence a certified inner bound. *)
  | Imprecise  (** Arbitrary measurable θ_t (Pontryagin bound). *)

val extremal_coord :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?grid:int ->
  ?steps:int ->
  ?dt:float ->
  t ->
  Di.t ->
  x0:Vec.t ->
  coord:int ->
  horizon:float ->
  float * float
(** [(min, max)] of x_coord(horizon) over the scenario's admissible
    parameter functions.  [grid] (default 5) is the per-axis resolution
    used for Uncertain/Piecewise searches; Piecewise uses exhaustive
    search when the grid is small enough and coordinate-ascent sweeps
    otherwise, so its result is a certified {e lower} bound on the true
    envelope width (any returned value is attained by an admissible
    control).  [obs] is threaded into the underlying Uncertain sweep or
    Pontryagin solves (the Piecewise/RateLimited searches are not yet
    individually instrumented). *)
