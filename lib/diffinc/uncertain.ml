open Umf_numerics

let theta_grid di grid = Optim.Box.sample_grid di.Di.theta grid

let transient_envelope ?(dt = 1e-2) ?(grid = 21) di ~x0 ~times =
  let m = Array.length times in
  if m = 0 then invalid_arg "Uncertain.transient_envelope: no sample times";
  let horizon = Array.fold_left Float.max 0. times in
  let lower = Array.make m (Vec.create di.Di.dim Float.infinity) in
  let upper = Array.make m (Vec.create di.Di.dim Float.neg_infinity) in
  List.iter
    (fun theta ->
      let traj =
        if horizon > 0. then
          Di.integrate_constant di ~theta ~x0 ~horizon ~dt
        else Ode.Traj.of_arrays [| 0. |] [| Vec.copy x0 |]
      in
      Array.iteri
        (fun i t ->
          let x = Ode.Traj.at traj t in
          lower.(i) <- Vec.cmin lower.(i) x;
          upper.(i) <- Vec.cmax upper.(i) x)
        times)
    (theta_grid di grid);
  (lower, upper)

let equilibria ?(dt = 1e-2) ?(grid = 21) ?(settle_time = 200.) di ~x0 =
  List.map
    (fun theta ->
      Ode.integrate_to (fun _t x -> di.Di.drift x theta) ~t0:0. ~y0:x0
        ~t1:settle_time ~dt)
    (theta_grid di grid)

let extremal_coord ?(dt = 1e-2) ?(grid = 21) di ~x0 ~coord ~horizon =
  if coord < 0 || coord >= di.Di.dim then
    invalid_arg "Uncertain.extremal_coord: coordinate out of range";
  let lower, upper =
    transient_envelope ~dt ~grid di ~x0 ~times:[| horizon |]
  in
  (lower.(0).(coord), upper.(0).(coord))
