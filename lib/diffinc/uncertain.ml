open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool
module Obs = Umf_obs.Obs

let theta_grid di grid = Optim.Box.sample_grid di.Di.theta grid

(* map [f] over the grid; with a pool the per-θ integrations run on
   the worker domains, but results always come back in grid order so
   downstream folds are bit-identical to the sequential path *)
let map_grid ?pool ?(obs = Obs.off) ~stage di grid f =
  let thetas = Array.of_list (theta_grid di grid) in
  let sp = Obs.span_begin obs "uncertain.sweep" in
  let out =
    match pool with
    | Some p -> Pool.parallel_map ~stage p f thetas
    | None -> Array.map f thetas
  in
  if Obs.enabled obs then begin
    Obs.count obs "uncertain.thetas" (Array.length thetas);
    Obs.span_end
      ~metrics:[ ("thetas", float_of_int (Array.length thetas)) ]
      obs sp
  end;
  out

let transient_envelope ?pool ?obs ?(dt = 1e-2) ?(grid = 21) di ~x0 ~times =
  let m = Array.length times in
  if m = 0 then invalid_arg "Uncertain.transient_envelope: no sample times";
  let horizon = Array.fold_left Float.max 0. times in
  let lower = Array.make m (Vec.create di.Di.dim Float.infinity) in
  let upper = Array.make m (Vec.create di.Di.dim Float.neg_infinity) in
  let sample theta =
    let traj =
      if horizon > 0. then
        Di.integrate_constant ?obs di ~theta ~x0 ~horizon ~dt
      else Ode.Traj.of_arrays [| 0. |] [| Vec.copy x0 |]
    in
    Array.map (Ode.Traj.at traj) times
  in
  let obs_off = match obs with Some o -> not (Obs.enabled o) | None -> true in
  let per_theta =
    match (pool, di.Di.plan, obs_off && horizon > 0.) with
    | None, Some _, true ->
        (* compiled drift, no pool, not tracing: integrate the whole θ
           grid in lockstep — one batched drift evaluation per RK4
           stage instead of one tape call per (θ, stage).  Lanes come
           back in grid order and are bit-identical to the per-θ
           [Di.integrate_constant] loop, so the envelope fold below is
           unchanged.  Tracing keeps the scalar path (it owns the
           per-trajectory ode.integrate spans); a pool keeps the
           per-θ parallel map from PR 2. *)
        let thetas = Array.of_list (theta_grid di grid) in
        let trajs = Di.integrate_constant_batch di ~thetas ~x0 ~horizon ~dt in
        Array.map (fun traj -> Array.map (Ode.Traj.at traj) times) trajs
    | _ -> map_grid ?pool ?obs ~stage:"uncertain-sweep" di grid sample
  in
  Array.iter
    (fun samples ->
      Array.iteri
        (fun i x ->
          lower.(i) <- Vec.cmin lower.(i) x;
          upper.(i) <- Vec.cmax upper.(i) x)
        samples)
    per_theta;
  (lower, upper)

let equilibria ?pool ?obs ?(dt = 1e-2) ?(grid = 21) ?(settle_time = 200.) di
    ~x0 =
  let obs_off = match obs with Some o -> not (Obs.enabled o) | None -> true in
  match (pool, di.Di.plan, obs_off) with
  | None, Some _, true ->
      (* batched settle: final states only, in grid order, bit-identical
         to the per-θ [Ode.integrate_to] loop (see transient_envelope) *)
      let thetas = Array.of_list (theta_grid di grid) in
      Array.to_list
        (Di.integrate_to_constant_batch di ~thetas ~x0 ~horizon:settle_time
           ~dt)
  | _ ->
      Array.to_list
        (map_grid ?pool ?obs ~stage:"uncertain-equilibria" di grid
           (fun theta ->
             Ode.integrate_to
               (fun _t x -> di.Di.drift x theta)
               ~t0:0. ~y0:x0 ~t1:settle_time ~dt))

let extremal_coord ?pool ?obs ?(dt = 1e-2) ?(grid = 21) di ~x0 ~coord ~horizon
    =
  if coord < 0 || coord >= di.Di.dim then
    invalid_arg "Uncertain.extremal_coord: coordinate out of range";
  let lower, upper =
    transient_envelope ?pool ?obs ~dt ~grid di ~x0 ~times:[| horizon |]
  in
  (lower.(0).(coord), upper.(0).(coord))
