open Umf_numerics
module Obs = Umf_obs.Obs

type result = {
  polygon : Geometry.point list;
  iterations : int;
  escaped : bool;
}

let to_point x = (x.(0), x.(1))

let of_point (px, py) = [| px; py |]

let traj_points traj =
  Array.to_list (Array.map to_point traj.Ode.Traj.states)

let compute ?theta_a ?theta_b ?(dt = 1e-2) ?(settle_time = 200.)
    ?(escape_time = 30.) ?(n_boundary = 200) ?(max_rounds = 50) ?(tol = 1e-6)
    ?(check = false) ?(obs = Obs.off) di ~x_start =
  if di.Di.dim <> 2 then invalid_arg "Birkhoff.compute: system is not 2-D";
  let on = Obs.enabled obs in
  let sp = Obs.span_begin obs "birkhoff.compute" in
  let theta_a =
    match theta_a with Some t -> t | None -> di.Di.theta.Optim.Box.hi
  in
  let theta_b =
    match theta_b with Some t -> t | None -> di.Di.theta.Optim.Box.lo
  in
  let settle theta x0 =
    Ode.integrate_to ~obs
      (fun _t x -> di.Di.drift x theta)
      ~t0:0. ~y0:x0 ~t1:settle_time ~dt
  in
  let run theta x0 horizon =
    Di.integrate_constant ~obs di ~theta ~x0 ~horizon ~dt
  in
  (* seed region: heteroclinic loop between the two extreme dynamics *)
  let x0 = settle theta_a x_start in
  let t1 = run theta_b x0 settle_time in
  let t2 = run theta_a (Ode.Traj.last t1) settle_time in
  let points = ref (to_point x0 :: traj_points t1 @ traj_points t2) in
  let hull = ref (Geometry.convex_hull !points) in
  let theta_vertices = Optim.Box.vertices di.Di.theta in
  (* worst outward drift at a boundary point with outward normal nrm *)
  let outward_escape (px, py) (nx, ny) =
    let x = of_point (px, py) in
    List.fold_left
      (fun best theta ->
        let f = di.Di.drift x theta in
        let out = (f.(0) *. nx) +. (f.(1) *. ny) in
        match best with
        | Some (b, _) when b >= out -> best
        | _ -> Some (out, theta))
      None theta_vertices
  in
  let rounds = ref 0 in
  let growing = ref true in
  let outward_left = ref false in
  while !growing && !rounds < max_rounds do
    incr rounds;
    outward_left := false;
    (* test resampled boundary points against their edge normals *)
    let boundary = Geometry.resample_boundary !hull n_boundary in
    let edge_normals = Geometry.edge_midpoints !hull in
    let normal_for p =
      (* use the normal of the nearest edge midpoint *)
      let best = ref None in
      List.iter
        (fun (mid, nrm) ->
          let d = Geometry.dist p mid in
          match !best with
          | Some (bd, _) when bd <= d -> ()
          | _ -> best := Some (d, nrm))
        edge_normals;
      match !best with Some (_, nrm) -> nrm | None -> (0., 0.)
    in
    let additions = ref [] in
    List.iter
      (fun p ->
        match outward_escape p (normal_for p) with
        | Some (out, theta) when out > tol ->
            outward_left := true;
            let traj = run theta (of_point p) escape_time in
            additions := traj_points traj @ !additions
        | Some _ | None -> ())
      boundary;
    if !outward_left then begin
      (* only the current hull vertices matter for the next hull *)
      let before = Geometry.polygon_area !hull in
      points := !additions @ !hull;
      hull := Geometry.convex_hull !points;
      points := !hull;
      let after = Geometry.polygon_area !hull in
      if check && not (Float.is_finite after) then
        failwith
          (Printf.sprintf
             "Birkhoff.compute: non-finite region area at round %d" !rounds);
      if on then Obs.gauge obs "birkhoff.area" after;
      (* stop growing once escapes no longer enlarge the region: the
         outward drift then only traces chords of a non-convex set
         already inside the hull *)
      if after -. before <= 1e-5 *. Float.max 1e-6 before then
        growing := false
    end
    else growing := false
  done;
  (* dense trajectory points make hulls with tens of thousands of
     vertices; simplify to keep downstream membership tests cheap *)
  let max_vertices = 256 in
  let polygon =
    if List.length !hull > max_vertices then
      Geometry.convex_hull (Geometry.resample_boundary !hull max_vertices)
    else !hull
  in
  let escaped = !outward_left && !rounds >= max_rounds in
  if on then begin
    let area = Geometry.polygon_area polygon in
    Obs.count obs "birkhoff.iterations" !rounds;
    if escaped then Obs.count obs "birkhoff.nonconverged" 1;
    Obs.gauge obs "birkhoff.area" area;
    Obs.span_end
      ~metrics:
        [
          ("rounds", float_of_int !rounds);
          ("area", area);
          ("converged", if escaped then 0. else 1.);
        ]
      obs sp
  end;
  { polygon; iterations = !rounds; escaped }

let contains ?tol r p =
  Geometry.point_in_convex_polygon ?tol p r.polygon

let area r = Geometry.polygon_area r.polygon

let converged r = not r.escaped

let pp_result ppf r =
  Format.fprintf ppf
    "@[birkhoff: value %.6g (area), %d iteration%s, %s, %d vertices@]" (area r)
    r.iterations
    (if r.iterations = 1 then "" else "s")
    (if converged r then "converged" else "NOT converged")
    (List.length r.polygon)

let result_to_string r = Format.asprintf "%a" pp_result r
