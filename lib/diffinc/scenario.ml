open Umf_numerics

type t =
  | Uncertain
  | Piecewise of int
  | Deterministic of (float -> Vec.t)
  | RateLimited of float
  | Imprecise

let integrate_piecewise di ~dt ~x0 ~horizon pieces =
  let k = Array.length pieces in
  let control t _x =
    let i =
      Stdlib.min (k - 1)
        (int_of_float (Float.floor (t /. horizon *. float_of_int k)))
    in
    pieces.(Stdlib.max 0 i)
  in
  Ode.Traj.last (Di.integrate_control di ~control ~x0 ~horizon ~dt)

let piecewise_extremum ~grid ~dt di ~x0 ~coord ~horizon ~k sense =
  let better a b = match sense with `Max -> a > b | `Min -> a < b in
  let axis_values =
    (* per θ-axis candidate values *)
    Array.init (Optim.Box.dim di.Di.theta) (fun i ->
        let lo = di.Di.theta.Optim.Box.lo.(i)
        and hi = di.Di.theta.Optim.Box.hi.(i) in
        if lo = hi then [| lo |] else Vec.linspace lo hi grid)
  in
  let m = Optim.Box.dim di.Di.theta in
  let value pieces =
    (integrate_piecewise di ~dt ~x0 ~horizon pieces).(coord)
  in
  (* number of exhaustive combinations: (grid^m)^k *)
  let combos_per_piece =
    Array.fold_left (fun acc vs -> acc * Array.length vs) 1 axis_values
  in
  let total = int_of_float (float_of_int combos_per_piece ** float_of_int k) in
  let enumerate_piece_values () =
    (* all θ vectors on the grid *)
    let rec build i acc =
      if i = m then [ Array.of_list (List.rev acc) ]
      else
        Array.to_list axis_values.(i)
        |> List.concat_map (fun v -> build (i + 1) (v :: acc))
    in
    Array.of_list (build 0 [])
  in
  let piece_values = enumerate_piece_values () in
  if total <= 4096 then begin
    (* exhaustive search over all piecewise grid controls *)
    let best = ref None in
    let rec go i pieces =
      if i = k then begin
        let v = value (Array.of_list (List.rev pieces)) in
        match !best with
        | Some b when not (better v b) -> ()
        | _ -> best := Some v
      end
      else
        Array.iter (fun pv -> go (i + 1) (pv :: pieces)) piece_values
    in
    go 0 [];
    match !best with Some v -> v | None -> x0.(coord)
  end
  else begin
    (* coordinate-ascent over pieces from several starts *)
    let starts =
      [
        Array.init k (fun _ -> Optim.Box.midpoint di.Di.theta);
        Array.init k (fun _ -> Vec.copy di.Di.theta.Optim.Box.lo);
        Array.init k (fun _ -> Vec.copy di.Di.theta.Optim.Box.hi);
      ]
    in
    let refine pieces =
      let pieces = Array.map Vec.copy pieces in
      let current = ref (value pieces) in
      let improved = ref true in
      let sweeps = ref 0 in
      while !improved && !sweeps < 8 do
        incr sweeps;
        improved := false;
        for i = 0 to k - 1 do
          Array.iter
            (fun cand ->
              let saved = pieces.(i) in
              pieces.(i) <- cand;
              let v = value pieces in
              if better v !current then begin
                current := v;
                improved := true
              end
              else pieces.(i) <- saved)
            piece_values
        done
      done;
      !current
    in
    List.fold_left
      (fun acc s ->
        let v = refine s in
        match acc with
        | Some b when not (better v b) -> acc
        | _ -> Some v)
      None starts
    |> function Some v -> v | None -> x0.(coord)
  end

(* piecewise-linear control through knot values; knots every
   horizon/(n_knots-1), linear interpolation between them *)
let integrate_knots di ~dt ~x0 ~horizon knots =
  let n = Array.length knots in
  let control t _x =
    let pos = t /. horizon *. float_of_int (n - 1) in
    let j = Stdlib.min (n - 2) (Stdlib.max 0 (int_of_float (Float.floor pos))) in
    let s = Float.min 1. (Float.max 0. (pos -. float_of_int j)) in
    Vec.lerp knots.(j) knots.(j + 1) s
  in
  Ode.Traj.last (Di.integrate_control di ~control ~x0 ~horizon ~dt)

let rate_limited_extremum ~grid ~dt di ~x0 ~coord ~horizon ~rate sense =
  let better a b = match sense with `Max -> a > b | `Min -> a < b in
  let m = Optim.Box.dim di.Di.theta in
  let n_knots = 33 in
  let delta = horizon /. float_of_int (n_knots - 1) in
  let max_step = rate *. delta in
  let value knots = (integrate_knots di ~dt ~x0 ~horizon knots).(coord) in
  let refine start =
    let knots = Array.map Vec.copy start in
    let current = ref (value knots) in
    let improved = ref true in
    let sweeps = ref 0 in
    while !improved && !sweeps < 6 do
      incr sweeps;
      improved := false;
      for j = 0 to n_knots - 1 do
        for axis = 0 to m - 1 do
          (* feasible window for this knot given its neighbours *)
          let lo = ref di.Di.theta.Optim.Box.lo.(axis)
          and hi = ref di.Di.theta.Optim.Box.hi.(axis) in
          if j > 0 then begin
            lo := Float.max !lo (knots.(j - 1).(axis) -. max_step);
            hi := Float.min !hi (knots.(j - 1).(axis) +. max_step)
          end;
          if j < n_knots - 1 then begin
            lo := Float.max !lo (knots.(j + 1).(axis) -. max_step);
            hi := Float.min !hi (knots.(j + 1).(axis) +. max_step)
          end;
          if !hi > !lo +. 1e-12 then begin
            let saved = knots.(j).(axis) in
            Array.iter
              (fun cand ->
                knots.(j).(axis) <- cand;
                let v = value knots in
                if better v !current then begin
                  current := v;
                  improved := true
                end
                else knots.(j).(axis) <- saved)
              (Vec.linspace !lo !hi grid)
          end
        done
      done
    done;
    !current
  in
  let starts =
    [
      Array.init n_knots (fun _ -> Optim.Box.midpoint di.Di.theta);
      Array.init n_knots (fun _ -> Vec.copy di.Di.theta.Optim.Box.lo);
      Array.init n_knots (fun _ -> Vec.copy di.Di.theta.Optim.Box.hi);
    ]
  in
  List.fold_left
    (fun acc s ->
      let v = refine s in
      match acc with Some b when not (better v b) -> acc | _ -> Some v)
    None starts
  |> function Some v -> v | None -> x0.(coord)

let extremal_coord ?pool ?obs ?(grid = 5) ?steps ?(dt = 1e-2) scenario di ~x0
    ~coord ~horizon =
  if coord < 0 || coord >= di.Di.dim then
    invalid_arg "Scenario.extremal_coord: coordinate out of range";
  match scenario with
  | Uncertain ->
      Uncertain.extremal_coord ?pool ?obs ~dt ~grid di ~x0 ~coord ~horizon
  | Piecewise k ->
      if k < 1 then invalid_arg "Scenario.extremal_coord: need k >= 1";
      ( piecewise_extremum ~grid ~dt di ~x0 ~coord ~horizon ~k `Min,
        piecewise_extremum ~grid ~dt di ~x0 ~coord ~horizon ~k `Max )
  | Deterministic control ->
      let final =
        if horizon <= 0. then Vec.copy x0
        else
          Ode.Traj.last
            (Di.integrate_control di
               ~control:(fun t _x -> control t)
               ~x0 ~horizon ~dt)
      in
      (final.(coord), final.(coord))
  | RateLimited rate ->
      if rate < 0. then invalid_arg "Scenario.extremal_coord: negative rate";
      ( rate_limited_extremum ~grid ~dt di ~x0 ~coord ~horizon ~rate `Min,
        rate_limited_extremum ~grid ~dt di ~x0 ~coord ~horizon ~rate `Max )
  | Imprecise ->
      let lo =
        (Pontryagin.solve ?steps ?obs di ~x0 ~horizon ~sense:`Min
           (`Coord coord))
          .Pontryagin.value
      in
      let hi =
        (Pontryagin.solve ?steps ?obs di ~x0 ~horizon ~sense:`Max
           (`Coord coord))
          .Pontryagin.value
      in
      (lo, hi)
