open Umf_numerics

type constraint_ = { label : string; normal : Vec.t; bound : float }

let le ?label ~coord ~dim b =
  if coord < 0 || coord >= dim then invalid_arg "Safety.le: coordinate range";
  let normal = Vec.zeros dim in
  normal.(coord) <- 1.;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "x%d <= %g" coord b
  in
  { label; normal; bound = b }

let ge ?label ~coord ~dim b =
  if coord < 0 || coord >= dim then invalid_arg "Safety.ge: coordinate range";
  let normal = Vec.zeros dim in
  normal.(coord) <- -1.;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "x%d >= %g" coord b
  in
  { label; normal; bound = -.b }

type witness = {
  constraint_ : constraint_;
  time : float;
  value : float;
  control : Pontryagin.result;
}

type verdict = Safe of float | Violated of witness

let verify ?steps ?(check_points = 20) di ~x0 ~horizon constraints =
  if constraints = [] then invalid_arg "Safety.verify: no constraints";
  if check_points < 1 then invalid_arg "Safety.verify: check_points < 1";
  List.iter
    (fun c ->
      if Vec.dim c.normal <> di.Di.dim then
        invalid_arg
          (Printf.sprintf "Safety.verify: constraint %s dimension mismatch"
             c.label))
    constraints;
  let times =
    Array.init check_points (fun i ->
        horizon *. float_of_int (i + 1) /. float_of_int check_points)
  in
  let margin = ref Float.infinity in
  let worst : witness option ref = ref None in
  (* initial state check *)
  List.iter
    (fun c ->
      let v = Vec.dot c.normal x0 in
      margin := Float.min !margin (c.bound -. v))
    constraints;
  let initial_violation =
    List.find_opt (fun c -> Vec.dot c.normal x0 > c.bound) constraints
  in
  (match initial_violation with
  | Some c ->
      (* degenerate witness at t = 0: build a trivial control record *)
      let r =
        Pontryagin.solve ?steps di ~x0 ~horizon:(Float.max horizon 1e-6)
          ~sense:`Max (`Linear c.normal)
      in
      worst :=
        Some { constraint_ = c; time = 0.; value = Vec.dot c.normal x0; control = r }
  | None ->
      (try
         List.iter
           (fun c ->
             Array.iter
               (fun t ->
                 let r =
                   Pontryagin.solve ?steps di ~x0 ~horizon:t ~sense:`Max
                     (`Linear c.normal)
                 in
                 margin := Float.min !margin (c.bound -. r.Pontryagin.value);
                 if r.Pontryagin.value > c.bound then begin
                   worst :=
                     Some
                       {
                         constraint_ = c;
                         time = t;
                         value = r.Pontryagin.value;
                         control = r;
                       };
                   raise Exit
                 end)
               times)
           constraints
       with Exit -> ()));
  match !worst with Some w -> Violated w | None -> Safe !margin
