open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool
module Obs = Umf_obs.Obs

type objective = [ `Coord of int | `Linear of Vec.t ]

type result = {
  value : float;
  times : float array;
  x : Vec.t array;
  p : Vec.t array;
  control : Vec.t array;
  iterations : int;
  converged : bool;
  opt : [ `Vertices | `Box of int ];
}

let objective_vector di sense obj =
  let c =
    match obj with
    | `Coord i ->
        if i < 0 || i >= di.Di.dim then
          invalid_arg "Pontryagin: coordinate out of range";
        Array.init di.Di.dim (fun j -> if i = j then 1. else 0.)
    | `Linear c ->
        if Vec.dim c <> di.Di.dim then
          invalid_arg "Pontryagin: objective dimension mismatch";
        Vec.copy c
  in
  match sense with `Max -> c | `Min -> Vec.scale (-1.) c

(* forward sweep: RK4 with the control frozen per grid interval *)
let forward di ~x0 ~h ~control xs =
  let k = Array.length control in
  xs.(0) <- Vec.copy x0;
  for i = 0 to k - 1 do
    let theta = control.(i) in
    let rhs _t x = di.Di.drift x theta in
    xs.(i + 1) <- Ode.rk4_step rhs 0. xs.(i) h
  done

(* backward sweep: integrate the costate from T to 0 holding x fixed *)
let backward di ~c ~h ~control xs ps =
  let k = Array.length control in
  ps.(k) <- Vec.copy c;
  for i = k - 1 downto 0 do
    let theta = control.(i) in
    (* state on the interval: midpoint interpolation for the RK4 stages *)
    let x_lo = xs.(i) and x_hi = xs.(i + 1) in
    let rhs s p =
      (* s in [0, 1] parametrises the interval backwards from t_{i+1} *)
      let x = Vec.lerp x_hi x_lo s in
      Vec.scale (-1.) (Di.costate_rhs di ~x ~theta ~p)
      (* note: integrating backwards in time flips the sign, so the
         effective rhs is +(∂f/∂x)ᵀ p; costate_rhs already carries the
         minus sign, hence the extra [scale (-1.)] *)
    in
    (* one RK4 step of length h in the reversed time variable *)
    let k1 = rhs 0. ps.(i + 1) in
    let k2 = rhs 0.5 (Vec.axpy (h /. 2.) k1 ps.(i + 1)) in
    let k3 = rhs 0.5 (Vec.axpy (h /. 2.) k2 ps.(i + 1)) in
    let k4 = rhs 1. (Vec.axpy h k3 ps.(i + 1)) in
    ps.(i) <-
      Vec.mapi
        (fun j v ->
          v +. (h /. 6. *. (k1.(j) +. (2. *. k2.(j)) +. (2. *. k3.(j)) +. k4.(j))))
        ps.(i + 1)
  done

let solve ?(steps = 400) ?(max_iter = 200) ?(tol = 1e-4) ?(relax = 0.5)
    ?(opt = `Vertices) ?(check = false) ?(obs = Obs.off) di ~x0 ~horizon
    ~sense obj =
  if horizon <= 0. then invalid_arg "Pontryagin.solve: need horizon > 0";
  if steps < 1 then invalid_arg "Pontryagin.solve: need steps >= 1";
  if Vec.dim x0 <> di.Di.dim then invalid_arg "Pontryagin.solve: x0 dimension";
  let on = Obs.enabled obs in
  let sp = Obs.span_begin obs "pontryagin.solve" in
  let c = objective_vector di sense obj in
  let h = horizon /. float_of_int steps in
  let times = Array.init (steps + 1) (fun i -> float_of_int i *. h) in
  let mid = Optim.Box.midpoint di.Di.theta in
  let control = Array.init steps (fun _ -> Vec.copy mid) in
  let xs = Array.make (steps + 1) (Vec.zeros di.Di.dim) in
  let ps = Array.make (steps + 1) (Vec.zeros di.Di.dim) in
  (* each update_control call evaluates the Hamiltonian arg max once
     per grid interval *)
  let update_calls = ref 0 in
  let update_control =
    match (opt, di.Di.plan) with
    | `Vertices, Some plan ->
        (* compiled drift + vertex enumeration: evaluate the drift at
           every (interval midpoint, Θ-vertex) pair in ONE batched
           sweep per call, then replay [Optim.argmax_vertices]'s
           keep-first fold per interval.  H = f·p uses [Vec.dot] on the
           batched drift rows, so each interval's arg max is bitwise
           the scalar [Di.argmax_hamiltonian]. *)
        let d = di.Di.dim in
        let verts = Array.of_list (Optim.Box.vertices di.Di.theta) in
        let nv = Array.length verts in
        let rows = steps * nv in
        let thd = Optim.Box.dim di.Di.theta in
        let ths = Mat.zeros rows (Stdlib.max 1 thd) in
        for i = 0 to steps - 1 do
          for v = 0 to nv - 1 do
            for j = 0 to Vec.dim verts.(v) - 1 do
              Mat.set ths ((i * nv) + v) j verts.(v).(j)
            done
          done
        done;
        let xs_mat = Mat.zeros rows d in
        let fout = Mat.zeros rows d in
        let frow = Vec.zeros d in
        fun ~relax ->
          incr update_calls;
          for i = 0 to steps - 1 do
            let x = Vec.lerp xs.(i) xs.(i + 1) 0.5 in
            for v = 0 to nv - 1 do
              let r = (i * nv) + v in
              for j = 0 to d - 1 do
                Mat.set xs_mat r j x.(j)
              done
            done
          done;
          Tape.Plan.run_batch plan ~xs:xs_mat ~ths ~out:fout;
          for i = 0 to steps - 1 do
            let p = Vec.lerp ps.(i) ps.(i + 1) 0.5 in
            let best = ref None in
            for v = 0 to nv - 1 do
              let r = (i * nv) + v in
              for j = 0 to d - 1 do
                frow.(j) <- Mat.get fout r j
              done;
              let hx = Vec.dot frow p in
              match !best with
              | Some (_, fb) when fb >= hx -> ()
              | _ -> best := Some (v, hx)
            done;
            let star =
              match !best with Some (v, _) -> verts.(v) | None -> assert false
            in
            control.(i) <- Vec.lerp control.(i) star relax
          done
    | _ ->
        fun ~relax ->
          incr update_calls;
          for i = 0 to steps - 1 do
            (* evaluate at the interval midpoint state/costate *)
            let x = Vec.lerp xs.(i) xs.(i + 1) 0.5 in
            let p = Vec.lerp ps.(i) ps.(i + 1) 0.5 in
            let star = Di.argmax_hamiltonian ~opt di ~x ~p in
            control.(i) <- Vec.lerp control.(i) star relax
          done
  in
  let value () = Vec.dot c xs.(steps) in
  let iterations = ref 0 and converged = ref false in
  (* Near the optimal bang-bang switch the control cell chatters across
     sweeps: the value enters a small limit cycle whose amplitude is the
     grid-discretisation precision.  We therefore (a) remember the best
     control seen and (b) declare convergence when the value oscillation
     over a window of sweeps falls below [tol]. *)
  let window = Array.make 10 Float.nan in
  let best_value = ref Float.neg_infinity in
  let best_control = Array.map Vec.copy control in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    forward di ~x0 ~h ~control xs;
    let v = value () in
    if check && not (Float.is_finite v) then
      failwith
        (Printf.sprintf
           "Pontryagin.solve: non-finite objective (%g) at sweep %d" v
           !iterations);
    if v > !best_value then begin
      best_value := v;
      Array.iteri (fun i ci -> best_control.(i) <- Vec.copy ci) control
    end;
    window.((!iterations - 1) mod Array.length window) <- v;
    if !iterations >= Array.length window then begin
      let wmin = Array.fold_left Float.min Float.infinity window in
      let wmax = Array.fold_left Float.max Float.neg_infinity window in
      if wmax -. wmin <= tol *. Float.max 1. (Float.abs v) then
        converged := true
    end;
    backward di ~c ~h ~control xs ps;
    update_control ~relax
  done;
  Array.blit (Array.map Vec.copy best_control) 0 control 0 steps;
  forward di ~x0 ~h ~control xs;
  backward di ~c ~h ~control xs ps;
  (* snap to the pure bang-bang argmax control; keep the snap unless it
     loses more than the discretisation tolerance *)
  update_control ~relax:1.0;
  forward di ~x0 ~h ~control xs;
  if value () < !best_value -. (tol *. Float.max 1. (Float.abs !best_value))
  then begin
    Array.blit (Array.map Vec.copy best_control) 0 control 0 steps;
    forward di ~x0 ~h ~control xs
  end;
  backward di ~c ~h ~control xs ps;
  let signed = value () in
  let value = match sense with `Max -> signed | `Min -> -.signed in
  if on then begin
    (* bang-bang switch count: grid cells where the control changes *)
    let switches = ref 0 in
    for i = 1 to steps - 1 do
      if Vec.norm_inf (Vec.sub control.(i) control.(i - 1)) > 1e-9 then
        incr switches
    done;
    Obs.count obs "pontryagin.sweeps" !iterations;
    Obs.count obs "pontryagin.hamiltonian_evals" (steps * !update_calls);
    if not !converged then Obs.count obs "pontryagin.nonconverged" 1;
    Obs.gauge obs "pontryagin.switches" (float_of_int !switches);
    Obs.span_end
      ~metrics:
        [
          ("sweeps", float_of_int !iterations);
          ("switches", float_of_int !switches);
          ("converged", if !converged then 1. else 0.);
        ]
      obs sp
  end;
  { value; times; x = xs; p = ps; control; iterations = !iterations;
    converged = !converged; opt }

let bound_series ?pool ?steps ?max_iter ?tol ?relax ?opt ?check ?obs di ~x0
    ~coord ~times =
  let sp =
    match obs with
    | Some o -> Obs.span_begin o "pontryagin.bound_series"
    | None -> Obs.null_span
  in
  let at t =
    if t <= 0. then (x0.(coord), x0.(coord))
    else begin
      let lo =
        (solve ?steps ?max_iter ?tol ?relax ?opt ?check ?obs di ~x0 ~horizon:t
           ~sense:`Min (`Coord coord))
          .value
      in
      let hi =
        (solve ?steps ?max_iter ?tol ?relax ?opt ?check ?obs di ~x0 ~horizon:t
           ~sense:`Max (`Coord coord))
          .value
      in
      (lo, hi)
    end
  in
  let out =
    match pool with
    | Some p -> Pool.parallel_map ~stage:"pontryagin-series" p at times
    | None -> Array.map at times
  in
  (match obs with
  | Some o ->
      Obs.span_end
        ~metrics:[ ("horizons", float_of_int (Array.length times)) ]
        o sp
  | None -> ());
  out

let pp_result ppf r =
  let strategy =
    match r.opt with
    | `Vertices -> "vertices"
    | `Box g -> Printf.sprintf "box:%d" g
  in
  Format.fprintf ppf
    "@[pontryagin: value %.6g, %d iteration%s, %s, opt %s@]" r.value
    r.iterations
    (if r.iterations = 1 then "" else "s")
    (if r.converged then "converged" else "NOT converged")
    strategy

let result_to_string r = Format.asprintf "%a" pp_result r

let switch_times ?min_dwell result ~coord =
  let k = Array.length result.control in
  if k = 0 then []
  else begin
    let h = result.times.(1) -. result.times.(0) in
    let min_dwell = match min_dwell with Some d -> d | None -> 5. *. h in
    (* segment the control into maximal constant runs, scanning
       backwards so the list comes out in time order *)
    let segments = ref [] in
    for i = k - 1 downto 0 do
      let v = result.control.(i).(coord) in
      match !segments with
      | (v0, _start, stop) :: rest when Float.abs (v0 -. v) <= 1e-9 ->
          segments := (v0, i, stop) :: rest
      | _ -> segments := (v, i, i + 1) :: !segments
    done;
    (* absorb runs shorter than the dwell threshold (chattering cells
       around the true switch) into their predecessor, re-merging equal
       neighbours as they appear *)
    let merged =
      List.fold_left
        (fun acc (v, start, stop) ->
          let dwell = float_of_int (stop - start) *. h in
          match acc with
          | (v0, s0, _) :: rest when dwell < min_dwell ->
              (v0, s0, stop) :: rest
          | (v0, s0, _) :: rest when Float.abs (v0 -. v) <= 1e-9 ->
              (v0, s0, stop) :: rest
          | _ -> (v, start, stop) :: acc)
        [] !segments
      |> List.rev
    in
    (* a short leading run has no predecessor: absorb it forwards *)
    let merged =
      match merged with
      | (_, s0, stop0) :: (v1, _, stop1) :: rest
        when float_of_int (stop0 - s0) *. h < min_dwell ->
          (v1, s0, stop1) :: rest
      | other -> other
    in
    let rec boundaries = function
      | (_, _, stop) :: ((_, _, _) :: _ as rest) ->
          result.times.(stop) :: boundaries rest
      | _ -> []
    in
    boundaries merged
  end
