open Umf_numerics
module Runtime = Umf_runtime.Runtime
module Pool = Runtime.Pool
module Obs = Umf_obs.Obs

let random_piecewise_control rng di ~horizon ~switches ~vertex_bias =
  let vertices = Array.of_list (Optim.Box.vertices di.Di.theta) in
  let n_pieces = 1 + Rng.int rng (switches + 1) in
  let cuts =
    Array.init (n_pieces - 1) (fun _ -> Rng.float_range rng 0. horizon)
  in
  Array.sort compare cuts;
  let draw () =
    if Rng.float rng < vertex_bias then
      Vec.copy vertices.(Rng.int rng (Array.length vertices))
    else Optim.Box.sample_uniform rng di.Di.theta
  in
  let values = Array.init n_pieces (fun _ -> draw ()) in
  fun t _x ->
    let rec piece i = if i < Array.length cuts && t >= cuts.(i) then piece (i + 1) else i in
    values.(piece 0)

let sample_states ?pool ?(obs = Obs.off) ?(dt = 1e-2) ?(switches = 4)
    ?(vertex_bias = 0.7) di ~x0 ~horizon ~n_controls rng =
  if n_controls <= 0 then invalid_arg "Reach.sample_states: need n_controls > 0";
  if horizon <= 0. then invalid_arg "Reach.sample_states: need horizon > 0";
  let sp = Obs.span_begin obs "reach.sample" in
  let one rng =
    let control =
      random_piecewise_control rng di ~horizon ~switches ~vertex_bias
    in
    let traj = Di.integrate_control di ~control ~x0 ~horizon ~dt in
    Ode.Traj.last traj
  in
  (* integration consumes no randomness, so drawing every control first
     and batch-integrating afterwards reads the caller's stream in
     exactly the order the integrate-as-you-draw loop did — and the
     lockstep lanes are bit-identical to per-control integration, so
     the cloud is unchanged *)
  let out =
    match pool with
    | None -> (
        match di.Di.plan with
        | Some _ ->
            let controls =
              List.init n_controls (fun _ ->
                  random_piecewise_control rng di ~horizon ~switches
                    ~vertex_bias)
            in
            Array.to_list
              (Di.integrate_control_batch di
                 ~controls:(Array.of_list controls) ~x0 ~horizon ~dt)
        | None -> List.init n_controls (fun _ -> one rng))
    | Some p ->
        (* one draw from the caller's stream picks a root; control [i]
           then runs on its own splitmix64-derived generator, so the
           cloud is a function of (root, i) only — bit-identical for any
           chunking or domain count *)
        let root = Int64.to_int (Rng.uint64 rng) in
        (match di.Di.plan with
        | Some _ ->
            let controls =
              Array.init n_controls (fun i ->
                  random_piecewise_control
                    (Runtime.Seeds.rng ~root i)
                    di ~horizon ~switches ~vertex_bias)
            in
            (* lanes are independent and each is bitwise its scalar
               twin, so ANY partition into batches gives the same
               cloud: hand each worker a contiguous slice to
               batch-integrate (one pool section total, not one per RK4
               stage) *)
            let csize = 64 in
            let n_slices = (n_controls + csize - 1) / csize in
            let slices =
              Array.init n_slices (fun s ->
                  Array.sub controls (s * csize)
                    (Stdlib.min csize (n_controls - (s * csize))))
            in
            let finals =
              Pool.parallel_map ~stage:"reach-sample" p
                (fun slice ->
                  Di.integrate_control_batch di ~controls:slice ~x0 ~horizon
                    ~dt)
                slices
            in
            Array.to_list (Array.concat (Array.to_list finals))
        | None ->
            Array.to_list
              (Pool.parallel_map ~stage:"reach-sample" p
                 (fun i -> one (Runtime.Seeds.rng ~root i))
                 (Array.init n_controls Fun.id)))
  in
  if Obs.enabled obs then begin
    Obs.count obs "reach.controls" n_controls;
    Obs.span_end
      ~metrics:[ ("controls", float_of_int n_controls) ]
      obs sp
  end;
  out

let hull_2d ?pool ?obs ?dt ?switches ?vertex_bias di ~x0 ~horizon ~n_controls
    rng =
  if di.Di.dim <> 2 then invalid_arg "Reach.hull_2d: system is not 2-D";
  let states =
    sample_states ?pool ?obs ?dt ?switches ?vertex_bias di ~x0 ~horizon
      ~n_controls rng
  in
  Geometry.convex_hull (List.map (fun x -> (x.(0), x.(1))) states)
