open Umf_numerics
module Obs = Umf_obs.Obs

type traj = {
  times : float array;
  lower : Vec.t array;
  upper : Vec.t array;
}

(* extremise f_i over the face {z in [lo, hi] : z_i = v} x Theta *)
let face_extremum ~grid ~refine di ~lo ~hi ~coord ~v sense =
  let d = di.Di.dim in
  let face_lo = Vec.copy lo and face_hi = Vec.copy hi in
  face_lo.(coord) <- v;
  face_hi.(coord) <- v;
  let joint =
    Optim.Box.make
      (Array.append face_lo di.Di.theta.Optim.Box.lo)
      (Array.append face_hi di.Di.theta.Optim.Box.hi)
  in
  let f_i z =
    let x = Array.sub z 0 d in
    let theta = Array.sub z d (Array.length z - d) in
    (di.Di.drift x theta).(coord)
  in
  match sense with
  | `Min -> snd (Optim.minimize_box ~grid ~refine_iters:refine f_i joint)
  | `Max -> snd (Optim.maximize_box ~grid ~refine_iters:refine f_i joint)

type face_extremum =
  lo:Vec.t -> hi:Vec.t -> coord:int -> value:float -> [ `Min | `Max ] -> float

(* All 2d face-extremum problems of one hull step, solved together
   against the drift's batch plan: the 2d minimize_box/maximize_box
   candidate scans concatenate into ONE batched drift evaluation, and
   the follow-up coordinate descents run in lockstep across faces (one
   batched evaluation per probe wave — plus first, then minus, exactly
   the scalar probe order).  Candidate enumeration order, the
   keep-first fold rule, the radius schedule, the 1e-15 bounds slack
   and the strict-improvement accept test all transcribe
   [Optim.minimize_box] / [Optim.coordinate_refine], and the batch
   kernel is bit-identical to the scalar tape — so each face value
   equals its scalar [face_extremum] twin bitwise. *)
let batched_face_extrema ~grid ~refine di plan ~lo ~hi =
  let d = di.Di.dim in
  let th = di.Di.theta in
  let thd = Optim.Box.dim th in
  let jd = d + thd in
  let nf = 2 * d in
  (* face j < d minimises f_(j) on {z_j = lo_j}; face j >= d maximises
     f_(j-d) on {z_(j-d) = hi_(j-d)}, as a minimisation of -f *)
  let boxes =
    Array.init nf (fun j ->
        let coord = j mod d in
        let v = if j < d then lo.(coord) else hi.(coord) in
        let face_lo = Vec.copy lo and face_hi = Vec.copy hi in
        face_lo.(coord) <- v;
        face_hi.(coord) <- v;
        Optim.Box.make
          (Array.append face_lo th.Optim.Box.lo)
          (Array.append face_hi th.Optim.Box.hi))
  in
  let signed j raw = if j < d then raw else -.raw in
  let fill xs ths row (z : Vec.t) =
    for i = 0 to d - 1 do
      Mat.set xs row i z.(i)
    done;
    for i = 0 to thd - 1 do
      Mat.set ths row i z.(d + i)
    done
  in
  (* candidate scan: vertices then the factorial grid, per face *)
  let cands =
    Array.map
      (fun b ->
        Array.of_list (Optim.Box.vertices b @ Optim.Box.sample_grid b grid))
      boxes
  in
  let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 cands in
  let xs = Mat.zeros total d and ths = Mat.zeros total (Stdlib.max 1 thd) in
  let row = ref 0 in
  Array.iter
    (Array.iter (fun z ->
         fill xs ths !row z;
         incr row))
    cands;
  let vals = Mat.zeros total d in
  Tape.Plan.run_batch plan ~xs ~ths ~out:vals;
  let best_x = Array.make nf [||] and best_f = Array.make nf Float.nan in
  let row = ref 0 in
  Array.iteri
    (fun j cs ->
      let coord = j mod d in
      let bx = ref None in
      Array.iter
        (fun z ->
          let fx = signed j (Mat.get vals !row coord) in
          incr row;
          match !bx with
          | Some (_, fb) when fb <= fx -> ()
          | _ -> bx := Some (z, fx))
        cs;
      match !bx with
      | Some (z, f) ->
          best_x.(j) <- Vec.copy z;
          best_f.(j) <- f
      | None -> assert false)
    cands;
  (* lockstep coordinate descent: the wave over faces of one (sweep,
     coordinate, direction) probe *)
  let probe_rows = Array.make nf (-1) in
  let probe_cand : Vec.t array = Array.make nf [||] in
  let radius = ref 0.25 in
  for _ = 1 to refine do
    for i = 0 to jd - 1 do
      List.iter
        (fun dir ->
          let nrows = ref 0 in
          Array.iteri
            (fun j b ->
              probe_rows.(j) <- -1;
              let span = b.Optim.Box.hi.(i) -. b.Optim.Box.lo.(i) in
              if span > 0. then begin
                let step = !radius *. span in
                let v = best_x.(j).(i) +. (dir *. step) in
                if
                  v >= b.Optim.Box.lo.(i) -. 1e-15
                  && v <= b.Optim.Box.hi.(i) +. 1e-15
                then begin
                  let cand = Vec.copy best_x.(j) in
                  cand.(i) <-
                    Float.min b.Optim.Box.hi.(i)
                      (Float.max b.Optim.Box.lo.(i) v);
                  probe_cand.(j) <- cand;
                  probe_rows.(j) <- !nrows;
                  incr nrows
                end
              end)
            boxes;
          if !nrows > 0 then begin
            let xs = Mat.zeros !nrows d
            and ths = Mat.zeros !nrows (Stdlib.max 1 thd) in
            Array.iteri
              (fun j r -> if r >= 0 then fill xs ths r probe_cand.(j))
              probe_rows;
            let vals = Mat.zeros !nrows d in
            Tape.Plan.run_batch plan ~xs ~ths ~out:vals;
            Array.iteri
              (fun j r ->
                if r >= 0 then begin
                  let fc = signed j (Mat.get vals r (j mod d)) in
                  if fc < best_f.(j) then begin
                    best_x.(j) <- probe_cand.(j);
                    best_f.(j) <- fc
                  end
                end)
              probe_rows
          end)
        [ 1.; -1. ]
    done;
    radius := !radius *. 0.7
  done;
  Array.init nf (fun j -> signed j best_f.(j))

let bounds ?(grid = 2) ?(refine = 8) ?(check = false) ?clip
    ?face_extremum:custom ?(obs = Obs.off) di ~x0 ~horizon ~dt =
  if horizon < 0. then invalid_arg "Hull.bounds: negative horizon";
  if dt <= 0. then invalid_arg "Hull.bounds: dt <= 0";
  if Vec.dim x0 <> di.Di.dim then invalid_arg "Hull.bounds: x0 dimension";
  let on = Obs.enabled obs in
  let sp = Obs.span_begin obs "hull.bounds" in
  let d = di.Di.dim in
  let extremum =
    match custom with
    | Some f -> f
    | None ->
        fun ~lo ~hi ~coord ~value sense ->
          face_extremum ~grid ~refine di ~lo ~hi ~coord ~v:value sense
  in
  let face_evals = ref 0 in
  let extremum =
    if on then fun ~lo ~hi ~coord ~value sense ->
      incr face_evals;
      extremum ~lo ~hi ~coord ~value sense
    else extremum
  in
  (* hull state z = (lower, upper) of dimension 2d *)
  let rhs =
    match (custom, di.Di.plan) with
    | None, Some plan ->
        (* compiled drift: solve all 2d faces per step in batch
           (bit-identical to the scalar per-face path) *)
        fun _t z ->
          let lo = Array.sub z 0 d and hi = Array.sub z d d in
          let lo' = Vec.cmin lo hi and hi' = Vec.cmax lo hi in
          if on then face_evals := !face_evals + (2 * d);
          batched_face_extrema ~grid ~refine di plan ~lo:lo' ~hi:hi'
    | _ ->
        fun _t z ->
          let lo = Array.sub z 0 d and hi = Array.sub z d d in
          (* the hull can momentarily invert by integration error; repair *)
          let lo' = Vec.cmin lo hi and hi' = Vec.cmax lo hi in
          Array.init (2 * d) (fun j ->
              if j < d then
                extremum ~lo:lo' ~hi:hi' ~coord:j ~value:lo'.(j) `Min
              else
                let coord = j - d in
                extremum ~lo:lo' ~hi:hi' ~coord ~value:hi'.(coord) `Max)
  in
  let clip_state z =
    match clip with
    | None -> z
    | Some box ->
        Array.init (2 * d) (fun j ->
            let i = if j < d then j else j - d in
            Float.min box.Optim.Box.hi.(i) (Float.max box.Optim.Box.lo.(i) z.(j)))
  in
  let z0 = Array.append (Vec.copy x0) (Vec.copy x0) in
  let steps = Stdlib.max 1 (int_of_float (Float.ceil (horizon /. dt))) in
  let h = if horizon > 0. then horizon /. float_of_int steps else 0. in
  let times = Array.make (steps + 1) 0. in
  let lower = Array.make (steps + 1) (Vec.copy x0) in
  let upper = Array.make (steps + 1) (Vec.copy x0) in
  let check_state i z =
    if check then
      Array.iteri
        (fun j v ->
          if not (Float.is_finite v) then
            failwith
              (Printf.sprintf
                 "Hull.bounds: non-finite %s bound (coordinate %d = %g) at t \
                  = %g, step %d"
                 (if j < d then "lower" else "upper")
                 (j mod d) v
                 (float_of_int i *. h)
                 i))
        z
  in
  let z = ref (clip_state z0) in
  check_state 0 !z;
  for i = 1 to steps do
    z := clip_state (Ode.rk4_step rhs 0. !z h);
    check_state i !z;
    (* enforce the hull ordering after each step *)
    let lo = Array.sub !z 0 d and hi = Array.sub !z d d in
    let lo' = Vec.cmin lo hi and hi' = Vec.cmax lo hi in
    times.(i) <- float_of_int i *. h;
    lower.(i) <- lo';
    upper.(i) <- hi';
    z := Array.append lo' hi'
  done;
  if on then begin
    Obs.count obs "hull.steps" steps;
    Obs.count obs "hull.face_evals" !face_evals;
    let width = Vec.norm_inf (Vec.sub upper.(steps) lower.(steps)) in
    Obs.gauge obs "hull.final_width" width;
    Obs.span_end
      ~metrics:
        [
          ("steps", float_of_int steps);
          ("face_evals", float_of_int !face_evals);
          ("final_width", width);
        ]
      obs sp
  end;
  { times; lower; upper }

let locate times t =
  let n = Array.length times in
  if t <= times.(0) then 0
  else if t >= times.(n - 1) then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if times.(mid) <= t then lo := mid else hi := mid
    done;
    !lo
  end

let interp times arr t =
  let n = Array.length times in
  if t <= times.(0) then Vec.copy arr.(0)
  else if t >= times.(n - 1) then Vec.copy arr.(n - 1)
  else begin
    let i = locate times t in
    let s = (t -. times.(i)) /. (times.(i + 1) -. times.(i)) in
    Vec.lerp arr.(i) arr.(i + 1) s
  end

let lower_at h t = interp h.times h.lower t

let upper_at h t = interp h.times h.upper t

let contains ?(tol = 1e-6) h t x =
  let slack = Vec.create (Vec.dim x) tol in
  Vec.le (Vec.sub (lower_at h t) slack) x
  && Vec.le x (Vec.add (upper_at h t) slack)

let final_width h =
  let n = Array.length h.times in
  Vec.sub h.upper.(n - 1) h.lower.(n - 1)

let pp_traj ppf h =
  let n = Array.length h.times in
  let width = final_width h in
  Format.fprintf ppf
    "@[hull: value %.6g (max final width), %d iteration%s, horizon %g, dim %d@]"
    (Vec.norm_inf width) (n - 1)
    (if n - 1 = 1 then "" else "s")
    h.times.(n - 1) (Vec.dim h.lower.(0))

let traj_to_string h = Format.asprintf "%a" pp_traj h

let final_certs ?(rounding = 0.) tr =
  let last = Array.length tr.times - 1 in
  Array.init
    (Vec.dim tr.lower.(last))
    (fun i ->
      Cert.widen ~rounding
        (Cert.of_interval
           (Interval.make tr.lower.(last).(i) tr.upper.(last).(i))))
