(** Birkhoff centres of 2-D differential inclusions (Sec. V-C).

    Theorem 3 shows stationary measures of the stochastic system
    concentrate on the Birkhoff centre B_F.  For 2-D systems the paper
    computes (the convex hull of) B_F by:

    + integrating to the fixed point x₀ of ẋ = f(x, θ_a);
    + integrating the heteroclinic trajectories x₀ →(θ_b)→ x₁(∞)
      →(θ_a)→ back, whose union delimits an initial region;
    + repeatedly checking every boundary point for a parameter whose
      drift points outward, and growing the region with the escaping
      trajectory, until the drift field never points outward —
      at which point no solution can leave the region.

    The region is maintained as a convex polygon. *)

open Umf_numerics

type result = {
  polygon : Geometry.point list;  (** CCW convex polygon. *)
  iterations : int;  (** Expansion rounds performed. *)
  escaped : bool;  (** True if expansion stopped at the round budget
                        with outward drift remaining. *)
}

val compute :
  ?theta_a:Vec.t ->
  ?theta_b:Vec.t ->
  ?dt:float ->
  ?settle_time:float ->
  ?escape_time:float ->
  ?n_boundary:int ->
  ?max_rounds:int ->
  ?tol:float ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  Di.t ->
  x_start:Vec.t ->
  result
(** Defaults: [theta_a] = upper corner of Θ, [theta_b] = lower corner,
    [settle_time = 200] for reaching equilibria, [escape_time = 30] for
    growing trajectories, [n_boundary = 200] boundary test points,
    [max_rounds = 50], [tol = 1e-6] on the outward drift component.

    [check] (default false) raises [Failure] if the region area goes
    non-finite — the sanitizer convention shared with {!Hull.bounds}
    and {!Pontryagin.solve}.  [obs] records the ["birkhoff.compute"]
    span, the ["birkhoff.iterations"] / ["birkhoff.nonconverged"]
    counters and the per-round ["birkhoff.area"] gauge.
    @raise Invalid_argument unless the system is 2-dimensional. *)

val contains : ?tol:float -> result -> Geometry.point -> bool
(** Membership in the region's polygon; [tol] (default 1e-12, scaled
    per edge) adds boundary slack — useful because equilibria and
    extremal trajectories lie exactly on the boundary. *)

val area : result -> float

val converged : result -> bool
(** [not escaped]: the expansion reached a region the drift field never
    leaves. *)

val pp_result : Format.formatter -> result -> unit
(** One-line summary (area as the result's value, iterations,
    convergence, vertex count) in the uniform format shared with
    {!Pontryagin.pp_result} and {!Hull.pp_traj}. *)

val result_to_string : result -> string
