(** Parametrised differential inclusions ẋ ∈ F(x) = {f(x, θ) : θ ∈ Θ}.

    This is the mean-field limit object of an imprecise population
    process (Theorem 1): the drift [f] is the limit drift of
    Definition 3 and Θ is the parameter box.  All solvers in this
    library ({!Hull}, {!Pontryagin}, {!Birkhoff}, {!Reach},
    {!Uncertain}) operate on this type. *)

open Umf_numerics

type t = {
  dim : int;
  theta : Optim.Box.t;
  drift : Vec.t -> Vec.t -> Vec.t;  (** [drift x theta] = f(x, θ). *)
  jacobian : (Vec.t -> Vec.t -> Mat.t) option;
      (** Optional analytic ∂f/∂x at (x, θ); finite differences are
          used when absent. *)
}

val make :
  ?jacobian:(Vec.t -> Vec.t -> Mat.t) ->
  dim:int ->
  theta:Optim.Box.t ->
  (Vec.t -> Vec.t -> Vec.t) ->
  t

val of_population : ?jacobian:(Vec.t -> Vec.t -> Mat.t) -> Umf_meanfield.Population.t -> t
(** The mean-field differential inclusion of a population model:
    drift and θ-box are taken from the transition classes. *)

val of_model : Umf_meanfield.Model.t -> t
(** The differential inclusion of a symbolic model: compiled drift,
    θ-box, and the {e exact} symbolic Jacobian (Pontryagin costates
    free of finite-difference error). *)

val integrate_constant :
  ?obs:Umf_obs.Obs.t ->
  t ->
  theta:Vec.t ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Ode.Traj.t
(** One selection: the solution under a constant parameter.  [?obs]
    is forwarded to {!Ode.integrate}. *)

val integrate_control :
  ?obs:Umf_obs.Obs.t ->
  t ->
  control:(float -> Vec.t -> Vec.t) ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Ode.Traj.t
(** The solution under a deterministic feedback control θ(t, x)
    (clamped into Θ).  [?obs] is forwarded to {!Ode.integrate}. *)

val costate_rhs : t -> x:Vec.t -> theta:Vec.t -> p:Vec.t -> Vec.t
(** The Pontryagin costate right-hand side ṗ = −(∂f/∂x)ᵀ p, using the
    analytic Jacobian when available. *)

val hamiltonian : t -> x:Vec.t -> p:Vec.t -> Vec.t -> float
(** H(x, p, θ) = f(x, θ)·p. *)

val argmax_hamiltonian :
  ?opt:[ `Vertices | `Box of int ] -> t -> x:Vec.t -> p:Vec.t -> Vec.t
(** The maximising parameter arg max_θ H(x, p, θ).  [`Vertices]
    (default) enumerates the corners of Θ — exact for drifts affine in
    θ; [`Box k] additionally searches a k-per-axis grid with local
    refinement for non-affine drifts. *)
