(** Parametrised differential inclusions ẋ ∈ F(x) = {f(x, θ) : θ ∈ Θ}.

    This is the mean-field limit object of an imprecise population
    process (Theorem 1): the drift [f] is the limit drift of
    Definition 3 and Θ is the parameter box.  All solvers in this
    library ({!Hull}, {!Pontryagin}, {!Birkhoff}, {!Reach},
    {!Uncertain}) operate on this type. *)

open Umf_numerics

type t = {
  dim : int;
  theta : Optim.Box.t;
  drift : Vec.t -> Vec.t -> Vec.t;  (** [drift x theta] = f(x, θ). *)
  jacobian : (Vec.t -> Vec.t -> Mat.t) option;
      (** Optional analytic ∂f/∂x at (x, θ); finite differences are
          used when absent. *)
  plan : Tape.Plan.t option;
      (** The drift's evaluation plan when it is a compiled tape
          ({!of_model}).  Its batch mode is bit-identical to [drift],
          so solvers ({!Hull}, {!Pontryagin}, {!Uncertain}, {!Reach})
          batch whole point grids through it whenever it is present,
          without changing results. *)
}

val make :
  ?jacobian:(Vec.t -> Vec.t -> Mat.t) ->
  ?plan:Tape.Plan.t ->
  dim:int ->
  theta:Optim.Box.t ->
  (Vec.t -> Vec.t -> Vec.t) ->
  t
(** When [plan] is given, its tape's outputs must compute exactly the
    given drift (bitwise) — the batched solver paths silently assume
    it.  @raise Invalid_argument if the plan's output count differs
    from [dim]. *)

val of_population : ?jacobian:(Vec.t -> Vec.t -> Mat.t) -> Umf_meanfield.Population.t -> t
(** The mean-field differential inclusion of a population model:
    drift and θ-box are taken from the transition classes. *)

val of_model : Umf_meanfield.Model.t -> t
(** The differential inclusion of a symbolic model: compiled drift,
    θ-box, the {e exact} symbolic Jacobian (Pontryagin costates free
    of finite-difference error), and the drift's batch plan. *)

val integrate_constant :
  ?obs:Umf_obs.Obs.t ->
  t ->
  theta:Vec.t ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Ode.Traj.t
(** One selection: the solution under a constant parameter.  [?obs]
    is forwarded to {!Ode.integrate}. *)

val integrate_control :
  ?obs:Umf_obs.Obs.t ->
  t ->
  control:(float -> Vec.t -> Vec.t) ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Ode.Traj.t
(** The solution under a deterministic feedback control θ(t, x)
    (clamped into Θ).  [?obs] is forwarded to {!Ode.integrate}. *)

(** {1 Lockstep batched integration}

    Families of selections integrated together: all lanes share the
    fixed RK4 time grid, so each step evaluates the four stage drifts
    for the whole family via [Tape.Plan.run_batch] (one instruction
    dispatch per chunk of lanes instead of per lane).  Every lane's
    result is bit-identical to its scalar {!integrate_constant} /
    {!integrate_control} twin, for any [par]; when the inclusion has no
    {!plan}, these fall back to exactly that scalar loop.  [par]
    schedules batch chunks ([Runtime.Pool.parallel_for] partially
    applied; sequential when omitted). *)

val integrate_constant_batch :
  ?par:Tape.Plan.runner ->
  t ->
  thetas:Vec.t array ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Ode.Traj.t array
(** One trajectory per parameter vector, from the shared [x0]. *)

val integrate_to_constant_batch :
  ?par:Tape.Plan.runner ->
  t ->
  thetas:Vec.t array ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Vec.t array
(** Final states only — the batched {!Ode.integrate_to}. *)

val integrate_control_batch :
  ?par:Tape.Plan.runner ->
  t ->
  controls:(float -> Vec.t -> Vec.t) array ->
  x0:Vec.t ->
  horizon:float ->
  dt:float ->
  Vec.t array
(** Final states under one feedback control per lane (each clamped
    into Θ, as {!integrate_control}). *)

val costate_rhs : t -> x:Vec.t -> theta:Vec.t -> p:Vec.t -> Vec.t
(** The Pontryagin costate right-hand side ṗ = −(∂f/∂x)ᵀ p, using the
    analytic Jacobian when available. *)

val hamiltonian : t -> x:Vec.t -> p:Vec.t -> Vec.t -> float
(** H(x, p, θ) = f(x, θ)·p. *)

val argmax_hamiltonian :
  ?opt:[ `Vertices | `Box of int ] -> t -> x:Vec.t -> p:Vec.t -> Vec.t
(** The maximising parameter arg max_θ H(x, p, θ).  [`Vertices]
    (default) enumerates the corners of Θ — exact for drifts affine in
    θ; [`Box k] additionally searches a k-per-axis grid with local
    refinement for non-affine drifts. *)
