(** Analysis of the uncertain scenario: θ constant but unknown in Θ
    (Definition 2 / Corollary 1).

    The reachable set is the union over constant θ of single ODE
    solutions, explored on a parameter grid.  Every entry point takes
    an optional [?pool]; the per-θ integrations are independent, so
    with a pool they fan out across the worker domains and are folded
    back in grid order — output is bit-identical to the sequential
    path for any number of domains.

    Every entry point also takes [?obs]: each grid sweep is recorded
    as an ["uncertain.sweep"] span carrying a [thetas] metric plus an
    ["uncertain.thetas"] counter. *)

open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

val transient_envelope :
  ?pool:Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?dt:float ->
  ?grid:int ->
  Di.t ->
  x0:Vec.t ->
  times:float array ->
  Vec.t array * Vec.t array
(** [(lower, upper)] per sample time: the coordinate-wise min/max of
    x^θ(t) over a [grid]-per-axis factorial grid of constant parameters
    (default 21).  These are the solid curves of Figure 1. *)

val equilibria :
  ?pool:Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?dt:float ->
  ?grid:int ->
  ?settle_time:float ->
  Di.t ->
  x0:Vec.t ->
  Vec.t list
(** Long-run states x^θ(∞) for each constant θ on the grid, obtained by
    integrating from [x0] for [settle_time] (default 200) — the red
    equilibrium curve of Figure 3.  For systems with fixed points this
    is the equilibrium manifold sampled along Θ. *)

val extremal_coord :
  ?pool:Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?dt:float ->
  ?grid:int ->
  Di.t ->
  x0:Vec.t ->
  coord:int ->
  horizon:float ->
  float * float
(** [(min, max)] of x_coord(horizon) over constant parameters. *)
