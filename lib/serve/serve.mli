(** Long-running NDJSON analysis daemon.

    Serves the {!Umf.Analysis} spec API over the {!Umf.Codec} wire
    protocol: one JSON request object per line in, one response line
    out, in request order.  Built to stay up:

    - {b Batching}: the transport drains every complete line the
      client has pipelined and schedules them as one batch over a
      shared, long-lived {!Umf.Runtime.Pool} — per-request exception
      isolation, so one poisoned request is one error response.
    - {b Caching}: model resolution is memoised (one compiled
      {!Umf.Tape.Plan} per model per process) and exact-match results
      are memoised by content fingerprint as rendered JSON, so a warm
      (cache-hit) response is bitwise-identical to the cold response
      that seeded it.
    - {b Deadlines}: a per-request observation clock raises past the
      deadline, turning every solver probe into a cancellation point;
      expiry yields a structured ["deadline_exceeded"] error carrying
      the partial {!Umf.Cert} ledger, never a crash or a wedged
      worker.
    - {b Backpressure}: analysis requests beyond the queue limit are
      refused with an ["overloaded"] error instead of growing an
      unbounded backlog.

    Every request updates the service-lifetime metrics registry
    (per-endpoint ["serve.<op>"] latency spans and request counters,
    cache hit/miss and error counters, queue-wait / batch-size /
    cache-size gauges), which the ["metrics"] endpoint reports. *)

exception Deadline_exceeded
(** Raised by a request's deadline clock inside solver probes; callers
    embedding {!process} never see it (it becomes an error response),
    but custom [Obs] clocks may reuse it. *)

type config = {
  domains : int option;  (** Pool workers; [None] = runtime default. *)
  cache_capacity : int;  (** Max memoised results; 0 disables. *)
  queue_limit : int;  (** Max analysis requests admitted per batch. *)
  default_deadline_ms : float option;
      (** Deadline for requests that carry none; [None] = unbounded. *)
  obs : Umf.Obs.t;  (** Base observation context (e.g. an NDJSON trace). *)
}

val config :
  ?domains:int ->
  ?cache_capacity:int ->
  ?queue_limit:int ->
  ?default_deadline_ms:float ->
  ?obs:Umf.Obs.t ->
  unit ->
  config
(** Defaults: runtime-default pool size, 256 cached results, 64
    requests per batch, no default deadline, no tracing.
    @raise Invalid_argument on non-positive sizes or deadline. *)

type t
(** A running service: pool + caches + metrics registry.  Create once,
    serve any number of transports/batches, {!shutdown} when done. *)

val create : config -> t

val shutdown : t -> unit
(** Shut the pool down.  Idempotent; the caches and metrics registry
    stay readable. *)

val metrics_agg : t -> Umf.Obs.Agg.t
(** The service-lifetime metrics registry (also the parent of every
    per-request registry, so request gauges accumulate here). *)

val metrics_json : t -> Umf.Obs.Json.t
(** What the ["metrics"] endpoint returns: uptime, cache size, and the
    registry's spans/counters/gauges. *)

val process : t -> string list -> string list
(** One batch in, one response line per request out (request order, no
    trailing newlines).  The embedding entry point — the transports
    below feed it; tests can call it directly. *)

val serve_fd : t -> input:Unix.file_descr -> output:Unix.file_descr -> unit
(** Serve until EOF on [input].  Reads greedily: each blocking read is
    followed by a non-blocking drain, and every complete line buffered
    at that point forms one batch. *)

val serve_stdio : t -> unit
(** {!serve_fd} over stdin/stdout. *)

val serve_socket : ?stop:(unit -> bool) -> t -> string -> unit
(** Listen on a unix-domain socket at [path] (unlinking any stale
    one), accepting clients sequentially; each connection is served
    with {!serve_fd} until its EOF.  [stop] is polled between
    connections. *)
