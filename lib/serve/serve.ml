(* The umf_serve daemon engine: a long-running NDJSON analysis service
   over the Codec wire protocol.

   Scheduling model: the input is drained greedily, so one read yields
   every complete request line the client has pipelined — that set is
   a batch.  Service ops (ping/metrics/models) and parse errors are
   answered inline; analysis requests beyond the queue limit get an
   "overloaded" error; the rest fan out over the shared Runtime.Pool
   with per-request exception isolation (Pool.map_results), each
   handler running on a worker with pool = None in its spec (nested
   sections are rejected by the pool, and the per-request solve is the
   parallel unit here).  Responses are written back in request order.

   Deadlines: a per-request observation clock raises Deadline_exceeded
   once the absolute deadline has passed, turning every solver probe
   (span begin/end) into a cancellation point.  The request unwinds at
   the next probe, the worker survives, and the response is a
   structured error carrying the partial Cert ledger recovered from
   the request's gauge registry.

   Caching: model resolution is memoised (the Model.t carries its
   compiled Tape.Plan, so every request for the same model reuses one
   compiled plan), and exact-match results — keyed by the Codec
   content fingerprint of (effective spec, op) — are memoised as
   rendered JSON payloads, so a warm response is bitwise-identical to
   the cold one that seeded it. *)

module Obs = Umf.Obs
module Json = Umf.Obs.Json
module Cert = Umf.Cert
module Interval = Umf.Interval
module Codec = Umf.Codec
module Model = Umf.Model
module Registry = Umf.Registry
module Pool = Umf.Runtime.Pool

exception Deadline_exceeded

type config = {
  domains : int option;
  cache_capacity : int;
  queue_limit : int;
  default_deadline_ms : float option;
  obs : Obs.t;
}

let config ?domains ?(cache_capacity = 256) ?(queue_limit = 64)
    ?default_deadline_ms ?(obs = Obs.off) () =
  (match domains with
  | Some d when d < 1 -> invalid_arg "Serve.config: need domains >= 1"
  | _ -> ());
  if cache_capacity < 0 then
    invalid_arg "Serve.config: need cache_capacity >= 0";
  if queue_limit < 1 then invalid_arg "Serve.config: need queue_limit >= 1";
  (match default_deadline_ms with
  | Some d when not (d > 0.) ->
      invalid_arg "Serve.config: need default_deadline_ms > 0"
  | _ -> ());
  { domains; cache_capacity; queue_limit; default_deadline_ms; obs }

(* a cached payload: the rendered result/cert JSON values, re-emitted
   verbatim on a hit so warm bytes equal cold bytes *)
type cached = { result : Json.t; cert : Json.t }

type t = {
  cfg : config;
  pool : Pool.t;
  agg : Obs.Agg.t;  (* service-lifetime registry; per-request parents *)
  lock : Mutex.t;  (* guards the two caches and [fifo] *)
  models : (string, Model.t) Hashtbl.t;
  results : (string, cached) Hashtbl.t;
  fifo : string Queue.t;  (* insertion order, for eviction *)
  t0 : float;
}

let create cfg =
  let agg = Obs.Agg.create () in
  let pool =
    Pool.create ~obs:(Obs.with_agg cfg.obs agg) ?domains:cfg.domains ()
  in
  {
    cfg;
    pool;
    agg;
    lock = Mutex.create ();
    models = Hashtbl.create 16;
    results = Hashtbl.create 64;
    fifo = Queue.create ();
    t0 = Unix.gettimeofday ();
  }

let metrics_agg t = t.agg

let shutdown t = Pool.shutdown t.pool

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* compiled-model cache: resolve each registry name once, force the
   drift's evaluation plan, and hand the same Model.t (hence the same
   compiled tapes) to every subsequent request *)
let resolve_model t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.models name with
      | Some m -> Ok m
      | None -> (
          match Registry.find name with
          | Error _ as e -> e
          | Ok m ->
              ignore (Model.drift_plan m);
              Hashtbl.replace t.models name m;
              Ok m))

let find_cached t fp =
  locked t (fun () -> Hashtbl.find_opt t.results fp)

let store_cached t fp payload =
  if t.cfg.cache_capacity > 0 then
    locked t (fun () ->
        if not (Hashtbl.mem t.results fp) then begin
          while Queue.length t.fifo >= t.cfg.cache_capacity do
            Hashtbl.remove t.results (Queue.pop t.fifo)
          done;
          Queue.add fp t.fifo;
          Hashtbl.replace t.results fp payload
        end;
        Obs.Agg.record_gauge t.agg "serve.cache.size"
          (float_of_int (Hashtbl.length t.results)))

(* ------------------------------------------------------------------ *)
(* per-request handling (runs on a pool worker)                        *)

let count t name = Obs.Agg.record_counter t.agg name 1.

let endpoint_span t label ~dur =
  Obs.Agg.record_span t.agg ("serve." ^ label) ~dur;
  Obs.Agg.record_counter t.agg ("serve." ^ label ^ ".requests") 1.

(* reconstruct what the interrupted solve had already certified: the
   budget-line maxima of the `<span>.cert.<line>` gauges its partial
   progress published.  The value interval is vacuous — the answer is
   unknown — but the ledger tells the client how far the error budget
   had grown before the deadline hit. *)
let partial_cert_of_agg agg =
  let gauges = Obs.Agg.gauges agg in
  let line suffix =
    List.fold_left
      (fun acc (name, (st : Obs.Agg.gauge_stat)) ->
        if String.ends_with ~suffix:(".cert." ^ suffix) name then
          Float.max acc st.Obs.Agg.g_max
        else acc)
      0. gauges
  in
  let sane v = if Float.is_nan v || v < 0. then 0. else v in
  Cert.of_interval
    ~budget:
      (Cert.budget
         ~discretisation:(sane (line "discretisation"))
         ~truncation:(sane (line "truncation"))
         ~rounding:(sane (line "rounding"))
         ~optimiser:(sane (line "optimiser"))
         ())
    (Interval.make Float.neg_infinity Float.infinity)

let handle t ~enqueued (req : Codec.request) =
  let started = Unix.gettimeofday () in
  let queue_wait_ms = (started -. enqueued) *. 1000. in
  Obs.Agg.record_gauge t.agg "serve.queue_wait_ms" queue_wait_ms;
  let label = Codec.op_name req.Codec.op in
  let req_agg = Obs.Agg.create ~parent:t.agg () in
  let deadline_ms =
    match req.Codec.deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_ms
  in
  let obs =
    let with_req_agg = Obs.with_agg t.cfg.obs req_agg in
    match deadline_ms with
    | None -> with_req_agg
    | Some d ->
        let deadline = started +. (d /. 1000.) in
        Obs.with_clock with_req_agg (fun () ->
            let now = Unix.gettimeofday () in
            if now > deadline then raise Deadline_exceeded;
            now -. t.t0)
  in
  let finish resp =
    endpoint_span t label ~dur:(Unix.gettimeofday () -. started);
    resp
  in
  try
    let spec =
      Codec.spec_of_request ~resolve:(resolve_model t) ~obs req
    in
    let fp = Codec.fingerprint spec req.Codec.op in
    match if req.Codec.cache then find_cached t fp else None with
    | Some payload ->
        count t "serve.cache.hit";
        finish
          (Codec.ok_response ~id:req.Codec.id ~cached:true
             ~wall_ms:((Unix.gettimeofday () -. started) *. 1000.)
             ~queue_wait_ms ~result:payload.result ~cert:payload.cert)
    | None ->
        count t "serve.cache.miss";
        let result, cert = Codec.eval spec req.Codec.op in
        let payload = { result; cert = Codec.json_of_cert cert } in
        if req.Codec.cache then store_cached t fp payload;
        finish
          (Codec.ok_response ~id:req.Codec.id ~cached:false
             ~wall_ms:((Unix.gettimeofday () -. started) *. 1000.)
             ~queue_wait_ms ~result:payload.result ~cert:payload.cert)
  with
  | Codec.Bad_request m ->
      count t "serve.error.bad_request";
      finish (Codec.error_response ~id:req.Codec.id ~kind:"bad_request" m)
  | Deadline_exceeded ->
      count t "serve.error.deadline_exceeded";
      finish
        (Codec.error_response
           ~cert:(Codec.json_of_cert (partial_cert_of_agg req_agg))
           ~id:req.Codec.id ~kind:"deadline_exceeded"
           (Printf.sprintf
              "deadline of %.0f ms exceeded (partial error ledger attached)"
              (match deadline_ms with Some d -> d | None -> 0.)))
  | e ->
      count t "serve.error.internal";
      finish
        (Codec.error_response ~id:req.Codec.id ~kind:"internal"
           (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* service ops                                                        *)

let exact_cert = Codec.json_of_cert (Cert.exact 0.)

let span_stat_json (st : Obs.Agg.span_stat) =
  Json.Obj
    [
      ("calls", Json.Num (float_of_int st.Obs.Agg.calls));
      ("total_s", Json.Num st.Obs.Agg.total);
      ("max_s", Json.Num st.Obs.Agg.max);
    ]

let gauge_stat_json (st : Obs.Agg.gauge_stat) =
  Json.Obj
    [
      ("last", Json.Num st.Obs.Agg.last);
      ("min", Json.Num st.Obs.Agg.g_min);
      ("max", Json.Num st.Obs.Agg.g_max);
      ("samples", Json.Num (float_of_int st.Obs.Agg.samples));
    ]

let metrics_json t =
  Json.Obj
    [
      ("uptime_s", Json.Num (Unix.gettimeofday () -. t.t0));
      ( "cache_size",
        Json.Num
          (float_of_int (locked t (fun () -> Hashtbl.length t.results))) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (n, st) -> (n, span_stat_json st))
             (Obs.Agg.span_stats t.agg)) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (n, v) -> (n, Json.Num v))
             (Obs.Agg.counters t.agg)) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (n, st) -> (n, gauge_stat_json st))
             (Obs.Agg.gauges t.agg)) );
    ]

let service_response t ~id ~label ~started result =
  let wall_ms = (Unix.gettimeofday () -. started) *. 1000. in
  endpoint_span t label ~dur:(wall_ms /. 1000.);
  Codec.ok_response ~id ~cached:false ~wall_ms ~queue_wait_ms:0. ~result
    ~cert:exact_cert

(* ------------------------------------------------------------------ *)
(* batch processing                                                   *)

type slot =
  | Inline of string  (* already answered: service op or parse error *)
  | Work of Codec.request

let classify t ~started line =
  match Codec.of_line line with
  | Error (id, msg) ->
      count t "serve.error.bad_request";
      endpoint_span t "error" ~dur:0.;
      Inline (Codec.error_response ~id ~kind:"bad_request" msg)
  | Ok (Codec.Ping id) ->
      Inline (service_response t ~id ~label:"ping" ~started (Json.Obj []))
  | Ok (Codec.Metrics id) ->
      Inline
        (service_response t ~id ~label:"metrics" ~started (metrics_json t))
  | Ok (Codec.Models id) ->
      Inline
        (service_response t ~id ~label:"models" ~started
           (Json.Obj
              [
                ( "models",
                  Json.Arr (List.map (fun n -> Json.Str n) Registry.names) );
              ]))
  | Ok (Codec.Analyze req) -> Work req

(* One batch, in, one list of response lines out (request order).
   Exposed for tests and single-shot embedding; the serve loops below
   call it with whatever the transport drained. *)
let process t lines =
  let started = Unix.gettimeofday () in
  Obs.Agg.record_gauge t.agg "serve.batch.size"
    (float_of_int (List.length lines));
  let slots = Array.of_list (List.map (classify t ~started) lines) in
  (* admission control: everything past the queue limit is refused up
     front rather than left to grow an unbounded backlog *)
  let admitted = ref 0 in
  let work = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Inline _ -> ()
      | Work req ->
          incr admitted;
          if !admitted > t.cfg.queue_limit then begin
            count t "serve.error.overloaded";
            slots.(i) <-
              Inline
                (Codec.error_response ~id:req.Codec.id ~kind:"overloaded"
                   (Printf.sprintf
                      "queue limit %d exceeded by this batch; retry later"
                      t.cfg.queue_limit))
          end
          else work := (i, req) :: !work)
    slots;
  let work = Array.of_list (List.rev !work) in
  if Array.length work > 0 then begin
    let replies =
      Pool.map_results ~stage:"serve" ~chunk:1 t.pool
        (fun (_, req) -> handle t ~enqueued:started req)
        work
    in
    Array.iteri
      (fun k (i, req) ->
        slots.(i) <-
          Inline
            (match replies.(k) with
            | Ok resp -> resp
            | Error e ->
                (* handle catches everything itself; this is the belt
                   for failures outside it (e.g. allocation) *)
                count t "serve.error.internal";
                Codec.error_response ~id:req.Codec.id ~kind:"internal"
                  (Printexc.to_string e)))
      work
  end;
  Array.to_list
    (Array.map
       (function Inline r -> r | Work _ -> assert false)
       slots)

(* ------------------------------------------------------------------ *)
(* transports                                                         *)

(* greedy line reader over a raw fd: one blocking read, then drain
   whatever else is already available without blocking.  Every
   complete buffered line becomes part of the batch, so a client that
   pipelines N requests gets them scheduled as one batch. *)
let read_batch fd buf acc =
  let take_lines () =
    let s = Buffer.contents acc in
    match String.rindex_opt s '\n' with
    | None -> []
    | Some last ->
        Buffer.clear acc;
        Buffer.add_substring acc s (last + 1) (String.length s - last - 1);
        String.split_on_char '\n' (String.sub s 0 last)
  in
  let readable_now () =
    match Unix.select [ fd ] [] [] 0. with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let rec fill ~block =
    if block || readable_now () then begin
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> `Eof
      | n ->
          Buffer.add_subbytes acc buf 0 n;
          fill ~block:false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ~block
    end
    else `Data
  in
  let rec go () =
    match take_lines () with
    | _ :: _ as lines -> Some lines
    | [] -> (
        match fill ~block:true with
        | `Data -> go ()
        | `Eof -> (
            (* the drain may have read past EOF detection: hand out any
               complete lines first, then a final unterminated one *)
            match take_lines () with
            | _ :: _ as lines -> Some lines
            | [] ->
                if Buffer.length acc > 0 then begin
                  let s = Buffer.contents acc in
                  Buffer.clear acc;
                  Some [ s ]
                end
                else None))
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let serve_fd t ~input ~output =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 65536 in
  let rec loop () =
    match read_batch input buf acc with
    | None -> ()
    | Some lines ->
        let keep = List.filter (fun l -> String.trim l <> "") lines in
        if keep <> [] then begin
          let out = Buffer.create 4096 in
          List.iter
            (fun r ->
              Buffer.add_string out r;
              Buffer.add_char out '\n')
            (process t keep);
          write_all output (Buffer.contents out)
        end;
        loop ()
  in
  loop ()

let serve_stdio t = serve_fd t ~input:Unix.stdin ~output:Unix.stdout

(* sequential accept loop over a unix-domain socket: one client at a
   time end-to-end (requests within a connection still fan out over
   the pool); [stop] lets an embedding test end the loop *)
let serve_socket ?(stop = fun () -> false) t path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let rec accept_loop () =
        if not (stop ()) then begin
          match Unix.accept sock with
          | client, _ ->
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close client with Unix.Unix_error _ -> ())
                (fun () -> serve_fd t ~input:client ~output:client);
              accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        end
      in
      accept_loop ())
