open Umf_numerics

type transition = { name : string; change : Vec.t; rate : Expr.t }

type t = {
  model : Population.t;
  transitions : transition list;
  drift : Expr.t array;
  jac : Expr.t array array;  (** jac.(i).(j) = ∂f_i/∂x_j *)
  theta_jac : Expr.t array array;
}

let make ~name ~var_names ~theta_names ~theta transitions =
  let dim = Array.length var_names in
  let theta_dim = Array.length theta_names in
  List.iter
    (fun tr ->
      List.iter
        (fun i ->
          if i >= dim then
            invalid_arg
              (Printf.sprintf "Symbolic.make: %s references x%d (dim %d)"
                 tr.name i dim))
        (Expr.vars tr.rate);
      List.iter
        (fun j ->
          if j >= theta_dim then
            invalid_arg
              (Printf.sprintf "Symbolic.make: %s references th%d (theta dim %d)"
                 tr.name j theta_dim))
        (Expr.thetas tr.rate))
    transitions;
  let compiled =
    List.map
      (fun tr ->
        {
          Population.name = tr.name;
          change = tr.change;
          rate = (fun x th -> Expr.eval tr.rate ~x ~th);
        })
      transitions
  in
  let model =
    Population.make ~name ~var_names ~theta_names ~theta compiled
  in
  (* f_i = sum over transitions of change_i * rate *)
  let drift =
    Array.init dim (fun i ->
        List.fold_left
          (fun acc tr ->
            if tr.change.(i) = 0. then acc
            else
              Expr.(acc +: (const tr.change.(i) *: tr.rate)))
          (Expr.const 0.) transitions
        |> Expr.simplify)
  in
  let jac =
    Array.map
      (fun fi -> Array.init dim (fun j -> Expr.simplify (Expr.diff_var fi j)))
      drift
  in
  let theta_jac =
    Array.map
      (fun fi ->
        Array.init theta_dim (fun j -> Expr.simplify (Expr.diff_theta fi j)))
      drift
  in
  { model; transitions; drift; jac; theta_jac }

let population s = s.model

let transitions s = s.transitions

let drift_exprs s = s.drift

let eval_matrix cells x th =
  Mat.init (Array.length cells)
    (if Array.length cells = 0 then 0 else Array.length cells.(0))
    (fun i j -> Expr.eval cells.(i).(j) ~x ~th)

let jacobian s x th = eval_matrix s.jac x th

let theta_jacobian s x th = eval_matrix s.theta_jac x th

let drift_interval s ~x ~th =
  Array.map (fun fi -> Expr.eval_interval fi ~x ~th) s.drift

let affine_in_theta s = Array.for_all Expr.is_affine_in_theta s.drift

let multilinear s = Array.for_all Expr.is_multilinear s.drift
