open Umf_numerics

type transition = { name : string; change : Vec.t; rate : Expr.t }

type t = {
  population : Population.t;
  transitions : transition list;
  x0 : Vec.t;
  clip : Optim.Box.t;
  policies : (string * Policy.t) list;
  drift_exprs : Expr.t array;
  drift_plan : Tape.Plan.t;
  jac_plan : Tape.Plan.t;
  theta_jac_plan : Tape.Plan.t;
  affine : bool;
  multilinear : bool;
}

let make ~name ~var_names ~theta_names ~theta ~x0 ?clip ?(policies = [])
    transitions =
  let dim = Array.length var_names in
  let theta_dim = Array.length theta_names in
  List.iter
    (fun tr ->
      List.iter
        (fun i ->
          if i >= dim then
            invalid_arg
              (Printf.sprintf "Model.make: %s references x%d (dim %d)" tr.name
                 i dim))
        (Expr.vars tr.rate);
      List.iter
        (fun j ->
          if j >= theta_dim then
            invalid_arg
              (Printf.sprintf "Model.make: %s references th%d (theta dim %d)"
                 tr.name j theta_dim))
        (Expr.thetas tr.rate))
    transitions;
  if Vec.dim x0 <> dim then
    invalid_arg
      (Printf.sprintf "Model.make: x0 has dimension %d, expected %d"
         (Vec.dim x0) dim);
  let clip =
    match clip with
    | Some b ->
        if Optim.Box.dim b <> dim then
          invalid_arg "Model.make: clip box dimension mismatch";
        b
    | None -> Optim.Box.make (Vec.zeros dim) (Vec.create dim 1.)
  in
  (* each rate compiles to its own single-output tape so that firing
     one transition never pays for the others; the combined multi-output
     tape below serves the all-rates-at-once consumers (propensities,
     CTMC generator assembly) and batch sweeps *)
  let compiled =
    List.map
      (fun tr ->
        {
          Population.name = tr.name;
          change = tr.change;
          rate = Tape.Plan.run_scalar (Tape.Plan.make (Tape.compile [| tr.rate |]));
        })
      transitions
  in
  let rates_plan =
    Tape.Plan.make
      (Tape.compile
         (Array.of_list (List.map (fun tr -> tr.rate) transitions)))
  in
  let population =
    Population.make ~name ~var_names ~theta_names ~theta ~rates_plan compiled
  in
  (* f_i = sum over transitions of change_i * rate *)
  let drift_exprs =
    Array.init dim (fun i ->
        List.fold_left
          (fun acc tr ->
            if tr.change.(i) = 0. then acc
            else Expr.(acc +: (const tr.change.(i) *: tr.rate)))
          (Expr.const 0.) transitions
        |> Expr.simplify)
  in
  let jac_exprs =
    Array.map
      (fun fi -> Array.init dim (fun j -> Expr.simplify (Expr.diff_var fi j)))
      drift_exprs
  in
  let theta_jac_exprs =
    Array.map
      (fun fi ->
        Array.init theta_dim (fun j -> Expr.simplify (Expr.diff_theta fi j)))
      drift_exprs
  in
  let flatten rows = Array.concat (Array.to_list rows) in
  {
    population;
    transitions;
    x0;
    clip;
    policies;
    drift_exprs;
    drift_plan = Tape.Plan.make (Tape.compile drift_exprs);
    jac_plan = Tape.Plan.make (Tape.compile (flatten jac_exprs));
    theta_jac_plan = Tape.Plan.make (Tape.compile (flatten theta_jac_exprs));
    affine = Array.for_all Expr.is_affine_in_theta drift_exprs;
    multilinear = Array.for_all Expr.is_multilinear drift_exprs;
  }

let name m = m.population.Population.name

let dim m = Population.dim m.population

let theta_dim m = Population.theta_dim m.population

let var_names m = m.population.Population.var_names

let theta_names m = m.population.Population.theta_names

let theta m = m.population.Population.theta

let x0 m = m.x0

let clip m = m.clip

let policies m = m.policies

let transitions m = m.transitions

let population m = m.population

let drift_exprs m = m.drift_exprs

let drift_tape m = Tape.Plan.tape m.drift_plan

let drift_plan m = m.drift_plan

let drift_into m ~x ~th ~out = Tape.Plan.run m.drift_plan ~x ~th ~out

let drift m x th = Tape.Plan.run_alloc m.drift_plan ~x ~th

let eval_matrix plan ~rows ~cols x th =
  let out = Vec.zeros (rows * cols) in
  Tape.Plan.run plan ~x ~th ~out;
  Mat.init rows cols (fun i j -> out.((i * cols) + j))

let jacobian m x th =
  let d = dim m in
  eval_matrix m.jac_plan ~rows:d ~cols:d x th

let theta_jacobian m x th =
  eval_matrix m.theta_jac_plan ~rows:(dim m) ~cols:(theta_dim m) x th

let drift_interval m ~x ~th = Tape.Plan.run_interval m.drift_plan ~x ~th

let affine_in_theta m = m.affine

let multilinear m = m.multilinear

let hamiltonian_opt m = if m.affine then `Vertices else `Box 5
