open Umf_numerics

let sup_distance t1 t2 ~times =
  Array.fold_left
    (fun worst t ->
      Float.max worst (Vec.dist_inf (Ode.Traj.at t1 t) (Ode.Traj.at t2 t)))
    0. times

let error_vs_limit model ~n ~theta ~x0 ~times ~runs ~seed =
  if runs <= 0 then invalid_arg "Convergence.error_vs_limit: need runs > 0";
  let m = Array.length times in
  if m = 0 then invalid_arg "Convergence.error_vs_limit: no sample times";
  let tmax = times.(m - 1) in
  let limit =
    Ode.integrate (Population.drift_rhs model ~theta) ~t0:0. ~y0:x0 ~t1:tmax
      ~dt:(tmax /. 2000.)
  in
  let limit_states = Array.map (Ode.Traj.at limit) times in
  let rng = Rng.create seed in
  let acc = ref 0. in
  for _ = 1 to runs do
    let states =
      Ssa.sampled model ~n ~x0 ~policy:(Policy.constant theta) ~times rng
    in
    let err = ref 0. in
    Array.iteri
      (fun i s -> err := Float.max !err (Vec.dist_inf s limit_states.(i)))
      states;
    acc := !acc +. !err
  done;
  !acc /. float_of_int runs
