(** Exact stochastic simulation of population models at finite size N.

    The Gillespie direct method on the counting variables X = N·x, with
    an adapted θ-policy interleaved: the policy chooses θ at every
    transition epoch and may fire its own exponential jump clock
    (redraw policies).  All outputs are on the density scale x = X/N,
    so trajectories converge to the mean-field limit as N grows
    (Theorem 1). *)

open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

val final :
  ?obs:Umf_obs.Obs.t ->
  Population.t ->
  n:int ->
  x0:Vec.t ->
  policy:Policy.t ->
  tmax:float ->
  Rng.t ->
  Vec.t
(** Density state at [tmax].  [x0] is a density vector; the initial
    counts are [round (N x0)] component-wise.  [obs] receives the
    number of transitions fired as the ["ssa.events"] counter.
    @raise Failure if a transition drives a count negative (a
    mis-specified model whose rate does not vanish at the
    boundary). *)

val trajectory :
  Population.t ->
  n:int ->
  x0:Vec.t ->
  policy:Policy.t ->
  tmax:float ->
  Rng.t ->
  Ode.Traj.t
(** Full event trajectory (one point per transition) — memory scales
    with the number of events. *)

val sampled :
  ?obs:Umf_obs.Obs.t ->
  Population.t ->
  n:int ->
  x0:Vec.t ->
  policy:Policy.t ->
  times:float array ->
  Rng.t ->
  Vec.t array
(** Density states at the given increasing sample times (piecewise
    constant between events), without storing the full path.  [obs]
    records an ["ssa.sampled"] span and the ["ssa.events"] counter. *)

val time_average :
  Population.t ->
  n:int ->
  x0:Vec.t ->
  policy:Policy.t ->
  tmax:float ->
  warmup:float ->
  reward:(Vec.t -> float) ->
  Rng.t ->
  float
(** Holding-time-weighted average of [reward x] over [[warmup, tmax]]. *)

val replicate :
  ?pool:Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  Population.t ->
  n:int ->
  x0:Vec.t ->
  policy:Policy.t ->
  tmax:float ->
  reps:int ->
  seed:int ->
  Vec.t array
(** [reps] independent replications of {!final}; slot [i] holds the
    final density of the run seeded from the splitmix64 mix of
    [(seed, i)].  The batch is deterministic in its arguments —
    with or without a [pool], and for any pool size, the output is
    bit-identical (the Figure 6 inclusion-fraction workload at
    N = 10⁴).  [obs] records an ["ssa.replicate"] span, a one-tick
    ["ssa.reps"] counter per finished replication (live progress in a
    trace stream) and the total ["ssa.events"]. *)

val count_events :
  Population.t ->
  n:int ->
  x0:Vec.t ->
  policy:Policy.t ->
  tmax:float ->
  Rng.t ->
  int
(** Number of transitions fired (model transitions + policy jumps). *)
