(** The exact finite-N CTMC of a population model.

    A {!Population.t} at size N is a CTMC on the lattice of count
    vectors X = N·x.  This module enumerates the reachable lattice from
    the (rounded) initial counts and emits the sparse finite-N
    generator from the model's compiled rate tapes — the ground truth
    the paper's mean-field and imprecise bounds approximate, computable
    well past the dense-matrix limit (an N = 1000 SIR instance has
    ≈ 5·10⁵ states and fits easily).

    Truncation is loud by construction: enumeration stops only at the
    model's clip box scaled by N, an explicit [max_states] budget
    raises [Failure], and {!generator} raises if any positive-rate
    transition leaves the enumerated space — a distribution computed
    through this engine never silently loses mass. *)

open Umf_numerics

type space
(** An enumerated reachable state space at a fixed population size. *)

val state_space :
  ?obs:Umf_obs.Obs.t ->
  ?theta:Optim.Box.t ->
  ?clip:Optim.Box.t ->
  ?max_states:int ->
  ?support_tol:float ->
  Population.t ->
  n:int ->
  x0:Vec.t ->
  space
(** [state_space pop ~n ~x0] enumerates (breadth-first, deterministic
    order, state 0 = the initial state) every count vector reachable
    from [n·x0] rounded to the lattice by largest remainder — each
    coordinate is floored and the leftover units (against the rounded
    total count) go to the largest fractional parts, so a conserved
    total such as S + I <= N survives the rounding — through
    transitions whose rate is positive at
    some probe θ — the vertices and midpoint of the θ-box ([theta]
    defaults to the population's own box).  Counts are kept inside the
    [clip] box scaled by N (default: the unit density box, i.e. counts
    in [0, N]).

    [max_states] (default 2_000_000) bounds the enumeration.

    [support_tol] (default 1e-12) is the structural-zero threshold: a
    transition counts as supported at a state only when its rate
    exceeds it at some probe θ, and {!generator} / {!imprecise} drop
    edges at or below it.  Boundary rates such as
    [max (0, 1 - s - i)] do not vanish exactly in floating point;
    without the threshold their roundoff residue (~1e-16) would count
    as support and push the enumeration outside the exact lattice.

    @raise Failure if the reachable space exceeds [max_states] or a
    positive-rate transition leaves the clip box (the lattice would be
    truncated).
    @raise Invalid_argument on dimension mismatches, [n <= 0], a
    non-integral change vector, or [x0] with negative entries. *)

val n_states : space -> int

val population_size : space -> int

val x0_index : space -> int
(** Index of the initial state (always 0). *)

val counts : space -> int -> int array
(** The count vector of a state (not a copy — do not mutate). *)

val density : space -> int -> Vec.t
(** The density vector x = X/N of a state (not a copy). *)

val index : space -> int array -> int option
(** Look a count vector up. *)

val point_mass : space -> Vec.t
(** The initial distribution δ_{x0} over the space. *)

val reward : space -> (Vec.t -> float) -> Vec.t
(** [reward sp f] tabulates a density-level reward x ↦ f(x) as a
    state-indexed vector for {!Umf_ctmc.Transient.expectation_series}. *)

val generator :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  space ->
  Population.t ->
  theta:Vec.t ->
  Umf_ctmc.Generator.t
(** The sparse finite-N generator at a fixed θ: state X fires class c
    at absolute rate N·β(X/N, θ) towards X + ℓ_c.  Rows are assembled
    in parallel over [pool] (index-owned writes — bit-identical to
    sequential) through the model's tape-compiled rates.

    @raise Failure if a positive rate leads outside the enumerated
    space (the probe set used by {!state_space} missed its support —
    enlarge the θ-box probes or the clip box).
    @raise Invalid_argument if a rate is negative or NaN at θ. *)

val imprecise : ?theta:Optim.Box.t -> space -> Population.t -> Umf_ctmc.Imprecise_ctmc.t
(** The finite-N chain as an imprecise CTMC over the θ-box, for
    {!Umf_ctmc.Imprecise_ctmc.lower_series}/[upper_series] backward
    sweeps.  Each enumerated support edge carries the rate closure
    θ ↦ N·β(X/N, θ).
    @raise Failure as {!generator}, applied at the probe thetas. *)
