(** The exact finite-N CTMC of a population model.

    A {!Population.t} at size N is a CTMC on the lattice of count
    vectors X = N·x.  This module enumerates the reachable lattice from
    the (rounded) initial counts and emits the sparse finite-N
    generator from the model's compiled rate tapes — the ground truth
    the paper's mean-field and imprecise bounds approximate, computable
    well past the dense-matrix limit (an N = 1000 SIR instance has
    ≈ 5·10⁵ states and fits easily).

    Truncation is loud by construction: under the default [`Exact]
    policy enumeration stops only at the model's clip box scaled by N,
    an explicit [max_states] budget raises [Failure], and {!generator}
    raises if any positive-rate transition leaves the enumerated space
    — a distribution computed through this engine never silently loses
    mass.  Under [`Adaptive] the budget and the clip box {e truncate}
    the space instead, and every transition out of the retained set is
    accounted as an explicit per-state leak rate
    ({!truncated_generator}), so downstream sweeps return certified
    escaped-mass bounds rather than refusing. *)

open Umf_numerics

type space
(** An enumerated reachable state space at a fixed population size. *)

val state_space :
  ?obs:Umf_obs.Obs.t ->
  ?theta:Optim.Box.t ->
  ?clip:Optim.Box.t ->
  ?max_states:int ->
  ?support_tol:float ->
  ?truncation:[ `Exact | `Adaptive ] ->
  Population.t ->
  n:int ->
  x0:Vec.t ->
  space
(** [state_space pop ~n ~x0] enumerates (breadth-first, deterministic
    order, state 0 = the initial state) every count vector reachable
    from [n·x0] rounded to the lattice by largest remainder — each
    coordinate is floored and the leftover units (against the rounded
    total count) go to the largest fractional parts, so a conserved
    total such as S + I <= N survives the rounding — through
    transitions whose rate is positive at
    some probe θ — the vertices and midpoint of the θ-box ([theta]
    defaults to the population's own box).  Counts are kept inside the
    [clip] box scaled by N (default: the unit density box, i.e. counts
    in [0, N]).

    [max_states] (default 2_000_000) bounds the enumeration.

    [support_tol] (default 1e-12) is the structural-zero threshold: a
    transition counts as supported at a state only when its rate
    exceeds it at some probe θ, and {!generator} / {!imprecise} drop
    edges at or below it.  Boundary rates such as
    [max (0, 1 - s - i)] do not vanish exactly in floating point;
    without the threshold their roundoff residue (~1e-16) would count
    as support and push the enumeration outside the exact lattice.

    [truncation] (default [`Exact]) selects what happens when the
    reachable set outgrows [max_states] or escapes the clip box:
    [`Exact] raises [Failure]; [`Adaptive] stops enumerating there
    instead (BFS order, so the retained set is always the [max_states]
    states closest to the initial state in transition count) and marks
    the space {!truncated} — only {!truncated_generator} and
    {!imprecise} accept such a space.

    @raise Failure if under [`Exact] the reachable space exceeds
    [max_states] or a positive-rate transition leaves the clip box (the
    lattice would be truncated).
    @raise Invalid_argument on dimension mismatches, [n <= 0], a
    non-integral change vector, or [x0] with negative entries. *)

val n_states : space -> int

val population_size : space -> int

val adaptive : space -> bool
(** Whether the space was enumerated under the [`Adaptive] policy. *)

val truncated : space -> bool
(** Whether enumeration actually hit the budget or the clip box — i.e.
    supported transitions out of the retained set exist.  Always
    [false] for an [`Exact] space. *)

val x0_index : space -> int
(** Index of the initial state (always 0). *)

val counts : space -> int -> int array
(** The count vector of a state (not a copy — do not mutate). *)

val density : space -> int -> Vec.t
(** The density vector x = X/N of a state (not a copy). *)

val index : space -> int array -> int option
(** Look a count vector up. *)

val point_mass : space -> Vec.t
(** The initial distribution δ_{x0} over the space. *)

val reward : space -> (Vec.t -> float) -> Vec.t
(** [reward sp f] tabulates a density-level reward x ↦ f(x) as a
    state-indexed vector for {!Umf_ctmc.Transient.expectation_series}. *)

val generator :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  space ->
  Population.t ->
  theta:Vec.t ->
  Umf_ctmc.Generator.t
(** The sparse finite-N generator at a fixed θ: state X fires class c
    at absolute rate N·β(X/N, θ) towards X + ℓ_c.  Rows are assembled
    in parallel over [pool] (index-owned writes — bit-identical to
    sequential) through the model's tape-compiled rates.

    @raise Failure if a positive rate leads outside the enumerated
    space (the probe set used by {!state_space} missed its support —
    enlarge the θ-box probes or the clip box), or if the space is
    {!truncated} (its exits carry probability mass; use
    {!truncated_generator}).
    @raise Invalid_argument if a rate is negative or NaN at θ. *)

val truncated_generator :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  space ->
  Population.t ->
  theta:Vec.t ->
  Umf_ctmc.Generator.t * Vec.t
(** Like {!generator} but accepts a {!truncated} space: the generator
    keeps only edges inside the retained set, and the second component
    is the per-state leak rate — the total rate of supported
    transitions out of the retained set, accumulated in class order
    (index-owned per state, so bit-identical for any pool partition).
    Feed it to {!Umf_ctmc.Sparse.forward}'s [?leak] /
    {!Umf_ctmc.Transient.uniformization_certified} to get transient
    answers with certified escaped-mass bounds.  On a non-truncated
    space the leak vector is all zeros and a missing target still
    raises [Failure] (missed support is a bug, not truncation). *)

val imprecise : ?theta:Optim.Box.t -> space -> Population.t -> Umf_ctmc.Imprecise_ctmc.t
(** The finite-N chain as an imprecise CTMC over the θ-box, for
    {!Umf_ctmc.Imprecise_ctmc.lower_series}/[upper_series] backward
    sweeps.  Each enumerated support edge carries the rate closure
    θ ↦ N·β(X/N, θ).

    On a {!truncated} space the chain gains one extra absorbing sink
    state (index [n_states]) receiving every escaped edge; pin the
    sink's reward at the full-space minimum (lower sweep) or maximum
    (upper sweep) to keep the bounds certified outer bounds.
    @raise Failure as {!generator}, applied at the probe thetas
    (non-truncated spaces only). *)
