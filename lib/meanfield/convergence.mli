(** Empirical verification of mean-field convergence (Theorem 1).

    Utilities that measure how far finite-N stochastic trajectories are
    from their deterministic limit, used both in tests and in the
    convergence benchmark. *)

open Umf_numerics

val sup_distance :
  Ode.Traj.t -> Ode.Traj.t -> times:float array -> float
(** Sup over the sample times of the sup-norm distance between the two
    interpolated trajectories. *)

val error_vs_limit :
  Population.t ->
  n:int ->
  theta:Vec.t ->
  x0:Vec.t ->
  times:float array ->
  runs:int ->
  seed:int ->
  float
(** Average (over [runs] independent simulations) sup-distance between
    the size-N process under constant θ and the mean-field ODE solution
    — should decay like O(1/√N). *)
