open Umf_numerics

type instance = {
  theta : float -> Vec.t -> Vec.t;
  jump_rate : float -> Vec.t -> float;
  do_jump : Rng.t -> float -> Vec.t -> unit;
  notify : float -> Vec.t -> unit;
}

type t = { name : string; instantiate : unit -> instance }

let no_jump =
  ( (fun _t _x -> 0.),
    fun _rng _t _x -> () )

let constant theta =
  let jump_rate, do_jump = no_jump in
  {
    name = "constant";
    instantiate =
      (fun () ->
        { theta = (fun _t _x -> theta); jump_rate; do_jump; notify = (fun _ _ -> ()) });
  }

let feedback name f =
  let jump_rate, do_jump = no_jump in
  {
    name;
    instantiate =
      (fun () -> { theta = f; jump_rate; do_jump; notify = (fun _ _ -> ()) });
  }

let hysteresis ~name ~high ~low ~drop_if ~rise_if ~init =
  let jump_rate, do_jump = no_jump in
  {
    name;
    instantiate =
      (fun () ->
        let mode = ref init in
        let notify _t x =
          match !mode with
          | `High -> if drop_if x then mode := `Low
          | `Low -> if rise_if x then mode := `High
        in
        let theta _t _x = match !mode with `High -> high | `Low -> low in
        { theta; jump_rate; do_jump; notify });
  }

let jump_redraw ~name ~rate ~redraw ~box ~init =
  if not (Optim.Box.mem init box) then
    invalid_arg "Policy.jump_redraw: init outside box";
  {
    name;
    instantiate =
      (fun () ->
        let current = ref (Vec.copy init) in
        {
          theta = (fun _t _x -> !current);
          jump_rate = rate;
          do_jump = (fun rng _t _x -> current := redraw rng box);
          notify = (fun _ _ -> ());
        });
  }

let uniform_redraw rng box = Optim.Box.sample_uniform rng box
