open Umf_numerics
module Obs = Umf_obs.Obs
module Pool = Umf_runtime.Runtime.Pool
module Generator = Umf_ctmc.Generator
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc

type space = {
  pop_n : int;
  counts : int array array;
  dens : Vec.t array;
  index : (int array, int) Hashtbl.t;
  (* per transition class: integer change vector and, per state, the
     support flag found during enumeration *)
  changes : int array array;
  probes : Vec.t list;
  (* rates at or below this threshold are treated as structural zeros:
     boundary rates like max(0, 1 - s - i) do not vanish exactly in
     floating point, and without a threshold the roundoff residue
     (~1e-16) would count as support and walk the BFS off the lattice *)
  support_tol : float;
  (* adaptive: enumeration was allowed to stop at the budget / clip box
     instead of failing; truncated: it actually did, so transitions out
     of the retained set exist and must be accounted as leak *)
  adaptive : bool;
  truncated : bool;
}

let n_states sp = Array.length sp.counts

let population_size sp = sp.pop_n

let adaptive sp = sp.adaptive

let truncated sp = sp.truncated

let x0_index _sp = 0

let counts sp i = sp.counts.(i)

let density sp i = sp.dens.(i)

let index sp c = Hashtbl.find_opt sp.index c

let point_mass sp =
  let p = Vec.zeros (n_states sp) in
  p.(0) <- 1.;
  p

let reward sp f = Array.map f sp.dens

let int_changes (pop : Population.t) =
  Array.map
    (fun (tr : Population.transition) ->
      Array.map
        (fun c ->
          let r = Float.round c in
          if Float.abs (c -. r) > 1e-9 then
            invalid_arg
              ("Ctmc_of_population: non-integral change vector in transition "
             ^ tr.name);
          int_of_float r)
        tr.change)
    pop.transitions

let density_of ~nf c = Array.map (fun k -> float_of_int k /. nf) c

let state_space ?(obs = Obs.off) ?theta ?clip ?(max_states = 2_000_000)
    ?(support_tol = 1e-12) ?(truncation = `Exact) (pop : Population.t) ~n ~x0
    =
  if n <= 0 then invalid_arg "Ctmc_of_population: need n > 0";
  if not (support_tol >= 0.) then
    invalid_arg "Ctmc_of_population: support_tol < 0";
  if Vec.dim x0 <> pop.dim then
    invalid_arg "Ctmc_of_population: x0 dimension mismatch";
  let theta_box = match theta with Some b -> b | None -> pop.theta in
  if Optim.Box.dim theta_box <> Array.length pop.theta_names then
    invalid_arg "Ctmc_of_population: theta box dimension mismatch";
  let clip =
    match clip with
    | Some b ->
        if Optim.Box.dim b <> pop.dim then
          invalid_arg "Ctmc_of_population: clip dimension mismatch";
        b
    | None -> Optim.Box.make (Vec.zeros pop.dim) (Vec.create pop.dim 1.)
  in
  let sp = Obs.span_begin obs "ctmc.state_space" in
  let nf = float_of_int n in
  let lo =
    Array.map (fun v -> int_of_float (Float.ceil ((v *. nf) -. 1e-9))) clip.lo
  in
  let hi =
    Array.map (fun v -> int_of_float (Float.floor ((v *. nf) +. 1e-9))) clip.hi
  in
  (* round n·x0 to the lattice by largest remainder, preserving the
     rounded total count: per-coordinate rounding can overshoot a
     conserved total (n·x0 = (17.5, 7.5) would round to 26 counts out
     of n = 25) and push the initial state off the model's invariant
     manifold *)
  let c0 =
    let scaled =
      Array.map
        (fun v ->
          if v < 0. then invalid_arg "Ctmc_of_population: negative x0";
          v *. nf)
        x0
    in
    let floors =
      Array.map (fun v -> int_of_float (Float.floor (v +. 1e-9))) scaled
    in
    let total =
      int_of_float (Float.round (Array.fold_left ( +. ) 0. scaled))
    in
    let rem = total - Array.fold_left ( + ) 0 floors in
    if rem > 0 then begin
      let order = Array.init (Array.length scaled) Fun.id in
      Array.sort
        (fun i j ->
          let fi = scaled.(i) -. float_of_int floors.(i)
          and fj = scaled.(j) -. float_of_int floors.(j) in
          if fi <> fj then compare fj fi else compare i j)
        order;
      for k = 0 to Stdlib.min rem (Array.length order) - 1 do
        floors.(order.(k)) <- floors.(order.(k)) + 1
      done
    end;
    floors
  in
  Array.iteri
    (fun i c ->
      if c < lo.(i) || c > hi.(i) then
        invalid_arg "Ctmc_of_population: x0 outside clip box")
    c0;
  let changes = int_changes pop in
  let probes = Optim.Box.midpoint theta_box :: Optim.Box.vertices theta_box in
  let index = Hashtbl.create 4096 in
  let states = ref [] and n_found = ref 0 in
  let adaptive = truncation = `Adaptive in
  let truncated = ref false in
  let queue = Queue.create () in
  (* under `Adaptive a refused add is not an error: the state stays
     outside the retained set and its incoming transitions become leak
     edges, certified later by [truncated_generator] *)
  let add c =
    if !n_found >= max_states then begin
      if adaptive then begin
        truncated := true;
        false
      end
      else
        failwith
          (Printf.sprintf
             "Ctmc_of_population: state space exceeds max_states = %d"
             max_states)
    end
    else begin
      Hashtbl.add index c !n_found;
      states := c :: !states;
      incr n_found;
      Queue.add c queue;
      true
    end
  in
  if not (add c0) then
    invalid_arg "Ctmc_of_population: max_states < 1";
  let dim = pop.dim in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    let x = density_of ~nf c in
    Array.iteri
      (fun ti (tr : Population.transition) ->
        let supported =
          List.exists
            (fun th ->
              let r = tr.rate x th in
              if Float.is_nan r then
                invalid_arg
                  ("Ctmc_of_population: NaN rate in transition " ^ tr.name);
              r > support_tol)
            probes
        in
        if supported then begin
          let c' = Array.mapi (fun i k -> k + changes.(ti).(i)) c in
          let inside = ref true in
          for i = 0 to dim - 1 do
            if c'.(i) < lo.(i) || c'.(i) > hi.(i) then inside := false
          done;
          if not !inside then begin
            if adaptive then truncated := true
            else
              failwith
                (Printf.sprintf
                   "Ctmc_of_population: transition %s leaves the clip box \
                    (state space would be truncated)"
                   tr.name)
          end
          else if not (Hashtbl.mem index c') then ignore (add c' : bool)
        end)
      pop.transitions
  done;
  let counts = Array.of_list (List.rev !states) in
  let dens = Array.map (density_of ~nf) counts in
  if Obs.enabled obs then begin
    Obs.count obs "ctmc.states" (Array.length counts);
    Obs.span_end
      ~metrics:
        [
          ("states", float_of_int (Array.length counts));
          ("truncated", if !truncated then 1. else 0.);
        ]
      obs sp
  end
  else Obs.span_end obs sp;
  {
    pop_n = n;
    counts;
    dens;
    index;
    changes;
    probes;
    support_tol;
    adaptive;
    truncated = !truncated;
  }

(* Row assembly for one source state: absolute rates N·β(x, θ) per
   class, targets resolved through the index, merged by destination
   (stable sort, so duplicate targets sum in class order).  [rate ti tr]
   supplies β for transition class [ti] — either a direct [tr.rate]
   call or a lane of a batched tape evaluation; the two are
   bit-identical, so the assembled generator does not depend on which
   path produced it. *)
let assemble_row ?on_escape sp (pop : Population.t) ~nf ~rate s =
  let pairs = ref [] and count = ref 0 in
  Array.iteri
    (fun ti (tr : Population.transition) ->
      let beta = rate ti tr in
      if Float.is_nan beta || beta < 0. then
        invalid_arg
          ("Ctmc_of_population: invalid rate in transition " ^ tr.name);
      if beta > sp.support_tol then begin
        let c' = Array.mapi (fun i k -> k + sp.changes.(ti).(i)) sp.counts.(s) in
        match Hashtbl.find_opt sp.index c' with
        | Some d when d <> s ->
            pairs := (d, nf *. beta) :: !pairs;
            incr count
        | Some _ -> ()
        | None -> (
            (* target outside the retained set: a truncated space feeds
               it to the leak accumulator (in class order, so the sum is
               deterministic); an exact space treats it as a bug *)
            match on_escape with
            | Some f -> f (nf *. beta)
            | None ->
                failwith
                  (Printf.sprintf
                     "Ctmc_of_population: transition %s has positive rate \
                      outside the enumerated space (missed support at the \
                      probe thetas)"
                     tr.name))
      end)
    pop.transitions;
  let row = Array.make !count (0, 0.) in
  (* !pairs is in reverse class order; fill backwards to restore it *)
  List.iteri (fun i p -> row.(!count - 1 - i) <- p) !pairs;
  Array.stable_sort (fun (a, _) (b, _) -> compare a b) row;
  (* merge duplicate destinations, summing in class order *)
  let m = Array.length row in
  let uniq = ref 0 in
  let i = ref 0 in
  while !i < m do
    let d, r = row.(!i) in
    let acc = ref r in
    incr i;
    while !i < m && fst row.(!i) = d do
      acc := !acc +. snd row.(!i);
      incr i
    done;
    row.(!uniq) <- (d, !acc);
    incr uniq
  done;
  if !uniq = m then row else Array.sub row 0 !uniq

(* Shared assembly driver.  [escape], when present, receives
   (state, absolute rate) for every supported transition whose target
   is outside the retained set; leak writes are index-owned per state
   so any pool partition accumulates them bit-identically. *)
let assemble_rows ?pool ?escape sp (pop : Population.t) ~theta rows =
  let nf = float_of_int sp.pop_n in
  let ns = n_states sp in
  let escape_for s = Option.map (fun f -> f s) escape in
  match Population.rates_plan pop with
  | Some plan ->
      (* batched assembly: all transition rates for a block of states
         in one dispatch per tape instruction, then per-row bookkeeping
         from the precomputed β.  Each row depends only on its own
         state and the kernel is bit-identical to the scalar [tr.rate]
         calls, so any block size — and any pool partition — yields
         the same generator. *)
      let ntr = Array.length pop.transitions in
      let dim = pop.dim in
      let td = Vec.dim theta in
      let block = 8192 in
      let n_blocks = (ns + block - 1) / block in
      let fill_block bi =
        let b0 = bi * block in
        let bn = Stdlib.min block (ns - b0) in
        let xs = Mat.zeros bn dim and ths = Mat.zeros bn (Stdlib.max 1 td) in
        for r = 0 to bn - 1 do
          let x = sp.dens.(b0 + r) in
          for i = 0 to dim - 1 do
            Mat.set xs r i x.(i)
          done;
          for i = 0 to td - 1 do
            Mat.set ths r i theta.(i)
          done
        done;
        let betas = Mat.zeros bn ntr in
        Tape.Plan.run_batch plan ~xs ~ths ~out:betas;
        for r = 0 to bn - 1 do
          let s = b0 + r in
          rows.(s) <-
            assemble_row ?on_escape:(escape_for s) sp pop ~nf
              ~rate:(fun ti _ -> Mat.get betas r ti)
              s
        done
      in
      (match pool with
      | Some p when ns > 1024 ->
          Pool.parallel_for ~stage:"ctmc-assemble" p n_blocks fill_block
      | _ ->
          for bi = 0 to n_blocks - 1 do
            fill_block bi
          done)
  | None ->
      let fill s =
        rows.(s) <-
          assemble_row ?on_escape:(escape_for s) sp pop ~nf
            ~rate:(fun _ (tr : Population.transition) ->
              tr.rate sp.dens.(s) theta)
            s
      in
      (match pool with
      | Some p when ns > 1024 ->
          Pool.parallel_for ~stage:"ctmc-assemble" p ns fill
      | _ ->
          for s = 0 to ns - 1 do
            fill s
          done)

let generator ?pool ?(obs = Obs.off) sp (pop : Population.t) ~theta =
  if Vec.dim theta <> Array.length pop.theta_names then
    invalid_arg "Ctmc_of_population: theta dimension mismatch";
  if sp.truncated then
    failwith
      "Ctmc_of_population.generator: space was adaptively truncated — its \
       exits carry probability mass; use truncated_generator";
  let span = Obs.span_begin obs "ctmc.assemble" in
  let ns = n_states sp in
  let rows = Array.make ns [||] in
  assemble_rows ?pool sp pop ~theta rows;
  let g = Generator.of_rows rows in
  if Obs.enabled obs then begin
    Obs.count obs "ctmc.nnz" (Generator.nnz g);
    Obs.span_end
      ~metrics:[ ("nnz", float_of_int (Generator.nnz g)) ]
      obs span
  end
  else Obs.span_end obs span;
  g

let truncated_generator ?pool ?(obs = Obs.off) sp (pop : Population.t) ~theta
    =
  if Vec.dim theta <> Array.length pop.theta_names then
    invalid_arg "Ctmc_of_population: theta dimension mismatch";
  let span = Obs.span_begin obs "ctmc.assemble" in
  let ns = n_states sp in
  let rows = Array.make ns [||] in
  let leak = Vec.zeros ns in
  (* only a truncated space may legitimately lose edges; on a fully
     enumerated space a missing target is still a missed-support bug *)
  let escape =
    if sp.truncated then
      Some (fun s r -> leak.(s) <- leak.(s) +. r)
    else None
  in
  assemble_rows ?pool ?escape sp pop ~theta rows;
  let g = Generator.of_rows rows in
  if Obs.enabled obs then begin
    let boundary = ref 0 in
    Array.iter (fun l -> if l > 0. then incr boundary) leak;
    Obs.count obs "ctmc.nnz" (Generator.nnz g);
    Obs.gauge obs "ctmc.boundary_states" (float_of_int !boundary);
    Obs.span_end
      ~metrics:
        [
          ("nnz", float_of_int (Generator.nnz g));
          ("boundary", float_of_int !boundary);
        ]
      obs span
  end
  else Obs.span_end obs span;
  (g, leak)

let imprecise ?theta sp (pop : Population.t) =
  let theta_box = match theta with Some b -> b | None -> pop.theta in
  let nf = float_of_int sp.pop_n in
  let ns = n_states sp in
  (* a truncated space gets one absorbing sink state (index n_states):
     escaped edges route there, so a backward sweep that pins the
     sink's reward at the full-space extremum yields certified outer
     bounds instead of failing *)
  let sink = ns in
  let n_total = if sp.truncated then ns + 1 else ns in
  let transitions = ref [] in
  for s = ns - 1 downto 0 do
    let x = sp.dens.(s) in
    Array.iteri
      (fun ti (tr : Population.transition) ->
        let supported =
          List.exists (fun th -> tr.rate x th > sp.support_tol) sp.probes
        in
        if supported then begin
          let c' =
            Array.mapi (fun i k -> k + sp.changes.(ti).(i)) sp.counts.(s)
          in
          let rate th =
            let beta = tr.rate x th in
            if Float.is_nan beta then
              invalid_arg
                ("Ctmc_of_population: NaN rate in transition " ^ tr.name);
            nf *. beta
          in
          match Hashtbl.find_opt sp.index c' with
          | Some d when d <> s ->
              transitions :=
                { Imprecise_ctmc.src = s; dst = d; rate } :: !transitions
          | Some _ -> ()
          | None ->
              if sp.truncated then
                transitions :=
                  { Imprecise_ctmc.src = s; dst = sink; rate }
                  :: !transitions
              else
                failwith
                  (Printf.sprintf
                     "Ctmc_of_population: transition %s has positive rate \
                      outside the enumerated space (missed support at the \
                      probe thetas)"
                     tr.name)
        end)
      pop.transitions
  done;
  Imprecise_ctmc.make ~n:n_total ~theta:theta_box !transitions
