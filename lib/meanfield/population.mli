(** Population models defined by transition classes (Sec. III of the
    paper).

    A model describes a family of CTMCs indexed by the population size
    N.  The state is a vector of population {e densities} x ∈ R^d (the
    counting variables divided by N).  Each transition class has:

    - a [change] vector ℓ on the {e count} scale: firing moves the
      counts X ↦ X + ℓ, i.e. the density x ↦ x + ℓ/N;
    - a density-scaled [rate] β(x, θ): at size N the class fires at
      absolute rate N·β(x, θ).

    This scaling makes the family an imprecise population process in
    the sense of Definition 4, with limit drift
    f(x, θ) = Σ_classes β(x, θ)·ℓ. *)

open Umf_numerics

type transition = {
  name : string;
  change : Vec.t;
  rate : Vec.t -> Vec.t -> float;  (** [rate x theta]; must be >= 0. *)
}

type t = private {
  name : string;
  dim : int;
  var_names : string array;
  theta_names : string array;
  theta : Optim.Box.t;
  transitions : transition array;
  rates_plan : Tape.Plan.t option;
      (** all transition rates compiled into one multi-output tape, in
          transition order — lets {!drift}, {!propensities} and the
          CTMC generator assembly evaluate every rate in one dispatch
          (and whole state batches via [Plan.run_batch]) *)
}

val make :
  name:string ->
  var_names:string array ->
  theta_names:string array ->
  theta:Optim.Box.t ->
  ?rates_plan:Tape.Plan.t ->
  transition list ->
  t
(** @raise Invalid_argument on empty variables, a θ-box whose dimension
    differs from [theta_names], a transition whose [change] has the
    wrong dimension, or a [rates_plan] whose output count differs from
    the transition count.  When [rates_plan] is given, its k-th output
    must compute the k-th transition's rate (bitwise — {!Model.make}
    guarantees this by compiling both from the same expressions). *)

val dim : t -> int

val theta_dim : t -> int

val rates_plan : t -> Tape.Plan.t option

val drift : t -> Vec.t -> Vec.t -> Vec.t
(** [drift m x theta] is f(x, θ) = Σ β(x, θ) ℓ (Definition 3 in the
    mean-field limit). *)

val drift_rhs : t -> theta:Vec.t -> Ode.rhs
(** The drift as an autonomous ODE right-hand side for a fixed θ —
    the uncertain-scenario vector field. *)

val controlled_rhs : t -> control:(float -> Vec.t -> Vec.t) -> Ode.rhs
(** Drift under a time/state-dependent deterministic control θ(t, x) —
    one selection of the imprecise differential inclusion. *)

val propensities : t -> n:int -> Vec.t -> Vec.t -> Vec.t
(** [propensities m ~n x theta]: absolute firing rates N·β(x, θ) of
    each class at population size [n] and density state [x].
    @raise Invalid_argument if a rate is negative or NaN. *)

val total_rate_bound : t -> x_box:Optim.Box.t -> float
(** An upper bound on Σ β(x, θ) over the given state box and the θ-box,
    from {!Optim.maximize_box} — used for thinning-based simulation and
    uniformisation-style stability checks. *)
