(** The canonical model representation: one symbolic definition,
    everything else derived.

    A model is its name, variable/parameter names, the θ-box, a
    default initial density, a state clip box (also the lint
    certification domain), optional adapted policies, and the symbolic
    transition classes — nothing else.  From the {!Umf_numerics.Expr}
    rates, [make] derives every artifact the solvers consume:

    - the ordinary {!Population.t} (rates compiled to allocation-free
      {!Umf_numerics.Tape} closures) for simulation and sweeps;
    - the drift f(x, θ) = Σ β ℓ and its exact symbolic Jacobians
      ∂f/∂x and ∂f/∂θ, compiled to tapes (Pontryagin costates without
      finite differences);
    - certified interval enclosures of the drift over state × θ boxes
      (the differential hull's face extrema);
    - the structural flags (affine in θ, multilinear) that select the
      Hamiltonian vertex enumeration where it is exact.

    There is no hand-written twin of any of these anywhere: the
    symbolic form is the single source of truth, so the object the
    static analyzer certifies is provably the object every solver
    integrates. *)

open Umf_numerics

type transition = {
  name : string;
  change : Vec.t;
  rate : Expr.t;  (** density-scaled rate, must be >= 0 on the domain *)
}

type t

val make :
  name:string ->
  var_names:string array ->
  theta_names:string array ->
  theta:Optim.Box.t ->
  x0:Vec.t ->
  ?clip:Optim.Box.t ->
  ?policies:(string * Policy.t) list ->
  transition list ->
  t
(** [clip] defaults to the unit box [0,1]^dim (densities); it bounds
    hull integration and is the default lint certification domain.
    @raise Invalid_argument if a rate references a variable or
    parameter index out of range, a change vector, [x0] or [clip] has
    the wrong dimension. *)

(** {1 The declaration} *)

val name : t -> string

val dim : t -> int

val theta_dim : t -> int

val var_names : t -> string array

val theta_names : t -> string array

val theta : t -> Optim.Box.t

val x0 : t -> Vec.t

val clip : t -> Optim.Box.t

val policies : t -> (string * Policy.t) list

val transitions : t -> transition list
(** The symbolic transition classes, as given to {!make} (rates kept
    un-simplified).  Static analyses ({!Umf_lint.Lint}) walk these
    directly. *)

(** {1 Derived artifacts} *)

val population : t -> Population.t
(** The ordinary population model; rates are compiled tapes running at
    hand-written-closure speed. *)

val drift_exprs : t -> Expr.t array
(** The drift coordinates f_i(x, θ) as simplified expressions. *)

val drift_tape : t -> Tape.t
(** The compiled drift (all coordinates in one CSE'd tape) — exposed
    for instruction-count statistics and benchmarks. *)

val drift_plan : t -> Tape.Plan.t
(** The drift's pre-compiled evaluation plan: scalar, interval and
    batch ([Tape.Plan.run_batch]) modes over shared per-domain scratch.
    Batch consumers ({!Umf_diffinc} sweeps) pull this instead of
    looping {!drift}. *)

val drift : t -> Vec.t -> Vec.t -> Vec.t
(** [drift m x theta] = f(x, θ), from the compiled tape. *)

val drift_into : t -> x:Vec.t -> th:Vec.t -> out:Vec.t -> unit
(** Allocation-free drift evaluation (domain-local workspace). *)

val jacobian : t -> Vec.t -> Vec.t -> Mat.t
(** Exact ∂f/∂x from symbolic differentiation, compiled. *)

val theta_jacobian : t -> Vec.t -> Vec.t -> Mat.t
(** Exact ∂f/∂θ. *)

val drift_interval :
  t -> x:Interval.t array -> th:Interval.t array -> Interval.t array
(** Certified enclosure of each drift coordinate over a state box and
    parameter box (interval arithmetic — conservative). *)

val affine_in_theta : t -> bool
(** Whether every drift coordinate is (syntactically) affine in θ, in
    which case vertex enumeration of Θ is exact for Hamiltonian
    maximisation. *)

val multilinear : t -> bool
(** Whether every drift coordinate is multilinear, in which case box
    extrema (hull faces) are attained at vertices. *)

val hamiltonian_opt : t -> [ `Vertices | `Box of int ]
(** The Hamiltonian arg-max structure: [`Vertices] when the drift is
    affine in θ (bang-bang controls provably optimal), [`Box 5]
    otherwise. *)
