open Umf_numerics

type transition = {
  name : string;
  change : Vec.t;
  rate : Vec.t -> Vec.t -> float;
}

type t = {
  name : string;
  dim : int;
  var_names : string array;
  theta_names : string array;
  theta : Optim.Box.t;
  transitions : transition array;
  rates_plan : Tape.Plan.t option;
}

let make ~name ~var_names ~theta_names ~theta ?rates_plan transitions =
  let dim = Array.length var_names in
  if dim = 0 then invalid_arg "Population.make: no variables";
  if Optim.Box.dim theta <> Array.length theta_names then
    invalid_arg "Population.make: theta box/name dimension mismatch";
  List.iter
    (fun tr ->
      if Vec.dim tr.change <> dim then
        invalid_arg
          (Printf.sprintf "Population.make: transition %s has change of wrong dimension"
             tr.name))
    transitions;
  let transitions = Array.of_list transitions in
  (match rates_plan with
  | Some p when Tape.n_outputs (Tape.Plan.tape p) <> Array.length transitions
    ->
      invalid_arg "Population.make: rates_plan output count mismatch"
  | _ -> ());
  { name; dim; var_names; theta_names; theta; transitions; rates_plan }

let dim m = m.dim

let theta_dim m = Optim.Box.dim m.theta

let rates_plan m = m.rates_plan

let drift m x theta =
  let f = Vec.zeros m.dim in
  (match m.rates_plan with
  | Some p ->
      (* all rates in one tape dispatch; the combined tape's per-output
         values are bitwise those of the per-rate tapes (CSE shares
         only identical subcomputations, fusion preserves association) *)
      let betas = Tape.Plan.run_alloc p ~x ~th:theta in
      Array.iteri
        (fun k tr -> Vec.axpy_in_place betas.(k) tr.change f)
        m.transitions
  | None ->
      Array.iter
        (fun tr -> Vec.axpy_in_place (tr.rate x theta) tr.change f)
        m.transitions);
  f

let drift_rhs m ~theta _t x = drift m x theta

let controlled_rhs m ~control t x = drift m x (control t x)

let propensities m ~n x theta =
  if n <= 0 then invalid_arg "Population.propensities: need n > 0";
  match m.rates_plan with
  | Some p ->
      let betas = Tape.Plan.run_alloc p ~x ~th:theta in
      Array.iteri
        (fun k beta ->
          if beta < 0. || Float.is_nan beta then
            invalid_arg
              (Printf.sprintf "Population: transition %s has invalid rate"
                 m.transitions.(k).name);
          betas.(k) <- float_of_int n *. beta)
        betas;
      betas
  | None ->
      Array.map
        (fun tr ->
          let beta = tr.rate x theta in
          if beta < 0. || Float.is_nan beta then
            invalid_arg
              (Printf.sprintf "Population: transition %s has invalid rate"
                 tr.name);
          float_of_int n *. beta)
        m.transitions

let total_rate_bound m ~x_box =
  (* maximise the total density rate over state-box x theta-box *)
  let joint =
    Optim.Box.make
      (Array.append x_box.Optim.Box.lo m.theta.Optim.Box.lo)
      (Array.append x_box.Optim.Box.hi m.theta.Optim.Box.hi)
  in
  let d = m.dim in
  let total v =
    let x = Array.sub v 0 d and theta = Array.sub v d (Array.length v - d) in
    Array.fold_left (fun acc tr -> acc +. tr.rate x theta) 0. m.transitions
  in
  let _, best = Optim.maximize_box ~grid:3 total joint in
  (* small safety factor against non-multilinear rates *)
  best *. 1.05
