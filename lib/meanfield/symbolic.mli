(** Population models with symbolic transition rates.

    A thin bridge from {!Umf_numerics.Expr} rate trees to
    {!Population.t}: the same model object works with every solver,
    plus the extras only a symbolic representation can provide — exact
    drift Jacobians (for Pontryagin costates) and certified interval
    drift bounds (for the differential hull). *)

open Umf_numerics

type transition = {
  name : string;
  change : Vec.t;
  rate : Expr.t;  (** density-scaled rate, must be >= 0 on the domain *)
}

type t

val make :
  name:string ->
  var_names:string array ->
  theta_names:string array ->
  theta:Optim.Box.t ->
  transition list ->
  t
(** @raise Invalid_argument if a rate references a variable or
    parameter index out of range, or a change vector has the wrong
    dimension. *)

val population : t -> Population.t
(** The ordinary population model (rates compiled to closures). *)

val transitions : t -> transition list
(** The symbolic transition classes, as given to {!make} (rates are
    kept un-simplified).  Static analyses ({!Umf_lint.Lint}) walk
    these directly. *)

val drift_exprs : t -> Expr.t array
(** The drift coordinates f_i(x, θ) as simplified expressions. *)

val jacobian : t -> Vec.t -> Vec.t -> Mat.t
(** Exact ∂f/∂x from symbolic differentiation. *)

val theta_jacobian : t -> Vec.t -> Vec.t -> Mat.t
(** Exact ∂f/∂θ. *)

val drift_interval :
  t -> x:Interval.t array -> th:Interval.t array -> Interval.t array
(** Certified enclosure of each drift coordinate over a state box and
    parameter box (interval arithmetic — conservative). *)

val affine_in_theta : t -> bool
(** Whether every drift coordinate is (syntactically) affine in θ, in
    which case vertex enumeration of Θ is exact for Hamiltonian
    maximisation. *)

val multilinear : t -> bool
(** Whether every drift coordinate is multilinear, in which case box
    extrema (hull faces) are attained at vertices. *)
