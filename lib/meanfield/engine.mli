(** The finite-N CTMC engine behind one spec record.

    Historically the exact finite-N pipeline was driven through four
    separate entry points — {!Umf_ctmc.Transient},
    {!Umf_ctmc.Sparse}, {!Umf_ctmc.Imprecise_ctmc} and
    [Analysis.finite_n_transient] — each with its own calling
    convention.  This module collapses them behind a single {!spec}
    record mirroring [Analysis.spec]: declare the model, scenario,
    population size, horizon, tolerance and truncation policy once,
    then ask for {!transient} expectations, scenario {!envelope}s, the
    {!stationary} distribution or the raw {!distribution}.

    Every result carries an explicit escaped-mass {!certificate}: under
    [Adaptive] truncation the engine runs the substochastic operator of
    the retained lattice and reports the probability mass that provably
    left it, instead of raising [Transient.Truncated] — for any reward
    with range [rlo, rhi] over the model's clip box the true value lies
    in [value + lost·rlo, value + lost·rhi] with
    [lost = escaped + tail].  Under the default [Exact] truncation the
    certificate's [escaped] is exactly [0.] and [tail <= epsilon].

    All sweeps thread the spec's [pool] (bit-identical to sequential
    for any domain count) and [obs]. *)

open Umf_numerics

type truncation =
  | Exact of { max_states : int }
      (** Fail loudly ([Failure]) if the reachable lattice exceeds
          [max_states] or escapes the clip box. *)
  | Adaptive of { max_states : int }
      (** Retain at most [max_states] states (BFS order from the
          initial state) and account every transition out of the
          retained set as certified escaped mass. *)

type scenario = Imprecise | Uncertain of int
(** [Imprecise]: θ may vary in time; bounds by backward sweeps
    (vertex extremisation — exact for rates affine in θ).
    [Uncertain g]: θ constant but unknown; bounds by a g-per-axis
    sample grid of certified forward sweeps. *)

type reward =
  | Coord of int
      (** The i-th density coordinate; certificate range from the
          model's clip box. *)
  | Custom of { f : Vec.t -> float; range : float * float }
      (** An arbitrary density-level reward with an explicit range
          over the model's domain. *)
  | Lattice of (Vec.t -> float)
      (** Range inferred from the enumerated lattice — only sound (and
          only accepted) under [Exact] truncation. *)

type spec = {
  model : Model.t;
  scenario : scenario;
  theta : Optim.Box.t option;  (** θ-box override (default: model's). *)
  n : int;  (** Population size N. *)
  horizon : float;
  times : float array option;
      (** Query times (default: 11 points linearly spaced on
          [0, horizon]). *)
  epsilon : float;  (** Uniformisation mass tolerance. *)
  steps : int;  (** Backward-sweep step budget over the horizon. *)
  sweep_eps : float option;
      (** Target certified discretisation error for imprecise backward
          sweeps.  [None] (default): fixed grid from [steps].  [Some e]:
          Erreygers–De Bock adaptive step selection with a-priori
          budget [e] over the horizon ({!Umf_ctmc.Imprecise_ctmc
          .adaptive_series}); [steps] is then ignored on the imprecise
          path. *)
  truncation : truncation;
  pool : Umf_runtime.Runtime.Pool.t option;
  obs : Umf_obs.Obs.t;
}

val spec :
  ?scenario:scenario ->
  ?theta:Optim.Box.t ->
  ?horizon:float ->
  ?times:float array ->
  ?epsilon:float ->
  ?steps:int ->
  ?sweep_eps:float ->
  ?truncation:truncation ->
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  n:int ->
  Model.t ->
  spec
(** Validated constructor; defaults: [Imprecise] scenario, horizon 10,
    epsilon 1e-12, steps 400, [Exact {max_states = 2_000_000}].
    @raise Invalid_argument on [n < 1], [horizon <= 0], epsilon outside
    (0, 1), [steps < 1], [sweep_eps <= 0], [max_states < 1], an
    [Uncertain] grid < 2, a θ-box dimension mismatch, or non-increasing
    [times]. *)

type certificate = Umf_ctmc.Transient.certificate = {
  escaped : float;
  tail : float;
}
(** See {!Umf_ctmc.Transient.certificate}. *)

val space : spec -> Ctmc_of_population.space
(** Enumerate the spec's state space (shared by every entry point; pass
    it back via [?space] to amortise enumeration across calls on the
    same spec). *)

type transient = {
  n : int;
  states : int;  (** Retained lattice size. *)
  theta : Vec.t;  (** The θ the sweep ran at. *)
  times : float array;
  value : float array array;  (** [value.(j).(r)]: time j, reward r. *)
  lower : float array array;
      (** [value + lost·rlo] — certified lower bound on the true
          expectation. *)
  upper : float array array;  (** [value + lost·rhi]. *)
  certificates : certificate array;  (** Per time point. *)
  certs : Cert.t array array;
      (** [certs.(j).(r)]: the [lower, upper] enclosure of time j,
          reward r as one {!Cert.t} — the lost mass priced over the
          reward range on the truncation line. *)
}

val transient_certificates : transient -> certificate array
  [@@deprecated "read the certs field (unified Cert ledger) instead"]
(** The raw escaped/tail view, superseded by [certs]. *)

val transient :
  ?theta:Vec.t ->
  ?space:Ctmc_of_population.space ->
  spec ->
  rewards:reward array ->
  transient
(** Certified transient expectations at a fixed θ (default: the θ-box
    midpoint) for every reward and query time, in one uniformisation
    sweep.  Never raises [Transient.Truncated].
    @raise Invalid_argument on an empty reward array, a reward
    coordinate out of range, or a θ dimension mismatch.
    @raise Failure from enumeration/assembly under [Exact] truncation
    as documented in {!Ctmc_of_population}. *)

type envelope = {
  n : int;
  states : int;
  times : float array;
  mean : float array;  (** Certified sweep at the θ-box midpoint. *)
  lower : float array;
  upper : float array;
  certificates : certificate array;  (** Of the mean sweep. *)
  escaped : float;  (** max_j (escaped_j + tail_j) of the mean sweep. *)
  certs : Cert.t array;
      (** Per time point: the [lower, upper] envelope widened outward
          by the backward sweeps' certified discretisation and rounding
          error (imprecise scenario; both lines are 0 on the
          [Uncertain] grid, whose certified forward sweeps carry their
          truncation in [lower]/[upper] already — note the θ sample
          grid itself is an inner approximation of the box). *)
  sweep_steps : int;
      (** Euler steps both imprecise sweeps took together (0 under
          [Uncertain]) — what the adaptive stepper is saving. *)
}

val envelope_certificates : envelope -> certificate array
  [@@deprecated "read the certs field (unified Cert ledger) instead"]
(** The raw escaped/tail view, superseded by [certs]. *)

val envelope :
  ?space:Ctmc_of_population.space -> spec -> reward:reward -> envelope
(** Scenario bounds around the finite-N mean trajectory of one reward.
    [Uncertain g]: lower/upper envelope the certified values
    [value + lost·rlo, value + lost·rhi] over the θ sample grid.
    [Imprecise]: backward lower/upper sweeps; on a truncated space the
    escaped mass flows to an absorbing sink whose reward is pinned at
    [rlo] (lower) / [rhi] (upper), keeping both certified outer bounds
    on the true expectation.
    @raise Invalid_argument for [Imprecise] on a model whose rates are
    not affine in θ. *)

type stationary = {
  n : int;
  states : int;
  theta : Vec.t;
  pi : Vec.t;  (** The stationary distribution over the lattice. *)
  values : float array;  (** One expectation per requested reward. *)
  certs : Cert.t array;
      (** Per reward: the value widened by the power-iteration
          tolerance scaled to the reward range, on the optimiser line —
          a residual-level ledger entry, not a rigorous distance
          bound. *)
}

val stationary :
  ?theta:Vec.t ->
  ?space:Ctmc_of_population.space ->
  ?tol:float ->
  ?max_iter:int ->
  spec ->
  rewards:reward array ->
  stationary
(** Stationary distribution at a fixed θ by pooled sparse power
    iteration.  Requires [Exact] truncation — a substochastic truncated
    chain has no stationary distribution.
    @raise Invalid_argument under [Adaptive] truncation.
    @raise Failure if the iteration does not converge. *)

type distribution = {
  n : int;
  states : int;
  theta : Vec.t;
  p : Vec.t;
      (** Sub-distribution over the retained lattice at [horizon] (its
          mass deficit is bounded by the certificate). *)
  certificate : certificate;
  cert : Cert.t;
      (** Certified total retained mass: [Σp, Σp + lost] with the lost
          mass on the truncation line. *)
}

val distribution_certificate : distribution -> certificate
  [@@deprecated "read the cert field (unified Cert ledger) instead"]

val distribution :
  ?theta:Vec.t -> ?space:Ctmc_of_population.space -> spec -> distribution
(** The full transient (sub-)distribution at the spec's horizon. *)
