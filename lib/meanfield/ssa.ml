open Umf_numerics
module Runtime = Umf_runtime.Runtime
module Pool = Runtime.Pool
module Obs = Umf_obs.Obs

(* Core Gillespie loop.  [on_hold t0 t1 x] is invoked for every maximal
   interval on which the density state is the constant [x] (a copy);
   the union of intervals is exactly [0, tmax]. *)
let run model ~n ~x0 ~(policy : Policy.t) ~tmax ~rng ~on_hold =
  if n <= 0 then invalid_arg "Ssa: need n > 0";
  if tmax < 0. then invalid_arg "Ssa: negative horizon";
  if Vec.dim x0 <> Population.dim model then
    invalid_arg "Ssa: x0 dimension mismatch";
  let nf = float_of_int n in
  let counts = Vec.map (fun v -> Float.round (v *. nf)) x0 in
  let inst = policy.Policy.instantiate () in
  let ntrans = Array.length model.Population.transitions in
  let t = ref 0. in
  let events = ref 0 in
  let density () = Vec.scale (1. /. nf) counts in
  let finished = ref false in
  while not !finished do
    let x = density () in
    let theta = Optim.Box.clamp model.Population.theta (inst.Policy.theta !t x) in
    let props = Population.propensities model ~n x theta in
    let jump_rate = inst.Policy.jump_rate !t x in
    if jump_rate < 0. then invalid_arg "Ssa: negative policy jump rate";
    let total = Vec.sum props +. jump_rate in
    if total <= 0. then begin
      on_hold !t tmax x;
      t := tmax;
      finished := true
    end
    else begin
      let dt = Rng.exponential rng total in
      if !t +. dt >= tmax then begin
        on_hold !t tmax x;
        t := tmax;
        finished := true
      end
      else begin
        let t' = !t +. dt in
        on_hold !t t' x;
        let weights = Array.append props [| jump_rate |] in
        let k = Rng.categorical rng weights in
        if k < ntrans then begin
          let tr = model.Population.transitions.(k) in
          Vec.axpy_in_place 1. tr.Population.change counts;
          Array.iteri
            (fun i c ->
              if c < -1e-9 then
                failwith
                  (Printf.sprintf
                     "Ssa: transition %s drove count of %s negative"
                     tr.Population.name
                     model.Population.var_names.(i)))
            counts
        end
        else inst.Policy.do_jump rng t' (density ());
        incr events;
        t := t';
        inst.Policy.notify t' (density ())
      end
    end
  done;
  (density (), !events)

let final ?(obs = Obs.off) model ~n ~x0 ~policy ~tmax rng =
  let x, events =
    run model ~n ~x0 ~policy ~tmax ~rng ~on_hold:(fun _ _ _ -> ())
  in
  if Obs.enabled obs then Obs.count obs "ssa.events" events;
  x

let count_events model ~n ~x0 ~policy ~tmax rng =
  let _, events =
    run model ~n ~x0 ~policy ~tmax ~rng ~on_hold:(fun _ _ _ -> ())
  in
  events

let trajectory model ~n ~x0 ~policy ~tmax rng =
  let times = ref [] and states = ref [] in
  let on_hold t0 _t1 x =
    match !times with
    | prev :: _ when t0 <= prev -> ()
    | _ ->
        times := t0 :: !times;
        states := x :: !states
  in
  let xf, _ = run model ~n ~x0 ~policy ~tmax ~rng ~on_hold in
  (* close the trajectory at the horizon *)
  (match !times with
  | prev :: _ when tmax > prev ->
      times := tmax :: !times;
      states := xf :: !states
  | _ -> ());
  Ode.Traj.of_arrays
    (Array.of_list (List.rev !times))
    (Array.of_list (List.rev !states))

let sampled ?(obs = Obs.off) model ~n ~x0 ~policy ~times rng =
  let m = Array.length times in
  if m = 0 then [||]
  else begin
    let sp = Obs.span_begin obs "ssa.sampled" in
    for i = 1 to m - 1 do
      if times.(i) <= times.(i - 1) then
        invalid_arg "Ssa.sampled: times not increasing"
    done;
    if times.(0) < 0. then invalid_arg "Ssa.sampled: negative sample time";
    let tmax = times.(m - 1) +. 1e-12 in
    let out = Array.make m [||] in
    let next = ref 0 in
    let on_hold t0 t1 x =
      (* samples in [t0, t1) see state x; the final hold is closed at
         the horizon so the last sample is always emitted *)
      while !next < m && times.(!next) >= t0 -. 1e-12 && times.(!next) < t1 do
        out.(!next) <- x;
        incr next
      done
    in
    let xf, events = run model ~n ~x0 ~policy ~tmax ~rng ~on_hold in
    while !next < m do
      out.(!next) <- xf;
      incr next
    done;
    if Obs.enabled obs then begin
      Obs.count obs "ssa.events" events;
      Obs.span_end
        ~metrics:
          [ ("samples", float_of_int m); ("events", float_of_int events) ]
        obs sp
    end;
    out
  end

let replicate ?pool ?(obs = Obs.off) model ~n ~x0 ~policy ~tmax ~reps ~seed =
  if reps <= 0 then invalid_arg "Ssa.replicate: need reps > 0";
  let on = Obs.enabled obs in
  let sp = Obs.span_begin obs "ssa.replicate" in
  (* replication [i] always runs on the stream derived from (seed, i),
     so the batch is a pure function of its arguments: sequential and
     parallel runs of any domain count are bit-identical *)
  let one i =
    let x =
      final ~obs model ~n ~x0 ~policy ~tmax (Runtime.Seeds.rng ~root:seed i)
    in
    (* per-replication tick: replication progress is visible live in a
       trace stream *)
    if on then Obs.count obs "ssa.reps" 1;
    x
  in
  let out =
    match pool with
    | None -> Array.init reps one
    | Some p ->
        Pool.parallel_map ~stage:"ssa-replicate" p one (Array.init reps Fun.id)
  in
  if on then
    Obs.span_end ~metrics:[ ("reps", float_of_int reps) ] obs sp;
  out

let time_average model ~n ~x0 ~policy ~tmax ~warmup ~reward rng =
  if warmup < 0. || warmup >= tmax then
    invalid_arg "Ssa.time_average: need 0 <= warmup < tmax";
  let acc = ref 0. in
  let on_hold t0 t1 x =
    let a = Float.max t0 warmup and b = t1 in
    if b > a then acc := !acc +. ((b -. a) *. reward x)
  in
  let _ = run model ~n ~x0 ~policy ~tmax ~rng ~on_hold in
  !acc /. (tmax -. warmup)
