open Umf_numerics
module Obs = Umf_obs.Obs
module Pool = Umf_runtime.Runtime.Pool
module Transient = Umf_ctmc.Transient
module Stationary = Umf_ctmc.Stationary
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc

type truncation =
  | Exact of { max_states : int }
  | Adaptive of { max_states : int }

type scenario = Imprecise | Uncertain of int

type reward =
  | Coord of int
  | Custom of { f : Vec.t -> float; range : float * float }
  | Lattice of (Vec.t -> float)

type spec = {
  model : Model.t;
  scenario : scenario;
  theta : Optim.Box.t option;
  n : int;
  horizon : float;
  times : float array option;
  epsilon : float;
  steps : int;
  sweep_eps : float option;
  truncation : truncation;
  pool : Pool.t option;
  obs : Obs.t;
}

let spec ?(scenario = Imprecise) ?theta ?(horizon = 10.) ?times
    ?(epsilon = 1e-12) ?(steps = 400) ?sweep_eps
    ?(truncation = Exact { max_states = 2_000_000 }) ?pool ?(obs = Obs.off) ~n
    model =
  if n < 1 then invalid_arg "Engine.spec: need n >= 1";
  if horizon <= 0. then invalid_arg "Engine.spec: need horizon > 0";
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Engine.spec: epsilon must be in (0, 1)";
  if steps < 1 then invalid_arg "Engine.spec: need steps >= 1";
  (match sweep_eps with
  | Some e when not (e > 0.) ->
      invalid_arg "Engine.spec: sweep_eps must be > 0"
  | _ -> ());
  (match truncation with
  | Exact { max_states } | Adaptive { max_states } ->
      if max_states < 1 then invalid_arg "Engine.spec: need max_states >= 1");
  (match scenario with
  | Uncertain g when g < 2 -> invalid_arg "Engine.spec: need grid >= 2"
  | Uncertain _ | Imprecise -> ());
  (match theta with
  | Some b when Optim.Box.dim b <> Model.theta_dim model ->
      invalid_arg "Engine.spec: theta box dimension mismatch"
  | _ -> ());
  (match times with
  | Some ts ->
      if Array.length ts = 0 then invalid_arg "Engine.spec: empty times";
      if ts.(0) < 0. then invalid_arg "Engine.spec: negative time";
      for j = 1 to Array.length ts - 1 do
        if ts.(j) <= ts.(j - 1) then
          invalid_arg "Engine.spec: times not increasing"
      done
  | None -> ());
  {
    model;
    scenario;
    theta;
    n;
    horizon;
    times;
    epsilon;
    steps;
    sweep_eps;
    truncation;
    pool;
    obs;
  }

type certificate = Transient.certificate = { escaped : float; tail : float }

let theta_box s = match s.theta with Some b -> b | None -> Model.theta s.model

let times_of s =
  match s.times with Some ts -> ts | None -> Vec.linspace 0. s.horizon 11

let space s =
  let pop = Model.population s.model in
  let truncation, max_states =
    match s.truncation with
    | Exact { max_states } -> (`Exact, max_states)
    | Adaptive { max_states } -> (`Adaptive, max_states)
  in
  Ctmc_of_population.state_space ~obs:s.obs ~theta:(theta_box s)
    ~clip:(Model.clip s.model) ~max_states ~truncation pop ~n:s.n
    ~x0:(Model.x0 s.model)

let space_of ?space:sp s = match sp with Some sp -> sp | None -> space s

let theta_point ?theta s =
  match theta with
  | None -> Optim.Box.midpoint (theta_box s)
  | Some th ->
      if Vec.dim th <> Model.theta_dim s.model then
        invalid_arg "Engine: theta dimension mismatch";
      th

(* Tabulate a reward over the retained lattice and resolve its range
   over the model's declared domain (the clip box) — the [rlo, rhi]
   pair the certificates are priced against.  [Lattice] infers the
   range from the enumerated lattice itself, which is only the full
   range under [Exact] truncation. *)
let resolve_reward s sp = function
  | Coord i ->
      if i < 0 || i >= Model.dim s.model then
        invalid_arg "Engine: reward coordinate out of range";
      let clip = Model.clip s.model in
      (Ctmc_of_population.reward sp (fun x -> x.(i)), clip.lo.(i), clip.hi.(i))
  | Custom { f; range = rlo, rhi } ->
      if not (rlo <= rhi) then invalid_arg "Engine: empty reward range";
      (Ctmc_of_population.reward sp f, rlo, rhi)
  | Lattice f ->
      (match s.truncation with
      | Adaptive _ ->
          invalid_arg
            "Engine: Lattice rewards need Exact truncation (their range is \
             inferred from the enumerated lattice, which a truncated space \
             does not cover); use Custom with an explicit range"
      | Exact _ -> ());
      let h = Ctmc_of_population.reward sp f in
      (h, Vec.min_elt h, Vec.max_elt h)

(* The forward operator of a spec: the exact generator on a fully
   enumerated space, the substochastic pair on a truncated one. *)
let generator_of s sp ~theta =
  let pop = Model.population s.model in
  if Ctmc_of_population.truncated sp then begin
    let g, leak =
      Ctmc_of_population.truncated_generator ?pool:s.pool ~obs:s.obs sp pop
        ~theta
    in
    (g, Some leak)
  end
  else
    (Ctmc_of_population.generator ?pool:s.pool ~obs:s.obs sp pop ~theta, None)

let certified_series s sp ~theta ~times hs =
  let g, leak = generator_of s sp ~theta in
  let p0 = Ctmc_of_population.point_mass sp in
  Transient.expectation_series_certified ?pool:s.pool ~obs:s.obs
    ~epsilon:s.epsilon ?leak g ~p0 ~times hs

let lost (c : certificate) = c.escaped +. c.tail

(* The ledger view of a [lower, upper] enclosure whose width comes from
   lost probability mass priced over the reward range [rlo, rhi]. *)
let mass_cert ~lost ~rlo ~rhi lo hi =
  Cert.of_interval
    ~budget:(Cert.budget ~truncation:(lost *. (rhi -. rlo)) ())
    (Interval.make lo hi)

type transient = {
  n : int;
  states : int;
  theta : Vec.t;
  times : float array;
  value : float array array;
  lower : float array array;
  upper : float array array;
  certificates : certificate array;
  certs : Cert.t array array;
}

let transient_certificates t = t.certificates

let transient ?theta ?space s ~rewards =
  let nr = Array.length rewards in
  if nr = 0 then invalid_arg "Engine.transient: no rewards";
  let sp = space_of ?space s in
  let theta = theta_point ?theta s in
  let resolved = Array.map (resolve_reward s sp) rewards in
  let hs = Array.map (fun (h, _, _) -> h) resolved in
  let times = times_of s in
  let value, certificates = certified_series s sp ~theta ~times hs in
  let nt = Array.length times in
  let lower = Array.make_matrix nt nr 0.
  and upper = Array.make_matrix nt nr 0. in
  for j = 0 to nt - 1 do
    let l = lost certificates.(j) in
    for r = 0 to nr - 1 do
      let _, rlo, rhi = resolved.(r) in
      lower.(j).(r) <- value.(j).(r) +. (l *. rlo);
      upper.(j).(r) <- value.(j).(r) +. (l *. rhi)
    done
  done;
  let certs =
    Array.init nt (fun j ->
        let l = lost certificates.(j) in
        Array.init nr (fun r ->
            let _, rlo, rhi = resolved.(r) in
            mass_cert ~lost:l ~rlo ~rhi lower.(j).(r) upper.(j).(r)))
  in
  {
    n = s.n;
    states = Ctmc_of_population.n_states sp;
    theta;
    times;
    value;
    lower;
    upper;
    certificates;
    certs;
  }

type envelope = {
  n : int;
  states : int;
  times : float array;
  mean : float array;
  lower : float array;
  upper : float array;
  certificates : certificate array;
  escaped : float;
  certs : Cert.t array;
  sweep_steps : int;
}

let envelope_certificates e = e.certificates

(* The imprecise lower/upper sweeps of a spec: fixed-grid from the
   spec's step budget by default, adaptive with target [sweep_eps] when
   the spec names one. *)
let imprecise_sweep s ~sense im ~h ~times =
  match s.sweep_eps with
  | Some epsilon ->
      Imprecise_ctmc.adaptive_series ?pool:s.pool ~obs:s.obs ~epsilon ~sense
        im ~h ~times
  | None ->
      let steps_per_unit =
        Stdlib.max 1
          (int_of_float (Float.ceil (float_of_int s.steps /. s.horizon)))
      in
      Imprecise_ctmc.fixed_series ?pool:s.pool ~obs:s.obs ~steps_per_unit
        ~sense im ~h ~times

let envelope ?space s ~reward =
  let sp = space_of ?space s in
  let pop = Model.population s.model in
  let box = theta_box s in
  let h, rlo, rhi = resolve_reward s sp reward in
  let times = times_of s in
  let nt = Array.length times in
  let series theta =
    let vals, certs = certified_series s sp ~theta ~times [| h |] in
    (Array.map (fun row -> row.(0)) vals, certs)
  in
  let mean, certificates = series (Optim.Box.midpoint box) in
  let lower, upper, disc, rnd, sweep_steps =
    match s.scenario with
    | Imprecise ->
        if not (Model.affine_in_theta s.model) then
          invalid_arg
            "Engine.envelope: imprecise finite-N bounds need rates affine in \
             theta (vertex extremisation is only exact there); use the \
             Uncertain scenario";
        let im = Ctmc_of_population.imprecise ~theta:box sp pop in
        let x0i = Ctmc_of_population.x0_index sp in
        (* a truncated space's imprecise chain carries one absorbing
           sink: pin its reward at the full-domain extremum so escaped
           mass is priced at worst case and the sweep stays an outer
           bound *)
        let extend h sink_value =
          if Imprecise_ctmc.n_states im > Ctmc_of_population.n_states sp then
            Array.append h [| sink_value |]
          else h
        in
        let lo = imprecise_sweep s ~sense:`Lower im ~h:(extend h rlo) ~times in
        let hi = imprecise_sweep s ~sense:`Upper im ~h:(extend h rhi) ~times in
        ( Array.map (fun v -> v.(x0i)) lo.Imprecise_ctmc.values,
          Array.map (fun v -> v.(x0i)) hi.Imprecise_ctmc.values,
          Array.init nt (fun j -> Float.max lo.eps.(j) hi.eps.(j)),
          Array.init nt (fun j -> Float.max lo.rounding.(j) hi.rounding.(j)),
          lo.steps + hi.steps )
    | Uncertain grid ->
        let lo = Array.make nt Float.infinity
        and hi = Array.make nt Float.neg_infinity in
        List.iter
          (fun th ->
            let e, certs = series th in
            for j = 0 to nt - 1 do
              let l = lost certs.(j) in
              if e.(j) +. (l *. rlo) < lo.(j) then lo.(j) <- e.(j) +. (l *. rlo);
              if e.(j) +. (l *. rhi) > hi.(j) then hi.(j) <- e.(j) +. (l *. rhi)
            done)
          (Optim.Box.sample_grid box grid);
        (lo, hi, Array.make nt 0., Array.make nt 0., 0)
  in
  let escaped =
    Array.fold_left (fun acc c -> Float.max acc (lost c)) 0. certificates
  in
  let certs =
    Array.init nt (fun j ->
        mass_cert
          ~lost:(lost certificates.(j))
          ~rlo ~rhi lower.(j) upper.(j)
        |> Cert.widen ~discretisation:disc.(j) ~rounding:rnd.(j))
  in
  {
    n = s.n;
    states = Ctmc_of_population.n_states sp;
    times;
    mean;
    lower;
    upper;
    certificates;
    escaped;
    certs;
    sweep_steps;
  }

type stationary = {
  n : int;
  states : int;
  theta : Vec.t;
  pi : Vec.t;
  values : float array;
  certs : Cert.t array;
}

let stationary ?theta ?space ?(tol = 1e-12) ?(max_iter = 1_000_000) s ~rewards
    =
  (match s.truncation with
  | Adaptive _ ->
      invalid_arg
        "Engine.stationary: needs Exact truncation (a substochastic \
         truncated chain has no stationary distribution)"
  | Exact _ -> ());
  let sp = space_of ?space s in
  let theta = theta_point ?theta s in
  let pop = Model.population s.model in
  let g =
    Ctmc_of_population.generator ?pool:s.pool ~obs:s.obs sp pop ~theta
  in
  let pi =
    Stationary.power_iteration ?pool:s.pool ~obs:s.obs ~tol ~max_iter g
  in
  let resolved = Array.map (resolve_reward s sp) rewards in
  let values = Array.map (fun (h, _, _) -> Vec.dot h pi) resolved in
  (* the power-iteration residual is a ledger line, not a rigorous
     distance to the true expectation: the value interval is widened by
     tol scaled to the reward range so downstream consumers see a
     non-degenerate, clearly-attributed optimiser contribution *)
  let certs =
    Array.map2
      (fun (_, rlo, rhi) v ->
        let pad = tol *. Float.max 1. (rhi -. rlo) in
        Cert.widen ~optimiser:pad (Cert.exact v))
      resolved values
  in
  {
    n = s.n;
    states = Ctmc_of_population.n_states sp;
    theta;
    pi;
    values;
    certs;
  }

type distribution = {
  n : int;
  states : int;
  theta : Vec.t;
  p : Vec.t;
  certificate : certificate;
  cert : Cert.t;
}

let distribution_certificate d = d.certificate

let distribution ?theta ?space s =
  let sp = space_of ?space s in
  let theta = theta_point ?theta s in
  let g, leak = generator_of s sp ~theta in
  let p0 = Ctmc_of_population.point_mass sp in
  let p, certificate =
    Transient.uniformization_certified ?pool:s.pool ~obs:s.obs
      ~epsilon:s.epsilon ?leak g ~p0 ~t:s.horizon
  in
  let retained = Vec.sum p in
  let l = lost certificate in
  let cert =
    Cert.of_interval
      ~budget:(Cert.budget ~truncation:l ())
      (Interval.make retained (retained +. l))
  in
  {
    n = s.n;
    states = Ctmc_of_population.n_states sp;
    theta;
    p;
    certificate;
    cert;
  }
