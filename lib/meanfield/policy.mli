(** Adapted parameter policies θ_t for imprecise population processes.

    A policy is the adversary/environment choosing θ inside Θ.  It may
    observe time and the current (density) state, keep internal state
    (hysteresis), and possess its own exponential jump clock (random
    redraws), covering the two control functions of Sec. V-E of the
    paper. *)

open Umf_numerics

(** A live instance carries the policy's mutable internal state for one
    simulation run. *)
type instance = {
  theta : float -> Vec.t -> Vec.t;
      (** [theta t x]: the current parameter choice. *)
  jump_rate : float -> Vec.t -> float;
      (** Absolute rate of spontaneous policy jumps (0 if none). *)
  do_jump : Rng.t -> float -> Vec.t -> unit;
      (** Apply a spontaneous jump (called when the jump clock fires). *)
  notify : float -> Vec.t -> unit;
      (** Called after every process transition, so state-triggered
          policies (hysteresis) can update. *)
}

type t = { name : string; instantiate : unit -> instance }

val constant : Vec.t -> t
(** The uncertain scenario: θ fixed for the whole run. *)

val feedback : string -> (float -> Vec.t -> Vec.t) -> t
(** Deterministic measurable feedback θ(t, x). *)

val hysteresis :
  name:string ->
  high:Vec.t ->
  low:Vec.t ->
  drop_if:(Vec.t -> bool) ->
  rise_if:(Vec.t -> bool) ->
  init:[ `High | `Low ] ->
  t
(** Two-mode switching policy: in mode [`High] it plays [high] and
    drops to [`Low] when [drop_if x]; in mode [`Low] it plays [low] and
    rises when [rise_if x].  Policy θ1 of the paper is an instance. *)

val jump_redraw :
  name:string ->
  rate:(float -> Vec.t -> float) ->
  redraw:(Rng.t -> Optim.Box.t -> Vec.t) ->
  box:Optim.Box.t ->
  init:Vec.t ->
  t
(** θ jumps to a freshly drawn value at a state-dependent rate — policy
    θ2 of the paper uses rate 5·X_I and a uniform redraw. *)

val uniform_redraw : Rng.t -> Optim.Box.t -> Vec.t
(** Convenience redraw function: uniform over the box. *)
