open Umf_numerics
module Model = Umf_meanfield.Model

type severity = Error | Warning | Info

type subject =
  | Model
  | Transition of string
  | Coord of int
  | Param of int

type finding = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
}

type coord_class = {
  affine_theta : bool;
  multilinear : bool;
  smooth : bool;
}

type conservation = { weights : Vec.t; pretty : string }

type report = {
  model : string;
  var_names : string array;
  theta_names : string array;
  findings : finding list;
  classes : coord_class array;
  conservation : conservation list;
  simplex_preserving : bool;
  lipschitz : float option;
  recommended_opt : [ `Vertices | `Box of int ];
}

let code_table =
  [
    ("L001", "transition rate is certifiably negative on the domain");
    ("L002", "transition rate cannot be certified non-negative");
    ("L003", "rate references a state variable out of range");
    ("L004", "rate references a parameter out of range");
    ("L005", "change vector has the wrong dimension");
    ("L006", "a divisor can contain zero: division-by-zero freedom not certified");
    ("L101", "drift affine in theta: vertex enumeration of the Hamiltonian is exact");
    ("L102", "drift not affine in theta: vertex enumeration may miss the arg max");
    ("L103", "drift multilinear: hull face extrema are attained at box vertices");
    ("L201", "conservation law (left null space of the change-vector matrix)");
    ("L202", "drift preserves the unit simplex");
    ("L301", "certified Lipschitz bound on the drift Jacobian");
    ("L302", "drift only piecewise-smooth (Min/Max/Ite kinks)");
    ("L303", "Lipschitz bound not certifiable over the domain");
    ("L401", "state variable never read by a rate nor moved by a change vector");
    ("L402", "parameter never referenced by any rate");
    ("L403", "transition rate is identically zero");
    ("L404", "transition can push a coordinate below zero");
  ]

let describe code =
  match List.assoc_opt code code_table with Some d -> d | None -> ""

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let tol = 1e-9

(* ------------------------------------------------------------------ *)
(* expression helpers                                                  *)

let rec has_kink e =
  match (e : Expr.t) with
  | Const _ | Var _ | Theta _ -> false
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      has_kink a || has_kink b
  | Neg a | Pow (a, _) -> has_kink a
  | Min (_, _) | Max (_, _) | Ite (_, _, _) -> true

(* ------------------------------------------------------------------ *)
(* conservation-law pretty printing                                    *)

let pretty_weights var_names (w : Vec.t) =
  let n = Vec.dim w in
  let smallest = ref Float.infinity in
  for i = 0 to n - 1 do
    let a = Float.abs w.(i) in
    if a > tol && a < !smallest then smallest := a
  done;
  let scaled =
    if Float.is_finite !smallest then Vec.scale (1. /. !smallest) w else w
  in
  let integral =
    Array.for_all
      (fun v -> Float.abs (v -. Float.round v) <= 1e-6 *. Float.max 1. (Float.abs v))
      scaled
  in
  let coeff v =
    if integral then Printf.sprintf "%.0f" (Float.abs (Float.round v))
    else Printf.sprintf "%.3g" (Float.abs v)
  in
  let buf = Buffer.create 32 in
  let first = ref true in
  Array.iteri
    (fun i v ->
      if Float.abs v > tol then begin
        let sign = if v < 0. then "-" else "+" in
        if !first then begin
          if v < 0. then Buffer.add_string buf "-";
          first := false
        end
        else Buffer.add_string buf (Printf.sprintf " %s " sign);
        let c = coeff v in
        if c <> "1" then Buffer.add_string buf c;
        Buffer.add_string buf var_names.(i)
      end)
    scaled;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* the analysis                                                        *)

let analyze_transitions ?domain ~name ~var_names ~theta_names ~theta
    (transitions : Model.transition list) =
  let dim = Array.length var_names in
  let theta_dim = Array.length theta_names in
  let domain =
    match domain with
    | Some b ->
        if Optim.Box.dim b <> dim then
          invalid_arg "Lint: domain dimension mismatch";
        b
    | None -> Optim.Box.make (Vec.zeros dim) (Vec.create dim 1.)
  in
  let x_ivs =
    Array.init dim (fun i ->
        Interval.make domain.Optim.Box.lo.(i) domain.Optim.Box.hi.(i))
  in
  let th_ivs =
    Array.init theta_dim (fun j ->
        Interval.make theta.Optim.Box.lo.(j) theta.Optim.Box.hi.(j))
  in
  let findings = ref [] in
  let report code severity subject fmt =
    Printf.ksprintf
      (fun message -> findings := { code; severity; subject; message } :: !findings)
      fmt
  in

  (* -------- well-formedness: L003/L004/L005 ----------------------- *)
  let valid =
    List.filter
      (fun (tr : Model.transition) ->
        let ok = ref true in
        if Vec.dim tr.change <> dim then begin
          report "L005" Error (Transition tr.name)
            "transition %s: change vector has dimension %d, expected %d"
            tr.name (Vec.dim tr.change) dim;
          ok := false
        end;
        List.iter
          (fun i ->
            if i >= dim then begin
              report "L003" Error (Transition tr.name)
                "transition %s: rate references x%d but the model has %d \
                 variable%s"
                tr.name i dim
                (if dim = 1 then "" else "s");
              ok := false
            end)
          (Expr.vars tr.rate);
        List.iter
          (fun j ->
            if j >= theta_dim then begin
              report "L004" Error (Transition tr.name)
                "transition %s: rate references th%d but Θ has %d \
                 coordinate%s"
                tr.name j theta_dim
                (if theta_dim = 1 then "" else "s");
              ok := false
            end)
          (Expr.thetas tr.rate);
        !ok)
      transitions
  in

  (* -------- rate soundness: L001/L002/L006/L403 ------------------- *)
  let rate_sound = ref true in
  List.iter
    (fun (tr : Model.transition) ->
      if Expr.simplify tr.rate = Expr.Const 0. then
        report "L403" Warning (Transition tr.name)
          "transition %s: rate simplifies to 0 — the transition never fires"
          tr.name
      else begin
        match Expr.eval_interval tr.rate ~x:x_ivs ~th:th_ivs with
        | enc ->
            if Interval.hi enc < -.tol then begin
              rate_sound := false;
              report "L001" Error (Transition tr.name)
                "transition %s: rate is negative everywhere on the domain \
                 (enclosure [%g, %g]) — propensities are ill-defined"
                tr.name (Interval.lo enc) (Interval.hi enc)
            end
            else if Interval.lo enc < -.tol then begin
              rate_sound := false;
              report "L002" Warning (Transition tr.name)
                "transition %s: rate not certified non-negative (enclosure \
                 [%g, %g]); Theorems 1-4 assume β ≥ 0 — guard the rate with \
                 max(0, ·) or shrink the domain"
                tr.name (Interval.lo enc) (Interval.hi enc)
            end
        | exception Division_by_zero ->
            rate_sound := false;
            report "L006" Warning (Transition tr.name)
              "transition %s: a divisor interval contains 0 on the domain — \
               division-by-zero freedom not certified (guard the denominator, \
               e.g. with max(den, ε))"
              tr.name
      end)
    valid;

  (* -------- dead code: L401/L402 ---------------------------------- *)
  let var_read = Array.make dim false and var_moved = Array.make dim false in
  let param_read = Array.make theta_dim false in
  List.iter
    (fun (tr : Model.transition) ->
      List.iter (fun i -> var_read.(i) <- true) (Expr.vars tr.rate);
      List.iter (fun j -> param_read.(j) <- true) (Expr.thetas tr.rate);
      Array.iteri (fun i c -> if c <> 0. then var_moved.(i) <- true) tr.change)
    valid;
  Array.iteri
    (fun i name_i ->
      if not (var_read.(i) || var_moved.(i)) then
        report "L401" Warning (Coord i)
          "variable %s is never read by a rate nor moved by a change vector"
          name_i)
    var_names;
  Array.iteri
    (fun j name_j ->
      if not param_read.(j) then
        report "L402" Warning (Param j)
          "parameter %s is never referenced by any rate — its imprecision \
           interval is dead"
          name_j)
    theta_names;

  (* -------- positive-orthant invariance: L404 --------------------- *)
  let orthant_ok = ref true in
  List.iter
    (fun (tr : Model.transition) ->
      Array.iteri
        (fun i c ->
          if
            c < 0.
            && domain.Optim.Box.lo.(i) <= 0.
            && domain.Optim.Box.hi.(i) >= 0.
          then begin
            let face =
              Array.mapi
                (fun k iv -> if k = i then Interval.of_float 0. else iv)
                x_ivs
            in
            match Expr.eval_interval tr.rate ~x:face ~th:th_ivs with
            | enc ->
                if Interval.hi enc > tol then begin
                  orthant_ok := false;
                  report "L404" Warning (Transition tr.name)
                    "transition %s decreases %s but can fire at rate up to %g \
                     on the face %s = 0 — the state can leave the positive \
                     orthant"
                    tr.name var_names.(i) (Interval.hi enc) var_names.(i)
                end
            | exception Division_by_zero ->
                orthant_ok := false;
                report "L404" Warning (Transition tr.name)
                  "transition %s decreases %s and its rate cannot be \
                   certified zero on the face %s = 0 (division by an \
                   interval containing 0)"
                  tr.name var_names.(i) var_names.(i)
          end)
        tr.change)
    valid;

  (* -------- drift and structure classification -------------------- *)
  let drift =
    Array.init dim (fun i ->
        List.fold_left
          (fun acc (tr : Model.transition) ->
            if tr.change.(i) = 0. then acc
            else Expr.(acc +: (const tr.change.(i) *: tr.rate)))
          (Expr.const 0.) valid
        |> Expr.simplify)
  in
  let classes =
    Array.map
      (fun fi ->
        {
          affine_theta = Expr.is_affine_in_theta fi;
          multilinear = Expr.is_multilinear fi;
          smooth = not (has_kink fi);
        })
      drift
  in
  let all_affine = Array.for_all (fun c -> c.affine_theta) classes in
  let all_multilinear = Array.for_all (fun c -> c.multilinear) classes in
  if dim > 0 then begin
    if all_affine then
      report "L101" Info Model
        "drift is affine in θ: the Hamiltonian arg max is attained at a \
         vertex of Θ — Pontryagin can use exact vertex enumeration"
    else begin
      let bad =
        String.concat ", "
          (List.filteri (fun i _ -> not classes.(i).affine_theta)
             (Array.to_list var_names))
      in
      report "L102" Warning Model
        "drift not affine in θ (coordinate%s %s): vertex enumeration may \
         miss the Hamiltonian arg max — a box search is used instead"
        (if String.contains bad ',' then "s" else "")
        bad
    end;
    if all_multilinear then
      report "L103" Info Model
        "drift is multilinear: hull face extrema are attained at box \
         vertices, so vertex/grid optimisation is exact"
  end;
  let kinked =
    List.filteri (fun i _ -> not classes.(i).smooth) (Array.to_list var_names)
  in
  if kinked <> [] then
    report "L302" Warning Model
      "drift coordinate%s %s %s only piecewise-smooth (Min/Max/Ite): \
       costates use Clarke subgradients at kinks; the drift remains \
       Lipschitz but not C¹"
      (if List.length kinked > 1 then "s" else "")
      (String.concat ", " kinked)
      (if List.length kinked > 1 then "are" else "is");

  (* -------- conservation laws: L201/L202 -------------------------- *)
  let conservation =
    if valid = [] || dim = 0 then []
    else begin
      let c = Mat.of_arrays (Array.of_list (List.map (fun (tr : Model.transition) -> Vec.copy tr.change) valid)) in
      Mat.null_space ~tol:1e-9 c
      |> Array.to_list
      |> List.map (fun w -> { weights = w; pretty = pretty_weights var_names w })
    end
  in
  List.iter
    (fun cons ->
      report "L201" Info Model "conservation law: %s is constant along every trajectory"
        cons.pretty)
    conservation;
  let mass_conserved =
    valid <> []
    && List.for_all
         (fun (tr : Model.transition) -> Float.abs (Vec.sum tr.change) <= tol)
         valid
  in
  let simplex_preserving = mass_conserved && !rate_sound && !orthant_ok in
  if simplex_preserving then
    report "L202" Info Model
      "the drift preserves the unit simplex: total mass is conserved, rates \
       are certified non-negative and no transition can push a coordinate \
       below zero";

  (* -------- Lipschitz certificate: L301/L302/L303 ----------------- *)
  let lipschitz =
    if dim = 0 then None
    else begin
      let certified = ref true in
      let bound = ref 0. in
      Array.iteri
        (fun i fi ->
          if !certified then begin
            let row = ref 0. in
            for j = 0 to dim - 1 do
              if !certified then begin
                let dij = Expr.simplify (Expr.diff_var fi j) in
                match Expr.eval_interval dij ~x:x_ivs ~th:th_ivs with
                | enc ->
                    let mag =
                      Float.max (Float.abs (Interval.lo enc))
                        (Float.abs (Interval.hi enc))
                    in
                    if Float.is_finite mag then row := !row +. mag
                    else begin
                      certified := false;
                      report "L303" Warning (Coord i)
                        "Lipschitz bound not certifiable: ∂f_%s/∂%s is \
                         unbounded over the domain × Θ"
                        var_names.(i) var_names.(j)
                    end
                | exception Division_by_zero ->
                    certified := false;
                    report "L303" Warning (Coord i)
                      "Lipschitz bound not certifiable: ∂f_%s/∂%s divides by \
                       an interval containing 0 — Theorems 1-4 need a \
                       Lipschitz drift, certify it on a smaller domain"
                      var_names.(i) var_names.(j)
              end
            done;
            if !certified then bound := Float.max !bound !row
          end)
        drift;
      if !certified then begin
        report "L301" Info Model
          "certified Lipschitz bound: ‖∂f/∂x‖∞ ≤ %g over the domain × Θ \
           (feeds the Certified error bounds)"
          !bound;
        Some !bound
      end
      else None
    end
  in

  let recommended_opt = if all_affine then `Vertices else `Box 5 in
  let findings =
    List.sort
      (fun a b ->
        match compare a.code b.code with 0 -> compare a.message b.message | c -> c)
      !findings
  in
  {
    model = name;
    var_names;
    theta_names;
    findings;
    classes;
    conservation;
    simplex_preserving;
    lipschitz;
    recommended_opt;
  }

let analyze ?domain m =
  let domain = match domain with Some b -> b | None -> Model.clip m in
  analyze_transitions ~domain ~name:(Model.name m)
    ~var_names:(Model.var_names m) ~theta_names:(Model.theta_names m)
    ~theta:(Model.theta m) (Model.transitions m)

(* ------------------------------------------------------------------ *)
(* report access and printing                                          *)

let errors r = List.filter (fun f -> f.severity = Error) r.findings

let warnings r = List.filter (fun f -> f.severity = Warning) r.findings

let ok r = errors r = []

let findings_with r code = List.filter (fun f -> f.code = code) r.findings

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %-7s %s" f.code (severity_to_string f.severity)
    f.message

let pp_report ppf r =
  let n_err = List.length (errors r)
  and n_warn = List.length (warnings r) in
  let n_info = List.length r.findings - n_err - n_warn in
  Format.fprintf ppf "lint report for %s (%d state variable%s, %d parameter%s)@."
    r.model (Array.length r.var_names)
    (if Array.length r.var_names = 1 then "" else "s")
    (Array.length r.theta_names)
    (if Array.length r.theta_names = 1 then "" else "s");
  Format.fprintf ppf "  %d error%s, %d warning%s, %d info%s@." n_err
    (if n_err = 1 then "" else "s")
    n_warn
    (if n_warn = 1 then "" else "s")
    n_info
    (if n_info = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) r.findings;
  Format.fprintf ppf "  classification (per drift coordinate):@.";
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "    %s: %s in θ, %s, %s@." r.var_names.(i)
        (if c.affine_theta then "affine" else "non-affine")
        (if c.multilinear then "multilinear" else "not multilinear")
        (if c.smooth then "smooth" else "piecewise-smooth"))
    r.classes;
  (match r.conservation with
  | [] -> Format.fprintf ppf "  conservation laws: none@."
  | laws ->
      Format.fprintf ppf "  conservation laws:@.";
      List.iter (fun c -> Format.fprintf ppf "    %s constant@." c.pretty) laws);
  (match r.lipschitz with
  | Some l -> Format.fprintf ppf "  Lipschitz: ‖∂f/∂x‖∞ ≤ %g on domain × Θ@." l
  | None -> Format.fprintf ppf "  Lipschitz: not certifiable on this domain@.");
  Format.fprintf ppf "  recommended Hamiltonian optimiser: %s@."
    (match r.recommended_opt with
    | `Vertices -> "vertex enumeration (exact: drift affine in θ)"
    | `Box k -> Printf.sprintf "box search (grid %d + refinement)" k)
