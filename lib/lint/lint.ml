open Umf_numerics
module Model = Umf_meanfield.Model

type severity = Error | Warning | Info

type subject =
  | Model
  | Transition of string
  | Coord of int
  | Param of int

type finding = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
}

type coord_class = {
  affine_theta : bool;
  multilinear : bool;
  smooth : bool;
}

type conservation = { weights : Vec.t; pretty : string }

type report = {
  model : string;
  var_names : string array;
  theta_names : string array;
  findings : finding list;
  classes : coord_class array;
  conservation : conservation list;
  simplex_preserving : bool;
  lipschitz : float option;
  vertex_certified : bool;
  recommended_opt : [ `Vertices | `Box of int ];
  tape : Tape_check.report option;
}

let code_table =
  [
    ("L001", "transition rate is certifiably negative on the domain");
    ("L002", "transition rate cannot be certified non-negative");
    ("L003", "rate references a state variable out of range");
    ("L004", "rate references a parameter out of range");
    ("L005", "change vector has the wrong dimension");
    ("L006", "a divisor can contain zero: division-by-zero freedom not certified");
    ("L101", "drift affine in theta: vertex enumeration of the Hamiltonian is exact");
    ("L102", "drift not affine in theta: vertex enumeration may miss the arg max");
    ("L103", "drift multilinear: hull face extrema are attained at box vertices");
    ("L201", "conservation law (left null space of the change-vector matrix)");
    ("L202", "drift preserves the unit simplex");
    ("L301", "certified Lipschitz bound on the drift Jacobian");
    ("L302", "drift only piecewise-smooth (Min/Max/Ite kinks)");
    ("L303", "Lipschitz bound not certifiable over the domain");
    ("L401", "state variable never read by a rate nor moved by a change vector");
    ("L402", "parameter never referenced by any rate");
    ("L403", "transition rate is identically zero");
    ("L404", "transition can push a coordinate below zero");
    ("C001", "drift enclosure unbounded: derived certificate values are vacuous");
    ("C002", "rounding budget line infinite: float-safety not certifiable");
    ("C003", "rate enclosure unbounded: sweep error ledgers budget at an infinite exit rate");
    ("C101", "composed certificate vacuous: downstream Cert consumers learn nothing");
  ]

(* L- and C-codes here, T-codes in {!Tape_check}: one lookup covers all
   three tiers *)
let describe code =
  match List.assoc_opt code code_table with
  | Some d -> d
  | None -> Tape_check.describe code

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let tol = 1e-9

(* ------------------------------------------------------------------ *)
(* expression helpers                                                  *)

let rec has_kink e =
  match (e : Expr.t) with
  | Const _ | Var _ | Theta _ -> false
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      has_kink a || has_kink b
  | Neg a | Pow (a, _) -> has_kink a
  | Min (_, _) | Max (_, _) | Ite (_, _, _) -> true

(* ------------------------------------------------------------------ *)
(* conservation-law pretty printing                                    *)

let pretty_weights var_names (w : Vec.t) =
  let n = Vec.dim w in
  let smallest = ref Float.infinity in
  for i = 0 to n - 1 do
    let a = Float.abs w.(i) in
    if a > tol && a < !smallest then smallest := a
  done;
  let scaled =
    if Float.is_finite !smallest then Vec.scale (1. /. !smallest) w else w
  in
  let integral =
    Array.for_all
      (fun v -> Float.abs (v -. Float.round v) <= 1e-6 *. Float.max 1. (Float.abs v))
      scaled
  in
  let coeff v =
    if integral then Printf.sprintf "%.0f" (Float.abs (Float.round v))
    else Printf.sprintf "%.3g" (Float.abs v)
  in
  let buf = Buffer.create 32 in
  let first = ref true in
  Array.iteri
    (fun i v ->
      if Float.abs v > tol then begin
        let sign = if v < 0. then "-" else "+" in
        if !first then begin
          if v < 0. then Buffer.add_string buf "-";
          first := false
        end
        else Buffer.add_string buf (Printf.sprintf " %s " sign);
        let c = coeff v in
        if c <> "1" then Buffer.add_string buf c;
        Buffer.add_string buf var_names.(i)
      end)
    scaled;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* the analysis                                                        *)

(* lint-side view of the tape analyzer: map its severities and
   subjects into this report's vocabulary (instruction- and tape-level
   subjects attach to the model; output/input slots are coordinates) *)

let of_tc_severity = function
  | Tape_check.Error -> Error
  | Tape_check.Warning -> Warning
  | Tape_check.Info -> Info

let of_tc_subject = function
  | Tape_check.Tape | Tape_check.Instr _ -> Model
  | Tape_check.Output i | Tape_check.Var_slot i -> Coord i
  | Tape_check.Theta_slot j -> Param j

let div_unsound (rep : Tape_check.report) =
  List.exists
    (fun (f : Tape_check.finding) -> f.code = "T001" || f.code = "T002")
    rep.Tape_check.findings

let first_div_message (rep : Tape_check.report) =
  match
    List.find_opt
      (fun (f : Tape_check.finding) -> f.code = "T001" || f.code = "T002")
      rep.Tape_check.findings
  with
  | Some f -> f.Tape_check.message
  | None -> "no division defect"

let analyze_transitions ?domain ?(tape = false) ~name ~var_names ~theta_names
    ~theta (transitions : Model.transition list) =
  let dim = Array.length var_names in
  let theta_dim = Array.length theta_names in
  let domain =
    match domain with
    | Some b ->
        if Optim.Box.dim b <> dim then
          invalid_arg "Lint: domain dimension mismatch";
        b
    | None -> Optim.Box.make (Vec.zeros dim) (Vec.create dim 1.)
  in
  let x_ivs =
    Array.init dim (fun i ->
        Interval.make domain.Optim.Box.lo.(i) domain.Optim.Box.hi.(i))
  in
  let th_ivs =
    Array.init theta_dim (fun j ->
        Interval.make theta.Optim.Box.lo.(j) theta.Optim.Box.hi.(j))
  in
  let findings = ref [] in
  let report code severity subject fmt =
    Printf.ksprintf
      (fun message -> findings := { code; severity; subject; message } :: !findings)
      fmt
  in

  (* -------- well-formedness: L003/L004/L005 ----------------------- *)
  let valid =
    List.filter
      (fun (tr : Model.transition) ->
        let ok = ref true in
        if Vec.dim tr.change <> dim then begin
          report "L005" Error (Transition tr.name)
            "transition %s: change vector has dimension %d, expected %d"
            tr.name (Vec.dim tr.change) dim;
          ok := false
        end;
        List.iter
          (fun i ->
            if i >= dim then begin
              report "L003" Error (Transition tr.name)
                "transition %s: rate references x%d but the model has %d \
                 variable%s"
                tr.name i dim
                (if dim = 1 then "" else "s");
              ok := false
            end)
          (Expr.vars tr.rate);
        List.iter
          (fun j ->
            if j >= theta_dim then begin
              report "L004" Error (Transition tr.name)
                "transition %s: rate references th%d but Θ has %d \
                 coordinate%s"
                tr.name j theta_dim
                (if theta_dim = 1 then "" else "s");
              ok := false
            end)
          (Expr.thetas tr.rate);
        !ok)
      transitions
  in

  (* total interval evaluation through the tape analyzer: never raises
     — a zero-containing divisor comes back as an unbounded enclosure
     plus a T001/T002 finding naming the offending instruction.  One
     compiled tape per distinct expression, reused across face checks. *)
  let tape_cache : (Expr.t, Tape.t) Hashtbl.t = Hashtbl.create 16 in
  let tape_of e =
    match Hashtbl.find_opt tape_cache e with
    | Some t -> t
    | None ->
        let t = Tape.compile [| e |] in
        Hashtbl.add tape_cache e t;
        t
  in
  let enclose e ~x =
    let rep = Tape_check.analyze (tape_of e) ~x ~th:th_ivs in
    (rep.Tape_check.outputs.(0).Tape_check.range, rep)
  in

  (* -------- rate soundness: L001/L002/L006/L403 ------------------- *)
  let rate_sound = ref true in
  List.iter
    (fun (tr : Model.transition) ->
      if Expr.simplify tr.rate = Expr.Const 0. then
        report "L403" Warning (Transition tr.name)
          "transition %s: rate simplifies to 0 — the transition never fires"
          tr.name
      else begin
        let enc, rep = enclose tr.rate ~x:x_ivs in
        if div_unsound rep then begin
          rate_sound := false;
          report "L006" Warning (Transition tr.name)
            "transition %s: division-by-zero freedom not certified — %s"
            tr.name (first_div_message rep)
        end
        else if Interval.hi enc < -.tol then begin
          rate_sound := false;
          report "L001" Error (Transition tr.name)
            "transition %s: rate is negative everywhere on the domain \
             (enclosure [%g, %g]) — propensities are ill-defined"
            tr.name (Interval.lo enc) (Interval.hi enc)
        end
        else if Interval.lo enc < -.tol then begin
          rate_sound := false;
          report "L002" Warning (Transition tr.name)
            "transition %s: rate not certified non-negative (enclosure \
             [%g, %g]); Theorems 1-4 assume β ≥ 0 — guard the rate with \
             max(0, ·) or shrink the domain"
            tr.name (Interval.lo enc) (Interval.hi enc)
        end
      end)
    valid;

  (* -------- dead code: L401/L402 ---------------------------------- *)
  let var_read = Array.make dim false and var_moved = Array.make dim false in
  let param_read = Array.make theta_dim false in
  List.iter
    (fun (tr : Model.transition) ->
      List.iter (fun i -> var_read.(i) <- true) (Expr.vars tr.rate);
      List.iter (fun j -> param_read.(j) <- true) (Expr.thetas tr.rate);
      Array.iteri (fun i c -> if c <> 0. then var_moved.(i) <- true) tr.change)
    valid;
  Array.iteri
    (fun i name_i ->
      if not (var_read.(i) || var_moved.(i)) then
        report "L401" Warning (Coord i)
          "variable %s is never read by a rate nor moved by a change vector"
          name_i)
    var_names;
  Array.iteri
    (fun j name_j ->
      if not param_read.(j) then
        report "L402" Warning (Param j)
          "parameter %s is never referenced by any rate — its imprecision \
           interval is dead"
          name_j)
    theta_names;

  (* -------- positive-orthant invariance: L404 --------------------- *)
  let orthant_ok = ref true in
  List.iter
    (fun (tr : Model.transition) ->
      Array.iteri
        (fun i c ->
          if
            c < 0.
            && domain.Optim.Box.lo.(i) <= 0.
            && domain.Optim.Box.hi.(i) >= 0.
          then begin
            let face =
              Array.mapi
                (fun k iv -> if k = i then Interval.of_float 0. else iv)
                x_ivs
            in
            let enc, rep = enclose tr.rate ~x:face in
            if div_unsound rep then begin
              orthant_ok := false;
              report "L404" Warning (Transition tr.name)
                "transition %s decreases %s and its rate cannot be certified \
                 zero on the face %s = 0 — %s"
                tr.name var_names.(i) var_names.(i) (first_div_message rep)
            end
            else if Interval.hi enc > tol then begin
              orthant_ok := false;
              report "L404" Warning (Transition tr.name)
                "transition %s decreases %s but can fire at rate up to %g \
                 on the face %s = 0 — the state can leave the positive \
                 orthant"
                tr.name var_names.(i) (Interval.hi enc) var_names.(i)
            end
          end)
        tr.change)
    valid;

  (* -------- drift and structure classification -------------------- *)
  let drift =
    Array.init dim (fun i ->
        List.fold_left
          (fun acc (tr : Model.transition) ->
            if tr.change.(i) = 0. then acc
            else Expr.(acc +: (const tr.change.(i) *: tr.rate)))
          (Expr.const 0.) valid
        |> Expr.simplify)
  in
  let classes =
    Array.map
      (fun fi ->
        {
          affine_theta = Expr.is_affine_in_theta fi;
          multilinear = Expr.is_multilinear fi;
          smooth = not (has_kink fi);
        })
      drift
  in
  let all_affine = Array.for_all (fun c -> c.affine_theta) classes in
  let all_multilinear = Array.for_all (fun c -> c.multilinear) classes in

  (* -------- vertex optimality: T203/T204 -------------------------- *)
  (* The bang-bang shortcut (Sec. IV-C) maximises the Hamiltonian
     p·f(x, θ) over the θ-box.  A vertex arg max is guaranteed when
     every drift coordinate is coordinatewise affine (multilinear) in
     θ AND no Min/Max argument or Ite guard depends on θ (a min of
     θ-affine terms is concave — its maximum can sit in the interior).
     Syntactic θ-affinity implies this; otherwise we prove it: every
     kink θ-free and every ∂²f_i/∂θ_j² certified identically zero
     (symbolically, or an exact [0,0] interval enclosure). *)
  let rec kinks_theta_free e =
    match (e : Expr.t) with
    | Const _ | Var _ | Theta _ -> true
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        kinks_theta_free a && kinks_theta_free b
    | Neg a | Pow (a, _) -> kinks_theta_free a
    | Min (a, b) | Max (a, b) -> Expr.thetas a = [] && Expr.thetas b = []
    | Ite (g, a, b) ->
        Expr.thetas g = [] && kinks_theta_free a && kinks_theta_free b
  in
  let second_theta_deriv_zero fi j =
    match Expr.simplify (Expr.diff_theta (Expr.diff_theta fi j) j) with
    | Expr.Const 0. -> true
    | d2 ->
        let enc, rep = enclose d2 ~x:x_ivs in
        (not (div_unsound rep))
        && Interval.lo enc = 0.
        && Interval.hi enc = 0.
  in
  let vertex_certified =
    dim > 0
    && (all_affine
       || (Array.for_all kinks_theta_free drift
          && Array.for_all
               (fun fi ->
                 List.for_all (second_theta_deriv_zero fi)
                   (List.init theta_dim Fun.id))
               drift))
  in

  if dim > 0 then begin
    if all_affine then
      report "L101" Info Model
        "drift is affine in θ: the Hamiltonian arg max is attained at a \
         vertex of Θ — Pontryagin can use exact vertex enumeration"
    else begin
      let bad =
        String.concat ", "
          (List.filteri (fun i _ -> not classes.(i).affine_theta)
             (Array.to_list var_names))
      in
      if vertex_certified then
        report "T203" Info Model
          "drift certified coordinatewise affine (multilinear) in θ although \
           not syntactically affine (coordinate%s %s): the Hamiltonian arg \
           max is provably attained at a vertex of Θ — vertex enumeration \
           stays exact"
          (if String.contains bad ',' then "s" else "")
          bad
      else begin
        report "L102" Warning Model
          "drift not affine in θ (coordinate%s %s): vertex enumeration may \
           miss the Hamiltonian arg max — a box search is used instead"
          (if String.contains bad ',' then "s" else "")
          bad;
        report "T204" Warning Model
          "vertex optimality of the Hamiltonian arg max not certified (a \
           second θ-derivative or a θ-dependent kink survives): Pontryagin \
           falls back to a box search"
      end
    end;
    if all_multilinear then
      report "L103" Info Model
        "drift is multilinear: hull face extrema are attained at box \
         vertices, so vertex/grid optimisation is exact"
  end;
  let kinked =
    List.filteri (fun i _ -> not classes.(i).smooth) (Array.to_list var_names)
  in
  (* Info, not Warning: kinks are fully supported (Clarke subgradients,
     hulled Ite branches) — this states structure, it does not withhold
     a certificate *)
  if kinked <> [] then
    report "L302" Info Model
      "drift coordinate%s %s %s only piecewise-smooth (Min/Max/Ite): \
       costates use Clarke subgradients at kinks; the drift remains \
       Lipschitz but not C¹"
      (if List.length kinked > 1 then "s" else "")
      (String.concat ", " kinked)
      (if List.length kinked > 1 then "are" else "is");

  (* -------- conservation laws: L201/L202 -------------------------- *)
  let conservation =
    if valid = [] || dim = 0 then []
    else begin
      let c = Mat.of_arrays (Array.of_list (List.map (fun (tr : Model.transition) -> Vec.copy tr.change) valid)) in
      Mat.null_space ~tol:1e-9 c
      |> Array.to_list
      |> List.map (fun w -> { weights = w; pretty = pretty_weights var_names w })
    end
  in
  List.iter
    (fun cons ->
      report "L201" Info Model "conservation law: %s is constant along every trajectory"
        cons.pretty)
    conservation;
  let mass_conserved =
    valid <> []
    && List.for_all
         (fun (tr : Model.transition) -> Float.abs (Vec.sum tr.change) <= tol)
         valid
  in
  let simplex_preserving = mass_conserved && !rate_sound && !orthant_ok in
  if simplex_preserving then
    report "L202" Info Model
      "the drift preserves the unit simplex: total mass is conserved, rates \
       are certified non-negative and no transition can push a coordinate \
       below zero";

  (* -------- Lipschitz certificate: L301/L302/L303 ----------------- *)
  let lipschitz =
    if dim = 0 then None
    else begin
      let certified = ref true in
      let bound = ref 0. in
      Array.iteri
        (fun i fi ->
          if !certified then begin
            let row = ref 0. in
            for j = 0 to dim - 1 do
              if !certified then begin
                let dij = Expr.simplify (Expr.diff_var fi j) in
                let enc, rep = enclose dij ~x:x_ivs in
                if div_unsound rep then begin
                  certified := false;
                  report "L303" Warning (Coord i)
                    "Lipschitz bound not certifiable: ∂f_%s/∂%s divides by \
                     an interval containing 0 (%s) — Theorems 1-4 need a \
                     Lipschitz drift, certify it on a smaller domain"
                    var_names.(i) var_names.(j) (first_div_message rep)
                end
                else begin
                  let mag =
                    Float.max
                      (Float.abs (Interval.lo enc))
                      (Float.abs (Interval.hi enc))
                  in
                  if Float.is_finite mag then row := !row +. mag
                  else begin
                    certified := false;
                    report "L303" Warning (Coord i)
                      "Lipschitz bound not certifiable: ∂f_%s/∂%s is \
                       unbounded over the domain × Θ"
                      var_names.(i) var_names.(j)
                  end
                end
              end
            done;
            if !certified then bound := Float.max !bound !row
          end)
        drift;
      if !certified then begin
        report "L301" Info Model
          "certified Lipschitz bound: ‖∂f/∂x‖∞ ≤ %g over the domain × Θ \
           (feeds the Certified error bounds)"
          !bound;
        Some !bound
      end
      else None
    end
  in

  (* -------- tape tier: T-findings merged into this report ---------- *)
  let tape_report =
    if (not tape) || dim = 0 then None
    else begin
      let drift_tape = Tape.compile drift in
      let rep =
        Tape_check.analyze ~var_names ~theta_names drift_tape ~x:x_ivs
          ~th:th_ivs
      in
      List.iter
        (fun (f : Tape_check.finding) ->
          report f.code (of_tc_severity f.severity) (of_tc_subject f.subject)
            "%s" f.message)
        rep.Tape_check.findings;
      (* certified θ-monotonicity: run the exact ∂f/∂θ tapes through
         the same interpreter and report the decided signs, one
         finding per parameter (T202) *)
      if theta_dim > 0 then begin
        let jac_exprs =
          Array.init (dim * theta_dim) (fun k ->
              Expr.simplify (Expr.diff_theta drift.(k / theta_dim) (k mod theta_dim)))
        in
        let jrep =
          Tape_check.analyze (Tape.compile jac_exprs) ~x:x_ivs ~th:th_ivs
        in
        for j = 0 to theta_dim - 1 do
          let decided = ref [] in
          for i = dim - 1 downto 0 do
            let o = jrep.Tape_check.outputs.((i * theta_dim) + j) in
            match o.Tape_check.sign with
            | Tape_check.Mixed -> ()
            | s ->
                decided :=
                  Printf.sprintf "∂f_%s/∂%s %s" var_names.(i)
                    theta_names.(j) (Tape_check.sign_to_string s)
                  :: !decided
          done;
          if !decided <> [] then
            report "T202" Info (Param j)
              "certified monotonicity in %s: %s over the domain × Θ"
              theta_names.(j)
              (String.concat ", " !decided)
        done
      end;
      (* ---- certificate tier: C-codes (vacuous error ledgers) ----
         Warning severity throughout: a vacuous certificate is honest —
         the ledger says "no information" — it just helps nobody, and
         it must not flip {!ok} for models that are otherwise sound. *)
      let finite_iv iv =
        Float.is_finite (Interval.lo iv) && Float.is_finite (Interval.hi iv)
      in
      let value_vacuous = ref false and budget_vacuous = ref false in
      Array.iteri
        (fun i o ->
          if not (finite_iv o.Tape_check.range) then begin
            value_vacuous := true;
            report "C001" Warning (Coord i)
              "drift enclosure for %s is unbounded over the domain × Θ \
               ([%g, %g]): every certificate value built on it \
               (Certified.drift_cert, Hull.final_certs) is vacuous"
              var_names.(i)
              (Interval.lo o.Tape_check.range)
              (Interval.hi o.Tape_check.range)
          end)
        rep.Tape_check.outputs;
      if not (Float.is_finite rep.Tape_check.max_abs_err) then begin
        budget_vacuous := true;
        report "C002" Warning Model
          "the compiled drift's rounding bound is infinite: the rounding \
           line of every derived certificate (Certified.float_error_bound) \
           is vacuous"
      end;
      List.iter
        (fun (tr : Model.transition) ->
          let enc, _ = enclose tr.rate ~x:x_ivs in
          if not (finite_iv enc) then begin
            value_vacuous := true;
            report "C003" Warning (Transition tr.name)
              "transition %s: rate enclosure over the domain × Θ is \
               unbounded ([%g, %g]) — imprecise-sweep error ledgers built \
               from this rate budget at an infinite exit rate"
              tr.name (Interval.lo enc) (Interval.hi enc)
          end)
        valid;
      if !value_vacuous || !budget_vacuous then
        report "C101" Warning Model
          "composed certificate is vacuous (%s): Cert.is_vacuous holds for \
           the model-level ledger, so Certified.usable_bounds is false and \
           downstream gates learn nothing"
          (String.concat " and "
             ((if !value_vacuous then [ "unbounded value enclosure" ] else [])
             @ (if !budget_vacuous then [ "infinite rounding line" ] else [])));
      Some rep
    end
  in

  let recommended_opt = if vertex_certified then `Vertices else `Box 5 in
  let findings =
    List.sort
      (fun a b ->
        match compare a.code b.code with 0 -> compare a.message b.message | c -> c)
      !findings
  in
  {
    model = name;
    var_names;
    theta_names;
    findings;
    classes;
    conservation;
    simplex_preserving;
    lipschitz;
    vertex_certified;
    recommended_opt;
    tape = tape_report;
  }

let analyze ?domain ?tape m =
  let domain = match domain with Some b -> b | None -> Model.clip m in
  analyze_transitions ~domain ?tape ~name:(Model.name m)
    ~var_names:(Model.var_names m) ~theta_names:(Model.theta_names m)
    ~theta:(Model.theta m) (Model.transitions m)

(* ------------------------------------------------------------------ *)
(* report access and printing                                          *)

let errors r = List.filter (fun f -> f.severity = Error) r.findings

let warnings r = List.filter (fun f -> f.severity = Warning) r.findings

let ok r = errors r = []

let findings_with r code = List.filter (fun f -> f.code = code) r.findings

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %-7s %s" f.code (severity_to_string f.severity)
    f.message

(* ------------------------------------------------------------------ *)
(* machine-readable findings (NDJSON lines for CI)                     *)

module Json = Umf_obs.Obs.Json

let subject_to_json r = function
  | Model -> Json.Obj [ ("kind", Json.Str "model") ]
  | Transition t ->
      Json.Obj [ ("kind", Json.Str "transition"); ("name", Json.Str t) ]
  | Coord i ->
      Json.Obj
        (("kind", Json.Str "coord")
        :: ("index", Json.Num (float_of_int i))
        ::
        (if i < Array.length r.var_names then
           [ ("name", Json.Str r.var_names.(i)) ]
         else []))
  | Param j ->
      Json.Obj
        (("kind", Json.Str "param")
        :: ("index", Json.Num (float_of_int j))
        ::
        (if j < Array.length r.theta_names then
           [ ("name", Json.Str r.theta_names.(j)) ]
         else []))

let finding_to_json r f =
  Json.Obj
    [
      ("model", Json.Str r.model);
      ("code", Json.Str f.code);
      ("severity", Json.Str (severity_to_string f.severity));
      ("subject", subject_to_json r f.subject);
      ("message", Json.Str f.message);
      ("description", Json.Str (describe f.code));
    ]

let summary_to_json r =
  let n_err = List.length (errors r) and n_warn = List.length (warnings r) in
  let base =
    [
      ("model", Json.Str r.model);
      ("summary", Json.Bool true);
      ("errors", Json.Num (float_of_int n_err));
      ("warnings", Json.Num (float_of_int n_warn));
      ( "infos",
        Json.Num (float_of_int (List.length r.findings - n_err - n_warn)) );
      ("vertex_certified", Json.Bool r.vertex_certified);
      ( "recommended_opt",
        Json.Str
          (match r.recommended_opt with
          | `Vertices -> "vertices"
          | `Box k -> Printf.sprintf "box:%d" k) );
      ( "lipschitz",
        match r.lipschitz with Some l -> Json.Num l | None -> Json.Null );
    ]
  in
  let tape =
    match r.tape with
    | None -> []
    | Some t ->
        [
          ("float_safe", Json.Bool t.Tape_check.float_safe);
          ("max_abs_err", Json.Num t.Tape_check.max_abs_err);
          ("tape_instrs", Json.Num (float_of_int t.Tape_check.n_instrs));
        ]
  in
  Json.Obj (base @ tape)

let pp_report ppf r =
  let n_err = List.length (errors r)
  and n_warn = List.length (warnings r) in
  let n_info = List.length r.findings - n_err - n_warn in
  Format.fprintf ppf "lint report for %s (%d state variable%s, %d parameter%s)@."
    r.model (Array.length r.var_names)
    (if Array.length r.var_names = 1 then "" else "s")
    (Array.length r.theta_names)
    (if Array.length r.theta_names = 1 then "" else "s");
  Format.fprintf ppf "  %d error%s, %d warning%s, %d info%s@." n_err
    (if n_err = 1 then "" else "s")
    n_warn
    (if n_warn = 1 then "" else "s")
    n_info
    (if n_info = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) r.findings;
  Format.fprintf ppf "  classification (per drift coordinate):@.";
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "    %s: %s in θ, %s, %s@." r.var_names.(i)
        (if c.affine_theta then "affine" else "non-affine")
        (if c.multilinear then "multilinear" else "not multilinear")
        (if c.smooth then "smooth" else "piecewise-smooth"))
    r.classes;
  (match r.conservation with
  | [] -> Format.fprintf ppf "  conservation laws: none@."
  | laws ->
      Format.fprintf ppf "  conservation laws:@.";
      List.iter (fun c -> Format.fprintf ppf "    %s constant@." c.pretty) laws);
  (match r.lipschitz with
  | Some l -> Format.fprintf ppf "  Lipschitz: ‖∂f/∂x‖∞ ≤ %g on domain × Θ@." l
  | None -> Format.fprintf ppf "  Lipschitz: not certifiable on this domain@.");
  Format.fprintf ppf "  recommended Hamiltonian optimiser: %s@."
    (match r.recommended_opt with
    | `Vertices ->
        "vertex enumeration (certified: drift coordinatewise affine in θ)"
    | `Box k -> Printf.sprintf "box search (grid %d + refinement)" k);
  match r.tape with
  | None -> ()
  | Some t ->
      Format.fprintf ppf "  tape tier: %d instructions, float-%s, %s@."
        t.Tape_check.n_instrs
        (if t.Tape_check.float_safe then "safe" else "UNSAFE")
        (if Float.is_finite t.Tape_check.max_abs_err then
           Printf.sprintf "rounding error <= %.3g" t.Tape_check.max_abs_err
         else "rounding error not certifiable");
      Array.iteri
        (fun i o ->
          Format.fprintf ppf "    %s: range %a, |err| <= %.3g, sign %s@."
            (if i < Array.length r.var_names then r.var_names.(i)
             else Printf.sprintf "out%d" i)
            Interval.pp o.Tape_check.range o.Tape_check.abs_err
            (Tape_check.sign_to_string o.Tape_check.sign))
        t.Tape_check.outputs
