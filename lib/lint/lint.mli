(** Static analysis of symbolic population models.

    Every numerical method in the library is only sound under
    structural preconditions that the solvers themselves never check:

    - Theorems 1–4 (mean-field convergence, differential hulls) need a
      Lipschitz drift and non-negative transition rates;
    - the Pontryagin bang-bang shortcut (Sec. IV-C) is exact only for
      drifts affine in θ, where the Hamiltonian arg max is attained at
      a vertex of Θ;
    - hull face extrema are attained at box vertices only for
      multilinear drifts.

    [Lint] checks these {e before} any solver runs, over the symbolic
    transitions of a {!Umf_meanfield.Model}: certified rate non-negativity
    and division-by-zero freedom by interval arithmetic, structure
    classification with a solver recommendation, conservation laws
    from the left null space of the change-vector matrix, an interval
    Lipschitz certificate, and dead-code lints.  Each finding carries
    a stable code, a severity, and the transition or coordinate it
    points at.  Certification is sound but not complete: interval
    arithmetic over-approximates, so a [Warning] means "cannot be
    certified", not "definitely wrong"; an [Error] is a definite
    violation.

    Two analysis tiers share the one report.  L-codes ([L001]…) are
    model-tier: properties of the mathematical object (rates, drift,
    conservation).  T-codes ([T001]…) come from {!Tape_check}, the
    tape tier: properties of the {e executable} — the compiled
    instruction stream every solver evaluates — certifying float-safety
    (division by zero, NaN, overflow), a-priori rounding-error bounds,
    and sign/monotonicity facts.  [analyze ~tape:true] runs both tiers
    and merges the T-findings; interval evaluation inside the linter is
    always total (a zero-containing divisor produces a finding naming
    the offending instruction, never a [Division_by_zero] exception).
    Vertex optimality of the Hamiltonian arg max is {e proven}, not
    guessed: [vertex_certified] holds exactly when every drift
    coordinate is certified coordinatewise affine in θ with θ-free
    kinks — syntactic affinity is a sufficient shortcut, second
    θ-derivatives certified identically zero the general path. *)

open Umf_numerics

type severity = Error | Warning | Info

type subject =
  | Model  (** the model as a whole *)
  | Transition of string
  | Coord of int  (** a state coordinate / drift component *)
  | Param of int  (** a θ coordinate *)

type finding = {
  code : string;  (** stable lint code, ["L001"]… *)
  severity : severity;
  subject : subject;
  message : string;
}

type coord_class = {
  affine_theta : bool;  (** drift coordinate affine in θ *)
  multilinear : bool;
  smooth : bool;  (** free of [Min]/[Max]/[Ite] kinks *)
}

type conservation = {
  weights : Vec.t;  (** w with w·change = 0 for every transition *)
  pretty : string;  (** e.g. ["S + I + R"] *)
}

type report = {
  model : string;
  var_names : string array;
  theta_names : string array;
  findings : finding list;  (** in code order *)
  classes : coord_class array;  (** one per drift coordinate *)
  conservation : conservation list;
      (** basis of the left null space of the change-vector matrix *)
  simplex_preserving : bool;
      (** total mass conserved, rates certified non-negative and no
          transition can push a coordinate below zero *)
  lipschitz : float option;
      (** certified bound on ‖∂f/∂x‖∞ over domain × Θ; [None] when not
          certifiable (e.g. a divisor interval containing zero) *)
  vertex_certified : bool;
      (** the Hamiltonian arg max is {e proven} attained at a vertex of
          Θ: every drift coordinate is coordinatewise affine in θ
          (syntactically, or all second θ-derivatives certified
          identically zero) and every [Min]/[Max]/[Ite] kink is θ-free *)
  recommended_opt : [ `Vertices | `Box of int ];
      (** Hamiltonian optimiser: vertex enumeration exactly when
          [vertex_certified] *)
  tape : Tape_check.report option;
      (** tape-tier report for the drift tape; [None] unless the
          analysis ran with [~tape:true] *)
}

val analyze : ?domain:Optim.Box.t -> ?tape:bool -> Umf_meanfield.Model.t -> report
(** Lint a well-formed model.  [domain] is the state box over which
    rates and derivatives are certified; it defaults to the model's
    clip box (itself the unit box [0,1]^dim unless declared
    otherwise).  [tape] (default [false]) additionally compiles the
    drift and its θ-Jacobian and runs {!Tape_check} over domain × Θ,
    merging the T-findings (float-safety, rounding-error bounds,
    sign/monotonicity facts) into the report and filling {!report.tape}.
    Every {!Umf_meanfield.Model.t} is lintable by construction — there
    is no escape hatch. *)

val analyze_transitions :
  ?domain:Optim.Box.t ->
  ?tape:bool ->
  name:string ->
  var_names:string array ->
  theta_names:string array ->
  theta:Optim.Box.t ->
  Umf_meanfield.Model.transition list ->
  report
(** Like {!analyze} but on raw transitions, without requiring
    {!Umf_meanfield.Model.make} to accept them first: out-of-range
    variable or parameter references and mis-sized change vectors are
    {e reported} (L003–L005) instead of raised, and the offending
    transitions are excluded from the remaining checks. *)

val errors : report -> finding list

val warnings : report -> finding list

val ok : report -> bool
(** No [Error]-level findings. *)

val findings_with : report -> string -> finding list
(** All findings carrying the given code. *)

val describe : string -> string
(** One-line description of a lint code — both families, L-codes and
    {!Tape_check} T-codes (empty for unknown codes). *)

val severity_to_string : severity -> string

val pp_finding : Format.formatter -> finding -> unit

val pp_report : Format.formatter -> report -> unit
(** Human-readable report: findings, per-coordinate classification,
    conservation laws, the Lipschitz certificate, the solver
    recommendation, and (when present) the tape tier's float-safety
    and error-bound summary. *)

(** {1 Machine-readable output}

    One JSON object per finding plus one summary object per report —
    the NDJSON stream behind [umf_cli lint --json]. *)

val finding_to_json : report -> finding -> Umf_obs.Obs.Json.t

val summary_to_json : report -> Umf_obs.Obs.Json.t
