(** Zero-cost-when-off tracing and metrics.

    The iterative solvers of this library (Pontryagin's forward/backward
    fixpoint, the Birkhoff centre growth, differential hulls, adaptive
    RK45, Gillespie replication batches) expose their convergence
    behaviour through a single observation context threaded as an
    optional [?obs] argument.  A context is either {!off} — the shared
    no-op value, the default everywhere — or a set of sinks:

    - an in-memory {!Agg} registry (per-span call count, total and
      maximum wall time; counter sums; gauge last/min/max), and/or
    - an NDJSON {!Trace} event stream, one JSON object per line.

    {b The no-op backend trick.}  [off] is a constant constructor, so
    every probe starts with one immediate branch; {!span_begin} on [off]
    returns the preallocated {!null_span} and {!count}/{!add}/{!gauge}
    return unit — no allocation, no clock read, no formatting.  Hot
    loops additionally accumulate into local ints/floats and fire a
    single probe per solver call, so instrumented code paths with [off]
    are bit-identical to (and within noise as fast as) the
    uninstrumented ones.

    All sinks are mutex-protected: probes may fire concurrently from
    {!Umf_runtime.Runtime.Pool} worker domains. *)

(** In-memory metrics registry. *)
module Agg : sig
  type t

  type span_stat = {
    calls : int;  (** Completed spans with this name. *)
    total : float;  (** Summed wall seconds. *)
    max : float;  (** Longest single span, seconds. *)
  }

  type gauge_stat = {
    last : float;
    g_min : float;
    g_max : float;
    samples : int;
  }

  val create : ?parent:t -> unit -> t
  (** [parent] (default none) is a long-lived registry this one feeds
      its {e gauges} into: every [record_gauge] also updates the parent
      (recursively up the chain), while spans and counters stay local.
      This is how a service keeps lifetime gauge envelopes — queue
      depth, cache size, per-result error-ledger lines — across
      ephemeral per-request overlays ({!with_agg}) without
      double-counting span totals: the parent accumulates its own
      endpoint spans exactly once, and discarded request registries
      leave their gauges behind.  Parent chains must be acyclic. *)

  val reset : t -> unit
  (** Clears this registry's rows (never the parent's). *)

  val span_stats : t -> (string * span_stat) list
  (** All span rows, sorted by name. *)

  val span_stat : t -> string -> span_stat option

  val counters : t -> (string * float) list
  (** All counter sums, sorted by name. *)

  val counter : t -> string -> float
  (** A counter's sum; 0 when never incremented. *)

  val gauges : t -> (string * gauge_stat) list

  val gauge_stat : t -> string -> gauge_stat option

  (** Low-level feeders (also used by the runtime pool, whose section
      durations are measured externally). *)

  val record_span : t -> string -> dur:float -> unit

  val record_counter : t -> string -> float -> unit

  val record_gauge : t -> string -> float -> unit
end

(** A minimal JSON value — just enough to emit and validate the flat
    NDJSON event objects of {!Trace} without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; numbers print with enough digits to
      round-trip. *)

  val of_string : string -> t
  (** @raise Failure on malformed input. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** NDJSON event-stream sink.  Event schema (one object per line):
    - [{"ev":"span","name":s,"t":end,"dur":d, ...metrics}]
    - [{"ev":"count","name":s,"t":t,"v":v}]
    - [{"ev":"gauge","name":s,"t":t,"v":v}]
    where times are seconds relative to the context clock. *)
module Trace : sig
  type t

  val to_channel : ?flush_interval:float -> out_channel -> t
  (** Events are written to the channel; the caller keeps ownership of
      the channel (see {!close}).  [flush_interval] bounds how stale
      the channel buffer may get: [0.] (the default) flushes after
      every record — a killed process loses at most the event being
      written — while a positive interval flushes at most every that
      many wall-clock seconds (long-running daemons streaming many
      events).  @raise Invalid_argument on a negative interval. *)

  val to_file : ?flush_interval:float -> string -> t
  (** Like {!to_channel} over a fresh file, except the sink owns the
      channel: {!close} closes it.  Pair with [Fun.protect] so the
      tail of a trace survives exceptions. *)

  val flush : t -> unit

  val close : t -> unit
  (** Flush, then close the channel if the sink owns it ({!to_file}).
      Idempotent; events emitted after [close] are dropped. *)
end

type t
(** An observation context: {!off} or a sink set. *)

type span
(** A handle for an open span: name + start time. *)

val off : t
(** The disabled context.  All probes on it are no-ops. *)

val make : ?clock:(unit -> float) -> ?agg:Agg.t -> ?trace:Trace.t -> unit -> t
(** An enabled context feeding the given sinks.  [clock] (seconds,
    monotonic enough; default wall clock relative to program start) is
    injectable for deterministic tests.  With neither sink the context
    is {!off}. *)

val with_agg : t -> Agg.t -> t
(** [with_agg t agg] observes everything [t] observes and additionally
    feeds [agg] — how {!Umf.Analysis} collects a per-call metrics
    summary on top of the caller's sinks.  Enabled even when [t] is
    {!off}.  Give [agg] a long-lived parent ({!Agg.create}) when
    gauge envelopes must outlive the overlay. *)

val with_clock : t -> (unit -> float) -> t
(** [with_clock t clock] is [t] with its clock replaced (a no-op on
    {!off}).  Beyond fake clocks for tests, this is the deadline hook
    of a serving layer: a clock that raises once a request's deadline
    has passed turns every subsequent probe into a cancellation point,
    so a deadline-exceeded request unwinds out of the solver at the
    next span boundary instead of wedging its worker. *)

val enabled : t -> bool

val null_span : span
(** The span returned by {!span_begin} on {!off}; ending it is a
    no-op. *)

val span_begin : t -> string -> span

val span_end : ?metrics:(string * float) list -> t -> span -> unit
(** Completes a span: records its duration in every [Agg] sink and
    emits a trace event carrying [metrics] as extra fields.  [metrics]
    only reach the trace — aggregate quantities should additionally be
    fed through {!add}/{!gauge}. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] wraps [f ()] in a span (exceptions end the span
    too).  Convenience for non-hot paths; hot paths should use
    {!span_begin}/{!span_end} to avoid the closure. *)

val count : t -> string -> int -> unit
(** Increment a counter. *)

val add : t -> string -> float -> unit
(** Increment a counter by a float amount. *)

val gauge : t -> string -> float -> unit
(** Record an instantaneous value (aggregated as last/min/max). *)

val record_span : ?metrics:(string * float) list -> t -> string -> dur:float -> unit
(** Record an externally-timed span (e.g. a pool section whose duration
    was measured by the pool itself). *)
