module Agg = struct
  type span_stat = { calls : int; total : float; max : float }

  type gauge_stat = { last : float; g_min : float; g_max : float; samples : int }

  type span_acc = { mutable calls : int; mutable total : float; mutable max : float }

  type gauge_acc = {
    mutable last : float;
    mutable g_min : float;
    mutable g_max : float;
    mutable samples : int;
  }

  type t = {
    lock : Mutex.t;
    spans : (string, span_acc) Hashtbl.t;
    cnts : (string, float ref) Hashtbl.t;
    ggs : (string, gauge_acc) Hashtbl.t;
    parent : t option;
        (* long-lived registry gauges propagate to: lets a service keep
           lifetime gauge envelopes (queue depth, cache size) while the
           child registry is an ephemeral per-request overlay that is
           discarded after each reply.  Only gauges climb — spans and
           counters stay local, so a parent that also records its own
           per-endpoint spans never double-counts totals. *)
  }

  let create ?parent () =
    {
      lock = Mutex.create ();
      spans = Hashtbl.create 16;
      cnts = Hashtbl.create 16;
      ggs = Hashtbl.create 16;
      parent;
    }

  let reset t =
    Mutex.lock t.lock;
    Hashtbl.reset t.spans;
    Hashtbl.reset t.cnts;
    Hashtbl.reset t.ggs;
    Mutex.unlock t.lock

  let record_span t name ~dur =
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.spans name with
    | Some a ->
        a.calls <- a.calls + 1;
        a.total <- a.total +. dur;
        if dur > a.max then a.max <- dur
    | None -> Hashtbl.add t.spans name { calls = 1; total = dur; max = dur });
    Mutex.unlock t.lock

  let record_counter t name v =
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.cnts name with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add t.cnts name (ref v));
    Mutex.unlock t.lock

  let rec record_gauge t name v =
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.ggs name with
    | Some a ->
        a.last <- v;
        if v < a.g_min then a.g_min <- v;
        if v > a.g_max then a.g_max <- v;
        a.samples <- a.samples + 1
    | None ->
        Hashtbl.add t.ggs name { last = v; g_min = v; g_max = v; samples = 1 });
    Mutex.unlock t.lock;
    (* outside t.lock: parent chains never hold two locks at once *)
    match t.parent with None -> () | Some p -> record_gauge p name v

  let sorted rows = List.sort (fun (a, _) (b, _) -> compare a b) rows

  let span_stats t =
    Mutex.lock t.lock;
    let rows =
      Hashtbl.fold
        (fun name (a : span_acc) acc ->
          (name, ({ calls = a.calls; total = a.total; max = a.max } : span_stat))
          :: acc)
        t.spans []
    in
    Mutex.unlock t.lock;
    sorted rows

  let span_stat t name =
    Mutex.lock t.lock;
    let r =
      Option.map
        (fun (a : span_acc) ->
          ({ calls = a.calls; total = a.total; max = a.max } : span_stat))
        (Hashtbl.find_opt t.spans name)
    in
    Mutex.unlock t.lock;
    r

  let counters t =
    Mutex.lock t.lock;
    let rows = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.cnts [] in
    Mutex.unlock t.lock;
    sorted rows

  let counter t name =
    Mutex.lock t.lock;
    let v = match Hashtbl.find_opt t.cnts name with Some r -> !r | None -> 0. in
    Mutex.unlock t.lock;
    v

  let gauges t =
    Mutex.lock t.lock;
    let rows =
      Hashtbl.fold
        (fun name (a : gauge_acc) acc ->
          ( name,
            ({ last = a.last; g_min = a.g_min; g_max = a.g_max; samples = a.samples }
              : gauge_stat) )
          :: acc)
        t.ggs []
    in
    Mutex.unlock t.lock;
    sorted rows

  let gauge_stat t name =
    Mutex.lock t.lock;
    let r =
      Option.map
        (fun (a : gauge_acc) ->
          ({ last = a.last; g_min = a.g_min; g_max = a.g_max; samples = a.samples }
            : gauge_stat))
        (Hashtbl.find_opt t.ggs name)
    in
    Mutex.unlock t.lock;
    r
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let number_to_string v =
    (* JSON has no NaN/Infinity literal; degrade to null so a line
       never becomes unparseable *)
    if not (Float.is_finite v) then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v

  let to_string t =
    let b = Buffer.create 128 in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool v -> Buffer.add_string b (if v then "true" else "false")
      | Num v -> Buffer.add_string b (number_to_string v)
      | Str s -> escape_string b s
      | Arr vs ->
          Buffer.add_char b '[';
          List.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char b ',';
              go v)
            vs;
          Buffer.add_char b ']'
      | Obj fields ->
          Buffer.add_char b '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              escape_string b k;
              Buffer.add_char b ':';
              go v)
            fields;
          Buffer.add_char b '}'
    in
    go t;
    Buffer.contents b

  (* recursive-descent parser over a string; positions tracked in a
     ref.  Complete enough for the flat event objects we emit (and any
     nesting of them). *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Obs.Json.of_string: %s at %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'n' ->
                Buffer.add_char b '\n';
                go ()
            | 'r' ->
                Buffer.add_char b '\r';
                go ()
            | 't' ->
                Buffer.add_char b '\t';
                go ()
            | 'b' ->
                Buffer.add_char b '\b';
                go ()
            | 'f' ->
                Buffer.add_char b '\012';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "bad \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                (* events are ASCII; map BMP code points crudely *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> v
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            Arr (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let rec fields acc =
              let f = field () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields (f :: acc)
              | Some '}' ->
                  advance ();
                  List.rev (f :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (fields [])
          end
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
end

module Trace = struct
  (* A long-running process (the serve daemon in particular) dies by
     signal, not by orderly return — an event sitting in the channel
     buffer at that moment is exactly the tail a post-mortem needs.  So
     the sink flushes after every record by default; [flush_interval]
     trades that durability for throughput by flushing on a bounded
     wall-clock interval instead (plus always on [close]). *)
  type t = {
    oc : out_channel;
    lock : Mutex.t;
    owned : bool;  (* [close] closes the channel only if we opened it *)
    flush_interval : float;
    mutable last_flush : float;
    mutable closed : bool;
  }

  let make ?(flush_interval = 0.) ~owned oc =
    if not (flush_interval >= 0.) then
      invalid_arg "Obs.Trace: flush_interval must be >= 0";
    {
      oc;
      lock = Mutex.create ();
      owned;
      flush_interval;
      last_flush = Unix.gettimeofday ();
      closed = false;
    }

  let to_channel ?flush_interval oc = make ?flush_interval ~owned:false oc

  let to_file ?flush_interval path =
    make ?flush_interval ~owned:true (open_out path)

  let emit t json =
    let line = Json.to_string json in
    Mutex.lock t.lock;
    if not t.closed then begin
      output_string t.oc line;
      output_char t.oc '\n';
      if t.flush_interval <= 0. then flush t.oc
      else begin
        let now = Unix.gettimeofday () in
        if now -. t.last_flush >= t.flush_interval then begin
          flush t.oc;
          t.last_flush <- now
        end
      end
    end;
    Mutex.unlock t.lock

  let flush t =
    Mutex.lock t.lock;
    if not t.closed then begin
      flush t.oc;
      t.last_flush <- Unix.gettimeofday ()
    end;
    Mutex.unlock t.lock

  let close t =
    Mutex.lock t.lock;
    if not t.closed then begin
      t.closed <- true;
      (try Stdlib.flush t.oc with Sys_error _ -> ());
      if t.owned then try close_out t.oc with Sys_error _ -> ()
    end;
    Mutex.unlock t.lock
end

(* wall clock relative to program start: event times stay small and
   readable, and contexts created at different moments share a
   timeline *)
let t_origin = Unix.gettimeofday ()

let default_clock () = Unix.gettimeofday () -. t_origin

type ctx = {
  aggs : Agg.t list;
  traces : Trace.t list;
  clock : unit -> float;
}

type t = Off | On of ctx

type span = { s_name : string; s_t0 : float }

let off = Off

let make ?(clock = default_clock) ?agg ?trace () =
  match (agg, trace) with
  | None, None -> Off
  | _ ->
      On
        {
          aggs = (match agg with Some a -> [ a ] | None -> []);
          traces = (match trace with Some t -> [ t ] | None -> []);
          clock;
        }

let with_agg t agg =
  match t with
  | Off -> On { aggs = [ agg ]; traces = []; clock = default_clock }
  | On c -> On { c with aggs = agg :: c.aggs }

let with_clock t clock =
  match t with Off -> Off | On c -> On { c with clock }

let enabled = function Off -> false | On _ -> true

let null_span = { s_name = ""; s_t0 = 0. }

let span_begin t name =
  match t with
  | Off -> null_span
  | On c -> { s_name = name; s_t0 = c.clock () }

let trace_event c fields = List.iter (fun tr -> Trace.emit tr (Json.Obj fields)) c.traces

let span_end ?metrics t sp =
  match t with
  | Off -> ()
  | On c ->
      if sp.s_name <> "" then begin
        let now = c.clock () in
        let dur = now -. sp.s_t0 in
        List.iter (fun a -> Agg.record_span a sp.s_name ~dur) c.aggs;
        if c.traces <> [] then begin
          let extra =
            match metrics with
            | None -> []
            | Some ms -> List.map (fun (k, v) -> (k, Json.Num v)) ms
          in
          trace_event c
            ([
               ("ev", Json.Str "span");
               ("name", Json.Str sp.s_name);
               ("t", Json.Num now);
               ("dur", Json.Num dur);
             ]
            @ extra)
        end
      end

let span t name f =
  match t with
  | Off -> f ()
  | On _ ->
      let sp = span_begin t name in
      let r =
        try f ()
        with e ->
          span_end t sp;
          raise e
      in
      span_end t sp;
      r

let record_span ?metrics t name ~dur =
  match t with
  | Off -> ()
  | On c ->
      List.iter (fun a -> Agg.record_span a name ~dur) c.aggs;
      if c.traces <> [] then begin
        let extra =
          match metrics with
          | None -> []
          | Some ms -> List.map (fun (k, v) -> (k, Json.Num v)) ms
        in
        trace_event c
          ([
             ("ev", Json.Str "span");
             ("name", Json.Str name);
             ("t", Json.Num (c.clock ()));
             ("dur", Json.Num dur);
           ]
          @ extra)
      end

let add t name v =
  match t with
  | Off -> ()
  | On c ->
      List.iter (fun a -> Agg.record_counter a name v) c.aggs;
      if c.traces <> [] then
        trace_event c
          [
            ("ev", Json.Str "count");
            ("name", Json.Str name);
            ("t", Json.Num (c.clock ()));
            ("v", Json.Num v);
          ]

let count t name n = if n <> 0 then add t name (float_of_int n)

let gauge t name v =
  match t with
  | Off -> ()
  | On c ->
      List.iter (fun a -> Agg.record_gauge a name v) c.aggs;
      if c.traces <> [] then
        trace_event c
          [
            ("ev", Json.Str "gauge");
            ("name", Json.Str name);
            ("t", Json.Num (c.clock ()));
            ("v", Json.Num v);
          ]
