(** Multicore parallel execution engine.

    A fixed-size pool of OCaml 5 {!Domain}s behind a deterministic
    fork-join interface.  The hot fan-out loops of the library —
    uncertain θ-grid sweeps, Monte-Carlo reachability sampling, SSA
    replication batches and template-direction solves — are
    embarrassingly parallel selections over the differential inclusion
    ẋ ∈ ∪_θ {f(x, θ)}; each of them takes an optional [?pool] and
    falls back to its original sequential path when none is given.

    Two invariants make parallel runs reproducible:

    - results are written by task index, never in completion order, so
      a [parallel_map] is extensionally equal to [Array.map];
    - stochastic workloads never share an RNG stream across tasks:
      each task derives its own generator from a splitmix64 mix of a
      root seed and the task index ({!Seeds}), so output is
      bit-identical regardless of scheduling, chunking or the number
      of domains. *)

(** Per-pool execution counters (see {!Pool.stats}). *)
type stats = {
  domains : int;  (** Worker domains in the pool. *)
  sections : int;  (** Parallel sections (fork-join regions) run. *)
  tasks : int;  (** Individual tasks executed across all sections. *)
  wall : float;  (** Total wall-clock seconds spent inside sections. *)
}

val pp_stats : Format.formatter -> stats -> unit

val stats_to_string : stats -> string

module Pool : sig
  type t
  (** A fixed set of worker domains fed from a shared task queue.
      Create once, reuse across many parallel sections, [shutdown]
      when done (or use {!with_pool}). *)

  val create : ?obs:Umf_obs.Obs.t -> ?domains:int -> unit -> t
  (** [create ~domains ()] spawns [domains] workers (default
      [Domain.recommended_domain_count () - 1], at least 1).  [obs]
      (default {!Umf_obs.Obs.off}) additionally receives every
      section as a ["pool.<stage>"] span (with a [tasks] metric) and a
      ["pool.<stage>.tasks"] counter.
      @raise Invalid_argument if [domains < 1]. *)

  val set_obs : t -> Umf_obs.Obs.t -> unit
  (** Replace the observation context sections report to.  The pool's
      own metrics registry keeps accumulating regardless. *)

  val size : t -> int
  (** Number of worker domains. *)

  val shutdown : t -> unit
  (** Terminate and join the workers.  Idempotent.  Subsequent
      parallel sections raise [Invalid_argument]. *)

  val with_pool : ?domains:int -> (t -> 'a) -> 'a
  (** [with_pool f] runs [f] on a fresh pool and shuts it down
      afterwards, even on exceptions. *)

  val parallel_map :
    ?stage:string -> ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
  (** [parallel_map pool f xs] is extensionally [Array.map f xs]: the
      result slot [i] always holds [f xs.(i)].  Work is dealt to the
      workers in contiguous chunks of [chunk] items (default: tuned to
      four chunks per domain).  If any task raises, the first
      exception (by completion order) is re-raised in the caller with
      its backtrace, after all tasks have drained.  [stage] labels the
      section in {!stage_stats}.
      @raise Invalid_argument when called from inside a pool task
      (nested sections would deadlock a fixed-size pool) or after
      [shutdown]. *)

  val parallel_for : ?stage:string -> ?chunk:int -> t -> int -> (int -> unit) -> unit
  (** [parallel_for pool n f] runs [f i] for [0 <= i < n], chunked
      like {!parallel_map}.  The body must only write to disjoint,
      index-owned locations for the result to be deterministic. *)

  val map_list : ?stage:string -> ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
  (** {!parallel_map} over a list, preserving order. *)

  val map_results :
    ?stage:string ->
    ?chunk:int ->
    t ->
    ('a -> 'b) ->
    'a array ->
    ('b, exn) result array
  (** {!parallel_map} with per-task exception isolation: slot [i] holds
      [Ok (f xs.(i))], or [Error e] when that task raised [e].  The
      section itself never re-raises a task exception, which is the
      contract a long-running service needs when it reuses one pool
      across request batches — one poisoned request becomes one error
      slot, and the other requests of the batch still complete.
      (Structural misuse — nested sections, a shut-down pool — still
      raises in the caller.) *)

  val stats : t -> stats
  (** Counters accumulated since [create]. *)

  val stage_stats : t -> (string * stats) list
  (** Per-[?stage] breakdown of {!stats}, sorted by label; unlabelled
      sections are accumulated under ["_"]. *)

  val metrics : t -> Umf_obs.Obs.Agg.t
  (** The pool's internal metrics registry: a ["pool.<stage>"] span row
      and a ["pool.<stage>.tasks"] counter per stage (plus the ["pool"]
      totals that back {!stats}).  Read-only use is expected. *)
end

(** Deterministic RNG stream splitting.

    Sequential code that owns a single {!Umf_numerics.Rng.t} consumes
    it in program order, which a parallel schedule cannot reproduce.
    Parallel (and replication-batch) entry points instead give task
    [i] the generator [rng ~root i]: a fresh xoshiro256++ state seeded
    from a splitmix64 mix of the root seed and the task index.  The
    mapping depends only on [(root, i)], never on scheduling, chunk
    size or domain count — hence bit-identical output for any number
    of jobs, including one. *)
module Seeds : sig
  val mix : int -> int -> int
  (** [mix root i] hashes the pair through two splitmix64 rounds.
      Well-mixed for adjacent roots and indices. *)

  val rng : root:int -> int -> Umf_numerics.Rng.t
  (** [rng ~root i] is [Rng.create (mix root i)]. *)
end
