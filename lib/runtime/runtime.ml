module Rng = Umf_numerics.Rng
module Obs = Umf_obs.Obs

type stats = { domains : int; sections : int; tasks : int; wall : float }

let pp_stats ppf s =
  Format.fprintf ppf "@[%d domain%s, %d section%s, %d task%s, %.3fs wall@]"
    s.domains
    (if s.domains = 1 then "" else "s")
    s.sections
    (if s.sections = 1 then "" else "s")
    s.tasks
    (if s.tasks = 1 then "" else "s")
    s.wall

let stats_to_string s = Format.asprintf "%a" pp_stats s

(* set to true inside every worker domain: parallel sections started
   from a task would wait on workers that are all busy waiting — a
   fixed-size pool must reject them instead of deadlocking *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

module Pool = struct
  (* section bookkeeping lives in an Obs.Agg metrics registry instead
     of private counters: every section is a "pool.<stage>" span plus a
     "pool.<stage>.tasks" counter (and a "pool"-rooted total), so the
     same numbers feed [stats]/[stage_stats] and any user observation
     context attached with [set_obs]. *)
  type t = {
    mutable workers : unit Domain.t array;
    queue : (unit -> unit) Queue.t;
    lock : Mutex.t;
    work_available : Condition.t;
    mutable stop : bool;
    mutable shut : bool;
    reg : Obs.Agg.t;
    mutable obs : Obs.t;
  }

  let worker_loop t () =
    Domain.DLS.set in_worker true;
    let rec loop () =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.stop do
        Condition.wait t.work_available t.lock
      done;
      (* drain any queued work even when stopping *)
      match Queue.take_opt t.queue with
      | None ->
          Mutex.unlock t.lock
      | Some job ->
          Mutex.unlock t.lock;
          job ();
          loop ()
    in
    loop ()

  let create ?(obs = Obs.off) ?domains () =
    let domains =
      match domains with
      | Some d ->
          if d < 1 then invalid_arg "Runtime.Pool.create: need domains >= 1";
          d
      | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)
    in
    let t =
      {
        workers = [||];
        queue = Queue.create ();
        lock = Mutex.create ();
        work_available = Condition.create ();
        stop = false;
        shut = false;
        reg = Obs.Agg.create ();
        obs;
      }
    in
    t.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop t));
    t

  let set_obs t obs = t.obs <- obs

  let size t = Array.length t.workers

  let shutdown t =
    let join =
      Mutex.lock t.lock;
      if t.shut then begin
        Mutex.unlock t.lock;
        false
      end
      else begin
        t.shut <- true;
        t.stop <- true;
        Condition.broadcast t.work_available;
        Mutex.unlock t.lock;
        true
      end
    in
    if join then Array.iter Domain.join t.workers

  let with_pool ?domains f =
    let t = create ?domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let record ?stage t ~n_tasks ~dt =
    let label = match stage with Some s -> s | None -> "_" in
    let name = "pool." ^ label in
    let tasks = float_of_int n_tasks in
    (* internal registry (Agg is mutex-protected itself) *)
    Obs.Agg.record_span t.reg "pool" ~dur:dt;
    Obs.Agg.record_counter t.reg "pool.tasks" tasks;
    Obs.Agg.record_span t.reg name ~dur:dt;
    Obs.Agg.record_counter t.reg (name ^ ".tasks") tasks;
    (* user observation context, if any *)
    if Obs.enabled t.obs then begin
      Obs.record_span ~metrics:[ ("tasks", tasks) ] t.obs name ~dur:dt;
      Obs.add t.obs (name ^ ".tasks") tasks
    end

  (* fork-join over [n] items, dealt out as [n_chunks] contiguous
     chunk tasks; [body ~lo ~hi] must only touch state owned by items
     in [lo, hi).  The first exception (in completion order) is
     re-raised in the caller once every task has drained, so no task
     of a failed section is ever still running afterwards. *)
  let section ?stage ?chunk t ~n body =
    if n > 0 then begin
      if Domain.DLS.get in_worker then
        invalid_arg "Runtime.Pool: nested parallel section";
      Mutex.lock t.lock;
      let rejected = t.shut in
      Mutex.unlock t.lock;
      if rejected then invalid_arg "Runtime.Pool: pool is shut down";
      let t0 = Unix.gettimeofday () in
      let chunk =
        match chunk with
        | Some c ->
            if c < 1 then invalid_arg "Runtime.Pool: need chunk >= 1";
            c
        | None ->
            (* about four chunks per worker: fine enough to balance
               uneven task costs, coarse enough to keep queue traffic
               negligible *)
            Stdlib.max 1 ((n + (4 * size t) - 1) / (4 * size t))
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let remaining = Atomic.make n_chunks in
      let failed = Atomic.make None in
      let done_lock = Mutex.create () in
      let all_done = Condition.create () in
      let job ci () =
        (try
           let lo = ci * chunk in
           let hi = Stdlib.min n (lo + chunk) in
           body ~lo ~hi
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failed None (Some (e, bt))));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_lock;
          Condition.signal all_done;
          Mutex.unlock done_lock
        end
      in
      Mutex.lock t.lock;
      for ci = 0 to n_chunks - 1 do
        Queue.add (job ci) t.queue
      done;
      Condition.broadcast t.work_available;
      Mutex.unlock t.lock;
      Mutex.lock done_lock;
      while Atomic.get remaining > 0 do
        Condition.wait all_done done_lock
      done;
      Mutex.unlock done_lock;
      record ?stage t ~n_tasks:n ~dt:(Unix.gettimeofday () -. t0);
      match Atomic.get failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

  let parallel_for ?stage ?chunk t n f =
    section ?stage ?chunk t ~n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          f i
        done)

  let parallel_map ?stage ?chunk t f xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let out = Array.make n None in
      section ?stage ?chunk t ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            out.(i) <- Some (f xs.(i))
          done);
      Array.map
        (function Some v -> v | None -> assert false (* section filled all *))
        out
    end

  let map_list ?stage ?chunk t f xs =
    Array.to_list (parallel_map ?stage ?chunk t f (Array.of_list xs))

  (* serving workloads reuse one pool across many request batches, and
     there a single poisoned task must yield an error *response*, not
     abort its whole batch the way [parallel_map]'s first-exception
     re-raise does — so failures are reified per slot instead *)
  let map_results ?stage ?chunk t f xs =
    parallel_map ?stage ?chunk t
      (fun x -> try Ok (f x) with e -> Error e)
      xs

  let stats_of_row t name (s : Obs.Agg.span_stat) =
    {
      domains = size t;
      sections = s.calls;
      tasks = int_of_float (Obs.Agg.counter t.reg (name ^ ".tasks"));
      wall = s.total;
    }

  let stats t =
    match Obs.Agg.span_stat t.reg "pool" with
    | Some s -> stats_of_row t "pool" s
    | None -> { domains = size t; sections = 0; tasks = 0; wall = 0. }

  let stage_stats t =
    List.filter_map
      (fun (name, s) ->
        match String.length name > 5 && String.sub name 0 5 = "pool." with
        | true when not (String.ends_with ~suffix:".tasks" name) ->
            Some
              (String.sub name 5 (String.length name - 5), stats_of_row t name s)
        | _ -> None)
      (Obs.Agg.span_stats t.reg)

  let metrics t = t.reg
end

module Seeds = struct
  let golden = 0x9E3779B97F4A7C15L

  let splitmix_round z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let mix root i =
    let z = Int64.add (Int64.of_int root) (Int64.mul (Int64.of_int (i + 1)) golden) in
    let z = splitmix_round z in
    let z = splitmix_round (Int64.add z golden) in
    Int64.to_int z

  let rng ~root i = Rng.create (mix root i)
end
