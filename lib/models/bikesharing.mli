(** The single-station bike sharing example of Secs. II–III.

    A station with N racks; X_B ∈ [0, 1] is the fraction of occupied
    racks.  Customers take a bike at imprecise rate θ_a (if one is
    available); bikes are returned at imprecise rate θ_r (if a rack is
    free).  Both the finite-state imprecise CTMC (for exact imprecise
    Kolmogorov bounds) and the population model (for the mean-field
    limit, whose drift is the discontinuous
    f = θ_r·1\{x<1\} − θ_a·1\{x>0\}) are provided. *)

open Umf_numerics
open Umf_meanfield

type params = {
  arrival : Interval.t;  (** θ_a range *)
  return_ : Interval.t;  (** θ_r range *)
}

val default_params : params
(** θ_a ∈ [0.8, 1.4], θ_r ∈ [0.9, 1.2]: a station that can drift
    towards either emptying or filling depending on the environment. *)

val make : params -> Model.t
(** The symbolic model with the single density variable X_B: the
    emptiness/fullness indicator guards become [Ite] thresholds, so
    the drift is affine in θ but only piecewise-smooth. *)

val model : params -> Population.t

val di : params -> Umf_diffinc.Di.t

val theta_box : params -> Optim.Box.t

val x0 : Vec.t
(** A half-full station. *)

val ictmc : params -> capacity:int -> Umf_ctmc.Imprecise_ctmc.t
(** Finite imprecise CTMC on \{0, …, capacity\} bikes. *)

val occupancy_reward : capacity:int -> Vec.t
(** h(k) = k / capacity: the normalised occupancy, as a reward vector
    for {!Umf_ctmc.Imprecise_ctmc.lower_expectation}. *)

val empty_indicator : capacity:int -> Vec.t
(** h(k) = 1\{k = 0\}: probability the station is empty. *)
