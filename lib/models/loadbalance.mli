(** Power-of-d-choices load balancing with imprecise arrival rates.

    N unit-rate servers; jobs arrive at total rate Nλ with λ imprecise
    in an interval (traffic forecasts are never exact), and each job is
    routed to the shortest of d uniformly sampled queues (d = 1 is
    random routing).  The mean-field state is the tail occupancy vector
    x_k = fraction of servers with at least k jobs, k = 1..K (truncated
    at [k_max]), with the classical drift

    ẋ_k = λ (x_{k-1}^d − x_k^d) − (x_k − x_{k+1}),   x_0 = 1, x_{K+1} = 0.

    Closed-form fixed points for constant λ = ρ < 1 give strong test
    oracles: x_k = ρ^k for d = 1 and x_k = ρ^{(d^k − 1)/(d − 1)} for
    d ≥ 2 (doubly exponential tails — the power of two choices).

    This model exercises the solvers in higher dimension (K ≥ 8) and
    supports robust capacity-planning experiments: which routing policy
    keeps the worst-case backlog lower when λ varies adversarially? *)

open Umf_numerics
open Umf_meanfield

type params = {
  d : int;  (** choices per arrival, >= 1 *)
  k_max : int;  (** queue-length truncation, >= 1 *)
  lambda : Interval.t;  (** imprecise arrival rate per server *)
}

val default_params : params
(** d = 2, k_max = 8, λ ∈ [0.5, 0.9]. *)

val make : params -> Model.t
(** The symbolic model, variables x_1 … x_{k_max}: affine in θ, with
    clamps and tail differences written as [Min]/[Max] kinks and the
    power-of-d choice as [Pow _ d] (not multilinear for d ≥ 2). *)

val model : params -> Population.t

val di : params -> Umf_diffinc.Di.t

val x0_empty : params -> Vec.t
(** Empty system (all zeros). *)

val fixed_point : params -> lambda:float -> Vec.t
(** The closed-form equilibrium tail for a constant λ < 1. *)

val mean_queue : Vec.t -> float
(** Mean queue length Σ_k x_k of a tail vector. *)

val tail_monotone : Vec.t -> bool
(** The invariant 1 >= x_1 >= x_2 >= … >= 0. *)
