open Umf_numerics
open Umf_meanfield

type params = {
  mu1 : float;
  mu2 : float;
  phi1 : float;
  phi2 : float;
  gamma1 : float;
  gamma2 : float;
  capacity : float;
  a1 : float;
  a2 : float;
  lambda1 : Interval.t;
  lambda2 : Interval.t;
}

let default_params =
  {
    mu1 = 5.;
    mu2 = 1.;
    phi1 = 1.;
    phi2 = 1.;
    gamma1 = 0.5;
    gamma2 = 0.5;
    (* The paper does not report C, N1, N2.  With gamma = 1/2, c = 0.5
       puts the network near critical load, reproducing the qualitative
       queue dynamics of Fig. 7; c = 1 would leave the machine
       underloaded and every queue near zero. *)
    capacity = 0.5;
    a1 = 1.;
    a2 = 2.;
    lambda1 = Interval.make 1. 7.;
    lambda2 = Interval.make 2. 3.;
  }

let with_phi1 p phi1 = { p with phi1 }

let equivalent_poisson_rate ~a ~lambda = 1. /. ((1. /. a) +. (1. /. lambda))

let poisson_theta p =
  Optim.Box.of_intervals
    [
      Interval.monotone
        (fun l -> equivalent_poisson_rate ~a:p.a1 ~lambda:l)
        p.lambda1;
      Interval.monotone
        (fun l -> equivalent_poisson_rate ~a:p.a2 ~lambda:l)
        p.lambda2;
    ]

let map_theta p = Optim.Box.of_intervals [ p.lambda1; p.lambda2 ]

let x0_poisson = [| 0.1; 0.1 |]

let x0_map = [| 0.1; 0.9; 0.1; 0.9 |]

(* GPS service rate of class i on the density scale; the weighted
   backlog vanishing means an empty system, hence no service.  Queue
   densities are clamped into [0, 1] so that states driven marginally
   outside the simplex by numerical integration cannot make the GPS
   ratio (whose derivative blows up at the origin) misbehave.  The
   denominator is floored at the guard threshold so that the quotient
   is well-defined (and interval-certifiable) on the whole box — below
   the threshold the Ite selects 0, so the floor never changes the
   value. *)
let service p ~q1 ~q2 i =
  let open Expr in
  let clamp q = min_ (const 1.) (max_ (const 0.) q) in
  let q1 = clamp q1 and q2 = clamp q2 in
  let backlog =
    (const (p.phi1 *. p.gamma1) *: q1) +: (const (p.phi2 *. p.gamma2) *: q2)
  in
  let num =
    match i with
    | 1 -> const (p.mu1 *. p.capacity *. p.phi1 *. p.gamma1) *: q1
    | 2 -> const (p.mu2 *. p.capacity *. p.phi2 *. p.gamma2) *: q2
    | _ -> invalid_arg "Gps.service: class must be 1 or 2"
  in
  Ite
    ( backlog -: const 1e-12,
      const 0.,
      num /: max_ backlog (const 1e-12) )

(* Poisson layout: x = (q1, q2); count step of class i is 1/gamma_i *)
let make_poisson p =
  let open Expr in
  let tr name change rate = { Model.name; change; rate } in
  let arrival i =
    let gamma = if i = 1 then p.gamma1 else p.gamma2 in
    theta (i - 1) *: const gamma
    *: max_ (const 0.) (const 1. -: var (i - 1))
  in
  (* service already carries the gamma_i factor of the density rate *)
  let serve i = service p ~q1:(var 0) ~q2:(var 1) i in
  Model.make ~name:"gps-poisson" ~var_names:[| "Q1"; "Q2" |]
    ~theta_names:[| "lambda'1"; "lambda'2" |] ~theta:(poisson_theta p)
    ~x0:x0_poisson
    [
      tr "arrival-1" [| 1. /. p.gamma1; 0. |] (arrival 1);
      tr "service-1" [| -1. /. p.gamma1; 0. |] (serve 1);
      tr "arrival-2" [| 0.; 1. /. p.gamma2 |] (arrival 2);
      tr "service-2" [| 0.; -1. /. p.gamma2 |] (serve 2);
    ]

(* MAP layout: x = (q1, d1, q2, d2); e_i = 1 - q_i - d_i *)
let make_map p =
  let open Expr in
  let tr name change rate = { Model.name; change; rate } in
  let q i = var ((2 * (i - 1)) + 0) in
  let d i = var ((2 * (i - 1)) + 1) in
  let e i = max_ (const 0.) (const 1. -: q i -: d i) in
  let activation i gamma ai = const (ai *. gamma) *: e i in
  let arrival i gamma = theta (i - 1) *: const gamma *: max_ (const 0.) (d i) in
  let serve i = service p ~q1:(q 1) ~q2:(q 2) i in
  let step i gamma ~dq ~dd =
    let v = Vec.zeros 4 in
    v.((2 * (i - 1)) + 0) <- dq /. gamma;
    v.((2 * (i - 1)) + 1) <- dd /. gamma;
    v
  in
  Model.make ~name:"gps-map"
    ~var_names:[| "Q1"; "D1"; "Q2"; "D2" |]
    ~theta_names:[| "lambda1"; "lambda2" |] ~theta:(map_theta p) ~x0:x0_map
    [
      tr "activate-1" (step 1 p.gamma1 ~dq:0. ~dd:1.) (activation 1 p.gamma1 p.a1);
      tr "arrival-1" (step 1 p.gamma1 ~dq:1. ~dd:(-1.)) (arrival 1 p.gamma1);
      tr "service-1" (step 1 p.gamma1 ~dq:(-1.) ~dd:0.) (serve 1);
      tr "activate-2" (step 2 p.gamma2 ~dq:0. ~dd:1.) (activation 2 p.gamma2 p.a2);
      tr "arrival-2" (step 2 p.gamma2 ~dq:1. ~dd:(-1.)) (arrival 2 p.gamma2);
      tr "service-2" (step 2 p.gamma2 ~dq:(-1.) ~dd:0.) (serve 2);
    ]

let poisson_model p = Model.population (make_poisson p)

let map_model p = Model.population (make_map p)

let poisson_di p = Umf_diffinc.Di.of_model (make_poisson p)

let map_di p = Umf_diffinc.Di.of_model (make_map p)

let total_queue layout x =
  match layout with
  | `Poisson -> x.(0) +. x.(1)
  | `Map -> x.(0) +. x.(2)
