open Umf_numerics
open Umf_meanfield

type params = {
  a : float;
  b : float;
  c : float;
  theta_min : float;
  theta_max : float;
}

let default_params = { a = 0.1; b = 5.; c = 1.; theta_min = 1.; theta_max = 10. }

let x0 = [| 0.7; 0.3 |]

let theta_box p = Optim.Box.make [| p.theta_min |] [| p.theta_max |]

let infection_rate p x theta =
  let xs = x.(0) and xi = x.(1) in
  (p.a *. xs) +. (theta.(0) *. xs *. xi)

let model p =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"sir" ~var_names:[| "S"; "I" |] ~theta_names:[| "theta" |]
    ~theta:(theta_box p)
    [
      tr "infection" [| -1.; 1. |] (infection_rate p);
      tr "recovery" [| 0.; -1. |] (fun x _ -> p.b *. x.(1));
      tr "immunity-loss" [| 1.; 0. |]
        (fun x _ -> p.c *. Float.max 0. (1. -. x.(0) -. x.(1)));
    ]

let model3 p =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"sir3" ~var_names:[| "S"; "I"; "R" |]
    ~theta_names:[| "theta" |] ~theta:(theta_box p)
    [
      tr "infection" [| -1.; 1.; 0. |] (infection_rate p);
      tr "recovery" [| 0.; -1.; 1. |] (fun x _ -> p.b *. x.(1));
      tr "immunity-loss" [| 1.; 0.; -1. |] (fun x _ -> p.c *. x.(2));
    ]

(* symbolic twins of [model]/[model3]: same rates as Expr trees, so the
   static analyzer and the certified solvers can inspect them *)
let symbolic p =
  let open Expr in
  let s = var 0 and i = var 1 in
  let tr name change rate = { Symbolic.name; change; rate } in
  Symbolic.make ~name:"sir" ~var_names:[| "S"; "I" |]
    ~theta_names:[| "theta" |] ~theta:(theta_box p)
    [
      tr "infection" [| -1.; 1. |] ((const p.a *: s) +: (theta 0 *: s *: i));
      tr "recovery" [| 0.; -1. |] (const p.b *: i);
      tr "immunity-loss" [| 1.; 0. |]
        (const p.c *: max_ (const 0.) (const 1. -: s -: i));
    ]

let symbolic3 p =
  let open Expr in
  let s = var 0 and i = var 1 and r = var 2 in
  let tr name change rate = { Symbolic.name; change; rate } in
  Symbolic.make ~name:"sir3" ~var_names:[| "S"; "I"; "R" |]
    ~theta_names:[| "theta" |] ~theta:(theta_box p)
    [
      tr "infection" [| -1.; 1.; 0. |] ((const p.a *: s) +: (theta 0 *: s *: i));
      tr "recovery" [| 0.; -1.; 1. |] (const p.b *: i);
      tr "immunity-loss" [| 1.; 0.; -1. |] (const p.c *: r);
    ]

(* Eq. (11) of the paper *)
let drift p x theta =
  let xs = x.(0) and xi = x.(1) and th = theta.(0) in
  [|
    p.c -. ((p.a +. p.c) *. xs) -. (p.c *. xi) -. (th *. xs *. xi);
    (p.a *. xs) +. (th *. xs *. xi) -. (p.b *. xi);
  |]

let jacobian p x theta =
  let xs = x.(0) and xi = x.(1) and th = theta.(0) in
  Mat.of_arrays
    [|
      [| -.(p.a +. p.c) -. (th *. xi); -.p.c -. (th *. xs) |];
      [| p.a +. (th *. xi); (th *. xs) -. p.b |];
    |]

let di p =
  Umf_diffinc.Di.make ~jacobian:(jacobian p) ~dim:2 ~theta:(theta_box p)
    (drift p)

let policy_theta1 p =
  Policy.hysteresis ~name:"theta1-hysteresis" ~high:[| p.theta_max |]
    ~low:[| p.theta_min |]
    ~drop_if:(fun x -> x.(0) < 0.5)
    ~rise_if:(fun x -> x.(0) > 0.85)
    ~init:`High

let policy_theta2 ?(redraw_rate = 5.) p =
  Policy.jump_redraw ~name:"theta2-redraw"
    ~rate:(fun _t x -> redraw_rate *. x.(1))
    ~redraw:Policy.uniform_redraw ~box:(theta_box p)
    ~init:[| 0.5 *. (p.theta_min +. p.theta_max) |]
