open Umf_numerics
open Umf_meanfield

type params = {
  a : float;
  b : float;
  c : float;
  theta_min : float;
  theta_max : float;
}

let default_params = { a = 0.1; b = 5.; c = 1.; theta_min = 1.; theta_max = 10. }

let x0 = [| 0.7; 0.3 |]

let x0_3 = [| 0.7; 0.3; 0. |]

let theta_box p = Optim.Box.make [| p.theta_min |] [| p.theta_max |]

let policy_theta1 p =
  Policy.hysteresis ~name:"theta1-hysteresis" ~high:[| p.theta_max |]
    ~low:[| p.theta_min |]
    ~drop_if:(fun x -> x.(0) < 0.5)
    ~rise_if:(fun x -> x.(0) > 0.85)
    ~init:`High

let policy_theta2 ?(redraw_rate = 5.) p =
  Policy.jump_redraw ~name:"theta2-redraw"
    ~rate:(fun _t x -> redraw_rate *. x.(1))
    ~redraw:Policy.uniform_redraw ~box:(theta_box p)
    ~init:[| 0.5 *. (p.theta_min +. p.theta_max) |]

(* the single source of truth: symbolic rates, everything else derived *)
let make p =
  let open Expr in
  let s = var 0 and i = var 1 in
  let tr name change rate = { Model.name; change; rate } in
  Model.make ~name:"sir" ~var_names:[| "S"; "I" |] ~theta_names:[| "theta" |]
    ~theta:(theta_box p) ~x0
    ~policies:[ ("theta1", policy_theta1 p); ("theta2", policy_theta2 p) ]
    [
      tr "infection" [| -1.; 1. |] ((const p.a *: s) +: (theta 0 *: s *: i));
      tr "recovery" [| 0.; -1. |] (const p.b *: i);
      tr "immunity-loss" [| 1.; 0. |]
        (const p.c *: max_ (const 0.) (const 1. -: s -: i));
    ]

let make3 p =
  let open Expr in
  let s = var 0 and i = var 1 and r = var 2 in
  let tr name change rate = { Model.name; change; rate } in
  Model.make ~name:"sir3" ~var_names:[| "S"; "I"; "R" |]
    ~theta_names:[| "theta" |] ~theta:(theta_box p) ~x0:x0_3
    [
      tr "infection" [| -1.; 1.; 0. |] ((const p.a *: s) +: (theta 0 *: s *: i));
      tr "recovery" [| 0.; -1.; 1. |] (const p.b *: i);
      tr "immunity-loss" [| 1.; 0.; -1. |] (const p.c *: r);
    ]

let model p = Model.population (make p)

let model3 p = Model.population (make3 p)

let di p = Umf_diffinc.Di.of_model (make p)
