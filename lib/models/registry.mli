(** The catalogue of bundled models, each at its default parameters.

    This is the single source of truth consumed by the CLI, the
    benchmark harness and the test suite — adding a model here makes it
    reachable from [umf_cli --model], [umf_cli models], [umf_cli lint
    --all] and the model-consistency gate at once. *)

open Umf_meanfield

val names : string list
(** Registered names, in catalogue order. *)

val find : string -> (Model.t, [ `Msg of string ]) result
(** Look a model up by name.  On an unknown name the error message
    lists the catalogue and suggests the nearest registered name (by
    edit distance). *)

val find_exn : string -> Model.t
(** Like {!find}, raising [Invalid_argument] with the same message. *)

val all : unit -> (string * Model.t) list
(** Every registered model, built on demand. *)

val suggest : string -> string option
(** The registered name closest to the argument, if any is remotely
    close (edit distance at most half the target's length, minimum 2).
    Exposed for the CLI's error messages. *)
