(** The generalised processor sharing (GPS) closed network of Sec. VI.

    N applications of two types (fractions γ1, γ2) send jobs to a
    single machine of capacity C = cN that serves the two job classes
    with GPS weights φ1, φ2.  Job sizes of class i are exponential of
    mean 1/μ_i.  The creation rate λ_i is imprecise in
    [λ_i^min, λ_i^max].

    Two arrival scenarios (Sec. VI-A):
    - {e Poisson}: an application waits Exp(λ'_i) then sends a job;
    - {e MAP}: it first idles Exp(a_i), then activates and sends after
      Exp(λ_i).

    [equivalent_poisson_rate] gives the λ'_i for which both scenarios
    have the same mean time between jobs (1/λ' = 1/a + 1/λ).

    State variables are per-class densities: Poisson (q1, q2) with
    d_i = 1 − q_i; MAP (q1, d1, q2, d2) with e_i = 1 − q_i − d_i. *)

open Umf_numerics
open Umf_meanfield

type params = {
  mu1 : float;
  mu2 : float;
  phi1 : float;
  phi2 : float;
  gamma1 : float;  (** fraction of type-1 applications, N1/N *)
  gamma2 : float;
  capacity : float;  (** service capacity density c (C = cN) *)
  a1 : float;  (** MAP activation rates *)
  a2 : float;
  lambda1 : Interval.t;  (** imprecise creation-rate ranges *)
  lambda2 : Interval.t;
}

val default_params : params
(** The paper's values: μ = (5, 1), φ = (1, 1), λ1 ∈ [1, 7],
    λ2 ∈ [2, 3], a = (1, 2).  The paper does not report C, N1 or N2; we
    take γ1 = γ2 = 1/2 and capacity density c = 0.5, which puts the
    network near critical load and reproduces the qualitative queue
    dynamics of Figure 7. *)

val with_phi1 : params -> float -> params
(** Same parameters with the weight φ1 replaced — for the robust
    tuning study of Sec. VI-C. *)

val equivalent_poisson_rate : a:float -> lambda:float -> float
(** λ' such that 1/λ' = 1/a + 1/λ. *)

val make_poisson : params -> Model.t
(** Poisson-arrival model.  θ = (λ'1, λ'2), the box being the image of
    the λ-ranges under {!equivalent_poisson_rate}.  Affine in θ (the
    GPS service ratio carries no θ), but the ratio itself has a [Div]
    and an [Ite] guard, so the drift is neither multilinear nor
    smooth. *)

val make_map : params -> Model.t
(** MAP-arrival model.  θ = (λ1, λ2). *)

val poisson_model : params -> Population.t

val map_model : params -> Population.t

val poisson_di : params -> Umf_diffinc.Di.t

val map_di : params -> Umf_diffinc.Di.t

val x0_poisson : Vec.t
(** (q1, q2) = (0.1, 0.1), the paper's initial state. *)

val x0_map : Vec.t
(** (q1, d1, q2, d2) = (0.1, 0.9, 0.1, 0.9): queues at 0.1, the rest
    of the applications active (e_i = 0). *)

val total_queue : [ `Poisson | `Map ] -> Vec.t -> float
(** Q1 + Q2 for either state layout. *)
