open Umf_numerics
open Umf_meanfield

type params = { d : int; k_max : int; lambda : Interval.t }

let default_params = { d = 2; k_max = 8; lambda = Interval.make 0.5 0.9 }

let ipow x n =
  let rec go acc n = if n = 0 then acc else go (acc *. x) (n - 1) in
  go 1. n

let x0_empty p = Vec.zeros p.k_max

let make p =
  if p.d < 1 then invalid_arg "Loadbalance: need d >= 1";
  if p.k_max < 1 then invalid_arg "Loadbalance: need k_max >= 1";
  let open Expr in
  let kk = p.k_max in
  let x_at k =
    if k = 0 then const 1.
    else if k > kk then const 0.
    else min_ (const 1.) (max_ (const 0.) (var (k - 1)))
  in
  let unit k =
    let v = Vec.zeros kk in
    v.(k - 1) <- 1.;
    v
  in
  let arrival k =
    (* a job lands on a server with exactly k-1 jobs *)
    theta 0 *: max_ (const 0.) (pow (x_at (k - 1)) p.d -: pow (x_at k) p.d)
  in
  let departure k = max_ (const 0.) (x_at k -: x_at (k + 1)) in
  let transitions =
    List.concat_map
      (fun k ->
        [
          {
            Model.name = Printf.sprintf "arrive-%d" k;
            change = unit k;
            rate = arrival k;
          };
          {
            Model.name = Printf.sprintf "depart-%d" k;
            change = Vec.scale (-1.) (unit k);
            rate = departure k;
          };
        ])
      (List.init kk (fun i -> i + 1))
  in
  Model.make
    ~name:(Printf.sprintf "jsq-%d" p.d)
    ~var_names:(Array.init kk (fun i -> Printf.sprintf "x%d" (i + 1)))
    ~theta_names:[| "lambda" |]
    ~theta:(Optim.Box.of_intervals [ p.lambda ])
    ~x0:(x0_empty p) transitions

let model p = Model.population (make p)

let di p = Umf_diffinc.Di.of_model (make p)

let fixed_point p ~lambda =
  if lambda >= 1. then invalid_arg "Loadbalance.fixed_point: need lambda < 1";
  Array.init p.k_max (fun i ->
      let k = i + 1 in
      if p.d = 1 then ipow lambda k
      else begin
        (* exponent (d^k - 1) / (d - 1) *)
        let e = (ipow (float_of_int p.d) k -. 1.) /. float_of_int (p.d - 1) in
        lambda ** e
      end)

let mean_queue x = Vec.sum x

let tail_monotone x =
  let ok = ref (x.(0) <= 1. +. 1e-9) in
  for i = 1 to Vec.dim x - 1 do
    if x.(i) > x.(i - 1) +. 1e-9 then ok := false
  done;
  !ok && Vec.min_elt x >= -1e-9
