(** A susceptible–infected–susceptible (SIS) malware model.

    The network-epidemic motivation from the paper's introduction
    ([2]): nodes are either clean or infected; infection spreads by
    contact at imprecise rate β, arrives externally at rate [a], and
    machines are patched (recover) at rate [delta].  One density
    variable X_I.  The mean-field limit has closed-form equilibria,
    which makes the model a good analytic test case. *)

open Umf_numerics
open Umf_meanfield

type params = {
  a : float;  (** external infection rate *)
  delta : float;  (** patch/recovery rate *)
  beta : Interval.t;  (** imprecise contact infection rate *)
}

val default_params : params
(** a = 0.05, δ = 2, β ∈ [1, 4]. *)

val make : params -> Model.t
(** The symbolic model, f(x, β) = a(1−x)⁺ + βx(1−x)⁺ − δx: affine in
    θ; the clean fraction [max(0, 1 − I)] is a kink and I·(1 − I) is
    quadratic, so the drift is neither smooth nor multilinear. *)

val model : params -> Population.t

val di : params -> Umf_diffinc.Di.t

val theta_box : params -> Optim.Box.t

val equilibrium : params -> beta:float -> float
(** The unique stable equilibrium of the mean-field ODE for a fixed β
    (closed form via the quadratic formula). *)

val x0 : Vec.t
(** Initial infected fraction 0.2. *)
