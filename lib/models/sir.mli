(** The SIR epidemic model of Sec. V.

    N nodes, each susceptible / infected / recovered.  A susceptible
    node is infected from an external source at rate [a] or by contact
    at rate θ·X_I with θ ∈ [θ_min, θ_max] imprecise; infected nodes
    recover at rate [b]; recovered nodes become susceptible again at
    rate [c].

    The analysis uses the reduced 2-D state (X_S, X_I) with
    X_R = 1 − X_S − X_I substituted (Eq. 11).  Both layouts are
    defined once, symbolically ({!make} / {!make3}); drift, Jacobian,
    simulation model and differential inclusion all derive from that
    single definition. *)

open Umf_numerics
open Umf_meanfield

type params = {
  a : float;  (** external infection rate *)
  b : float;  (** recovery rate *)
  c : float;  (** immunity-loss rate *)
  theta_min : float;
  theta_max : float;
}

val default_params : params
(** The paper's values: a = 0.1, b = 5, c = 1, θ ∈ [1, 10]. *)

val x0 : Vec.t
(** The paper's initial condition (X_S, X_I) = (0.7, 0.3). *)

val x0_3 : Vec.t
(** The 3-variable initial condition (0.7, 0.3, 0). *)

val make : params -> Model.t
(** Reduced 2-variable model (variables S, I; Eq. 11 drift): affine in
    θ, but the reduced immunity-loss rate carries a
    [max(0, 1 − S − I)] kink.  Ships the θ1/θ2 policies of Sec. V-E. *)

val make3 : params -> Model.t
(** Full 3-variable model (S, I, R) — used to check the reduction:
    affine in θ, multilinear, smooth, and mass-conserving (S + I + R
    constant) — the model the static analyzer certifies completely
    clean. *)

val model : params -> Population.t
(** [Model.population (make p)]. *)

val model3 : params -> Population.t

val di : params -> Umf_diffinc.Di.t
(** The mean-field differential inclusion with the exact symbolic
    Jacobian. *)

val theta_box : params -> Optim.Box.t

val policy_theta1 : params -> Policy.t
(** Hysteresis policy θ1 of Sec. V-E: plays θ_max and drops to θ_min
    when X_S < 0.5, rises again when X_S > 0.85. *)

val policy_theta2 : ?redraw_rate:float -> params -> Policy.t
(** Jump policy θ2 of Sec. V-E: θ redrawn uniformly in [θ_min, θ_max]
    at rate [redraw_rate]·X_I (default coefficient 5). *)
