(** The SIR epidemic model of Sec. V.

    N nodes, each susceptible / infected / recovered.  A susceptible
    node is infected from an external source at rate [a] or by contact
    at rate θ·X_I with θ ∈ [θ_min, θ_max] imprecise; infected nodes
    recover at rate [b]; recovered nodes become susceptible again at
    rate [c].

    The analysis uses the reduced 2-D state (X_S, X_I) with
    X_R = 1 − X_S − X_I substituted (Eq. 11). *)

open Umf_numerics
open Umf_meanfield

type params = {
  a : float;  (** external infection rate *)
  b : float;  (** recovery rate *)
  c : float;  (** immunity-loss rate *)
  theta_min : float;
  theta_max : float;
}

val default_params : params
(** The paper's values: a = 0.1, b = 5, c = 1, θ ∈ [1, 10]. *)

val x0 : Vec.t
(** The paper's initial condition (X_S, X_I) = (0.7, 0.3). *)

val model : params -> Population.t
(** Reduced 2-variable population model (variables S, I). *)

val model3 : params -> Population.t
(** Full 3-variable model (S, I, R) — used to check the reduction. *)

val symbolic : params -> Symbolic.t
(** Symbolic twin of {!model} (same rates as {!Umf_numerics.Expr}
    trees): drift affine in θ, but the reduced immunity-loss rate
    carries a [max(0, 1 − S − I)] kink. *)

val symbolic3 : params -> Symbolic.t
(** Symbolic twin of {!model3}: affine in θ, multilinear, smooth, and
    mass-conserving (S + I + R constant) — the model the static
    analyzer certifies completely clean. *)

val drift : params -> Vec.t -> Vec.t -> Vec.t
(** Closed-form reduced drift (Eq. 11): [drift p x theta] with
    [x = (xS, xI)] and [theta] a 1-vector. *)

val jacobian : params -> Vec.t -> Vec.t -> Mat.t
(** Analytic ∂f/∂x of the reduced drift. *)

val di : params -> Umf_diffinc.Di.t
(** The mean-field differential inclusion with analytic Jacobian. *)

val policy_theta1 : params -> Policy.t
(** Hysteresis policy θ1 of Sec. V-E: plays θ_max and drops to θ_min
    when X_S < 0.5, rises again when X_S > 0.85. *)

val policy_theta2 : ?redraw_rate:float -> params -> Policy.t
(** Jump policy θ2 of Sec. V-E: θ redrawn uniformly in [θ_min, θ_max]
    at rate [redraw_rate]·X_I (default coefficient 5). *)
