(** A multi-station bike-sharing network with riding delays — the
    system of Fricker & Gast [22] cited by the paper, under imprecise
    demand.

    K stations share a fleet.  Station i has a fraction 1/K of the N
    racks.  Customers arrive at station i at the imprecise rate θ_i
    (demand depends on weather/events); if a bike is available they
    ride for an Exp(μ) time and return the bike at a station chosen by
    the routing distribution [routing] (blocked returns stay in
    transit and retry).

    Density variables: x_1 … x_K (bikes docked at each station, as a
    fraction of the fleet scale N) and z (bikes in transit); each
    x_i ∈ [0, 1/K], and x_1 + … + x_K + z is conserved — a structural
    invariant the tests exploit.

    The motivating design question: how many bikes (fleet density s)
    keep every station from starving, whatever the demand does?
    Answered with {!Umf_diffinc.Safety} on this model. *)

open Umf_numerics
open Umf_meanfield

type params = {
  stations : int;  (** K >= 2 *)
  mu : float;  (** trip completion rate *)
  demand : Interval.t array;  (** θ_i range per station, length K *)
  routing : float array;  (** return probabilities, length K, sums to 1 *)
  fleet : float;  (** bikes per rack: s ∈ (0, 1) *)
  rebalance : float;
      (** truck redistribution capacity r: bikes flow from station j to
          i at rate r·x_j·(free racks at i)/capacity.  r = 0 disables
          rebalancing — and then a sustained demand surge provably
          starves the hottest station whatever the fleet size, which is
          why real systems rebalance ([22]). *)
}

val default_params : params
(** K = 3, μ = 3, demand θ1 ∈ [0.3, 0.7] (busy downtown),
    θ2, θ3 ∈ [0.1, 0.4], uniform returns, fleet s = 0.6, no
    rebalancing. *)

val with_fleet : params -> float -> params

val with_rebalance : params -> float -> params

val make : params -> Model.t
(** The symbolic model, variables x1 … xK, z: the empty/full guards
    become [Ite] thresholds; conserves Σ x_i + z (every change vector
    sums to 0).  Clipped to {!state_box}. *)

val model : params -> Population.t

val di : params -> Umf_diffinc.Di.t

val x0 : params -> Vec.t
(** Fleet spread evenly over the stations, nothing in transit. *)

val dim : params -> int

val capacity : params -> float
(** Rack capacity per station on the density scale, 1/K. *)

val state_box : params -> Optim.Box.t
(** The invariant box [0, 1/K]^K × [0, 1] — the hull clip and lint
    certification domain. *)

val total_bikes : Vec.t -> float
(** Σ x_i + z: the conserved fleet density. *)

val min_station : params -> Vec.t -> float
(** Occupancy of the emptiest station. *)

val starvation_constraints : params -> level:float -> Umf_diffinc.Safety.constraint_ list
(** One constraint x_i ≥ level per station: "no station ever runs
    (nearly) dry". *)
