(** A cholera epidemic with an environmental water reservoir (the
    paper's introductory motivation [3]: rainfall makes the
    water-borne infection rate vary unpredictably in time).

    Variables: S (susceptible fraction), I (infected fraction) and W
    (normalised bacterial concentration of the reservoir); recovered
    R = 1 − S − I is implicit.  Infected individuals shed bacteria into
    the reservoir (rate ξ I); bacteria decay (rate δ W); susceptibles
    are infected through the water at the imprecise rate θ S W with
    θ ∈ [θ_min, θ_max] driven by rainfall, plus a small direct rate a.

    The model is specified {e symbolically} ({!make}), so exact
    Jacobians and certified interval hull bounds are available; it is
    3-dimensional, exercising every solver beyond the planar case
    (no Birkhoff centre, which is 2-D only). *)

open Umf_numerics
open Umf_meanfield

type params = {
  a : float;  (** direct (non-water) infection rate *)
  gamma : float;  (** recovery rate *)
  rho : float;  (** immunity-loss rate *)
  xi : float;  (** shedding rate into the reservoir *)
  delta : float;  (** bacterial decay rate *)
  theta : Interval.t;  (** imprecise water-borne infection rate *)
}

val default_params : params
(** a = 0.01, γ = 2, ρ = 0.2, ξ = 1, δ = 1, θ ∈ [0.5, 4]. *)

val make : params -> Model.t
(** Clipped to {!state_clip} (the declared invariant box, which also
    serves as the lint certification domain). *)

val model : params -> Population.t

val di : params -> Umf_diffinc.Di.t
(** With the exact symbolic Jacobian. *)

val x0 : Vec.t
(** (S, I, W) = (0.9, 0.1, 0). *)

val state_clip : Optim.Box.t
(** Invariant box [0,1]² × [0,2] for hull clipping (W's drift is
    negative above ξ/δ = 1). *)
