open Umf_numerics
open Umf_meanfield

type params = {
  stations : int;
  mu : float;
  demand : Interval.t array;
  routing : float array;
  fleet : float;
  rebalance : float;
}

let default_params =
  {
    stations = 3;
    mu = 3.;
    demand =
      [| Interval.make 0.3 0.7; Interval.make 0.1 0.4; Interval.make 0.1 0.4 |];
    routing = [| 1. /. 3.; 1. /. 3.; 1. /. 3. |];
    fleet = 0.6;
    rebalance = 0.;
  }

let with_fleet p fleet = { p with fleet }

let with_rebalance p rebalance = { p with rebalance }

let validate p =
  if p.stations < 2 then invalid_arg "Bikenetwork: need >= 2 stations";
  if Array.length p.demand <> p.stations then
    invalid_arg "Bikenetwork: demand length mismatch";
  if Array.length p.routing <> p.stations then
    invalid_arg "Bikenetwork: routing length mismatch";
  if Float.abs (Vec.sum p.routing -. 1.) > 1e-9 then
    invalid_arg "Bikenetwork: routing must sum to 1";
  if p.fleet <= 0. || p.fleet >= 1. then
    invalid_arg "Bikenetwork: fleet density must be in (0, 1)";
  if p.rebalance < 0. then
    invalid_arg "Bikenetwork: negative rebalance capacity"

let dim p = p.stations + 1

let capacity p = 1. /. float_of_int p.stations

let x0 p =
  validate p;
  let per_station = p.fleet /. float_of_int p.stations in
  Array.init (dim p) (fun i -> if i = p.stations then 0. else per_station)

let state_box p =
  let cap = capacity p in
  let d = dim p in
  Optim.Box.make (Vec.zeros d)
    (Array.init d (fun i -> if i = d - 1 then 1. else cap))

let make p =
  validate p;
  let open Expr in
  let k = p.stations in
  let z_idx = k in
  let unit i s =
    let v = Vec.zeros (k + 1) in
    v.(i) <- s;
    v
  in
  let cap = capacity p in
  (* Ite (g, a, b) is [a] where g <= 0: empty/full threshold guards *)
  let departure i =
    {
      Model.name = Printf.sprintf "depart-%d" (i + 1);
      change = Vec.add (unit i (-1.)) (unit z_idx 1.);
      rate = Ite (var i -: const 1e-12, const 0., theta i);
    }
  in
  let arrival i =
    (* returns are blocked at a full station and stay in transit *)
    {
      Model.name = Printf.sprintf "return-%d" (i + 1);
      change = Vec.add (unit i 1.) (unit z_idx (-1.));
      rate =
        Ite
          ( var i -: const (cap -. 1e-12),
            const p.mu *: max_ (const 0.) (var z_idx) *: const p.routing.(i),
            const 0. );
    }
  in
  (* truck rebalancing (the redistribution of [22]): bikes are moved
     from station j towards station i at a pressure-driven rate
     proportional to j's stock and i's free racks *)
  let rebalances =
    if p.rebalance = 0. then []
    else
      List.concat_map
        (fun j ->
          List.filter_map
            (fun i ->
              if i = j then None
              else
                Some
                  {
                    Model.name =
                      Printf.sprintf "rebalance-%d-%d" (j + 1) (i + 1);
                    change = Vec.add (unit j (-1.)) (unit i 1.);
                    rate =
                      const p.rebalance
                      *: max_ (const 0.) (var j)
                      *: (max_ (const 0.) (const cap -: var i) /: const cap);
                  })
            (List.init k Fun.id))
        (List.init k Fun.id)
  in
  Model.make ~name:"bike-network"
    ~var_names:
      (Array.init (k + 1) (fun i ->
           if i = k then "Z" else Printf.sprintf "S%d" (i + 1)))
    ~theta_names:(Array.init k (fun i -> Printf.sprintf "theta%d" (i + 1)))
    ~theta:(Optim.Box.of_intervals (Array.to_list p.demand))
    ~x0:(x0 p) ~clip:(state_box p)
    (List.init k departure @ List.init k arrival @ rebalances)

let model p = Model.population (make p)

let di p = Umf_diffinc.Di.of_model (make p)

let total_bikes x = Vec.sum x

let min_station p x =
  let best = ref Float.infinity in
  for i = 0 to p.stations - 1 do
    if x.(i) < !best then best := x.(i)
  done;
  !best

let starvation_constraints p ~level =
  List.init p.stations (fun i ->
      Umf_diffinc.Safety.ge
        ~label:(Printf.sprintf "station %d keeps >= %g bikes" (i + 1) level)
        ~coord:i ~dim:(dim p) level)
