open Umf_numerics
open Umf_meanfield

type params = { a : float; delta : float; beta : Interval.t }

let default_params = { a = 0.05; delta = 2.; beta = Interval.make 1. 4. }

let theta_box p = Optim.Box.of_intervals [ p.beta ]

let drift p x theta =
  let xi = x.(0) and beta = theta.(0) in
  [| (p.a *. (1. -. xi)) +. (beta *. xi *. (1. -. xi)) -. (p.delta *. xi) |]

let model p =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"sis-malware" ~var_names:[| "I" |]
    ~theta_names:[| "beta" |] ~theta:(theta_box p)
    [
      tr "infection" [| 1. |]
        (fun x theta ->
          let xi = x.(0) in
          let clean = Float.max 0. (1. -. xi) in
          (p.a *. clean) +. (theta.(0) *. xi *. clean));
      tr "patch" [| -1. |] (fun x _ -> p.delta *. x.(0));
    ]

let symbolic p =
  let open Expr in
  let i = var 0 in
  let clean = max_ (const 0.) (const 1. -: i) in
  let tr name change rate = { Symbolic.name; change; rate } in
  Symbolic.make ~name:"sis-malware" ~var_names:[| "I" |]
    ~theta_names:[| "beta" |] ~theta:(theta_box p)
    [
      tr "infection" [| 1. |] ((const p.a *: clean) +: (theta 0 *: i *: clean));
      tr "patch" [| -1. |] (const p.delta *: i);
    ]

let di p = Umf_diffinc.Di.of_population (model p)

(* a(1-x) + b x(1-x) - d x = 0  <=>  b x^2 + (d - b + a) x - a = 0 *)
let equilibrium p ~beta =
  if beta = 0. then p.a /. (p.a +. p.delta)
  else begin
    let bq = p.delta -. beta +. p.a in
    let disc = (bq *. bq) +. (4. *. beta *. p.a) in
    ((-.bq) +. sqrt disc) /. (2. *. beta)
  end

let x0 = [| 0.2 |]
