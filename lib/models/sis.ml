open Umf_numerics
open Umf_meanfield

type params = { a : float; delta : float; beta : Interval.t }

let default_params = { a = 0.05; delta = 2.; beta = Interval.make 1. 4. }

let theta_box p = Optim.Box.of_intervals [ p.beta ]

let x0 = [| 0.2 |]

let make p =
  let open Expr in
  let i = var 0 in
  let clean = max_ (const 0.) (const 1. -: i) in
  let tr name change rate = { Model.name; change; rate } in
  Model.make ~name:"sis-malware" ~var_names:[| "I" |] ~theta_names:[| "beta" |]
    ~theta:(theta_box p) ~x0
    [
      tr "infection" [| 1. |] ((const p.a *: clean) +: (theta 0 *: i *: clean));
      tr "patch" [| -1. |] (const p.delta *: i);
    ]

let model p = Model.population (make p)

let di p = Umf_diffinc.Di.of_model (make p)

(* a(1-x) + b x(1-x) - d x = 0  <=>  b x^2 + (d - b + a) x - a = 0 *)
let equilibrium p ~beta =
  if beta = 0. then p.a /. (p.a +. p.delta)
  else begin
    let bq = p.delta -. beta +. p.a in
    let disc = (bq *. bq) +. (4. *. beta *. p.a) in
    ((-.bq) +. sqrt disc) /. (2. *. beta)
  end
