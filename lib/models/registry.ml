open Umf_meanfield

let catalogue : (string * Model.t Lazy.t) list =
  [
    ("sir", lazy (Sir.make Sir.default_params));
    ("sir3", lazy (Sir.make3 Sir.default_params));
    ("sis", lazy (Sis.make Sis.default_params));
    ("bike", lazy (Bikesharing.make Bikesharing.default_params));
    ("cholera", lazy (Cholera.make Cholera.default_params));
    ("gps-poisson", lazy (Gps.make_poisson Gps.default_params));
    ("gps-map", lazy (Gps.make_map Gps.default_params));
    ("jsq2", lazy (Loadbalance.make Loadbalance.default_params));
    ("bikenet", lazy (Bikenetwork.make Bikenetwork.default_params));
  ]

let names = List.map fst catalogue

let all () = List.map (fun (n, m) -> (n, Lazy.force m)) catalogue

let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let subst = prev.(j - 1) + (if a.[i - 1] = b.[j - 1] then 0 else 1) in
      cur.(j) <- Stdlib.min subst (1 + Stdlib.min prev.(j) cur.(j - 1))
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  let name = String.lowercase_ascii name in
  let best =
    List.fold_left
      (fun acc cand ->
        let d = edit_distance name cand in
        match acc with
        | Some (_, d') when d' <= d -> acc
        | _ -> Some (cand, d))
      None names
  in
  match best with
  | Some (cand, d)
    when d <= Stdlib.max 2 (String.length cand / 2) && d < String.length cand
    ->
      Some cand
  | _ -> None

let not_found_msg name =
  let hint =
    match suggest name with
    | Some s -> Printf.sprintf " (did you mean %S?)" s
    | None -> ""
  in
  Printf.sprintf "unknown model %S%s; registered models: %s" name hint
    (String.concat ", " names)

let find name =
  match List.assoc_opt name catalogue with
  | Some m -> Ok (Lazy.force m)
  | None -> Error (`Msg (not_found_msg name))

let find_exn name =
  match find name with Ok m -> m | Error (`Msg m) -> invalid_arg m
