open Umf_numerics
open Umf_meanfield

type params = {
  a : float;
  gamma : float;
  rho : float;
  xi : float;
  delta : float;
  theta : Interval.t;
}

let default_params =
  { a = 0.01; gamma = 2.; rho = 0.2; xi = 1.; delta = 1.; theta = Interval.make 0.5 4. }

let x0 = [| 0.9; 0.1; 0. |]

let state_clip = Optim.Box.make [| 0.; 0.; 0. |] [| 1.; 1.; 2. |]

let make p =
  let open Expr in
  let s = var 0 and i = var 1 and w = var 2 in
  let recovered = max_ (const 0.) (const 1. -: s -: i) in
  let tr name change rate = { Model.name; change; rate } in
  Model.make ~name:"cholera" ~var_names:[| "S"; "I"; "W" |]
    ~theta_names:[| "theta" |]
    ~theta:(Optim.Box.of_intervals [ p.theta ])
    ~x0 ~clip:state_clip
    [
      tr "infection" [| -1.; 1.; 0. |]
        ((const p.a *: s) +: (theta 0 *: s *: w));
      tr "recovery" [| 0.; -1.; 0. |] (const p.gamma *: i);
      tr "immunity-loss" [| 1.; 0.; 0. |] (const p.rho *: recovered);
      tr "shedding" [| 0.; 0.; 1. |] (const p.xi *: i);
      tr "decay" [| 0.; 0.; -1. |] (const p.delta *: w);
    ]

let model p = Model.population (make p)

let di p = Umf_diffinc.Certified.di (make p)
