open Umf_numerics
open Umf_meanfield

type params = { arrival : Interval.t; return_ : Interval.t }

let default_params =
  { arrival = Interval.make 0.8 1.4; return_ = Interval.make 0.9 1.2 }

let theta_box p = Optim.Box.of_intervals [ p.arrival; p.return_ ]

let x0 = [| 0.5 |]

let make p =
  let open Expr in
  let b = var 0 in
  let tr name change rate = { Model.name; change; rate } in
  (* Ite (g, a, b) is [a] where g <= 0: the emptiness/fullness
     indicators written as threshold tests *)
  Model.make ~name:"bike-station" ~var_names:[| "B" |]
    ~theta_names:[| "theta_a"; "theta_r" |] ~theta:(theta_box p) ~x0
    [
      tr "departure" [| -1. |] (Ite (b -: const 1e-12, const 0., theta 0));
      tr "return" [| 1. |] (Ite (b -: const (1. -. 1e-12), theta 1, const 0.));
    ]

let model p = Model.population (make p)

let di p = Umf_diffinc.Di.of_model (make p)

let ictmc p ~capacity =
  if capacity <= 0 then invalid_arg "Bikesharing.ictmc: need capacity > 0";
  let trans = ref [] in
  for k = 0 to capacity do
    if k > 0 then
      trans :=
        { Umf_ctmc.Imprecise_ctmc.src = k; dst = k - 1; rate = (fun th -> th.(0)) }
        :: !trans;
    if k < capacity then
      trans :=
        { Umf_ctmc.Imprecise_ctmc.src = k; dst = k + 1; rate = (fun th -> th.(1)) }
        :: !trans
  done;
  Umf_ctmc.Imprecise_ctmc.make ~n:(capacity + 1) ~theta:(theta_box p) !trans

let occupancy_reward ~capacity =
  Array.init (capacity + 1) (fun k -> float_of_int k /. float_of_int capacity)

let empty_indicator ~capacity =
  Array.init (capacity + 1) (fun k -> if k = 0 then 1. else 0.)
