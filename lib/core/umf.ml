module Vec = Umf_numerics.Vec
module Mat = Umf_numerics.Mat
module Interval = Umf_numerics.Interval
module Cert = Umf_numerics.Cert
module Ode = Umf_numerics.Ode
module Optim = Umf_numerics.Optim
module Rootfind = Umf_numerics.Rootfind
module Geometry = Umf_numerics.Geometry
module Ode_stiff = Umf_numerics.Ode_stiff
module Rng = Umf_numerics.Rng
module Stats = Umf_numerics.Stats
module Diff = Umf_numerics.Diff
module Expr = Umf_numerics.Expr
module Tape = Umf_numerics.Tape
module Tape_check = Umf_numerics.Tape_check
module Generator = Umf_ctmc.Generator
module Ctmc_sparse = Umf_ctmc.Sparse
module Ctmc_path = Umf_ctmc.Path
module Ctmc_simulate = Umf_ctmc.Simulate
module Transient = Umf_ctmc.Transient
module Stationary = Umf_ctmc.Stationary
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
module Interval_dtmc = Umf_ctmc.Interval_dtmc
module Population = Umf_meanfield.Population
module Ctmc_of_population = Umf_meanfield.Ctmc_of_population
module Model = Umf_meanfield.Model
module Policy = Umf_meanfield.Policy
module Ssa = Umf_meanfield.Ssa
module Convergence = Umf_meanfield.Convergence
module Lint = Umf_lint.Lint
module Runtime = Umf_runtime.Runtime
module Obs = Umf_obs.Obs
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Scenario = Umf_diffinc.Scenario
module Reach = Umf_diffinc.Reach
module Template = Umf_diffinc.Template
module Birkhoff = Umf_diffinc.Birkhoff
module Certified = Umf_diffinc.Certified
module Safety = Umf_diffinc.Safety
module Sir = Umf_models.Sir
module Gps = Umf_models.Gps
module Bikesharing = Umf_models.Bikesharing
module Sis = Umf_models.Sis
module Cholera = Umf_models.Cholera
module Loadbalance = Umf_models.Loadbalance
module Bikenetwork = Umf_models.Bikenetwork
module Registry = Umf_models.Registry

(* finite-N CTMC: the spec-record front door plus its kernels, under
   one namespace.  The historical top-level aliases (Transient,
   Ctmc_sparse, Imprecise_ctmc) are deprecated in the interface. *)
module Ctmc = struct
  module Engine = Umf_meanfield.Engine
  module Generator = Umf_ctmc.Generator
  module Sparse = Umf_ctmc.Sparse
  module Transient = Umf_ctmc.Transient
  module Stationary = Umf_ctmc.Stationary
  module Imprecise = Umf_ctmc.Imprecise_ctmc
end

(* High-level end-to-end analyses: its own compilation unit (see
   analysis.mli) so the serving layers can consume the spec API without
   the umbrella module; re-exported here unchanged. *)
module Analysis = Analysis

(* the NDJSON wire protocol of the umf_serve daemon *)
module Codec = Codec
