module Vec = Umf_numerics.Vec
module Mat = Umf_numerics.Mat
module Interval = Umf_numerics.Interval
module Ode = Umf_numerics.Ode
module Optim = Umf_numerics.Optim
module Rootfind = Umf_numerics.Rootfind
module Geometry = Umf_numerics.Geometry
module Ode_stiff = Umf_numerics.Ode_stiff
module Rng = Umf_numerics.Rng
module Stats = Umf_numerics.Stats
module Diff = Umf_numerics.Diff
module Expr = Umf_numerics.Expr
module Generator = Umf_ctmc.Generator
module Ctmc_path = Umf_ctmc.Path
module Ctmc_simulate = Umf_ctmc.Simulate
module Transient = Umf_ctmc.Transient
module Stationary = Umf_ctmc.Stationary
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
module Interval_dtmc = Umf_ctmc.Interval_dtmc
module Population = Umf_meanfield.Population
module Symbolic = Umf_meanfield.Symbolic
module Policy = Umf_meanfield.Policy
module Ssa = Umf_meanfield.Ssa
module Convergence = Umf_meanfield.Convergence
module Lint = Umf_lint.Lint
module Runtime = Umf_runtime.Runtime
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Scenario = Umf_diffinc.Scenario
module Reach = Umf_diffinc.Reach
module Template = Umf_diffinc.Template
module Birkhoff = Umf_diffinc.Birkhoff
module Certified = Umf_diffinc.Certified
module Safety = Umf_diffinc.Safety
module Sir = Umf_models.Sir
module Gps = Umf_models.Gps
module Bikesharing = Umf_models.Bikesharing
module Sis = Umf_models.Sis
module Cholera = Umf_models.Cholera
module Loadbalance = Umf_models.Loadbalance
module Bikenetwork = Umf_models.Bikenetwork

module Analysis = struct
  type scenario = Imprecise | Uncertain of int

  type spec = {
    model : Population.t;
    scenario : scenario;
    theta : Optim.Box.t option;
    horizon : float;
    steps : int;
    dt : float;
    tol : float;
    pool : Runtime.Pool.t option;
  }

  let spec ?(scenario = Imprecise) ?theta ?(horizon = 10.) ?(steps = 400)
      ?(dt = 1e-2) ?(tol = 1e-4) ?pool model =
    if horizon <= 0. then invalid_arg "Analysis.spec: need horizon > 0";
    if steps < 1 then invalid_arg "Analysis.spec: need steps >= 1";
    if dt <= 0. then invalid_arg "Analysis.spec: need dt > 0";
    (match scenario with
    | Uncertain g when g < 2 -> invalid_arg "Analysis.spec: need grid >= 2"
    | Uncertain _ | Imprecise -> ());
    { model; scenario; theta; horizon; steps; dt; tol; pool }

  let di_of_spec s =
    let di = Di.of_population s.model in
    match s.theta with None -> di | Some box -> { di with Di.theta = box }

  type bounds = {
    coord : int;
    times : float array;
    lower : float array;
    upper : float array;
  }

  let transient_bounds ?times s ~x0 ~coord =
    let times =
      match times with Some ts -> ts | None -> Vec.linspace 0. s.horizon 11
    in
    let di = di_of_spec s in
    let pairs =
      match s.scenario with
      | Imprecise ->
          Pontryagin.bound_series ?pool:s.pool ~steps:s.steps ~tol:s.tol di ~x0
            ~coord ~times
      | Uncertain grid ->
          let lower, upper =
            Uncertain.transient_envelope ?pool:s.pool ~dt:s.dt ~grid di ~x0
              ~times
          in
          Array.init (Array.length times) (fun i ->
              (lower.(i).(coord), upper.(i).(coord)))
    in
    {
      coord;
      times;
      lower = Array.map fst pairs;
      upper = Array.map snd pairs;
    }

  let hull_bounds ?clip s ~x0 =
    Hull.bounds ?clip (di_of_spec s) ~x0 ~horizon:s.horizon ~dt:s.dt

  type region = {
    birkhoff : Birkhoff.result;
    area : float;
    converged : bool;
  }

  let steady_state_region_2d ?x_start s =
    let x_start =
      match x_start with
      | Some x -> x
      | None -> Vec.create (Population.dim s.model) 0.5
    in
    let b = Birkhoff.compute (di_of_spec s) ~x_start in
    { birkhoff = b; area = Birkhoff.area b; converged = Birkhoff.converged b }

  type cloud = { times : float array; states : Vec.t array }

  let stationary_cloud s ~n ~x0 ~policy ~warmup ~samples ~seed =
    if samples <= 0 then invalid_arg "Analysis.stationary_cloud: samples <= 0";
    if warmup >= s.horizon then
      invalid_arg "Analysis.stationary_cloud: warmup >= horizon";
    let times =
      Array.init samples (fun i ->
          warmup
          +. (s.horizon -. warmup)
             *. float_of_int (i + 1)
             /. float_of_int samples)
    in
    let states = Ssa.sampled s.model ~n ~x0 ~policy ~times (Rng.create seed) in
    { times; states }

  type inclusion = {
    total : int;
    inside : int;  (** Number of states within the [tol] slack. *)
    fraction : float;
    strict : float;  (** Fraction with no boundary slack. *)
  }

  (* chunked fold over states: per-chunk partials with a FIXED chunk
     size, combined in chunk order — the same association whether the
     partials are computed here or on pool workers, so pool presence
     and domain count never change a single bit of the result *)
  let chunked_fold s ~per_state ~combine ~init states =
    let total = Array.length states in
    let chunk = 1024 in
    if total <= chunk then Array.fold_left per_state init states
    else begin
      let n_chunks = (total + chunk - 1) / chunk in
      let partial ci =
        let lo = ci * chunk in
        let hi = Stdlib.min total (lo + chunk) in
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := per_state !acc states.(i)
        done;
        !acc
      in
      let partials =
        match s.pool with
        | Some p ->
            Runtime.Pool.parallel_map ~stage:"analysis-fold" ~chunk:1 p
              partial
              (Array.init n_chunks Fun.id)
        | None -> Array.init n_chunks partial
      in
      Array.fold_left combine init partials
    end

  let inclusion_fraction ?tol s region states =
    if Array.length states = 0 then
      invalid_arg "Analysis.inclusion_fraction: no states";
    let b = region.birkhoff in
    let count (slack, strict) x =
      let p = (x.(0), x.(1)) in
      ( (slack + if Birkhoff.contains ?tol b p then 1 else 0),
        strict + if Birkhoff.contains b p then 1 else 0 )
    in
    let inside, strict_inside =
      chunked_fold s states ~init:(0, 0) ~per_state:count
        ~combine:(fun (a, b) (c, d) -> (a + c, b + d))
    in
    let total = Array.length states in
    {
      total;
      inside;
      fraction = float_of_int inside /. float_of_int total;
      strict = float_of_int strict_inside /. float_of_int total;
    }

  type exceedance = { mean : float; worst : float }

  let mean_exceedance s region states =
    if Array.length states = 0 then
      invalid_arg "Analysis.mean_exceedance: no states";
    let polygon = region.birkhoff.Birkhoff.polygon in
    let step (acc, worst) x =
      let d = Geometry.violation_depth (x.(0), x.(1)) polygon in
      (acc +. d, Float.max worst d)
    in
    let acc, worst =
      chunked_fold s states ~init:(0., 0.) ~per_state:step
        ~combine:(fun (a, w) (a', w') -> (a +. a', Float.max w w'))
    in
    { mean = acc /. float_of_int (Array.length states); worst }

  (* the pre-spec entry points, kept one release as thin wrappers *)
  module Legacy = struct
    let transient_bounds ?(scenario = Imprecise) ?steps model ~x0 ~coord ~times
        =
      let di = Di.of_population model in
      match scenario with
      | Imprecise -> Pontryagin.bound_series ?steps di ~x0 ~coord ~times
      | Uncertain grid ->
          let lower, upper = Uncertain.transient_envelope ~grid di ~x0 ~times in
          Array.init (Array.length times) (fun i ->
              (lower.(i).(coord), upper.(i).(coord)))

    let hull_bounds ?clip ?(dt = 1e-2) model ~x0 ~horizon =
      let di = Di.of_population model in
      Hull.bounds ?clip di ~x0 ~horizon ~dt

    let steady_state_region_2d ?x_start model =
      let di = Di.of_population model in
      let x_start =
        match x_start with
        | Some x -> x
        | None -> Vec.create (Population.dim model) 0.5
      in
      Birkhoff.compute di ~x_start

    let stationary_cloud model ~n ~x0 ~policy ~warmup ~horizon ~samples ~seed =
      if samples <= 0 then invalid_arg "Analysis.stationary_cloud: samples <= 0";
      if warmup >= horizon then
        invalid_arg "Analysis.stationary_cloud: warmup >= horizon";
      let times =
        Array.init samples (fun i ->
            warmup
            +. (horizon -. warmup)
               *. float_of_int (i + 1)
               /. float_of_int samples)
      in
      Ssa.sampled model ~n ~x0 ~policy ~times (Rng.create seed)

    let inclusion_fraction ?tol region states =
      if Array.length states = 0 then
        invalid_arg "Analysis.inclusion_fraction: no states";
      let inside = ref 0 in
      Array.iter
        (fun x ->
          if Birkhoff.contains ?tol region (x.(0), x.(1)) then incr inside)
        states;
      float_of_int !inside /. float_of_int (Array.length states)

    let mean_exceedance region states =
      if Array.length states = 0 then
        invalid_arg "Analysis.mean_exceedance: no states";
      let acc = ref 0. in
      Array.iter
        (fun x ->
          acc :=
            !acc
            +. Geometry.violation_depth (x.(0), x.(1)) region.Birkhoff.polygon)
        states;
      !acc /. float_of_int (Array.length states)
  end
end
