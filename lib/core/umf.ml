module Vec = Umf_numerics.Vec
module Mat = Umf_numerics.Mat
module Interval = Umf_numerics.Interval
module Ode = Umf_numerics.Ode
module Optim = Umf_numerics.Optim
module Rootfind = Umf_numerics.Rootfind
module Geometry = Umf_numerics.Geometry
module Ode_stiff = Umf_numerics.Ode_stiff
module Rng = Umf_numerics.Rng
module Stats = Umf_numerics.Stats
module Diff = Umf_numerics.Diff
module Expr = Umf_numerics.Expr
module Generator = Umf_ctmc.Generator
module Ctmc_path = Umf_ctmc.Path
module Ctmc_simulate = Umf_ctmc.Simulate
module Transient = Umf_ctmc.Transient
module Stationary = Umf_ctmc.Stationary
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
module Interval_dtmc = Umf_ctmc.Interval_dtmc
module Population = Umf_meanfield.Population
module Symbolic = Umf_meanfield.Symbolic
module Policy = Umf_meanfield.Policy
module Ssa = Umf_meanfield.Ssa
module Convergence = Umf_meanfield.Convergence
module Lint = Umf_lint.Lint
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Scenario = Umf_diffinc.Scenario
module Reach = Umf_diffinc.Reach
module Template = Umf_diffinc.Template
module Birkhoff = Umf_diffinc.Birkhoff
module Certified = Umf_diffinc.Certified
module Safety = Umf_diffinc.Safety
module Sir = Umf_models.Sir
module Gps = Umf_models.Gps
module Bikesharing = Umf_models.Bikesharing
module Sis = Umf_models.Sis
module Cholera = Umf_models.Cholera
module Loadbalance = Umf_models.Loadbalance
module Bikenetwork = Umf_models.Bikenetwork

module Analysis = struct
  type scenario = Imprecise | Uncertain of int

  let transient_bounds ?(scenario = Imprecise) ?steps model ~x0 ~coord ~times =
    let di = Di.of_population model in
    match scenario with
    | Imprecise -> Pontryagin.bound_series ?steps di ~x0 ~coord ~times
    | Uncertain grid ->
        let lower, upper = Uncertain.transient_envelope ~grid di ~x0 ~times in
        Array.init (Array.length times) (fun i ->
            (lower.(i).(coord), upper.(i).(coord)))

  let hull_bounds ?clip ?(dt = 1e-2) model ~x0 ~horizon =
    let di = Di.of_population model in
    Hull.bounds ?clip di ~x0 ~horizon ~dt

  let steady_state_region_2d ?x_start model =
    let di = Di.of_population model in
    let x_start =
      match x_start with
      | Some x -> x
      | None -> Vec.create (Population.dim model) 0.5
    in
    Birkhoff.compute di ~x_start

  let stationary_cloud model ~n ~x0 ~policy ~warmup ~horizon ~samples ~seed =
    if samples <= 0 then invalid_arg "Analysis.stationary_cloud: samples <= 0";
    if warmup >= horizon then
      invalid_arg "Analysis.stationary_cloud: warmup >= horizon";
    let times =
      Array.init samples (fun i ->
          warmup
          +. ((horizon -. warmup) *. float_of_int (i + 1) /. float_of_int samples))
    in
    Ssa.sampled model ~n ~x0 ~policy ~times (Rng.create seed)

  let inclusion_fraction ?tol region states =
    if Array.length states = 0 then
      invalid_arg "Analysis.inclusion_fraction: no states";
    let inside = ref 0 in
    Array.iter
      (fun x ->
        if Birkhoff.contains ?tol region (x.(0), x.(1)) then incr inside)
      states;
    float_of_int !inside /. float_of_int (Array.length states)

  let mean_exceedance region states =
    if Array.length states = 0 then
      invalid_arg "Analysis.mean_exceedance: no states";
    let acc = ref 0. in
    Array.iter
      (fun x ->
        acc :=
          !acc +. Geometry.violation_depth (x.(0), x.(1)) region.Birkhoff.polygon)
      states;
    !acc /. float_of_int (Array.length states)
end
