(** Mean-field analysis of uncertain and imprecise stochastic models.

    Umbrella interface of the library reproducing Bortolussi & Gast,
    {e Mean Field Approximation of Uncertain Stochastic Models}
    (DSN 2016).  Model a system of N interacting agents as a
    {!Population} of transition classes with parameters ranging in a
    box Θ, then analyse:

    - the {e uncertain} scenario (θ constant but unknown) with
      {!Uncertain} sweeps, and
    - the {e imprecise} scenario (θ_t varying arbitrarily in Θ) through
      its mean-field differential-inclusion limit, with {!Hull} (cheap
      rectangular bounds), {!Pontryagin} (tight extremal bounds) and
      {!Birkhoff} (steady-state regions);

    and validate against finite-N stochastic simulation ({!Ssa}) or
    the exact finite-N CTMC engine ({!Ctmc.Engine}).

    The {!Analysis} module bundles the common end-to-end workflows. *)

(* numerics substrate *)
module Vec = Umf_numerics.Vec
module Mat = Umf_numerics.Mat
module Interval = Umf_numerics.Interval

(** The unified error ledger: every solver reports its certified
    enclosure plus an itemised budget (discretisation, truncation,
    rounding, optimiser) through this one type. *)
module Cert = Umf_numerics.Cert
module Ode = Umf_numerics.Ode
module Optim = Umf_numerics.Optim
module Rootfind = Umf_numerics.Rootfind
module Geometry = Umf_numerics.Geometry
module Ode_stiff = Umf_numerics.Ode_stiff
module Rng = Umf_numerics.Rng
module Stats = Umf_numerics.Stats
module Diff = Umf_numerics.Diff
module Expr = Umf_numerics.Expr
module Tape = Umf_numerics.Tape
module Tape_check = Umf_numerics.Tape_check

(* Markov chain substrate *)
module Generator = Umf_ctmc.Generator

module Ctmc_sparse = Umf_ctmc.Sparse
[@@deprecated
  "use Ctmc.Engine (spec front door) or Ctmc.Sparse (kernel); removed two \
   releases after 0.8"]

module Ctmc_path = Umf_ctmc.Path
module Ctmc_simulate = Umf_ctmc.Simulate

module Transient = Umf_ctmc.Transient
[@@deprecated
  "use Ctmc.Engine.transient/distribution (spec front door) or \
   Ctmc.Transient (kernel); removed two releases after 0.8"]

module Stationary = Umf_ctmc.Stationary

module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
[@@deprecated
  "use Ctmc.Engine.envelope (spec front door) or Ctmc.Imprecise (kernel); \
   removed two releases after 0.8"]

module Interval_dtmc = Umf_ctmc.Interval_dtmc

(* population models and their simulation *)
module Population = Umf_meanfield.Population
module Ctmc_of_population = Umf_meanfield.Ctmc_of_population
module Model = Umf_meanfield.Model
module Policy = Umf_meanfield.Policy
module Ssa = Umf_meanfield.Ssa
module Convergence = Umf_meanfield.Convergence

(** The finite-N CTMC engine: {!Ctmc.Engine} is the one spec-record
    front door (transient expectations, scenario envelopes, stationary
    distributions — all with certified escaped-mass accounting under
    adaptive truncation); the submodules next to it are its kernels for
    callers that build generators by hand. *)
module Ctmc : sig
  module Engine = Umf_meanfield.Engine
  module Generator = Umf_ctmc.Generator
  module Sparse = Umf_ctmc.Sparse
  module Transient = Umf_ctmc.Transient
  module Stationary = Umf_ctmc.Stationary
  module Imprecise = Umf_ctmc.Imprecise_ctmc
end

(* static model analysis *)
module Lint = Umf_lint.Lint

(* multicore execution engine *)
module Runtime = Umf_runtime.Runtime

(* tracing & metrics (zero-cost when off) *)
module Obs = Umf_obs.Obs

(* differential-inclusion mean-field limits *)
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Scenario = Umf_diffinc.Scenario
module Reach = Umf_diffinc.Reach
module Template = Umf_diffinc.Template
module Birkhoff = Umf_diffinc.Birkhoff
module Certified = Umf_diffinc.Certified
module Safety = Umf_diffinc.Safety

(* the paper's case studies *)
module Sir = Umf_models.Sir
module Gps = Umf_models.Gps
module Bikesharing = Umf_models.Bikesharing
module Sis = Umf_models.Sis
module Cholera = Umf_models.Cholera
module Loadbalance = Umf_models.Loadbalance
module Bikenetwork = Umf_models.Bikenetwork
module Registry = Umf_models.Registry

(** High-level end-to-end analyses.

    Every entry point consumes an {!Analysis.spec}: one record naming
    the model, the scenario, the θ-box override, the horizon, the
    solver tolerances and an optional {!Runtime.Pool} for multicore
    execution.  Build one with {!Analysis.spec} and reuse it across
    analyses; results come back as named records.  (Its own
    compilation unit so the serving layers can consume the spec API
    directly.) *)
module Analysis = Analysis

(** NDJSON request/response codec over {!Analysis.spec} — the wire
    protocol of the [umf_serve] daemon (request parsing, content
    fingerprints for the compiled-result cache, op evaluation,
    response rendering). *)
module Codec = Codec
