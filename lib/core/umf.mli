(** Mean-field analysis of uncertain and imprecise stochastic models.

    Umbrella interface of the library reproducing Bortolussi & Gast,
    {e Mean Field Approximation of Uncertain Stochastic Models}
    (DSN 2016).  Model a system of N interacting agents as a
    {!Population} of transition classes with parameters ranging in a
    box Θ, then analyse:

    - the {e uncertain} scenario (θ constant but unknown) with
      {!Uncertain} sweeps, and
    - the {e imprecise} scenario (θ_t varying arbitrarily in Θ) through
      its mean-field differential-inclusion limit, with {!Hull} (cheap
      rectangular bounds), {!Pontryagin} (tight extremal bounds) and
      {!Birkhoff} (steady-state regions);

    and validate against finite-N stochastic simulation ({!Ssa}) or
    exact finite-chain imprecise bounds ({!Imprecise_ctmc}).

    The {!Analysis} module bundles the common end-to-end workflows. *)

(* numerics substrate *)
module Vec = Umf_numerics.Vec
module Mat = Umf_numerics.Mat
module Interval = Umf_numerics.Interval
module Ode = Umf_numerics.Ode
module Optim = Umf_numerics.Optim
module Rootfind = Umf_numerics.Rootfind
module Geometry = Umf_numerics.Geometry
module Ode_stiff = Umf_numerics.Ode_stiff
module Rng = Umf_numerics.Rng
module Stats = Umf_numerics.Stats
module Diff = Umf_numerics.Diff
module Expr = Umf_numerics.Expr

(* Markov chain substrate *)
module Generator = Umf_ctmc.Generator
module Ctmc_path = Umf_ctmc.Path
module Ctmc_simulate = Umf_ctmc.Simulate
module Transient = Umf_ctmc.Transient
module Stationary = Umf_ctmc.Stationary
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
module Interval_dtmc = Umf_ctmc.Interval_dtmc

(* population models and their simulation *)
module Population = Umf_meanfield.Population
module Symbolic = Umf_meanfield.Symbolic
module Policy = Umf_meanfield.Policy
module Ssa = Umf_meanfield.Ssa
module Convergence = Umf_meanfield.Convergence

(* static model analysis *)
module Lint = Umf_lint.Lint

(* differential-inclusion mean-field limits *)
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Scenario = Umf_diffinc.Scenario
module Reach = Umf_diffinc.Reach
module Template = Umf_diffinc.Template
module Birkhoff = Umf_diffinc.Birkhoff
module Certified = Umf_diffinc.Certified
module Safety = Umf_diffinc.Safety

(* the paper's case studies *)
module Sir = Umf_models.Sir
module Gps = Umf_models.Gps
module Bikesharing = Umf_models.Bikesharing
module Sis = Umf_models.Sis
module Cholera = Umf_models.Cholera
module Loadbalance = Umf_models.Loadbalance
module Bikenetwork = Umf_models.Bikenetwork

(** High-level end-to-end analyses. *)
module Analysis : sig
  type scenario =
    | Imprecise  (** θ_t may vary arbitrarily in Θ over time. *)
    | Uncertain of int
        (** θ constant but unknown; the payload is the per-axis grid
            resolution used to sweep Θ. *)

  val transient_bounds :
    ?scenario:scenario ->
    ?steps:int ->
    Population.t ->
    x0:Vec.t ->
    coord:int ->
    times:float array ->
    (float * float) array
  (** Lower/upper bounds on coordinate [coord] at each sample time.
      Imprecise (default) uses the Pontryagin solver on the mean-field
      differential inclusion; [Uncertain g] sweeps constant parameters
      on a [g]-per-axis grid. *)

  val hull_bounds :
    ?clip:Optim.Box.t ->
    ?dt:float ->
    Population.t ->
    x0:Vec.t ->
    horizon:float ->
    Hull.traj
  (** The differential-hull over-approximation (fast, conservative). *)

  val steady_state_region_2d :
    ?x_start:Vec.t -> Population.t -> Birkhoff.result
  (** The Birkhoff centre of a 2-variable model (steady-state region of
      the imprecise scenario).  [x_start] defaults to the θ-midpoint
      equilibrium seed (0.5, 0.25)-style midpoint of the unit box. *)

  val stationary_cloud :
    Population.t ->
    n:int ->
    x0:Vec.t ->
    policy:Policy.t ->
    warmup:float ->
    horizon:float ->
    samples:int ->
    seed:int ->
    Vec.t array
  (** Stationary-regime states of the size-N stochastic system under a
      policy, sampled at regular intervals after [warmup]. *)

  val inclusion_fraction :
    ?tol:float -> Birkhoff.result -> Vec.t array -> float
  (** Fraction of 2-D sample states inside a Birkhoff region, up to a
      boundary slack [tol] (the convergence diagnostic of Figure 6 —
      policies like θ1 ride exactly along the region boundary, so a
      small slack separates genuine escapes from boundary hugging). *)

  val mean_exceedance : Birkhoff.result -> Vec.t array -> float
  (** Average distance by which sample states stick out of the region
      (0 when all inside); converges to 0 as N → ∞ by Theorem 3. *)
end
