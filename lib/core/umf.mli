(** Mean-field analysis of uncertain and imprecise stochastic models.

    Umbrella interface of the library reproducing Bortolussi & Gast,
    {e Mean Field Approximation of Uncertain Stochastic Models}
    (DSN 2016).  Model a system of N interacting agents as a
    {!Population} of transition classes with parameters ranging in a
    box Θ, then analyse:

    - the {e uncertain} scenario (θ constant but unknown) with
      {!Uncertain} sweeps, and
    - the {e imprecise} scenario (θ_t varying arbitrarily in Θ) through
      its mean-field differential-inclusion limit, with {!Hull} (cheap
      rectangular bounds), {!Pontryagin} (tight extremal bounds) and
      {!Birkhoff} (steady-state regions);

    and validate against finite-N stochastic simulation ({!Ssa}) or
    the exact finite-N CTMC engine ({!Ctmc.Engine}).

    The {!Analysis} module bundles the common end-to-end workflows. *)

(* numerics substrate *)
module Vec = Umf_numerics.Vec
module Mat = Umf_numerics.Mat
module Interval = Umf_numerics.Interval

(** The unified error ledger: every solver reports its certified
    enclosure plus an itemised budget (discretisation, truncation,
    rounding, optimiser) through this one type. *)
module Cert = Umf_numerics.Cert
module Ode = Umf_numerics.Ode
module Optim = Umf_numerics.Optim
module Rootfind = Umf_numerics.Rootfind
module Geometry = Umf_numerics.Geometry
module Ode_stiff = Umf_numerics.Ode_stiff
module Rng = Umf_numerics.Rng
module Stats = Umf_numerics.Stats
module Diff = Umf_numerics.Diff
module Expr = Umf_numerics.Expr
module Tape = Umf_numerics.Tape
module Tape_check = Umf_numerics.Tape_check

(* Markov chain substrate *)
module Generator = Umf_ctmc.Generator

module Ctmc_sparse = Umf_ctmc.Sparse
[@@deprecated
  "use Ctmc.Engine (spec front door) or Ctmc.Sparse (kernel); removed two \
   releases after 0.8"]

module Ctmc_path = Umf_ctmc.Path
module Ctmc_simulate = Umf_ctmc.Simulate

module Transient = Umf_ctmc.Transient
[@@deprecated
  "use Ctmc.Engine.transient/distribution (spec front door) or \
   Ctmc.Transient (kernel); removed two releases after 0.8"]

module Stationary = Umf_ctmc.Stationary

module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
[@@deprecated
  "use Ctmc.Engine.envelope (spec front door) or Ctmc.Imprecise (kernel); \
   removed two releases after 0.8"]

module Interval_dtmc = Umf_ctmc.Interval_dtmc

(* population models and their simulation *)
module Population = Umf_meanfield.Population
module Ctmc_of_population = Umf_meanfield.Ctmc_of_population
module Model = Umf_meanfield.Model
module Policy = Umf_meanfield.Policy
module Ssa = Umf_meanfield.Ssa
module Convergence = Umf_meanfield.Convergence

(** The finite-N CTMC engine: {!Ctmc.Engine} is the one spec-record
    front door (transient expectations, scenario envelopes, stationary
    distributions — all with certified escaped-mass accounting under
    adaptive truncation); the submodules next to it are its kernels for
    callers that build generators by hand. *)
module Ctmc : sig
  module Engine = Umf_meanfield.Engine
  module Generator = Umf_ctmc.Generator
  module Sparse = Umf_ctmc.Sparse
  module Transient = Umf_ctmc.Transient
  module Stationary = Umf_ctmc.Stationary
  module Imprecise = Umf_ctmc.Imprecise_ctmc
end

(* static model analysis *)
module Lint = Umf_lint.Lint

(* multicore execution engine *)
module Runtime = Umf_runtime.Runtime

(* tracing & metrics (zero-cost when off) *)
module Obs = Umf_obs.Obs

(* differential-inclusion mean-field limits *)
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Scenario = Umf_diffinc.Scenario
module Reach = Umf_diffinc.Reach
module Template = Umf_diffinc.Template
module Birkhoff = Umf_diffinc.Birkhoff
module Certified = Umf_diffinc.Certified
module Safety = Umf_diffinc.Safety

(* the paper's case studies *)
module Sir = Umf_models.Sir
module Gps = Umf_models.Gps
module Bikesharing = Umf_models.Bikesharing
module Sis = Umf_models.Sis
module Cholera = Umf_models.Cholera
module Loadbalance = Umf_models.Loadbalance
module Bikenetwork = Umf_models.Bikenetwork
module Registry = Umf_models.Registry

(** High-level end-to-end analyses.

    Every entry point consumes an {!Analysis.spec}: one record naming
    the model, the scenario, the θ-box override, the horizon, the
    solver tolerances and an optional {!Runtime.Pool} for multicore
    execution.  Build one with {!Analysis.spec} and reuse it across
    analyses; results come back as named records. *)
module Analysis : sig
  type scenario =
    | Imprecise  (** θ_t may vary arbitrarily in Θ over time. *)
    | Uncertain of int
        (** θ constant but unknown; the payload is the per-axis grid
            resolution used to sweep Θ. *)

  type spec = {
    model : Model.t;
    scenario : scenario;  (** Default [Imprecise]. *)
    theta : Optim.Box.t option;
        (** Overrides the model's parameter box when given. *)
    horizon : float;  (** Default 10. *)
    steps : int;  (** Pontryagin grid intervals; default 400. *)
    dt : float;  (** Fixed-step integrator step; default 1e-2. *)
    tol : float;  (** Solver convergence tolerance; default 1e-4. *)
    pool : Runtime.Pool.t option;
        (** Fan parallel selections of the inclusion out across these
            domains; [None] (default) runs sequentially.  Results are
            bit-identical for any pool size. *)
    obs : Obs.t;
        (** Observation context every analysis threads into its
            solvers; default {!Obs.off}.  When enabled, solver spans,
            counters and gauges reach the context's sinks, the spec's
            pool reports its sections to it for the duration of each
            call, and each result record carries a {!metrics} summary.
            When off, instrumentation costs nothing and results are
            bit-identical. *)
  }

  val spec :
    ?scenario:scenario ->
    ?theta:Optim.Box.t ->
    ?horizon:float ->
    ?steps:int ->
    ?dt:float ->
    ?tol:float ->
    ?pool:Runtime.Pool.t ->
    ?obs:Obs.t ->
    Model.t ->
    spec
  (** Smart constructor with the defaults above.
      @raise Invalid_argument on non-positive horizon/steps/dt or an
      [Uncertain] grid below 2. *)

  val di_of_spec : spec -> Di.t
  (** The mean-field differential inclusion the spec denotes (with the
      θ-box override applied). *)

  type metrics = {
    wall : float;
        (** Wall seconds of the whole analysis call (0 when obs is
            off). *)
    spans : (string * Obs.Agg.span_stat) list;
        (** Per-span rows (calls, total and max wall seconds) recorded
            during this call, sorted by name. *)
    counters : (string * float) list;  (** Counter sums, sorted. *)
  }
  (** Per-call solver-effort summary attached to every result record.
      Populated only when [spec.obs] is enabled; equals {!no_metrics}
      otherwise, so comparing the {e numeric} payload of results is
      meaningful across observed and unobserved runs. *)

  val no_metrics : metrics

  val metric : metrics -> string -> float option
  (** Counter lookup, e.g. [metric m "pontryagin.sweeps"]. *)

  type bounds = {
    coord : int;
    times : float array;
    lower : float array;
    upper : float array;
    cert : Cert.t;
        (** The endpoint enclosure [lower, upper] at the last time with
            the spec's solver tolerances on the ledger (grid pitch on
            the discretisation line, [tol] on the optimiser line) — a
            tolerance-level annotation, not an a-priori bound. *)
    metrics : metrics;
  }
  (** Reachability envelope of one coordinate: at [times.(i)] the
      variable lies in [lower.(i), upper.(i)]. *)

  val transient_bounds :
    ?times:float array -> spec -> x0:Vec.t -> coord:int -> bounds
  (** Lower/upper bounds on coordinate [coord] at each sample time
      ([times] defaults to 11 points on [0, horizon]).  Imprecise uses
      the Pontryagin solver on the mean-field differential inclusion;
      [Uncertain g] sweeps constant parameters on a [g]-per-axis
      grid.  Both fan out over [spec.pool] when present. *)

  val hull_bounds : ?clip:Optim.Box.t -> spec -> x0:Vec.t -> Hull.traj
  (** The differential-hull over-approximation (fast, conservative). *)

  type region = {
    birkhoff : Birkhoff.result;
    area : float;
    converged : bool;  (** [Birkhoff.converged]. *)
    metrics : metrics;
  }

  val steady_state_region_2d : ?x_start:Vec.t -> spec -> region
  (** The Birkhoff centre of a 2-variable model (steady-state region of
      the imprecise scenario).  [x_start] defaults to the
      all-coordinates-0.5 seed. *)

  type cloud = { times : float array; states : Vec.t array; metrics : metrics }
  (** Sampled states of the finite-N system, [states.(i)] at
      [times.(i)]. *)

  val stationary_cloud :
    spec ->
    n:int ->
    x0:Vec.t ->
    policy:Policy.t ->
    warmup:float ->
    samples:int ->
    seed:int ->
    cloud
  (** Stationary-regime states of the size-N stochastic system under a
      policy, sampled at regular intervals after [warmup] up to
      [spec.horizon]. *)

  type inclusion = {
    total : int;
    inside : int;  (** Number of states within the [tol] slack. *)
    fraction : float;  (** [inside / total]. *)
    strict : float;  (** Fraction with no boundary slack. *)
    metrics : metrics;
  }

  val inclusion_fraction :
    ?tol:float -> spec -> region -> Vec.t array -> inclusion
  (** Fraction of 2-D sample states inside a Birkhoff region, up to a
      boundary slack [tol] (the convergence diagnostic of Figure 6 —
      policies like θ1 ride exactly along the region boundary, so a
      small slack separates genuine escapes from boundary hugging). *)

  type finite_n = {
    n : int;  (** Population size. *)
    states : int;  (** Enumerated lattice states. *)
    times : float array;
    mean : float array;
        (** Exact E[h(X_t)] under θ = the box midpoint. *)
    lower : float array;
    upper : float array;
        (** Envelope of E[h(X_t)] over the θ-box (see below). *)
    metrics : metrics;
  }
  (** Exact finite-N transient envelope of a state reward — the ground
      truth the mean-field bounds of {!transient_bounds} approximate
      (Theorem 1: for large N the exact values fall inside the
      differential-inclusion bounds). *)

  val finite_n_transient :
    ?times:float array ->
    ?epsilon:float ->
    spec ->
    n:int ->
    reward:(Vec.t -> float) ->
    finite_n
  [@@deprecated
    "use Ctmc.Engine.envelope with an Engine spec (it adds adaptive \
     truncation with certified escaped-mass bounds and richer result \
     records); removed two releases after 0.8"]
  (** Thin wrapper over {!Ctmc.Engine.envelope} with a
      [Ctmc.Engine.Lattice] reward, kept for source compatibility: same
      lattice enumeration, certified uniformisation sweeps
      ([epsilon] is the mass tolerance, [times] defaults to 11 points
      on [0, horizon]) and scenario envelopes ([Uncertain g] θ-grid
      sweeps; [Imprecise] backward sweeps, rates affine in θ required),
      fanned out over [spec.pool] bit-identically.

      @raise Invalid_argument in the imprecise scenario on a model not
      affine in θ.
      @raise Failure if the lattice exceeds the enumeration budget. *)

  type exceedance = { mean : float; worst : float; metrics : metrics }

  val mean_exceedance : spec -> region -> Vec.t array -> exceedance
  (** Average (and worst-case) distance by which sample states stick
      out of the region (0 when all inside); the mean converges to 0
      as N → ∞ by Theorem 3. *)

  type first_passage = {
    n : int;  (** Population size. *)
    states : int;  (** Retained lattice states. *)
    times : float array;
    hit_lower : float array;
        (** [hit_lower.(j)] <= P(τ <= times.(j)) over every adapted
            θ-process, sweep error already folded in. *)
    hit_upper : float array;
    mfpt_lower : float;
        (** Certified bracket of the truncated mean first-passage time
            E[min(τ, T)], T the last query time. *)
    mfpt_upper : float;
    cert : Cert.t;
        (** The MFPT bracket as one certificate: adaptive-sweep
            discretisation and rounding budgets on their ledger lines
            (state-space truncation is priced directly into the hitting
            bounds through the absorbing sink's 0/1 reward). *)
    metrics : metrics;
  }

  val first_passage :
    ?times:float array ->
    ?epsilon:float ->
    ?max_states:int ->
    spec ->
    n:int ->
    target:(Vec.t -> bool) ->
    first_passage
  (** Certified first-passage bounds for the finite-N chain ("P(queue
      overflows before t) <= ?"): hitting-probability lower/upper
      bounds for the density-level [target] set at each query time
      ([times] defaults to 101 points on [0, horizon]) and a
      mean-first-passage-time bracket, via adaptive imprecise backward
      sweeps ({!Ctmc.Imprecise.adaptive_series}, target discretisation
      error [epsilon], default 1e-3) on the chain with the target set
      made absorbing.  The state space is enumerated with [`Adaptive]
      truncation at [max_states] (default 20_000); escaped mass is
      priced at worst case (never hits for the lower bound, hits
      immediately for the upper), so the bounds stay certified outer
      brackets on every registry model, including ones whose lattice
      must truncate.
      @raise Invalid_argument on a model not affine in θ, [n < 1],
      [epsilon <= 0] or empty [times]. *)
end
