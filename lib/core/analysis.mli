(** High-level end-to-end analyses.

    Every entry point consumes an {!spec}: one record naming the
    model, the scenario, the θ-box override, the horizon, the solver
    tolerances and an optional {!Umf_runtime.Runtime.Pool} for
    multicore execution.  Build one with {!val-spec} and reuse it
    across analyses; results come back as named records.

    This compilation unit is re-exported unchanged as [Umf.Analysis];
    it stands alone so the serving layers (the NDJSON {!Codec}, the
    [umf_serve] daemon) can consume the spec API without the umbrella
    module. *)

type scenario =
  | Imprecise  (** θ_t may vary arbitrarily in Θ over time. *)
  | Uncertain of int
      (** θ constant but unknown; the payload is the per-axis grid
          resolution used to sweep Θ. *)

type spec = {
  model : Umf_meanfield.Model.t;
  scenario : scenario;  (** Default [Imprecise]. *)
  theta : Umf_numerics.Optim.Box.t option;
      (** Overrides the model's parameter box when given. *)
  horizon : float;  (** Default 10. *)
  steps : int;  (** Pontryagin grid intervals; default 400. *)
  dt : float;  (** Fixed-step integrator step; default 1e-2. *)
  tol : float;  (** Solver convergence tolerance; default 1e-4. *)
  pool : Umf_runtime.Runtime.Pool.t option;
      (** Fan parallel selections of the inclusion out across these
          domains; [None] (default) runs sequentially.  Results are
          bit-identical for any pool size. *)
  obs : Umf_obs.Obs.t;
      (** Observation context every analysis threads into its
          solvers; default [Obs.off].  When enabled, solver spans,
          counters and gauges reach the context's sinks, the spec's
          pool reports its sections to it for the duration of each
          call, and each result record carries a {!metrics} summary.
          When off, instrumentation costs nothing and results are
          bit-identical. *)
}

val spec :
  ?scenario:scenario ->
  ?theta:Umf_numerics.Optim.Box.t ->
  ?horizon:float ->
  ?steps:int ->
  ?dt:float ->
  ?tol:float ->
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  Umf_meanfield.Model.t ->
  spec
(** Smart constructor with the defaults above.
    @raise Invalid_argument on non-positive horizon/steps/dt or an
    [Uncertain] grid below 2. *)

val di_of_spec : spec -> Umf_diffinc.Di.t
(** The mean-field differential inclusion the spec denotes (with the
    θ-box override applied). *)

type metrics = {
  wall : float;
      (** Wall seconds of the whole analysis call (0 when obs is
          off). *)
  spans : (string * Umf_obs.Obs.Agg.span_stat) list;
      (** Per-span rows (calls, total and max wall seconds) recorded
          during this call, sorted by name. *)
  counters : (string * float) list;  (** Counter sums, sorted. *)
}
(** Per-call solver-effort summary attached to every result record.
    Populated only when [spec.obs] is enabled; equals {!no_metrics}
    otherwise, so comparing the {e numeric} payload of results is
    meaningful across observed and unobserved runs. *)

val no_metrics : metrics

val metric : metrics -> string -> float option
(** Counter lookup, e.g. [metric m "pontryagin.sweeps"]. *)

type bounds = {
  coord : int;
  times : float array;
  lower : float array;
  upper : float array;
  cert : Umf_numerics.Cert.t;
      (** The endpoint enclosure [lower, upper] at the last time with
          the spec's solver tolerances on the ledger (grid pitch on
          the discretisation line, [tol] on the optimiser line) — a
          tolerance-level annotation, not an a-priori bound. *)
  metrics : metrics;
}
(** Reachability envelope of one coordinate: at [times.(i)] the
    variable lies in [lower.(i), upper.(i)]. *)

val transient_bounds :
  ?times:float array -> spec -> x0:Umf_numerics.Vec.t -> coord:int -> bounds
(** Lower/upper bounds on coordinate [coord] at each sample time
    ([times] defaults to 11 points on [0, horizon]).  Imprecise uses
    the Pontryagin solver on the mean-field differential inclusion;
    [Uncertain g] sweeps constant parameters on a [g]-per-axis
    grid.  Both fan out over [spec.pool] when present. *)

val hull_bounds :
  ?clip:Umf_numerics.Optim.Box.t ->
  spec ->
  x0:Umf_numerics.Vec.t ->
  Umf_diffinc.Hull.traj
(** The differential-hull over-approximation (fast, conservative). *)

type region = {
  birkhoff : Umf_diffinc.Birkhoff.result;
  area : float;
  converged : bool;  (** [Birkhoff.converged]. *)
  metrics : metrics;
}

val steady_state_region_2d : ?x_start:Umf_numerics.Vec.t -> spec -> region
(** The Birkhoff centre of a 2-variable model (steady-state region of
    the imprecise scenario).  [x_start] defaults to the
    all-coordinates-0.5 seed. *)

type cloud = {
  times : float array;
  states : Umf_numerics.Vec.t array;
  metrics : metrics;
}
(** Sampled states of the finite-N system, [states.(i)] at
    [times.(i)]. *)

val stationary_cloud :
  spec ->
  n:int ->
  x0:Umf_numerics.Vec.t ->
  policy:Umf_meanfield.Policy.t ->
  warmup:float ->
  samples:int ->
  seed:int ->
  cloud
(** Stationary-regime states of the size-N stochastic system under a
    policy, sampled at regular intervals after [warmup] up to
    [spec.horizon]. *)

type inclusion = {
  total : int;
  inside : int;  (** Number of states within the [tol] slack. *)
  fraction : float;  (** [inside / total]. *)
  strict : float;  (** Fraction with no boundary slack. *)
  metrics : metrics;
}

val inclusion_fraction :
  ?tol:float -> spec -> region -> Umf_numerics.Vec.t array -> inclusion
(** Fraction of 2-D sample states inside a Birkhoff region, up to a
    boundary slack [tol] (the convergence diagnostic of Figure 6 —
    policies like θ1 ride exactly along the region boundary, so a
    small slack separates genuine escapes from boundary hugging). *)

type finite_n = {
  n : int;  (** Population size. *)
  states : int;  (** Enumerated lattice states. *)
  times : float array;
  mean : float array;
      (** Exact E[h(X_t)] under θ = the box midpoint. *)
  lower : float array;
  upper : float array;
      (** Envelope of E[h(X_t)] over the θ-box (see below). *)
  metrics : metrics;
}
(** Exact finite-N transient envelope of a state reward — the ground
    truth the mean-field bounds of {!transient_bounds} approximate
    (Theorem 1: for large N the exact values fall inside the
    differential-inclusion bounds). *)

val finite_n_transient :
  ?times:float array ->
  ?epsilon:float ->
  spec ->
  n:int ->
  reward:(Umf_numerics.Vec.t -> float) ->
  finite_n
[@@deprecated
  "use Ctmc.Engine.envelope with an Engine spec (it adds adaptive \
   truncation with certified escaped-mass bounds and richer result \
   records); removed two releases after 0.8"]
(** Thin wrapper over [Ctmc.Engine.envelope] with a
    [Ctmc.Engine.Lattice] reward, kept for source compatibility: same
    lattice enumeration, certified uniformisation sweeps
    ([epsilon] is the mass tolerance, [times] defaults to 11 points
    on [0, horizon]) and scenario envelopes ([Uncertain g] θ-grid
    sweeps; [Imprecise] backward sweeps, rates affine in θ required),
    fanned out over [spec.pool] bit-identically.

    @raise Invalid_argument in the imprecise scenario on a model not
    affine in θ.
    @raise Failure if the lattice exceeds the enumeration budget. *)

type exceedance = { mean : float; worst : float; metrics : metrics }

val mean_exceedance :
  spec -> region -> Umf_numerics.Vec.t array -> exceedance
(** Average (and worst-case) distance by which sample states stick
    out of the region (0 when all inside); the mean converges to 0
    as N → ∞ by Theorem 3. *)

type first_passage = {
  n : int;  (** Population size. *)
  states : int;  (** Retained lattice states. *)
  times : float array;
  hit_lower : float array;
      (** [hit_lower.(j)] <= P(τ <= times.(j)) over every adapted
          θ-process, sweep error already folded in. *)
  hit_upper : float array;
  mfpt_lower : float;
      (** Certified bracket of the truncated mean first-passage time
          E[min(τ, T)], T the last query time. *)
  mfpt_upper : float;
  cert : Umf_numerics.Cert.t;
      (** The MFPT bracket as one certificate: adaptive-sweep
          discretisation and rounding budgets on their ledger lines
          (state-space truncation is priced directly into the hitting
          bounds through the absorbing sink's 0/1 reward). *)
  metrics : metrics;
}

val first_passage :
  ?times:float array ->
  ?epsilon:float ->
  ?max_states:int ->
  spec ->
  n:int ->
  target:(Umf_numerics.Vec.t -> bool) ->
  first_passage
(** Certified first-passage bounds for the finite-N chain ("P(queue
    overflows before t) <= ?"): hitting-probability lower/upper
    bounds for the density-level [target] set at each query time
    ([times] defaults to 101 points on [0, horizon]) and a
    mean-first-passage-time bracket, via adaptive imprecise backward
    sweeps ([Ctmc.Imprecise.adaptive_series], target discretisation
    error [epsilon], default 1e-3) on the chain with the target set
    made absorbing.  The state space is enumerated with [`Adaptive]
    truncation at [max_states] (default 20_000); escaped mass is
    priced at worst case (never hits for the lower bound, hits
    immediately for the upper), so the bounds stay certified outer
    brackets on every registry model, including ones whose lattice
    must truncate.
    @raise Invalid_argument on a model not affine in θ, [n < 1],
    [epsilon <= 0] or empty [times]. *)
