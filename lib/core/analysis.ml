(* High-level end-to-end analyses over one spec record.  This module
   used to live inside Umf; it is its own compilation unit so that
   sibling layers (the NDJSON Codec, the serve daemon) can consume the
   spec API without going through the umbrella module.  Umf re-exports
   it unchanged as [Umf.Analysis]. *)

module Vec = Umf_numerics.Vec
module Interval = Umf_numerics.Interval
module Cert = Umf_numerics.Cert
module Optim = Umf_numerics.Optim
module Geometry = Umf_numerics.Geometry
module Rng = Umf_numerics.Rng
module Model = Umf_meanfield.Model
module Ssa = Umf_meanfield.Ssa
module Ctmc_of_population = Umf_meanfield.Ctmc_of_population
module Engine = Umf_meanfield.Engine
module Imprecise = Umf_ctmc.Imprecise_ctmc
module Runtime = Umf_runtime.Runtime
module Obs = Umf_obs.Obs
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Birkhoff = Umf_diffinc.Birkhoff

type scenario = Imprecise | Uncertain of int

type spec = {
  model : Model.t;
  scenario : scenario;
  theta : Optim.Box.t option;
  horizon : float;
  steps : int;
  dt : float;
  tol : float;
  pool : Runtime.Pool.t option;
  obs : Obs.t;
}

let spec ?(scenario = Imprecise) ?theta ?(horizon = 10.) ?(steps = 400)
    ?(dt = 1e-2) ?(tol = 1e-4) ?pool ?(obs = Obs.off) model =
  if horizon <= 0. then invalid_arg "Analysis.spec: need horizon > 0";
  if steps < 1 then invalid_arg "Analysis.spec: need steps >= 1";
  if dt <= 0. then invalid_arg "Analysis.spec: need dt > 0";
  (match scenario with
  | Uncertain g when g < 2 -> invalid_arg "Analysis.spec: need grid >= 2"
  | Uncertain _ | Imprecise -> ());
  { model; scenario; theta; horizon; steps; dt; tol; pool; obs }

let di_of_spec s =
  let di = Di.of_model s.model in
  match s.theta with None -> di | Some box -> { di with Di.theta = box }

type metrics = {
  wall : float;
  spans : (string * Obs.Agg.span_stat) list;
  counters : (string * float) list;
}

let no_metrics = { wall = 0.; spans = []; counters = [] }

let metric m name = try Some (List.assoc name m.counters) with Not_found -> None

(* Run one analysis under the spec's observation context, collecting
   a per-call metrics summary in an ephemeral Agg layered over the
   caller's sinks.  When the spec observes nothing this degenerates
   to a bare call: no registry, no clock reads, no allocation — the
   zero-cost-when-off contract. *)
let instrumented s name f =
  if not (Obs.enabled s.obs) then (f s.obs, no_metrics)
  else begin
    let agg = Obs.Agg.create () in
    let obs = Obs.with_agg s.obs agg in
    (match s.pool with Some p -> Runtime.Pool.set_obs p obs | None -> ());
    let restore () =
      match s.pool with Some p -> Runtime.Pool.set_obs p s.obs | None -> ()
    in
    let x =
      Fun.protect ~finally:restore (fun () ->
          let sp = Obs.span_begin obs name in
          let x = f obs in
          Obs.span_end obs sp;
          x)
    in
    let wall =
      match Obs.Agg.span_stat agg name with
      | Some st -> st.Obs.Agg.total
      | None -> 0.
    in
    ( x,
      {
        wall;
        spans = Obs.Agg.span_stats agg;
        counters = Obs.Agg.counters agg;
      } )
  end

type bounds = {
  coord : int;
  times : float array;
  lower : float array;
  upper : float array;
  cert : Cert.t;
  metrics : metrics;
}

(* Report a result's error ledger as Obs gauges so traced runs carry
   the budget next to the solver spans. *)
let gauge_cert obs name (c : Cert.t) =
  if Obs.enabled obs then
    List.iter
      (fun (line, v) -> Obs.gauge obs (name ^ ".cert." ^ line) v)
      (Cert.lines c)

let transient_bounds ?times s ~x0 ~coord =
  let times =
    match times with Some ts -> ts | None -> Vec.linspace 0. s.horizon 11
  in
  let di = di_of_spec s in
  let (pairs, cert), metrics =
    instrumented s "analysis.transient_bounds" (fun obs ->
        let pairs =
          match s.scenario with
          | Imprecise ->
              Pontryagin.bound_series ?pool:s.pool ~steps:s.steps ~tol:s.tol
                ~obs di ~x0 ~coord ~times
          | Uncertain grid ->
              let lower, upper =
                Uncertain.transient_envelope ?pool:s.pool ~obs ~dt:s.dt ~grid
                  di ~x0 ~times
              in
              Array.init (Array.length times) (fun i ->
                  (lower.(i).(coord), upper.(i).(coord)))
        in
        let last = Array.length pairs - 1 in
        let lo, hi = pairs.(last) in
        (* the endpoint enclosure with the spec's solver tolerances on
           the ledger: a tolerance-level annotation (what the solver
           aimed for), not an a-priori bound like the imprecise-sweep
           certificates *)
        let cert =
          Cert.of_interval
            ~budget:
              (Cert.budget
                 ~discretisation:
                   (match s.scenario with
                   | Imprecise -> s.horizon /. float_of_int s.steps
                   | Uncertain _ -> s.dt)
                 ~optimiser:s.tol ())
            (Interval.make (Float.min lo hi) (Float.max lo hi))
        in
        gauge_cert obs "analysis.transient_bounds" cert;
        (pairs, cert))
  in
  {
    coord;
    times;
    lower = Array.map fst pairs;
    upper = Array.map snd pairs;
    cert;
    metrics;
  }

let hull_bounds ?clip s ~x0 =
  fst
    (instrumented s "analysis.hull_bounds" (fun obs ->
         Hull.bounds ?clip ~obs (di_of_spec s) ~x0 ~horizon:s.horizon
           ~dt:s.dt))

type region = {
  birkhoff : Birkhoff.result;
  area : float;
  converged : bool;
  metrics : metrics;
}

let steady_state_region_2d ?x_start s =
  let x_start =
    match x_start with
    | Some x -> x
    | None -> Vec.create (Model.dim s.model) 0.5
  in
  let b, metrics =
    instrumented s "analysis.steady_state_region_2d" (fun obs ->
        Birkhoff.compute ~obs (di_of_spec s) ~x_start)
  in
  {
    birkhoff = b;
    area = Birkhoff.area b;
    converged = Birkhoff.converged b;
    metrics;
  }

type cloud = { times : float array; states : Vec.t array; metrics : metrics }

let stationary_cloud s ~n ~x0 ~policy ~warmup ~samples ~seed =
  if samples <= 0 then invalid_arg "Analysis.stationary_cloud: samples <= 0";
  if warmup >= s.horizon then
    invalid_arg "Analysis.stationary_cloud: warmup >= horizon";
  let times =
    Array.init samples (fun i ->
        warmup
        +. (s.horizon -. warmup)
           *. float_of_int (i + 1)
           /. float_of_int samples)
  in
  let states, metrics =
    instrumented s "analysis.stationary_cloud" (fun obs ->
        Ssa.sampled ~obs (Model.population s.model) ~n ~x0 ~policy ~times
          (Rng.create seed))
  in
  { times; states; metrics }

type inclusion = {
  total : int;
  inside : int;  (** Number of states within the [tol] slack. *)
  fraction : float;
  strict : float;  (** Fraction with no boundary slack. *)
  metrics : metrics;
}

(* chunked fold over states: per-chunk partials with a FIXED chunk
   size, combined in chunk order — the same association whether the
   partials are computed here or on pool workers, so pool presence
   and domain count never change a single bit of the result *)
let chunked_fold ?pool ~per_state ~combine ~init states =
  let total = Array.length states in
  let chunk = 1024 in
  if total <= chunk then Array.fold_left per_state init states
  else begin
    let n_chunks = (total + chunk - 1) / chunk in
    let partial ci =
      let lo = ci * chunk in
      let hi = Stdlib.min total (lo + chunk) in
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := per_state !acc states.(i)
      done;
      !acc
    in
    let partials =
      match pool with
      | Some p ->
          Runtime.Pool.parallel_map ~stage:"analysis-fold" ~chunk:1 p
            partial
            (Array.init n_chunks Fun.id)
      | None -> Array.init n_chunks partial
    in
    Array.fold_left combine init partials
  end

(* shared cores: the spec entry points wrap these in [instrumented] *)
let inclusion_counts ?pool ?tol b states =
  let count (slack, strict) x =
    let p = (x.(0), x.(1)) in
    ( (slack + if Birkhoff.contains ?tol b p then 1 else 0),
      strict + if Birkhoff.contains b p then 1 else 0 )
  in
  chunked_fold ?pool states ~init:(0, 0) ~per_state:count
    ~combine:(fun (a, b) (c, d) -> (a + c, b + d))

let exceedance_stats ?pool polygon states =
  let step (acc, worst) x =
    let d = Geometry.violation_depth (x.(0), x.(1)) polygon in
    (acc +. d, Float.max worst d)
  in
  chunked_fold ?pool states ~init:(0., 0.) ~per_state:step
    ~combine:(fun (a, w) (a', w') -> (a +. a', Float.max w w'))

let inclusion_fraction ?tol s region states =
  if Array.length states = 0 then
    invalid_arg "Analysis.inclusion_fraction: no states";
  let (inside, strict_inside), metrics =
    instrumented s "analysis.inclusion_fraction" (fun _obs ->
        inclusion_counts ?pool:s.pool ?tol region.birkhoff states)
  in
  let total = Array.length states in
  {
    total;
    inside;
    fraction = float_of_int inside /. float_of_int total;
    strict = float_of_int strict_inside /. float_of_int total;
    metrics;
  }

type finite_n = {
  n : int;
  states : int;
  times : float array;
  mean : float array;
  lower : float array;
  upper : float array;
  metrics : metrics;
}

(* deprecated wrapper: the whole pipeline now lives behind
   Ctmc.Engine.envelope (the Lattice reward reproduces the historical
   reward-closure semantics, whose range was never declared) *)
let finite_n_transient ?times ?epsilon s ~n ~reward =
  let scenario =
    match s.scenario with
    | Imprecise -> Engine.Imprecise
    | Uncertain g -> Engine.Uncertain g
  in
  let env, metrics =
    instrumented s "analysis.finite_n_transient" (fun obs ->
        Engine.envelope
          (Engine.spec ~scenario ?theta:s.theta ~horizon:s.horizon ?times
             ?epsilon ~steps:s.steps ?pool:s.pool ~obs ~n s.model)
          ~reward:(Engine.Lattice reward))
  in
  {
    n;
    states = env.Engine.states;
    times = env.times;
    mean = env.mean;
    lower = env.lower;
    upper = env.upper;
    metrics;
  }

type exceedance = { mean : float; worst : float; metrics : metrics }

let mean_exceedance s region states =
  if Array.length states = 0 then
    invalid_arg "Analysis.mean_exceedance: no states";
  let (acc, worst), metrics =
    instrumented s "analysis.mean_exceedance" (fun _obs ->
        exceedance_stats ?pool:s.pool region.birkhoff.Birkhoff.polygon
          states)
  in
  { mean = acc /. float_of_int (Array.length states); worst; metrics }

type first_passage = {
  n : int;
  states : int;
  times : float array;
  hit_lower : float array;
  hit_upper : float array;
  mfpt_lower : float;
  mfpt_upper : float;
  cert : Cert.t;
  metrics : metrics;
}

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

(* Certified first-passage bounds for the finite-N chain via the
   imprecise engine: make the target set (and any truncation sink)
   absorbing, then the hitting probability P(τ <= t) equals
   P(X_t ∈ target) on the absorbed chain, which the adaptive backward
   sweeps bound from both sides over every adapted θ-process.  The
   sink reward is pinned at 0 (lower) / 1 (upper) so escaped mass is
   priced at worst case; each sweep's certified discretisation and
   rounding error is folded into the hitting bounds before anything
   else consumes them.  The truncated mean first-passage time
   E[min(τ, T)] = T − ∫₀ᵀ P(τ <= s) ds is then bracketed by monotone
   Riemann sums (P(τ <= ·) is nondecreasing): left endpoints of the
   lower bounds under-integrate, right endpoints of the upper bounds
   over-integrate. *)
let first_passage ?times ?(epsilon = 1e-3) ?(max_states = 20_000) s ~n
    ~target =
  if n < 1 then invalid_arg "Analysis.first_passage: need n >= 1";
  if not (epsilon > 0.) then
    invalid_arg "Analysis.first_passage: need epsilon > 0";
  if not (Model.affine_in_theta s.model) then
    invalid_arg
      "Analysis.first_passage: imprecise finite-N bounds need rates affine \
       in theta (vertex extremisation is only exact there)";
  let times =
    match times with
    | Some ts ->
        if Array.length ts = 0 then
          invalid_arg "Analysis.first_passage: empty times";
        ts
    | None -> Vec.linspace 0. s.horizon 101
  in
  let box =
    match s.theta with Some b -> b | None -> Model.theta s.model
  in
  let pop = Model.population s.model in
  let result, metrics =
    instrumented s "analysis.first_passage" (fun obs ->
        let sp =
          Ctmc_of_population.state_space ~obs ~theta:box
            ~clip:(Model.clip s.model) ~max_states ~truncation:`Adaptive pop
            ~n ~x0:(Model.x0 s.model)
        in
        let states = Ctmc_of_population.n_states sp in
        let ind =
          Ctmc_of_population.reward sp (fun x ->
              if target x then 1. else 0.)
        in
        let im = Ctmc_of_population.imprecise ~theta:box sp pop in
        let has_sink = Imprecise.n_states im > states in
        let im =
          Imprecise.absorbing im ~target:(fun i ->
              i < states && ind.(i) = 1.)
        in
        let extend sink_value =
          if has_sink then Array.append ind [| sink_value |] else ind
        in
        let x0i = Ctmc_of_population.x0_index sp in
        let lo =
          Imprecise.adaptive_series ?pool:s.pool ~obs ~epsilon
            ~sense:`Lower im ~h:(extend 0.) ~times
        in
        let hi =
          Imprecise.adaptive_series ?pool:s.pool ~obs ~epsilon
            ~sense:`Upper im ~h:(extend 1.) ~times
        in
        let nt = Array.length times in
        let hit_lower =
          Array.init nt (fun j ->
              clamp01
                (lo.Imprecise.values.(j).(x0i)
                -. lo.eps.(j) -. lo.rounding.(j)))
        in
        let hit_upper =
          Array.init nt (fun j ->
              clamp01
                (hi.Imprecise.values.(j).(x0i)
                +. hi.eps.(j) +. hi.rounding.(j)))
        in
        (* P(τ <= ·) is nondecreasing, so the running max of the lower
           bounds (and, backwards, the running min of the upper ones)
           is still a sound bracket — it undoes the drift of the
           accumulating sweep budget at late times *)
        for j = 1 to nt - 1 do
          hit_lower.(j) <- Float.max hit_lower.(j) hit_lower.(j - 1)
        done;
        for j = nt - 2 downto 0 do
          hit_upper.(j) <- Float.min hit_upper.(j) hit_upper.(j + 1)
        done;
        let horizon = times.(nt - 1) in
        (* ∫₀ᵀ P: the leading [0, times.(0)] segment contributes 0 to
           the lower sum and t₀·hit_upper.(0) to the upper one *)
        let int_lo = ref 0. and int_hi = ref (times.(0) *. hit_upper.(0)) in
        for j = 0 to nt - 2 do
          let dt = times.(j + 1) -. times.(j) in
          int_lo := !int_lo +. (dt *. hit_lower.(j));
          int_hi := !int_hi +. (dt *. hit_upper.(j + 1))
        done;
        let mfpt_lower = Float.max 0. (horizon -. !int_hi) in
        let mfpt_upper = Float.min horizon (horizon -. !int_lo) in
        let cert =
          Cert.of_interval
            ~budget:
              (Cert.budget
                 ~discretisation:
                   (Float.max lo.eps.(nt - 1) hi.eps.(nt - 1))
                 ~rounding:
                   (Float.max lo.rounding.(nt - 1) hi.rounding.(nt - 1))
                 ())
            (Interval.make mfpt_lower mfpt_upper)
        in
        gauge_cert obs "analysis.first_passage" cert;
        if Obs.enabled obs then
          Obs.count obs "first_passage.sweep_steps" (lo.steps + hi.steps);
        {
          n;
          states;
          times;
          hit_lower;
          hit_upper;
          mfpt_lower;
          mfpt_upper;
          cert;
          metrics = no_metrics;
        })
  in
  { result with metrics }
