(** NDJSON request/response codec over {!Analysis.spec}.

    The wire protocol of the [umf_serve] daemon: one JSON object per
    line in both directions.  This module owns everything about the
    protocol that is independent of scheduling — parsing request
    lines, content-fingerprinting a (spec, op) pair for the compiled
    result cache, evaluating an op against a spec, and rendering
    responses — so the daemon itself is pure orchestration and the
    protocol can be tested without a running server.

    {b Request schema} (fields beyond these are ignored):
    {v
{"op":"bounds","model":"sir","coord":1,
 "scenario":{"uncertain":5},          // default "imprecise"
 "theta":[[0.5,1.5],[0.3,0.7]],       // default: the model's box
 "horizon":10,"steps":400,"dt":0.01,"tol":1e-4,   // spec defaults
 "x0":[0.9,0.1],"times":[0,1,2],      // op-specific, optional
 "id":42,                             // echoed verbatim
 "deadline_ms":5000,                  // optional per-request deadline
 "cache":true}                        // default true
    v}
    Ops: ["bounds"] (coord, x0?, times?), ["hull"] (x0?), ["steady"]
    (x_start?), ["first_passage"] (n, coord, level, epsilon?,
    max_states?, times?), plus the service ops ["ping"], ["metrics"],
    ["models"] which take no model.

    {b Response schema}: [{"id":…,"ok":true,"cached":…,"wall_ms":…,
    "queue_wait_ms":…,"result":{…},"cert":{…}}] on success, and
    [{"id":…,"ok":false,"error":{"kind":…,"message":…},"cert":{…}?}]
    on failure.  Every successful analysis response carries its
    {!Umf_numerics.Cert} ledger; deadline errors carry the partial
    ledger observed before expiry.  Non-finite numbers render as JSON
    [null] (the {!Umf_obs.Obs.Json} printer's convention). *)

exception Bad_request of string
(** Raised by parsers, {!spec_of_request} and {!eval} on malformed or
    semantically invalid requests (unknown model, coord out of range,
    non-positive horizon, …).  The daemon maps it to a ["bad_request"]
    error response. *)

(** An analysis operation with its op-specific parameters ([None]s
    take the {!Analysis} defaults). *)
type op =
  | Bounds of {
      x0 : Umf_numerics.Vec.t option;
      coord : int;
      times : float array option;
    }
  | Hull_bounds of { x0 : Umf_numerics.Vec.t option }
  | Steady of { x_start : Umf_numerics.Vec.t option }
  | First_passage of {
      n : int;
      coord : int;
      level : float;  (** Target set: states with [x.(coord) >= level]. *)
      epsilon : float option;
      max_states : int option;
      times : float array option;
    }

type request = {
  id : Umf_obs.Obs.Json.t;  (** Echoed verbatim; [Null] when absent. *)
  model : string;  (** {!Umf_models.Registry} name. *)
  scenario : Analysis.scenario;
  theta : Umf_numerics.Optim.Box.t option;
  horizon : float option;
  steps : int option;
  dt : float option;
  tol : float option;
  op : op;
  deadline_ms : float option;
      (** Per-request deadline; expiry yields a structured error, not
          a dropped connection. *)
  cache : bool;  (** Whether the exact-match result cache may serve it. *)
}

(** One parsed request line: an analysis request or a service op (the
    payload is the echoed request id). *)
type parsed =
  | Analyze of request
  | Ping of Umf_obs.Obs.Json.t
  | Metrics of Umf_obs.Obs.Json.t
  | Models of Umf_obs.Obs.Json.t

val op_name : op -> string
(** The wire name ("bounds", "hull", …) — the per-endpoint metrics
    key. *)

val of_line : string -> (parsed, Umf_obs.Obs.Json.t * string) result
(** Parse one NDJSON request line.  [Error (id, msg)] carries the
    request id when one was readable, so even a malformed request gets
    a correlatable error response. *)

val spec_of_request :
  ?resolve:(string -> (Umf_meanfield.Model.t, [ `Msg of string ]) result) ->
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  request ->
  Analysis.spec
(** Resolve the model and build the effective spec (defaults applied).
    [resolve] (default {!Umf_models.Registry.find}) is how the daemon
    injects its compiled-model cache; [pool] and [obs] are the
    daemon's, not the wire's.
    @raise Bad_request on unknown models or invalid spec parameters. *)

val fingerprint : Analysis.spec -> op -> string
(** Content hash (hex) of everything the numeric answer depends on:
    the model's full content (transitions, rates, boxes — not just its
    name), the effective scenario/θ-box/horizon/steps/dt/tol, and the
    op with its parameters.  Excludes id, deadline, cache flag, pool
    and obs, none of which may change an output bit — so equal
    fingerprints may share a cached result bitwise. *)

val eval : Analysis.spec -> op -> Umf_obs.Obs.Json.t * Umf_numerics.Cert.t
(** Run one op under a spec: the result payload and its certificate
    (the result's own ledger where the analysis produces one; a
    synthesised one — per-coordinate {!Umf_numerics.Cert.join} for
    hulls, optimiser-tolerance widening for steady-state areas —
    otherwise).  @raise Bad_request on op/spec mismatches (coord or
    x0 dimension out of range). *)

val json_of_cert : Umf_numerics.Cert.t -> Umf_obs.Obs.Json.t
(** [{"lo":…,"hi":…,"vacuous":…,"budget":{…}}] with all four budget
    lines always present. *)

val ok_response :
  id:Umf_obs.Obs.Json.t ->
  cached:bool ->
  wall_ms:float ->
  queue_wait_ms:float ->
  result:Umf_obs.Obs.Json.t ->
  cert:Umf_obs.Obs.Json.t ->
  string
(** Render a success line (no trailing newline).  [result]/[cert] are
    pre-rendered JSON values so a cache hit re-emits the {e identical}
    payload bytes; timings are rounded to microsecond precision. *)

val error_response :
  ?cert:Umf_obs.Obs.Json.t ->
  id:Umf_obs.Obs.Json.t ->
  kind:string ->
  string ->
  string
(** Render an error line.  [kind] is one of ["bad_request"],
    ["deadline_exceeded"], ["overloaded"], ["internal"]; [cert]
    attaches a (possibly partial or vacuous) ledger when one was
    recovered. *)
