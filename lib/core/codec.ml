(* NDJSON request/response codec over Analysis.spec: the wire protocol
   of the umf_serve daemon lives here, next to the spec API it encodes,
   so the daemon itself only schedules.  One JSON object per line in
   both directions; requests name a registry model plus spec overrides,
   responses carry the result payload and its Cert ledger. *)

module Json = Umf_obs.Obs.Json
module Vec = Umf_numerics.Vec
module Interval = Umf_numerics.Interval
module Cert = Umf_numerics.Cert
module Optim = Umf_numerics.Optim
module Expr = Umf_numerics.Expr
module Model = Umf_meanfield.Model
module Registry = Umf_models.Registry
module Hull = Umf_diffinc.Hull

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

(* ------------------------------------------------------------------ *)
(* requests                                                           *)

type op =
  | Bounds of { x0 : Vec.t option; coord : int; times : float array option }
  | Hull_bounds of { x0 : Vec.t option }
  | Steady of { x_start : Vec.t option }
  | First_passage of {
      n : int;
      coord : int;
      level : float;
      epsilon : float option;
      max_states : int option;
      times : float array option;
    }

type request = {
  id : Json.t;
  model : string;
  scenario : Analysis.scenario;
  theta : Optim.Box.t option;
  horizon : float option;
  steps : int option;
  dt : float option;
  tol : float option;
  op : op;
  deadline_ms : float option;
  cache : bool;
}

type parsed =
  | Analyze of request
  | Ping of Json.t
  | Metrics of Json.t
  | Models of Json.t

let op_name = function
  | Bounds _ -> "bounds"
  | Hull_bounds _ -> "hull"
  | Steady _ -> "steady"
  | First_passage _ -> "first_passage"

(* field accessors: absent and JSON null are both "not given" *)
let field name j =
  match Json.member name j with Some Json.Null -> None | v -> v

let opt_num name j =
  match field name j with
  | None -> None
  | Some (Json.Num f) -> Some f
  | Some _ -> bad "field %S must be a number" name

let opt_int name j =
  match opt_num name j with
  | None -> None
  | Some f ->
      if Float.is_integer f then Some (int_of_float f)
      else bad "field %S must be an integer" name

let req_int name j =
  match opt_int name j with
  | Some i -> i
  | None -> bad "missing required integer field %S" name

let req_num name j =
  match opt_num name j with
  | Some f -> f
  | None -> bad "missing required number field %S" name

let num_list name = function
  | Json.Arr l ->
      Array.of_list
        (List.map
           (function
             | Json.Num f -> f | _ -> bad "field %S must hold numbers" name)
           l)
  | _ -> bad "field %S must be an array" name

let opt_vec name j =
  match field name j with None -> None | Some v -> Some (num_list name v)

let opt_bool ~default name j =
  match field name j with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name

let scenario_of_json j =
  match field "scenario" j with
  | None -> Analysis.Imprecise
  | Some (Json.Str "imprecise") -> Analysis.Imprecise
  | Some (Json.Str s) ->
      bad "unknown scenario %S (want \"imprecise\" or {\"uncertain\":GRID})" s
  | Some (Json.Obj _ as o) -> (
      match Json.member "uncertain" o with
      | Some (Json.Num g) when Float.is_integer g ->
          Analysis.Uncertain (int_of_float g)
      | _ -> bad "scenario object must be {\"uncertain\":GRID}")
  | Some _ -> bad "field \"scenario\" must be a string or an object"

let theta_of_json j =
  match field "theta" j with
  | None -> None
  | Some (Json.Arr rows) ->
      let iv = function
        | Json.Arr [ Json.Num lo; Json.Num hi ] -> (
            try Interval.make lo hi
            with Invalid_argument m -> bad "bad theta interval: %s" m)
        | _ -> bad "field \"theta\" must be an array of [lo, hi] pairs"
      in
      if rows = [] then bad "field \"theta\" must not be empty";
      Some (Optim.Box.of_intervals (List.map iv rows))
  | Some _ -> bad "field \"theta\" must be an array of [lo, hi] pairs"

let op_of_json j =
  match field "op" j with
  | Some (Json.Str "bounds") ->
      `Analysis
        (Bounds
           {
             x0 = opt_vec "x0" j;
             coord = (match opt_int "coord" j with Some c -> c | None -> 0);
             times = opt_vec "times" j;
           })
  | Some (Json.Str "hull") -> `Analysis (Hull_bounds { x0 = opt_vec "x0" j })
  | Some (Json.Str "steady") ->
      `Analysis (Steady { x_start = opt_vec "x_start" j })
  | Some (Json.Str "first_passage") ->
      `Analysis
        (First_passage
           {
             n = req_int "n" j;
             coord = req_int "coord" j;
             level = req_num "level" j;
             epsilon = opt_num "epsilon" j;
             max_states = opt_int "max_states" j;
             times = opt_vec "times" j;
           })
  | Some (Json.Str "ping") -> `Ping
  | Some (Json.Str "metrics") -> `Metrics
  | Some (Json.Str "models") -> `Models
  | Some (Json.Str s) -> bad "unknown op %S" s
  | Some _ -> bad "field \"op\" must be a string"
  | None -> bad "missing required field \"op\""

let request_id j =
  match Json.member "id" j with Some id -> id | None -> Json.Null

let of_line line =
  let j =
    try Ok (Json.of_string line)
    with Failure m -> Error (Json.Null, "malformed JSON: " ^ m)
  in
  match j with
  | Error _ as e -> e
  | Ok j -> (
      let id = request_id j in
      try
        match op_of_json j with
        | `Ping -> Ok (Ping id)
        | `Metrics -> Ok (Metrics id)
        | `Models -> Ok (Models id)
        | `Analysis op ->
            let model =
              match field "model" j with
              | Some (Json.Str m) -> m
              | Some _ -> bad "field \"model\" must be a string"
              | None -> bad "missing required field \"model\""
            in
            Ok
              (Analyze
                 {
                   id;
                   model;
                   scenario = scenario_of_json j;
                   theta = theta_of_json j;
                   horizon = opt_num "horizon" j;
                   steps = opt_int "steps" j;
                   dt = opt_num "dt" j;
                   tol = opt_num "tol" j;
                   op;
                   deadline_ms = opt_num "deadline_ms" j;
                   cache = opt_bool ~default:true "cache" j;
                 })
      with Bad_request m -> Error (id, m))

let spec_of_request ?(resolve = Registry.find) ?pool ?obs req =
  match resolve req.model with
  | Error (`Msg m) -> bad "%s" m
  | Ok model -> (
      try
        Analysis.spec ~scenario:req.scenario ?theta:req.theta
          ?horizon:req.horizon ?steps:req.steps ?dt:req.dt ?tol:req.tol ?pool
          ?obs model
      with Invalid_argument m -> bad "%s" m)

(* ------------------------------------------------------------------ *)
(* content fingerprints                                               *)

let pf = Printf.bprintf

let add_float b f = pf b "%.17g;" f

let add_vec b v = Array.iter (add_float b) v

let add_box b (box : Optim.Box.t) =
  add_vec b box.Optim.Box.lo;
  add_vec b box.Optim.Box.hi

let add_opt b add = function None -> pf b "-;" | Some v -> add b v

(* everything the numeric answer depends on: the model's full content
   (not just its registry name — a recompiled registry could rebind a
   name), the effective spec after defaulting, and the op with its
   parameters.  Deliberately excluded: request id, deadline, cache
   flag, pool and obs — none of them may change a single output bit. *)
let fingerprint (s : Analysis.spec) op =
  let b = Buffer.create 1024 in
  let m = s.Analysis.model in
  pf b "model:%s;" (Model.name m);
  Array.iter (pf b "%s;") (Model.var_names m);
  Array.iter (pf b "%s;") (Model.theta_names m);
  add_vec b (Model.x0 m);
  add_box b (Model.clip m);
  add_box b (Model.theta m);
  List.iter
    (fun (tr : Model.transition) ->
      pf b "tr:%s;" tr.Model.name;
      add_vec b tr.Model.change;
      pf b "%s;" (Expr.to_string tr.Model.rate))
    (Model.transitions m);
  (match s.Analysis.scenario with
  | Analysis.Imprecise -> pf b "sc:imprecise;"
  | Analysis.Uncertain g -> pf b "sc:uncertain:%d;" g);
  add_opt b add_box s.Analysis.theta;
  add_float b s.Analysis.horizon;
  pf b "%d;" s.Analysis.steps;
  add_float b s.Analysis.dt;
  add_float b s.Analysis.tol;
  (match op with
  | Bounds { x0; coord; times } ->
      pf b "op:bounds:%d;" coord;
      add_opt b add_vec x0;
      add_opt b add_vec times
  | Hull_bounds { x0 } ->
      pf b "op:hull;";
      add_opt b add_vec x0
  | Steady { x_start } ->
      pf b "op:steady;";
      add_opt b add_vec x_start
  | First_passage { n; coord; level; epsilon; max_states; times } ->
      pf b "op:first_passage:%d:%d;" n coord;
      add_float b level;
      add_opt b add_float epsilon;
      add_opt b (fun b i -> pf b "%d;" i) max_states;
      add_opt b add_vec times);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* evaluation                                                         *)

let vec_json v = Json.Arr (Array.to_list (Array.map (fun f -> Json.Num f) v))

let mat_json rows = Json.Arr (Array.to_list (Array.map vec_json rows))

let json_of_cert (c : Cert.t) =
  Json.Obj
    [
      ("lo", Json.Num c.Cert.value.Interval.lo);
      ("hi", Json.Num c.Cert.value.Interval.hi);
      ("vacuous", Json.Bool (Cert.is_vacuous c));
      ( "budget",
        Json.Obj
          [
            ("discretisation", Json.Num c.Cert.budget.Cert.discretisation);
            ("truncation", Json.Num c.Cert.budget.Cert.truncation);
            ("rounding", Json.Num c.Cert.budget.Cert.rounding);
            ("optimiser", Json.Num c.Cert.budget.Cert.optimiser);
          ] );
    ]

let x0_of spec = function
  | None -> Model.x0 spec.Analysis.model
  | Some v ->
      if Array.length v <> Model.dim spec.Analysis.model then
        bad "x0 has dimension %d, model %S has %d" (Array.length v)
          (Model.name spec.Analysis.model)
          (Model.dim spec.Analysis.model);
      v

let check_coord spec coord =
  if coord < 0 || coord >= Model.dim spec.Analysis.model then
    bad "coord %d out of range for model %S (dim %d)" coord
      (Model.name spec.Analysis.model)
      (Model.dim spec.Analysis.model)

(* Run one analysis op under the spec.  Every payload comes back with
   a top-level certificate: the result's own ledger where the analysis
   produces one, a synthesised one (join over coordinates for hulls,
   optimiser-tolerance widening for steady-state areas) otherwise. *)
let eval spec op =
  try
    match op with
    | Bounds { x0; coord; times } ->
        check_coord spec coord;
        let x0 = x0_of spec x0 in
        let b = Analysis.transient_bounds ?times spec ~x0 ~coord in
        ( Json.Obj
            [
              ("coord", Json.Num (float_of_int b.Analysis.coord));
              ("times", vec_json b.Analysis.times);
              ("lower", vec_json b.Analysis.lower);
              ("upper", vec_json b.Analysis.upper);
            ],
          b.Analysis.cert )
    | Hull_bounds { x0 } ->
        let x0 = x0_of spec x0 in
        let traj = Analysis.hull_bounds spec ~x0 in
        let certs = Hull.final_certs traj in
        let cert =
          Array.fold_left Cert.join certs.(0)
            (Array.sub certs 1 (Array.length certs - 1))
        in
        ( Json.Obj
            [
              ("times", vec_json traj.Hull.times);
              ("lower", mat_json traj.Hull.lower);
              ("upper", mat_json traj.Hull.upper);
              ( "final_certs",
                Json.Arr (Array.to_list (Array.map json_of_cert certs)) );
            ],
          cert )
    | Steady { x_start } ->
        let r = Analysis.steady_state_region_2d ?x_start spec in
        let poly =
          List.map
            (fun (x, y) -> Json.Arr [ Json.Num x; Json.Num y ])
            r.Analysis.birkhoff.Umf_diffinc.Birkhoff.polygon
        in
        ( Json.Obj
            [
              ("area", Json.Num r.Analysis.area);
              ("converged", Json.Bool r.Analysis.converged);
              ( "iterations",
                Json.Num
                  (float_of_int
                     r.Analysis.birkhoff.Umf_diffinc.Birkhoff.iterations) );
              ("polygon", Json.Arr poly);
            ],
          (* the expansion's fixpoint slack is the only budget line a
             polygon area carries *)
          Cert.widen ~optimiser:spec.Analysis.tol
            (Cert.exact r.Analysis.area) )
    | First_passage { n; coord; level; epsilon; max_states; times } ->
        check_coord spec coord;
        let target x = x.(coord) >= level in
        let fp =
          Analysis.first_passage ?times ?epsilon ?max_states spec ~n ~target
        in
        ( Json.Obj
            [
              ("n", Json.Num (float_of_int fp.Analysis.n));
              ("states", Json.Num (float_of_int fp.Analysis.states));
              ("times", vec_json fp.Analysis.times);
              ("hit_lower", vec_json fp.Analysis.hit_lower);
              ("hit_upper", vec_json fp.Analysis.hit_upper);
              ("mfpt_lower", Json.Num fp.Analysis.mfpt_lower);
              ("mfpt_upper", Json.Num fp.Analysis.mfpt_upper);
            ],
          fp.Analysis.cert )
  with Invalid_argument m -> bad "%s" m

(* ------------------------------------------------------------------ *)
(* responses                                                          *)

(* milliseconds rounded to microsecond precision: stable short JSON *)
let ms x = Json.Num (Float.round (x *. 1e3) /. 1e3)

let ok_response ~id ~cached ~wall_ms ~queue_wait_ms ~result ~cert =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool true);
         ("cached", Json.Bool cached);
         ("wall_ms", ms wall_ms);
         ("queue_wait_ms", ms queue_wait_ms);
         ("result", result);
         ("cert", cert);
       ])

let error_response ?cert ~id ~kind msg =
  Json.to_string
    (Json.Obj
       ([
          ("id", id);
          ("ok", Json.Bool false);
          ( "error",
            Json.Obj [ ("kind", Json.Str kind); ("message", Json.Str msg) ] );
        ]
       @ match cert with None -> [] | Some c -> [ ("cert", c) ]))
