open Umf_numerics
module Obs = Umf_obs.Obs

let gth g =
  let n = Generator.n_states g in
  (* work on a dense copy of the off-diagonal rates *)
  let q = Mat.to_arrays (Generator.to_dense g) in
  for i = 0 to n - 1 do
    q.(i).(i) <- 0.
  done;
  (* forward elimination: fold state k into states < k *)
  for k = n - 1 downto 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. q.(k).(j)
    done;
    if !s <= 0. then failwith "Stationary.gth: reducible chain";
    for i = 0 to k - 1 do
      let qik = q.(i).(k) /. !s in
      if qik > 0. then
        for j = 0 to k - 1 do
          if j <> i then q.(i).(j) <- q.(i).(j) +. (qik *. q.(k).(j))
        done
    done
  done;
  (* back substitution *)
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. q.(k).(j)
    done;
    let acc = ref 0. in
    for i = 0 to k - 1 do
      acc := !acc +. (pi.(i) *. q.(i).(k))
    done;
    pi.(k) <- !acc /. !s
  done;
  let total = Vec.sum pi in
  Vec.scale (1. /. total) pi

let power_iteration ?pool ?(obs = Obs.off) ?(tol = 1e-12)
    ?(max_iter = 1_000_000) g =
  let n = Generator.n_states g in
  let op = Sparse.forward g in
  let pi = ref (Vec.create n (1. /. float_of_int n)) in
  let w = ref (Vec.zeros n) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    ignore (Sparse.step_into ?pool op !pi ~into:!w : float);
    Vec.scale_into (1. /. Vec.sum !w) !w ~into:!w;
    if Vec.dist_inf !w !pi < tol then converged := true;
    let tmp = !pi in
    pi := !w;
    w := tmp
  done;
  if Obs.enabled obs then Obs.count obs "ctmc.power_iters" !iter;
  if not !converged then failwith "Stationary.power_iteration: no convergence";
  !pi
