open Umf_numerics

let run_generic rng gen_at ~x0 ~tmax =
  if tmax < 0. then invalid_arg "Simulate.run: negative horizon";
  let times = ref [ 0. ] and states = ref [ x0 ] in
  let t = ref 0. and x = ref x0 in
  let absorbed = ref false in
  while (not !absorbed) && !t < tmax do
    let g = gen_at ~t:!t ~x:!x in
    let out = Generator.outgoing g !x in
    let exit = Generator.exit_rate g !x in
    if exit <= 0. then absorbed := true
    else begin
      let dt = Rng.exponential rng exit in
      let t' = !t +. dt in
      if t' >= tmax then t := tmax
      else begin
        let weights = Array.map snd out in
        let k = Rng.categorical rng weights in
        let x' = fst out.(k) in
        t := t';
        x := x';
        times := t' :: !times;
        states := x' :: !states
      end
    end
  done;
  Path.make
    ~times:(Array.of_list (List.rev !times))
    ~states:(Array.of_list (List.rev !states))
    ~horizon:tmax

let run rng g ~x0 ~tmax = run_generic rng (fun ~t:_ ~x:_ -> g) ~x0 ~tmax

(* Lewis/Ogata thinning: candidate events at the bounding rate lambda,
   accepted with probability exit(t,x)/lambda.  Exact for any
   measurable time/state dependence as long as lambda dominates. *)
let run_thinned rng gen_at ~x0 ~tmax ~rate_bound =
  if tmax < 0. then invalid_arg "Simulate.run: negative horizon";
  if rate_bound <= 0. then invalid_arg "Simulate: rate_bound <= 0";
  let times = ref [ 0. ] and states = ref [ x0 ] in
  let t = ref 0. and x = ref x0 in
  while !t < tmax do
    let dt = Rng.exponential rng rate_bound in
    let t' = !t +. dt in
    if t' >= tmax then t := tmax
    else begin
      t := t';
      let g = gen_at ~t:t' ~x:!x in
      let exit = Generator.exit_rate g !x in
      if exit > rate_bound *. (1. +. 1e-9) then
        invalid_arg "Simulate: rate_bound exceeded";
      if Rng.float rng < exit /. rate_bound then begin
        let out = Generator.outgoing g !x in
        let weights = Array.map snd out in
        let k = Rng.categorical rng weights in
        x := fst out.(k);
        times := t' :: !times;
        states := !x :: !states
      end
    end
  done;
  Path.make
    ~times:(Array.of_list (List.rev !times))
    ~states:(Array.of_list (List.rev !states))
    ~horizon:tmax

(* Row-level thinning: the caller supplies merged outgoing rows
   [(dsts, rates)] directly (destinations ascending, zero rates
   allowed), skipping Generator construction entirely.  Draw-for-draw
   identical to [run_thinned] on the equivalent generator: the exit
   rate is the same left fold over the merged row, and zero-rate slots
   are never selected by [Rng.categorical] nor consume extra
   randomness. *)
let run_imprecise_rows rng row_at ~x0 ~tmax ~rate_bound =
  if tmax < 0. then invalid_arg "Simulate.run: negative horizon";
  if rate_bound <= 0. then invalid_arg "Simulate: rate_bound <= 0";
  let times = ref [ 0. ] and states = ref [ x0 ] in
  let t = ref 0. and x = ref x0 in
  while !t < tmax do
    let dt = Rng.exponential rng rate_bound in
    let t' = !t +. dt in
    if t' >= tmax then t := tmax
    else begin
      t := t';
      let dsts, rates = row_at ~t:t' ~x:!x in
      let exit = Array.fold_left ( +. ) 0. rates in
      if exit > rate_bound *. (1. +. 1e-9) then
        invalid_arg "Simulate: rate_bound exceeded";
      if Rng.float rng < exit /. rate_bound then begin
        let k = Rng.categorical rng rates in
        x := dsts.(k);
        times := t' :: !times;
        states := !x :: !states
      end
    end
  done;
  Path.make
    ~times:(Array.of_list (List.rev !times))
    ~states:(Array.of_list (List.rev !states))
    ~horizon:tmax

let run_imprecise ?rate_bound rng gen_at ~x0 ~tmax =
  match rate_bound with
  | Some rb -> run_thinned rng gen_at ~x0 ~tmax ~rate_bound:rb
  | None -> run_generic rng gen_at ~x0 ~tmax

let mean_reward rng g ~x0 ~tmax ~runs reward =
  if runs <= 0 then invalid_arg "Simulate.mean_reward: need runs > 0";
  let acc = Stats.Running.create () in
  for _ = 1 to runs do
    let path = run rng g ~x0 ~tmax in
    Stats.Running.add acc (reward (Path.final_state path))
  done;
  ( Stats.Running.mean acc,
    Stats.Running.std acc /. sqrt (float_of_int runs) )
