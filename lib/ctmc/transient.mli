(** Transient distributions of finite CTMCs. *)

exception Truncated of { epsilon : float; mass : float; terms : int }
(** Raised when a caller-supplied [max_terms] cap stops the
    uniformisation sweep before the accumulated Poisson mass reached
    [1 - epsilon] {e and} before the analytic Fox–Glynn/Chernoff cap
    certified the tail: the result would carry more truncation error
    than requested, and is never silently renormalised instead.  Only
    the historical strict entry points raise; the [_certified] variants
    below fold every deficit into an explicit {!certificate}. *)

type certificate = { escaped : float; tail : float }
(** Certified accounting of probability mass the computed answer does
    not carry.  [escaped] bounds the mass that left a truncated
    (substochastic) state space by the query time — exactly [0.] for an
    exact operator; [tail] is the Poisson-weight deficit of the
    uniformisation series (analytically ≤ epsilon unless a user
    [max_terms] cap cut the sweep, in which case the cut lands here
    instead of raising).  For any reward with range [rlo, rhi] over the
    {e full} state space, the true expectation lies within
    [computed + (escaped + tail) * rlo, computed + (escaped + tail) * rhi]. *)

val no_certificate : certificate
(** [{ escaped = 0.; tail = 0. }] — the certificate of an exact answer. *)

val uniformization :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t
(** [uniformization g ~p0 ~t] is the distribution at time [t] starting
    from [p0], by uniformisation through the sparse forward operator
    {!Sparse.forward} — no dense matrix is formed.

    The truncation point is sized from [(epsilon, λt)]: the sweep stops
    as soon as the accumulated Poisson mass reaches [1 - epsilon]
    (default [epsilon = 1e-12]), and runs at most up to the Chernoff
    tail cap — the smallest [K >= λt] with
    [P(Pois(λt) >= K) <= epsilon] — which certifies the tail
    analytically even when floating-point rounding keeps the measured
    mass just below the target.  The result is the raw partial sum:
    its total mass is reported via [?obs] (gauge
    ["ctmc.truncation_mass"]) and is {e never} renormalised to hide a
    truncation miss.

    [max_terms] bounds the number of retained terms; if it stops the
    sweep before the mass target or the analytic cap is reached,
    {!Truncated} is raised.

    [pool] parallelises the sparse steps over destination blocks,
    bit-identically to the sequential path.

    @raise Invalid_argument if [p0] is not a distribution over the
    chain's states, [t < 0], [epsilon] is outside [(0, 1)] or
    [max_terms < 1].
    @raise Truncated as described above. *)

val uniformization_certified :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  ?leak:float array ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t * certificate
(** Like {!uniformization} but never raises {!Truncated}: every source
    of truncation error is returned as an explicit {!certificate}.
    [leak.(i)] is the rate at which state [i] escapes a truncated state
    space (see {!Sparse.forward}); the sweep then runs the
    substochastic operator and certifies the escaped mass per step
    through a fixed block-ordered reduction, so results are
    bit-identical for any pool size.  Without [leak] the returned
    vector is bit-identical to {!uniformization} and the certificate's
    [escaped] is exactly [0.]. *)

val kolmogorov_ode :
  ?dt:float ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t
(** Same quantity by RK4 integration of the forward Kolmogorov
    equations ṗ = Qᵀp — the reference implementation used to
    cross-check uniformisation. *)

val expectation :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  (int -> float) ->
  float
(** E[h(X_t)] under the transient distribution. *)

val expectation_series :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  times:float array ->
  Umf_numerics.Vec.t array ->
  float array array
(** [expectation_series g ~p0 ~times rewards] is the matrix
    [e.(j).(r) = E[rewards.(r)(X_{times.(j)})]] for strictly increasing
    [times >= 0].  Expectations are linear in the distribution, so one
    uniformisation sweep up to the largest horizon serves every time
    point: per Poisson term only the scalar products [h · v_k] are
    taken and reweighted per time in log space.  This is how the
    finite-N engine extracts a whole transient trajectory for the cost
    of a single endpoint computation.

    Truncation semantics, [pool], [obs], [epsilon] and [max_terms] are
    exactly those of {!uniformization} (mass targets are tracked per
    time point; {!Truncated} reports the worst mass). *)

val expectation_series_certified :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  ?leak:float array ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  times:float array ->
  Umf_numerics.Vec.t array ->
  float array array * certificate array
(** Like {!expectation_series} but never raises {!Truncated}: returns
    one {!certificate} per time point ([no_certificate] for a time
    equal to 0).  [leak] selects the substochastic truncated operator
    exactly as in {!uniformization_certified}.  Without [leak] the
    expectation matrix is bit-identical to {!expectation_series}. *)
