(** Transient distributions of finite CTMCs. *)

exception Truncated of { epsilon : float; mass : float; terms : int }
(** Raised when a caller-supplied [max_terms] cap stops the
    uniformisation sweep before the accumulated Poisson mass reached
    [1 - epsilon] {e and} before the analytic Fox–Glynn/Chernoff cap
    certified the tail: the result would carry more truncation error
    than requested, and is never silently renormalised instead. *)

val uniformization :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t
(** [uniformization g ~p0 ~t] is the distribution at time [t] starting
    from [p0], by uniformisation through the sparse forward operator
    {!Sparse.forward} — no dense matrix is formed.

    The truncation point is sized from [(epsilon, λt)]: the sweep stops
    as soon as the accumulated Poisson mass reaches [1 - epsilon]
    (default [epsilon = 1e-12]), and runs at most up to the Chernoff
    tail cap — the smallest [K >= λt] with
    [P(Pois(λt) >= K) <= epsilon] — which certifies the tail
    analytically even when floating-point rounding keeps the measured
    mass just below the target.  The result is the raw partial sum:
    its total mass is reported via [?obs] (gauge
    ["ctmc.truncation_mass"]) and is {e never} renormalised to hide a
    truncation miss.

    [max_terms] bounds the number of retained terms; if it stops the
    sweep before the mass target or the analytic cap is reached,
    {!Truncated} is raised.

    [pool] parallelises the sparse steps over destination chunks,
    bit-identically to the sequential path.

    @raise Invalid_argument if [p0] is not a distribution over the
    chain's states, [t < 0], [epsilon] is outside [(0, 1)] or
    [max_terms < 1].
    @raise Truncated as described above. *)

val kolmogorov_ode :
  ?dt:float ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t
(** Same quantity by RK4 integration of the forward Kolmogorov
    equations ṗ = Qᵀp — the reference implementation used to
    cross-check uniformisation. *)

val expectation :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  (int -> float) ->
  float
(** E[h(X_t)] under the transient distribution. *)

val expectation_series :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?epsilon:float ->
  ?max_terms:int ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  times:float array ->
  Umf_numerics.Vec.t array ->
  float array array
(** [expectation_series g ~p0 ~times rewards] is the matrix
    [e.(j).(r) = E[rewards.(r)(X_{times.(j)})]] for strictly increasing
    [times >= 0].  Expectations are linear in the distribution, so one
    uniformisation sweep up to the largest horizon serves every time
    point: per Poisson term only the scalar products [h · v_k] are
    taken and reweighted per time in log space.  This is how the
    finite-N engine extracts a whole transient trajectory for the cost
    of a single endpoint computation.

    Truncation semantics, [pool], [obs], [epsilon] and [max_terms] are
    exactly those of {!uniformization} (mass targets are tracked per
    time point; {!Truncated} reports the worst mass). *)
