(** Transient distributions of finite CTMCs. *)

val uniformization :
  ?epsilon:float ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t
(** [uniformization g ~p0 ~t] is the distribution at time [t] starting
    from [p0], by uniformisation with Poisson-tail truncation at total
    mass [1 - epsilon] (default [1e-12]).
    @raise Invalid_argument if [p0] is not a distribution over the
    chain's states or [t < 0]. *)

val kolmogorov_ode :
  ?dt:float ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  Umf_numerics.Vec.t
(** Same quantity by RK4 integration of the forward Kolmogorov
    equations ṗ = Qᵀp — the reference implementation used to
    cross-check uniformisation. *)

val expectation :
  ?epsilon:float ->
  Generator.t ->
  p0:Umf_numerics.Vec.t ->
  t:float ->
  (int -> float) ->
  float
(** E[h(X_t)] under the transient distribution. *)
