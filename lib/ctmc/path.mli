(** Sampled paths of finite-state jump processes.

    A path records the jump times and the state entered at each jump;
    [times.(0)] is the start time and the process holds [states.(i)] on
    [[times.(i), times.(i+1))]. *)

type t = { times : float array; states : int array; horizon : float }
(** [horizon] is the time at which observation stopped (>= last jump). *)

val make : times:float array -> states:int array -> horizon:float -> t
(** @raise Invalid_argument on empty input, mismatched lengths,
    non-increasing times or a horizon before the last jump. *)

val length : t -> int
(** Number of recorded jumps (including the initial state). *)

val state_at : t -> float -> int
(** State occupied at a given time (clamped to the observation
    window). *)

val final_state : t -> int

val time_average : t -> (int -> float) -> float
(** Holding-time-weighted average of a state reward over the whole
    window. *)

val occupancy : t -> int -> Umf_numerics.Vec.t
(** [occupancy p n] is the fraction of time spent in each of the [n]
    states. *)

val jumps : t -> int
(** Number of actual transitions (length - 1). *)
