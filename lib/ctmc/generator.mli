(** Sparse generator matrices of finite continuous-time Markov chains.

    States are [0 .. n-1].  A generator stores, per state, the outgoing
    transitions [(target, rate)] with [rate >= 0] and [target <> src];
    the diagonal is implicit ([- exit rate]). *)

type t

val make : n:int -> (int * int * float) list -> t
(** [make ~n transitions] from [(src, dst, rate)] triples.  Transitions
    with rate 0 are dropped; duplicate [(src, dst)] pairs are summed.
    @raise Invalid_argument on out-of-range states, self loops or
    negative rates. *)

val of_rows : (int * float) array array -> t
(** [of_rows rows] builds a generator directly from per-state outgoing
    rows — the O(nnz) constructor used by the finite-N lattice engine,
    skipping {!make}'s per-row hashtable merge.  Row [i] must hold
    [(dst, rate)] pairs sorted strictly ascending by destination with
    [rate > 0] finite and [dst <> i]; the arrays are taken over by the
    generator (do not mutate them afterwards).
    @raise Invalid_argument on unsorted/duplicate destinations,
    out-of-range states, self loops or non-positive rates. *)

val n_states : t -> int

val nnz : t -> int
(** Number of stored transitions (off-diagonal entries). *)

val outgoing : t -> int -> (int * float) array

val exit_rate : t -> int -> float

val max_exit_rate : t -> float

val to_dense : t -> Umf_numerics.Mat.t
(** The full [n x n] generator matrix [Q] (row sums are zero). *)

val uniformized : ?rate:float -> t -> Umf_numerics.Mat.t
(** The DTMC transition matrix [P = I + Q/Λ] of the uniformised chain;
    [Λ] defaults to [1.01 * max_exit_rate] (strictly positive even for
    an absorbing chain).
    @raise Invalid_argument if [rate] is not an upper bound on the exit
    rates. *)

val apply : t -> Umf_numerics.Vec.t -> Umf_numerics.Vec.t
(** [apply q g] is the vector [Q g] (backward operator: expectations),
    computed sparsely. *)

val apply_forward : t -> Umf_numerics.Vec.t -> Umf_numerics.Vec.t
(** [apply_forward q p] is [Qᵀ p] (forward operator: distributions). *)
