(** Discrete-time Markov chains with interval transition probabilities
    (Škulj [10], the formalism the paper's imprecise CTMCs build on).

    Each row i carries probability intervals [l_ij, u_ij]; the credal
    set of row i is every probability vector p with l_i <= p <= u_i.
    The tight lower expectation operator

    (T̲ g)(i) = min { Σ_j p_j g(j) : l_i <= p <= u_i, Σ_j p_j = 1 }

    is computed exactly by the greedy fractile algorithm (fill the
    smallest-g states up to their upper bounds first). *)

open Umf_numerics

type t

val make : Interval.t array array -> t
(** [make rows] with [rows.(i).(j)] the probability interval of the
    transition i → j.
    @raise Invalid_argument unless the matrix is square, every interval
    is inside [0, 1], and each row is {e coherent}:
    Σ_j l_ij <= 1 <= Σ_j u_ij (so the credal set is non-empty). *)

val n_states : t -> int

val lower_matvec : t -> Vec.t -> Vec.t
(** [lower_matvec m g] is T̲ g. *)

val upper_matvec : t -> Vec.t -> Vec.t
(** T̄ g = −T̲(−g) (conjugacy). *)

val lower_expectation : t -> h:Vec.t -> steps:int -> Vec.t
(** k-step lower expectation E̲[h(X_k) | X_0 = ·] = T̲^k h. *)

val upper_expectation : t -> h:Vec.t -> steps:int -> Vec.t

val of_imprecise_ctmc : Imprecise_ctmc.t -> dt:float -> t
(** Euler/uniformisation discretisation of an imprecise CTMC: entry
    (i, j) gets the interval [dt·min_θ q_ij(θ), dt·max_θ q_ij(θ)]
    (rates extremised over the θ-box vertices — exact for rates
    monotone in each θ component) and the diagonal the matching
    self-loop interval.  The per-entry relaxation forgets correlations
    induced by a shared θ, so the resulting DTMC bounds {e enclose} the
    CTMC bounds: a sound, slightly wider cross-check.
    @raise Invalid_argument if [dt] exceeds 1 / max exit rate. *)
