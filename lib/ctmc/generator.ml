open Umf_numerics

type t = { n : int; rows : (int * float) array array; exit : float array }

let make ~n transitions =
  if n <= 0 then invalid_arg "Generator.make: need n > 0";
  let tbl = Array.make n [] in
  List.iter
    (fun (src, dst, rate) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Generator.make: state out of range";
      if src = dst then invalid_arg "Generator.make: self loop";
      if rate < 0. || Float.is_nan rate then
        invalid_arg "Generator.make: negative rate";
      if rate > 0. then tbl.(src) <- (dst, rate) :: tbl.(src))
    transitions;
  let merge lst =
    let m = Hashtbl.create 8 in
    List.iter
      (fun (dst, rate) ->
        let cur = try Hashtbl.find m dst with Not_found -> 0. in
        Hashtbl.replace m dst (cur +. rate))
      lst;
    Hashtbl.fold (fun dst rate acc -> (dst, rate) :: acc) m []
    |> List.sort compare |> Array.of_list
  in
  let rows = Array.map merge tbl in
  let exit =
    Array.map (fun row -> Array.fold_left (fun s (_, r) -> s +. r) 0. row) rows
  in
  { n; rows; exit }

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Generator.of_rows: need n > 0";
  Array.iteri
    (fun i row ->
      let prev = ref (-1) in
      Array.iter
        (fun (dst, rate) ->
          if dst < 0 || dst >= n then
            invalid_arg "Generator.of_rows: state out of range";
          if dst = i then invalid_arg "Generator.of_rows: self loop";
          if dst <= !prev then
            invalid_arg "Generator.of_rows: row not sorted by destination";
          if not (rate > 0. && rate < Float.infinity) then
            invalid_arg "Generator.of_rows: rate not positive and finite";
          prev := dst)
        row)
    rows;
  let exit =
    Array.map (fun row -> Array.fold_left (fun s (_, r) -> s +. r) 0. row) rows
  in
  { n; rows; exit }

let n_states g = g.n

let nnz g = Array.fold_left (fun acc row -> acc + Array.length row) 0 g.rows

let outgoing g i = g.rows.(i)

let exit_rate g i = g.exit.(i)

let max_exit_rate g = Array.fold_left Float.max 0. g.exit

let to_dense g =
  let m = Mat.zeros g.n g.n in
  for i = 0 to g.n - 1 do
    Mat.set m i i (-.g.exit.(i));
    Array.iter (fun (j, r) -> Mat.set m i j (Mat.get m i j +. r)) g.rows.(i)
  done;
  m

let uniformized ?rate g =
  let lambda =
    match rate with
    | Some r ->
        if r < max_exit_rate g then
          invalid_arg "Generator.uniformized: rate below max exit rate";
        r
    | None -> Float.max 1e-9 (1.01 *. max_exit_rate g)
  in
  let p = Mat.identity g.n in
  for i = 0 to g.n - 1 do
    Mat.set p i i (1. -. (g.exit.(i) /. lambda));
    Array.iter
      (fun (j, r) -> Mat.set p i j (Mat.get p i j +. (r /. lambda)))
      g.rows.(i)
  done;
  p

let apply g v =
  if Vec.dim v <> g.n then invalid_arg "Generator.apply: dimension mismatch";
  Array.init g.n (fun i ->
      let acc = ref (-.g.exit.(i) *. v.(i)) in
      Array.iter (fun (j, r) -> acc := !acc +. (r *. v.(j))) g.rows.(i);
      !acc)

let apply_forward g p =
  if Vec.dim p <> g.n then
    invalid_arg "Generator.apply_forward: dimension mismatch";
  let out = Array.init g.n (fun i -> -.g.exit.(i) *. p.(i)) in
  for i = 0 to g.n - 1 do
    Array.iter (fun (j, r) -> out.(j) <- out.(j) +. (r *. p.(i))) g.rows.(i)
  done;
  out
