open Umf_numerics

let check_distribution g p0 =
  if Vec.dim p0 <> Generator.n_states g then
    invalid_arg "Transient: distribution dimension mismatch";
  Array.iter
    (fun x -> if x < -1e-12 then invalid_arg "Transient: negative probability")
    p0;
  if Float.abs (Vec.sum p0 -. 1.) > 1e-9 then
    invalid_arg "Transient: distribution does not sum to 1"

let uniformization ?(epsilon = 1e-12) g ~p0 ~t =
  check_distribution g p0;
  if t < 0. then invalid_arg "Transient.uniformization: t < 0";
  let lambda = Float.max 1e-9 (1.01 *. Generator.max_exit_rate g) in
  if t = 0. then Vec.copy p0
  else begin
    let p_mat = Generator.uniformized ~rate:lambda g in
    let lt = lambda *. t in
    (* iterate v_k = p0 P^k, accumulating Poisson(lt, k) v_k until the
       Poisson tail is below epsilon *)
    let result = Vec.zeros (Vec.dim p0) in
    let v = ref (Vec.copy p0) in
    let weight = ref (Float.exp (-.lt)) in
    let cumulative = ref 0. in
    let k = ref 0 in
    (* for large lt, exp(-lt) underflows; rescale by tracking log *)
    let log_weight = ref (-.lt) in
    while !cumulative < 1. -. epsilon && !k < 100_000 do
      weight := Float.exp !log_weight;
      if !weight > 0. then begin
        Vec.axpy_in_place !weight !v result;
        cumulative := !cumulative +. !weight
      end;
      incr k;
      log_weight := !log_weight +. Float.log (lt /. float_of_int !k);
      v := Mat.tmulv p_mat !v
    done;
    (* renormalise the truncation mass *)
    let s = Vec.sum result in
    if s > 0. then Vec.scale (1. /. s) result else result
  end

let kolmogorov_ode ?(dt = 1e-3) g ~p0 ~t =
  check_distribution g p0;
  if t < 0. then invalid_arg "Transient.kolmogorov_ode: t < 0";
  if t = 0. then Vec.copy p0
  else
    Ode.integrate_to (fun _t p -> Generator.apply_forward g p) ~t0:0. ~y0:p0
      ~t1:t ~dt

let expectation ?epsilon g ~p0 ~t h =
  let p = uniformization ?epsilon g ~p0 ~t in
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. (pi *. h i)) p;
  !acc
