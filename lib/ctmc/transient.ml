open Umf_numerics
module Obs = Umf_obs.Obs

exception Truncated of { epsilon : float; mass : float; terms : int }

type certificate = { escaped : float; tail : float }

let no_certificate = { escaped = 0.; tail = 0. }

let () =
  Printexc.register_printer (function
    | Truncated { epsilon; mass; terms } ->
        Some
          (Printf.sprintf
             "Transient.Truncated: uniformisation capped at %d terms with \
              Poisson mass %.17g < 1 - %g"
             terms mass epsilon)
    | _ -> None)

let check_distribution g p0 =
  if Vec.dim p0 <> Generator.n_states g then
    invalid_arg "Transient: distribution dimension mismatch";
  Array.iter
    (fun x -> if x < -1e-12 then invalid_arg "Transient: negative probability")
    p0;
  if Float.abs (Vec.sum p0 -. 1.) > 1e-9 then
    invalid_arg "Transient: distribution does not sum to 1"

let check_epsilon epsilon =
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Transient: epsilon must be in (0, 1)"

let check_max_terms = function
  | Some m when m < 1 -> invalid_arg "Transient: max_terms < 1"
  | _ -> ()

(* Fox–Glynn-style right truncation point: the smallest K >= λt with
   the Chernoff tail bound P(Pois(λt) >= K) <= exp(K - λt - K ln(K/λt))
   below epsilon.  Purely analytic — no accumulated floating-point mass
   is involved — so it both sizes the sweep a priori and certifies the
   tail when rounding keeps the measured mass just short of
   1 - epsilon. *)
let poisson_cap ~lt ~epsilon =
  let log_tail k =
    let kf = float_of_int k in
    kf -. lt -. (kf *. Float.log (kf /. lt))
  in
  let target = Float.log epsilon in
  let lo = ref (Stdlib.max 1 (int_of_float (Float.ceil lt))) in
  if log_tail !lo <= target then !lo
  else begin
    (* doubling search for an upper bracket, then bisection: log_tail
       is decreasing for k >= λt *)
    let hi = ref (2 * !lo) in
    while log_tail !hi > target do
      lo := !hi;
      hi := 2 * !hi
    done;
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if log_tail mid > target then lo := mid else hi := mid
    done;
    !hi
  end

(* Shared uniformisation sweep.  [strict] restores the historical
   contract (a user [max_terms] cap that cuts the sweep short raises
   {!Truncated}); the certified entry points run with [strict = false]
   and fold every deficit into the returned certificate instead.  With
   [leak] the operator is substochastic: [m] tracks the retained mass
   of v_k (each step's escaped mass is returned by the kernel through a
   fixed block-ordered reduction), and [escaped] accumulates
   Σ_k w_k (m_0 − m_k) — the probability that the chain had already
   left the retained space by the Poisson-mixed time.  Without [leak]
   every loss is exactly 0. and the arithmetic — including the
   certificate — is bit-identical to the historical exact sweep. *)
let uni_sweep ?pool ?(obs = Obs.off) ~epsilon ?max_terms ~strict ?leak g ~p0 ~t
    =
  check_distribution g p0;
  check_epsilon epsilon;
  check_max_terms max_terms;
  if t < 0. then invalid_arg "Transient.uniformization: t < 0";
  if t = 0. then (Vec.copy p0, no_certificate)
  else begin
    let sp = Obs.span_begin obs "ctmc.uniformization" in
    let op = Sparse.forward ?leak g in
    let lambda = Sparse.rate op in
    let lt = lambda *. t in
    let cap = poisson_cap ~lt ~epsilon in
    let limit =
      match max_terms with Some m -> Stdlib.min (m - 1) cap | None -> cap
    in
    let target = 1. -. epsilon in
    let result = Vec.zeros (Vec.dim p0) in
    let v = ref (Vec.copy p0) and w = ref (Vec.zeros (Vec.dim p0)) in
    let log_weight = ref (-.lt) in
    let mass = ref 0. and k = ref 0 in
    let m0 = Vec.sum p0 in
    let m = ref m0 and escaped = ref 0. in
    let running = ref true in
    while !running do
      let wk = Float.exp !log_weight in
      if !mass +. wk >= target || !k >= limit then begin
        (* final term: accumulate without a wasted extra step *)
        if wk > 0. then begin
          Vec.axpy_in_place wk !v result;
          escaped := !escaped +. (wk *. (m0 -. !m))
        end;
        mass := !mass +. wk;
        running := false
      end
      else begin
        (* fused accumulate-and-advance: one pass over the edges *)
        let lost =
          if wk > 0. then
            Sparse.step_into ?pool ~acc:(wk, result) op !v ~into:!w
          else Sparse.step_into ?pool op !v ~into:!w
        in
        if wk > 0. then escaped := !escaped +. (wk *. (m0 -. !m));
        mass := !mass +. wk;
        m := !m -. lost;
        let tmp = !v in
        v := !w;
        w := tmp;
        incr k;
        log_weight := !log_weight +. Float.log (lt /. float_of_int !k)
      end
    done;
    (* never renormalise a miss away: either the measured mass met the
       target, or the analytic cap certifies the tail is below epsilon;
       under [strict] a user-supplied cap that cut the sweep short
       raises, otherwise the deficit lands in the certificate's tail *)
    if strict && !mass < target then begin
      match max_terms with
      | Some m when !k + 1 >= m && !k < cap ->
          raise (Truncated { epsilon; mass = !mass; terms = !k + 1 })
      | _ -> ()
    end;
    let terms = !k + 1 in
    let tail = Float.max 0. (m0 -. !mass) in
    if Obs.enabled obs then begin
      Obs.count obs "ctmc.terms" terms;
      Obs.add obs "ctmc.spmv_flops"
        (2.
        *. float_of_int (Sparse.nnz op + Sparse.n_states op)
        *. float_of_int (terms - 1));
      Obs.gauge obs "ctmc.truncation_mass" (1. -. !mass);
      Obs.gauge obs "ctmc.escaped_mass" !escaped;
      Obs.span_end
        ~metrics:
          [
            ("terms", float_of_int terms);
            ("mass", !mass);
            ("rows", float_of_int (Sparse.n_states op * (terms - 1)));
            ("escaped", !escaped);
            ("window", float_of_int limit);
          ]
        obs sp
    end
    else Obs.span_end obs sp;
    (result, { escaped = !escaped; tail })
  end

let uniformization ?pool ?obs ?(epsilon = 1e-12) ?max_terms g ~p0 ~t =
  fst (uni_sweep ?pool ?obs ~epsilon ?max_terms ~strict:true g ~p0 ~t)

let uniformization_certified ?pool ?obs ?(epsilon = 1e-12) ?max_terms ?leak g
    ~p0 ~t =
  uni_sweep ?pool ?obs ~epsilon ?max_terms ~strict:false ?leak g ~p0 ~t

let kolmogorov_ode ?(dt = 1e-3) g ~p0 ~t =
  check_distribution g p0;
  if t < 0. then invalid_arg "Transient.kolmogorov_ode: t < 0";
  if t = 0. then Vec.copy p0
  else
    Ode.integrate_to (fun _t p -> Generator.apply_forward g p) ~t0:0. ~y0:p0
      ~t1:t ~dt

let expectation ?pool ?obs ?epsilon ?max_terms g ~p0 ~t h =
  let p = uniformization ?pool ?obs ?epsilon ?max_terms g ~p0 ~t in
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. (pi *. h i)) p;
  !acc

(* Shared expectation-series sweep; [strict]/[leak] as in uni_sweep.
   Per time point j the certificate is
   escaped_j = Σ_{k∈S_j} w_jk (m_0 − m_k)   (terms actually retained)
   tail_j    = max 0 (m_0 − Σ_{k∈S_j} w_jk)  (Poisson-weight deficit)
   so 1 − (retained reward mass) ≤ escaped_j + tail_j whichever terms
   the per-time mass target kept. *)
let series_sweep ?pool ?(obs = Obs.off) ~epsilon ?max_terms ~strict ?leak g
    ~p0 ~times rewards =
  check_distribution g p0;
  check_epsilon epsilon;
  check_max_terms max_terms;
  let nt = Array.length times and nr = Array.length rewards in
  if nt = 0 then invalid_arg "Transient.expectation_series: no times";
  if nr = 0 then invalid_arg "Transient.expectation_series: no rewards";
  Array.iter
    (fun h ->
      if Vec.dim h <> Generator.n_states g then
        invalid_arg "Transient.expectation_series: reward dimension mismatch")
    rewards;
  if times.(0) < 0. then
    invalid_arg "Transient.expectation_series: negative time";
  for j = 1 to nt - 1 do
    if times.(j) <= times.(j - 1) then
      invalid_arg "Transient.expectation_series: times not increasing"
  done;
  let out = Array.make_matrix nt nr 0. in
  let sp = Obs.span_begin obs "ctmc.expectation_series" in
  let tmax = times.(nt - 1) in
  (* a time equal to 0 is the initial expectation *)
  Array.iteri
    (fun j t ->
      if t = 0. then
        Array.iteri (fun r h -> out.(j).(r) <- Vec.dot h p0) rewards)
    times;
  let m0 = Vec.sum p0 in
  let mass = Array.make nt 0. in
  let esc = Array.make nt 0. in
  let terms = ref 1 and window = ref 0 in
  if tmax > 0. then begin
    let op = Sparse.forward ?leak g in
    let lambda = Sparse.rate op in
    let cap = poisson_cap ~lt:(lambda *. tmax) ~epsilon in
    let limit =
      match max_terms with Some m -> Stdlib.min (m - 1) cap | None -> cap
    in
    window := limit;
    let target = 1. -. epsilon in
    (* all horizons share one v_k sweep: the expectation is linear in
       the distribution, so per term only the nr scalar dots h·v_k are
       needed, reweighted per time by Pois(λ t_j, k).  Weights are
       computed in log space with a running ln k!. *)
    let log_lt =
      Array.map
        (fun t -> if t > 0. then Float.log (lambda *. t) else 0.)
        times
    in
    let klog = Array.make nt 0. in
    let lfact = ref 0. in
    let pending = ref 0 in
    Array.iter (fun t -> if t > 0. then incr pending) times;
    let v = ref (Vec.copy p0) and w = ref (Vec.zeros (Vec.dim p0)) in
    let dots = Array.make nr 0. in
    let m = ref m0 in
    let k = ref 0 in
    let running = ref true in
    while !running do
      for r = 0 to nr - 1 do
        dots.(r) <- Vec.dot rewards.(r) !v
      done;
      for j = 0 to nt - 1 do
        if times.(j) > 0. && mass.(j) < target then begin
          let wk =
            Float.exp ((-.lambda *. times.(j)) +. klog.(j) -. !lfact)
          in
          if wk > 0. then begin
            for r = 0 to nr - 1 do
              out.(j).(r) <- out.(j).(r) +. (wk *. dots.(r))
            done;
            mass.(j) <- mass.(j) +. wk;
            esc.(j) <- esc.(j) +. (wk *. (m0 -. !m))
          end;
          if mass.(j) >= target then decr pending
        end
      done;
      if !pending = 0 || !k >= limit then running := false
      else begin
        let lost = Sparse.step_into ?pool op !v ~into:!w in
        m := !m -. lost;
        let tmp = !v in
        v := !w;
        w := tmp;
        incr k;
        lfact := !lfact +. Float.log (float_of_int !k);
        for j = 0 to nt - 1 do
          klog.(j) <- klog.(j) +. log_lt.(j)
        done
      end
    done;
    terms := !k + 1;
    if strict && !pending > 0 then begin
      (* some horizon missed its mass target: certified by the cap
         unless a user cap cut the sweep short *)
      match max_terms with
      | Some m when !k + 1 >= m && !k < cap ->
          let worst = ref 1. in
          Array.iteri
            (fun j t ->
              if t > 0. && mass.(j) < !worst then worst := mass.(j))
            times;
          raise (Truncated { epsilon; mass = !worst; terms = !k + 1 })
      | _ -> ()
    end;
    if Obs.enabled obs then begin
      Obs.add obs "ctmc.spmv_flops"
        (2.
        *. float_of_int (Sparse.nnz op + Sparse.n_states op)
        *. float_of_int !k);
      Obs.gauge obs "ctmc.escaped_mass"
        (Array.fold_left Float.max 0. esc)
    end
  end;
  let certs =
    Array.init nt (fun j ->
        if times.(j) = 0. then no_certificate
        else { escaped = esc.(j); tail = Float.max 0. (m0 -. mass.(j)) })
  in
  if Obs.enabled obs then begin
    Obs.count obs "ctmc.terms" !terms;
    Obs.span_end
      ~metrics:
        [
          ("terms", float_of_int !terms);
          ("rows", float_of_int (Generator.n_states g * (!terms - 1)));
          ("escaped", Array.fold_left Float.max 0. esc);
          ("window", float_of_int !window);
        ]
      obs sp
  end
  else Obs.span_end obs sp;
  (out, certs)

let expectation_series ?pool ?obs ?(epsilon = 1e-12) ?max_terms g ~p0 ~times
    rewards =
  fst
    (series_sweep ?pool ?obs ~epsilon ?max_terms ~strict:true g ~p0 ~times
       rewards)

let expectation_series_certified ?pool ?obs ?(epsilon = 1e-12) ?max_terms ?leak
    g ~p0 ~times rewards =
  series_sweep ?pool ?obs ~epsilon ?max_terms ~strict:false ?leak g ~p0 ~times
    rewards
