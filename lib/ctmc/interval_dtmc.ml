open Umf_numerics

type t = { n : int; lo : float array array; hi : float array array }

let make rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Interval_dtmc.make: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Interval_dtmc.make: matrix not square")
    rows;
  let lo = Array.map (Array.map Interval.lo) rows in
  let hi = Array.map (Array.map Interval.hi) rows in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun iv ->
          if Interval.lo iv < -1e-12 || Interval.hi iv > 1. +. 1e-12 then
            invalid_arg "Interval_dtmc.make: probabilities outside [0,1]")
        row;
      let sum_lo = Array.fold_left ( +. ) 0. lo.(i) in
      let sum_hi = Array.fold_left ( +. ) 0. hi.(i) in
      if sum_lo > 1. +. 1e-9 || sum_hi < 1. -. 1e-9 then
        invalid_arg "Interval_dtmc.make: incoherent row")
    rows;
  { n; lo; hi }

let n_states m = m.n

(* tight lower expectation of one row: start every state at its lower
   probability, then pour the remaining mass into states in increasing
   order of g, each up to its upper bound *)
let row_lower m i g order =
  let p = Array.copy m.lo.(i) in
  let mass = ref (Array.fold_left ( +. ) 0. p) in
  let k = ref 0 in
  while !mass < 1. -. 1e-15 && !k < m.n do
    let j = order.(!k) in
    let room = m.hi.(i).(j) -. p.(j) in
    let add = Float.min room (1. -. !mass) in
    p.(j) <- p.(j) +. add;
    mass := !mass +. add;
    incr k
  done;
  let acc = ref 0. in
  for j = 0 to m.n - 1 do
    acc := !acc +. (p.(j) *. g.(j))
  done;
  !acc

let lower_matvec m g =
  if Vec.dim g <> m.n then invalid_arg "Interval_dtmc: dimension mismatch";
  let order = Array.init m.n Fun.id in
  Array.sort (fun a b -> compare g.(a) g.(b)) order;
  Array.init m.n (fun i -> row_lower m i g order)

let upper_matvec m g =
  Vec.scale (-1.) (lower_matvec m (Vec.scale (-1.) g))

let iterate f h steps =
  let g = ref (Vec.copy h) in
  for _ = 1 to steps do
    g := f !g
  done;
  !g

let lower_expectation m ~h ~steps =
  if steps < 0 then invalid_arg "Interval_dtmc: negative steps";
  iterate (lower_matvec m) h steps

let upper_expectation m ~h ~steps =
  if steps < 0 then invalid_arg "Interval_dtmc: negative steps";
  iterate (upper_matvec m) h steps

let of_imprecise_ctmc ictmc ~dt =
  if dt <= 0. then invalid_arg "Interval_dtmc.of_imprecise_ctmc: dt <= 0";
  let n = Imprecise_ctmc.n_states ictmc in
  let box = Imprecise_ctmc.theta_box ictmc in
  let vertices = Optim.Box.vertices box in
  (* per-vertex generators give entrywise rate ranges *)
  let lo_rate = Array.make_matrix n n Float.infinity in
  let hi_rate = Array.make_matrix n n Float.neg_infinity in
  List.iter
    (fun theta ->
      let g = Imprecise_ctmc.generator_at ictmc theta in
      let dense = Generator.to_dense g in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let q = Mat.get dense i j in
          if q < lo_rate.(i).(j) then lo_rate.(i).(j) <- q;
          if q > hi_rate.(i).(j) then hi_rate.(i).(j) <- q
        done
      done)
    vertices;
  let rows =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then begin
              let lo = 1. +. (dt *. lo_rate.(i).(j)) in
              let hi = 1. +. (dt *. hi_rate.(i).(j)) in
              if lo < -1e-12 then
                invalid_arg
                  "Interval_dtmc.of_imprecise_ctmc: dt too large for exit rates";
              Interval.make (Float.max 0. lo) (Float.min 1. hi)
            end
            else
              Interval.make
                (Float.max 0. (dt *. lo_rate.(i).(j)))
                (Float.min 1. (dt *. hi_rate.(i).(j)))))
  in
  make rows
