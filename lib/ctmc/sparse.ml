open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

(* CSR by destination: for state j, the incoming edges are
   src.(off.(j)) .. src.(off.(j+1) - 1) in ascending source order,
   with probabilities prob (= rate / lambda).  diag_pos.(j) is the
   index of the first incoming edge with source > j, so the diagonal
   term 1 - exit_j/lambda can be folded in at exactly the position the
   dense transposed product visits it.

   blocks is a monotone boundary array [0; b1; ...; n] partitioning the
   destination range into cache-sized slices (bounded rows AND bounded
   stored entries), fixed at assembly time.  Both the sequential and
   the pooled step walk the same partition and combine per-block loss
   partials in block order, so every scalar reduction has one fixed
   association independent of the pool size.

   loss, when present, is the per-state one-step escape probability
   leak_j / lambda of a substochastic (truncated) operator; the fused
   step returns sum_j loss_j * v_j as the probability mass certified to
   have left the retained state space during the step. *)
type t = {
  n : int;
  lambda : float;
  diag : float array;
  off : int array;
  src : int array;
  prob : float array;
  diag_pos : int array;
  blocks : int array;
  loss : float array option;
}

let n_states op = op.n

let nnz op = Array.length op.src

let rate op = op.lambda

let n_blocks op = Array.length op.blocks - 1

let substochastic op = op.loss <> None

(* Cache-block bounds: a block never exceeds [block_rows] destinations
   nor (beyond its first row) [block_nnz] stored entries, so one block's
   slice of src/prob plus its stripe of v stays L2-resident and one
   block is a sensible unit of pool work. *)
let block_rows = 4096

let block_nnz = 16384

let make_blocks n off =
  let acc = ref [] in
  let start = ref 0 in
  while !start < n do
    let stop = ref (!start + 1) in
    while
      !stop < n
      && !stop - !start < block_rows
      && off.(!stop + 1) - off.(!start) <= block_nnz
    do
      incr stop
    done;
    acc := !stop :: !acc;
    start := !stop
  done;
  Array.of_list (0 :: List.rev !acc)

let forward ?rate ?leak g =
  let n = Generator.n_states g in
  (match leak with
  | Some l when Array.length l <> n ->
      invalid_arg "Sparse.forward: leak dimension mismatch"
  | _ -> ());
  let total_exit i =
    Generator.exit_rate g i
    +. (match leak with None -> 0. | Some l -> l.(i))
  in
  let max_total =
    let m = ref 0. in
    for i = 0 to n - 1 do
      m := Float.max !m (total_exit i)
    done;
    !m
  in
  let lambda =
    match rate with
    | Some r ->
        if r < max_total then
          invalid_arg "Sparse.forward: rate below max exit rate";
        r
    | None -> Float.max 1e-9 (1.01 *. max_total)
  in
  let counts = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) (Generator.outgoing g i)
  done;
  let off = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    off.(j + 1) <- off.(j) + counts.(j)
  done;
  let m = off.(n) in
  let src = Array.make m 0 and prob = Array.make m 0. in
  let cursor = Array.sub off 0 n in
  (* sources are filled in ascending order because i runs 0..n-1 *)
  for i = 0 to n - 1 do
    Array.iter
      (fun (j, r) ->
        let c = cursor.(j) in
        src.(c) <- i;
        prob.(c) <- r /. lambda;
        cursor.(j) <- c + 1)
      (Generator.outgoing g i)
  done;
  let diag = Array.init n (fun j -> 1. -. (total_exit j /. lambda)) in
  let diag_pos =
    Array.init n (fun j ->
        let p = ref off.(j + 1) in
        (try
           for e = off.(j) to off.(j + 1) - 1 do
             if src.(e) > j then begin
               p := e;
               raise Exit
             end
           done
         with Exit -> ());
        !p)
  in
  let loss =
    match leak with
    | None -> None
    | Some l -> Some (Array.map (fun r -> r /. lambda) l)
  in
  { n; lambda; diag; off; src; prob; diag_pos; blocks = make_blocks n off; loss }

(* one destination slice of the fused step: into.(j) <- (Pᵀ v)(j) and,
   when weighted, acc.(j) <- acc.(j) + w * v.(j).  Index-owned writes
   only, so any chunking of [lo, hi) is bit-identical.  Returns the
   slice's escaped-mass partial sum_{j in [lo,hi)} loss_j v_j (0 for an
   exact operator), accumulated in ascending j order. *)
let segment op v into weight acc lo hi =
  let src = op.src and prob = op.prob and diag = op.diag in
  let off = op.off and diag_pos = op.diag_pos in
  let loss = op.loss in
  let lost = ref 0. in
  for j = lo to hi - 1 do
    let s = ref 0. in
    let dp = Array.unsafe_get diag_pos j in
    for e = Array.unsafe_get off j to dp - 1 do
      s :=
        !s
        +. (Array.unsafe_get prob e
            *. Array.unsafe_get v (Array.unsafe_get src e))
    done;
    s := !s +. (Array.unsafe_get diag j *. Array.unsafe_get v j);
    for e = dp to Array.unsafe_get off (j + 1) - 1 do
      s :=
        !s
        +. (Array.unsafe_get prob e
            *. Array.unsafe_get v (Array.unsafe_get src e))
    done;
    Array.unsafe_set into j !s;
    (match acc with
    | None -> ()
    | Some r ->
        Array.unsafe_set r j
          (Array.unsafe_get r j +. (weight *. Array.unsafe_get v j)));
    match loss with
    | None -> ()
    | Some l ->
        lost := !lost +. (Array.unsafe_get l j *. Array.unsafe_get v j)
  done;
  !lost

let step_into ?pool ?acc op v ~into =
  if Vec.dim v <> op.n || Vec.dim into <> op.n then
    invalid_arg "Sparse.step_into: dimension mismatch";
  if v == into then invalid_arg "Sparse.step_into: into aliases v";
  let weight, accv =
    match acc with None -> (0., None) | Some (w, r) -> (w, Some r)
  in
  (match accv with
  | Some r when Vec.dim r <> op.n ->
      invalid_arg "Sparse.step_into: accumulator dimension mismatch"
  | _ -> ());
  let blocks = op.blocks in
  let nb = Array.length blocks - 1 in
  if nb <= 0 then 0.
  else begin
    let partial = Array.make nb 0. in
    (match pool with
    | Some p when nb > 1 ->
        Pool.parallel_for ~stage:"ctmc-spmv" ~chunk:1 p nb (fun bi ->
            partial.(bi) <-
              segment op v into weight accv blocks.(bi) blocks.(bi + 1))
    | _ ->
        for bi = 0 to nb - 1 do
          partial.(bi) <-
            segment op v into weight accv blocks.(bi) blocks.(bi + 1)
        done);
    (* fixed block-ordered reduction: identical association for any
       pool size, including the sequential path *)
    let lost = ref 0. in
    for bi = 0 to nb - 1 do
      lost := !lost +. partial.(bi)
    done;
    !lost
  end
