open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool

(* CSR by destination: for state j, the incoming edges are
   src.(off.(j)) .. src.(off.(j+1) - 1) in ascending source order,
   with probabilities prob (= rate / lambda).  diag_pos.(j) is the
   index of the first incoming edge with source > j, so the diagonal
   term 1 - exit_j/lambda can be folded in at exactly the position the
   dense transposed product visits it. *)
type t = {
  n : int;
  lambda : float;
  diag : float array;
  off : int array;
  src : int array;
  prob : float array;
  diag_pos : int array;
}

let n_states op = op.n

let nnz op = Array.length op.src

let rate op = op.lambda

let forward ?rate g =
  let n = Generator.n_states g in
  let lambda =
    match rate with
    | Some r ->
        if r < Generator.max_exit_rate g then
          invalid_arg "Sparse.forward: rate below max exit rate";
        r
    | None -> Float.max 1e-9 (1.01 *. Generator.max_exit_rate g)
  in
  let counts = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) (Generator.outgoing g i)
  done;
  let off = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    off.(j + 1) <- off.(j) + counts.(j)
  done;
  let m = off.(n) in
  let src = Array.make m 0 and prob = Array.make m 0. in
  let cursor = Array.sub off 0 n in
  (* sources are filled in ascending order because i runs 0..n-1 *)
  for i = 0 to n - 1 do
    Array.iter
      (fun (j, r) ->
        let c = cursor.(j) in
        src.(c) <- i;
        prob.(c) <- r /. lambda;
        cursor.(j) <- c + 1)
      (Generator.outgoing g i)
  done;
  let diag = Array.init n (fun j -> 1. -. (Generator.exit_rate g j /. lambda)) in
  let diag_pos =
    Array.init n (fun j ->
        let p = ref off.(j + 1) in
        (try
           for e = off.(j) to off.(j + 1) - 1 do
             if src.(e) > j then begin
               p := e;
               raise Exit
             end
           done
         with Exit -> ());
        !p)
  in
  { n; lambda; diag; off; src; prob; diag_pos }

(* one destination slice of the fused step: into.(j) <- (Pᵀ v)(j) and,
   when weighted, acc.(j) <- acc.(j) + w * v.(j).  Index-owned writes
   only, so any chunking of [lo, hi) is bit-identical. *)
let segment op v into weight acc lo hi =
  let src = op.src and prob = op.prob and diag = op.diag in
  let off = op.off and diag_pos = op.diag_pos in
  for j = lo to hi - 1 do
    let s = ref 0. in
    let dp = Array.unsafe_get diag_pos j in
    for e = Array.unsafe_get off j to dp - 1 do
      s :=
        !s
        +. (Array.unsafe_get prob e
            *. Array.unsafe_get v (Array.unsafe_get src e))
    done;
    s := !s +. (Array.unsafe_get diag j *. Array.unsafe_get v j);
    for e = dp to Array.unsafe_get off (j + 1) - 1 do
      s :=
        !s
        +. (Array.unsafe_get prob e
            *. Array.unsafe_get v (Array.unsafe_get src e))
    done;
    Array.unsafe_set into j !s;
    match acc with
    | None -> ()
    | Some r ->
        Array.unsafe_set r j
          (Array.unsafe_get r j +. (weight *. Array.unsafe_get v j))
  done

let chunk_size = 4096

let step_into ?pool ?acc op v ~into =
  if Vec.dim v <> op.n || Vec.dim into <> op.n then
    invalid_arg "Sparse.step_into: dimension mismatch";
  if v == into then invalid_arg "Sparse.step_into: into aliases v";
  let weight, accv =
    match acc with None -> (0., None) | Some (w, r) -> (w, Some r)
  in
  (match accv with
  | Some r when Vec.dim r <> op.n ->
      invalid_arg "Sparse.step_into: accumulator dimension mismatch"
  | _ -> ());
  match pool with
  | Some p when op.n > chunk_size ->
      let n_chunks = (op.n + chunk_size - 1) / chunk_size in
      Pool.parallel_for ~stage:"ctmc-spmv" ~chunk:1 p n_chunks (fun ci ->
          let lo = ci * chunk_size in
          let hi = Stdlib.min op.n (lo + chunk_size) in
          segment op v into weight accv lo hi)
  | _ -> segment op v into weight accv 0 op.n
