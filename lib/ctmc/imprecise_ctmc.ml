open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool
module Obs = Umf_obs.Obs

type transition = { src : int; dst : int; rate : Vec.t -> float }

(* Static per-state row layout: merged destinations in ascending order
   (exactly the row [Generator.make] would produce) plus, for each
   transition of [by_src.(x)], the slot its rate accumulates into.
   Lets the simulator rebuild a state's outgoing row in O(out-degree)
   without constructing a [Generator.t]. *)
type row_layout = { dsts : int array; slot : int array }

type t = {
  n : int;
  theta : Optim.Box.t;
  by_src : transition array array;
  theta_vertices : Vec.t list;
  layout : row_layout array;
}

let layout_of_row row =
  let m = Array.length row in
  let sorted = Array.map (fun tr -> tr.dst) row in
  Array.sort compare sorted;
  let uniq = ref [] in
  Array.iteri
    (fun i d -> if i = 0 || d <> sorted.(i - 1) then uniq := d :: !uniq)
    sorted;
  let dsts = Array.of_list (List.rev !uniq) in
  let index_of d =
    let lo = ref 0 and hi = ref (Array.length dsts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if dsts.(mid) < d then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let slot = Array.make m 0 in
  Array.iteri (fun i tr -> slot.(i) <- index_of tr.dst) row;
  { dsts; slot }

let make ~n ~theta transitions =
  if n <= 0 then invalid_arg "Imprecise_ctmc.make: need n > 0";
  let acc = Array.make n [] in
  List.iter
    (fun tr ->
      if tr.src < 0 || tr.src >= n || tr.dst < 0 || tr.dst >= n then
        invalid_arg "Imprecise_ctmc.make: state out of range";
      if tr.src = tr.dst then invalid_arg "Imprecise_ctmc.make: self loop";
      acc.(tr.src) <- tr :: acc.(tr.src))
    transitions;
  let by_src = Array.map Array.of_list acc in
  {
    n;
    theta;
    by_src;
    theta_vertices = Optim.Box.vertices theta;
    layout = Array.map layout_of_row by_src;
  }

let n_states m = m.n

let theta_box m = m.theta

let generator_at m theta =
  let triples = ref [] in
  Array.iter
    (Array.iter (fun tr ->
         let r = tr.rate theta in
         if r < 0. then invalid_arg "Imprecise_ctmc: negative rate at theta";
         if r > 0. then triples := (tr.src, tr.dst, r) :: !triples))
    m.by_src;
  Generator.make ~n:m.n !triples

(* (Q^θ g)(x) for a given state x: the backward operator row *)
let row_value m g x theta =
  Array.fold_left
    (fun acc tr -> acc +. (tr.rate theta *. (g.(tr.dst) -. g.(x))))
    0. m.by_src.(x)

let max_exit_bound m =
  (* conservative uniformisation rate: max over θ-vertices of the exit
     rates (exact for rates monotone in θ, e.g. affine) *)
  let best = ref 1e-9 in
  for x = 0 to m.n - 1 do
    List.iter
      (fun theta ->
        let e =
          Array.fold_left (fun acc tr -> acc +. tr.rate theta) 0. m.by_src.(x)
        in
        if e > !best then best := e)
      m.theta_vertices
  done;
  !best

let steps_for ?steps_per_unit ~lambda duration =
  let per_unit =
    match steps_per_unit with
    | Some s ->
        if s <= 0 then invalid_arg "Imprecise_ctmc: steps_per_unit <= 0";
        float_of_int s
    | None -> Float.max 100. (10. *. lambda)
  in
  let steps = int_of_float (Float.ceil (duration *. per_unit)) in
  let steps = Stdlib.max steps 1 in
  (* stability guard: the Euler step of the backward equation is a
     convex combination of the current values iff dt·λ <= 1, which is
     what keeps the envelope inside [min h, max h]; auto-refine a too
     coarse user grid instead of letting the sweep blow up *)
  Stdlib.max steps (int_of_float (Float.ceil (duration *. lambda)))

(* Integrate d/dt g(x) = extremum_θ (Q^θ g)(x) for [duration], clamping
   each step to the invariant envelope [hmin, hmax] (under the dt·λ <= 1
   guard the clamp only trims float rounding).  Two swapped buffers
   instead of an allocation per step; each state's value is computed by
   the same per-x arithmetic as before into an index-owned slot, so any
   chunking over a pool is bit-identical to the sequential sweep. *)
let sweep_chunk = 1024

let step_body pick m ~dt ~hmin ~hmax cur nxt lo hi =
  for x = lo to hi - 1 do
    (* extremise the backward operator over the θ-vertices *)
    let best = ref None in
    List.iter
      (fun theta ->
        let v = row_value m cur x theta in
        best := Some (match !best with None -> v | Some b -> pick v b))
      m.theta_vertices;
    let rate = match !best with None -> 0. | Some v -> v in
    let v = cur.(x) +. (dt *. rate) in
    nxt.(x) <- (if v < hmin then hmin else if v > hmax then hmax else v)
  done

let step_once ?pool pick m ~dt ~hmin ~hmax cur nxt =
  match pool with
  | Some p when m.n > sweep_chunk ->
      let n_chunks = (m.n + sweep_chunk - 1) / sweep_chunk in
      Pool.parallel_for ~stage:"ctmc-backward" ~chunk:1 p n_chunks (fun ci ->
          let lo = ci * sweep_chunk in
          step_body pick m ~dt ~hmin ~hmax cur nxt lo
            (Stdlib.min m.n (lo + sweep_chunk)))
  | _ -> step_body pick m ~dt ~hmin ~hmax cur nxt 0 m.n

let euler_sweep ?pool ?(obs = Obs.off) pick m ~g ~duration ~steps ~hmin ~hmax =
  if duration > 0. then begin
    let dt = duration /. float_of_int steps in
    let sp = Obs.span_begin obs "ctmc.imprecise_sweep" in
    let cur = ref !g and nxt = ref (Vec.zeros m.n) in
    for _ = 1 to steps do
      let c = !cur and nx = !nxt in
      step_once ?pool pick m ~dt ~hmin ~hmax c nx;
      cur := nx;
      nxt := c
    done;
    g := !cur;
    if Obs.enabled obs then
      Obs.span_end
        ~metrics:
          [
            ("steps", float_of_int steps);
            ("rows", float_of_int (m.n * steps));
          ]
        obs sp
    else Obs.span_end obs sp
  end

let picker = function
  | `Lower -> fun a b -> Float.min a b
  | `Upper -> fun a b -> Float.max a b

type sense = [ `Lower | `Upper ]

type sweep = {
  values : Vec.t array;
  eps : float array;
  rounding : float array;
  steps : int;
}

let check_times times =
  let nt = Array.length times in
  if nt = 0 then invalid_arg "Imprecise_ctmc: no times";
  if times.(0) < 0. then invalid_arg "Imprecise_ctmc: negative horizon";
  for j = 1 to nt - 1 do
    if times.(j) <= times.(j - 1) then
      invalid_arg "Imprecise_ctmc: times not increasing"
  done

let osc g =
  let lo = ref g.(0) and hi = ref g.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    g;
  !hi -. !lo

(* Per-step floating-point error of the clamped Euler update, bounded
   coarsely but finitely: each of the <= max_row rate/difference
   accumulations per vertex, the vertex extremisation and the final
   axpy contribute O(eps_mach) relative to the working magnitude
   M = max(|h|_inf, λ·osc h).  Propagation does not amplify under the
   dt·λ <= 1 convex-combination regime (the step is nonexpansive), so
   the total is steps · ρ. *)
let rounding_per_step m ~hmin ~hmax ~lambda =
  let max_row =
    Array.fold_left
      (fun acc row -> Stdlib.max acc (Array.length row))
      0 m.by_src
  in
  let n_vert = List.length m.theta_vertices in
  let scale = Float.max (Float.abs hmin) (Float.abs hmax) in
  let magnitude = Float.max scale (lambda *. (hmax -. hmin)) in
  float_of_int ((3 * max_row * n_vert) + 4) *. epsilon_float *. magnitude

(* A-priori Euler error of one segment at fixed step size δ:
   the local truncation error of d/dt g = Q̲g is
   ‖g(t+δ) − (g(t) + δ Q̲g(t))‖ <= δ²λ²·osc(g) (the second derivative of
   the backward flow is bounded by ‖Q̲(Q̲g)‖ <= 2λ·‖Q̲g‖ <= 2λ²·osc g,
   halved by the Taylor remainder), and the exact and Euler flows are
   both nonexpansive for δλ <= 1, so local errors sum.  osc(g) is
   nonincreasing along the sweep (each step is a per-state convex
   combination), so the segment-start oscillation bounds every step. *)
let fixed_series ?pool ?obs ?steps_per_unit ~sense m ~h ~times =
  if Vec.dim h <> m.n then
    invalid_arg "Imprecise_ctmc: reward dimension mismatch";
  check_times times;
  let lambda = max_exit_bound m in
  let hmin = Vec.min_elt h and hmax = Vec.max_elt h in
  let rho = rounding_per_step m ~hmin ~hmax ~lambda in
  let pick = picker sense in
  let g = ref (Vec.copy h) in
  let prev = ref 0. in
  let err = ref 0. and rnd = ref 0. and total_steps = ref 0 in
  let nt = Array.length times in
  let values = Array.make nt [||] in
  let eps = Array.make nt 0. and rounding = Array.make nt 0. in
  (* the backward equation is autonomous, so one sweep up to the
     largest horizon serves every time point: integrate segment by
     segment and snapshot *)
  Array.iteri
    (fun j t ->
      let duration = t -. !prev in
      if duration > 0. then begin
        let steps = steps_for ?steps_per_unit ~lambda duration in
        let v = osc !g in
        let dt = duration /. float_of_int steps in
        err := !err +. (duration *. dt *. lambda *. lambda *. v);
        rnd := !rnd +. (float_of_int steps *. rho);
        total_steps := !total_steps + steps;
        euler_sweep ?pool ?obs pick m ~g ~duration ~steps ~hmin ~hmax
      end;
      prev := t;
      values.(j) <- Vec.copy !g;
      eps.(j) <- !err;
      rounding.(j) <- !rnd)
    times;
  { values; eps; rounding; steps = !total_steps }

(* Erreygers–De Bock adaptive step selection: spend the error budget at
   a constant rate ε/T per unit time.  With current oscillation v the
   local error of a δ-step is <= δ²λ²v, so per-unit-time error δλ²v
   stays within the rate iff δ <= rate/(λ²v); δ is additionally capped
   by the 1/λ stability bound and the remaining segment.  A constant g
   (v = 0) is a fixed point of the sweep — jump straight to the next
   snapshot. *)
let adaptive_max_steps = 20_000_000

let adaptive_series ?pool ?(obs = Obs.off) ~epsilon ~sense m ~h ~times =
  if Vec.dim h <> m.n then
    invalid_arg "Imprecise_ctmc: reward dimension mismatch";
  if not (epsilon > 0.) then
    invalid_arg "Imprecise_ctmc.adaptive_series: need epsilon > 0";
  check_times times;
  let lambda = max_exit_bound m in
  let hmin = Vec.min_elt h and hmax = Vec.max_elt h in
  let rho = rounding_per_step m ~hmin ~hmax ~lambda in
  let pick = picker sense in
  let nt = Array.length times in
  let t_max = times.(nt - 1) in
  let rate = if t_max > 0. then epsilon /. t_max else infinity in
  let cur = ref (Vec.copy h) and nxt = ref (Vec.zeros m.n) in
  let err = ref 0. and rnd = ref 0. and total_steps = ref 0 in
  let values = Array.make nt [||] in
  let eps = Array.make nt 0. and rounding = Array.make nt 0. in
  let sp = Obs.span_begin obs "ctmc.imprecise_sweep.adaptive" in
  let prev = ref 0. in
  Array.iteri
    (fun j t ->
      let t_rem = ref (t -. !prev) in
      while !t_rem > 0. do
        let v = osc !cur in
        if v <= 0. then t_rem := 0.
        else begin
          let dt =
            Float.min !t_rem
              (Float.min (1. /. lambda) (rate /. (lambda *. lambda *. v)))
          in
          if !total_steps >= adaptive_max_steps then
            failwith
              "Imprecise_ctmc.adaptive_series: step budget exhausted (epsilon \
               too small for this chain's exit rates)";
          let c = !cur and nx = !nxt in
          step_once ?pool pick m ~dt ~hmin ~hmax c nx;
          cur := nx;
          nxt := c;
          err := !err +. (dt *. dt *. lambda *. lambda *. v);
          rnd := !rnd +. rho;
          incr total_steps;
          t_rem := !t_rem -. dt
        end
      done;
      prev := t;
      values.(j) <- Vec.copy !cur;
      eps.(j) <- !err;
      rounding.(j) <- !rnd)
    times;
  if Obs.enabled obs then
    Obs.span_end
      ~metrics:
        [
          ("steps", float_of_int !total_steps);
          ("eps", !err);
          ("rows", float_of_int (m.n * !total_steps));
        ]
      obs sp
  else Obs.span_end obs sp;
  { values; eps; rounding; steps = !total_steps }

let absorbing m ~target =
  let trs = ref [] in
  Array.iter
    (Array.iter (fun tr -> if not (target tr.src) then trs := tr :: !trs))
    m.by_src;
  make ~n:m.n ~theta:m.theta !trs

(* deprecated fixed-grid entry points, bit-compatible wrappers over
   {!fixed_series} *)

let lower_expectation ?pool ?obs ?steps_per_unit m ~h ~horizon =
  if horizon < 0. then invalid_arg "Imprecise_ctmc: negative horizon";
  let sw =
    fixed_series ?pool ?obs ?steps_per_unit ~sense:`Lower m ~h
      ~times:[| horizon |]
  in
  sw.values.(0)

let upper_expectation ?pool ?obs ?steps_per_unit m ~h ~horizon =
  if horizon < 0. then invalid_arg "Imprecise_ctmc: negative horizon";
  let sw =
    fixed_series ?pool ?obs ?steps_per_unit ~sense:`Upper m ~h
      ~times:[| horizon |]
  in
  sw.values.(0)

let lower_series ?pool ?obs ?steps_per_unit m ~h ~times =
  (fixed_series ?pool ?obs ?steps_per_unit ~sense:`Lower m ~h ~times).values

let upper_series ?pool ?obs ?steps_per_unit m ~h ~times =
  (fixed_series ?pool ?obs ?steps_per_unit ~sense:`Upper m ~h ~times).values

let probability_bounds ?pool ?obs ?steps_per_unit m ~state ~horizon ~x0 =
  if state < 0 || state >= m.n || x0 < 0 || x0 >= m.n then
    invalid_arg "Imprecise_ctmc.probability_bounds: state out of range";
  let h = Array.init m.n (fun i -> if i = state then 1. else 0.) in
  let lo = lower_expectation ?pool ?obs ?steps_per_unit m ~h ~horizon in
  let hi = upper_expectation ?pool ?obs ?steps_per_unit m ~h ~horizon in
  (lo.(x0), hi.(x0))

type policy = t:float -> x:int -> Vec.t

let constant_policy theta ~t:_ ~x:_ = theta

(* Rebuild state [x]'s merged outgoing row at θ into [rates]
   (accumulation order matches [generator_at]'s duplicate merge, so
   summed rates are bit-identical to the Generator path). *)
let fill_row m rates x theta =
  Array.fill rates 0 (Array.length rates) 0.;
  let lay = m.layout.(x) in
  Array.iteri
    (fun i tr ->
      let r = tr.rate theta in
      if r < 0. then invalid_arg "Imprecise_ctmc: negative rate at theta";
      rates.(lay.slot.(i)) <- rates.(lay.slot.(i)) +. r)
    m.by_src.(x)

let simulate ?(cache = 64) rng m policy ~x0 ~tmax =
  if cache < 0 then invalid_arg "Imprecise_ctmc.simulate: cache < 0";
  (* per-θ cache of fully materialised rate rows — for (near-)constant
     policies every jump after the first is a table lookup instead of a
     full generator rebuild.  On overflow (more distinct θ than [cache]
     slots, e.g. a time-continuous policy) only the current state's row
     is rebuilt, into a reused scratch buffer. *)
  let tbl : (Vec.t, float array array) Hashtbl.t =
    Hashtbl.create (Stdlib.max 1 (Stdlib.min cache 64))
  in
  let scratch =
    Array.map (fun lay -> Array.make (Array.length lay.dsts) 0.) m.layout
  in
  let rates_for theta x =
    match Hashtbl.find_opt tbl theta with
    | Some rows -> rows.(x)
    | None ->
        if Hashtbl.length tbl < cache then begin
          let rows =
            Array.map
              (fun lay -> Array.make (Array.length lay.dsts) 0.)
              m.layout
          in
          for s = 0 to m.n - 1 do
            fill_row m rows.(s) s theta
          done;
          Hashtbl.add tbl (Vec.copy theta) rows;
          rows.(x)
        end
        else begin
          fill_row m scratch.(x) x theta;
          scratch.(x)
        end
  in
  Simulate.run_imprecise_rows
    ~rate_bound:(max_exit_bound m *. 1.000001)
    rng
    (fun ~t ~x ->
      let theta = Optim.Box.clamp m.theta (policy ~t ~x) in
      (m.layout.(x).dsts, rates_for theta x))
    ~x0 ~tmax
