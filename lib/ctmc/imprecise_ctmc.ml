open Umf_numerics

type transition = { src : int; dst : int; rate : Vec.t -> float }

type t = {
  n : int;
  theta : Optim.Box.t;
  by_src : transition list array;
  theta_vertices : Vec.t list;
}

let make ~n ~theta transitions =
  if n <= 0 then invalid_arg "Imprecise_ctmc.make: need n > 0";
  let by_src = Array.make n [] in
  List.iter
    (fun tr ->
      if tr.src < 0 || tr.src >= n || tr.dst < 0 || tr.dst >= n then
        invalid_arg "Imprecise_ctmc.make: state out of range";
      if tr.src = tr.dst then invalid_arg "Imprecise_ctmc.make: self loop";
      by_src.(tr.src) <- tr :: by_src.(tr.src))
    transitions;
  { n; theta; by_src; theta_vertices = Optim.Box.vertices theta }

let n_states m = m.n

let theta_box m = m.theta

let generator_at m theta =
  let triples = ref [] in
  Array.iter
    (List.iter (fun tr ->
         let r = tr.rate theta in
         if r < 0. then invalid_arg "Imprecise_ctmc: negative rate at theta";
         if r > 0. then triples := (tr.src, tr.dst, r) :: !triples))
    m.by_src;
  Generator.make ~n:m.n !triples

(* (Q^θ g)(x) for a given state x: the backward operator row *)
let row_value m g x theta =
  List.fold_left
    (fun acc tr -> acc +. (tr.rate theta *. (g.(tr.dst) -. g.(x))))
    0. m.by_src.(x)

let max_exit_bound m =
  (* conservative uniformisation rate: max over θ-vertices of the exit
     rates (exact for rates monotone in θ, e.g. affine) *)
  let best = ref 1e-9 in
  for x = 0 to m.n - 1 do
    List.iter
      (fun theta ->
        let e =
          List.fold_left (fun acc tr -> acc +. tr.rate theta) 0. m.by_src.(x)
        in
        if e > !best then best := e)
      m.theta_vertices
  done;
  !best

let extremal_expectation sense ?steps_per_unit m ~h ~horizon =
  if Vec.dim h <> m.n then
    invalid_arg "Imprecise_ctmc: reward dimension mismatch";
  if horizon < 0. then invalid_arg "Imprecise_ctmc: negative horizon";
  let lambda = max_exit_bound m in
  let per_unit =
    match steps_per_unit with
    | Some s ->
        if s <= 0 then invalid_arg "Imprecise_ctmc: steps_per_unit <= 0";
        float_of_int s
    | None -> Float.max 100. (10. *. lambda)
  in
  let steps = int_of_float (Float.ceil (horizon *. per_unit)) in
  let steps = Stdlib.max steps 1 in
  let dt = horizon /. float_of_int steps in
  let g = ref (Vec.copy h) in
  let pick =
    match sense with
    | `Lower -> fun a b -> Float.min a b
    | `Upper -> fun a b -> Float.max a b
  in
  if horizon > 0. then
    for _ = 1 to steps do
      let cur = !g in
      g :=
        Array.init m.n (fun x ->
            (* extremise the backward operator over the θ-vertices *)
            let best = ref None in
            List.iter
              (fun theta ->
                let v = row_value m cur x theta in
                best :=
                  Some (match !best with None -> v | Some b -> pick v b))
              m.theta_vertices;
            let rate = match !best with None -> 0. | Some v -> v in
            cur.(x) +. (dt *. rate))
    done;
  !g

let lower_expectation ?steps_per_unit m ~h ~horizon =
  extremal_expectation `Lower ?steps_per_unit m ~h ~horizon

let upper_expectation ?steps_per_unit m ~h ~horizon =
  extremal_expectation `Upper ?steps_per_unit m ~h ~horizon

let probability_bounds ?steps_per_unit m ~state ~horizon ~x0 =
  if state < 0 || state >= m.n || x0 < 0 || x0 >= m.n then
    invalid_arg "Imprecise_ctmc.probability_bounds: state out of range";
  let h = Array.init m.n (fun i -> if i = state then 1. else 0.) in
  let lo = lower_expectation ?steps_per_unit m ~h ~horizon in
  let hi = upper_expectation ?steps_per_unit m ~h ~horizon in
  (lo.(x0), hi.(x0))

type policy = t:float -> x:int -> Vec.t

let constant_policy theta ~t:_ ~x:_ = theta

let simulate rng m policy ~x0 ~tmax =
  Simulate.run_imprecise
    ~rate_bound:(max_exit_bound m *. 1.000001)
    rng
    (fun ~t ~x ->
      let theta = Optim.Box.clamp m.theta (policy ~t ~x) in
      generator_at m theta)
    ~x0 ~tmax
