(** Imprecise continuous-time Markov chains (Sec. II of the paper).

    A finite-state chain whose transition rates depend on a parameter
    vector θ constrained to a box Θ.  In the {e imprecise} semantics
    θ_t may vary in time (adapted to the process); in the {e uncertain}
    semantics θ is constant but unknown.

    Transient analysis uses the lower/upper expectation operators: the
    tight bounds on E[h(X_T)] over all adapted parameter processes
    solve the imprecise Kolmogorov backward equation

    d/dt g_t(x) = min_{θ ∈ Θ} Σ_y Q^θ(x,y) g_t(y),

    where the minimum is taken independently per state — exact for the
    imprecise semantics.

    {b Vertex extremisation.}  The per-state extremum over Θ is
    evaluated at the vertices of the box only.  This is exact when each
    row of Q^θ is {e affine} in θ (then (Q^θ g)(x) is affine in θ and
    its extremum over a box is attained at a vertex) — the common case
    for the paper's models, and what [Umf_lint] checks via the model's
    [affine_in_theta] flag.  For rates non-affine in θ the vertex sweep
    yields inner bounds only. *)

open Umf_numerics

type transition = { src : int; dst : int; rate : Vec.t -> float }
(** One parametrised transition; [rate θ] must be >= 0 on Θ. *)

type t

val make : n:int -> theta:Optim.Box.t -> transition list -> t
(** @raise Invalid_argument on out-of-range states or self loops. *)

val n_states : t -> int

val theta_box : t -> Optim.Box.t

val generator_at : t -> Vec.t -> Generator.t
(** The precise generator for a fixed θ.
    @raise Invalid_argument if some rate is negative at θ. *)

val max_exit_bound : t -> float
(** An upper bound on every exit rate over Θ: the maximum over the
    θ-vertices (exact for rates monotone in each θ component, e.g.
    affine).  The uniformisation rate used by {!simulate}. *)

type sense = [ `Lower | `Upper ]
(** Which extremum of the backward operator the sweep integrates. *)

type sweep = {
  values : Vec.t array;  (** expectation vector at each requested time *)
  eps : float array;
      (** a-priori Euler discretisation error bound accumulated up to
          each time: Σ δ²λ²·osc(g) over the steps taken so far *)
  rounding : float array;
      (** accumulated floating-point rounding bound at each time *)
  steps : int;  (** total Euler steps across the whole sweep *)
}
(** A certified backward sweep: [values.(j).(x)] bounds
    E[h(X_times(j)) | X_0 = x] to within [eps.(j) + rounding.(j)]
    (from below for [`Lower], above for [`Upper]). *)

val fixed_series :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?steps_per_unit:int ->
  sense:sense ->
  t ->
  h:Vec.t ->
  times:float array ->
  sweep
(** Fixed-grid backward sweep over the strictly increasing
    [times >= 0] — one sweep up to the largest horizon with snapshots
    (the equation is autonomous), not one sweep per horizon.
    [steps_per_unit] (default: enough for stability at the maximal exit
    rate, at least 100) controls the discretisation; the grid is
    automatically refined to dt·λ <= 1 (λ = {!max_exit_bound}), the
    condition under which each Euler step is a convex combination of
    current values — so the sweep always stays in the invariant
    envelope [min h, max h] (values are clamped there against float
    rounding) and the a-priori [eps] bound Σ δ²λ²·osc(g) is sound.

    [values] is bit-identical to what the deprecated
    [lower_series]/[upper_series] returned on the same grid.  [pool]
    fans each Euler step out over index-owned state chunks,
    bit-identically to the sequential sweep for any domain count; [obs]
    records a ["ctmc.imprecise_sweep"] span per integrated segment
    (steps, rows touched). *)

val adaptive_series :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  epsilon:float ->
  sense:sense ->
  t ->
  h:Vec.t ->
  times:float array ->
  sweep
(** Adaptive backward sweep in the style of Erreygers–De Bock: the
    caller names a target discretisation error [epsilon] for the whole
    horizon and the step size is chosen per step as
    δ = min(t_rem, 1/λ, (ε/T)/(λ²·osc g)) — spending the budget at a
    constant rate per unit time, so the returned [eps] satisfies
    [eps.(j) <= epsilon · times.(j) / times.(nt-1)] a-priori.  When the
    iterate goes flat (osc g = 0, e.g. after absorption dominates) the
    sweep jumps to the next snapshot for free.
    @raise Invalid_argument if [epsilon <= 0]
    @raise Failure if the budget needs more than 2·10⁷ steps. *)

val absorbing : t -> target:(int -> bool) -> t
(** [absorbing m ~target] is the chain with every transition out of a
    [target] state removed — those states become absorbing.  With the
    indicator of the target set as reward, the backward sweep on the
    absorbed chain bounds hitting probabilities
    P(τ_target <= horizon | X_0 = x). *)

val lower_expectation :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?steps_per_unit:int ->
  t ->
  h:Vec.t ->
  horizon:float ->
  Vec.t
  [@@deprecated "use fixed_series ~sense:`Lower (certified sweep)"]
(** [lower_expectation m ~h ~horizon] is the vector of lower
    expectations x ↦ E̲[h(X_horizon) | X_0 = x] — the singleton-time
    [values] of {!fixed_series}, without the error ledger. *)

val upper_expectation :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?steps_per_unit:int ->
  t ->
  h:Vec.t ->
  horizon:float ->
  Vec.t
  [@@deprecated "use fixed_series ~sense:`Upper (certified sweep)"]

val lower_series :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?steps_per_unit:int ->
  t ->
  h:Vec.t ->
  times:float array ->
  Vec.t array
  [@@deprecated "use fixed_series ~sense:`Lower (certified sweep)"]
(** The [values] of {!fixed_series} with [~sense:`Lower] —
    bit-identical, minus the error ledger. *)

val upper_series :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?steps_per_unit:int ->
  t ->
  h:Vec.t ->
  times:float array ->
  Vec.t array
  [@@deprecated "use fixed_series ~sense:`Upper (certified sweep)"]

val probability_bounds :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?steps_per_unit:int ->
  t ->
  state:int ->
  horizon:float ->
  x0:int ->
  float * float
  [@@deprecated
    "use fixed_series/adaptive_series on an indicator reward (certified \
     sweep)"]
(** Lower and upper bounds on P(X_horizon = state | X_0 = x0). *)

type policy = t:float -> x:int -> Vec.t
(** An adapted parameter policy: observes time and current state,
    returns θ ∈ Θ. *)

val constant_policy : Vec.t -> policy

val simulate :
  ?cache:int -> Rng.t -> t -> policy -> x0:int -> tmax:float -> Path.t
(** Simulate the chain under a policy (θ frozen between jumps) by exact
    thinning at rate {!max_exit_bound}.

    Outgoing rows are rebuilt from a static per-state layout instead of
    constructing a full generator at every jump: rows for up to [cache]
    distinct θ values (default 64) are materialised once and reused —
    for a constant policy every jump after the first is a lookup — and
    past the cache bound only the current state's row is recomputed
    into a reused scratch buffer.  Sample paths are draw-for-draw
    identical for every [cache] value (including 0) and to the former
    rebuild-per-jump implementation.
    @raise Invalid_argument if [cache < 0] or some rate is negative on
    Θ. *)
