(** Imprecise continuous-time Markov chains (Sec. II of the paper).

    A finite-state chain whose transition rates depend on a parameter
    vector θ constrained to a box Θ.  In the {e imprecise} semantics
    θ_t may vary in time (adapted to the process); in the {e uncertain}
    semantics θ is constant but unknown.

    Transient analysis uses the lower/upper expectation operators: the
    tight bounds on E[h(X_T)] over all adapted parameter processes
    solve the imprecise Kolmogorov backward equation

    d/dt g_t(x) = min_{θ ∈ Θ} Σ_y Q^θ(x,y) g_t(y),

    where the minimum is taken independently per state — exact for the
    imprecise semantics. *)

open Umf_numerics

type transition = { src : int; dst : int; rate : Vec.t -> float }
(** One parametrised transition; [rate θ] must be >= 0 on Θ. *)

type t

val make : n:int -> theta:Optim.Box.t -> transition list -> t
(** @raise Invalid_argument on out-of-range states or self loops. *)

val n_states : t -> int

val theta_box : t -> Optim.Box.t

val generator_at : t -> Vec.t -> Generator.t
(** The precise generator for a fixed θ.
    @raise Invalid_argument if some rate is negative at θ. *)

val lower_expectation :
  ?steps_per_unit:int -> t -> h:Vec.t -> horizon:float -> Vec.t
(** [lower_expectation m ~h ~horizon] is the vector of lower
    expectations x ↦ E̲[h(X_horizon) | X_0 = x].  The backward equation
    is integrated with uniformisation-style Euler steps;
    [steps_per_unit] (default: enough for stability at the maximal exit
    rate, at least 100) controls the discretisation. *)

val upper_expectation :
  ?steps_per_unit:int -> t -> h:Vec.t -> horizon:float -> Vec.t

val probability_bounds :
  ?steps_per_unit:int -> t -> state:int -> horizon:float -> x0:int -> float * float
(** Lower and upper bounds on P(X_horizon = state | X_0 = x0). *)

type policy = t:float -> x:int -> Vec.t
(** An adapted parameter policy: observes time and current state,
    returns θ ∈ Θ. *)

val constant_policy : Vec.t -> policy

val simulate :
  Rng.t -> t -> policy -> x0:int -> tmax:float -> Path.t
(** Simulate the chain under a policy (θ frozen between jumps). *)
