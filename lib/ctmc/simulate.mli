(** Exact stochastic simulation of finite-state CTMCs. *)

val run :
  Umf_numerics.Rng.t -> Generator.t -> x0:int -> tmax:float -> Path.t
(** Gillespie-style exact simulation from [x0] until [tmax] (or until
    an absorbing state is reached, in which case the path's horizon is
    still [tmax]). *)

val run_imprecise :
  ?rate_bound:float ->
  Umf_numerics.Rng.t ->
  (t:float -> x:int -> Generator.t) ->
  x0:int ->
  tmax:float ->
  Path.t
(** Simulation where the generator may depend on time and state (an
    adapted θ-policy applied to an imprecise chain).

    With [rate_bound] (an upper bound on every exit rate), exact
    Lewis/Ogata thinning is used: correct for arbitrary measurable
    time dependence.  Without it, the generator is frozen between
    jumps — exact only for policies that change at transition
    epochs.
    @raise Invalid_argument if an exit rate exceeds [rate_bound]. *)

val run_imprecise_rows :
  Umf_numerics.Rng.t ->
  (t:float -> x:int -> int array * float array) ->
  x0:int ->
  tmax:float ->
  rate_bound:float ->
  Path.t
(** Thinning simulation fed by merged outgoing rows [(dsts, rates)]
    instead of a [Generator.t] — destinations ascending, zero rates
    allowed.  Skips generator construction on every jump; draw-for-draw
    identical to the [rate_bound] path of {!run_imprecise} on the
    equivalent generator (zero-rate slots are never selected and
    consume no extra randomness).  The returned arrays are read before
    the next [row_at] call, so callers may reuse buffers.
    @raise Invalid_argument if an exit rate exceeds [rate_bound]. *)

val mean_reward :
  Umf_numerics.Rng.t ->
  Generator.t ->
  x0:int ->
  tmax:float ->
  runs:int ->
  (int -> float) ->
  float * float
(** Monte-Carlo estimate (mean, standard error) of the reward of the
    final state over [runs] independent paths. *)
