(** Stationary distributions of irreducible finite CTMCs. *)

val gth : Generator.t -> Umf_numerics.Vec.t
(** The stationary distribution by the Grassmann–Taksar–Heyman
    elimination algorithm — subtraction-free, hence numerically stable
    even for stiff chains.
    @raise Failure if the chain is reducible (elimination encounters a
    zero pivot). *)

val power_iteration :
  ?tol:float -> ?max_iter:int -> Generator.t -> Umf_numerics.Vec.t
(** The same distribution by power iteration on the uniformised DTMC —
    used as a cross-check of {!gth}.
    @raise Failure if the iteration does not converge. *)
