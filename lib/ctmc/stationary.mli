(** Stationary distributions of irreducible finite CTMCs. *)

val gth : Generator.t -> Umf_numerics.Vec.t
(** The stationary distribution by the Grassmann–Taksar–Heyman
    elimination algorithm — subtraction-free, hence numerically stable
    even for stiff chains.
    @raise Failure if the chain is reducible (elimination encounters a
    zero pivot). *)

val power_iteration :
  ?pool:Umf_runtime.Runtime.Pool.t ->
  ?obs:Umf_obs.Obs.t ->
  ?tol:float ->
  ?max_iter:int ->
  Generator.t ->
  Umf_numerics.Vec.t
(** The same distribution by power iteration on the uniformised DTMC —
    used as a cross-check of {!gth}.  Iterates through the sparse
    forward operator {!Sparse.step_into} with reused buffers (no dense
    matrix, no per-iteration allocation); results are bit-identical to
    the former dense implementation, and [pool]-parallel steps are
    bit-identical to sequential ones.
    @raise Failure if the iteration does not converge. *)
