type t = { times : float array; states : int array; horizon : float }

let make ~times ~states ~horizon =
  let n = Array.length times in
  if n = 0 then invalid_arg "Path.make: empty path";
  if n <> Array.length states then invalid_arg "Path.make: length mismatch";
  for i = 1 to n - 1 do
    if times.(i) < times.(i - 1) then
      invalid_arg "Path.make: times not increasing"
  done;
  if horizon < times.(n - 1) then
    invalid_arg "Path.make: horizon before last jump";
  { times; states; horizon }

let length p = Array.length p.times

let state_at p t =
  let n = Array.length p.times in
  if t <= p.times.(0) then p.states.(0)
  else if t >= p.times.(n - 1) then p.states.(n - 1)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if p.times.(mid) <= t then lo := mid else hi := mid
    done;
    p.states.(!lo)
  end

let final_state p = p.states.(Array.length p.states - 1)

let time_average p reward =
  let n = Array.length p.times in
  let total = p.horizon -. p.times.(0) in
  if total <= 0. then reward p.states.(0)
  else begin
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let t_end = if i = n - 1 then p.horizon else p.times.(i + 1) in
      acc := !acc +. ((t_end -. p.times.(i)) *. reward p.states.(i))
    done;
    !acc /. total
  end

let occupancy p n =
  Array.init n (fun s -> time_average p (fun x -> if x = s then 1. else 0.))

let jumps p = length p - 1
