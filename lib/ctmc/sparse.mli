(** Sparse uniformised-step kernels.

    The dense path ([Generator.uniformized] + [Mat.tmulv]) materialises
    the n x n DTMC matrix P = I + Q/Λ, which caps the finite-N engine
    at a few thousand states.  This module compiles a generator's
    adjacency into a CSR-by-destination operator and applies the
    forward uniformised step p' = Pᵀ p in O(nnz), allocation-free and
    optionally fanned out over a {!Umf_runtime.Runtime.Pool}.

    Bit-compatibility contract: for every vector [v] of finite floats,
    [step_into op v ~into] writes exactly the same bits as
    [Mat.tmulv (Generator.uniformized ~rate g) v] — per destination the
    incoming terms are accumulated in ascending source order with the
    diagonal term inserted at its dense position, and each edge weight
    is the same [rate /. Λ] float the dense constructor stores.  The
    pool-parallel path chunks destinations into index-owned slices, so
    it is bit-identical to the sequential path for any pool size. *)

module Pool = Umf_runtime.Runtime.Pool

type t
(** A compiled forward uniformised operator for a fixed rate Λ. *)

val forward : ?rate:float -> Generator.t -> t
(** [forward g] compiles P = I + Q/Λ in transposed (by-destination)
    layout; [rate] defaults to [1.01 * max_exit_rate] exactly like
    {!Generator.uniformized}.
    @raise Invalid_argument if [rate] is below the maximal exit
    rate. *)

val n_states : t -> int

val nnz : t -> int
(** Stored off-diagonal entries (the generator's transition count). *)

val rate : t -> float
(** The uniformisation rate Λ the operator was compiled for. *)

val step_into :
  ?pool:Pool.t ->
  ?acc:float * Umf_numerics.Vec.t ->
  t ->
  Umf_numerics.Vec.t ->
  into:Umf_numerics.Vec.t ->
  unit
(** [step_into op v ~into] writes Pᵀ v into [into] ([into] must not
    alias [v]).  With [acc = (w, r)] it additionally accumulates
    [r <- r + w * v] in the same pass — the fused
    accumulate-and-advance of the uniformisation loop, sharing one
    parallel section.  @raise Invalid_argument on dimension mismatch or
    aliasing. *)
