(** Sparse uniformised-step kernels.

    The dense path ([Generator.uniformized] + [Mat.tmulv]) materialises
    the n x n DTMC matrix P = I + Q/Λ, which caps the finite-N engine
    at a few thousand states.  This module compiles a generator's
    adjacency into a cache-blocked CSR-by-destination operator and
    applies the forward uniformised step p' = Pᵀ p in O(nnz),
    allocation-free and optionally fanned out over a
    {!Umf_runtime.Runtime.Pool}.

    Bit-compatibility contract: for every vector [v] of finite floats,
    [step_into op v ~into] writes exactly the same bits as
    [Mat.tmulv (Generator.uniformized ~rate g) v] — per destination the
    incoming terms are accumulated in ascending source order with the
    diagonal term inserted at its dense position, and each edge weight
    is the same [rate /. Λ] float the dense constructor stores.  The
    destination range is partitioned into cache-sized blocks at
    assembly time; writes are index-owned and the scalar escaped-mass
    reduction combines per-block partials in fixed block order, so the
    pooled path is bit-identical to the sequential path for any pool
    size.

    Substochastic (truncated) operators: [forward ?leak] folds a
    per-state escape rate into the diagonal, making column sums fall
    short of 1 by [leak_j / Λ].  Each [step_into] then returns the
    probability mass that provably left the retained state space during
    that step — the raw material for the certified adaptive-truncation
    mode of {!Transient}. *)

module Pool = Umf_runtime.Runtime.Pool

type t
(** A compiled forward uniformised operator for a fixed rate Λ. *)

val forward : ?rate:float -> ?leak:float array -> Generator.t -> t
(** [forward g] compiles P = I + Q/Λ in transposed (by-destination)
    layout; [rate] defaults to [1.01 * max_i (exit_i + leak_i)] —
    exactly {!Generator.uniformized}'s default when [leak] is absent.
    [leak.(i)] is an extra exit rate from state [i] to outside the
    retained space; it deepens the diagonal deficit and is reported per
    step by {!step_into}.
    @raise Invalid_argument if [rate] is below the maximal total exit
    rate or [leak] has the wrong dimension. *)

val n_states : t -> int

val nnz : t -> int
(** Stored off-diagonal entries (the generator's transition count). *)

val rate : t -> float
(** The uniformisation rate Λ the operator was compiled for. *)

val n_blocks : t -> int
(** Number of cache blocks the destination range was partitioned into
    at assembly time (each ≤ 4096 rows and, beyond its first row,
    ≤ 16384 stored entries). *)

val substochastic : t -> bool
(** Whether the operator carries a truncation leak (column sums < 1). *)

val step_into :
  ?pool:Pool.t ->
  ?acc:float * Umf_numerics.Vec.t ->
  t ->
  Umf_numerics.Vec.t ->
  into:Umf_numerics.Vec.t ->
  float
(** [step_into op v ~into] writes Pᵀ v into [into] ([into] must not
    alias [v]) and returns the escaped probability mass
    [sum_j leak_j/Λ * v_j] — exactly [0.] for an exact operator.  With
    [acc = (w, r)] it additionally accumulates [r <- r + w * v] in the
    same pass — the fused accumulate-and-advance of the uniformisation
    loop, sharing one parallel section.  @raise Invalid_argument on
    dimension mismatch or aliasing. *)
