(** Finite-difference derivatives. *)

val derivative : ?h:float -> (float -> float) -> float -> float
(** Central difference df/dx. *)

val gradient : ?h:float -> (Vec.t -> float) -> Vec.t -> Vec.t

val jacobian : ?h:float -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t
(** [jacobian f x] is the matrix J with J(i)(j) = ∂f_i/∂x_j, by central
    differences with per-coordinate step scaled to [x]. *)

val jacobian_tv : ?h:float -> (Vec.t -> Vec.t) -> Vec.t -> Vec.t -> Vec.t
(** [jacobian_tv f x p] is Jᵀ p without materialising J — one gradient
    of the scalar map [y ↦ f(y)·p].  This is the costate right-hand
    side building block. *)
