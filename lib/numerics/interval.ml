type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: NaN";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_float x = make x x

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let hull_list = function
  | [] -> invalid_arg "Interval.hull_list: empty list"
  | iv :: rest -> List.fold_left hull iv rest

let lo iv = iv.lo

let hi iv = iv.hi

let width iv = iv.hi -. iv.lo

let midpoint iv = 0.5 *. (iv.lo +. iv.hi)

let mem x iv = iv.lo <= x && x <= iv.hi

let subset a b = b.lo <= a.lo && a.hi <= b.hi

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }

let neg a = { lo = -.a.hi; hi = -.a.lo }

let mul a b =
  let p1 = a.lo *. b.lo
  and p2 = a.lo *. b.hi
  and p3 = a.hi *. b.lo
  and p4 = a.hi *. b.hi in
  {
    lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
  }

let inv a =
  if mem 0. a then raise Division_by_zero;
  { lo = 1. /. a.hi; hi = 1. /. a.lo }

let div a b = mul a (inv b)

let scale s a = if s >= 0. then { lo = s *. a.lo; hi = s *. a.hi } else { lo = s *. a.hi; hi = s *. a.lo }

let sq a =
  if a.lo >= 0. then { lo = a.lo *. a.lo; hi = a.hi *. a.hi }
  else if a.hi <= 0. then { lo = a.hi *. a.hi; hi = a.lo *. a.lo }
  else { lo = 0.; hi = Float.max (a.lo *. a.lo) (a.hi *. a.hi) }

let sqrt a =
  if a.lo < 0. then invalid_arg "Interval.sqrt: negative values";
  { lo = Float.sqrt a.lo; hi = Float.sqrt a.hi }

let exp a = { lo = Float.exp a.lo; hi = Float.exp a.hi }

let log a =
  if a.lo <= 0. then invalid_arg "Interval.log: non-positive values";
  { lo = Float.log a.lo; hi = Float.log a.hi }

let monotone f a =
  let x = f a.lo and y = f a.hi in
  { lo = Float.min x y; hi = Float.max x y }

let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }

let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let clamp iv x = Float.min iv.hi (Float.max iv.lo x)

let sample iv n =
  if n < 1 then invalid_arg "Interval.sample: need n >= 1";
  if n = 1 then [| midpoint iv |]
  else Vec.linspace iv.lo iv.hi n

let pp ppf iv = Format.fprintf ppf "[%g, %g]" iv.lo iv.hi

let equal ?(tol = 0.) a b =
  Float.abs (a.lo -. b.lo) <= tol && Float.abs (a.hi -. b.hi) <= tol
