(** Abstract interpretation of compiled tapes: certified float-safety,
    a-priori rounding-error bounds, and sign facts.

    {!Lint} certifies properties of the {e mathematical} model — rate
    signs, Lipschitz constants — at the {!Expr} level.  This module
    certifies the {e executable}: it abstractly interprets the exact
    instruction stream of a compiled {!Tape} (fused multiply-adds,
    eager [Ite] branches and all) over a state box × θ-box, in three
    cooperating abstract domains:

    - {b Ranges.}  A total, outward-widened interval per slot.  Unlike
      {!Interval.div}, division by a zero-containing divisor never
      raises: it yields an unbounded enclosure and a finding.  Every
      enclosure contains both the real-arithmetic value and the float
      value actually computed by {!Tape.Plan.run}, because each
      widening step covers one rounding.  Range facts certify the
      absence of division-by-zero, NaN and overflow per instruction
      (T0xx) and flag constant/dead code (T3xx) and unbounded outputs
      (T401).

    - {b First-order error forms.}  Alongside its range, each slot
      carries an accumulated absolute rounding-error bound: a proof
      that the computed float differs from the exact real result by at
      most that much, propagated FPTaylor-style (each operation adds
      one ulp-weighted rounding term and amplifies the incoming errors
      by the operation's conditioning over the ranges).  The bound is
      {e branch-local}: at an [Ite]/[Min]/[Max] whose comparison is not
      decided over the box, it bounds the distance to the exact result
      {e of the branch the floats chose}; undecided guards whose
      operand carries rounding error are reported separately (T104)
      rather than charged the full branch gap, which would drown every
      piecewise model in noise.  Per-output bounds surface as T101 and
      as {!output_fact.abs_err}.

    - {b Sign facts.}  Decided output signs over the box (T201 at this
      level; {!Lint} runs Jacobian tapes through the same interpreter
      to obtain certified ∂f/∂θ monotonicity and vertex-optimality
      facts, T202–T204).

    Soundness contract (property-tested at 10⁴ points per bundled
    model): for every input in the box, the value computed by
    {!Tape.Plan.run} lies inside [range] and within [abs_err] of the
    exact real evaluation with the same branch choices.  The analysis
    is sound but not complete — interval dependency makes ranges
    over-wide, so a [Warning] means "not certified", not "wrong";
    [Error] (T002: a divisor identically zero) is a definite defect. *)

type severity = Error | Warning | Info

type subject =
  | Tape  (** the tape as a whole *)
  | Output of int  (** the i-th compiled expression *)
  | Instr of int  (** instruction index, as in {!Tape.instructions} *)
  | Var_slot of int  (** input slot for state coordinate x_i *)
  | Theta_slot of int  (** input slot for parameter θ_j *)

type finding = {
  code : string;  (** stable code, ["T001"]… *)
  severity : severity;
  subject : subject;
  message : string;
}

(** Decided sign of an output over the whole domain. *)
type sign = Pos | Neg | Zero | Non_neg | Non_pos | Mixed

type output_fact = {
  range : Interval.t;
      (** enclosure of both the real and the computed value; endpoints
          may be infinite *)
  abs_err : float;
      (** certified bound on |computed float − exact real| (branch-
          local, see above); [infinity] when not certifiable *)
  sign : sign;  (** decided from [range] (real semantics) *)
  constant : bool;  (** the output is one value over the whole box *)
  may_be_nan : bool;  (** NaN reachable (e.g. 0/0 under a guard) *)
}

type report = {
  findings : finding list;  (** in code order *)
  outputs : output_fact array;  (** one per tape output *)
  float_safe : bool;
      (** no division-by-zero, NaN or overflow is reachable (no T0xx
          defect anywhere in the tape) *)
  max_abs_err : float;
      (** max of [abs_err] over the outputs; 0 for an output-free tape *)
  n_instrs : int;  (** instructions interpreted *)
}

val analyze :
  ?var_names:string array ->
  ?theta_names:string array ->
  Tape.t ->
  x:Interval.t array ->
  th:Interval.t array ->
  report
(** Interpret the tape over the given boxes.  [x]/[th] must cover the
    tape's input dimensions; names (when given) make messages readable.
    Never raises on any tape content — total by construction.
    @raise Invalid_argument on input dimension mismatch only. *)

val ranges :
  Tape.t -> x:Interval.t array -> th:Interval.t array -> Interval.t array
(** Total replacement for {!Tape.Plan.run_interval}: per-output enclosures
    that never raise — a division by a zero-containing divisor yields
    infinite endpoints instead of [Division_by_zero].  Slightly wider
    than {!Tape.Plan.run_interval} (outward widening covers rounding). *)

(** {1 Report access} *)

val errors : report -> finding list

val warnings : report -> finding list

val ok : report -> bool
(** No [Error]-level findings. *)

val findings_with : report -> string -> finding list

val describe : string -> string
(** One-line description of a T-code (empty for unknown codes). *)

val code_table : (string * string) list
(** All T-codes with their descriptions, in code order. *)

val severity_to_string : severity -> string

val sign_to_string : sign -> string

val pp_finding : Format.formatter -> finding -> unit

val pp_report : Format.formatter -> report -> unit
