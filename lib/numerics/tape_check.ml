(* Abstract interpretation of compiled tapes.

   One forward pass over [Tape.instructions] carries, per workspace
   slot, an abstract value

     { lo; hi;    a closed interval enclosing BOTH the exact real
                  result and the float the tape computes (each
                  operation widens its endpoints outward by two ulps,
                  which covers one endpoint rounding plus one interior
                  rounding);
       err;       a certified bound on |computed float - exact real|,
                  propagated first-order (FPTaylor-style): each
                  operation adds one ulp-weighted rounding term and
                  amplifies incoming errors by its conditioning over
                  the ranges.  Branch-local at undecided [Ite]s;
       nan }      whether the computed value can be NaN.

   The arithmetic is total: division by a zero-containing divisor
   yields [-inf, inf] plus a finding (T001/T002) — never an exception.
   NaN endpoints arising from inf - inf / 0 * inf are replaced by the
   conservative infinity of their side and flagged (T003). *)

type severity = Error | Warning | Info

type subject =
  | Tape
  | Output of int
  | Instr of int
  | Var_slot of int
  | Theta_slot of int

type finding = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
}

type sign = Pos | Neg | Zero | Non_neg | Non_pos | Mixed

type output_fact = {
  range : Interval.t;
  abs_err : float;
  sign : sign;
  constant : bool;
  may_be_nan : bool;
}

type report = {
  findings : finding list;
  outputs : output_fact array;
  float_safe : bool;
  max_abs_err : float;
  n_instrs : int;
}

let code_table =
  [
    ("T001", "a divisor can be zero on the domain: division-by-zero reachable");
    ("T002", "divisor is identically zero on the domain: certain division by zero");
    ("T003", "NaN reachable (inf - inf, 0 * inf, 0/0 or inf/inf)");
    ("T004", "finite operands can overflow to an infinity");
    ("T005", "tape certified float-safe: no division by zero, NaN or overflow is reachable");
    ("T101", "certified a-priori rounding-error bound over the domain");
    ("T102", "catastrophic cancellation: rounding error amplified to a significant fraction of the result scale");
    ("T103", "rounding-error bound not certifiable (unbounded) for an output");
    ("T104", "undecided conditional guard carries rounding error: floats may pick a different branch than exact arithmetic");
    ("T201", "output sign certified constant over the domain");
    ("T202", "certified sign of a theta-derivative: output monotone in a parameter");
    ("T203", "drift certified coordinatewise affine in theta: Hamiltonian vertex optimality proven");
    ("T204", "vertex optimality of the Hamiltonian arg max not certified");
    ("T301", "instruction is constant over the domain: foldable, the compiler missed it");
    ("T302", "output is constant over the domain");
    ("T303", "input occupies a workspace slot but is never read by any instruction or output");
    ("T401", "output enclosure is unbounded over the domain");
  ]

let describe code =
  match List.assoc_opt code code_table with Some d -> d | None -> ""

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let sign_to_string = function
  | Pos -> "> 0"
  | Neg -> "< 0"
  | Zero -> "= 0"
  | Non_neg -> ">= 0"
  | Non_pos -> "<= 0"
  | Mixed -> "mixed"

(* ------------------------------------------------------------------ *)
(* the abstract value                                                  *)

type av = { lo : float; hi : float; err : float; nan : bool }

let u = 0x1p-53 (* unit roundoff of binary64 *)

let eta = 0x1p-1074 (* absorbs the absolute part of subnormal rounding *)

(* outward widening by two ulps: covers the rounding of the endpoint
   computation itself plus the rounding of any interior evaluation *)
let wlo x = if x = Float.neg_infinity then x else Float.pred (Float.pred x)

let whi x = if x = Float.infinity then x else Float.succ (Float.succ x)

(* build a sane abstract value from raw endpoint candidates: NaN
   endpoints are replaced by the conservative infinity of their side *)
let mk ~err ~nan lo hi =
  let lo = if Float.is_nan lo then Float.neg_infinity else lo in
  let hi = if Float.is_nan hi then Float.infinity else hi in
  let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
  let err = if Float.is_nan err then Float.infinity else Float.max 0. err in
  { lo; hi; err; nan }

let exact v = { lo = v; hi = v; err = 0.; nan = false }

let top = { lo = Float.neg_infinity; hi = Float.infinity; err = Float.infinity; nan = true }

let mag v = Float.max (Float.abs v.lo) (Float.abs v.hi)

let min_mag v = if v.lo > 0. then v.lo else if v.hi < 0. then -.v.hi else 0.

let contains_zero v = v.lo <= 0. && v.hi >= 0.

let has_pinf v = v.hi = Float.infinity

let has_ninf v = v.lo = Float.neg_infinity

let has_inf v = has_pinf v || has_ninf v

let finite_range v = (not (has_inf v)) && not v.nan

let width v = if v.lo = v.hi then 0. else v.hi -. v.lo

(* one rounding on a result confined to [lo, hi] *)
let rnd lo hi =
  let m = Float.max (Float.abs lo) (Float.abs hi) in
  if Float.is_finite m then (u *. m) +. eta else Float.infinity

(* error-term product that treats 0 * inf as 0: a zero incoming error
   is exactly zero no matter the amplification, and vice versa *)
let emul m e = if e = 0. || m = 0. then 0. else m *. e

(* relative error against the value's own scale — drives the
   cancellation detector *)
let rel v =
  if not (Float.is_finite v.err) then Float.infinity
  else
    let s = width v +. mag v in
    if Float.is_finite s then v.err /. (s +. 1e-300) else 0.

(* ------------------------------------------------------------------ *)
(* transfer functions                                                  *)

(* each returns the result plus the defects this operation introduces:
   [`Overflow] — finite operands, infinite result; [`Fresh_nan] — NaN
   not inherited from an operand *)

type defect = D_overflow | D_fresh_nan

let defects_of a b r =
  let d = if (not (has_inf a || has_inf b)) && has_inf r then [ D_overflow ] else [] in
  if r.nan && not (a.nan || b.nan) then D_fresh_nan :: d else d

let av_add a b =
  let lo = wlo (a.lo +. b.lo) and hi = whi (a.hi +. b.hi) in
  let nan =
    a.nan || b.nan || (has_pinf a && has_ninf b) || (has_ninf a && has_pinf b)
  in
  let r = mk ~err:(a.err +. b.err +. rnd lo hi) ~nan lo hi in
  (r, defects_of a b r)

let av_sub a b =
  let lo = wlo (a.lo -. b.hi) and hi = whi (a.hi -. b.lo) in
  let nan =
    a.nan || b.nan || (has_pinf a && has_pinf b) || (has_ninf a && has_ninf b)
  in
  let r = mk ~err:(a.err +. b.err +. rnd lo hi) ~nan lo hi in
  (r, defects_of a b r)

let av_neg a = { a with lo = -.a.hi; hi = -.a.lo }

let av_mul a b =
  let zero_times_inf =
    (contains_zero a && has_inf b) || (contains_zero b && has_inf a)
  in
  let lo, hi =
    if zero_times_inf then (Float.neg_infinity, Float.infinity)
    else begin
      let p1 = a.lo *. b.lo
      and p2 = a.lo *. b.hi
      and p3 = a.hi *. b.lo
      and p4 = a.hi *. b.hi in
      ( wlo (Float.min (Float.min p1 p2) (Float.min p3 p4)),
        whi (Float.max (Float.max p1 p2) (Float.max p3 p4)) )
    end
  in
  let nan = a.nan || b.nan || zero_times_inf in
  let err =
    emul (mag b) a.err +. emul (mag a) b.err +. emul a.err b.err +. rnd lo hi
  in
  let r = mk ~err ~nan lo hi in
  (r, defects_of a b r)

let av_div a b =
  if contains_zero b then
    (* total: unbounded quotient, never an exception; the caller turns
       this into T001/T002 *)
    let nan = a.nan || b.nan || contains_zero a in
    let certain = b.lo = 0. && b.hi = 0. in
    ( mk ~err:Float.infinity ~nan Float.neg_infinity Float.infinity,
      [ D_fresh_nan ],
      Some (if certain then `Certain else `Possible) )
  else begin
    let inf_over_inf = has_inf a && has_inf b in
    let lo, hi =
      if inf_over_inf then (Float.neg_infinity, Float.infinity)
      else begin
        let q1 = a.lo /. b.lo
        and q2 = a.lo /. b.hi
        and q3 = a.hi /. b.lo
        and q4 = a.hi /. b.hi in
        ( wlo (Float.min (Float.min q1 q2) (Float.min q3 q4)),
          whi (Float.max (Float.max q1 q2) (Float.max q3 q4)) )
      end
    in
    let nan = a.nan || b.nan || inf_over_inf in
    let bm = min_mag b in
    let err =
      (emul (mag b) a.err +. emul (mag a) b.err) /. (bm *. bm) +. rnd lo hi
    in
    let r = mk ~err ~nan lo hi in
    (r, defects_of a b r, None)
  end

let av_min a b =
  mk
    ~err:(Float.max a.err b.err)
    ~nan:(a.nan || b.nan)
    (Float.min a.lo b.lo) (Float.min a.hi b.hi)

let av_max a b =
  mk
    ~err:(Float.max a.err b.err)
    ~nan:(a.nan || b.nan)
    (Float.max a.lo b.lo) (Float.max a.hi b.hi)

(* the ideal (real-arithmetic) range of an integer power, via the
   squaring recurrence — tight for even powers straddling zero *)
let pow_ideal (lo, hi) n =
  let mul (al, ah) (bl, bh) =
    let p1 = al *. bl and p2 = al *. bh and p3 = ah *. bl and p4 = ah *. bh in
    let sane v side = if Float.is_nan v then side else v in
    ( sane (Float.min (Float.min p1 p2) (Float.min p3 p4)) Float.neg_infinity,
      sane (Float.max (Float.max p1 p2) (Float.max p3 p4)) Float.infinity )
  in
  let sq (l, h) =
    let m = Float.max (Float.abs l) (Float.abs h) in
    if l <= 0. && h >= 0. then (0., m *. m) else
      let a = Float.abs l *. Float.abs l and b = Float.abs h *. Float.abs h in
      (Float.min a b, Float.max a b)
  in
  let rec go n =
    if n = 0 then (1., 1.)
    else if n mod 2 = 0 then sq (go (n / 2))
    else mul (lo, hi) (go (n - 1))
  in
  go n

(* x^n as the tape computes it: a left fold of n multiplications from
   1.0 — the error recurrence follows that association exactly, and
   the range is tightened by the ideal squaring enclosure expanded by
   the accumulated error *)
let av_pow a n =
  if n = 0 then (exact 1., [])
  else begin
    let r = ref (exact 1.) in
    let ds = ref [] in
    for _ = 1 to n do
      let r', d = av_mul !r a in
      r := r';
      ds := d @ !ds
    done;
    let r = !r in
    let il, ih = pow_ideal (a.lo, a.hi) n in
    let r =
      if Float.is_finite r.err && not r.nan then begin
        (* both the exact value (in the ideal range) and the computed
           one (within err of it) lie in the expanded ideal range *)
        let lo = Float.max r.lo (wlo (il -. r.err))
        and hi = Float.min r.hi (whi (ih +. r.err)) in
        if lo <= hi then { r with lo; hi } else r
      end
      else r
    in
    (r, List.sort_uniq compare !ds)
  end

(* ------------------------------------------------------------------ *)
(* the analysis                                                        *)

let sign_of_range ~nan lo hi =
  if nan then Mixed
  else if lo = 0. && hi = 0. then Zero
  else if lo > 0. then Pos
  else if hi < 0. then Neg
  else if lo >= 0. then Non_neg
  else if hi <= 0. then Non_pos
  else Mixed

let analyze ?var_names ?theta_names tape ~x ~th =
  let n_vars, n_thetas = Tape.input_dims tape in
  if Array.length x < n_vars then
    invalid_arg "Tape_check.analyze: variable box too small";
  if Array.length th < n_thetas then
    invalid_arg "Tape_check.analyze: theta box too small";
  let n_slots = Tape.n_slots tape in
  let var_name i =
    match var_names with
    | Some a when i < Array.length a -> a.(i)
    | _ -> Printf.sprintf "x%d" i
  in
  let theta_name j =
    match theta_names with
    | Some a when j < Array.length a -> a.(j)
    | _ -> Printf.sprintf "th%d" j
  in
  let slot_str s =
    match Tape.slot_kind tape s with
    | Tape.Slot_const c -> Printf.sprintf "%g" c
    | Tape.Slot_var i -> var_name i
    | Tape.Slot_theta j -> theta_name j
    | Tape.Slot_temp -> Printf.sprintf "t%d" s
  in
  let slots = Array.make n_slots (exact 0.) in
  for s = 0 to n_slots - 1 do
    slots.(s) <-
      (match Tape.slot_kind tape s with
      | Tape.Slot_const c ->
          if Float.is_nan c then top else { (exact c) with nan = false }
      | Tape.Slot_var i ->
          { lo = Interval.lo x.(i); hi = Interval.hi x.(i); err = 0.; nan = false }
      | Tape.Slot_theta j ->
          { lo = Interval.lo th.(j); hi = Interval.hi th.(j); err = 0.; nan = false }
      | Tape.Slot_temp -> exact 0.)
  done;
  let findings = ref [] in
  let seen = Hashtbl.create 32 in
  let note code severity subject fmt =
    Printf.ksprintf
      (fun message ->
        let key = (code, subject) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          findings := { code; severity; subject; message } :: !findings
        end)
      fmt
  in
  let instrs = Tape.instructions tape in
  let v s = slots.(s) in
  Array.iteri
    (fun k (dst, ins) ->
      let subj = Instr k in
      let op_str =
        let bin name a b = Printf.sprintf "%s := %s(%s, %s)" (slot_str dst) name (slot_str a) (slot_str b) in
        let tern name a b c =
          Printf.sprintf "%s := %s(%s, %s, %s)" (slot_str dst) name (slot_str a)
            (slot_str b) (slot_str c)
        in
        match ins with
        | Tape.V_add (a, b) -> bin "add" a b
        | Tape.V_sub (a, b) -> bin "sub" a b
        | Tape.V_mul (a, b) -> bin "mul" a b
        | Tape.V_div (a, b) -> bin "div" a b
        | Tape.V_neg a -> Printf.sprintf "%s := neg(%s)" (slot_str dst) (slot_str a)
        | Tape.V_pow (a, n) ->
            Printf.sprintf "%s := pow(%s, %d)" (slot_str dst) (slot_str a) n
        | Tape.V_min (a, b) -> bin "min" a b
        | Tape.V_max (a, b) -> bin "max" a b
        | Tape.V_ite (g, a, b) -> tern "ite" g a b
        | Tape.V_muladd (a, b, c) -> tern "muladd" a b c
        | Tape.V_submul (a, b, c) -> tern "submul" a b c
        | Tape.V_mulsub (a, b, c) -> tern "mulsub" a b c
      in
      let note_defects ds =
        List.iter
          (function
            | D_overflow ->
                note "T004" Warning subj
                  "instruction #%d (%s): finite operands can overflow to an \
                   infinity"
                  k op_str
            | D_fresh_nan ->
                note "T003" Warning subj
                  "instruction #%d (%s): the result can be NaN" k op_str)
          ds
      in
      let note_div = function
        | None -> ()
        | Some `Certain ->
            note "T002" Error subj
              "instruction #%d (%s): the divisor is identically zero on the \
               domain — certain division by zero"
              k op_str
        | Some `Possible ->
            note "T001" Warning subj
              "instruction #%d (%s): the divisor's enclosure contains zero — \
               division by zero is reachable (guard the denominator, e.g. \
               max(den, eps))"
              k op_str
      in
      (* additive operations get the cancellation detector: fire when
         the relative error jumps across the operation, not merely
         when a large upstream error flows through *)
      let cancel_check operands r =
        if Float.is_finite r.err && finite_range r then begin
          let rel_out = rel r in
          let rel_in =
            List.fold_left (fun m o -> Float.max m (rel o)) 0. operands
          in
          if rel_out >= 0.1 && rel_out >= 8. *. rel_in then
            note "T102" Warning subj
              "instruction #%d (%s): catastrophic cancellation — the \
               certified rounding error %.3g is %.0f%% of the result scale \
               [%g, %g]"
              k op_str r.err
              (100. *. rel_out)
              r.lo r.hi
        end
      in
      let r =
        match ins with
        | Tape.V_add (a, b) ->
            let r, ds = av_add (v a) (v b) in
            note_defects ds;
            cancel_check [ v a; v b ] r;
            r
        | Tape.V_sub (a, b) ->
            let r, ds = av_sub (v a) (v b) in
            note_defects ds;
            cancel_check [ v a; v b ] r;
            r
        | Tape.V_mul (a, b) ->
            let r, ds = av_mul (v a) (v b) in
            note_defects ds;
            r
        | Tape.V_div (a, b) ->
            let r, ds, div = av_div (v a) (v b) in
            note_div div;
            if div = None then note_defects ds;
            r
        | Tape.V_neg a -> av_neg (v a)
        | Tape.V_pow (a, n) ->
            let r, ds = av_pow (v a) n in
            note_defects ds;
            r
        | Tape.V_min (a, b) -> av_min (v a) (v b)
        | Tape.V_max (a, b) -> av_max (v a) (v b)
        | Tape.V_ite (g, a, b) ->
            let g = v g in
            if g.hi <= 0. && not g.nan then v a
            else if g.lo > 0. && not g.nan then v b
            else begin
              (* undecided guard: hull of the eagerly computed branches;
                 the error bound stays branch-local *)
              if g.err > 0. then
                note "T104" Info subj
                  "instruction #%d (%s): the guard is undecided over the \
                   domain and carries rounding error <= %.3g — floats can \
                   select a different branch than exact arithmetic near the \
                   threshold (the error bound is per-branch)"
                  k op_str g.err;
              let a = v a and b = v b in
              mk
                ~err:(Float.max a.err b.err)
                ~nan:(a.nan || b.nan || g.nan)
                (Float.min a.lo b.lo) (Float.max a.hi b.hi)
            end
        | Tape.V_muladd (a, b, c) ->
            let m, ds1 = av_mul (v a) (v b) in
            let r, ds2 = av_add m (v c) in
            note_defects (ds1 @ ds2);
            cancel_check [ m; v c ] r;
            r
        | Tape.V_submul (a, b, c) ->
            let m, ds1 = av_mul (v b) (v c) in
            let r, ds2 = av_sub (v a) m in
            note_defects (ds1 @ ds2);
            cancel_check [ v a; m ] r;
            r
        | Tape.V_mulsub (a, b, c) ->
            let m, ds1 = av_mul (v a) (v b) in
            let r, ds2 = av_sub m (v c) in
            note_defects (ds1 @ ds2);
            cancel_check [ m; v c ] r;
            r
      in
      slots.(dst) <- r;
      (* constant folding the compiler missed: the result is one value
         (up to rounding slack) over the whole domain *)
      if
        finite_range r
        && (width r = 0. || (mag r > 0. && width r <= 8. *. u *. mag r))
      then
        note "T301" Info subj
          "instruction #%d (%s) is constant (~ %g) over the domain — the \
           compiler could fold it"
          k op_str
          ((r.lo +. r.hi) /. 2.))
    instrs;

  (* -------- dead input slots: T303 ------------------------------- *)
  let used = Array.make n_slots false in
  Array.iter
    (fun (_, ins) ->
      let u s = used.(s) <- true in
      match ins with
      | Tape.V_add (a, b)
      | Tape.V_sub (a, b)
      | Tape.V_mul (a, b)
      | Tape.V_div (a, b)
      | Tape.V_min (a, b)
      | Tape.V_max (a, b) ->
          u a;
          u b
      | Tape.V_neg a | Tape.V_pow (a, _) -> u a
      | Tape.V_ite (a, b, c)
      | Tape.V_muladd (a, b, c)
      | Tape.V_submul (a, b, c)
      | Tape.V_mulsub (a, b, c) ->
          u a;
          u b;
          u c)
    instrs;
  Array.iter (fun s -> used.(s) <- true) (Tape.output_slots tape);
  for s = 0 to n_slots - 1 do
    if not used.(s) then
      match Tape.slot_kind tape s with
      | Tape.Slot_var i ->
          note "T303" Warning (Var_slot i)
            "input %s occupies workspace slot %d but is never read by any \
             instruction or output"
            (var_name i) s
      | Tape.Slot_theta j ->
          note "T303" Warning (Theta_slot j)
            "input %s occupies workspace slot %d but is never read by any \
             instruction or output"
            (theta_name j) s
      | Tape.Slot_const _ | Tape.Slot_temp -> ()
  done;

  (* -------- per-output facts: T101/T103/T201/T302/T401 ------------ *)
  let outs = Tape.output_slots tape in
  let outputs =
    Array.mapi
      (fun i s ->
        let a = slots.(s) in
        let constant = finite_range a && width a = 0. in
        let sign = sign_of_range ~nan:a.nan a.lo a.hi in
        if has_inf a then
          note "T401" Warning (Output i)
            "output %d: enclosure [%g, %g] is unbounded over the domain" i
            a.lo a.hi;
        if not (Float.is_finite a.err) then
          note "T103" Warning (Output i)
            "output %d: the rounding-error bound is not certifiable \
             (unbounded) over the domain"
            i
        else if constant then
          note "T302" Info (Output i)
            "output %d is constant (= %g) over the domain" i a.lo
        else if sign <> Mixed then
          note "T201" Info (Output i)
            "output %d: sign certified %s over the domain (enclosure [%g, %g])"
            i (sign_to_string sign) a.lo a.hi;
        {
          range = Interval.make a.lo a.hi;
          abs_err = a.err;
          sign;
          constant;
          may_be_nan = a.nan;
        })
      outs
  in
  let max_abs_err =
    Array.fold_left (fun m o -> Float.max m o.abs_err) 0. outputs
  in
  let float_safe =
    not
      (List.exists
         (fun f -> match f.code with "T001" | "T002" | "T003" | "T004" -> true | _ -> false)
         !findings)
  in
  if float_safe && Array.length outs > 0 then
    note "T005" Info Tape
      "tape certified float-safe over the domain: no division by zero, NaN \
       or overflow is reachable in any of its %d instructions"
      (Array.length instrs);
  if Float.is_finite max_abs_err && Array.length outs > 0 then
    note "T101" Info Tape
      "certified a-priori rounding-error bound: every output is within %.3g \
       of its exact real value (worst output, branch-local at kinks)"
      max_abs_err;
  let findings =
    List.sort
      (fun a b ->
        match compare a.code b.code with
        | 0 -> compare a.message b.message
        | c -> c)
      !findings
  in
  {
    findings;
    outputs;
    float_safe;
    max_abs_err;
    n_instrs = Array.length instrs;
  }

let ranges tape ~x ~th =
  Array.map (fun o -> o.range) (analyze tape ~x ~th).outputs

(* ------------------------------------------------------------------ *)
(* report access and printing                                          *)

let errors r = List.filter (fun f -> f.severity = Error) r.findings

let warnings r = List.filter (fun f -> f.severity = Warning) r.findings

let ok r = errors r = []

let findings_with r code = List.filter (fun f -> f.code = code) r.findings

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %-7s %s" f.code (severity_to_string f.severity)
    f.message

let pp_report ppf r =
  let n_err = List.length (errors r) and n_warn = List.length (warnings r) in
  let n_info = List.length r.findings - n_err - n_warn in
  Format.fprintf ppf
    "tape analysis: %d instruction%s, %d error%s, %d warning%s, %d info%s@."
    r.n_instrs
    (if r.n_instrs = 1 then "" else "s")
    n_err
    (if n_err = 1 then "" else "s")
    n_warn
    (if n_warn = 1 then "" else "s")
    n_info
    (if n_info = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) r.findings;
  Array.iteri
    (fun i o ->
      Format.fprintf ppf "  output %d: range %a, |err| <= %.3g, sign %s%s%s@."
        i Interval.pp o.range o.abs_err (sign_to_string o.sign)
        (if o.constant then ", constant" else "")
        (if o.may_be_nan then ", may be NaN" else ""))
    r.outputs
