let step h x = h *. Float.max 1. (Float.abs x)

let derivative ?(h = 1e-6) f x =
  let hh = step h x in
  (f (x +. hh) -. f (x -. hh)) /. (2. *. hh)

let gradient ?(h = 1e-6) f x =
  Array.init (Vec.dim x) (fun i ->
      let hh = step h x.(i) in
      let xp = Vec.copy x and xm = Vec.copy x in
      xp.(i) <- x.(i) +. hh;
      xm.(i) <- x.(i) -. hh;
      (f xp -. f xm) /. (2. *. hh))

let jacobian ?(h = 1e-6) f x =
  let n = Vec.dim x in
  let fx = f x in
  let m = Vec.dim fx in
  let jac = Mat.zeros m n in
  for j = 0 to n - 1 do
    let hh = step h x.(j) in
    let xp = Vec.copy x and xm = Vec.copy x in
    xp.(j) <- x.(j) +. hh;
    xm.(j) <- x.(j) -. hh;
    let fp = f xp and fm = f xm in
    for i = 0 to m - 1 do
      Mat.set jac i j ((fp.(i) -. fm.(i)) /. (2. *. hh))
    done
  done;
  jac

let jacobian_tv ?h f x p = gradient ?h (fun y -> Vec.dot (f y) p) x
