(** Planar computational geometry.

    Points are pairs [(x, y)].  Polygons are point lists; convex
    polygons produced by {!convex_hull} are in counter-clockwise order
    without a repeated endpoint.  Used to represent Birkhoff centres
    and test inclusion of stationary samples. *)

type point = float * float

val cross : point -> point -> point -> float
(** [cross o a b] is the z-component of [(a - o) x (b - o)]: positive
    for a left turn. *)

val dist : point -> point -> float

val convex_hull : point list -> point list
(** Andrew's monotone chain; collinear points on the hull boundary are
    dropped.  Degenerate inputs (fewer than 3 distinct points) return
    the distinct points. *)

val polygon_area : point list -> float
(** Absolute area by the shoelace formula. *)

val centroid : point list -> point

val point_in_convex_polygon : ?tol:float -> point -> point list -> bool
(** Membership in a CCW convex polygon, inclusive of the boundary up to
    a perpendicular distance [tol] (default 1e-12) from each edge. *)

val violation_depth : point -> point list -> float
(** How far outside a CCW convex polygon a point lies: 0 inside, else
    the largest outward signed distance over the edges (a lower bound
    on the true distance to the polygon, exact when the nearest feature
    is an edge). *)

val edges : point list -> (point * point) list
(** Consecutive edges, closing the polygon. *)

val outward_normal : point -> point -> point
(** Unit outward normal of the directed edge [(a, b)] of a CCW
    polygon. *)

val edge_midpoints : point list -> (point * point) list
(** For each edge of a CCW polygon: its midpoint paired with its unit
    outward normal. *)

val resample_boundary : point list -> int -> point list
(** [n] points evenly spaced (by arc length) along the closed polygon
    boundary. *)

val hausdorff : point list -> point list -> float
(** Symmetric Hausdorff distance between two point sets (brute
    force). *)

val bounding_box : point list -> point * point
(** [(xmin, ymin), (xmax, ymax)]. *)
