(** Dense matrices of floats, row-major.

    Small dense linear algebra: products, transposition, Gaussian
    elimination with partial pivoting, LU-based solves and inversion.
    Used for CTMC generators in dense form, Jacobians and linear
    systems.  Dimensions are validated and [Invalid_argument] is raised
    on mismatch; [Failure] is raised on singular systems. *)

type t

val create : int -> int -> float -> t
(** [create rows cols v] is a [rows] x [cols] matrix filled with [v]. *)

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t

val of_arrays : float array array -> t
(** Copies the given rows; all rows must have equal length. *)

val to_arrays : t -> float array array

val rows : t -> int

val cols : t -> int

val data : t -> float array
(** The row-major backing store, shared (not copied): element [(i, j)]
    lives at index [i * cols + j].  Exposed for batch kernels that
    stride over whole matrices; treat as read-only unless you own the
    matrix. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val matmul : t -> t -> t

val mulv : t -> Vec.t -> Vec.t
(** [mulv m x] is the matrix-vector product [m x]. *)

val tmulv : t -> Vec.t -> Vec.t
(** [tmulv m x] is [mᵀ x], without materialising the transpose. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  @raise Failure if [a] is (numerically) singular. *)

val solve_many : t -> t -> t
(** [solve_many a b] solves [a x = b] column-wise. *)

val inverse : t -> t

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val max_abs : t -> float
(** Largest absolute entry. *)

val approx_equal : ?tol:float -> t -> t -> bool

val null_space : ?tol:float -> t -> Vec.t array
(** Basis of the right null space [{ v : m v = 0 }], by Gauss–Jordan
    elimination with partial pivoting; entries below
    [tol * max 1 (max_abs m)] are treated as zero.  Returns one vector
    per free column (an empty array for full-column-rank matrices).
    Used for conservation laws: the left null space of a change-vector
    matrix is [null_space] of the matrix whose {e rows} are the change
    vectors. *)

val pp : Format.formatter -> t -> unit
