type budget = {
  discretisation : float;
  truncation : float;
  rounding : float;
  optimiser : float;
}

type t = { value : Interval.t; budget : budget }

let zero_budget =
  { discretisation = 0.; truncation = 0.; rounding = 0.; optimiser = 0. }

let check_line name x =
  if Float.is_nan x || x < 0. then
    invalid_arg (Printf.sprintf "Cert: %s line must be >= 0, got %g" name x)

let budget ?(discretisation = 0.) ?(truncation = 0.) ?(rounding = 0.)
    ?(optimiser = 0.) () =
  check_line "discretisation" discretisation;
  check_line "truncation" truncation;
  check_line "rounding" rounding;
  check_line "optimiser" optimiser;
  { discretisation; truncation; rounding; optimiser }

let exact x = { value = Interval.of_float x; budget = zero_budget }
let of_interval ?(budget = zero_budget) value = { value; budget }

let map2_budget f a b =
  {
    discretisation = f a.discretisation b.discretisation;
    truncation = f a.truncation b.truncation;
    rounding = f a.rounding b.rounding;
    optimiser = f a.optimiser b.optimiser;
  }

let add a b =
  {
    value = Interval.add a.value b.value;
    budget = map2_budget ( +. ) a.budget b.budget;
  }

let sub a b =
  {
    value = Interval.sub a.value b.value;
    budget = map2_budget ( +. ) a.budget b.budget;
  }

let scale_budget c b =
  {
    discretisation = c *. b.discretisation;
    truncation = c *. b.truncation;
    rounding = c *. b.rounding;
    optimiser = c *. b.optimiser;
  }

let scale c t =
  { value = Interval.scale c t.value; budget = scale_budget (Float.abs c) t.budget }

let join a b =
  {
    value = Interval.hull a.value b.value;
    budget = map2_budget Float.max a.budget b.budget;
  }

let compose ~lipschitz ~value t =
  if Float.is_nan lipschitz || lipschitz < 0. then
    invalid_arg "Cert.compose: lipschitz must be >= 0";
  { value; budget = scale_budget lipschitz t.budget }

let widen ?(discretisation = 0.) ?(truncation = 0.) ?(rounding = 0.)
    ?(optimiser = 0.) t =
  check_line "discretisation" discretisation;
  check_line "truncation" truncation;
  check_line "rounding" rounding;
  check_line "optimiser" optimiser;
  let pad = discretisation +. truncation +. rounding +. optimiser in
  let value =
    if pad = 0. then t.value
    else Interval.make (Interval.lo t.value -. pad) (Interval.hi t.value +. pad)
  in
  {
    value;
    budget =
      map2_budget ( +. ) t.budget
        { discretisation; truncation; rounding; optimiser };
  }

let total t =
  t.budget.discretisation +. t.budget.truncation +. t.budget.rounding
  +. t.budget.optimiser

let width t = Interval.width t.value
let midpoint t = Interval.midpoint t.value
let brackets t x = Interval.mem x t.value

let is_vacuous t =
  (not (Float.is_finite (Interval.lo t.value)))
  || (not (Float.is_finite (Interval.hi t.value)))
  || not (Float.is_finite (total t))

let lines t =
  [
    ("discretisation", t.budget.discretisation);
    ("truncation", t.budget.truncation);
    ("rounding", t.budget.rounding);
    ("optimiser", t.budget.optimiser);
  ]

let pp ppf t =
  Format.fprintf ppf "%a (disc %.3g, trunc %.3g, round %.3g, opt %.3g)"
    Interval.pp t.value t.budget.discretisation t.budget.truncation
    t.budget.rounding t.budget.optimiser

let to_string t = Format.asprintf "%a" pp t
