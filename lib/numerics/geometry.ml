type point = float * float

let cross (ox, oy) (ax, ay) (bx, by) =
  ((ax -. ox) *. (by -. oy)) -. ((ay -. oy) *. (bx -. ox))

let dist (ax, ay) (bx, by) = Float.hypot (bx -. ax) (by -. ay)

let convex_hull points =
  let pts = List.sort_uniq compare points in
  match pts with
  | [] | [ _ ] | [ _; _ ] -> pts
  | _ ->
      (* Andrew's monotone chain.  [half] folds the sorted points into
         one hull chain, kept in reverse order; a non-positive cross
         product means the middle point is not a strict left turn and
         is popped. *)
      let half input =
        List.fold_left
          (fun acc p ->
            let rec pop = function
              | a :: b :: rest when cross b a p <= 0. -> pop (b :: rest)
              | l -> l
            in
            p :: pop acc)
          [] input
      in
      let lower = half pts in
      let upper = half (List.rev pts) in
      (* each chain ends (in reverse order, starts) with the first
         point of the other chain; drop one endpoint from each *)
      let strip = function [] -> [] | _ :: tl -> tl in
      let hull = List.rev (strip lower) @ List.rev (strip upper) in
      if hull = [] then pts else hull

let polygon_area poly =
  match poly with
  | [] | [ _ ] | [ _; _ ] -> 0.
  | first :: _ ->
      let rec go acc = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
            go (acc +. ((x1 *. y2) -. (x2 *. y1))) rest
        | [ (x1, y1) ] ->
            let x2, y2 = first in
            acc +. ((x1 *. y2) -. (x2 *. y1))
        | [] -> acc
      in
      Float.abs (go 0. poly) /. 2.

let centroid poly =
  match poly with
  | [] -> invalid_arg "Geometry.centroid: empty polygon"
  | _ ->
      let n = float_of_int (List.length poly) in
      let sx = List.fold_left (fun s (x, _) -> s +. x) 0. poly in
      let sy = List.fold_left (fun s (_, y) -> s +. y) 0. poly in
      (sx /. n, sy /. n)

let edges poly =
  match poly with
  | [] | [ _ ] -> []
  | first :: _ ->
      let rec go = function
        | a :: (b :: _ as rest) -> (a, b) :: go rest
        | [ last ] -> [ (last, first) ]
        | [] -> []
      in
      go poly

let point_in_convex_polygon ?(tol = 1e-12) p poly =
  match poly with
  | [] -> false
  | [ q ] -> dist p q <= tol
  | [ a; b ] ->
      (* segment membership: perpendicular distance and projection *)
      let len = dist a b in
      Float.abs (cross a b p) <= tol *. Float.max len 1e-300
      && dist a p +. dist p b <= len +. (2. *. tol)
  | _ ->
      (* [cross a b p / |ab|] is the signed perpendicular distance to
         the edge line, so [tol] is a true distance slack regardless of
         how finely the polygon is subdivided *)
      List.for_all
        (fun (a, b) ->
          let len = dist a b in
          len <= 0. || cross a b p >= -.(tol *. len))
        (edges poly)

let violation_depth p poly =
  match poly with
  | [] -> Float.infinity
  | [ q ] -> dist p q
  | _ ->
      (* max over edges of the outward signed distance; 0 inside *)
      List.fold_left
        (fun worst (a, b) ->
          let len = dist a b in
          if len <= 0. then worst
          else Float.max worst (-.(cross a b p) /. len))
        0. (edges poly)
      |> Float.max 0.

let outward_normal (ax, ay) (bx, by) =
  (* CCW polygon: interior is to the left of each edge, so the outward
     normal is the right-hand normal of the edge direction *)
  let dx = bx -. ax and dy = by -. ay in
  let len = Float.hypot dx dy in
  if len = 0. then (0., 0.) else (dy /. len, -.dx /. len)

let edge_midpoints poly =
  List.map
    (fun ((ax, ay), (bx, by)) ->
      let mid = (0.5 *. (ax +. bx), 0.5 *. (ay +. by)) in
      (mid, outward_normal (ax, ay) (bx, by)))
    (edges poly)

let resample_boundary poly n =
  if n < 1 then invalid_arg "Geometry.resample_boundary: need n >= 1";
  let es = edges poly in
  let perimeter = List.fold_left (fun s (a, b) -> s +. dist a b) 0. es in
  if perimeter = 0. then List.init n (fun _ -> List.hd poly)
  else begin
    let step = perimeter /. float_of_int n in
    let result = ref [] in
    let carried = ref 0. in
    (* walk the boundary emitting a point every [step] of arc length *)
    List.iter
      (fun ((ax, ay), (bx, by)) ->
        let len = dist (ax, ay) (bx, by) in
        if len > 0. then begin
          let pos = ref (step -. !carried) in
          while !pos <= len do
            let s = !pos /. len in
            result := (ax +. (s *. (bx -. ax)), ay +. (s *. (by -. ay))) :: !result;
            pos := !pos +. step
          done;
          carried := len -. (!pos -. step)
        end)
      es;
    let pts = List.rev !result in
    (* rounding can yield n-1 or n+1 points; pad or trim *)
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    let pts = take n pts in
    let missing = n - List.length pts in
    if missing > 0 then pts @ List.init missing (fun _ -> List.hd poly) else pts
  end

let hausdorff a b =
  let directed xs ys =
    List.fold_left
      (fun worst x ->
        let nearest =
          List.fold_left (fun best y -> Float.min best (dist x y)) Float.infinity ys
        in
        Float.max worst nearest)
      0. xs
  in
  match (a, b) with
  | [], [] -> 0.
  | [], _ | _, [] -> Float.infinity
  | _ -> Float.max (directed a b) (directed b a)

let bounding_box = function
  | [] -> invalid_arg "Geometry.bounding_box: empty"
  | (x0, y0) :: rest ->
      List.fold_left
        (fun ((xmin, ymin), (xmax, ymax)) (x, y) ->
          ( (Float.min xmin x, Float.min ymin y),
            (Float.max xmax x, Float.max ymax y) ))
        ((x0, y0), (x0, y0))
        rest
