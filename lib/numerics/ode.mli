(** Ordinary differential equation solvers.

    Right-hand sides are functions [f t y] returning dy/dt.  Solvers:
    explicit Euler, classical RK4 (fixed step) and the adaptive
    Dormand–Prince RK45 pair.  Trajectories store every accepted step
    and support linear interpolation. *)

type rhs = float -> Vec.t -> Vec.t

(** A discrete trajectory: strictly increasing times with matching
    states. *)
module Traj : sig
  type t = { times : float array; states : Vec.t array }

  val length : t -> int

  val first : t -> Vec.t

  val last : t -> Vec.t

  val t0 : t -> float

  val t1 : t -> float

  val at : t -> float -> Vec.t
  (** Linear interpolation; clamps outside the time range. *)

  val component : t -> int -> float array
  (** Time series of one coordinate. *)

  val map : (Vec.t -> Vec.t) -> t -> t

  val sample : t -> float array -> Vec.t array
  (** States interpolated at the given times. *)

  val of_arrays : float array -> Vec.t array -> t
  (** @raise Invalid_argument on length mismatch, empty input or
      non-increasing times. *)
end

val euler_step : rhs -> float -> Vec.t -> float -> Vec.t
(** [euler_step f t y dt]. *)

val rk4_step : rhs -> float -> Vec.t -> float -> Vec.t

val integrate :
  ?method_:[ `Euler | `Rk4 ] ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  dt:float ->
  Traj.t
(** Fixed-step integration from [t0] to [t1] (default RK4).  The final
    step is shortened to land exactly on [t1].  Requires [t1 >= t0] and
    [dt > 0].  With [check] (default off), every right-hand-side
    evaluation and every accepted state is sanitised and a NaN/Inf
    raises [Failure] naming the offending time and step instead of
    silently propagating.  [obs] (default {!Umf_obs.Obs.off}) records
    an ["ode.integrate"] span and the ["ode.steps"] counter; the
    disabled default adds no allocation to the stepping loop. *)

val integrate_to :
  ?method_:[ `Euler | `Rk4 ] ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  dt:float ->
  Vec.t
(** Like {!integrate} but returns only the final state and allocates no
    trajectory. *)

val integrate_adaptive :
  ?err_acc:float ref ->
  ?rtol:float ->
  ?atol:float ->
  ?dt0:float ->
  ?dt_max:float ->
  ?max_steps:int ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  Traj.t
(** Dormand–Prince RK45 with PI step-size control.  Defaults:
    [rtol = 1e-6], [atol = 1e-9], [max_steps = 1_000_000]; [check] as
    in {!integrate}.  [obs] records an ["ode.rk45"] span with
    accepted/rejected step counts and [dt] min/max gauges.  When
    [err_acc] is given, each accepted step adds its embedded local
    error estimate (in absolute units) to the ref — the tolerance
    accounting behind {!integrate_adaptive_cert}.
    @raise Failure when the step count budget is exhausted or the step
    size underflows. *)

val integrate_adaptive_cert :
  ?rtol:float ->
  ?atol:float ->
  ?dt0:float ->
  ?dt_max:float ->
  ?max_steps:int ->
  ?check:bool ->
  ?obs:Umf_obs.Obs.t ->
  rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  Traj.t * Cert.t
(** {!integrate_adaptive} with its tolerance accounting re-expressed
    as a {!Cert.t}: the certificate's value is the symmetric error
    interval [-E, E] and its discretisation line is E, the sum of the
    embedded local error estimates of the accepted steps in absolute
    units.  An {e estimate-level} ledger entry — what the controller
    believed it committed, not an a-priori bound. *)

val fixed_point :
  ?tol:float ->
  ?dt:float ->
  ?max_time:float ->
  rhs ->
  Vec.t ->
  Vec.t
(** Integrate an autonomous system until the drift norm falls below
    [tol] (default 1e-9); returns the state reached.
    @raise Failure if no equilibrium is reached before [max_time]
    (default 1e4) — e.g. for systems with limit cycles. *)
