type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands an integer seed into well-mixed 64-bit states. *)
let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let ( ^^ ) = Int64.logxor in
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^^ Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^^ Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^^ Int64.shift_right_logical z 31

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ step *)
let uint64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (uint64 t) in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* take the top 53 bits for a uniform double in [0,1) *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t a b =
  if a > b then invalid_arg "Rng.float_range: a > b";
  a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: need n > 0";
  (* rejection-free for our (non-crypto) purposes: modulo bias is
     negligible for n << 2^64 *)
  let v = Int64.shift_right_logical (uint64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t = Int64.logand (uint64 t) 1L = 1L

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: need rate > 0";
  let u = 1. -. float t in
  -.Float.log u /. rate

let gaussian t =
  let u1 = 1. -. float t and u2 = float t in
  sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let categorical t w =
  let total = ref 0. in
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then
        invalid_arg "Rng.categorical: negative weight";
      total := !total +. x)
    w;
  if !total <= 0. then invalid_arg "Rng.categorical: all weights zero";
  let target = float t *. !total in
  let acc = ref 0. and chosen = ref (-1) in
  (try
     Array.iteri
       (fun i x ->
         acc := !acc +. x;
         if !acc > target && !chosen < 0 then begin
           chosen := i;
           raise Exit
         end)
       w
   with Exit -> ());
  if !chosen < 0 then begin
    (* numerical edge: pick the last strictly positive weight *)
    Array.iteri (fun i x -> if x > 0. then chosen := i) w
  end;
  !chosen

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
