(** Implicit integrators for stiff systems.

    Backward Euler (L-stable, first order) and the trapezoidal rule
    (A-stable, second order), both solving the implicit stage equation
    with a damped Newton iteration on a finite-difference Jacobian.
    Useful for population models with near-discontinuous rates (e.g.
    processor-sharing ratios near an empty system), where explicit RK4
    needs prohibitively small steps. *)

val backward_euler_step :
  ?newton_tol:float -> ?max_newton:int -> Ode.rhs -> float -> Vec.t -> float -> Vec.t
(** [backward_euler_step f t y dt] solves y' = y + dt·f(t+dt, y').
    @raise Failure if the Newton iteration does not converge. *)

val trapezoidal_step :
  ?newton_tol:float -> ?max_newton:int -> Ode.rhs -> float -> Vec.t -> float -> Vec.t
(** Solves y' = y + dt/2·(f(t, y) + f(t+dt, y')). *)

val integrate :
  ?method_:[ `BackwardEuler | `Trapezoidal ] ->
  ?newton_tol:float ->
  ?obs:Umf_obs.Obs.t ->
  Ode.rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  dt:float ->
  Ode.Traj.t
(** Fixed-step implicit integration (default trapezoidal).  With [obs]
    enabled, records the ["ode_stiff.integrate"] span and the
    ["ode_stiff.steps"] / ["ode_stiff.rhs_evals"] counters (rhs
    evaluations being the natural cost proxy for the Newton solves). *)

val integrate_to :
  ?method_:[ `BackwardEuler | `Trapezoidal ] ->
  ?newton_tol:float ->
  ?obs:Umf_obs.Obs.t ->
  Ode.rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  dt:float ->
  Vec.t

val integrate_cert :
  ?method_:[ `BackwardEuler | `Trapezoidal ] ->
  ?newton_tol:float ->
  ?obs:Umf_obs.Obs.t ->
  Ode.rhs ->
  t0:float ->
  y0:Vec.t ->
  t1:float ->
  dt:float ->
  Ode.Traj.t * Cert.t
(** {!integrate} with its tolerance accounting on the unified ledger:
    the fixed step [dt] on the discretisation line and the Newton
    tolerance on the optimiser line (tolerance-level annotations — the
    implicit steppers carry no embedded error estimate). *)
