(** Descriptive statistics and streaming accumulators. *)

(** Welford streaming accumulator for mean and variance. *)
module Running : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** @raise Invalid_argument when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two samples. *)

  val std : t -> float

  val min : t -> float

  val max : t -> float
end

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [0,1]; linear interpolation between
    order statistics. Does not modify [xs]. *)

val median : float array -> float

val confidence_interval_95 : float array -> float * float
(** Normal-approximation 95% CI for the mean. *)

val histogram : lo:float -> hi:float -> bins:int -> float array -> int array
(** Counts per bin; values outside [lo, hi] are clamped into the first
    or last bin. *)

val covariance : float array -> float array -> float

val correlation : float array -> float array -> float
