(** Scalar root finding. *)

val bisection :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisection f a b] finds a root of [f] in [a, b].
    @raise Invalid_argument unless [f a] and [f b] have opposite
    signs (or one endpoint is a root). *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's root bracketing method (bisection + secant + inverse
    quadratic interpolation); same contract as {!bisection} but with
    superlinear convergence. *)

val newton :
  ?tol:float -> ?max_iter:int -> ?h:float -> (float -> float) -> float -> float
(** Newton iteration with central finite-difference derivative, started
    at the given point. @raise Failure on divergence or vanishing
    derivative. *)
