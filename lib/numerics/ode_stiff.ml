(* Newton solve of g(z) = z - y - w·f(t_eval, z) - c = 0, the generic
   implicit stage equation (backward Euler: w = dt, c = 0; trapezoidal:
   w = dt/2, c = dt/2 f(t, y)). *)
let solve_stage ~newton_tol ~max_newton f ~t_eval ~y ~w ~c =
  let n = Vec.dim y in
  let z = ref (Vec.copy y) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_newton do
    incr iter;
    let fz = f t_eval !z in
    let g = Vec.mapi (fun i zi -> zi -. y.(i) -. (w *. fz.(i)) -. c.(i)) !z in
    if Vec.norm_inf g < newton_tol then converged := true
    else begin
      (* jacobian of g: I - w * df/dz, by finite differences *)
      let jf = Diff.jacobian (fun v -> f t_eval v) !z in
      let jg = Mat.init n n (fun i j ->
          (if i = j then 1. else 0.) -. (w *. Mat.get jf i j))
      in
      let step = Mat.solve jg g in
      (* damped update: halve until the residual decreases *)
      let base = Vec.norm_inf g in
      let damping = ref 1. in
      let accepted = ref false in
      while (not !accepted) && !damping > 1e-4 do
        let cand = Vec.axpy (-. !damping) step !z in
        let fc = f t_eval cand in
        let gc =
          Vec.mapi (fun i zi -> zi -. y.(i) -. (w *. fc.(i)) -. c.(i)) cand
        in
        if Vec.norm_inf gc < base then begin
          z := cand;
          accepted := true
        end
        else damping := !damping /. 2.
      done;
      if not !accepted then
        (* accept the full step anyway and let the next iteration try *)
        z := Vec.axpy (-1.) step !z
    end
  done;
  if not !converged then failwith "Ode_stiff: Newton did not converge";
  !z

let backward_euler_step ?(newton_tol = 1e-10) ?(max_newton = 50) f t y dt =
  solve_stage ~newton_tol ~max_newton f ~t_eval:(t +. dt) ~y ~w:dt
    ~c:(Vec.zeros (Vec.dim y))

let trapezoidal_step ?(newton_tol = 1e-10) ?(max_newton = 50) f t y dt =
  let c = Vec.scale (dt /. 2.) (f t y) in
  solve_stage ~newton_tol ~max_newton f ~t_eval:(t +. dt) ~y ~w:(dt /. 2.) ~c

let step_fn method_ ?newton_tol =
  match method_ with
  | `BackwardEuler -> backward_euler_step ?newton_tol
  | `Trapezoidal -> trapezoidal_step ?newton_tol

let integrate ?(method_ = `Trapezoidal) ?newton_tol ?(obs = Umf_obs.Obs.off) f
    ~t0 ~y0 ~t1 ~dt =
  if t1 < t0 then invalid_arg "Ode_stiff: t1 < t0";
  if dt <= 0. then invalid_arg "Ode_stiff: dt <= 0";
  let module Obs = Umf_obs.Obs in
  let on = Obs.enabled obs in
  let sp = Obs.span_begin obs "ode_stiff.integrate" in
  (* when observing, wrap the rhs to count evaluations: each Newton
     iteration costs one residual evaluation plus a finite-difference
     Jacobian, so rhs evaluations are the natural cost proxy *)
  let evals = ref 0 in
  let f =
    if on then fun t y ->
      incr evals;
      f t y
    else f
  in
  let step = step_fn method_ ?newton_tol in
  let steps = ref 0 in
  let times = ref [ t0 ] and states = ref [ Vec.copy y0 ] in
  let t = ref t0 and y = ref y0 in
  while !t < t1 -. 1e-12 do
    incr steps;
    let h = Float.min dt (t1 -. !t) in
    y := step f !t !y h;
    t := !t +. h;
    times := !t :: !times;
    states := !y :: !states
  done;
  if on then begin
    Obs.count obs "ode_stiff.steps" !steps;
    Obs.count obs "ode_stiff.rhs_evals" !evals;
    Obs.span_end
      ~metrics:
        [ ("steps", float_of_int !steps); ("rhs_evals", float_of_int !evals) ]
      obs sp
  end;
  Ode.Traj.of_arrays
    (Array.of_list (List.rev !times))
    (Array.of_list (List.rev !states))

let integrate_to ?method_ ?newton_tol ?obs f ~t0 ~y0 ~t1 ~dt =
  Ode.Traj.last (integrate ?method_ ?newton_tol ?obs f ~t0 ~y0 ~t1 ~dt)

let integrate_cert ?method_ ?newton_tol ?obs f ~t0 ~y0 ~t1 ~dt =
  let traj = integrate ?method_ ?newton_tol ?obs f ~t0 ~y0 ~t1 ~dt in
  let tol = match newton_tol with Some t -> t | None -> 1e-10 in
  (traj, Cert.widen ~discretisation:dt ~optimiser:tol (Cert.exact 0.))
