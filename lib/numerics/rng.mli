(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256++ generator seeded through splitmix64,
    so that every simulation in the library is reproducible from an
    integer seed and independent streams can be split off cheaply.
    Not cryptographically secure. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed (any value,
    including 0, gives a well-mixed state). *)

val split : t -> t
(** A new generator statistically independent from the parent; the
    parent is advanced. *)

val copy : t -> t

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val float_range : t -> float -> float -> float
(** [float_range t a b] is uniform in [a, b). Requires [a <= b]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate). Requires [rate > 0]. *)

val gaussian : t -> float
(** Standard normal (Box–Muller). *)

val categorical : t -> float array -> int
(** [categorical t w] samples index [i] with probability proportional
    to the non-negative weight [w.(i)].
    @raise Invalid_argument if all weights are zero or any is
    negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
