(** Closed real intervals [lo, hi] with outward-conservative arithmetic.

    Used by the differential-hull method and by bound checks.  An
    interval is valid when [lo <= hi]; constructors enforce this. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]. @raise Invalid_argument if [lo > hi] or either bound
    is NaN. *)

val of_float : float -> t
(** Degenerate interval [x, x]. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val hull_list : t list -> t

val lo : t -> float

val hi : t -> float

val width : t -> float

val midpoint : t -> float

val mem : float -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when [a] is contained in [b]. *)

val intersect : t -> t -> t option

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor contains 0. *)

val scale : float -> t -> t

val inv : t -> t
(** @raise Division_by_zero if the interval contains 0. *)

val sq : t -> t
(** Square, tight (non-negative) even when the interval straddles 0. *)

val sqrt : t -> t
(** @raise Invalid_argument on intervals containing negatives. *)

val exp : t -> t

val log : t -> t

val monotone : (float -> float) -> t -> t
(** Image of the interval under a monotone (increasing or decreasing)
    function, computed from the endpoints. *)

val min_ : t -> t -> t

val max_ : t -> t -> t

val clamp : t -> float -> float
(** [clamp iv x] projects [x] into the interval. *)

val sample : t -> int -> float array
(** [sample iv n] is [n >= 1] evenly spaced points covering the
    interval ([n = 1] gives the midpoint). *)

val pp : Format.formatter -> t -> unit

val equal : ?tol:float -> t -> t -> bool
