(** Symbolic rate expressions over state variables and parameters.

    An expression tree in the state coordinates x_i ([var i]) and the
    imprecise parameters θ_j ([theta j]).  Writing model rates
    symbolically buys three things the black-box representation cannot
    provide:

    - exact partial derivatives ({!diff_var}) — Pontryagin costates
      without finite differences;
    - guaranteed interval enclosures ({!eval_interval}) — certified
      differential-hull bounds;
    - structure detection ({!is_affine_in_theta}, {!is_multilinear}) —
      choosing vertex enumeration where it is exact. *)

type t =
  | Const of float
  | Var of int  (** state coordinate x_i *)
  | Theta of int  (** parameter coordinate θ_j *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int  (** non-negative integer power *)
  | Min of t * t
  | Max of t * t
  | Ite of t * t * t
      (** [Ite (g, a, b)] evaluates to [a] where [g <= 0] and to [b]
          elsewhere.  Produced by differentiating [Min]/[Max]; interval
          evaluation takes the hull of both branches when the guard's
          sign is not decided. *)

val const : float -> t

val var : int -> t

val theta : int -> t

val ( +: ) : t -> t -> t

val ( -: ) : t -> t -> t

val ( *: ) : t -> t -> t

val ( /: ) : t -> t -> t

val neg : t -> t

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponents. *)

val min_ : t -> t -> t

val max_ : t -> t -> t

val eval : t -> x:Vec.t -> th:Vec.t -> float
(** @raise Invalid_argument on out-of-range indices. *)

val eval_interval : t -> x:Interval.t array -> th:Interval.t array -> Interval.t
(** Conservative interval enclosure of the expression over boxes of
    states and parameters (standard interval arithmetic — subject to
    the dependency problem, i.e. possibly wider than the true range).
    @raise Division_by_zero if a divisor interval contains 0. *)

val diff_var : t -> int -> t
(** Symbolic ∂/∂x_i.  [Min]/[Max] are differentiated piecewise through
    {!Ite}; at the kink the branch active at evaluation time is used
    (a valid Clarke subgradient choice). *)

val diff_theta : t -> int -> t

val simplify : t -> t
(** Constant folding and 0/1-identity elimination (idempotent;
    preserves {!eval} exactly away from removable singularities). *)

val is_affine_in_theta : t -> bool
(** Whether the expression is affine in the θ vector (syntactic, sound
    but not complete: some affine expressions written oddly may be
    rejected, never the converse). *)

val is_multilinear : t -> bool
(** No division/min/max/ite, and no product ever multiplies two
    sub-expressions sharing a variable or parameter — box extrema are
    then attained at vertices. *)

val vars : t -> int list
(** Sorted distinct state indices used. *)

val thetas : t -> int list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
