/* Structure-of-arrays batch kernel for the tape IR — the C twin of
   [Tape.run_batch_chunk].

   The contract is BIT-IDENTITY with the scalar OCaml interpreter
   [Tape.run]: every lane must perform exactly the scalar op sequence
   on IEEE-754 doubles.  That pins three things down:

   - no fused multiply-add: the tape's muladd/submul/mulsub ops are
     fl(fl(a*b) +- c) by definition, so the build passes
     -ffp-contract=off (see lib/numerics/dune) and nothing here may
     invite contraction;
   - min/max are hand transcriptions of OCaml 5.1's [Float.min] /
     [Float.max] (stdlib float.ml), including the NaN propagation and
     the signed-zero ordering;
   - pow is the same left fold of multiplications as the interpreter,
     not libm pow().

   Layout (mirrors the OCaml kernel): the batch workspace [bws] holds
   [chunk] lanes per slot, slot-major — lane l of slot s at
   s*chunk + l.  Inputs/outputs are row-major matrices; lanes
   r0..r0+m-1 of this chunk map to rows r0..r0+m-1.  All indices are
   precomputed by [compile] and validated by [Plan.run_batch]; the
   kernel itself allocates nothing and never calls back into the
   runtime, hence [@@noalloc] on the OCaml side. */

#include <caml/mlvalues.h>
#include <math.h>

#define DBL(v) ((double *) (v))

/* OCaml 5.1 Float.min:
     if y > x || (not(sign_bit y) && sign_bit x) then
       if is_nan y then y else x
     else if is_nan x then x else y */
static inline double ml_min(double x, double y)
{
  if (y > x || (!signbit(y) && signbit(x)))
    return isnan(y) ? y : x;
  return isnan(x) ? x : y;
}

/* OCaml 5.1 Float.max (same guard, arms swapped) */
static inline double ml_max(double x, double y)
{
  if (y > x || (!signbit(y) && signbit(x)))
    return isnan(x) ? x : y;
  return isnan(y) ? y : x;
}

/* desc = [| n_instrs; n_vars; n_thetas; var_base; theta_base; n_outs;
             out_slot_0; ... |]
   geom = [| chunk; m; r0; xc; tc; oc |] */
CAMLprim value umf_tape_batch_chunk(value vcode, value vdesc, value vbws,
                                    value vxd, value vtd, value vod,
                                    value vgeom)
{
  const value *code = Op_val(vcode);
  const value *desc = Op_val(vdesc);
  const value *geom = Op_val(vgeom);
  double *bws = DBL(vbws);
  const double *xd = DBL(vxd);
  const double *td = DBL(vtd);
  double *od = DBL(vod);

  const long n_instrs = Long_val(desc[0]);
  const long n_vars = Long_val(desc[1]);
  const long n_thetas = Long_val(desc[2]);
  const long var_base = Long_val(desc[3]);
  const long theta_base = Long_val(desc[4]);
  const long n_outs = Long_val(desc[5]);

  const long chunk = Long_val(geom[0]);
  const long m = Long_val(geom[1]);
  const long r0 = Long_val(geom[2]);
  const long xc = Long_val(geom[3]);
  const long tc = Long_val(geom[4]);
  const long oc = Long_val(geom[5]);

  long i, j, k, l;

  /* gather variables and parameters: strided rows -> contiguous lanes */
  for (i = 0; i < n_vars; i++) {
    double *restrict dst = bws + (var_base + i) * chunk;
    const double *src = xd + r0 * xc + i;
    for (l = 0; l < m; l++)
      dst[l] = src[l * xc];
  }
  for (j = 0; j < n_thetas; j++) {
    double *restrict dst = bws + (theta_base + j) * chunk;
    const double *src = td + r0 * tc + j;
    for (l = 0; l < m; l++)
      dst[l] = src[l * tc];
  }

  /* one dispatch per instruction, executed across all live lanes.
     [dst] never aliases an operand slot (compile emits a fresh temp
     per node), so restrict is sound and the simple loops vectorize. */
  for (k = 0; k < n_instrs; k++) {
    const value *ins = code + 5 * k;
    const long op = Long_val(ins[0]);
    double *restrict d = bws + Long_val(ins[1]) * chunk;
    const double *a = bws + Long_val(ins[2]) * chunk;
    const long braw = Long_val(ins[3]);
    const double *b = bws + braw * chunk;
    switch (op) {
    case 0: /* add */
      for (l = 0; l < m; l++) d[l] = a[l] + b[l];
      break;
    case 1: /* sub */
      for (l = 0; l < m; l++) d[l] = a[l] - b[l];
      break;
    case 2: /* mul */
      for (l = 0; l < m; l++) d[l] = a[l] * b[l];
      break;
    case 3: /* div */
      for (l = 0; l < m; l++) d[l] = a[l] / b[l];
      break;
    case 4: /* neg */
      for (l = 0; l < m; l++) d[l] = -a[l];
      break;
    case 5: /* pow: braw is the literal exponent; same left fold as
               the interpreter, never libm pow() */
      for (l = 0; l < m; l++) {
        double base = a[l], acc = 1.0;
        long e;
        for (e = 0; e < braw; e++)
          acc = acc * base;
        d[l] = acc;
      }
      break;
    case 6: /* min */
      for (l = 0; l < m; l++) d[l] = ml_min(a[l], b[l]);
      break;
    case 7: /* max */
      for (l = 0; l < m; l++) d[l] = ml_max(a[l], b[l]);
      break;
    case 8: { /* ite: guard <= 0 picks the then-branch */
      const double *c = bws + Long_val(ins[4]) * chunk;
      for (l = 0; l < m; l++) d[l] = a[l] <= 0.0 ? b[l] : c[l];
      break;
    }
    case 9: { /* muladd: fl(fl(a*b) + c) — contraction disabled */
      const double *c = bws + Long_val(ins[4]) * chunk;
      for (l = 0; l < m; l++) d[l] = (a[l] * b[l]) + c[l];
      break;
    }
    case 10: { /* submul: fl(a - fl(b*c)) */
      const double *c = bws + Long_val(ins[4]) * chunk;
      for (l = 0; l < m; l++) d[l] = a[l] - (b[l] * c[l]);
      break;
    }
    default: { /* mulsub: fl(fl(a*b) - c) */
      const double *c = bws + Long_val(ins[4]) * chunk;
      for (l = 0; l < m; l++) d[l] = (a[l] * b[l]) - c[l];
      break;
    }
    }
  }

  /* scatter outputs: contiguous lanes -> strided rows */
  for (j = 0; j < n_outs; j++) {
    const double *src = bws + Long_val(desc[6 + j]) * chunk;
    double *dst = od + r0 * oc + j;
    for (l = 0; l < m; l++)
      dst[l * oc] = src[l];
  }
  return Val_unit;
}

CAMLprim value umf_tape_batch_chunk_byte(value *argv, int argn)
{
  (void) argn;
  return umf_tape_batch_chunk(argv[0], argv[1], argv[2], argv[3], argv[4],
                              argv[5], argv[6]);
}
