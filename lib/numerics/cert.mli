(** Composable error certificates — the one ledger every solver
    reports through.

    A certificate is a certified enclosure [value] (the numerical
    error is already folded into the interval: the true answer lies in
    [value] whenever each contributing budget line is sound) together
    with an itemised provenance {!budget} saying where the width came
    from:

    - [discretisation] — time-stepping / grid error (Euler sweeps,
      RK45 tolerance accounting, hull grids);
    - [truncation] — escaped or unaccounted probability mass priced
      into the answer (state-space truncation, uniformisation tails);
    - [rounding] — floating-point error, typically a
      {!Tape_check.report}'s [max_abs_err];
    - [optimiser] — nonconvergence slack of an inner optimisation
      (power iteration residual, pessimisation gap).

    The combinators are sound in the interval-arithmetic sense: if the
    inputs' values enclose the true inputs and their budgets
    over-approximate the listed error sources, the output's value
    encloses the true output and its budget lines over-approximate the
    combined sources.  Widening amounts must be non-negative; [nan]
    amounts are rejected so a certificate can only degrade to
    [±infinity] (a {e vacuous} certificate, which {!is_vacuous} and
    the lint C-code tier detect) and never to silent nonsense. *)

type budget = {
  discretisation : float;
  truncation : float;
  rounding : float;
  optimiser : float;
}

type t = { value : Interval.t; budget : budget }

val zero_budget : budget

val budget :
  ?discretisation:float ->
  ?truncation:float ->
  ?rounding:float ->
  ?optimiser:float ->
  unit ->
  budget
(** Budget with the given lines (default 0 each).
    @raise Invalid_argument on a negative or [nan] line. *)

val exact : float -> t
(** Degenerate certificate: the answer is exactly [x], zero budget. *)

val of_interval : ?budget:budget -> Interval.t -> t
(** Certificate whose enclosure is [value] with the given provenance
    (default {!zero_budget}). *)

val add : t -> t -> t
(** Sum: values add (outward), budget lines add. *)

val sub : t -> t -> t

val scale : float -> t -> t
(** [scale c t]: value scales by [c], budget lines by [abs c]. *)

val join : t -> t -> t
(** Disjunction: value is the hull, each budget line the max — the
    certificate for "one of the two answers, not sure which". *)

val compose : lipschitz:float -> value:Interval.t -> t -> t
(** [compose ~lipschitz ~value t] certifies a post-composition
    [f(x)] where [value] is a sound enclosure of [f] over [t.value]
    and [f] is [lipschitz]-Lipschitz there: the budget lines scale by
    [lipschitz] (how much each upstream error source can move the
    output).  @raise Invalid_argument if [lipschitz < 0]. *)

val widen :
  ?discretisation:float ->
  ?truncation:float ->
  ?rounding:float ->
  ?optimiser:float ->
  t ->
  t
(** Outward-widen the value by the sum of the given amounts and record
    each on its budget line — the only way error enters a ledger.
    Amounts default to 0 and must be non-negative ([infinity] is
    allowed and yields a vacuous certificate; [nan] raises). *)

val total : t -> float
(** Sum of the four budget lines. *)

val width : t -> float
(** Width of the value interval. *)

val midpoint : t -> float

val brackets : t -> float -> bool
(** [brackets t x]: does the certified enclosure contain [x]? *)

val is_vacuous : t -> bool
(** True when the enclosure or any budget line is non-finite — the
    certificate carries no information. *)

val lines : t -> (string * float) list
(** The itemised ledger, as [("discretisation", d); ...] in fixed
    order — what the CLI prints under [--metrics] and what Obs gauges
    record. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
