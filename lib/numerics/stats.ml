module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n

  let mean t =
    if t.n = 0 then invalid_arg "Stats.Running.mean: empty";
    t.mean

  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

  let std t = sqrt (variance t)

  let min t = t.min

  let max t = t.max
end

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  let frac = pos -. float_of_int i in
  if i >= n - 1 then sorted.(n - 1)
  else ((1. -. frac) *. sorted.(i)) +. (frac *. sorted.(i + 1))

let median xs = quantile xs 0.5

let confidence_interval_95 xs =
  let m = mean xs in
  let half = 1.96 *. std xs /. sqrt (float_of_int (Array.length xs)) in
  (m -. half, m +. half)

let histogram ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: need bins > 0";
  if lo >= hi then invalid_arg "Stats.histogram: need lo < hi";
  let counts = Array.make bins 0 in
  let w = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float (Float.floor ((x -. lo) /. w)) in
      let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts

let covariance xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.covariance: length mismatch";
  if n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation xs ys =
  let sx = std xs and sy = std ys in
  if sx = 0. || sy = 0. then 0. else covariance xs ys /. (sx *. sy)
