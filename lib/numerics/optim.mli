(** Scalar and box-constrained optimisation.

    Scalar minimisers (golden section, Brent) for robust-tuning sweeps,
    and box minimisers/maximisers used by the differential-hull method
    and by Pontryagin's arg-max when the drift is not affine in θ. *)

val golden_section_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float
(** [golden_section_min f a b] minimises a unimodal [f] on [a, b];
    returns [(x, f x)]. *)

val brent_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float
(** Brent's method (golden section + parabolic interpolation). *)

val grid_min_1d : (float -> float) -> float -> float -> int -> float * float
(** Evaluate on an [n]-point grid, return the best point. *)

(** Axis-aligned boxes in R^n. *)
module Box : sig
  type t = { lo : Vec.t; hi : Vec.t }

  val make : Vec.t -> Vec.t -> t
  (** @raise Invalid_argument unless [lo <= hi] component-wise with
      equal dimensions. *)

  val of_intervals : Interval.t list -> t

  val dim : t -> int

  val mem : Vec.t -> t -> bool

  val midpoint : t -> Vec.t

  val vertices : t -> Vec.t list
  (** All [2^n] corner points (degenerate coordinates collapse). *)

  val sample_grid : t -> int -> Vec.t list
  (** Full factorial grid with [k] points per dimension. *)

  val sample_uniform : Rng.t -> t -> Vec.t

  val clamp : t -> Vec.t -> Vec.t
end

val coordinate_refine : (Vec.t -> float) -> Box.t -> Vec.t -> int -> Vec.t * float
(** [coordinate_refine f box x0 iters]: the shrinking coordinate
    descent {!minimize_box} runs from its best candidate — exposed so
    batched callers can replay the candidate scan themselves and still
    finish with the identical refinement.  Probes [x ± r·span] per
    coordinate, radius r starting at 0.25 and shrinking by 0.7 per
    sweep; accepts strictly improving points only. *)

val minimize_box :
  ?grid:int ->
  ?refine_iters:int ->
  (Vec.t -> float) ->
  Box.t ->
  Vec.t * float
(** Minimise [f] over a box: evaluate all vertices and a [grid]-per-axis
    factorial grid (default 3), then refine the best point by
    shrinking coordinate descent ([refine_iters] sweeps, default 40).
    Exact for multilinear [f] (the minimum is at a vertex); a heuristic
    otherwise. *)

val maximize_box :
  ?grid:int ->
  ?refine_iters:int ->
  (Vec.t -> float) ->
  Box.t ->
  Vec.t * float

val argmax_vertices : (Vec.t -> float) -> Box.t -> Vec.t * float
(** Maximum over the box vertices only — exact arg max for functions
    affine in each coordinate (e.g. Hamiltonians of drifts affine in
    θ). *)

val nelder_mead :
  ?tol:float ->
  ?max_iter:int ->
  ?scale:float ->
  (Vec.t -> float) ->
  Vec.t ->
  Vec.t * float
(** Unconstrained Nelder–Mead simplex descent started at the given
    point. *)
