(* A flat instruction tape over a slot-indexed workspace.

   The workspace is laid out [constants | variables | parameters |
   temporaries]: constants are preloaded once by [make_ws], the
   variable and parameter zones are refreshed from x/θ at the start of
   every run (so there are no load instructions at all), and each
   executed instruction writes one temporary.  Instructions are packed
   into a single int array with stride 5 (op, dst, a, b, c) and the
   inner loop uses unchecked accesses — every index is produced and
   bounds-validated by [compile], and the public entry points check
   the workspace and input dimensions before running.

   A peephole pass fuses a single-use [Mul] into the [Add]/[Sub]
   consuming it (muladd/submul/mulsub), which cuts the dispatch count
   of mass-action drifts by a third without changing results: the
   fused forms evaluate fl(fl(a·b) ± c), exactly the association the
   unfused instructions produce. *)

let op_add = 0

let op_sub = 1

let op_mul = 2

let op_div = 3

let op_neg = 4

let op_pow = 5

let op_min = 6

let op_max = 7

let op_ite = 8

let op_muladd = 9 (* a*b + c *)

let op_submul = 10 (* a - b*c *)

let op_mulsub = 11 (* a*b - c *)

type t = {
  n_slots : int;
  n_instrs : int;
  code : int array;  (* stride 5: op, dst, a, b, c; b is the exponent
                        for pow, c is unused outside ite/fused ops *)
  const_val : float array;  (* consts occupy slots 0 .. n_consts-1 *)
  var_base : int;
  theta_base : int;
  outs : int array;
  n_vars : int;  (* minimum admissible [Vec.dim x] *)
  n_thetas : int;
}

let n_outputs t = Array.length t.outs

let n_instructions t = t.n_instrs

let n_slots t = t.n_slots

let rec count_nodes (e : Expr.t) =
  match e with
  | Const _ | Var _ | Theta _ -> 1
  | Neg a | Pow (a, _) -> 1 + count_nodes a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      1 + count_nodes a + count_nodes b
  | Ite (g, a, b) -> 1 + count_nodes g + count_nodes a + count_nodes b

let n_nodes exprs = Array.fold_left (fun n e -> n + count_nodes e) 0 exprs

(* provisional operands during compilation: which zone, which index *)
type operand = Oconst of int | Ovar of int | Otheta of int | Otemp of int

type pinstr = {
  mutable op : int;
  dst : int;  (* temp index *)
  mutable a : operand;
  mutable b : operand;  (* [Oconst exponent] abused for pow *)
  mutable c : operand;
  mutable dead : bool;
}

let no_operand = Oconst 0

let compile exprs =
  let tbl : (Expr.t, operand) Hashtbl.t = Hashtbl.create 64 in
  let instrs = ref [] in
  let n_temps = ref 0 in
  let consts = ref [] in
  let n_consts = ref 0 in
  let n_vars = ref 0 in
  let n_thetas = ref 0 in
  let emit op a b c =
    let dst = !n_temps in
    incr n_temps;
    instrs := { op; dst; a; b; c; dead = false } :: !instrs;
    Otemp dst
  in
  let rec go (e : Expr.t) =
    match Hashtbl.find_opt tbl e with
    | Some operand -> operand
    | None ->
        let operand =
          match e with
          | Const v ->
              let s = !n_consts in
              incr n_consts;
              consts := v :: !consts;
              Oconst s
          | Var i ->
              if i >= !n_vars then n_vars := i + 1;
              Ovar i
          | Theta j ->
              if j >= !n_thetas then n_thetas := j + 1;
              Otheta j
          | Add (a, b) ->
              let sa = go a in
              let sb = go b in
              emit op_add sa sb no_operand
          | Sub (a, b) ->
              let sa = go a in
              let sb = go b in
              emit op_sub sa sb no_operand
          | Mul (a, b) ->
              let sa = go a in
              let sb = go b in
              emit op_mul sa sb no_operand
          | Div (a, b) ->
              let sa = go a in
              let sb = go b in
              emit op_div sa sb no_operand
          | Neg a -> emit op_neg (go a) no_operand no_operand
          | Pow (a, n) -> emit op_pow (go a) (Oconst n) no_operand
          | Min (a, b) ->
              let sa = go a in
              let sb = go b in
              emit op_min sa sb no_operand
          | Max (a, b) ->
              let sa = go a in
              let sb = go b in
              emit op_max sa sb no_operand
          | Ite (g, a, b) ->
              let sg = go g in
              let sa = go a in
              let sb = go b in
              emit op_ite sg sa sb
        in
        Hashtbl.add tbl e operand;
        operand
  in
  let outs_op = Array.map go exprs in
  let instrs = Array.of_list (List.rev !instrs) in
  (* ---- fusion: a Mul consumed exactly once by an Add/Sub ---- *)
  let use = Array.make (Stdlib.max 1 !n_temps) 0 in
  let bump = function Otemp i -> use.(i) <- use.(i) + 1 | _ -> () in
  Array.iter
    (fun ins ->
      bump ins.a;
      if ins.op <> op_pow then bump ins.b;
      if ins.op = op_ite then bump ins.c)
    instrs;
  Array.iter bump outs_op;
  let producer = Array.make (Stdlib.max 1 !n_temps) (-1) in
  Array.iteri
    (fun k ins -> if ins.op = op_mul then producer.(ins.dst) <- k)
    instrs;
  let fusable = function
    | Otemp i when producer.(i) >= 0 && use.(i) = 1 -> Some producer.(i)
    | _ -> None
  in
  Array.iter
    (fun ins ->
      if not ins.dead then
        if ins.op = op_add then (
          match fusable ins.a with
          | Some j ->
              (* fl(a·b) + c, the order Add(Mul(a,b), c) evaluates *)
              instrs.(j).dead <- true;
              ins.op <- op_muladd;
              ins.c <- ins.b;
              ins.a <- instrs.(j).a;
              ins.b <- instrs.(j).b
          | None -> (
              match fusable ins.b with
              | Some j ->
                  instrs.(j).dead <- true;
                  ins.op <- op_muladd;
                  ins.c <- ins.a;
                  ins.a <- instrs.(j).a;
                  ins.b <- instrs.(j).b
              | None -> ()))
        else if ins.op = op_sub then
          match fusable ins.b with
          | Some j ->
              (* a - fl(b·c) *)
              instrs.(j).dead <- true;
              ins.op <- op_submul;
              ins.c <- instrs.(j).b;
              ins.b <- instrs.(j).a
          | None -> (
              match fusable ins.a with
              | Some j ->
                  (* fl(a·b) - c *)
                  instrs.(j).dead <- true;
                  ins.op <- op_mulsub;
                  ins.c <- ins.b;
                  ins.a <- instrs.(j).a;
                  ins.b <- instrs.(j).b
              | None -> ()))
    instrs;
  (* ---- slot assignment and packing ---- *)
  let var_base = !n_consts in
  let theta_base = var_base + !n_vars in
  let temp_base = theta_base + !n_thetas in
  let slot = function
    | Oconst k -> k
    | Ovar i -> var_base + i
    | Otheta j -> theta_base + j
    | Otemp m -> temp_base + m
  in
  let live = Array.of_list (List.filter (fun i -> not i.dead)
                              (Array.to_list instrs)) in
  let n = Array.length live in
  let code = Array.make (Stdlib.max 1 (5 * n)) 0 in
  Array.iteri
    (fun k ins ->
      let i = 5 * k in
      code.(i) <- ins.op;
      code.(i + 1) <- temp_base + ins.dst;
      code.(i + 2) <- slot ins.a;
      (code.(i + 3) <-
         (match (ins.op, ins.b) with
         | 5 (* pow *), Oconst e -> e
         | _ -> slot ins.b));
      code.(i + 4) <- slot ins.c)
    live;
  let const_val = Array.make (Stdlib.max 1 !n_consts) 0. in
  List.iteri (fun k v -> const_val.(!n_consts - 1 - k) <- v) !consts;
  {
    n_slots = Stdlib.max 1 (temp_base + !n_temps);
    n_instrs = n;
    code;
    const_val;
    var_base;
    theta_base;
    outs = Array.map slot outs_op;
    n_vars = !n_vars;
    n_thetas = !n_thetas;
  }

let make_ws t =
  let ws = Array.make t.n_slots 0. in
  Array.blit t.const_val 0 ws 0 (Stdlib.min t.var_base t.n_slots);
  ws

(* [Array.length] rather than [Vec.dim]: the latter is a value alias,
   which the non-flambda compiler turns into an indirect closure call
   — measurable on a hot path this short *)
let[@inline] check t ~ws_len ~(x : float array) ~(th : float array) =
  if ws_len <> t.n_slots then invalid_arg "Tape: workspace size mismatch";
  if Array.length x < t.n_vars then invalid_arg "Tape: variable out of range";
  if Array.length th < t.n_thetas then invalid_arg "Tape: theta out of range"

(* the hot loop: all indices were produced (and thus bounds-checked)
   by [compile]; the x/th reads are guarded by [check] in every public
   entry point *)
let[@inline] run t ws (x : float array) (th : float array) =
  for i = 0 to t.n_vars - 1 do
    Array.unsafe_set ws (t.var_base + i) (Array.unsafe_get x i)
  done;
  for j = 0 to t.n_thetas - 1 do
    Array.unsafe_set ws (t.theta_base + j) (Array.unsafe_get th j)
  done;
  let code = t.code in
  (* every branch stores directly so the float result is never boxed *)
  for k = 0 to t.n_instrs - 1 do
    let i = 5 * k in
    let dst = Array.unsafe_get code (i + 1)
    and a = Array.unsafe_get code (i + 2)
    and b = Array.unsafe_get code (i + 3) in
    match Array.unsafe_get code i with
    | 0 (* add *) ->
        Array.unsafe_set ws dst (Array.unsafe_get ws a +. Array.unsafe_get ws b)
    | 1 (* sub *) ->
        Array.unsafe_set ws dst (Array.unsafe_get ws a -. Array.unsafe_get ws b)
    | 2 (* mul *) ->
        Array.unsafe_set ws dst (Array.unsafe_get ws a *. Array.unsafe_get ws b)
    | 3 (* div *) ->
        Array.unsafe_set ws dst (Array.unsafe_get ws a /. Array.unsafe_get ws b)
    | 4 (* neg *) -> Array.unsafe_set ws dst (-.Array.unsafe_get ws a)
    | 5 (* pow *) ->
        (* same recurrence as Expr.eval: left fold from 1. *)
        let base = Array.unsafe_get ws a in
        let acc = ref 1. in
        for _ = 1 to b do
          acc := !acc *. base
        done;
        Array.unsafe_set ws dst !acc
    | 6 (* min *) ->
        Array.unsafe_set ws dst
          (Float.min (Array.unsafe_get ws a) (Array.unsafe_get ws b))
    | 7 (* max *) ->
        Array.unsafe_set ws dst
          (Float.max (Array.unsafe_get ws a) (Array.unsafe_get ws b))
    | 8 (* ite *) ->
        Array.unsafe_set ws dst
          (if Array.unsafe_get ws a <= 0. then Array.unsafe_get ws b
           else Array.unsafe_get ws (Array.unsafe_get code (i + 4)))
    | 9 (* muladd *) ->
        Array.unsafe_set ws dst
          ((Array.unsafe_get ws a *. Array.unsafe_get ws b)
          +. Array.unsafe_get ws (Array.unsafe_get code (i + 4)))
    | 10 (* submul *) ->
        Array.unsafe_set ws dst
          (Array.unsafe_get ws a
          -. Array.unsafe_get ws b
             *. Array.unsafe_get ws (Array.unsafe_get code (i + 4)))
    | _ (* mulsub *) ->
        Array.unsafe_set ws dst
          ((Array.unsafe_get ws a *. Array.unsafe_get ws b)
          -. Array.unsafe_get ws (Array.unsafe_get code (i + 4)))
  done

let eval_into t ~ws ~x ~th ~(out : float array) =
  check t ~ws_len:(Array.length ws) ~x ~th;
  if Array.length out <> Array.length t.outs then
    invalid_arg "Tape.eval_into: output size mismatch";
  run t ws x th;
  let outs = t.outs in
  for i = 0 to Array.length outs - 1 do
    Array.unsafe_set out i (Array.unsafe_get ws (Array.unsafe_get outs i))
  done

(* interval mode: same tape, interval slots *)

let make_interval_ws t =
  let ws = Array.make t.n_slots (Interval.of_float 0.) in
  for k = 0 to Stdlib.min t.var_base t.n_slots - 1 do
    ws.(k) <- Interval.of_float t.const_val.(k)
  done;
  ws

let run_interval t (ws : Interval.t array) x th =
  for i = 0 to t.n_vars - 1 do
    ws.(t.var_base + i) <- x.(i)
  done;
  for j = 0 to t.n_thetas - 1 do
    ws.(t.theta_base + j) <- th.(j)
  done;
  let code = t.code in
  for k = 0 to t.n_instrs - 1 do
    let i = 5 * k in
    let dst = code.(i + 1) and a = code.(i + 2) and b = code.(i + 3) in
    let r =
      match code.(i) with
      | 0 -> Interval.add ws.(a) ws.(b)
      | 1 -> Interval.sub ws.(a) ws.(b)
      | 2 -> Interval.mul ws.(a) ws.(b)
      | 3 -> Interval.div ws.(a) ws.(b)
      | 4 -> Interval.neg ws.(a)
      | 5 ->
          (* even powers via [sq], exactly as Expr.eval_interval *)
          let ia = ws.(a) in
          let rec go n =
            if n = 0 then Interval.of_float 1.
            else if n mod 2 = 0 then Interval.sq (go (n / 2))
            else Interval.mul ia (go (n - 1))
          in
          go b
      | 6 -> Interval.min_ ws.(a) ws.(b)
      | 7 -> Interval.max_ ws.(a) ws.(b)
      | 8 ->
          let ig = ws.(a) in
          if Interval.hi ig <= 0. then ws.(b)
          else if Interval.lo ig > 0. then ws.(code.(i + 4))
          else Interval.hull ws.(b) ws.(code.(i + 4))
      | 9 -> Interval.add (Interval.mul ws.(a) ws.(b)) ws.(code.(i + 4))
      | 10 -> Interval.sub ws.(a) (Interval.mul ws.(b) ws.(code.(i + 4)))
      | _ -> Interval.sub (Interval.mul ws.(a) ws.(b)) ws.(code.(i + 4))
    in
    ws.(dst) <- r
  done

let eval_interval_into t ~ws ~x ~th =
  if Array.length ws <> t.n_slots then
    invalid_arg "Tape: workspace size mismatch";
  if Array.length x < t.n_vars then invalid_arg "Tape: variable out of range";
  if Array.length th < t.n_thetas then invalid_arg "Tape: theta out of range";
  run_interval t ws x th;
  Array.map (fun s -> ws.(s)) t.outs

(* ---- batch mode: structure-of-arrays kernel over chunks of rows ----

   The batch workspace is the scalar workspace with every slot widened
   to [chunk] lanes, slot-major: lane l of slot s lives at
   [s * chunk + l].  Constants are broadcast across all lanes once at
   scratch creation; variables and parameters are gathered from the
   row-major input matrices at the head of each chunk; then each
   instruction is dispatched ONCE and executed across all live lanes,
   so the per-instruction dispatch cost is amortised over the chunk.

   Every lane performs exactly the scalar op sequence ([Float.min],
   the [pow] left fold, the [<= 0.] ite guard), so batch output is
   bit-identical to a scalar [run] loop over the same rows — which is
   what makes chunk-parallel execution deterministic: chunks write
   disjoint output rows and each row's value does not depend on which
   domain computed it. *)

let make_batch_ws t chunk =
  let bws = Array.make (t.n_slots * chunk) 0. in
  for k = 0 to Stdlib.min t.var_base t.n_slots - 1 do
    let v = t.const_val.(k) in
    let base = k * chunk in
    for l = 0 to chunk - 1 do
      bws.(base + l) <- v
    done
  done;
  bws

(* one chunk of [m <= chunk] rows starting at row [r0]; all indices
   into [bws] are (slot * chunk + lane) with slots produced by
   [compile] and lanes < m <= chunk, and the xd/td/od accesses are
   guarded by the shape checks in [Plan.run_batch] *)
let run_batch_chunk t (bws : float array) ~chunk ~m ~r0 ~(xd : float array) ~xc
    ~(td : float array) ~tc ~(od : float array) ~oc =
  for i = 0 to t.n_vars - 1 do
    let base = (t.var_base + i) * chunk in
    for l = 0 to m - 1 do
      Array.unsafe_set bws (base + l)
        (Array.unsafe_get xd (((r0 + l) * xc) + i))
    done
  done;
  for j = 0 to t.n_thetas - 1 do
    let base = (t.theta_base + j) * chunk in
    for l = 0 to m - 1 do
      Array.unsafe_set bws (base + l)
        (Array.unsafe_get td (((r0 + l) * tc) + j))
    done
  done;
  let code = t.code in
  for k = 0 to t.n_instrs - 1 do
    let i = 5 * k in
    let dst = Array.unsafe_get code (i + 1) * chunk
    and a = Array.unsafe_get code (i + 2) * chunk
    and b = Array.unsafe_get code (i + 3) in
    match Array.unsafe_get code i with
    | 0 (* add *) ->
        let b = b * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Array.unsafe_get bws (a + l) +. Array.unsafe_get bws (b + l))
        done
    | 1 (* sub *) ->
        let b = b * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Array.unsafe_get bws (a + l) -. Array.unsafe_get bws (b + l))
        done
    | 2 (* mul *) ->
        let b = b * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Array.unsafe_get bws (a + l) *. Array.unsafe_get bws (b + l))
        done
    | 3 (* div *) ->
        let b = b * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Array.unsafe_get bws (a + l) /. Array.unsafe_get bws (b + l))
        done
    | 4 (* neg *) ->
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l) (-.Array.unsafe_get bws (a + l))
        done
    | 5 (* pow: b is the literal exponent; same left fold as [run] *) ->
        for l = 0 to m - 1 do
          let base = Array.unsafe_get bws (a + l) in
          let acc = ref 1. in
          for _ = 1 to b do
            acc := !acc *. base
          done;
          Array.unsafe_set bws (dst + l) !acc
        done
    | 6 (* min *) ->
        let b = b * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Float.min (Array.unsafe_get bws (a + l))
               (Array.unsafe_get bws (b + l)))
        done
    | 7 (* max *) ->
        let b = b * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Float.max (Array.unsafe_get bws (a + l))
               (Array.unsafe_get bws (b + l)))
        done
    | 8 (* ite *) ->
        let b = b * chunk
        and c = Array.unsafe_get code (i + 4) * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (if Array.unsafe_get bws (a + l) <= 0. then
               Array.unsafe_get bws (b + l)
             else Array.unsafe_get bws (c + l))
        done
    | 9 (* muladd *) ->
        let b = b * chunk
        and c = Array.unsafe_get code (i + 4) * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            ((Array.unsafe_get bws (a + l) *. Array.unsafe_get bws (b + l))
            +. Array.unsafe_get bws (c + l))
        done
    | 10 (* submul *) ->
        let b = b * chunk
        and c = Array.unsafe_get code (i + 4) * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            (Array.unsafe_get bws (a + l)
            -. Array.unsafe_get bws (b + l) *. Array.unsafe_get bws (c + l))
        done
    | _ (* mulsub *) ->
        let b = b * chunk
        and c = Array.unsafe_get code (i + 4) * chunk in
        for l = 0 to m - 1 do
          Array.unsafe_set bws (dst + l)
            ((Array.unsafe_get bws (a + l) *. Array.unsafe_get bws (b + l))
            -. Array.unsafe_get bws (c + l))
        done
  done;
  let outs = t.outs in
  for o = 0 to Array.length outs - 1 do
    let src = Array.unsafe_get outs o * chunk in
    for l = 0 to m - 1 do
      Array.unsafe_set od
        (((r0 + l) * oc) + o)
        (Array.unsafe_get bws (src + l))
    done
  done

(* C twin of [run_batch_chunk] (tape_batch_stubs.c): same SoA layout,
   same op semantics bit for bit, each instruction's lane loop compiled
   (and auto-vectorised) instead of interpreted.  [desc] packs the
   tape-shape integers the kernel needs, [geom] the per-chunk ones.
   The stub allocates nothing and never re-enters the runtime. *)
external batch_chunk_c :
  int array ->
  int array ->
  float array ->
  float array ->
  float array ->
  float array ->
  int array ->
  unit = "umf_tape_batch_chunk_byte" "umf_tape_batch_chunk"
[@@noalloc]

(* escape hatch for A/B-testing the kernels: UMF_BATCH_KERNEL=ocaml
   routes [Plan.run_batch] through the reference OCaml chunk kernel
   (the @batch-smoke gate runs both ways) *)
let use_c_kernel =
  lazy (match Sys.getenv_opt "UMF_BATCH_KERNEL" with
        | Some "ocaml" -> false
        | _ -> true)

module Plan = struct
  (* keep the tape-level interpreters reachable under their own names
     once [run] is shadowed by the plan-level runner below *)
  let tape_run = run

  type runner = int -> (int -> unit) -> unit

  type nonrec t = {
    tape : t;
    chunk : int;
    desc : int array;  (* [| n_instrs; n_vars; n_thetas; var_base;
                            theta_base; n_outs; out_slots... |] *)
    ws_key : float array Domain.DLS.key;
    iws_key : Interval.t array Domain.DLS.key;
    bws_key : float array Domain.DLS.key;
  }

  let make ?(chunk = 64) tape =
    if chunk < 1 then invalid_arg "Tape.Plan.make: chunk must be >= 1";
    {
      tape;
      chunk;
      desc =
        Array.append
          [|
            tape.n_instrs;
            tape.n_vars;
            tape.n_thetas;
            tape.var_base;
            tape.theta_base;
            Array.length tape.outs;
          |]
          tape.outs;
      ws_key = Domain.DLS.new_key (fun () -> make_ws tape);
      iws_key = Domain.DLS.new_key (fun () -> make_interval_ws tape);
      bws_key = Domain.DLS.new_key (fun () -> make_batch_ws tape chunk);
    }

  let tape p = p.tape

  let chunk p = p.chunk

  let run p ~x ~th ~out =
    eval_into p.tape ~ws:(Domain.DLS.get p.ws_key) ~x ~th ~out

  let run_alloc p ~x ~th =
    let out = Vec.zeros (Array.length p.tape.outs) in
    run p ~x ~th ~out;
    out

  let run_scalar p =
    if Array.length p.tape.outs <> 1 then
      invalid_arg "Tape.Plan.run_scalar: tape has more than one output";
    let t = p.tape in
    let out_slot = t.outs.(0) in
    let key = p.ws_key in
    fun x th ->
      let ws = Domain.DLS.get key in
      check t ~ws_len:(Array.length ws) ~x ~th;
      tape_run t ws x th;
      ws.(out_slot)

  let run_interval p ~x ~th =
    eval_interval_into p.tape ~ws:(Domain.DLS.get p.iws_key) ~x ~th

  let seq_runner n f =
    for i = 0 to n - 1 do
      f i
    done

  let run_batch ?(par = seq_runner) p ~(xs : Mat.t) ~(ths : Mat.t)
      ~(out : Mat.t) =
    let t = p.tape in
    let n = Mat.rows xs in
    let shapes () =
      Printf.sprintf "xs %dx%d, ths %dx%d, out %dx%d" (Mat.rows xs)
        (Mat.cols xs) (Mat.rows ths) (Mat.cols ths) (Mat.rows out)
        (Mat.cols out)
    in
    if n = 0 then
      invalid_arg
        (Printf.sprintf "Tape.Plan.run_batch: empty batch (%s)" (shapes ()));
    if Mat.rows ths <> n || Mat.rows out <> n then
      invalid_arg
        (Printf.sprintf "Tape.Plan.run_batch: batch row mismatch (%s)"
           (shapes ()));
    if Mat.cols xs < t.n_vars || Mat.cols ths < t.n_thetas then
      invalid_arg
        (Printf.sprintf
           "Tape.Plan.run_batch: inputs too narrow (%s; tape needs >= %d \
            vars, >= %d thetas)"
           (shapes ()) t.n_vars t.n_thetas);
    if Mat.cols out <> Array.length t.outs then
      invalid_arg
        (Printf.sprintf
           "Tape.Plan.run_batch: output width mismatch (%s; tape has %d \
            outputs)"
           (shapes ()) (Array.length t.outs));
    let chunk = p.chunk in
    let xd = Mat.data xs and td = Mat.data ths and od = Mat.data out in
    let xc = Mat.cols xs and tc = Mat.cols ths and oc = Mat.cols out in
    let n_chunks = (n + chunk - 1) / chunk in
    let bws_key = p.bws_key in
    if Lazy.force use_c_kernel then begin
      let code = t.code and desc = p.desc in
      par n_chunks (fun ci ->
          let bws = Domain.DLS.get bws_key in
          let r0 = ci * chunk in
          let m = Stdlib.min chunk (n - r0) in
          batch_chunk_c code desc bws xd td od [| chunk; m; r0; xc; tc; oc |])
    end
    else
      par n_chunks (fun ci ->
          let bws = Domain.DLS.get bws_key in
          let r0 = ci * chunk in
          let m = Stdlib.min chunk (n - r0) in
          run_batch_chunk t bws ~chunk ~m ~r0 ~xd ~xc ~td ~tc ~od ~oc)
end

(* static-analysis view: decode the packed int-code back into a typed
   instruction stream *)

type slot_kind =
  | Slot_const of float
  | Slot_var of int
  | Slot_theta of int
  | Slot_temp

type vinstr =
  | V_add of int * int
  | V_sub of int * int
  | V_mul of int * int
  | V_div of int * int
  | V_neg of int
  | V_pow of int * int
  | V_min of int * int
  | V_max of int * int
  | V_ite of int * int * int
  | V_muladd of int * int * int
  | V_submul of int * int * int
  | V_mulsub of int * int * int

let instructions t =
  Array.init t.n_instrs (fun k ->
      let i = 5 * k in
      let dst = t.code.(i + 1)
      and a = t.code.(i + 2)
      and b = t.code.(i + 3)
      and c = t.code.(i + 4) in
      let ins =
        match t.code.(i) with
        | 0 -> V_add (a, b)
        | 1 -> V_sub (a, b)
        | 2 -> V_mul (a, b)
        | 3 -> V_div (a, b)
        | 4 -> V_neg a
        | 5 -> V_pow (a, b)
        | 6 -> V_min (a, b)
        | 7 -> V_max (a, b)
        | 8 -> V_ite (a, b, c)
        | 9 -> V_muladd (a, b, c)
        | 10 -> V_submul (a, b, c)
        | _ -> V_mulsub (a, b, c)
      in
      (dst, ins))

let slot_kind t s =
  if s < 0 || s >= t.n_slots then invalid_arg "Tape.slot_kind: out of range";
  if s < t.var_base then
    (* a degenerate tape has one slot but possibly zero constants *)
    Slot_const (if s < Array.length t.const_val then t.const_val.(s) else 0.)
  else if s < t.theta_base then Slot_var (s - t.var_base)
  else if s < t.theta_base + t.n_thetas then Slot_theta (s - t.theta_base)
  else Slot_temp

let output_slots t = Array.copy t.outs

let input_dims t = (t.n_vars, t.n_thetas)
