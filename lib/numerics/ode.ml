module Obs = Umf_obs.Obs

type rhs = float -> Vec.t -> Vec.t

module Traj = struct
  type t = { times : float array; states : Vec.t array }

  let of_arrays times states =
    let n = Array.length times in
    if n = 0 then invalid_arg "Traj.of_arrays: empty trajectory";
    if n <> Array.length states then
      invalid_arg "Traj.of_arrays: length mismatch";
    for i = 1 to n - 1 do
      if times.(i) <= times.(i - 1) then
        invalid_arg "Traj.of_arrays: times not strictly increasing"
    done;
    { times; states }

  let length t = Array.length t.times

  let first t = t.states.(0)

  let last t = t.states.(Array.length t.states - 1)

  let t0 t = t.times.(0)

  let t1 t = t.times.(Array.length t.times - 1)

  (* binary search for the last index with times.(i) <= x *)
  let locate t x =
    let n = Array.length t.times in
    if x <= t.times.(0) then 0
    else if x >= t.times.(n - 1) then n - 1
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t.times.(mid) <= x then lo := mid else hi := mid
      done;
      !lo
    end

  let at t x =
    let n = Array.length t.times in
    if x <= t.times.(0) then Vec.copy t.states.(0)
    else if x >= t.times.(n - 1) then Vec.copy t.states.(n - 1)
    else begin
      let i = locate t x in
      let t_a = t.times.(i) and t_b = t.times.(i + 1) in
      let s = (x -. t_a) /. (t_b -. t_a) in
      Vec.lerp t.states.(i) t.states.(i + 1) s
    end

  let component t i = Array.map (fun st -> st.(i)) t.states

  let map f t = { t with states = Array.map f t.states }

  let sample t times = Array.map (at t) times
end

let euler_step f t y dt = Vec.axpy dt (f t y) y

(* one reused stage buffer: the rhs must return a fresh vector (every
   drift in this library does), never its argument.  Arithmetic is
   kept bit-identical to the earlier allocating formulation: axpy_into
   matches axpy component-wise, and the final combination evaluates
   (dt/6)*(k1 + 2 k2 + 2 k3 + k4) before adding y, exactly as the
   separate incr vector did. *)
let rk4_step f t y dt =
  let tmp = Vec.copy y in
  let k1 = f t y in
  Vec.axpy_into (dt /. 2.) k1 y ~into:tmp;
  let k2 = f (t +. (dt /. 2.)) tmp in
  Vec.axpy_into (dt /. 2.) k2 y ~into:tmp;
  let k3 = f (t +. (dt /. 2.)) tmp in
  Vec.axpy_into dt k3 y ~into:tmp;
  let k4 = f (t +. dt) tmp in
  for i = 0 to Vec.dim y - 1 do
    tmp.(i) <-
      y.(i)
      +. ((dt /. 6.)
         *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
  done;
  tmp

let step_fn = function `Euler -> euler_step | `Rk4 -> rk4_step

let check_span t0 t1 dt =
  if t1 < t0 then invalid_arg "Ode: t1 < t0";
  if dt <= 0. then invalid_arg "Ode: dt <= 0"

let all_finite v =
  let ok = ref true in
  for i = 0 to Vec.dim v - 1 do
    if not (Float.is_finite v.(i)) then ok := false
  done;
  !ok

let fail_non_finite ~what ~t ~step v =
  let bad = ref (-1) in
  for i = Vec.dim v - 1 downto 0 do
    if not (Float.is_finite v.(i)) then bad := i
  done;
  failwith
    (Printf.sprintf
       "Ode: non-finite %s (coordinate %d = %g) at t = %g, step %d" what !bad
       v.(!bad) t step)

(* with checking on, the rhs is validated at every stage and the state
   after every accepted step, so the failure points at the first bad
   time rather than at a NaN that has silently spread *)
let checked_rhs ~enabled ~step f =
  if not enabled then f
  else fun t y ->
    let dy = f t y in
    if not (all_finite dy) then fail_non_finite ~what:"right-hand side" ~t ~step:!step dy;
    dy

let check_state ~enabled ~step t y =
  if enabled && not (all_finite y) then
    fail_non_finite ~what:"state" ~t ~step:!step y

let integrate ?(method_ = `Rk4) ?(check = false) ?(obs = Obs.off) f ~t0 ~y0 ~t1
    ~dt =
  check_span t0 t1 dt;
  let sp = Obs.span_begin obs "ode.integrate" in
  let step = step_fn method_ in
  let step_no = ref 0 in
  let f = checked_rhs ~enabled:check ~step:step_no f in
  check_state ~enabled:check ~step:step_no t0 y0;
  let times = ref [ t0 ] and states = ref [ Vec.copy y0 ] in
  let t = ref t0 and y = ref y0 in
  while !t < t1 -. 1e-12 do
    incr step_no;
    let h = Float.min dt (t1 -. !t) in
    y := step f !t !y h;
    t := !t +. h;
    check_state ~enabled:check ~step:step_no !t !y;
    times := !t :: !times;
    states := !y :: !states
  done;
  if Obs.enabled obs then begin
    Obs.count obs "ode.steps" !step_no;
    Obs.span_end ~metrics:[ ("steps", float_of_int !step_no) ] obs sp
  end;
  Traj.of_arrays
    (Array.of_list (List.rev !times))
    (Array.of_list (List.rev !states))

let integrate_to ?(method_ = `Rk4) ?(check = false) ?(obs = Obs.off) f ~t0 ~y0
    ~t1 ~dt =
  check_span t0 t1 dt;
  let sp = Obs.span_begin obs "ode.integrate_to" in
  let step = step_fn method_ in
  let step_no = ref 0 in
  let f = checked_rhs ~enabled:check ~step:step_no f in
  check_state ~enabled:check ~step:step_no t0 y0;
  let t = ref t0 and y = ref y0 in
  while !t < t1 -. 1e-12 do
    incr step_no;
    let h = Float.min dt (t1 -. !t) in
    y := step f !t !y h;
    t := !t +. h;
    check_state ~enabled:check ~step:step_no !t !y
  done;
  if Obs.enabled obs then begin
    Obs.count obs "ode.steps" !step_no;
    Obs.span_end ~metrics:[ ("steps", float_of_int !step_no) ] obs sp
  end;
  !y

(* Dormand-Prince 5(4) coefficients *)
let dp_c = [| 0.; 0.2; 0.3; 0.8; 8. /. 9.; 1.; 1. |]

let dp_a =
  [|
    [||];
    [| 0.2 |];
    [| 3. /. 40.; 9. /. 40. |];
    [| 44. /. 45.; -56. /. 15.; 32. /. 9. |];
    [| 19372. /. 6561.; -25360. /. 2187.; 64448. /. 6561.; -212. /. 729. |];
    [|
      9017. /. 3168.; -355. /. 33.; 46732. /. 5247.; 49. /. 176.;
      -5103. /. 18656.;
    |];
    [| 35. /. 384.; 0.; 500. /. 1113.; 125. /. 192.; -2187. /. 6784.; 11. /. 84. |];
  |]

let dp_b5 =
  [| 35. /. 384.; 0.; 500. /. 1113.; 125. /. 192.; -2187. /. 6784.; 11. /. 84.; 0. |]

let dp_b4 =
  [|
    5179. /. 57600.; 0.; 7571. /. 16695.; 393. /. 640.; -92097. /. 339200.;
    187. /. 2100.; 1. /. 40.;
  |]

let integrate_adaptive ?err_acc ?(rtol = 1e-6) ?(atol = 1e-9) ?dt0 ?dt_max
    ?(max_steps = 1_000_000) ?(check = false) ?(obs = Obs.off) f ~t0 ~y0 ~t1 =
  if t1 < t0 then invalid_arg "Ode.integrate_adaptive: t1 < t0";
  (* metric accumulators live and are touched only when observing, so
     the disabled path allocates nothing extra *)
  let on = Obs.enabled obs in
  let sp = Obs.span_begin obs "ode.rk45" in
  let accepted = ref 0 and rejected = ref 0 in
  let dt_min_seen = ref Float.infinity and dt_max_seen = ref 0. in
  let span = t1 -. t0 in
  let dt_max = match dt_max with Some h -> h | None -> span in
  let h = ref (match dt0 with Some h -> h | None -> Float.min dt_max (span /. 100.)) in
  if !h <= 0. then h := span;
  let steps = ref 0 in
  let f = checked_rhs ~enabled:check ~step:steps f in
  check_state ~enabled:check ~step:steps t0 y0;
  let times = ref [ t0 ] and states = ref [ Vec.copy y0 ] in
  let t = ref t0 and y = ref y0 in
  let n = Vec.dim y0 in
  let k = Array.make 7 (Vec.zeros n) in
  (* buffers reused across steps: the stage state fed to f (which must
     return a fresh vector) and the 4th-order comparison solution *)
  let acc = Vec.zeros n in
  let y4 = Vec.zeros n in
  if span > 0. then begin
    while !t < t1 -. 1e-12 do
      incr steps;
      if !steps > max_steps then failwith "Ode.integrate_adaptive: too many steps";
      let hh = Float.min !h (t1 -. !t) in
      if hh < 1e-14 *. Float.max 1. (Float.abs !t) then
        failwith "Ode.integrate_adaptive: step size underflow";
      (* build the seven stages *)
      for s = 0 to 6 do
        Vec.blit !y ~into:acc;
        for j = 0 to s - 1 do
          Vec.axpy_in_place (hh *. dp_a.(s).(j)) k.(j) acc
        done;
        k.(s) <- f (!t +. (dp_c.(s) *. hh)) acc
      done;
      let y5 = Vec.copy !y in
      Vec.blit !y ~into:y4;
      for s = 0 to 6 do
        Vec.axpy_in_place (hh *. dp_b5.(s)) k.(s) y5;
        Vec.axpy_in_place (hh *. dp_b4.(s)) k.(s) y4
      done;
      (* scaled error estimate *)
      let err = ref 0. in
      for i = 0 to n - 1 do
        let sc = atol +. (rtol *. Float.max (Float.abs !y.(i)) (Float.abs y5.(i))) in
        let e = (y5.(i) -. y4.(i)) /. sc in
        err := !err +. (e *. e)
      done;
      let err = sqrt (!err /. float_of_int n) in
      if err <= 1. then begin
        (* tolerance accounting: the embedded estimate of this step's
           local error in absolute units, accumulated for the caller's
           certificate (an estimate-level ledger, not a rigorous
           bound) *)
        (match err_acc with
        | Some acc ->
            let sc = ref atol in
            for i = 0 to n - 1 do
              let s = atol +. (rtol *. Float.abs y5.(i)) in
              if s > !sc then sc := s
            done;
            acc := !acc +. (err *. !sc)
        | None -> ());
        t := !t +. hh;
        y := y5;
        check_state ~enabled:check ~step:steps !t !y;
        times := !t :: !times;
        states := !y :: !states;
        if on then begin
          incr accepted;
          if hh < !dt_min_seen then dt_min_seen := hh;
          if hh > !dt_max_seen then dt_max_seen := hh
        end
      end
      else if on then incr rejected;
      let fac = if err = 0. then 5. else 0.9 *. (err ** -0.2) in
      let fac = Float.max 0.2 (Float.min 5. fac) in
      h := Float.min dt_max (hh *. fac)
    done
  end;
  if on then begin
    Obs.count obs "ode.rk45.accepted" !accepted;
    Obs.count obs "ode.rk45.rejected" !rejected;
    if !accepted > 0 then begin
      Obs.gauge obs "ode.rk45.dt_min" !dt_min_seen;
      Obs.gauge obs "ode.rk45.dt_max" !dt_max_seen
    end;
    let metrics =
      [ ("accepted", float_of_int !accepted); ("rejected", float_of_int !rejected) ]
      @
      if !accepted > 0 then
        [ ("dt_min", !dt_min_seen); ("dt_max", !dt_max_seen) ]
      else []
    in
    Obs.span_end ~metrics obs sp
  end;
  Traj.of_arrays
    (Array.of_list (List.rev !times))
    (Array.of_list (List.rev !states))

let fixed_point ?(tol = 1e-9) ?(dt = 1e-2) ?(max_time = 1e4) f y0 =
  let t = ref 0. and y = ref y0 in
  let converged = ref false in
  while (not !converged) && !t < max_time do
    (* integrate in bursts, checking the drift between bursts *)
    let burst = Float.min 1.0 (max_time -. !t) in
    y := integrate_to f ~t0:!t ~y0:!y ~t1:(!t +. burst) ~dt;
    t := !t +. burst;
    if Vec.norm_inf (f !t !y) < tol then converged := true
  done;
  if not !converged then failwith "Ode.fixed_point: no equilibrium reached";
  !y

let integrate_adaptive_cert ?rtol ?atol ?dt0 ?dt_max ?max_steps ?check ?obs f
    ~t0 ~y0 ~t1 =
  let acc = ref 0. in
  let traj =
    integrate_adaptive ~err_acc:acc ?rtol ?atol ?dt0 ?dt_max ?max_steps ?check
      ?obs f ~t0 ~y0 ~t1
  in
  (traj, Cert.widen ~discretisation:!acc (Cert.exact 0.))
