let invphi = (sqrt 5. -. 1.) /. 2.

let golden_section_min ?(tol = 1e-8) ?(max_iter = 200) f a b =
  let a = ref a and b = ref b in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let brent_min ?(tol = 1e-8) ?(max_iter = 200) f a b =
  (* Brent's minimisation, after Numerical Recipes. *)
  let cgold = 0.3819660 in
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let x = ref (!a +. (cgold *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0. and e = ref 0. in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. 1e-12 in
    let tol2 = 2. *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then
      result := Some (!x, !fx)
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2. *. (q -. r) in
        let p = if q > 0. then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm -. !x >= 0. then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0. then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  match !result with Some r -> r | None -> (!x, !fx)

let grid_min_1d f a b n =
  if n < 2 then invalid_arg "Optim.grid_min_1d: need n >= 2";
  let best_x = ref a and best_f = ref (f a) in
  for i = 1 to n - 1 do
    let x = a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1)) in
    let fx = f x in
    if fx < !best_f then begin
      best_x := x;
      best_f := fx
    end
  done;
  (!best_x, !best_f)

module Box = struct
  type t = { lo : Vec.t; hi : Vec.t }

  let make lo hi =
    if Vec.dim lo <> Vec.dim hi then invalid_arg "Box.make: dimension mismatch";
    if not (Vec.le lo hi) then invalid_arg "Box.make: lo > hi";
    { lo = Vec.copy lo; hi = Vec.copy hi }

  let of_intervals ivs =
    let lo = Array.of_list (List.map Interval.lo ivs) in
    let hi = Array.of_list (List.map Interval.hi ivs) in
    make lo hi

  let dim b = Vec.dim b.lo

  let mem x b = Vec.le b.lo x && Vec.le x b.hi

  let midpoint b = Vec.lerp b.lo b.hi 0.5

  let vertices b =
    let n = dim b in
    let rec build i acc =
      if i = n then [ Array.of_list (List.rev acc) ]
      else if b.lo.(i) = b.hi.(i) then build (i + 1) (b.lo.(i) :: acc)
      else build (i + 1) (b.lo.(i) :: acc) @ build (i + 1) (b.hi.(i) :: acc)
    in
    build 0 []

  let sample_grid b k =
    if k < 1 then invalid_arg "Box.sample_grid: need k >= 1";
    let n = dim b in
    let axis i =
      if b.lo.(i) = b.hi.(i) || k = 1 then [| Interval.clamp (Interval.make b.lo.(i) b.hi.(i)) (0.5 *. (b.lo.(i) +. b.hi.(i))) |]
      else Vec.linspace b.lo.(i) b.hi.(i) k
    in
    let axes = Array.init n axis in
    let rec build i acc =
      if i = n then [ Array.of_list (List.rev acc) ]
      else
        Array.to_list axes.(i)
        |> List.concat_map (fun v -> build (i + 1) (v :: acc))
    in
    build 0 []

  let sample_uniform rng b =
    Array.init (dim b) (fun i -> Rng.float_range rng b.lo.(i) b.hi.(i))

  let clamp b x = Vec.clamp ~lo:b.lo ~hi:b.hi x
end

(* shrinking coordinate descent inside a box, starting from x0 *)
let coordinate_refine f (box : Box.t) x0 iters =
  let n = Box.dim box in
  let x = ref (Vec.copy x0) in
  let fx = ref (f !x) in
  let radius = ref 0.25 in
  for _ = 1 to iters do
    for i = 0 to n - 1 do
      let span = box.hi.(i) -. box.lo.(i) in
      if span > 0. then begin
        let step = !radius *. span in
        let try_at v =
          if v >= box.lo.(i) -. 1e-15 && v <= box.hi.(i) +. 1e-15 then begin
            let cand = Vec.copy !x in
            cand.(i) <- Float.min box.hi.(i) (Float.max box.lo.(i) v);
            let fc = f cand in
            if fc < !fx then begin
              x := cand;
              fx := fc
            end
          end
        in
        try_at (!x.(i) +. step);
        try_at (!x.(i) -. step)
      end
    done;
    radius := !radius *. 0.7
  done;
  (!x, !fx)

let minimize_box ?(grid = 3) ?(refine_iters = 40) f box =
  let candidates = Box.vertices box @ Box.sample_grid box grid in
  let best =
    List.fold_left
      (fun acc x ->
        let fx = f x in
        match acc with
        | Some (_, fb) when fb <= fx -> acc
        | _ -> Some (x, fx))
      None candidates
  in
  match best with
  | None -> invalid_arg "Optim.minimize_box: empty box"
  | Some (x, _) -> coordinate_refine f box x refine_iters

let maximize_box ?grid ?refine_iters f box =
  let x, fneg = minimize_box ?grid ?refine_iters (fun v -> -.f v) box in
  (x, -.fneg)

let argmax_vertices f box =
  let best =
    List.fold_left
      (fun acc x ->
        let fx = f x in
        match acc with
        | Some (_, fb) when fb >= fx -> acc
        | _ -> Some (x, fx))
      None (Box.vertices box)
  in
  match best with
  | None -> invalid_arg "Optim.argmax_vertices: empty box"
  | Some r -> r

let nelder_mead ?(tol = 1e-9) ?(max_iter = 2000) ?(scale = 0.1) f x0 =
  let n = Vec.dim x0 in
  (* initial simplex: x0 plus perturbations along each axis *)
  let simplex =
    Array.init (n + 1) (fun i ->
        if i = 0 then Vec.copy x0
        else begin
          let v = Vec.copy x0 in
          let delta = if v.(i - 1) = 0. then scale else scale *. Float.abs v.(i - 1) in
          v.(i - 1) <- v.(i - 1) +. delta;
          v
        end)
  in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> compare values.(i) values.(j)) idx;
    let s = Array.map (fun i -> simplex.(i)) idx in
    let v = Array.map (fun i -> values.(i)) idx in
    Array.blit s 0 simplex 0 (n + 1);
    Array.blit v 0 values 0 (n + 1)
  in
  let centroid () =
    let c = Vec.zeros n in
    for i = 0 to n - 1 do
      Vec.axpy_in_place (1. /. float_of_int n) simplex.(i) c
    done;
    c
  in
  let iter = ref 0 in
  order ();
  while !iter < max_iter && values.(n) -. values.(0) > tol do
    incr iter;
    let c = centroid () in
    let worst = simplex.(n) in
    let reflect = Vec.axpy (-1.) worst (Vec.scale 2. c) in
    let fr = f reflect in
    if fr < values.(0) then begin
      (* expansion *)
      let expand = Vec.axpy (-2.) worst (Vec.scale 3. c) in
      let fe = f expand in
      if fe < fr then begin
        simplex.(n) <- expand;
        values.(n) <- fe
      end
      else begin
        simplex.(n) <- reflect;
        values.(n) <- fr
      end
    end
    else if fr < values.(n - 1) then begin
      simplex.(n) <- reflect;
      values.(n) <- fr
    end
    else begin
      (* contraction *)
      let contract = Vec.lerp worst c 0.5 in
      let fc = f contract in
      if fc < values.(n) then begin
        simplex.(n) <- contract;
        values.(n) <- fc
      end
      else
        (* shrink towards the best point *)
        for i = 1 to n do
          simplex.(i) <- Vec.lerp simplex.(0) simplex.(i) 0.5;
          values.(i) <- f simplex.(i)
        done
    end;
    order ()
  done;
  (simplex.(0), values.(0))
