(** Dense vectors of floats.

    Thin wrappers over [float array] used throughout the library for
    states, drifts and costates.  All binary operations require equal
    dimensions and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n v] is a vector of dimension [n] filled with [v]. *)

val zeros : int -> t

val of_list : float list -> t

val dim : t -> int

val copy : t -> t

val get : t -> int -> float

val set : t -> int -> float -> unit

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y] (a fresh vector). *)

val axpy_in_place : float -> t -> t -> unit
(** [axpy_in_place a x y] updates [y <- a*x + y]. *)

val blit : t -> into:t -> unit
(** [blit src ~into] copies [src] over [into]. *)

val add_into : t -> t -> into:t -> unit
(** [add_into a b ~into] writes [a + b] into [into] (which may alias
    [a] or [b]).  The allocation-free {!add} for hot loops. *)

val scale_into : float -> t -> into:t -> unit
(** [scale_into s a ~into] writes [s*a] into [into] (may alias [a]). *)

val axpy_into : float -> t -> t -> into:t -> unit
(** [axpy_into a x y ~into] writes [a*x + y] into [into] (may alias
    either operand); component order matches {!axpy} exactly, so
    replacing an [axpy] with [axpy_into] is bit-identical. *)

val mul : t -> t -> t
(** Component-wise product. *)

val dot : t -> t -> float

val norm1 : t -> float

val norm2 : t -> float

val norm_inf : t -> float

val dist_inf : t -> t -> float

val dist2 : t -> t -> float

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val sum : t -> float

val mean : t -> float

val min_elt : t -> float

val max_elt : t -> float

val argmin : t -> int

val argmax : t -> int

val cmin : t -> t -> t
(** Component-wise minimum. *)

val cmax : t -> t -> t
(** Component-wise maximum. *)

val clamp : lo:t -> hi:t -> t -> t
(** Component-wise clamping of a vector into the box [lo, hi]. *)

val lerp : t -> t -> float -> t
(** [lerp a b s] is [(1-s)*a + s*b]. *)

val le : t -> t -> bool
(** Component-wise [<=]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Equality up to [tol] in the sup norm (default [1e-9]). *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
