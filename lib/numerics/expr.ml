type t =
  | Const of float
  | Var of int
  | Theta of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int
  | Min of t * t
  | Max of t * t
  | Ite of t * t * t

let const c = Const c

let var i =
  if i < 0 then invalid_arg "Expr.var: negative index";
  Var i

let theta j =
  if j < 0 then invalid_arg "Expr.theta: negative index";
  Theta j

let ( +: ) a b = Add (a, b)

let ( -: ) a b = Sub (a, b)

let ( *: ) a b = Mul (a, b)

let ( /: ) a b = Div (a, b)

let neg a = Neg a

let pow a n =
  if n < 0 then invalid_arg "Expr.pow: negative exponent";
  Pow (a, n)

let min_ a b = Min (a, b)

let max_ a b = Max (a, b)

let rec eval e ~x ~th =
  match e with
  | Const c -> c
  | Var i ->
      if i >= Vec.dim x then invalid_arg "Expr.eval: variable out of range";
      x.(i)
  | Theta j ->
      if j >= Vec.dim th then invalid_arg "Expr.eval: theta out of range";
      th.(j)
  | Add (a, b) -> eval a ~x ~th +. eval b ~x ~th
  | Sub (a, b) -> eval a ~x ~th -. eval b ~x ~th
  | Mul (a, b) -> eval a ~x ~th *. eval b ~x ~th
  | Div (a, b) -> eval a ~x ~th /. eval b ~x ~th
  | Neg a -> -.eval a ~x ~th
  | Pow (a, n) ->
      let base = eval a ~x ~th in
      let rec go acc n = if n = 0 then acc else go (acc *. base) (n - 1) in
      go 1. n
  | Min (a, b) -> Float.min (eval a ~x ~th) (eval b ~x ~th)
  | Max (a, b) -> Float.max (eval a ~x ~th) (eval b ~x ~th)
  | Ite (g, a, b) ->
      if eval g ~x ~th <= 0. then eval a ~x ~th else eval b ~x ~th

let rec eval_interval e ~x ~th =
  match e with
  | Const c -> Interval.of_float c
  | Var i ->
      if i >= Array.length x then
        invalid_arg "Expr.eval_interval: variable out of range";
      x.(i)
  | Theta j ->
      if j >= Array.length th then
        invalid_arg "Expr.eval_interval: theta out of range";
      th.(j)
  | Add (a, b) -> Interval.add (eval_interval a ~x ~th) (eval_interval b ~x ~th)
  | Sub (a, b) -> Interval.sub (eval_interval a ~x ~th) (eval_interval b ~x ~th)
  | Mul (a, b) -> Interval.mul (eval_interval a ~x ~th) (eval_interval b ~x ~th)
  | Div (a, b) -> Interval.div (eval_interval a ~x ~th) (eval_interval b ~x ~th)
  | Neg a -> Interval.neg (eval_interval a ~x ~th)
  | Pow (a, n) ->
      let ia = eval_interval a ~x ~th in
      (* even powers via [sq] keep the enclosure tight around 0 *)
      let rec go n =
        if n = 0 then Interval.of_float 1.
        else if n mod 2 = 0 then Interval.sq (go (n / 2))
        else Interval.mul ia (go (n - 1))
      in
      go n
  | Min (a, b) -> Interval.min_ (eval_interval a ~x ~th) (eval_interval b ~x ~th)
  | Max (a, b) -> Interval.max_ (eval_interval a ~x ~th) (eval_interval b ~x ~th)
  | Ite (g, a, b) ->
      let ig = eval_interval g ~x ~th in
      if Interval.hi ig <= 0. then eval_interval a ~x ~th
      else if Interval.lo ig > 0. then eval_interval b ~x ~th
      else Interval.hull (eval_interval a ~x ~th) (eval_interval b ~x ~th)

let rec diff_leaf ~is_one e =
  match e with
  | Const _ -> Const 0.
  | Var _ | Theta _ -> Const (if is_one e then 1. else 0.)
  | Add (a, b) -> Add (diff_leaf ~is_one a, diff_leaf ~is_one b)
  | Sub (a, b) -> Sub (diff_leaf ~is_one a, diff_leaf ~is_one b)
  | Mul (a, b) ->
      Add (Mul (diff_leaf ~is_one a, b), Mul (a, diff_leaf ~is_one b))
  | Div (a, b) ->
      Div
        ( Sub (Mul (diff_leaf ~is_one a, b), Mul (a, diff_leaf ~is_one b)),
          Pow (b, 2) )
  | Neg a -> Neg (diff_leaf ~is_one a)
  | Pow (_, 0) -> Const 0.
  | Pow (a, n) ->
      Mul (Mul (Const (float_of_int n), Pow (a, n - 1)), diff_leaf ~is_one a)
  | Min (a, b) ->
      (* active where a <= b: guard a - b <= 0 selects da *)
      Ite (Sub (a, b), diff_leaf ~is_one a, diff_leaf ~is_one b)
  | Max (a, b) -> Ite (Sub (a, b), diff_leaf ~is_one b, diff_leaf ~is_one a)
  | Ite (g, a, b) -> Ite (g, diff_leaf ~is_one a, diff_leaf ~is_one b)

let diff_var e i = diff_leaf ~is_one:(fun l -> l = Var i) e

let diff_theta e j = diff_leaf ~is_one:(fun l -> l = Theta j) e

let rec simplify e =
  let s = simplify in
  match e with
  | Const _ | Var _ | Theta _ -> e
  | Add (a, b) -> (
      match (s a, s b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0., b' -> b'
      | a', Const 0. -> a'
      (* x + (-y) and (-x) + y are bitwise subtractions *)
      | a', Neg b' -> Sub (a', b')
      | Neg a', b' -> Sub (b', a')
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (s a, s b) with
      | Const x, Const y -> Const (x -. y)
      | a', Const 0. -> a'
      | Const 0., b' -> Neg b'
      | a', Neg b' -> Add (a', b')
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (s a, s b) with
      | Const x, Const y -> Const (x *. y)
      | Const 0., _ | _, Const 0. -> Const 0.
      | Const 1., b' -> b'
      | a', Const 1. -> a'
      (* negation is exact: (-1)·x is bitwise -x *)
      | Const -1., b' -> Neg b'
      | a', Const -1. -> Neg a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (s a, s b) with
      | Const x, Const y when y <> 0. -> Const (x /. y)
      | a', Const 1. -> a'
      | Const 0., b' when b' <> Const 0. -> Const 0.
      | a', b' -> Div (a', b'))
  | Neg a -> (
      match s a with
      | Const x -> Const (-.x)
      | Neg a' -> a'
      | a' -> Neg a')
  | Pow (_, 0) -> Const 1.
  | Pow (a, 1) -> s a
  | Pow (a, n) -> (
      match s a with Const x -> Const (x ** float_of_int n) | a' -> Pow (a', n))
  | Min (a, b) -> (
      match (s a, s b) with
      | Const x, Const y -> Const (Float.min x y)
      | a', b' -> Min (a', b'))
  | Max (a, b) -> (
      match (s a, s b) with
      | Const x, Const y -> Const (Float.max x y)
      | a', b' -> Max (a', b'))
  | Ite (g, a, b) -> (
      match (s g, s a, s b) with
      | Const x, a', b' -> if x <= 0. then a' else b'
      | _g', a', b' when a' = b' -> a'
      | g', a', b' -> Ite (g', a', b'))

(* syntactic theta-degree: None when not polynomial in theta *)
let rec theta_degree = function
  | Const _ | Var _ -> Some 0
  | Theta _ -> Some 1
  | Add (a, b) | Sub (a, b) | Min (a, b) | Max (a, b) -> (
      match (theta_degree a, theta_degree b) with
      | Some da, Some db -> Some (Stdlib.max da db)
      | _ -> None)
  | Mul (a, b) -> (
      match (theta_degree a, theta_degree b) with
      | Some da, Some db -> Some (da + db)
      | _ -> None)
  | Div (a, b) -> (
      match (theta_degree a, theta_degree b) with
      | Some da, Some 0 -> Some da
      | _ -> None)
  | Neg a -> theta_degree a
  | Pow (a, n) -> (
      match theta_degree a with Some d -> Some (d * n) | None -> None)
  | Ite (g, a, b) -> (
      match (theta_degree g, theta_degree a, theta_degree b) with
      | Some 0, Some da, Some db -> Some (Stdlib.max da db)
      | _ -> None)

let is_affine_in_theta e =
  (* affine: polynomial of joint degree <= 1 and no Min/Max mixing...
     Min/Max of affine functions is not affine, so exclude them when
     they involve theta *)
  let rec no_theta_kinks = function
    | Const _ | Var _ | Theta _ -> true
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        no_theta_kinks a && no_theta_kinks b
    | Neg a | Pow (a, _) -> no_theta_kinks a
    | Min (a, b) | Max (a, b) ->
        (theta_degree a = Some 0 && theta_degree b = Some 0)
        && no_theta_kinks a && no_theta_kinks b
    | Ite (g, a, b) ->
        theta_degree g = Some 0 && no_theta_kinks a && no_theta_kinks b
  in
  match theta_degree e with
  | Some d -> d <= 1 && no_theta_kinks e
  | None -> false

module Iset = Set.Make (Int)

(* leaves used, tagged by kind *)
let rec leaves e =
  match e with
  | Const _ -> (Iset.empty, Iset.empty)
  | Var i -> (Iset.singleton i, Iset.empty)
  | Theta j -> (Iset.empty, Iset.singleton j)
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      let va, ta = leaves a and vb, tb = leaves b in
      (Iset.union va vb, Iset.union ta tb)
  | Neg a | Pow (a, _) -> leaves a
  | Ite (g, a, b) ->
      let vg, tg = leaves g and va, ta = leaves a and vb, tb = leaves b in
      (Iset.union vg (Iset.union va vb), Iset.union tg (Iset.union ta tb))

let vars e = Iset.elements (fst (leaves e))

let thetas e = Iset.elements (snd (leaves e))

let rec is_multilinear e =
  match e with
  | Const _ | Var _ | Theta _ -> true
  | Add (a, b) | Sub (a, b) -> is_multilinear a && is_multilinear b
  | Mul (a, b) ->
      let va, ta = leaves a and vb, tb = leaves b in
      is_multilinear a && is_multilinear b
      && Iset.is_empty (Iset.inter va vb)
      && Iset.is_empty (Iset.inter ta tb)
  | Neg a -> is_multilinear a
  | Pow (_, 0) -> true
  | Pow (a, 1) -> is_multilinear a
  | Pow (_, _) -> false
  | Div (_, _) | Min (_, _) | Max (_, _) | Ite (_, _, _) -> false

let rec pp ppf = function
  | Const c -> Format.fprintf ppf "%g" c
  | Var i -> Format.fprintf ppf "x%d" i
  | Theta j -> Format.fprintf ppf "th%d" j
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(- %a)" pp a
  | Pow (a, n) -> Format.fprintf ppf "%a^%d" pp a n
  | Min (a, b) -> Format.fprintf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Format.fprintf ppf "max(%a, %a)" pp a pp b
  | Ite (g, a, b) -> Format.fprintf ppf "(if %a <= 0 then %a else %a)" pp g pp a pp b

let to_string e = Format.asprintf "%a" pp e
