type t = { r : int; c : int; a : float array }

let create r c v =
  if r < 0 || c < 0 then invalid_arg "Mat.create: negative dimension";
  { r; c; a = Array.make (r * c) v }

let zeros r c = create r c 0.

let init r c f =
  let m = zeros r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.a.((i * c) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows_ =
  let r = Array.length rows_ in
  if r = 0 then { r = 0; c = 0; a = [||] }
  else begin
    let c = Array.length rows_.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then invalid_arg "Mat.of_arrays: ragged rows")
      rows_;
    init r c (fun i j -> rows_.(i).(j))
  end

let rows m = m.r

let cols m = m.c

let data m = m.a

let get m i j = m.a.((i * m.c) + j)

let set m i j v = m.a.((i * m.c) + j) <- v

let to_arrays m = Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let copy m = { m with a = Array.copy m.a }

let row m i = Array.init m.c (fun j -> get m i j)

let col m j = Array.init m.r (fun i -> get m i j)

let transpose m = init m.c m.r (fun i j -> get m j i)

let same_dims a b =
  if a.r <> b.r || a.c <> b.c then invalid_arg "Mat: dimension mismatch"

let add a b =
  same_dims a b;
  { a with a = Array.mapi (fun i x -> x +. b.a.(i)) a.a }

let sub a b =
  same_dims a b;
  { a with a = Array.mapi (fun i x -> x -. b.a.(i)) a.a }

let scale s m = { m with a = Array.map (fun x -> s *. x) m.a }

let matmul a b =
  if a.c <> b.r then invalid_arg "Mat.matmul: dimension mismatch";
  let m = zeros a.r b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.c - 1 do
          set m i j (get m i j +. (aik *. get b k j))
        done
    done
  done;
  m

let mulv m x =
  if m.c <> Array.length x then invalid_arg "Mat.mulv: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref 0. in
      for j = 0 to m.c - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let tmulv m x =
  if m.r <> Array.length x then invalid_arg "Mat.tmulv: dimension mismatch";
  Array.init m.c (fun j ->
      let acc = ref 0. in
      for i = 0 to m.r - 1 do
        acc := !acc +. (get m i j *. x.(i))
      done;
      !acc)

(* Gaussian elimination with partial pivoting on an augmented system.
   [rhs] has one row per row of [a]; solved in place on copies. *)
let gauss a rhs =
  if a.r <> a.c then invalid_arg "Mat.solve: matrix not square";
  if rhs.r <> a.r then invalid_arg "Mat.solve: rhs dimension mismatch";
  let n = a.r in
  let m = copy a and b = copy rhs in
  for k = 0 to n - 1 do
    (* pivot selection *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !piv k) then piv := i
    done;
    if Float.abs (get m !piv k) < 1e-300 then
      failwith "Mat.solve: singular matrix";
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let t = get m k j in
        set m k j (get m !piv j);
        set m !piv j t
      done;
      for j = 0 to b.c - 1 do
        let t = get b k j in
        set b k j (get b !piv j);
        set b !piv j t
      done
    end;
    for i = k + 1 to n - 1 do
      let factor = get m i k /. get m k k in
      if factor <> 0. then begin
        for j = k to n - 1 do
          set m i j (get m i j -. (factor *. get m k j))
        done;
        for j = 0 to b.c - 1 do
          set b i j (get b i j -. (factor *. get b k j))
        done
      end
    done
  done;
  (* back substitution *)
  let x = zeros n b.c in
  for j = 0 to b.c - 1 do
    for i = n - 1 downto 0 do
      let acc = ref (get b i j) in
      for k = i + 1 to n - 1 do
        acc := !acc -. (get m i k *. get x k j)
      done;
      set x i j (!acc /. get m i i)
    done
  done;
  x

let solve_many a b = gauss a b

let solve a b =
  let bm = init (Array.length b) 1 (fun i _ -> b.(i)) in
  col (gauss a bm) 0

let inverse a = solve_many a (identity a.r)

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.r - 1 do
    let s = ref 0. in
    for j = 0 to m.c - 1 do
      s := !s +. Float.abs (get m i j)
    done;
    if !s > !best then best := !s
  done;
  !best

let max_abs m = Array.fold_left (fun s x -> Float.max s (Float.abs x)) 0. m.a

let approx_equal ?(tol = 1e-9) a b =
  a.r = b.r && a.c = b.c && max_abs (sub a b) <= tol

let null_space ?(tol = 1e-9) m =
  let rows_ = to_arrays m in
  let nr = m.r and nc = m.c in
  let threshold = tol *. Float.max 1. (max_abs m) in
  (* reduced row echelon form with partial pivoting *)
  let pivot_col = Array.make (Stdlib.min nr nc) (-1) in
  let rank = ref 0 in
  for col = 0 to nc - 1 do
    if !rank < nr then begin
      let best = ref (-1) and best_abs = ref threshold in
      for i = !rank to nr - 1 do
        let v = Float.abs rows_.(i).(col) in
        if v > !best_abs then begin
          best := i;
          best_abs := v
        end
      done;
      if !best >= 0 then begin
        let tmp = rows_.(!rank) in
        rows_.(!rank) <- rows_.(!best);
        rows_.(!best) <- tmp;
        let p = rows_.(!rank).(col) in
        for j = 0 to nc - 1 do
          rows_.(!rank).(j) <- rows_.(!rank).(j) /. p
        done;
        for i = 0 to nr - 1 do
          if i <> !rank then begin
            let f = rows_.(i).(col) in
            if f <> 0. then
              for j = 0 to nc - 1 do
                rows_.(i).(j) <- rows_.(i).(j) -. (f *. rows_.(!rank).(j))
              done
          end
        done;
        pivot_col.(!rank) <- col;
        incr rank
      end
    end
  done;
  let is_pivot = Array.make nc false in
  for i = 0 to !rank - 1 do
    is_pivot.(pivot_col.(i)) <- true
  done;
  (* one basis vector per free column: v_free = 1, pivots balance it *)
  let basis = ref [] in
  for j = nc - 1 downto 0 do
    if not is_pivot.(j) then begin
      let v = Array.make nc 0. in
      v.(j) <- 1.;
      for i = 0 to !rank - 1 do
        v.(pivot_col.(i)) <- -.rows_.(i).(j)
      done;
      basis := v :: !basis
    end
  done;
  Array.of_list !basis

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "%a@," Vec.pp (row m i)
  done;
  Format.fprintf ppf "@]"
