let check_bracket f a b =
  let fa = f a and fb = f b in
  if fa = 0. then `Root a
  else if fb = 0. then `Root b
  else if fa *. fb > 0. then
    invalid_arg "Rootfind: endpoints do not bracket a root"
  else `Bracket (fa, fb)

let bisection ?(tol = 1e-12) ?(max_iter = 200) f a b =
  match check_bracket f a b with
  | `Root r -> r
  | `Bracket (fa, _) ->
      let a = ref a and b = ref b and fa = ref fa in
      let iter = ref 0 in
      while !b -. !a > tol && !iter < max_iter do
        incr iter;
        let m = 0.5 *. (!a +. !b) in
        let fm = f m in
        if fm = 0. then begin
          a := m;
          b := m
        end
        else if !fa *. fm < 0. then b := m
        else begin
          a := m;
          fa := fm
        end
      done;
      0.5 *. (!a +. !b)

let brent ?(tol = 1e-12) ?(max_iter = 200) f a b =
  match check_bracket f a b with
  | `Root r -> r
  | `Bracket (fa0, fb0) ->
      let a = ref a and b = ref b in
      let fa = ref fa0 and fb = ref fb0 in
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end;
      let c = ref !a and fc = ref !fa in
      let mflag = ref true in
      let d = ref !a in
      let iter = ref 0 in
      while Float.abs !fb > 0. && Float.abs (!b -. !a) > tol && !iter < max_iter do
        incr iter;
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* inverse quadratic interpolation *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo = ((3. *. !a) +. !b) /. 4. and hi = !b in
        let lo, hi = (Float.min lo hi, Float.max lo hi) in
        let bad_interp =
          s < lo || s > hi
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
          || (!mflag && Float.abs (!b -. !c) < tol)
          || ((not !mflag) && Float.abs (!c -. !d) < tol)
        in
        let s = if bad_interp then 0.5 *. (!a +. !b) else s in
        mflag := bad_interp;
        let fs = f s in
        d := !c;
        c := !b;
        fc := !fb;
        if !fa *. fs < 0. then begin
          b := s;
          fb := fs
        end
        else begin
          a := s;
          fa := fs
        end;
        if Float.abs !fa < Float.abs !fb then begin
          let t = !a in
          a := !b;
          b := t;
          let t = !fa in
          fa := !fb;
          fb := t
        end
      done;
      !b

let newton ?(tol = 1e-12) ?(max_iter = 100) ?(h = 1e-7) f x0 =
  let x = ref x0 in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let fx = f !x in
    if Float.abs fx < tol then converged := true
    else begin
      let d = (f (!x +. h) -. f (!x -. h)) /. (2. *. h) in
      if Float.abs d < 1e-300 then failwith "Rootfind.newton: vanishing derivative";
      let next = !x -. (fx /. d) in
      if Float.is_nan next || Float.abs next > 1e12 then
        failwith "Rootfind.newton: divergence";
      x := next
    end
  done;
  if not !converged then failwith "Rootfind.newton: no convergence";
  !x
