type t = float array

let create n v = Array.make n v

let zeros n = create n 0.

let of_list = Array.of_list

let dim = Array.length

let copy = Array.copy

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let check_dims a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec: dimension mismatch"

let add a b =
  check_dims a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dims x y;
  Array.mapi (fun i xi -> (a *. xi) +. y.(i)) x

let axpy_in_place a x y =
  check_dims x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let blit src ~into =
  check_dims src into;
  Array.blit src 0 into 0 (Array.length src)

let add_into a b ~into =
  check_dims a b;
  check_dims a into;
  for i = 0 to Array.length a - 1 do
    into.(i) <- a.(i) +. b.(i)
  done

let scale_into s a ~into =
  check_dims a into;
  for i = 0 to Array.length a - 1 do
    into.(i) <- s *. a.(i)
  done

let axpy_into a x y ~into =
  check_dims x y;
  check_dims x into;
  for i = 0 to Array.length x - 1 do
    into.(i) <- (a *. x.(i)) +. y.(i)
  done

let mul a b =
  check_dims a b;
  Array.mapi (fun i x -> x *. b.(i)) a

let dot a b =
  check_dims a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm1 a = Array.fold_left (fun s x -> s +. Float.abs x) 0. a

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun s x -> Float.max s (Float.abs x)) 0. a

let dist_inf a b = norm_inf (sub a b)

let dist2 a b = norm2 (sub a b)

let map = Array.map

let mapi = Array.mapi

let map2 f a b =
  check_dims a b;
  Array.mapi (fun i x -> f x b.(i)) a

let iteri = Array.iteri

let fold = Array.fold_left

let sum a = Array.fold_left ( +. ) 0. a

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let min_elt a =
  if Array.length a = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left Float.min a.(0) a

let max_elt a =
  if Array.length a = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max a.(0) a

let arg_best better a =
  if Array.length a = 0 then invalid_arg "Vec.arg: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmin a = arg_best ( < ) a

let argmax a = arg_best ( > ) a

let cmin a b = map2 Float.min a b

let cmax a b = map2 Float.max a b

let clamp ~lo ~hi v =
  check_dims lo v;
  check_dims hi v;
  Array.mapi (fun i x -> Float.min hi.(i) (Float.max lo.(i) x)) v

let lerp a b s = map2 (fun x y -> ((1. -. s) *. x) +. (s *. y)) a b

let le a b =
  check_dims a b;
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let approx_equal ?(tol = 1e-9) a b = dist_inf a b <= tol

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need n >= 2";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. h))

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    v

let to_string v = Format.asprintf "%a" pp v
