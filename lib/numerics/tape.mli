(** Compiled evaluation tapes for {!Expr} trees.

    [compile] flattens an array of expressions into a single linear
    instruction tape: a topological ordering of the distinct subtrees
    (structural common-subexpression elimination — a subexpression
    shared between drift coordinates is computed once per evaluation),
    with constants preloaded into dedicated workspace slots so they
    cost nothing at run time.

    Evaluation writes into a caller-supplied workspace and output
    vector, so the inner loop allocates nothing — compiled rates run
    at hand-written-closure speed.  The same tape also evaluates in
    interval arithmetic over a second workspace, giving the certified
    enclosures used by the differential hull.

    Semantics match {!Expr.eval} / {!Expr.eval_interval} operation for
    operation (same association order, same [Pow] recurrences), with
    one deliberate difference: [Ite] evaluates both branches eagerly
    and then selects, where the tree interpreter only descends into
    the active branch.  Both branches of every model conditional are
    total (division floors), so the results are identical. *)

type t

val compile : Expr.t array -> t
(** Flatten the expressions into one shared tape.  The i-th output of
    the tape is the value of the i-th expression. *)

val n_outputs : t -> int

val n_instructions : t -> int
(** Instructions executed per evaluation (constants excluded — they
    are preloaded, not executed). *)

val n_slots : t -> int
(** Workspace width: distinct subexpressions + constants. *)

val n_nodes : Expr.t array -> int
(** Total tree-node count of the source expressions — compare with
    {!n_instructions} to measure the CSE sharing factor. *)

(** {1 Evaluation plans}

    The one evaluation API.  A plan pre-resolves everything an
    evaluation needs — workspace layout, per-domain scalar / interval /
    batch scratch — so every entry point below is allocation-free after
    the first call on each domain, and safe to call concurrently from
    multiple domains ([Domain.DLS] scratch).  Build a plan once per
    tape, next to [compile], and share it. *)

module Plan : sig
  type tape := t

  type t

  type runner = int -> (int -> unit) -> unit
  (** A chunk scheduler: [par n_chunks f] must call [f ci] exactly once
      for every [0 <= ci < n_chunks], in any order, possibly
      concurrently — [Runtime.Pool.parallel_for] partially applied, or
      the built-in sequential loop. *)

  val make : ?chunk:int -> tape -> t
  (** Pre-compile an evaluation plan.  [chunk] (default 64) is the
      batch lane count: the structure-of-arrays scratch holds
      [n_slots * chunk] floats per domain and {!run_batch} dispatches
      each instruction once per chunk of that many rows.
      @raise Invalid_argument if [chunk < 1]. *)

  val tape : t -> tape

  val chunk : t -> int

  val run : t -> x:Vec.t -> th:Vec.t -> out:Vec.t -> unit
  (** Scalar mode: run the tape at one point; [out.(i)] receives the
      i-th expression's value.  @raise Invalid_argument on dimension
      mismatches. *)

  val run_alloc : t -> x:Vec.t -> th:Vec.t -> Vec.t
  (** {!run} into a fresh result vector. *)

  val run_scalar : t -> Vec.t -> Vec.t -> float
  (** A closure returning the single output directly — the compiled
      form of one transition rate.
      @raise Invalid_argument if the tape has more than one output. *)

  val run_interval :
    t -> x:Interval.t array -> th:Interval.t array -> Interval.t array
  (** Interval mode: conservative enclosure of every output over boxes
      of states and parameters.  Matches {!Expr.eval_interval} except
      that undecided [Ite] guards hull both (eagerly computed)
      branches. *)

  val run_batch : ?par:runner -> t -> xs:Mat.t -> ths:Mat.t -> out:Mat.t -> unit
  (** Batch mode: row [i] of [out] receives the tape's outputs at state
      [xs] row [i] and parameters [ths] row [i].  Rows are processed in
      chunks of {!chunk} lanes, each instruction dispatched once per
      chunk (structure-of-arrays inner loops); [par] schedules the
      chunks ([Runtime.Pool.parallel_for] partially applied —
      sequential by default).  Chunks write disjoint output rows and
      every lane performs exactly the scalar op sequence, so the result
      is bit-identical to a {!run} loop over the rows for any [par].
      @raise Invalid_argument on an empty batch, mismatched row counts,
      inputs narrower than the tape's [input_dims], or an output
      narrower than [n_outputs] — shapes are spelled out in the
      message, nothing is evaluated partially. *)
end

(** {1 Static-analysis view}

    A decoded, read-only rendering of the compiled instruction stream.
    {!Tape_check} abstractly interprets it and the test suite's
    reference evaluators (e.g. double-double) replay it; neither needs
    access to the packed int-code.  All slot indices refer to the one
    shared workspace laid out [constants | variables | parameters |
    temporaries]; {!slot_kind} classifies each index. *)

type slot_kind =
  | Slot_const of float  (** preloaded constant *)
  | Slot_var of int  (** state coordinate x_i *)
  | Slot_theta of int  (** parameter coordinate θ_j *)
  | Slot_temp  (** written by exactly one instruction *)

type vinstr =
  | V_add of int * int
  | V_sub of int * int
  | V_mul of int * int
  | V_div of int * int
  | V_neg of int
  | V_pow of int * int  (** base slot, literal exponent (≥ 0) *)
  | V_min of int * int
  | V_max of int * int
  | V_ite of int * int * int
      (** guard, then-branch (guard ≤ 0), else-branch *)
  | V_muladd of int * int * int  (** fl(a·b) + c *)
  | V_submul of int * int * int  (** a − fl(b·c) *)
  | V_mulsub of int * int * int  (** fl(a·b) − c *)

val instructions : t -> (int * vinstr) array
(** [(dst, instr)] pairs in execution order — exactly the instructions
    {!eval_into} executes, fused forms included. *)

val slot_kind : t -> int -> slot_kind
(** Classification of a workspace slot.
    @raise Invalid_argument on an out-of-range index. *)

val output_slots : t -> int array
(** The workspace slot holding each output, in output order.  An
    output slot need not be a temporary: a constant or input
    expression compiles to a direct reference. *)

val input_dims : t -> int * int
(** [(n_vars, n_thetas)]: minimum admissible input dimensions. *)
