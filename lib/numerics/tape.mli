(** Compiled evaluation tapes for {!Expr} trees.

    [compile] flattens an array of expressions into a single linear
    instruction tape: a topological ordering of the distinct subtrees
    (structural common-subexpression elimination — a subexpression
    shared between drift coordinates is computed once per evaluation),
    with constants preloaded into dedicated workspace slots so they
    cost nothing at run time.

    Evaluation writes into a caller-supplied workspace and output
    vector, so the inner loop allocates nothing — compiled rates run
    at hand-written-closure speed.  The same tape also evaluates in
    interval arithmetic over a second workspace, giving the certified
    enclosures used by the differential hull.

    Semantics match {!Expr.eval} / {!Expr.eval_interval} operation for
    operation (same association order, same [Pow] recurrences), with
    one deliberate difference: [Ite] evaluates both branches eagerly
    and then selects, where the tree interpreter only descends into
    the active branch.  Both branches of every model conditional are
    total (division floors), so the results are identical. *)

type t

val compile : Expr.t array -> t
(** Flatten the expressions into one shared tape.  The i-th output of
    the tape is the value of the i-th expression. *)

val n_outputs : t -> int

val n_instructions : t -> int
(** Instructions executed per evaluation (constants excluded — they
    are preloaded, not executed). *)

val n_slots : t -> int
(** Workspace width: distinct subexpressions + constants. *)

val n_nodes : Expr.t array -> int
(** Total tree-node count of the source expressions — compare with
    {!n_instructions} to measure the CSE sharing factor. *)

(** {1 Scalar evaluation} *)

val make_ws : t -> float array
(** A fresh workspace with constants preloaded.  A workspace may be
    reused across calls on the same domain but must not be shared
    between concurrently evaluating domains. *)

val eval_into : t -> ws:float array -> x:Vec.t -> th:Vec.t -> out:Vec.t -> unit
(** Run the tape; [out.(i)] receives the i-th expression's value.
    Allocation-free.  [ws] must come from {!make_ws} on this tape.
    @raise Invalid_argument on dimension mismatches. *)

val eval : t -> x:Vec.t -> th:Vec.t -> Vec.t
(** Convenience wrapper allocating a fresh workspace and result. *)

val evaluator : t -> x:Vec.t -> th:Vec.t -> out:Vec.t -> unit
(** An evaluation closure over a domain-local cached workspace: safe
    to call concurrently from multiple domains (each gets its own
    workspace via [Domain.DLS]) and allocation-free after the first
    call on each domain. *)

val scalar_evaluator : t -> Vec.t -> Vec.t -> float
(** Like {!evaluator} for single-output tapes, returning the value
    directly — the compiled form of one transition rate.
    @raise Invalid_argument if the tape has more than one output. *)

(** {1 Interval evaluation} *)

val make_interval_ws : t -> Interval.t array

val eval_interval_into :
  t ->
  ws:Interval.t array ->
  x:Interval.t array ->
  th:Interval.t array ->
  Interval.t array
(** Conservative enclosure of every output over boxes of states and
    parameters.  Matches {!Expr.eval_interval} except that undecided
    [Ite] guards hull both (eagerly computed) branches.
    @raise Division_by_zero if a divisor interval contains 0. *)

val eval_interval :
  t -> x:Interval.t array -> th:Interval.t array -> Interval.t array

val interval_evaluator :
  t -> x:Interval.t array -> th:Interval.t array -> Interval.t array
(** Domain-local cached interval workspace, as {!evaluator}. *)

(** {1 Static-analysis view}

    A decoded, read-only rendering of the compiled instruction stream.
    {!Tape_check} abstractly interprets it and the test suite's
    reference evaluators (e.g. double-double) replay it; neither needs
    access to the packed int-code.  All slot indices refer to the one
    shared workspace laid out [constants | variables | parameters |
    temporaries]; {!slot_kind} classifies each index. *)

type slot_kind =
  | Slot_const of float  (** preloaded constant *)
  | Slot_var of int  (** state coordinate x_i *)
  | Slot_theta of int  (** parameter coordinate θ_j *)
  | Slot_temp  (** written by exactly one instruction *)

type vinstr =
  | V_add of int * int
  | V_sub of int * int
  | V_mul of int * int
  | V_div of int * int
  | V_neg of int
  | V_pow of int * int  (** base slot, literal exponent (≥ 0) *)
  | V_min of int * int
  | V_max of int * int
  | V_ite of int * int * int
      (** guard, then-branch (guard ≤ 0), else-branch *)
  | V_muladd of int * int * int  (** fl(a·b) + c *)
  | V_submul of int * int * int  (** a − fl(b·c) *)
  | V_mulsub of int * int * int  (** fl(a·b) − c *)

val instructions : t -> (int * vinstr) array
(** [(dst, instr)] pairs in execution order — exactly the instructions
    {!eval_into} executes, fused forms included. *)

val slot_kind : t -> int -> slot_kind
(** Classification of a workspace slot.
    @raise Invalid_argument on an out-of-range index. *)

val output_slots : t -> int array
(** The workspace slot holding each output, in output order.  An
    output slot need not be a temporary: a constant or input
    expression compiles to a direct reference. *)

val input_dims : t -> int * int
(** [(n_vars, n_thetas)]: minimum admissible input dimensions. *)
