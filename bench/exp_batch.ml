(* BATCH: the structure-of-arrays batch kernel vs the per-point
   scalar loop.

   Every solver sweep that evaluates one tape at many (x, θ) points —
   hull faces, Hamiltonian vertex scans, uncertainty grids,
   reachability clouds, CTMC assembly — now goes through
   [Tape.Plan.run_batch], which dispatches each tape instruction once
   per chunk of lanes instead of re-entering the interpreter loop per
   point.  This experiment prices that against the scalar
   [Tape.Plan.run] loop it replaced, on every registry model's drift
   tape, and checks the two determinism claims the consumers rely on:
   the batch kernel is bit-identical to the scalar loop, at every pool
   size.  Results go to BENCH_batch.json; the acceptance budget is a
   >= 5x speedup on a >= 1024-point SIR drift sweep. *)
open Umf

let n_points = 4096

let reps = 50

let fill_batch rng m n =
  let xs = Mat.zeros n (Model.dim m)
  and ths = Mat.zeros n (Stdlib.max 1 (Model.theta_dim m)) in
  for i = 0 to n - 1 do
    let x = Optim.Box.sample_uniform rng (Model.clip m)
    and th = Optim.Box.sample_uniform rng (Model.theta m) in
    for j = 0 to Model.dim m - 1 do
      Mat.set xs i j x.(j)
    done;
    for j = 0 to Model.theta_dim m - 1 do
      Mat.set ths i j th.(j)
    done
  done;
  (xs, ths)

(* ns per point over the whole sweep; one warm-up pass builds the
   domain-local scratch outside the measured loop *)
let time_sweep n f =
  f ();
  let (), wall = Common.time_it (fun () -> for _ = 1 to reps do f () done) in
  wall /. float_of_int (reps * n) *. 1e9

let bitwise_equal a b =
  let da = Mat.data a and db = Mat.data b in
  Array.length da = Array.length db
  && Array.for_all2 (fun x y -> x = y || (Float.is_nan x && Float.is_nan y)) da db

let model_row (name, m) =
  let plan = Model.drift_plan m in
  let dim = Model.dim m in
  let xs, ths = fill_batch (Rng.create 42) m n_points in
  let xrows = Array.init n_points (Mat.row xs)
  and trows = Array.init n_points (Mat.row ths) in
  let scalar_out = Mat.zeros n_points dim in
  let row = Vec.zeros dim in
  let scalar_ns =
    time_sweep n_points (fun () ->
        for i = 0 to n_points - 1 do
          Tape.Plan.run plan ~x:xrows.(i) ~th:trows.(i) ~out:row;
          for j = 0 to dim - 1 do
            Mat.set scalar_out i j row.(j)
          done
        done)
  in
  let batch_out = Mat.zeros n_points dim in
  let batch_ns =
    time_sweep n_points (fun () ->
        Tape.Plan.run_batch plan ~xs ~ths ~out:batch_out)
  in
  let bitwise = bitwise_equal scalar_out batch_out in
  let speedup = scalar_ns /. batch_ns in
  Common.row "%-12s %10.1f %10.1f %8.2fx %s\n" name scalar_ns batch_ns speedup
    (if bitwise then "bitwise" else "DIVERGES");
  ( name,
    Obs.Json.Obj
      [
        ("scalar_ns_per_eval", Obs.Json.Num scalar_ns);
        ("batch_ns_per_eval", Obs.Json.Num batch_ns);
        ("speedup", Obs.Json.Num speedup);
        ("bitwise_identical", Obs.Json.Bool bitwise);
      ],
    (speedup, bitwise) )

(* chunk-parallel scaling on the SIR sweep: same batch, 2- and
   4-domain pools scheduling the chunks; output must not move a bit *)
let pool_scaling () =
  let m = Registry.find_exn "sir" in
  let plan = Model.drift_plan m in
  let dim = Model.dim m in
  let xs, ths = fill_batch (Rng.create 42) m n_points in
  let reference = Mat.zeros n_points dim in
  Tape.Plan.run_batch plan ~xs ~ths ~out:reference;
  let seq_ns =
    time_sweep n_points (fun () ->
        Tape.Plan.run_batch plan ~xs ~ths ~out:reference)
  in
  let pool_row domains =
    Runtime.Pool.with_pool ~domains (fun p ->
        let par n f = Runtime.Pool.parallel_for ~stage:"bench-batch" p n f in
        let out = Mat.zeros n_points dim in
        let ns =
          time_sweep n_points (fun () ->
              Tape.Plan.run_batch ~par plan ~xs ~ths ~out)
        in
        let bitwise = bitwise_equal reference out in
        Common.row "sir pool=%d   %10.1f ns/eval  %8.2fx vs seq  %s\n" domains
          ns (seq_ns /. ns)
          (if bitwise then "bitwise" else "DIVERGES");
        ( Printf.sprintf "domains%d" domains,
          Obs.Json.Obj
            [
              ("ns_per_eval", Obs.Json.Num ns);
              ("speedup_vs_seq", Obs.Json.Num (seq_ns /. ns));
              ("bitwise_identical", Obs.Json.Bool bitwise);
            ],
          bitwise ))
  in
  let rows = List.map pool_row [ 2; 4 ] in
  ( ("seq", Obs.Json.Obj [ ("ns_per_eval", Obs.Json.Num seq_ns) ])
    :: List.map (fun (k, j, _) -> (k, j)) rows,
    List.for_all (fun (_, _, b) -> b) rows )

let run () =
  Common.banner "BATCH: SoA batch kernel vs per-point tape evaluation";
  Common.header [ "model"; "scalar_ns"; "batch_ns"; "speedup"; "identity" ];
  let rows = List.map model_row (Registry.all ()) in
  let scaling, pools_bitwise = pool_scaling () in
  let sir_speedup, sir_bitwise =
    match List.find_opt (fun (n, _, _) -> n = "sir") rows with
    | Some (_, _, sb) -> sb
    | None -> (0., false)
  in
  let all_bitwise =
    List.for_all (fun (_, _, (_, b)) -> b) rows && pools_bitwise
  in
  Common.claim
    (Printf.sprintf ">= 5x batch speedup on the %d-point sir drift sweep"
       n_points)
    (sir_speedup >= 5. && sir_bitwise)
    (Printf.sprintf "sir %.2fx, bitwise %b" sir_speedup sir_bitwise);
  Common.claim "batch bit-identical to scalar loop at every pool size"
    all_bitwise
    (if all_bitwise then "all models, seq/2/4 domains" else "DIVERGENCE");
  let oc = open_out "BENCH_batch.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("n_points", Obs.Json.Num (float_of_int n_points));
            ("reps", Obs.Json.Num (float_of_int reps));
            ( "models",
              Obs.Json.Obj (List.map (fun (n, j, _) -> (n, j)) rows) );
            ("sir_pool_scaling", Obs.Json.Obj scaling);
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_batch.json"
