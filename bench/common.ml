(* Shared output helpers for the experiment harness. *)

(* worker pool shared by the experiments that opt into --jobs; None
   (the default) keeps every experiment on its historical sequential
   path *)
let pool : Umf.Runtime.Pool.t option ref = ref None

let dump_dir : string option ref = ref None

let current_slug = ref "experiment"

let dump_counter = ref 0

let set_dump dir =
  dump_dir := dir;
  match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ()

let slug_of_title title =
  let stop =
    match String.index_opt title ':' with
    | Some i -> i
    | None -> String.length title
  in
  String.sub title 0 stop |> String.lowercase_ascii
  |> String.map (fun c ->
         if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '_')

let banner title =
  current_slug := slug_of_title title;
  dump_counter := 0;
  Printf.printf "\n== %s ==\n" title

let row fmt = Printf.printf fmt

let header cols = print_endline (String.concat "\t" cols)

(* Emit a data series to stdout and, when dumping is enabled, to
   <dir>/<slug>[_k].dat together with a matching gnuplot script. *)
let series cols rows =
  header cols;
  let lines =
    List.map
      (fun r -> String.concat "\t" (List.map (Printf.sprintf "%.4f") r))
      rows
  in
  List.iter print_endline lines;
  match !dump_dir with
  | None -> ()
  | Some dir ->
      incr dump_counter;
      let base =
        if !dump_counter = 1 then !current_slug
        else Printf.sprintf "%s_%d" !current_slug !dump_counter
      in
      let dat = Filename.concat dir (base ^ ".dat") in
      let oc = open_out dat in
      output_string oc (String.concat "\t" cols ^ "\n");
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      let gp = Filename.concat dir (base ^ ".gp") in
      let oc = open_out gp in
      Printf.fprintf oc
        "set datafile separator '\\t'\n\
         set key autotitle columnhead outside\n\
         set xlabel '%s'\n\
         plot for [i=2:%d] '%s.dat' using 1:i with lines lw 2\n\
         pause -1\n"
        (match cols with c :: _ -> c | [] -> "x")
        (List.length cols) base;
      close_out oc

let claim name ok detail =
  Printf.printf "CLAIM %-52s %s  (%s)\n" name (if ok then "PASS" else "FAIL") detail

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
