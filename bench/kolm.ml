(* Sec. II-C: imprecise Kolmogorov bounds on a finite chain.  The
   bike-sharing station ICTMC: tight lower/upper expectations of the
   normalised occupancy, cross-checked against (a) exact transient
   expectations for constant theta and (b) adversarial policy
   simulations. *)
open Umf

let run () =
  Common.banner "KOLM: bike station imprecise Kolmogorov bounds";
  let p = Bikesharing.default_params in
  let capacity = 20 in
  let m = Bikesharing.ictmc p ~capacity in
  let h = Bikesharing.occupancy_reward ~capacity in
  let x0 = capacity / 2 in
  let times = [ 0.5; 1.; 2.; 5.; 10.; 20. ] in
  Common.header [ "t"; "lower_E[occ]"; "upper_E[occ]"; "const_mid" ];
  let sound = ref true in
  List.iter
    (fun t ->
      let sweep sense =
        (Ctmc.Imprecise.fixed_series ~sense m ~h ~times:[| t |]).values.(0).(x0)
      in
      let lo = sweep `Lower and hi = sweep `Upper in
      let theta_mid =
        [| Interval.midpoint p.Bikesharing.arrival;
           Interval.midpoint p.Bikesharing.return_ |]
      in
      let g = Ctmc.Imprecise.generator_at m theta_mid in
      let p0 = Array.init (capacity + 1) (fun i -> if i = x0 then 1. else 0.) in
      let mid = Ctmc.Transient.expectation g ~p0 ~t (fun s -> h.(s)) in
      if not (lo -. 1e-3 <= mid && mid <= hi +. 1e-3) then sound := false;
      Printf.printf "%.1f\t%.4f\t%.4f\t%.4f\n" t lo hi mid)
    times;
  Common.claim "constant-theta expectations inside imprecise bounds" !sound "";
  (* adversarial simulation stays within bounds *)
  let horizon = 5. in
  let sweep_at sense t =
    (Ctmc.Imprecise.fixed_series ~sense m ~h ~times:[| t |]).values.(0).(x0)
  in
  let lo = sweep_at `Lower horizon and hi = sweep_at `Upper horizon in
  let policy ~t:_ ~x =
    (* drain aggressively when the station is full, fill when empty *)
    if x > capacity / 2 then [| Interval.hi p.Bikesharing.arrival; Interval.lo p.Bikesharing.return_ |]
    else [| Interval.lo p.Bikesharing.arrival; Interval.hi p.Bikesharing.return_ |]
  in
  let rng = Rng.create 5 in
  let acc = Stats.Running.create () in
  for _ = 1 to 2000 do
    let path = Ctmc.Imprecise.simulate rng m policy ~x0 ~tmax:horizon in
    Stats.Running.add acc h.(Ctmc_path.final_state path)
  done;
  let mean = Stats.Running.mean acc in
  let se = Stats.Running.std acc /. sqrt 2000. in
  Printf.printf "\nadversarial policy: E[occ(%.0f)] = %.4f +/- %.4f, bounds [%.4f, %.4f]\n"
    horizon mean se lo hi;
  Common.claim "adaptive policy simulation within imprecise bounds"
    (mean >= lo -. (4. *. se) -. 0.01 && mean <= hi +. (4. *. se) +. 0.01)
    (Printf.sprintf "%.4f in [%.4f, %.4f]" mean lo hi);
  (* the finite-chain bounds are consistent with the mean-field DI *)
  let di = Bikesharing.di p in
  let fl =
    (Pontryagin.solve ~steps:200 di ~x0:[| 0.5 |] ~horizon:1. ~sense:`Min (`Coord 0)).Pontryagin.value
  in
  let fh =
    (Pontryagin.solve ~steps:200 di ~x0:[| 0.5 |] ~horizon:1. ~sense:`Max (`Coord 0)).Pontryagin.value
  in
  (* chain at horizon t corresponds to fluid at t/N with N-scaled rates;
     here rates are O(1), so fluid horizon 1 ~ chain horizon capacity *)
  let lo_n = sweep_at `Lower (float_of_int capacity)
  and hi_n = sweep_at `Upper (float_of_int capacity) in
  Printf.printf "\nmean-field DI bounds at t=1: [%.4f, %.4f]; chain (N=%d) at t=N: [%.4f, %.4f]\n"
    fl fh capacity lo_n hi_n;
  Common.claim "finite-N bounds within O(1/sqrt N) of mean-field bounds"
    (Float.abs (lo_n -. fl) < 0.3 && Float.abs (hi_n -. fh) < 0.3)
    "loose consistency check (N = 20)"
