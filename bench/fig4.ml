(* Figure 4: transient differential-hull approximation vs the exact
   imprecise bounds (Pontryagin) for theta_max in {2, 5, 6} over
   t in [0, 10].  Paper: hull accurate at 2, loose at 5, trivial at 6. *)
open Umf

let run () =
  let p0 = Sir.default_params in
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  let widths =
    List.map
      (fun theta_max ->
        let p = { p0 with Sir.theta_max } in
        let di = Sir.di p in
        Common.banner
          (Printf.sprintf "FIG4: hull vs imprecise bounds, theta_max = %g" theta_max);
        let h = Hull.bounds ~clip di ~x0:Sir.x0 ~horizon:10. ~dt:0.02 in
        let times = Vec.linspace 0. 10. 11 in
        let imp = Pontryagin.bound_series ~steps:300 di ~x0:Sir.x0 ~coord:1 ~times in
        Common.series
          [ "t"; "xI_lo_hull"; "xI_hi_hull"; "xI_lo_exact"; "xI_hi_exact" ]
          (Array.to_list
             (Array.mapi
                (fun i t ->
                  let ilo, ihi = imp.(i) in
                  [ t; (Hull.lower_at h t).(1); (Hull.upper_at h t).(1); ilo; ihi ])
                times));
        let sound =
          Array.for_all
            (fun i ->
              let t = times.(i) in
              let ilo, ihi = imp.(i) in
              (Hull.lower_at h t).(1) <= ilo +. 1e-3
              && (Hull.upper_at h t).(1) >= ihi -. 1e-3)
            (Array.init (Array.length times) Fun.id)
        in
        Common.claim
          (Printf.sprintf "hull is a sound over-approximation (theta_max=%g)" theta_max)
          sound "hull contains exact interval";
        (Hull.final_width h).(1))
      [ 2.; 5.; 6. ]
  in
  match widths with
  | [ w2; w5; w6 ] ->
      Common.claim "hull tight at theta_max=2 (paper: accurate)" (w2 < 0.1)
        (Printf.sprintf "final xI width %.3f" w2);
      Common.claim "hull loose at theta_max=5 (paper: [.02, 1.17]-like)"
        (w5 > 0.1)
        (Printf.sprintf "final xI width %.3f" w5);
      Common.claim "hull trivial at theta_max=6 (paper: [0, 1])" (w6 > 0.9)
        (Printf.sprintf "final xI width %.3f" w6)
  | _ -> ()
