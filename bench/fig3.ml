(* Figure 3: steady-state regions of the SIR model with
   theta_max = 10 theta_min: Birkhoff centre of the imprecise model
   (convex region) vs the equilibrium curve of the uncertain model. *)
open Umf

let run () =
  Common.banner "FIG3: SIR steady state, imprecise region vs uncertain curve";
  let p = Sir.default_params in
  let di = Sir.di p in
  let b = Birkhoff.compute di ~x_start:Sir.x0 in
  let eqs = Uncertain.equilibria ~grid:21 di ~x0:Sir.x0 in
  print_endline "# uncertain equilibrium curve (one point per constant theta)";
  Common.series [ "xS_eq"; "xI_eq" ] (List.map (fun e -> [ e.(0); e.(1) ]) eqs);
  print_endline "# imprecise Birkhoff-centre boundary (convex polygon)";
  let boundary = Geometry.resample_boundary b.Birkhoff.polygon 40 in
  Common.series [ "xS"; "xI" ] (List.map (fun (x, y) -> [ x; y ]) boundary);
  let (bxmin, _), (bxmax, bymax) = Geometry.bounding_box b.Birkhoff.polygon in
  let exmin = List.fold_left (fun a e -> Float.min a e.(0)) 1. eqs in
  let eymax = List.fold_left (fun a e -> Float.max a e.(1)) 0. eqs in
  Printf.printf "\nregion area %.4f, xS in [%.3f, %.3f], xI max %.3f\n"
    (Birkhoff.area b) bxmin bxmax bymax;
  Common.claim "uncertain equilibria inside imprecise region"
    (List.for_all (fun e -> Birkhoff.contains ~tol:3e-3 b (e.(0), e.(1))) eqs)
    (Printf.sprintf "%d equilibria" (List.length eqs));
  Common.claim "region reaches smaller xS than any uncertain equilibrium"
    (bxmin < exmin -. 0.02)
    (Printf.sprintf "%.3f vs %.3f" bxmin exmin);
  Common.claim "region reaches larger xI than any uncertain equilibrium"
    (bymax > eymax +. 0.02)
    (Printf.sprintf "%.3f vs %.3f" bymax eymax);
  Common.claim "expansion converged (no outward drift left)"
    (Birkhoff.converged b)
    (Birkhoff.result_to_string b)
