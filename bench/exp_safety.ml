(* Formal safety verification of the epidemic patch design: the
   "design" use-case from the paper's conclusion.  Verify that a patch
   rate keeps the infected fraction below a threshold at all times, for
   every admissible time-varying infection rate; on failure produce the
   witness environment (bang-bang rainfall/contact pattern). *)
open Umf

let run () =
  Common.banner "SAFETY: verified patch-rate design for the SIR epidemic";
  let x0 = [| 0.9; 0.05 |] in
  let threshold = 0.12 in
  let prop =
    [ Safety.le ~label:"infected <= 12%" ~coord:1 ~dim:2 threshold ]
  in
  Common.header [ "patch rate b"; "verdict"; "detail" ];
  let verdicts =
    List.map
      (fun b ->
        let di = Sir.di { Sir.default_params with Sir.b } in
        let v =
          Safety.verify ~steps:200 ~check_points:12 di ~x0 ~horizon:25. prop
        in
        (match v with
        | Safety.Safe margin -> Printf.printf "%.0f\tSAFE\tmargin %.4f\n" b margin
        | Safety.Violated w ->
            Printf.printf "%.0f\tVIOLATED\tx_I(%.1f) can reach %.4f; switches at [%s]\n"
              b w.Safety.time w.Safety.value
              (String.concat ", "
                 (List.map (Printf.sprintf "%.2f")
                    (Pontryagin.switch_times w.Safety.control ~coord:0))));
        (b, v))
      [ 5.; 6.; 7.; 9. ]
  in
  let is_safe b =
    match List.assoc b verdicts with Safety.Safe _ -> true | Safety.Violated _ -> false
  in
  Common.claim "b = 5 design violated by a time-varying environment"
    (not (is_safe 5.)) "witness extracted";
  Common.claim "b = 7 design verified safe" (is_safe 7.) "";
  Common.claim "verdicts monotone in the patch rate"
    ((not (is_safe 5.)) && is_safe 7. && is_safe 9.)
    "";

  (* second design study: bike-network rebalancing capacity ([22]) *)
  Common.banner "SAFETY: truck rebalancing capacity for the bike network";
  let bn = Bikenetwork.default_params in
  Common.header [ "rebalance r"; "verdict"; "worst min-station stock" ];
  let bn_verdicts =
    List.map
      (fun r ->
        let p = Bikenetwork.with_rebalance bn r in
        let v =
          Safety.verify ~steps:150 ~check_points:8 (Bikenetwork.di p)
            ~x0:(Bikenetwork.x0 p) ~horizon:8.
            (Bikenetwork.starvation_constraints p ~level:0.01)
        in
        (match v with
        | Safety.Safe m -> Printf.printf "%.1f\tSAFE\tmargin %.4f\n" r m
        | Safety.Violated w ->
            (* the constraint is -x <= -level, so the worst stock is
               -value *)
            Printf.printf "%.1f\tVIOLATED\t%s: stock falls to %.4f\n" r
              w.Safety.constraint_.Safety.label (-.w.Safety.value));
        (r, v))
      [ 0.; 1.; 2.; 4. ]
  in
  let bn_safe r =
    match List.assoc r bn_verdicts with
    | Safety.Safe _ -> true
    | Safety.Violated _ -> false
  in
  Common.claim "no rebalancing: a sustained surge starves downtown"
    (not (bn_safe 0.)) "mu z p1 < theta1_max structurally";
  Common.claim "r = 4 trucks keep every station stocked" (bn_safe 4.) ""
