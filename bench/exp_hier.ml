(* The adversary hierarchy of Sec. II: between the uncertain (constant
   theta) and imprecise (arbitrary adapted theta) extremes lie
   deterministic piecewise-constant parameter functions.  The
   reachability envelopes grow monotonically along the hierarchy and
   converge to the imprecise (bang-bang) bound. *)
open Umf

let run () =
  Common.banner "HIER: adversary hierarchy on SIR max x_I(3)";
  let p = Sir.default_params in
  let di = Sir.di p in
  let hi s = snd (Scenario.extremal_coord ~grid:5 s di ~x0:Sir.x0 ~coord:1 ~horizon:3.) in
  Common.header [ "scenario"; "max x_I(3)" ];
  let h_unc = hi Scenario.Uncertain in
  Printf.printf "constant (uncertain)\t%.4f\n" h_unc;
  let piecewise =
    List.map
      (fun k ->
        let v = hi (Scenario.Piecewise k) in
        Printf.printf "piecewise-%d\t%.4f\n" k v;
        v)
      [ 2; 3; 4 ]
  in
  let h_imp = hi Scenario.Imprecise in
  Printf.printf "imprecise (bang-bang)\t%.4f\n" h_imp;
  (* the slew-limited adversary sits between the extremes too *)
  List.iter
    (fun rate ->
      Printf.printf "rate-limited L=%g\t%.4f\n" rate
        (hi (Scenario.RateLimited rate)))
    [ 2.; 10. ];
  let chain = (h_unc :: piecewise) @ [ h_imp ] in
  let monotone =
    let rec ok = function
      | a :: (b :: _ as rest) -> a <= b +. 1e-3 && ok rest
      | _ -> true
    in
    ok chain
  in
  Common.claim "envelope grows along the hierarchy" monotone
    (String.concat " <= " (List.map (Printf.sprintf "%.4f") chain));
  Common.claim "piecewise-4 approaches the imprecise bound"
    (List.nth chain 3 > h_unc +. (0.6 *. (h_imp -. h_unc)))
    (Printf.sprintf "%.4f of the way to %.4f" (List.nth chain 3) h_imp)
