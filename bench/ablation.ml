(* Ablations of the design choices called out in DESIGN.md:
   (a) Pontryagin arg-max by vertex enumeration vs grid+descent;
   (b) costate with analytic Jacobian vs finite differences;
   (c) hull face optimisation at different refinement levels;
   (d) Pontryagin relaxation factor. *)
open Umf

let run () =
  Common.banner "ABLATION: solver design choices (SIR, max x_I(3))";
  let p = Sir.default_params in
  let di_analytic = Sir.di p in
  let di_fd = Di.make ~dim:2 ~theta:di_analytic.Di.theta di_analytic.Di.drift in
  let solve ?opt ?relax di =
    Common.time_it (fun () ->
        (Pontryagin.solve ~steps:300 ?opt ?relax di ~x0:Sir.x0 ~horizon:3.
           ~sense:`Max (`Coord 1))
          .Pontryagin.value)
  in
  let v_vert, t_vert = solve ~opt:`Vertices di_analytic in
  let v_grid, t_grid = solve ~opt:(`Box 5) di_analytic in
  let v_fd, t_fd = solve di_fd in
  Common.header [ "variant"; "value"; "seconds" ];
  Printf.printf "argmax=vertices, jac=analytic\t%.5f\t%.3f\n" v_vert t_vert;
  Printf.printf "argmax=grid(5)+descent\t%.5f\t%.3f\n" v_grid t_grid;
  Printf.printf "jacobian=finite-diff\t%.5f\t%.3f\n" v_fd t_fd;
  Common.claim "vertex argmax = grid argmax (drift affine in theta)"
    (Float.abs (v_vert -. v_grid) < 1e-3)
    (Printf.sprintf "delta %.2e" (Float.abs (v_vert -. v_grid)));
  Common.claim "vertex argmax faster than grid"
    (t_vert < t_grid)
    (Printf.sprintf "%.3fs vs %.3fs" t_vert t_grid);
  Common.claim "FD Jacobian matches analytic"
    (Float.abs (v_vert -. v_fd) < 1e-4)
    (Printf.sprintf "delta %.2e" (Float.abs (v_vert -. v_fd)));
  (* relaxation ablation: full updates cycle into a worse pattern *)
  let v_r05, _ = solve ~relax:0.5 di_analytic in
  let v_r10, _ = solve ~relax:1.0 di_analytic in
  Printf.printf "relax=0.5 value %.5f, relax=1.0 value %.5f\n" v_r05 v_r10;
  Common.claim "under-relaxation never worse than full updates"
    (v_r05 >= v_r10 -. 1e-4)
    (Printf.sprintf "%.5f vs %.5f" v_r05 v_r10);
  (* hull refinement ablation: run at theta_max = 5 where the hull is
     non-trivial (at 10 it saturates to [0,1] regardless of refinement) *)
  let di5 = Sir.di { p with Sir.theta_max = 5. } in
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  Common.header [ "hull refine"; "final xI width"; "seconds" ];
  let widths =
    List.map
      (fun refine ->
        let (w : float), t =
          Common.time_it (fun () ->
              (Hull.final_width
                 (Hull.bounds ~refine ~clip di5 ~x0:Sir.x0 ~horizon:4.
                    ~dt:0.02)).(1))
        in
        Printf.printf "%d\t%.4f\t%.3f\n" refine w t;
        w)
      [ 0; 4; 16 ]
  in
  match widths with
  | [ w0; _; w16 ] ->
      Common.claim "hull width insensitive to refinement (multilinear drift)"
        (Float.abs (w0 -. w16) < 5e-3)
        (Printf.sprintf "%.4f vs %.4f" w0 w16)
  | _ -> ()
