(* OBS: observability overhead and per-solver metric breakdowns.

   Each solver workload runs twice — obs off, then obs on with an
   in-memory registry — asserting bit-identical results either way.
   The registry rows become the per-solver breakdown written to
   BENCH_obs.json; the off/on wall times bound the probe overhead
   (the acceptance budget is < 2% with obs off). *)
open Umf

let p = Sir.default_params

let di = Sir.di p

let model = Sir.model p

let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |]

let json_of_agg agg =
  let spans =
    List.map
      (fun (name, st) ->
        ( name,
          Obs.Json.Obj
            [
              ("calls", Obs.Json.Num (float_of_int st.Obs.Agg.calls));
              ("total_s", Obs.Json.Num st.Obs.Agg.total);
              ("max_s", Obs.Json.Num st.Obs.Agg.max);
            ] ))
      (Obs.Agg.span_stats agg)
  in
  let counters =
    List.map (fun (name, v) -> (name, Obs.Json.Num v)) (Obs.Agg.counters agg)
  in
  Obs.Json.Obj
    [ ("spans", Obs.Json.Obj spans); ("counters", Obs.Json.Obj counters) ]

let run () =
  Common.banner "OBS: probe overhead (off vs on) and per-solver metrics";
  let reps = 5 in
  let workloads =
    [
      ( "pontryagin",
        fun obs ->
          `P
            (Pontryagin.solve ~steps:300 ~obs di ~x0:Sir.x0 ~horizon:3.
               ~sense:`Max (`Coord 1)) );
      ( "hull",
        fun obs ->
          `H (Hull.bounds ~clip ~obs di ~x0:Sir.x0 ~horizon:10. ~dt:0.02) );
      ("birkhoff", fun obs -> `B (Birkhoff.compute ~obs di ~x_start:Sir.x0));
      ( "ode",
        fun obs ->
          `O
            (Ode.integrate_adaptive ~obs
               ((Sir.di p).Di.drift |> fun f -> fun _t x -> f x [| 5. |])
               ~t0:0. ~y0:Sir.x0 ~t1:10.) );
      ( "ssa",
        fun obs ->
          `S
            (Ssa.replicate ~obs model ~n:500 ~x0:Sir.x0
               ~policy:(Sir.policy_theta1 p) ~tmax:10. ~reps:20 ~seed:3) );
      ( "uncertain",
        fun obs ->
          `U
            (Uncertain.transient_envelope ~obs ~grid:11 di ~x0:Sir.x0
               ~times:[| 1.; 2.; 3. |]) );
    ]
  in
  Common.header [ "solver"; "off_s"; "on_s"; "overhead"; "identical" ];
  let rows =
    List.map
      (fun (name, f) ->
        let repeat obs () =
          let r = ref (f obs) in
          for _ = 2 to reps do
            r := f obs
          done;
          !r
        in
        let r_off, t_off = Common.time_it (repeat Obs.off) in
        let agg = Obs.Agg.create () in
        let r_on, t_on = Common.time_it (repeat (Obs.make ~agg ())) in
        let identical = r_off = r_on in
        let overhead = (t_on -. t_off) /. Float.max 1e-9 t_off in
        Printf.printf "%s\t%.4f\t%.4f\t%+.1f%%\t%b\n" name t_off t_on
          (100. *. overhead) identical;
        Common.claim
          (Printf.sprintf "%s: obs on/off bit-identical" name)
          identical
          (Printf.sprintf "%d reps" reps);
        ( name,
          Obs.Json.Obj
            [
              ("off_s", Obs.Json.Num t_off);
              ("on_s", Obs.Json.Num t_on);
              ("overhead", Obs.Json.Num overhead);
              ("identical", Obs.Json.Bool identical);
              ("metrics", json_of_agg agg);
            ] ))
      workloads
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("reps", Obs.Json.Num (float_of_int reps));
            ("solvers", Obs.Json.Obj rows);
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_obs.json"
