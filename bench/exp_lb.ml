(* Robust routing comparison on the power-of-d-choices system: which
   policy keeps the worst-case backlog lower when the arrival rate
   varies adversarially in [0.5, 0.9]?  The mean-field envelopes decide
   the design question at a glance. *)
open Umf

let horizon = 100.

let run () =
  Common.banner "LB: robust routing, JSQ(2) vs random, imprecise arrivals";
  let params d = { Loadbalance.default_params with Loadbalance.d } in
  let worst d =
    let p = params d in
    let di = Loadbalance.di p in
    let ones = Vec.create p.Loadbalance.k_max 1. in
    (* worst-case mean queue length at a horizon long enough for the
       slow d = 1 system (relaxation time ~ 1/(1 - rho) = 10) *)
    (Pontryagin.solve ~steps:400 di ~x0:(Loadbalance.x0_empty p) ~horizon
       ~sense:`Max (`Linear ones))
      .Pontryagin.value
  in
  let const_max d =
    (* same horizon, constant lambda_max: the uncertain worst case *)
    let p = params d in
    let di = Loadbalance.di p in
    let final =
      Ode.Traj.last
        (Di.integrate_constant di ~theta:[| 0.9 |]
           ~x0:(Loadbalance.x0_empty p) ~horizon ~dt:0.02)
    in
    Loadbalance.mean_queue final
  in
  Common.header
    [ "policy"; "worst-case mean queue"; "constant-0.9 same horizon"; "equilibrium" ];
  let w1 = worst 1 and w2 = worst 2 in
  let c1 = const_max 1 and c2 = const_max 2 in
  Printf.printf "random (d=1)\t%.3f\t%.3f\t%.3f\n" w1 c1
    (Loadbalance.mean_queue (Loadbalance.fixed_point (params 1) ~lambda:0.9));
  Printf.printf "JSQ(2)\t%.3f\t%.3f\t%.3f\n" w2 c2
    (Loadbalance.mean_queue (Loadbalance.fixed_point (params 2) ~lambda:0.9));
  Common.claim "JSQ(2) robustly beats random routing at T=100"
    (w2 < 0.75 *. w1)
    (Printf.sprintf "%.3f vs %.3f" w2 w1);
  let eq d =
    Loadbalance.mean_queue (Loadbalance.fixed_point (params d) ~lambda:0.9)
  in
  (* the d=1 system converges very slowly at rho = 0.9; in steady state
     the doubly-exponential tail gives JSQ(2) a >2x advantage *)
  Common.claim "JSQ(2) wins by >2x in the worst-case steady state"
    (eq 2 < 0.5 *. eq 1)
    (Printf.sprintf "%.3f vs %.3f" (eq 2) (eq 1));
  Common.claim "worst case ~ constant lambda_max (monotone drift)"
    (Float.abs (w1 -. c1) < 0.05 *. c1 && Float.abs (w2 -. c2) < 0.05 *. c2)
    (Printf.sprintf "d=1: %.3f vs %.3f; d=2: %.3f vs %.3f" w1 c1 w2 c2);
  (* stochastic cross-check at N = 500 *)
  let p2 = params 2 in
  let avg =
    Ssa.time_average (Loadbalance.model p2) ~n:500
      ~x0:(Loadbalance.x0_empty p2)
      ~policy:(Policy.constant [| 0.9 |])
      ~tmax:60. ~warmup:20. ~reward:Loadbalance.mean_queue (Rng.create 3)
  in
  Common.claim "N=500 simulation within the worst-case bound"
    (avg <= w2 +. 0.15)
    (Printf.sprintf "simulated %.3f, bound %.3f" avg w2)
