(* Cert: the unified error ledger and the adaptive imprecise sweep.

   Claims backed here:
   - the adaptive backward sweep meets a requested a-priori ε on a
     small SIR chain, and does so with no more Euler steps than the
     coarsest uniform grid whose certified promise reaches the same ε
     (found by doubling search, so both sides pay for the identical
     guarantee);
   - asking Ctmc.Engine.envelope for the adaptive ledger
     (~sweep_eps) instead of the fixed-grid default keeps the
     certificate's discretisation line within the requested ε while
     the fixed grid's line is whatever the default step count buys.

   Knobs:

     UMF_CERT_N      SIR population size for the imprecise chain
                     (default 8; the lattice, and with it λ, grows
                     with N, so raise ε or expect more steps)

   Wall times are recorded per run together with the core count, so
   the JSON stays honest on a 1-core CI box.  Results go to
   BENCH_cert.json. *)
open Umf

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let cores = Domain.recommended_domain_count ()
let n = env_int "UMF_CERT_N" 8
let horizon = 1.0
let epsilons = [ 0.2; 0.1; 0.05; 0.02 ]

let imprecise_sir () =
  let model = Registry.find_exn "sir" in
  let pop = Model.population model in
  let sp =
    Ctmc_of_population.state_space ~clip:(Model.clip model) ~max_states:2_000
      ~truncation:`Adaptive pop ~n ~x0:(Model.x0 model)
  in
  let im = Ctmc_of_population.imprecise ~theta:(Model.theta model) sp pop in
  im

(* smallest power-of-two steps_per_unit whose fixed-grid certificate
   promises the same ε the adaptive run was asked for *)
let fixed_steps_for im ~sense ~h ~epsilon =
  let rec search spu =
    let sw =
      Ctmc.Imprecise.fixed_series ~steps_per_unit:spu ~sense im ~h
        ~times:[| horizon |]
    in
    if sw.Ctmc.Imprecise.eps.(0) <= epsilon || spu >= 1 lsl 24 then sw
    else search (spu * 2)
  in
  search 1

let equal_epsilon () =
  let im = imprecise_sir () in
  let states = Ctmc.Imprecise.n_states im in
  let lambda = Ctmc.Imprecise.max_exit_bound im in
  let h = Array.init states (fun i -> float_of_int (i mod 7) /. 6.) in
  let sense = `Upper in
  Common.header
    [ "epsilon"; "adaptive_steps"; "fixed_steps"; "adaptive_s"; "fixed_s" ];
  let ok_eps = ref true and ok_steps = ref true in
  let rows =
    List.map
      (fun epsilon ->
        let adaptive, wall_a =
          Common.time_it (fun () ->
              Ctmc.Imprecise.adaptive_series ~epsilon ~sense im ~h
                ~times:[| horizon |])
        in
        let fixed, wall_f =
          Common.time_it (fun () ->
              fixed_steps_for im ~sense ~h ~epsilon)
        in
        if adaptive.Ctmc.Imprecise.eps.(0) > epsilon +. 1e-12 then
          ok_eps := false;
        if adaptive.Ctmc.Imprecise.steps > fixed.Ctmc.Imprecise.steps then
          ok_steps := false;
        Common.row "%.3f\t%d\t%d\t%.4f\t%.4f\n" epsilon
          adaptive.Ctmc.Imprecise.steps fixed.Ctmc.Imprecise.steps wall_a
          wall_f;
        ( epsilon,
          adaptive.Ctmc.Imprecise.steps,
          adaptive.Ctmc.Imprecise.eps.(0),
          fixed.Ctmc.Imprecise.steps,
          fixed.Ctmc.Imprecise.eps.(0),
          wall_a,
          wall_f ))
      epsilons
  in
  Common.claim "adaptive sweep meets its a-priori epsilon" !ok_eps
    (Printf.sprintf "%d states, lambda=%.1f" states lambda);
  Common.claim "adaptive needs <= the equal-epsilon uniform grid" !ok_steps
    "steps vs doubling-searched fixed grid";
  (states, lambda, rows)

let ledger_overhead () =
  let model = Registry.find_exn "sir" in
  let epsilon = 0.05 in
  let reward = Ctmc.Engine.Coord 1 in
  let line name (c : Cert.t) =
    match List.assoc_opt name (Cert.lines c) with Some v -> v | None -> 0.
  in
  let run ?sweep_eps () =
    Ctmc.Engine.envelope
      (Ctmc.Engine.spec ~horizon ~times:[| horizon |] ?sweep_eps ~n model)
      ~reward
  in
  let fixed, wall_f = Common.time_it (fun () -> run ()) in
  let adaptive, wall_a = Common.time_it (fun () -> run ~sweep_eps:epsilon ()) in
  let last (e : Ctmc.Engine.envelope) =
    e.Ctmc.Engine.certs.(Array.length e.Ctmc.Engine.certs - 1)
  in
  let disc_f = line "discretisation" (last fixed)
  and disc_a = line "discretisation" (last adaptive) in
  Common.header
    [ "sweep"; "steps"; "disc_line"; "width"; "wall_s" ];
  Common.row "fixed\t%d\t%.3e\t%.4f\t%.4f\n" fixed.Ctmc.Engine.sweep_steps
    disc_f
    (Cert.width (last fixed))
    wall_f;
  Common.row "adaptive\t%d\t%.3e\t%.4f\t%.4f\n"
    adaptive.Ctmc.Engine.sweep_steps disc_a
    (Cert.width (last adaptive))
    wall_a;
  Common.claim "adaptive ledger keeps discretisation within 2*epsilon"
    (disc_a <= (2. *. epsilon) +. 1e-12)
    (Printf.sprintf "disc=%.3e for eps=%.2f (two sweeps)" disc_a epsilon);
  (epsilon, fixed, wall_f, disc_f, adaptive, wall_a, disc_a)

let run () =
  Common.banner "Cert: error ledger & adaptive imprecise sweeps";
  let states, lambda, rows = equal_epsilon () in
  let eps_o, env_f, wall_f, disc_f, env_a, wall_a, disc_a =
    ledger_overhead ()
  in
  let oc = open_out "BENCH_cert.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("cores", Obs.Json.Num (float_of_int cores));
            ("n", Obs.Json.Num (float_of_int n));
            ("states", Obs.Json.Num (float_of_int states));
            ("max_exit_bound", Obs.Json.Num lambda);
            ( "equal_epsilon",
              Obs.Json.Arr
                (List.map
                   (fun (eps, a_steps, a_eps, f_steps, f_eps, wa, wf) ->
                     Obs.Json.Obj
                       [
                         ("epsilon", Obs.Json.Num eps);
                         ( "adaptive_steps",
                           Obs.Json.Num (float_of_int a_steps) );
                         ("adaptive_eps", Obs.Json.Num a_eps);
                         ("fixed_steps", Obs.Json.Num (float_of_int f_steps));
                         ("fixed_eps", Obs.Json.Num f_eps);
                         ("adaptive_wall_s", Obs.Json.Num wa);
                         ("fixed_wall_s", Obs.Json.Num wf);
                       ])
                   rows) );
            ( "envelope_ledger",
              Obs.Json.Obj
                [
                  ("sweep_eps", Obs.Json.Num eps_o);
                  ( "fixed",
                    Obs.Json.Obj
                      [
                        ( "sweep_steps",
                          Obs.Json.Num
                            (float_of_int env_f.Ctmc.Engine.sweep_steps) );
                        ("discretisation", Obs.Json.Num disc_f);
                        ("wall_s", Obs.Json.Num wall_f);
                      ] );
                  ( "adaptive",
                    Obs.Json.Obj
                      [
                        ( "sweep_steps",
                          Obs.Json.Num
                            (float_of_int env_a.Ctmc.Engine.sweep_steps) );
                        ("discretisation", Obs.Json.Num disc_a);
                        ("wall_s", Obs.Json.Num wall_a);
                      ] );
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_cert.json"
