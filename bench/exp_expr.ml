(* EXPR: cost of the compiled symbolic IR.

   The refactor made every solver consume tape-compiled drifts, so
   this experiment prices the tape against the code it replaced:

   - the naive [Expr.eval] interpreter (what the symbolic twins used
     on the hot path before compilation existed), and
   - the deleted hand-written closures.  For every model those were
     per-transition rate closures consumed through the
     [Population.drift] fold — reconstructed verbatim below — which
     is the drift the solvers actually called via [Di.of_population].
     SIR additionally had a bespoke Eq. (11) closed form; it is
     reported as a reference row (a two-line float expression kept in
     registers is the hard floor no interpreted representation can
     reach) but the acceptance budget is priced against the closure
     path the refactor deleted from the solver pipeline.

   Drift micro-benchmarks run on SIR (small, smooth) and GPS-Poisson
   (guards, clamps, a quotient); the end-to-end rows time
   Analysis.transient_bounds on both models.  Results go to
   BENCH_expr.json; the acceptance budget is a compiled tape within
   1.5x of the hand-written closure drift. *)
open Umf

let sirp = Sir.default_params

let gpsp = Gps.default_params

(* ---- the deleted hand-written rate closures, reconstructed ---- *)

(* SIR transition rates exactly as they stood in lib/models/sir.ml *)
let sir_legacy p =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"sir-legacy" ~var_names:[| "S"; "I" |]
    ~theta_names:[| "theta" |]
    ~theta:
      (Optim.Box.of_intervals
         [ Interval.make p.Sir.theta_min p.Sir.theta_max ])
    [
      tr "infection" [| -1.; 1. |]
        (fun (x : Vec.t) (th : Vec.t) ->
          (p.Sir.a *. x.(0)) +. (th.(0) *. x.(0) *. x.(1)));
      tr "recovery" [| 0.; -1. |] (fun x _ -> p.Sir.b *. x.(1));
      tr "immunity-loss" [| 1.; 0. |]
        (fun x _ -> p.Sir.c *. Float.max 0. (1. -. x.(0) -. x.(1)));
    ]

(* Eq. (11) closed form — the deleted bespoke SIR drift; only SIR
   ever had one *)
let sir_closed_form p (x : Vec.t) (theta : Vec.t) (out : Vec.t) =
  let xs = x.(0) and xi = x.(1) and th = theta.(0) in
  out.(0) <-
    p.Sir.c
    -. ((p.Sir.a +. p.Sir.c) *. xs)
    -. (p.Sir.c *. xi)
    -. (th *. xs *. xi);
  out.(1) <- (p.Sir.a *. xs) +. (th *. xs *. xi) -. (p.Sir.b *. xi)

(* GPS-Poisson rate closures exactly as they stood in
   lib/models/gps.ml, guards and clamps included *)
let gps_legacy p =
  let service ~q1 ~q2 i =
    let clamp q = Float.min 1. (Float.max 0. q) in
    let q1 = clamp q1 and q2 = clamp q2 in
    let backlog =
      (p.Gps.phi1 *. p.Gps.gamma1 *. q1) +. (p.Gps.phi2 *. p.Gps.gamma2 *. q2)
    in
    if backlog <= 1e-12 then 0.
    else if i = 1 then
      p.Gps.mu1 *. p.Gps.capacity *. p.Gps.phi1 *. p.Gps.gamma1 *. q1
      /. backlog
    else
      p.Gps.mu2 *. p.Gps.capacity *. p.Gps.phi2 *. p.Gps.gamma2 *. q2
      /. backlog
  in
  let arrival i gamma (x : Vec.t) (theta : Vec.t) =
    theta.(i - 1) *. gamma *. Float.max 0. (1. -. x.(i - 1))
  in
  let serve i (x : Vec.t) _theta = service ~q1:x.(0) ~q2:x.(1) i in
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"gps-legacy" ~var_names:[| "Q1"; "Q2" |]
    ~theta_names:[| "lambda'1"; "lambda'2" |]
    ~theta:(Model.theta (Gps.make_poisson p))
    [
      tr "arrival-1" [| 1. /. p.Gps.gamma1; 0. |] (arrival 1 p.Gps.gamma1);
      tr "service-1" [| -1. /. p.Gps.gamma1; 0. |] (serve 1);
      tr "arrival-2" [| 0.; 1. /. p.Gps.gamma2 |] (arrival 2 p.Gps.gamma2);
      tr "service-2" [| 0.; -1. /. p.Gps.gamma2 |] (serve 2);
    ]

(* cycle through a fixed bag of in-box points so the guards see both
   branches and the timing is not one perfectly predicted trace *)
let sample_points rng n (state : Optim.Box.t) (theta : Optim.Box.t) =
  Array.init n (fun _ ->
      (Optim.Box.sample_uniform rng state, Optim.Box.sample_uniform rng theta))

let iters = 200_000

let time_per_eval points f =
  let sink = ref 0. in
  let n = Array.length points in
  (* warm-up pass keeps one-time setup out of the measured loop *)
  for i = 0 to n - 1 do
    let x, th = points.(i) in
    sink := !sink +. f x th
  done;
  let (), wall =
    Common.time_it (fun () ->
        for i = 0 to iters - 1 do
          let x, th = points.(i mod n) in
          sink := !sink +. f x th
        done)
  in
  (wall /. float_of_int iters *. 1e9, !sink)

(* all rows go through the solver-facing allocating contract
   [drift x th -> fresh vector], so the comparison prices exactly the
   call every solver makes through [Di.t] *)
let drift_rows name model legacy =
  let points =
    sample_points (Rng.create 42) 64 (Model.clip model) (Model.theta model)
  in
  let dim = Model.dim model in
  let out = Vec.zeros dim in
  let compiled_ns, s1 =
    time_per_eval points (fun x th -> (Model.drift model x th).(0))
  in
  let exprs = Model.drift_exprs model in
  let interp_ns, s2 =
    time_per_eval points (fun x th ->
        for i = 0 to dim - 1 do
          out.(i) <- Expr.eval exprs.(i) ~x ~th
        done;
        out.(0))
  in
  let legacy_ns, s3 =
    time_per_eval points (fun x th -> (Population.drift legacy x th).(0))
  in
  ignore (s1 +. s2 +. s3);
  let ratio = compiled_ns /. legacy_ns in
  let speedup = interp_ns /. compiled_ns in
  Common.row "%-12s %10.1f %10.1f %10.1f %8.2fx %8.2fx\n" name compiled_ns
    interp_ns legacy_ns ratio speedup;
  ( name,
    [
      ("compiled_ns_per_eval", Obs.Json.Num compiled_ns);
      ("interpreted_ns_per_eval", Obs.Json.Num interp_ns);
      ("closure_ns_per_eval", Obs.Json.Num legacy_ns);
      ("compiled_over_closure", Obs.Json.Num ratio);
      ("compiled_over_interpreted_speedup", Obs.Json.Num speedup);
    ],
    ratio )

let bounds_row name model =
  let s = Analysis.spec ~steps:200 ~horizon:5. model in
  let x0 = Model.x0 model in
  let b, wall =
    Common.time_it (fun () -> Analysis.transient_bounds s ~x0 ~coord:0)
  in
  Common.row "%-12s transient_bounds %8.3f s  (coord 0 in [%.4f, %.4f] at T)\n"
    name wall
    b.Analysis.lower.(Array.length b.Analysis.lower - 1)
    b.Analysis.upper.(Array.length b.Analysis.upper - 1);
  (name, Obs.Json.Obj [ ("transient_bounds_s", Obs.Json.Num wall) ])

let run () =
  Common.banner "EXPR: compiled tape vs interpreter vs hand-written closures";
  let sir = Sir.make sirp and gps = Gps.make_poisson gpsp in
  Common.header
    [ "model"; "tape_ns"; "interp_ns"; "closure_ns"; "vs_closure"; "vs_interp" ];
  let r_sir, j_sir, ratio_sir = drift_rows "sir" sir (sir_legacy sirp) in
  let r_gps, j_gps, ratio_gps = drift_rows "gps-poisson" gps (gps_legacy gpsp) in
  (* reference floor: SIR's deleted Eq. (11) closed form, two float
     expressions the compiler keeps entirely in registers *)
  let cf_points =
    sample_points (Rng.create 42) 64 (Model.clip sir) (Model.theta sir)
  in
  let cf_out = Vec.zeros 2 in
  let closed_form_ns, s =
    time_per_eval cf_points (fun x th ->
        sir_closed_form sirp x th cf_out;
        cf_out.(0))
  in
  ignore s;
  Common.row
    "%-12s closed-form Eq.(11) reference %8.1f ns/eval (register floor)\n"
    "sir" closed_form_ns;
  let j_sir =
    j_sir @ [ ("closed_form_ns_per_eval", Obs.Json.Num closed_form_ns) ]
  in
  let e2e = [ bounds_row "sir" sir; bounds_row "gps-poisson" gps ] in
  Common.claim "compiled tape within 1.5x of hand-written closures"
    (ratio_sir <= 1.5 && ratio_gps <= 1.5)
    (Printf.sprintf "sir %.2fx, gps %.2fx" ratio_sir ratio_gps);
  let oc = open_out "BENCH_expr.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("iters", Obs.Json.Num (float_of_int iters));
            ( "drift",
              Obs.Json.Obj
                [ (r_sir, Obs.Json.Obj j_sir); (r_gps, Obs.Json.Obj j_gps) ] );
            ("end_to_end", Obs.Json.Obj e2e);
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_expr.json"
