(* Figure 5: steady-state comparison of the uncertain equilibrium
   curve, the imprecise Birkhoff centre and the differential-hull
   rectangle, for theta_max in {2, 3, 4, 5}.  Paper: the hull rectangle
   degrades non-linearly in theta_max. *)
open Umf

let run () =
  let p0 = Sir.default_params in
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  List.iter
    (fun theta_max ->
      let p = { p0 with Sir.theta_max } in
      let di = Sir.di p in
      Common.banner (Printf.sprintf "FIG5: steady state, theta_max = %g" theta_max);
      let b = Birkhoff.compute di ~x_start:Sir.x0 in
      let (bxmin, bymin), (bxmax, bymax) = Geometry.bounding_box b.Birkhoff.polygon in
      (* hull integrated to (near) stationarity gives the rectangle *)
      let h = Hull.bounds ~clip di ~x0:Sir.x0 ~horizon:60. ~dt:0.02 in
      let hlo = Hull.lower_at h 60. and hhi = Hull.upper_at h 60. in
      let eqs = Uncertain.equilibria ~grid:11 di ~x0:Sir.x0 in
      let exmin = List.fold_left (fun a e -> Float.min a e.(0)) 1. eqs in
      let exmax = List.fold_left (fun a e -> Float.max a e.(0)) 0. eqs in
      Printf.printf "uncertain curve: xS in [%.3f, %.3f]\n" exmin exmax;
      Printf.printf "imprecise region: xS in [%.3f, %.3f], xI in [%.3f, %.3f], area %.4f\n"
        bxmin bxmax bymin bymax (Birkhoff.area b);
      Printf.printf "hull rectangle: xS in [%.3f, %.3f], xI in [%.3f, %.3f]\n"
        hlo.(0) hhi.(0) hlo.(1) hhi.(1);
      let hull_area = (hhi.(0) -. hlo.(0)) *. (hhi.(1) -. hlo.(1)) in
      Common.claim
        (Printf.sprintf "hull rectangle contains imprecise region (tm=%g)" theta_max)
        (hlo.(0) <= bxmin +. 5e-3 && hhi.(0) >= bxmax -. 5e-3
        && hlo.(1) <= bymin +. 5e-3 && hhi.(1) >= bymax -. 5e-3)
        (Printf.sprintf "areas %.4f vs %.4f" hull_area (Birkhoff.area b)))
    [ 2.; 3.; 4.; 5. ];
  (* degradation summary *)
  let hull_slack theta_max =
    let p = { p0 with Sir.theta_max } in
    let di = Sir.di p in
    let b = Birkhoff.compute di ~x_start:Sir.x0 in
    let h = Hull.bounds ~clip di ~x0:Sir.x0 ~horizon:60. ~dt:0.02 in
    let hlo = Hull.lower_at h 60. and hhi = Hull.upper_at h 60. in
    let hull_area = (hhi.(0) -. hlo.(0)) *. (hhi.(1) -. hlo.(1)) in
    hull_area /. Float.max 1e-9 (Birkhoff.area b)
  in
  let s2 = hull_slack 2. and s5 = hull_slack 5. in
  Common.claim "hull/Birkhoff area ratio degrades sharply from 2 to 5"
    (s5 > 2. *. s2)
    (Printf.sprintf "ratio %.1f at tm=2 vs %.1f at tm=5" s2 s5)
