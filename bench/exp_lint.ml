(* LINT: cost and yield of the static-analysis tiers.

   Both tiers run before any solver does, so their wall time is pure
   pre-flight overhead; this experiment prices it per bundled model —
   the model tier alone (L-codes: rates, structure, conservation,
   Lipschitz) against both tiers (adding the tape-level abstract
   interpretation: float-safety, rounding-error bounds, θ-sign facts
   from the Jacobian tapes) — and records what the tape tier certifies:
   float-safety and the per-model a-priori rounding-error bound.

   Results go to BENCH_lint.json; the claims are that every bundled
   model is certified float-safe with zero Error- or Warning-level
   findings (the @tape-lint gate) and that vertex optimality of the
   Hamiltonian arg max is proven, not guessed, for every model the
   solvers run with vertex enumeration. *)
open Umf

(* the analyses are milliseconds-fast; average a few repetitions so the
   figure is not one allocation hiccup *)
let reps = 10

let time_ms f =
  ignore (f ());
  let (), wall = Common.time_it (fun () -> for _ = 1 to reps do ignore (f ()) done) in
  wall /. float_of_int reps *. 1e3

let run () =
  Common.banner "LINT: static-analysis tiers over the bundled models";
  Common.header
    [ "model"; "model_ms"; "both_ms"; "e/w/i"; "safe"; "max_err"; "vertex" ];
  let rows, all_clean, all_vertex =
    List.fold_left
      (fun (rows, clean, vertex) (name, m) ->
        let model_ms = time_ms (fun () -> Lint.analyze m) in
        let both_ms = time_ms (fun () -> Lint.analyze ~tape:true m) in
        let r = Lint.analyze ~tape:true m in
        let errs = List.length (Lint.errors r)
        and warns = List.length (Lint.warnings r) in
        let infos = List.length r.Lint.findings - errs - warns in
        let safe, max_err =
          match r.Lint.tape with
          | Some t -> (t.Tape_check.float_safe, t.Tape_check.max_abs_err)
          | None -> (false, infinity)
        in
        Common.row "%-12s %8.3f %8.3f %2d/%2d/%2d %5b %9.2e %6b\n" name
          model_ms both_ms errs warns infos safe max_err
          r.Lint.vertex_certified;
        let j =
          Obs.Json.Obj
            [
              ("model_tier_ms", Obs.Json.Num model_ms);
              ("both_tiers_ms", Obs.Json.Num both_ms);
              ("errors", Obs.Json.Num (float_of_int errs));
              ("warnings", Obs.Json.Num (float_of_int warns));
              ("infos", Obs.Json.Num (float_of_int infos));
              ("float_safe", Obs.Json.Bool safe);
              ("max_abs_err", Obs.Json.Num max_err);
              ("vertex_certified", Obs.Json.Bool r.Lint.vertex_certified);
            ]
        in
        ( (name, j) :: rows,
          clean && errs = 0 && warns = 0 && safe,
          vertex && r.Lint.vertex_certified ))
      ([], true, true) (Registry.all ())
  in
  let rows = List.rev rows in
  Common.claim
    "every bundled model float-safe, zero errors/warnings at both tiers"
    all_clean
    (Printf.sprintf "%d models" (List.length rows));
  Common.claim "vertex optimality proven for every bundled model" all_vertex
    "Lint.vertex_certified";
  let oc = open_out "BENCH_lint.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("reps", Obs.Json.Num (float_of_int reps));
            ("models", Obs.Json.Obj rows);
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_lint.json"
