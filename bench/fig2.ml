(* Figure 2: extremal trajectories attaining the maximum / minimum
   number of infected nodes at T = 3, and their bang-bang switching
   times.  Paper: max switches theta_min -> theta_max near t = 2.25;
   min switches at ~0.7 and ~2.2. *)
open Umf

let print_traj label (r : Pontryagin.result) =
  Common.banner label;
  Common.header [ "t"; "xS"; "xI"; "theta" ];
  Array.iteri
    (fun i t ->
      if i mod 15 = 0 || i = Array.length r.Pontryagin.times - 1 then begin
        let th =
          if i < Array.length r.Pontryagin.control then
            r.Pontryagin.control.(i).(0)
          else r.Pontryagin.control.(i - 1).(0)
        in
        Printf.printf "%.3f\t%.4f\t%.4f\t%.2f\n" t r.Pontryagin.x.(i).(0)
          r.Pontryagin.x.(i).(1) th
      end)
    r.Pontryagin.times

let run () =
  let p = Sir.default_params in
  let di = Sir.di p in
  let rmax = Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Max (`Coord 1) in
  let rmin = Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Min (`Coord 1) in
  print_traj "FIG2a: trajectory maximising x_I(3)" rmax;
  print_traj "FIG2b: trajectory minimising x_I(3)" rmin;
  let sw_max = Pontryagin.switch_times rmax ~coord:0 in
  let sw_min = Pontryagin.switch_times rmin ~coord:0 in
  let show l = String.concat ", " (List.map (Printf.sprintf "%.3f") l) in
  Printf.printf "\nmax x_I(3) = %.4f, switches at [%s]\n" rmax.Pontryagin.value (show sw_max);
  Printf.printf "min x_I(3) = %.4f, switches at [%s]\n" rmin.Pontryagin.value (show sw_min);
  Common.claim "max control: single switch near 2.25 (paper: 2.25)"
    (match sw_max with [ s ] -> s > 2.0 && s < 2.5 | _ -> false)
    (show sw_max);
  Common.claim "min control: switches near 0.7 and 2.2 (paper: 0.7, 2.2)"
    (match sw_min with
    | [ s1; s2 ] -> s1 > 0.4 && s1 < 1.0 && s2 > 1.9 && s2 < 2.4
    | _ -> false)
    (show sw_min);
  Common.claim "both sweeps converged"
    (rmax.Pontryagin.converged && rmin.Pontryagin.converged)
    (Printf.sprintf "iters %d / %d" rmax.Pontryagin.iterations rmin.Pontryagin.iterations)
