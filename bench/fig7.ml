(* Figure 7: GPS model — maximal/minimal queue lengths over time for
   the uncertain and imprecise scenarios, Poisson vs MAP arrivals.
   Paper: with Poisson arrivals the two coincide; with MAP arrivals the
   imprecise envelope is significantly larger. *)
open Umf

let scenario name di x0 coords =
  Common.banner name;
  let times = Vec.linspace 0.25 5. 20 in
  let unc_lo, unc_hi = Uncertain.transient_envelope ~grid:7 di ~x0 ~times in
  let results =
    List.mapi
      (fun class_idx coord ->
        let imp = Pontryagin.bound_series ~steps:300 di ~x0 ~coord ~times in
        (class_idx + 1, coord, imp))
      coords
  in
  Common.header
    ([ "t" ]
    @ List.concat_map
        (fun (qi, _, _) ->
          let q = Printf.sprintf "Q%d" qi in
          [ q ^ "_lo_unc"; q ^ "_hi_unc"; q ^ "_lo_impr"; q ^ "_hi_impr" ])
        results);
  Array.iteri
    (fun i t ->
      let cells =
        List.concat_map
          (fun (_, c, imp) ->
            let ilo, ihi = imp.(i) in
            [ unc_lo.(i).(c); unc_hi.(i).(c); ilo; ihi ])
          results
      in
      print_endline
        (String.concat "\t" (List.map (Printf.sprintf "%.4f") (t :: cells))))
    times;
  (* return the worst-case (over time) ratio imprecise-hi / uncertain-hi
     per job class *)
  List.map
    (fun (qi, c, imp) ->
      let ratio = ref 1. in
      Array.iteri
        (fun i _ ->
          let _, ihi = imp.(i) in
          let uhi = unc_hi.(i).(c) in
          if uhi > 1e-4 then ratio := Float.max !ratio (ihi /. uhi))
        times;
      (qi, !ratio))
    results

let run () =
  let p = Gps.default_params in
  let ratios_poisson =
    scenario "FIG7a: GPS with Poisson arrivals" (Gps.poisson_di p) Gps.x0_poisson
      [ 0; 1 ]
  in
  let ratios_map =
    scenario "FIG7b: GPS with MAP arrivals" (Gps.map_di p) Gps.x0_map [ 0; 2 ]
  in
  print_newline ();
  List.iter
    (fun (qi, r) ->
      Common.claim
        (Printf.sprintf "Poisson: imprecise = uncertain for Q%d" qi)
        (r < 1.02)
        (Printf.sprintf "worst ratio %.3f" r))
    ratios_poisson;
  (* the delay effect hits the fast class hardest: Q1's imprecise
     envelope more than doubles, Q2's gains are modest but strict *)
  List.iter
    (fun (qi, r) ->
      let threshold = if qi = 1 then 1.5 else 1.02 in
      Common.claim
        (Printf.sprintf "MAP: imprecise > uncertain for Q%d (x%.2f needed)" qi
           threshold)
        (r > threshold)
        (Printf.sprintf "worst ratio %.3f" r))
    ratios_map
