(* Sec. VI-C: robust tuning of the GPS weights.  Minimise, over phi1
   (phi2 = 1), the worst-case total queue length
   Qbar = max_theta (Q1 + Q2)(T).  Paper: Qbar is convex-shaped in phi1
   with the optimum well above 1 (they report phi1 = 9 phi2). *)
open Umf

let qbar p phi1 =
  let di = Gps.map_di (Gps.with_phi1 p phi1) in
  (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_map ~horizon:10. ~sense:`Max
     (`Linear [| 1.; 0.; 1.; 0. |]))
    .Pontryagin.value

let run () =
  Common.banner "TUNE: robust GPS weight tuning (Sec. VI-C)";
  let p = Gps.default_params in
  let phis = [ 0.5; 1.; 2.; 3.; 5.; 7.; 9.; 12.; 16.; 25. ] in
  Common.header [ "phi1"; "max_total_queue" ];
  let values = List.map (fun f -> (f, qbar p f)) phis in
  List.iter (fun (f, v) -> Printf.printf "%.1f\t%.4f\n" f v) values;
  let best_phi, best_v =
    List.fold_left
      (fun (bf, bv) (f, v) -> if v < bv then (f, v) else (bf, bv))
      (0., infinity) values
  in
  let base = List.assoc 1. values in
  Printf.printf "\nbest phi1 on grid: %.1f (Qbar %.4f vs %.4f at phi1=1)\n"
    best_phi best_v base;
  Common.claim "optimal weight prioritises the fast class (phi1 >> 1)"
    (best_phi >= 3.)
    (Printf.sprintf "argmin phi1 = %.1f" best_phi);
  Common.claim "tuning reduces worst-case total queue by >= 15%"
    (best_v < 0.85 *. base)
    (Printf.sprintf "%.4f -> %.4f (-%.0f%%)" base best_v
       (100. *. (1. -. (best_v /. base))))
