(* Serve: daemon latency — the compiled-plan/result cache and request
   batching.

   Claims backed here:
   - a warm (cache-hit) request answers at least 5x faster than the
     cold run that seeded it (in practice orders of magnitude: the hit
     re-emits the stored payload bytes without touching a solver);
   - the warm payload ("result" and "cert" members) is bitwise
     identical to the cold one;
   - a pipelined batch on a small shared pool schedules with bounded
     queue wait (per-response queue_wait_ms percentiles reported).

   Wall times are recorded together with the core count, so the JSON
   stays honest on a 1-core CI box.  Results go to BENCH_serve.json. *)
open Umf
module Json = Obs.Json

let cores = Domain.recommended_domain_count ()

(* six distinct analysis requests: different ops, coords, horizons and
   tolerances, so each is a distinct cache entry *)
let requests =
  [
    "{\"id\":1,\"op\":\"bounds\",\"model\":\"sir\",\"coord\":0,\
     \"horizon\":2,\"steps\":120}";
    "{\"id\":2,\"op\":\"bounds\",\"model\":\"sir\",\"coord\":1,\
     \"horizon\":2,\"steps\":120}";
    "{\"id\":3,\"op\":\"bounds\",\"model\":\"sir\",\"coord\":1,\
     \"horizon\":3,\"steps\":120,\"tol\":1e-5}";
    "{\"id\":4,\"op\":\"bounds\",\"model\":\"sir\",\"coord\":1,\
     \"horizon\":2,\"steps\":120,\"scenario\":{\"uncertain\":3}}";
    "{\"id\":5,\"op\":\"hull\",\"model\":\"sir\",\"horizon\":2,\
     \"steps\":120}";
    "{\"id\":6,\"op\":\"hull\",\"model\":\"sir\",\"horizon\":3,\
     \"steps\":120}";
  ]

let parse line =
  match Json.of_string line with
  | Json.Obj _ as j -> j
  | _ -> failwith ("serve bench: malformed response " ^ line)

let num name j =
  match Json.member name j with
  | Some (Json.Num x) -> x
  | _ -> failwith ("serve bench: missing number " ^ name)

let booly name j =
  match Json.member name j with Some (Json.Bool b) -> b | _ -> false

(* the payload a cache hit must reproduce bitwise: the Json printer
   round-trips floats, so re-rendered member equality is byte
   equality of the original payload *)
let payload j =
  let m name =
    match Json.member name j with
    | Some v -> Json.to_string v
    | None -> failwith ("serve bench: missing " ^ name)
  in
  (m "result", m "cert")

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  a.(Int.min (n - 1) (int_of_float (Float.of_int n *. p)))

(* one request per batch: end-to-end latency of a singleton round trip *)
let latency_pass t =
  List.map
    (fun r ->
      let resp, wall = Common.time_it (fun () -> Serve.process t [ r ]) in
      let j = parse (List.hd resp) in
      if not (booly "ok" j) then
        failwith ("serve bench: request failed: " ^ List.hd resp);
      (j, wall *. 1e3))
    requests

let run () =
  Common.banner "Serve: cold vs warm latency, cache identity, queue wait";
  let t = Serve.create (Serve.config ~domains:2 ()) in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
  let cold = latency_pass t in
  let warm = latency_pass t in
  let cold_ms = List.map snd cold and warm_ms = List.map snd warm in
  let med_cold = median cold_ms and med_warm = median warm_ms in
  let speedup = med_cold /. Float.max med_warm 1e-9 in
  let identical =
    List.for_all2
      (fun (c, _) (w, _) -> payload c = payload w && booly "cached" w)
      cold warm
  in
  (* pipelined batch with the cache off: every request occupies a
     worker, so queue_wait_ms shows real scheduling pressure *)
  let uncached =
    List.concat_map
      (fun r ->
        let r' =
          Printf.sprintf "%s,\"cache\":false}"
            (String.sub r 0 (String.length r - 1))
        in
        [ r'; r' ])
      requests
  in
  let batch, batch_wall = Common.time_it (fun () -> Serve.process t uncached) in
  let waits = List.map (fun l -> num "queue_wait_ms" (parse l)) batch in
  let hits, misses =
    match Json.member "counters" (Serve.metrics_json t) with
    | Some (Json.Obj kvs) ->
        let c name =
          match List.assoc_opt name kvs with
          | Some (Json.Num x) -> x
          | _ -> 0.
        in
        (c "serve.cache.hit", c "serve.cache.miss")
    | _ -> (0., 0.)
  in
  let hit_rate = hits /. Float.max 1. (hits +. misses) in
  Common.header [ "request"; "cold_ms"; "warm_ms" ];
  List.iteri
    (fun i (c, w) -> Common.row "%d\t%.3f\t%.3f\n" (i + 1) c w)
    (List.combine cold_ms warm_ms);
  Common.row "median cold %.3f ms, warm %.3f ms -> %.0fx\n" med_cold med_warm
    speedup;
  Common.row "batch of %d uncached on 2 domains: %.1f ms wall, queue wait \
              p50 %.3f / p90 %.3f / max %.3f ms\n"
    (List.length uncached) (batch_wall *. 1e3) (percentile 0.5 waits)
    (percentile 0.9 waits)
    (List.fold_left Float.max 0. waits);
  Common.claim "warm (cache hit) at least 5x faster than cold"
    (speedup >= 5.)
    (Printf.sprintf "%.0fx (%.3f ms -> %.3f ms)" speedup med_cold med_warm);
  Common.claim "warm payload bitwise-identical to cold" identical
    (Printf.sprintf "%d requests compared" (List.length requests));
  let oc = open_out "BENCH_serve.json" in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("cores", Json.Num (float_of_int cores));
            ("domains", Json.Num 2.);
            ("requests", Json.Num (float_of_int (List.length requests)));
            ("cold_ms", Json.Arr (List.map (fun x -> Json.Num x) cold_ms));
            ("warm_ms", Json.Arr (List.map (fun x -> Json.Num x) warm_ms));
            ("median_cold_ms", Json.Num med_cold);
            ("median_warm_ms", Json.Num med_warm);
            ("warm_speedup", Json.Num speedup);
            ("warm_bitwise_identical", Json.Bool identical);
            ("cache_hits", Json.Num hits);
            ("cache_misses", Json.Num misses);
            ("cache_hit_rate", Json.Num hit_rate);
            ( "queue_wait_ms",
              Json.Obj
                [
                  ("p50", Json.Num (percentile 0.5 waits));
                  ("p90", Json.Num (percentile 0.9 waits));
                  ("max", Json.Num (List.fold_left Float.max 0. waits));
                ] );
            ("batch_size", Json.Num (float_of_int (List.length uncached)));
            ("batch_wall_ms", Json.Num (batch_wall *. 1e3));
          ]));
  close_out oc;
  print_endline "wrote BENCH_serve.json"
