(* Template-polyhedron refinement of the reach set (the extension
   sketched at the end of Sec. IV-C): the rectangle from coordinate
   bounds vs k-direction support-function polyhedra vs the inner
   Monte-Carlo reach hull.  Soundness sandwich:
   inner hull <= template_16 <= template_8 <= rectangle. *)
open Umf

let run () =
  Common.banner "TEMPLATE: polyhedral reach sets of the SIR inclusion";
  let p = Sir.default_params in
  let di = Sir.di p in
  List.iter
    (fun horizon ->
      let area_of dirs =
        Template.area_2d
          (Template.compute ~steps:200 di ~x0:Sir.x0 ~horizon ~directions:dirs)
      in
      let rect = area_of (Template.axis_directions 2) in
      let oct = area_of (Template.directions_2d 8) in
      let hexdec = area_of (Template.directions_2d 16) in
      let inner =
        Geometry.polygon_area
          (Reach.hull_2d di ~x0:Sir.x0 ~horizon ~n_controls:400 (Rng.create 5))
      in
      Printf.printf
        "T=%g: rectangle %.5f  8-dir %.5f  16-dir %.5f  inner MC hull %.5f\n"
        horizon rect oct hexdec inner;
      Common.claim
        (Printf.sprintf "templates refine the rectangle (T=%g)" horizon)
        (hexdec <= oct +. 1e-9 && oct <= rect +. 1e-9 && hexdec < 0.9 *. rect)
        (Printf.sprintf "16-dir/rect = %.2f" (hexdec /. rect));
      Common.claim
        (Printf.sprintf "templates contain the inner reach hull (T=%g)" horizon)
        (inner <= hexdec +. 1e-6)
        (Printf.sprintf "inner/16-dir = %.2f" (inner /. hexdec)))
    [ 1.; 3. ]
