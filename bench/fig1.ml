(* Figure 1: upper and lower bounds on the proportion of infected nodes
   for the imprecise SIR model (Pontryagin) vs the uncertain one
   (constant-theta sweep), over t in [0, 4]. *)
open Umf

let run () =
  Common.banner
    "FIG1: SIR bounds on x_I(t), uncertain (constant theta) vs imprecise";
  let p = Sir.default_params in
  let di = Sir.di p in
  let times = Vec.linspace 0. 4. 21 in
  let unc_lo, unc_hi = Uncertain.transient_envelope ~grid:21 di ~x0:Sir.x0 ~times in
  let imp = Pontryagin.bound_series ~steps:300 di ~x0:Sir.x0 ~coord:1 ~times in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i t ->
           let ilo, ihi = imp.(i) in
           [ t; unc_lo.(i).(1); unc_hi.(i).(1); ilo; ihi ])
         times)
  in
  Common.series
    [ "t"; "xI_min_unc"; "xI_max_unc"; "xI_min_impr"; "xI_max_impr" ]
    rows;
  (* headline checks *)
  let last = List.nth rows (List.length rows - 1) in
  match last with
  | [ _; _; uhi; _; ihi ] ->
      Common.claim "uncertain envelope inside imprecise (all t)"
        (List.for_all
           (fun r ->
             match r with
             | [ _; ulo; uhi; ilo; ihi ] ->
                 ilo <= ulo +. 1e-4 && uhi <= ihi +. 1e-4
             | _ -> false)
           rows)
        "Eq. (12) inclusion";
      (* the gap widens with t (paper: "especially for large values of
         t"); the exact factor at t=4 is ~1.9 under these dynamics,
         verified optimal against a two-switch brute-force scan *)
      Common.claim "imprecise max xI(4) much larger than uncertain"
        (ihi > 1.5 *. uhi)
        (Printf.sprintf "%.3f vs %.3f (x%.1f)" ihi uhi (ihi /. uhi))
  | _ -> ()
