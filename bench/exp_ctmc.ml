(* CTMC: the sparse finite-N engine against the dense path it
   replaces, plus the multicore and adaptive-truncation tiers behind
   Ctmc.Engine.

   Claims backed here:
   - the in-place CSR uniformised step beats the dense
     [Mat.tmulv (Generator.uniformized g)] step by >= 10x at ~10^4
     lattice states (N = 140 SIR);
   - the sparse transient matches a dense uniformisation reference to
     <= 1e-10 on a small chain (the kernels are in fact bit-compatible
     summand for summand);
   - the pooled sweep is bit-identical to the sequential one at every
     domain count;
   - adaptive truncation returns a certified interval that brackets
     the exact answer computed on the full lattice.

   The scaling series runs the full SIR transient at t = 10 for each
   N and domain count and records states, nonzeros, uniformisation
   terms, escaped mass and wall time per solve.  Knobs (so a laptop, a
   CI box and a many-core server can all run the same binary):

     UMF_CTMC_SIZES    comma-separated N list (default 10,30,100,300,1000)
     UMF_CTMC_MAX_N    drop sizes above this (default 1000; raise to 3000
                       for the full paper-scale sweep, ~4.5M states)
     UMF_CTMC_DOMAINS  comma-separated domain counts (default 1,2,4)

   Speedups are only asserted when the machine actually has the cores;
   on fewer cores the measured numbers are still recorded, with the
   core count, so the JSON is honest about what it ran on.  Results go
   to BENCH_ctmc.json. *)
open Umf

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_ints name default =
  match Sys.getenv_opt name with
  | Some s ->
      let parts = String.split_on_char ',' (String.trim s) in
      let vs = List.filter_map int_of_string_opt parts in
      if vs = [] then default else vs
  | None -> default

let cores = Domain.recommended_domain_count ()

let sir_space n =
  let pop = Model.population (Sir.make Sir.default_params) in
  let sp = Ctmc_of_population.state_space pop ~n ~x0:Sir.x0 in
  (pop, sp)

let generator_at_mid ?pool ?obs pop sp =
  Ctmc_of_population.generator ?pool ?obs sp pop
    ~theta:(Optim.Box.midpoint pop.Population.theta)

(* dense uniformisation with the same rate, weights and stopping rule
   as Transient.uniformization — the reference the sparse path must
   reproduce *)
let dense_uniformization g ~p0 ~t ~epsilon =
  let lambda = Float.max 1e-9 (1.01 *. Generator.max_exit_rate g) in
  let p = Generator.uniformized ~rate:lambda g in
  let lt = lambda *. t in
  let result = Vec.zeros (Vec.dim p0) in
  let v = ref (Vec.copy p0) in
  let log_weight = ref (-.lt) in
  let mass = ref 0. in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    let wk = Float.exp !log_weight in
    if !mass +. wk >= 1. -. epsilon || !k > 2_000_000 then begin
      Vec.axpy_in_place wk !v result;
      continue := false
    end
    else begin
      if wk > 0. then Vec.axpy_in_place wk !v result;
      mass := !mass +. wk;
      v := Mat.tmulv p !v;
      incr k;
      log_weight := !log_weight +. Float.log (lt /. float_of_int !k)
    end
  done;
  result

let bits = Int64.bits_of_float

let bitwise_equal a b =
  let ok = ref (Vec.dim a = Vec.dim b) in
  Array.iteri (fun i x -> if bits x <> bits b.(i) then ok := false) a;
  !ok

(* ---- dense vs sparse step at ~10^4 states ---- *)
let step_timing () =
  let n = 140 in
  let pop, sp = sir_space n in
  let states = Ctmc_of_population.n_states sp in
  let g = generator_at_mid pop sp in
  let v = Vec.create states (1. /. float_of_int states) in
  (* dense: the matrix alone is states^2 floats (~800 MB here) *)
  let p = Generator.uniformized g in
  let sink = ref 0. in
  let time_step reps f =
    ignore (f ());
    let (), wall = Common.time_it (fun () ->
        for _ = 1 to reps do
          sink := !sink +. (f ()).(0)
        done)
    in
    wall /. float_of_int reps
  in
  let dense_s = time_step 3 (fun () -> Mat.tmulv p v) in
  let op = Ctmc.Sparse.forward g in
  let into = Vec.zeros states in
  let sparse_s =
    time_step 200 (fun () ->
        ignore (Ctmc.Sparse.step_into op v ~into : float);
        into)
  in
  let speedup = dense_s /. sparse_s in
  Common.row
    "states=%d nnz=%d blocks=%d dense=%.3es sparse=%.3es speedup=%.0fx\n"
    states (Ctmc.Sparse.nnz op) (Ctmc.Sparse.n_blocks op) dense_s sparse_s
    speedup;
  Common.claim "sparse step >= 10x dense at ~10^4 states" (speedup >= 10.)
    (Printf.sprintf "%.0fx at %d states" speedup states);
  ignore !sink;
  (states, Ctmc.Sparse.nnz op, dense_s, sparse_s, speedup)

(* ---- small-chain agreement with the dense reference ---- *)
let accuracy () =
  let pop, sp = sir_space 30 in
  let g = generator_at_mid pop sp in
  let p0 = Ctmc_of_population.point_mass sp in
  let epsilon = 1e-12 in
  let sparse = Ctmc.Transient.uniformization ~epsilon g ~p0 ~t:5. in
  let dense = dense_uniformization g ~p0 ~t:5. ~epsilon in
  let dist = Vec.dist_inf sparse dense in
  Common.claim "sparse transient matches dense reference <= 1e-10"
    (dist <= 1e-10)
    (Printf.sprintf "inf-norm gap %.3e at %d states" dist (Vec.dim p0));
  dist

(* ---- N x domains scaling of the full transient at t = 10 ---- *)
let scaling () =
  let max_n = env_int "UMF_CTMC_MAX_N" 1000 in
  let sizes =
    List.filter
      (fun n -> n <= max_n)
      (env_ints "UMF_CTMC_SIZES" [ 10; 30; 100; 300; 1000 ])
  in
  let domain_counts = env_ints "UMF_CTMC_DOMAINS" [ 1; 2; 4 ] in
  Common.header
    [ "N"; "states"; "nnz"; "domains"; "terms"; "wall_s"; "state_upd_per_s" ];
  let rows =
    List.concat_map
      (fun n ->
        let pop, sp = sir_space n in
        let g = generator_at_mid pop sp in
        let p0 = Ctmc_of_population.point_mass sp in
        let states = Ctmc_of_population.n_states sp in
        let reference = ref None in
        List.map
          (fun domains ->
            let agg = Obs.Agg.create () in
            let obs = Obs.make ~agg () in
            let run pool =
              Common.time_it (fun () ->
                  Ctmc.Transient.uniformization_certified ?pool ~obs g ~p0
                    ~t:10.)
            in
            let (p, (c : Ctmc.Transient.certificate)), wall =
              if domains <= 1 then run None
              else
                Runtime.Pool.with_pool ~domains (fun pool -> run (Some pool))
            in
            (match !reference with
            | None -> reference := Some p
            | Some r ->
                if not (bitwise_equal r p) then begin
                  Printf.eprintf
                    "FATAL: %d-domain sweep differs from sequential at n=%d\n"
                    domains n;
                  exit 1
                end);
            let terms = Obs.Agg.counter agg "ctmc.terms" in
            let rate = float_of_int states *. terms /. wall in
            Common.row "%d\t%d\t%d\t%d\t%.0f\t%.3f\t%.3e\n" n states
              (Generator.nnz g) domains terms wall rate;
            ( n,
              states,
              Generator.nnz g,
              domains,
              terms,
              wall,
              rate,
              c.escaped +. c.tail ))
          domain_counts)
      sizes
  in
  Common.claim "pooled sweep bit-identical to sequential" true
    (Printf.sprintf "%d sizes x {%s} domains" (List.length sizes)
       (String.concat "," (List.map string_of_int domain_counts)));
  (* speedup is only a fair claim when the cores exist; either way the
     JSON records what this machine measured *)
  let wall_of n d =
    List.find_map
      (fun (n', _, _, d', _, w, _, _) ->
        if n' = n && d' = d then Some w else None)
      rows
  in
  let top_n = List.fold_left Stdlib.max 0 sizes in
  (match (wall_of top_n 1, wall_of top_n 4) with
  | Some w1, Some w4 when cores >= 4 ->
      Common.claim "parallel sweep >= 2.5x at 4 domains" (w1 /. w4 >= 2.5)
        (Printf.sprintf "%.2fx at n=%d on %d cores" (w1 /. w4) top_n cores)
  | Some w1, Some w4 ->
      Common.row
        "note: %d core(s) available — 4-domain speedup %.2fx at n=%d is \
         core-bound, not asserted\n"
        cores (w1 /. w4) top_n
  | _ -> ());
  rows

(* ---- adaptive truncation: certified interval vs exact answer ---- *)
let adaptive () =
  let n = 300 in
  let budget = 20_000 in
  let model = Sir.make Sir.default_params in
  let times = [| 0.; 2.; 5.; 10. |] in
  let run truncation =
    Ctmc.Engine.transient
      (Ctmc.Engine.spec ~horizon:10. ~times ~truncation ~n model)
      ~rewards:[| Ctmc.Engine.Coord 1 |]
  in
  let exact = run (Ctmc.Engine.Exact { max_states = 2_000_000 }) in
  let cut, wall =
    Common.time_it (fun () ->
        run (Ctmc.Engine.Adaptive { max_states = budget }))
  in
  Common.header [ "t"; "exact"; "lower"; "upper"; "escaped" ];
  let ok = ref true in
  let rows =
    Array.to_list
      (Array.mapi
         (fun j t ->
           let e = exact.Ctmc.Engine.value.(j).(0) in
           let lo = cut.Ctmc.Engine.lower.(j).(0)
           and hi = cut.Ctmc.Engine.upper.(j).(0) in
           let c = cut.certificates.(j) in
           let lost = c.Ctmc.Engine.escaped +. c.tail in
           if not (lo <= e +. 1e-9 && e <= hi +. 1e-9) then ok := false;
           Common.row "%.1f\t%.5f\t%.5f\t%.5f\t%.3e\n" t e lo hi lost;
           (t, e, lo, hi, lost))
         times)
  in
  Common.claim "adaptive interval brackets the exact answer" !ok
    (Printf.sprintf "%d of %d states retained, %.2fs" cut.states exact.states
       wall);
  (exact.states, cut.states, wall, rows)

let run () =
  Common.banner "CTMC: sparse finite-N engine";
  let states, nnz, dense_s, sparse_s, speedup = step_timing () in
  let dist = accuracy () in
  let rows = scaling () in
  let exact_states, retained_states, adaptive_wall, adaptive_rows =
    adaptive ()
  in
  let oc = open_out "BENCH_ctmc.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("cores", Obs.Json.Num (float_of_int cores));
            ( "dense_vs_sparse",
              Obs.Json.Obj
                [
                  ("states", Obs.Json.Num (float_of_int states));
                  ("nnz", Obs.Json.Num (float_of_int nnz));
                  ("dense_s_per_step", Obs.Json.Num dense_s);
                  ("sparse_s_per_step", Obs.Json.Num sparse_s);
                  ("speedup", Obs.Json.Num speedup);
                ] );
            ("dense_agreement_inf_norm", Obs.Json.Num dist);
            ("pool_bit_identical", Obs.Json.Bool true);
            ( "scaling_t10",
              Obs.Json.Arr
                (List.map
                   (fun (n, states, nnz, domains, terms, wall, rate, escaped)
                      ->
                     Obs.Json.Obj
                       [
                         ("n", Obs.Json.Num (float_of_int n));
                         ("states", Obs.Json.Num (float_of_int states));
                         ("nnz", Obs.Json.Num (float_of_int nnz));
                         ("domains", Obs.Json.Num (float_of_int domains));
                         ("terms", Obs.Json.Num terms);
                         ("wall_s", Obs.Json.Num wall);
                         ("state_updates_per_s", Obs.Json.Num rate);
                         ("escaped_mass", Obs.Json.Num escaped);
                       ])
                   rows) );
            ( "adaptive_truncation",
              Obs.Json.Obj
                [
                  ("n", Obs.Json.Num 300.);
                  ("exact_states", Obs.Json.Num (float_of_int exact_states));
                  ( "retained_states",
                    Obs.Json.Num (float_of_int retained_states) );
                  ("wall_s", Obs.Json.Num adaptive_wall);
                  ( "series",
                    Obs.Json.Arr
                      (List.map
                         (fun (t, e, lo, hi, lost) ->
                           Obs.Json.Obj
                             [
                               ("t", Obs.Json.Num t);
                               ("exact", Obs.Json.Num e);
                               ("lower", Obs.Json.Num lo);
                               ("upper", Obs.Json.Num hi);
                               ("escaped_mass", Obs.Json.Num lost);
                             ])
                         adaptive_rows) );
                ] );
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_ctmc.json"
