(* CTMC: the sparse finite-N engine against the dense path it
   replaces.

   Three claims back the engine:
   - the in-place CSR uniformised step beats the dense
     [Mat.tmulv (Generator.uniformized g)] step by >= 10x at ~10^4
     lattice states (N = 140 SIR);
   - the sparse transient matches a dense uniformisation reference to
     <= 1e-10 on a small chain (the kernels are in fact bit-compatible
     summand for summand);
   - the pooled step is bit-identical to the sequential one.

   The scaling series then runs the full SIR transient at t = 10 for
   N up to 1000 (~5*10^5 states, where the dense matrix would need
   ~2 TB) and records states, nonzeros, uniformisation terms and wall
   time per solve.  Results go to BENCH_ctmc.json. *)
open Umf

let sir_space n =
  let pop = Model.population (Sir.make Sir.default_params) in
  let sp = Ctmc_of_population.state_space pop ~n ~x0:Sir.x0 in
  (pop, sp)

let generator_at_mid ?pool ?obs pop sp =
  Ctmc_of_population.generator ?pool ?obs sp pop
    ~theta:(Optim.Box.midpoint pop.Population.theta)

(* dense uniformisation with the same rate, weights and stopping rule
   as Transient.uniformization — the reference the sparse path must
   reproduce *)
let dense_uniformization g ~p0 ~t ~epsilon =
  let lambda = Float.max 1e-9 (1.01 *. Generator.max_exit_rate g) in
  let p = Generator.uniformized ~rate:lambda g in
  let lt = lambda *. t in
  let result = Vec.zeros (Vec.dim p0) in
  let v = ref (Vec.copy p0) in
  let log_weight = ref (-.lt) in
  let mass = ref 0. in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    let wk = Float.exp !log_weight in
    if !mass +. wk >= 1. -. epsilon || !k > 2_000_000 then begin
      Vec.axpy_in_place wk !v result;
      continue := false
    end
    else begin
      if wk > 0. then Vec.axpy_in_place wk !v result;
      mass := !mass +. wk;
      v := Mat.tmulv p !v;
      incr k;
      log_weight := !log_weight +. Float.log (lt /. float_of_int !k)
    end
  done;
  result

let bits = Int64.bits_of_float

let bitwise_equal a b =
  let ok = ref (Vec.dim a = Vec.dim b) in
  Array.iteri (fun i x -> if bits x <> bits b.(i) then ok := false) a;
  !ok

(* ---- dense vs sparse step at ~10^4 states ---- *)
let step_timing () =
  let n = 140 in
  let pop, sp = sir_space n in
  let states = Ctmc_of_population.n_states sp in
  let g = generator_at_mid pop sp in
  let v = Vec.create states (1. /. float_of_int states) in
  (* dense: the matrix alone is states^2 floats (~800 MB here) *)
  let p = Generator.uniformized g in
  let sink = ref 0. in
  let time_step reps f =
    ignore (f ());
    let (), wall = Common.time_it (fun () ->
        for _ = 1 to reps do
          sink := !sink +. (f ()).(0)
        done)
    in
    wall /. float_of_int reps
  in
  let dense_s = time_step 3 (fun () -> Mat.tmulv p v) in
  let op = Ctmc_sparse.forward g in
  let into = Vec.zeros states in
  let sparse_s =
    time_step 200 (fun () ->
        Ctmc_sparse.step_into op v ~into;
        into)
  in
  let speedup = dense_s /. sparse_s in
  Common.row "states=%d nnz=%d dense=%.3es sparse=%.3es speedup=%.0fx\n"
    states (Ctmc_sparse.nnz op) dense_s sparse_s speedup;
  Common.claim "sparse step >= 10x dense at ~10^4 states" (speedup >= 10.)
    (Printf.sprintf "%.0fx at %d states" speedup states);
  ignore !sink;
  (states, Ctmc_sparse.nnz op, dense_s, sparse_s, speedup)

(* ---- small-chain agreement with the dense reference ---- *)
let accuracy () =
  let pop, sp = sir_space 30 in
  let g = generator_at_mid pop sp in
  let p0 = Ctmc_of_population.point_mass sp in
  let epsilon = 1e-12 in
  let sparse = Transient.uniformization ~epsilon g ~p0 ~t:5. in
  let dense = dense_uniformization g ~p0 ~t:5. ~epsilon in
  let dist = Vec.dist_inf sparse dense in
  Common.claim "sparse transient matches dense reference <= 1e-10"
    (dist <= 1e-10)
    (Printf.sprintf "inf-norm gap %.3e at %d states" dist (Vec.dim p0));
  dist

(* ---- pool determinism ---- *)
let pool_identity () =
  let pop, sp = sir_space 140 in
  let g = generator_at_mid pop sp in
  let states = Ctmc_of_population.n_states sp in
  let op = Ctmc_sparse.forward g in
  let v = Vec.create states (1. /. float_of_int states) in
  let seq = Vec.zeros states and par = Vec.zeros states in
  Ctmc_sparse.step_into op v ~into:seq;
  Runtime.Pool.with_pool ~domains:2 (fun pool ->
      Ctmc_sparse.step_into ~pool op v ~into:par);
  let ok = bitwise_equal seq par in
  Common.claim "pooled step bit-identical to sequential" ok
    (Printf.sprintf "%d states, 2 domains" states);
  ok

(* ---- N-scaling of the full transient at t = 10 ---- *)
let scaling () =
  let sizes = [ 10; 30; 100; 300; 1000 ] in
  Common.header [ "N"; "states"; "nnz"; "terms"; "wall_s"; "state_upd_per_s" ];
  List.map
    (fun n ->
      let pop, sp = sir_space n in
      let agg = Obs.Agg.create () in
      let obs = Obs.make ~agg () in
      let g = generator_at_mid ?pool:!Common.pool ~obs pop sp in
      let p0 = Ctmc_of_population.point_mass sp in
      let _, wall =
        Common.time_it (fun () ->
            Transient.uniformization ?pool:!Common.pool ~obs g ~p0 ~t:10.)
      in
      let states = Ctmc_of_population.n_states sp in
      let terms = Obs.Agg.counter agg "ctmc.terms" in
      let rate = float_of_int states *. terms /. wall in
      Common.row "%d\t%d\t%d\t%.0f\t%.3f\t%.3e\n" n states (Generator.nnz g)
        terms wall rate;
      (n, states, Generator.nnz g, terms, wall, rate))
    sizes

let run () =
  Common.banner "CTMC: sparse finite-N engine";
  let states, nnz, dense_s, sparse_s, speedup = step_timing () in
  let dist = accuracy () in
  let pool_ok = pool_identity () in
  let rows = scaling () in
  let oc = open_out "BENCH_ctmc.json" in
  output_string oc
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ( "dense_vs_sparse",
              Obs.Json.Obj
                [
                  ("states", Obs.Json.Num (float_of_int states));
                  ("nnz", Obs.Json.Num (float_of_int nnz));
                  ("dense_s_per_step", Obs.Json.Num dense_s);
                  ("sparse_s_per_step", Obs.Json.Num sparse_s);
                  ("speedup", Obs.Json.Num speedup);
                ] );
            ("dense_agreement_inf_norm", Obs.Json.Num dist);
            ("pool_bit_identical", Obs.Json.Bool pool_ok);
            ( "scaling_t10",
              Obs.Json.Arr
                (List.map
                   (fun (n, states, nnz, terms, wall, rate) ->
                     Obs.Json.Obj
                       [
                         ("n", Obs.Json.Num (float_of_int n));
                         ("states", Obs.Json.Num (float_of_int states));
                         ("nnz", Obs.Json.Num (float_of_int nnz));
                         ("terms", Obs.Json.Num terms);
                         ("wall_s", Obs.Json.Num wall);
                         ("state_updates_per_s", Obs.Json.Num rate);
                       ])
                   rows) );
          ]));
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_ctmc.json"
