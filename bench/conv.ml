(* Theorem 1 quantitatively: the sup-norm error between the size-N SIR
   process (constant theta) and its mean-field ODE limit decays like
   O(1/sqrt N). *)
open Umf

let run () =
  Common.banner "CONV: mean-field convergence rate (Theorem 1)";
  let p = Sir.default_params in
  let model = Sir.model p in
  let times = Vec.linspace 0. 5. 11 in
  Common.header [ "N"; "mean_sup_error"; "error*sqrt(N)" ];
  let errors =
    List.map
      (fun n ->
        let e =
          Convergence.error_vs_limit model ~n ~theta:[| 5. |] ~x0:Sir.x0 ~times
            ~runs:20 ~seed:123
        in
        Printf.printf "%d\t%.5f\t%.3f\n" n e (e *. sqrt (float_of_int n));
        (n, e))
      [ 100; 400; 1600; 6400 ]
  in
  match errors with
  | [ (_, e0); _; _; (_, e3) ] ->
      (* N grew by 64: a 1/sqrt(N) rate predicts a factor-8 reduction *)
      Common.claim "error decays at ~1/sqrt(N)"
        (e0 /. e3 > 4. && e0 /. e3 < 16.)
        (Printf.sprintf "reduction factor %.1f over 64x N" (e0 /. e3))
  | _ -> ()
