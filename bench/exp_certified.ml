(* Certified (interval-arithmetic) differential hull vs the sampled one
   on the symbolically-specified cholera model, plus exact-Jacobian
   Pontryagin on a 3-D system. *)
open Umf

let run () =
  Common.banner "CERT: certified hull and exact Jacobians (cholera, 3-D)";
  let p = Cholera.default_params in
  let s = Cholera.make p in
  let di = Cholera.di p in
  Common.claim "cholera drift detected affine in theta"
    (Model.affine_in_theta s) "vertex argmax exact";
  let horizon = 3. and dt = 0.01 in
  let (sampled : Hull.traj), t_sampled =
    Common.time_it (fun () ->
        Hull.bounds ~clip:Cholera.state_clip di ~x0:Cholera.x0 ~horizon ~dt)
  in
  let certified, t_cert =
    Common.time_it (fun () ->
        Certified.hull_bounds ~clip:Cholera.state_clip s ~x0:Cholera.x0 ~horizon
          ~dt)
  in
  Common.header [ "coord"; "sampled width(T)"; "certified width(T)" ];
  let ws = Hull.final_width sampled and wc = Hull.final_width certified in
  Array.iteri
    (fun i name -> Printf.printf "%s\t%.4f\t%.4f\n" name ws.(i) wc.(i))
    [| "S"; "I"; "W" |];
  Printf.printf "time: sampled %.2fs, certified %.2fs\n" t_sampled t_cert;
  Common.claim "certified hull encloses the sampled hull"
    (Array.for_all
       (fun i ->
         (Hull.lower_at certified horizon).(i)
         <= (Hull.lower_at sampled horizon).(i) +. 1e-6
         && (Hull.upper_at certified horizon).(i)
            >= (Hull.upper_at sampled horizon).(i) -. 1e-6)
       [| 0; 1; 2 |])
    "soundness by construction";
  Common.claim "certified hull not trivial"
    (wc.(1) < 0.9)
    (Printf.sprintf "I width %.3f" wc.(1));
  (* 3-D Pontryagin with exact symbolic Jacobian *)
  let r =
    Pontryagin.solve ~steps:300 di ~x0:Cholera.x0 ~horizon ~sense:`Max (`Coord 1)
  in
  let u_lo, u_hi =
    Uncertain.extremal_coord ~grid:7 di ~x0:Cholera.x0 ~coord:1 ~horizon
  in
  ignore u_lo;
  Printf.printf "\nmax infected at T=%g: imprecise %.4f vs uncertain %.4f\n"
    horizon r.Pontryagin.value u_hi;
  Common.claim "rainfall variation enlarges the cholera outbreak"
    (r.Pontryagin.value >= u_hi -. 1e-4)
    (Printf.sprintf "%.4f >= %.4f" r.Pontryagin.value u_hi)
