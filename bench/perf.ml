(* Bechamel timing of each solver on its paper workload.  One
   Test.make per experiment kernel; estimates printed as ms/run via OLS
   on the monotonic clock. *)
open Umf
open Bechamel
open Toolkit

let p = Sir.default_params

let di = Sir.di p

let model = Sir.model p

let gps = Gps.default_params

let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |]

let tests =
  [
    Test.make ~name:"fig1:pontryagin-max-xI(3)"
      (Staged.stage (fun () ->
           Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Max
             (`Coord 1)));
    Test.make ~name:"fig1:uncertain-envelope-21"
      (Staged.stage (fun () ->
           Uncertain.transient_envelope ~grid:21 di ~x0:Sir.x0
             ~times:[| 1.; 2.; 3.; 4. |]));
    Test.make ~name:"fig4:hull-T10"
      (Staged.stage (fun () ->
           Hull.bounds ~clip di ~x0:Sir.x0 ~horizon:10. ~dt:0.02));
    Test.make ~name:"fig3:birkhoff-centre"
      (Staged.stage (fun () -> Birkhoff.compute di ~x_start:Sir.x0));
    Test.make ~name:"fig6:ssa-N1000-T10"
      (Staged.stage
         (let rng = Rng.create 99 in
          fun () ->
            Ssa.final model ~n:1000 ~x0:Sir.x0 ~policy:(Sir.policy_theta1 p)
              ~tmax:10. rng));
    Test.make ~name:"fig7:pontryagin-gps-map"
      (Staged.stage (fun () ->
           Pontryagin.solve ~steps:250 (Gps.map_di gps) ~x0:Gps.x0_map
             ~horizon:2. ~sense:`Max (`Coord 0)));
    Test.make ~name:"kolm:lower-expectation-N20-T5"
      (Staged.stage
         (let m = Bikesharing.ictmc Bikesharing.default_params ~capacity:20 in
          let h = Bikesharing.occupancy_reward ~capacity:20 in
          fun () -> Imprecise_ctmc.lower_expectation m ~h ~horizon:5.));
    Test.make ~name:"substrate:rk45-sir"
      (Staged.stage (fun () ->
           Ode.integrate_adaptive
             (fun _t x -> Sir.drift p x [| 5. |])
             ~t0:0. ~y0:Sir.x0 ~t1:10.));
    Test.make ~name:"template:16-dir-sir-T2"
      (Staged.stage (fun () ->
           Template.compute ~steps:150 di ~x0:Sir.x0 ~horizon:2.
             ~directions:(Template.directions_2d 16)));
    Test.make ~name:"kolm:interval-dtmc-1000-steps"
      (Staged.stage
         (let m = Bikesharing.ictmc Bikesharing.default_params ~capacity:20 in
          let dtmc = Interval_dtmc.of_imprecise_ctmc m ~dt:0.005 in
          let h = Bikesharing.occupancy_reward ~capacity:20 in
          fun () -> Interval_dtmc.lower_expectation dtmc ~h ~steps:1000));
    Test.make ~name:"certified:interval-hull-cholera-T3"
      (Staged.stage
         (let s = Cholera.symbolic Cholera.default_params in
          fun () ->
            Certified.hull_bounds ~clip:Cholera.state_clip s ~x0:Cholera.x0
              ~horizon:3. ~dt:0.01));
  ]

let run () =
  Common.banner "PERF: solver timings (Bechamel, OLS ms/run)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"umf" ~fmt:"%s/%s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> rows := (name, est /. 1e6) :: !rows
      | Some [] | None -> ())
    results;
  Common.header [ "kernel"; "ms/run" ];
  List.iter
    (fun (name, ms) -> Printf.printf "%s\t%.3f\n" name ms)
    (List.sort compare !rows)
