(* Bechamel timing of each solver on its paper workload.  One
   Test.make per experiment kernel; estimates printed as ms/run via OLS
   on the monotonic clock. *)
open Umf
open Bechamel
open Toolkit

let p = Sir.default_params

let di = Sir.di p

let model = Sir.model p

let gps = Gps.default_params

let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |]

let tests =
  [
    Test.make ~name:"fig1:pontryagin-max-xI(3)"
      (Staged.stage (fun () ->
           Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Max
             (`Coord 1)));
    Test.make ~name:"fig1:uncertain-envelope-21"
      (Staged.stage (fun () ->
           Uncertain.transient_envelope ~grid:21 di ~x0:Sir.x0
             ~times:[| 1.; 2.; 3.; 4. |]));
    Test.make ~name:"fig4:hull-T10"
      (Staged.stage (fun () ->
           Hull.bounds ~clip di ~x0:Sir.x0 ~horizon:10. ~dt:0.02));
    Test.make ~name:"fig3:birkhoff-centre"
      (Staged.stage (fun () -> Birkhoff.compute di ~x_start:Sir.x0));
    Test.make ~name:"fig6:ssa-N1000-T10"
      (Staged.stage
         (let rng = Rng.create 99 in
          fun () ->
            Ssa.final model ~n:1000 ~x0:Sir.x0 ~policy:(Sir.policy_theta1 p)
              ~tmax:10. rng));
    Test.make ~name:"fig7:pontryagin-gps-map"
      (Staged.stage (fun () ->
           Pontryagin.solve ~steps:250 (Gps.map_di gps) ~x0:Gps.x0_map
             ~horizon:2. ~sense:`Max (`Coord 0)));
    Test.make ~name:"kolm:lower-expectation-N20-T5"
      (Staged.stage
         (let m = Bikesharing.ictmc Bikesharing.default_params ~capacity:20 in
          let h = Bikesharing.occupancy_reward ~capacity:20 in
          fun () ->
            Ctmc.Imprecise.fixed_series ~sense:`Lower m ~h ~times:[| 5. |]));
    Test.make ~name:"substrate:rk45-sir"
      (Staged.stage (fun () ->
           Ode.integrate_adaptive
             ((Sir.di p).Di.drift |> fun f -> fun _t x -> f x [| 5. |])
             ~t0:0. ~y0:Sir.x0 ~t1:10.));
    Test.make ~name:"template:16-dir-sir-T2"
      (Staged.stage (fun () ->
           Template.compute ~steps:150 di ~x0:Sir.x0 ~horizon:2.
             ~directions:(Template.directions_2d 16)));
    Test.make ~name:"kolm:interval-dtmc-1000-steps"
      (Staged.stage
         (let m = Bikesharing.ictmc Bikesharing.default_params ~capacity:20 in
          let dtmc = Interval_dtmc.of_imprecise_ctmc m ~dt:0.005 in
          let h = Bikesharing.occupancy_reward ~capacity:20 in
          fun () -> Interval_dtmc.lower_expectation dtmc ~h ~steps:1000));
    Test.make ~name:"certified:interval-hull-cholera-T3"
      (Staged.stage
         (let s = Cholera.make Cholera.default_params in
          fun () ->
            Certified.hull_bounds ~clip:Cholera.state_clip s ~x0:Cholera.x0
              ~horizon:3. ~dt:0.01));
  ]

let run () =
  Common.banner "PERF: solver timings (Bechamel, OLS ms/run)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"umf" ~fmt:"%s/%s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> rows := (name, est /. 1e6) :: !rows
      | Some [] | None -> ())
    results;
  Common.header [ "kernel"; "ms/run" ];
  List.iter
    (fun (name, ms) -> Printf.printf "%s\t%.3f\n" name ms)
    (List.sort compare !rows)

(* RUNTIME: sequential vs pooled wall time of the three hot fan-out
   workloads, with a bit-identity check on each.  Speedup needs cores;
   on a 1-core box the interest is the (small) scheduling overhead. *)
let run_runtime () =
  Common.banner "RUNTIME: parallel engine, seq vs pool wall time";
  let pool, owned =
    match !Common.pool with
    | Some p -> (p, false)
    | None -> (Runtime.Pool.create (), true)
  in
  let times = [| 1.; 2.; 3.; 4. |] in
  (* reach's sequential lane uses a one-domain pool: with a pool the
     cloud comes from split RNG streams, so only pool-vs-pool runs are
     comparable bit-for-bit *)
  let pool1 = Runtime.Pool.create ~domains:1 () in
  let workloads =
    [
      ( "uncertain-sweep-21",
        (fun () ->
          `Env (Uncertain.transient_envelope ~grid:21 di ~x0:Sir.x0 ~times)),
        fun () ->
          `Env
            (Uncertain.transient_envelope ~pool ~grid:21 di ~x0:Sir.x0 ~times)
      );
      ( "reach-mc-cloud-400",
        (fun () ->
          `Cloud
            (Reach.sample_states ~pool:pool1 di ~x0:Sir.x0 ~horizon:3.
               ~n_controls:400 (Rng.create 5)
             |> Array.of_list)),
        fun () ->
          `Cloud
            (Reach.sample_states ~pool di ~x0:Sir.x0 ~horizon:3.
               ~n_controls:400 (Rng.create 5)
             |> Array.of_list) );
      ( "ssa-replicate-N500x40",
        (fun () ->
          `Cloud
            (Ssa.replicate model ~n:500 ~x0:Sir.x0
               ~policy:(Sir.policy_theta1 p) ~tmax:10. ~reps:40 ~seed:3)),
        fun () ->
          `Cloud
            (Ssa.replicate ~pool model ~n:500 ~x0:Sir.x0
               ~policy:(Sir.policy_theta1 p) ~tmax:10. ~reps:40 ~seed:3) );
    ]
  in
  Common.header [ "workload"; "seq_s"; "pool_s"; "speedup"; "identical" ];
  let json_rows =
    List.map
      (fun (name, seq, par) ->
        let r_seq, t_seq = Common.time_it seq in
        let r_par, t_par = Common.time_it par in
        let identical = r_seq = r_par in
        Printf.printf "%s\t%.3f\t%.3f\t%.2fx\t%b\n" name t_seq t_par
          (t_seq /. Float.max 1e-9 t_par)
          identical;
        Common.claim
          (Printf.sprintf "%s: pool output bit-identical" name)
          identical
          (Printf.sprintf "%d domains" (Runtime.Pool.size pool));
        Printf.sprintf
          "    {\"workload\": %S, \"seq_s\": %.6f, \"pool_s\": %.6f, \
           \"domains\": %d, \"identical\": %b}"
          name t_seq t_par (Runtime.Pool.size pool) identical)
      workloads
  in
  let oc = open_out "BENCH_runtime.json" in
  Printf.fprintf oc "{\n  \"domains\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
    (Runtime.Pool.size pool)
    (String.concat ",\n" json_rows);
  close_out oc;
  print_endline "wrote BENCH_runtime.json";
  Runtime.Pool.shutdown pool1;
  if owned then Runtime.Pool.shutdown pool
