(* Experiment harness: regenerates the data behind every table and
   figure of the paper's evaluation (Secs. V and VI).

   Usage: main.exe [experiment ...]
   with experiments among fig1 fig2 fig3 fig4 fig5 fig6 fig7 tune kolm
   conv template hier certified ablation perf; no argument runs
   everything. *)

let experiments =
  [
    ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("tune", Tune.run);
    ("kolm", Kolm.run);
    ("conv", Conv.run);
    ("template", Exp_template.run);
    ("hier", Exp_hier.run);
    ("certified", Exp_certified.run);
    ("safety", Exp_safety.run);
    ("lb", Exp_lb.run);
    ("ablation", Ablation.run);
    ("perf", Perf.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* optional: --dump DIR writes each printed series as gnuplot-ready
     .dat/.gp files *)
  let args =
    match args with
    | "--dump" :: dir :: rest ->
        Common.set_dump (Some dir);
        rest
    | rest -> rest
  in
  let requested =
    match args with [] -> List.map fst experiments | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          let t = Unix.gettimeofday () in
          run ();
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t)
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  Printf.printf "\nall experiments completed in %.1fs\n" (Unix.gettimeofday () -. t0)
