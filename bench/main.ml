(* Experiment harness: regenerates the data behind every table and
   figure of the paper's evaluation (Secs. V and VI).

   Usage: main.exe [--dump DIR] [--jobs N] [experiment ...]
   with experiments among fig1 fig2 fig3 fig4 fig5 fig6 fig7 tune kolm
   conv template hier certified ablation perf runtime obs expr lint batch
   cert serve; no argument
   runs everything.  --jobs N (or UMF_JOBS) runs the parallel-aware
   experiments on N worker domains (0 = one per core); results are
   bit-identical for any N. *)

let experiments =
  [
    ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", fun () -> Fig6.run ?pool:!Common.pool ());
    ("fig7", Fig7.run);
    ("tune", Tune.run);
    ("kolm", Kolm.run);
    ("conv", Conv.run);
    ("template", Exp_template.run);
    ("hier", Exp_hier.run);
    ("certified", Exp_certified.run);
    ("safety", Exp_safety.run);
    ("lb", Exp_lb.run);
    ("ablation", Ablation.run);
    ("perf", Perf.run);
    ("runtime", Perf.run_runtime);
    ("obs", Exp_obs.run);
    ("expr", Exp_expr.run);
    ("ctmc", Exp_ctmc.run);
    ("lint", Exp_lint.run);
    ("batch", Exp_batch.run);
    ("cert", Exp_cert.run);
    ("serve", Exp_serve.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* optional leading flags: --dump DIR writes each printed series as
     gnuplot-ready .dat/.gp files; --jobs N turns on the shared worker
     pool (0 = one domain per core) *)
  let rec parse_flags = function
    | "--dump" :: dir :: rest ->
        Common.set_dump (Some dir);
        parse_flags rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 0 ->
            if j <> 1 then
              Common.pool :=
                Some
                  (if j = 0 then Umf.Runtime.Pool.create ()
                   else Umf.Runtime.Pool.create ~domains:j ());
            parse_flags rest
        | _ ->
            Printf.eprintf "--jobs needs a non-negative integer\n";
            exit 1)
    | rest -> rest
  in
  let args =
    match (parse_flags args, Sys.getenv_opt "UMF_JOBS") with
    | rest, Some env when !Common.pool = None -> (
        match int_of_string_opt env with
        | Some j when j > 1 ->
            Common.pool := Some (Umf.Runtime.Pool.create ~domains:j ());
            rest
        | Some 0 ->
            Common.pool := Some (Umf.Runtime.Pool.create ());
            rest
        | _ -> rest)
    | rest, _ -> rest
  in
  let requested =
    match args with [] -> List.map fst experiments | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          let t = Unix.gettimeofday () in
          run ();
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t)
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  (match !Common.pool with
  | Some p ->
      Printf.printf "\npool %s\n" (Umf.Runtime.stats_to_string (Umf.Runtime.Pool.stats p));
      Umf.Runtime.Pool.shutdown p
  | None -> ());
  Printf.printf "\nall experiments completed in %.1fs\n" (Unix.gettimeofday () -. t0)
