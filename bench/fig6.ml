(* Figure 6: stationary samples of the stochastic SIR system under the
   two adversarial policies theta1 (hysteresis) and theta2 (random
   redraw at rate 5 X_I), for N in {100, 1000, 10000}, against the
   Birkhoff centre.  Paper: as N grows the samples get included in the
   region. *)
open Umf

let run ?pool () =
  Common.banner "FIG6: stationary SIR samples vs Birkhoff centre";
  let p = Sir.default_params in
  let model = Sir.make p in
  let spec = Analysis.spec ?pool ~horizon:120. model in
  (* the region comes from Sir.di (exact symbolic jacobian), exactly as
     before the spec API; wrap it in the Analysis.region record *)
  let b = Birkhoff.compute (Sir.di p) ~x_start:Sir.x0 in
  let region =
    { Analysis.birkhoff = b; area = Birkhoff.area b;
      converged = Birkhoff.converged b; metrics = Analysis.no_metrics }
  in
  Common.header [ "policy"; "N"; "inclusion"; "inclusion(3e-3)"; "mean_exceed" ];
  let all_ok = ref true in
  let fractions =
    List.concat_map
      (fun (policy, name) ->
        List.map
          (fun n ->
            let cloud =
              Analysis.stationary_cloud spec ~n ~x0:Sir.x0 ~policy ~warmup:20.
                ~samples:500 ~seed:7
            in
            let incl =
              Analysis.inclusion_fraction ~tol:3e-3 spec region
                cloud.Analysis.states
            in
            let exc =
              Analysis.mean_exceedance spec region cloud.Analysis.states
            in
            Printf.printf "%s\t%d\t%.3f\t%.3f\t%.5f\n" name n incl.Analysis.strict
              incl.Analysis.fraction exc.Analysis.mean;
            (name, n, incl.Analysis.fraction, exc.Analysis.mean))
          [ 100; 1000; 10000 ])
      [ (Sir.policy_theta1 p, "theta1"); (Sir.policy_theta2 p, "theta2") ]
  in
  (* per policy: inclusion improves and exceedance shrinks with N *)
  List.iter
    (fun pname ->
      let pts = List.filter (fun (n, _, _, _) -> n = pname) fractions in
      match pts with
      | [ (_, _, f1, e1); (_, _, _f2, _e2); (_, _, f3, e3) ] ->
          let ok = f3 >= f1 -. 0.02 && f3 >= 0.95 && e3 <= e1 in
          if not ok then all_ok := false;
          Common.claim
            (Printf.sprintf "%s: inclusion -> 1 as N grows" pname)
            ok
            (Printf.sprintf "%.3f -> %.3f, exceedance %.5f -> %.5f" f1 f3 e1 e3)
      | _ -> all_ok := false)
    [ "theta1"; "theta2" ];
  Common.claim "stationary samples concentrate on Birkhoff centre (Thm 3)"
    !all_ok "see per-policy rows"
