open Umf_numerics
open Expr

(* same-or-both-NaN: the tape mirrors Expr.eval operation for
   operation, so values must agree bit-for-bit even through inf/nan *)
let same a b = a = b || (Float.is_nan a && Float.is_nan b)

(* random expression generators over x0, x1 and theta0 — the full
   grammar, Div/Pow/Ite included *)
let rec expr_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun c -> Const c) (float_range (-3.) 3.);
        map (fun i -> Var i) (int_range 0 1);
        return (Theta 0);
      ]
  else begin
    let sub = expr_gen (depth - 1) in
    oneof
      [
        map2 (fun a b -> Add (a, b)) sub sub;
        map2 (fun a b -> Sub (a, b)) sub sub;
        map2 (fun a b -> Mul (a, b)) sub sub;
        map2 (fun a b -> Div (a, b)) sub sub;
        map (fun a -> Neg a) sub;
        map2 (fun a n -> Pow (a, n)) sub (int_range 0 4);
        map2 (fun a b -> Min (a, b)) sub sub;
        map2 (fun a b -> Max (a, b)) sub sub;
        map3 (fun g a b -> Ite (g, a, b)) sub sub sub;
        sub;
      ]
  end

let arb_expr = QCheck.make ~print:to_string (expr_gen 4)

let arb_point =
  QCheck.Gen.(
    triple (float_range (-2.) 2.) (float_range (-2.) 2.)
      (float_range (-2.) 2.))

let arb_expr_points =
  QCheck.make
    ~print:(fun (e, _) -> to_string e)
    QCheck.Gen.(pair (expr_gen 4) (list_size (return 5) arb_point))

let prop_tape_matches_interpreter =
  QCheck.Test.make ~name:"tape eval = Expr.eval (random exprs/points)"
    ~count:500 arb_expr_points (fun (e, points) ->
      let t = Tape.compile [| e |] in
      let ws = Tape.make_ws t in
      let out = Vec.zeros 1 in
      List.for_all
        (fun (a, b, th) ->
          let x = [| a; b |] and th = [| th |] in
          Tape.eval_into t ~ws ~x ~th ~out;
          same (Expr.eval e ~x ~th) out.(0))
        points)

let prop_multi_output =
  QCheck.Test.make ~name:"multi-output tape matches per-expr eval" ~count:200
    (QCheck.make
       ~print:(fun es -> String.concat "; " (List.map to_string es))
       QCheck.Gen.(list_size (int_range 1 5) (expr_gen 3)))
    (fun es ->
      let arr = Array.of_list es in
      let t = Tape.compile arr in
      let x = [| 0.37; -1.2 |] and th = [| 2.3 |] in
      let out = Tape.eval t ~x ~th in
      Array.length out = Array.length arr
      && Array.for_all2 same (Array.map (fun e -> Expr.eval e ~x ~th) arr) out)

let prop_cse_shares_instructions =
  (* compiling the same tree twice must not execute it twice *)
  QCheck.Test.make ~name:"CSE: duplicated outputs cost no extra instructions"
    ~count:200 arb_expr (fun e ->
      let one = Tape.n_instructions (Tape.compile [| e |]) in
      let two = Tape.n_instructions (Tape.compile [| e; e |]) in
      two = one)

let prop_instructions_bounded_by_nodes =
  QCheck.Test.make ~name:"CSE: instructions <= tree nodes" ~count:200 arb_expr
    (fun e ->
      Tape.n_instructions (Tape.compile [| e |]) <= Tape.n_nodes [| e |])

let prop_interval_sound =
  (* the tape enclosure contains every pointwise tape value on the box *)
  QCheck.Test.make ~name:"tape interval enclosure sound" ~count:500
    arb_expr_points (fun (e, points) ->
      let t = Tape.compile [| e |] in
      let xa = Interval.make (-2.) 2. and ta = Interval.make (-2.) 2. in
      let enc =
        try (Tape.eval_interval t ~x:[| xa; xa |] ~th:[| ta |]).(0)
        with Division_by_zero ->
          QCheck.assume false;
          assert false
      in
      List.for_all
        (fun (a, b, th) ->
          let p = Expr.eval e ~x:[| a; b |] ~th:[| th |] in
          (not (Float.is_finite p))
          || (let tol = 1e-9 *. Float.max 1. (Float.abs p) in
              Interval.lo enc -. tol <= p && p <= Interval.hi enc +. tol))
        points)

let test_constants_preloaded () =
  (* constant leaves live in preloaded slots, not instructions: the sum
     of two constants executes exactly one Add and nothing else *)
  let t = Tape.compile [| Expr.(const 2. +: const 3.) |] in
  Alcotest.(check int) "one executed instruction" 1 (Tape.n_instructions t);
  Alcotest.(check int) "constant alone executes nothing" 0
    (Tape.n_instructions (Tape.compile [| Expr.const 7. |]));
  Alcotest.(check (float 0.)) "value" 5.
    (Tape.eval t ~x:[||] ~th:[||]).(0)

let test_scalar_evaluator () =
  let e = Expr.((theta 0 *: var 0 *: var 1) +: (const 0.1 *: var 0)) in
  let t = Tape.compile [| e |] in
  let f = Tape.scalar_evaluator t in
  let x = [| 0.7; 0.3 |] and th = [| 5. |] in
  Alcotest.(check (float 0.)) "scalar = interpreted" (Expr.eval e ~x ~th)
    (f x th);
  (* repeated calls reuse the cached workspace *)
  Alcotest.(check (float 0.)) "second call identical" (f x th) (f x th)

let test_workspace_validation () =
  let t = Tape.compile [| Expr.(var 0 +: theta 0) |] in
  Alcotest.check_raises "foreign workspace"
    (Invalid_argument "Tape: workspace size mismatch") (fun () ->
      Tape.eval_into t ~ws:[| 0. |] ~x:[| 1. |] ~th:[| 1. |]
        ~out:(Vec.zeros 1));
  Alcotest.check_raises "missing variable"
    (Invalid_argument "Tape: variable out of range") (fun () ->
      Tape.eval_into t ~ws:(Tape.make_ws t) ~x:[||] ~th:[| 1. |]
        ~out:(Vec.zeros 1))

let test_ite_selects_like_interpreter () =
  (* guard <= 0 picks the then-branch, > 0 the else-branch — and the
     eagerly evaluated inactive branch never corrupts the result *)
  let e = Expr.(Ite (var 0, const 1., const 2.)) in
  let t = Tape.compile [| e |] in
  Alcotest.(check (float 0.)) "guard negative" 1.
    (Tape.eval t ~x:[| -1. |] ~th:[||]).(0);
  Alcotest.(check (float 0.)) "guard zero" 1.
    (Tape.eval t ~x:[| 0. |] ~th:[||]).(0);
  Alcotest.(check (float 0.)) "guard positive" 2.
    (Tape.eval t ~x:[| 1. |] ~th:[||]).(0)

let suites =
  [
    ( "tape",
      [
        Alcotest.test_case "constants preloaded" `Quick test_constants_preloaded;
        Alcotest.test_case "scalar evaluator" `Quick test_scalar_evaluator;
        Alcotest.test_case "workspace validation" `Quick test_workspace_validation;
        Alcotest.test_case "ite selection" `Quick test_ite_selects_like_interpreter;
        QCheck_alcotest.to_alcotest prop_tape_matches_interpreter;
        QCheck_alcotest.to_alcotest prop_multi_output;
        QCheck_alcotest.to_alcotest prop_cse_shares_instructions;
        QCheck_alcotest.to_alcotest prop_instructions_bounded_by_nodes;
        QCheck_alcotest.to_alcotest prop_interval_sound;
      ] );
  ]
