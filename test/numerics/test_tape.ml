open Umf_numerics
open Expr

(* same-or-both-NaN: the tape mirrors Expr.eval operation for
   operation, so values must agree bit-for-bit even through inf/nan *)
let same a b = a = b || (Float.is_nan a && Float.is_nan b)

(* random expression generators over x0, x1 and theta0 — the full
   grammar, Div/Pow/Ite included *)
let rec expr_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun c -> Const c) (float_range (-3.) 3.);
        map (fun i -> Var i) (int_range 0 1);
        return (Theta 0);
      ]
  else begin
    let sub = expr_gen (depth - 1) in
    oneof
      [
        map2 (fun a b -> Add (a, b)) sub sub;
        map2 (fun a b -> Sub (a, b)) sub sub;
        map2 (fun a b -> Mul (a, b)) sub sub;
        map2 (fun a b -> Div (a, b)) sub sub;
        map (fun a -> Neg a) sub;
        map2 (fun a n -> Pow (a, n)) sub (int_range 0 4);
        map2 (fun a b -> Min (a, b)) sub sub;
        map2 (fun a b -> Max (a, b)) sub sub;
        map3 (fun g a b -> Ite (g, a, b)) sub sub sub;
        sub;
      ]
  end

let arb_expr = QCheck.make ~print:to_string (expr_gen 4)

let arb_point =
  QCheck.Gen.(
    triple (float_range (-2.) 2.) (float_range (-2.) 2.)
      (float_range (-2.) 2.))

let arb_expr_points =
  QCheck.make
    ~print:(fun (e, _) -> to_string e)
    QCheck.Gen.(pair (expr_gen 4) (list_size (return 5) arb_point))

let prop_tape_matches_interpreter =
  QCheck.Test.make ~name:"Plan.run = Expr.eval (random exprs/points)"
    ~count:500 arb_expr_points (fun (e, points) ->
      let p = Tape.Plan.make (Tape.compile [| e |]) in
      let out = Vec.zeros 1 in
      List.for_all
        (fun (a, b, th) ->
          let x = [| a; b |] and th = [| th |] in
          Tape.Plan.run p ~x ~th ~out;
          same (Expr.eval e ~x ~th) out.(0))
        points)

let prop_multi_output =
  QCheck.Test.make ~name:"multi-output plan matches per-expr eval" ~count:200
    (QCheck.make
       ~print:(fun es -> String.concat "; " (List.map to_string es))
       QCheck.Gen.(list_size (int_range 1 5) (expr_gen 3)))
    (fun es ->
      let arr = Array.of_list es in
      let p = Tape.Plan.make (Tape.compile arr) in
      let x = [| 0.37; -1.2 |] and th = [| 2.3 |] in
      let out = Tape.Plan.run_alloc p ~x ~th in
      Array.length out = Array.length arr
      && Array.for_all2 same (Array.map (fun e -> Expr.eval e ~x ~th) arr) out)

let prop_cse_shares_instructions =
  (* compiling the same tree twice must not execute it twice *)
  QCheck.Test.make ~name:"CSE: duplicated outputs cost no extra instructions"
    ~count:200 arb_expr (fun e ->
      let one = Tape.n_instructions (Tape.compile [| e |]) in
      let two = Tape.n_instructions (Tape.compile [| e; e |]) in
      two = one)

let prop_instructions_bounded_by_nodes =
  QCheck.Test.make ~name:"CSE: instructions <= tree nodes" ~count:200 arb_expr
    (fun e ->
      Tape.n_instructions (Tape.compile [| e |]) <= Tape.n_nodes [| e |])

let prop_interval_sound =
  (* the plan enclosure contains every pointwise tape value on the box *)
  QCheck.Test.make ~name:"plan interval enclosure sound" ~count:500
    arb_expr_points (fun (e, points) ->
      let p = Tape.Plan.make (Tape.compile [| e |]) in
      let xa = Interval.make (-2.) 2. and ta = Interval.make (-2.) 2. in
      let enc =
        try (Tape.Plan.run_interval p ~x:[| xa; xa |] ~th:[| ta |]).(0)
        with Division_by_zero ->
          QCheck.assume false;
          assert false
      in
      List.for_all
        (fun (a, b, th) ->
          let pt = Expr.eval e ~x:[| a; b |] ~th:[| th |] in
          (not (Float.is_finite pt))
          || (let tol = 1e-9 *. Float.max 1. (Float.abs pt) in
              Interval.lo enc -. tol <= pt && pt <= Interval.hi enc +. tol))
        points)

let prop_batch_matches_scalar =
  (* the structure-of-arrays kernel must agree with the scalar run
     BITWISE, lane by lane — a chunk of 3 forces both full chunks and a
     ragged tail over the 5-point batch *)
  QCheck.Test.make ~name:"Plan.run_batch = scalar Plan.run loop (bitwise)"
    ~count:500 arb_expr_points (fun (e, points) ->
      let plan = Tape.Plan.make ~chunk:3 (Tape.compile [| e |]) in
      let pts = Array.of_list points in
      let n = Array.length pts in
      let xs =
        Mat.init n 2 (fun i j ->
            let a, b, _ = pts.(i) in
            if j = 0 then a else b)
      and ths =
        Mat.init n 1 (fun i _ ->
            let _, _, th = pts.(i) in
            th)
      in
      let out = Mat.zeros n 1 in
      Tape.Plan.run_batch plan ~xs ~ths ~out;
      let scalar = Vec.zeros 1 in
      Array.for_all
        (fun i ->
          let a, b, th = pts.(i) in
          Tape.Plan.run plan ~x:[| a; b |] ~th:[| th |] ~out:scalar;
          Mat.get out i 0 = scalar.(0)
          || (Float.is_nan (Mat.get out i 0) && Float.is_nan scalar.(0)))
        (Array.init n Fun.id))

let test_constants_preloaded () =
  (* constant leaves live in preloaded slots, not instructions: the sum
     of two constants executes exactly one Add and nothing else *)
  let t = Tape.compile [| Expr.(const 2. +: const 3.) |] in
  Alcotest.(check int) "one executed instruction" 1 (Tape.n_instructions t);
  Alcotest.(check int) "constant alone executes nothing" 0
    (Tape.n_instructions (Tape.compile [| Expr.const 7. |]));
  Alcotest.(check (float 0.)) "value" 5.
    (Tape.Plan.run_alloc (Tape.Plan.make t) ~x:[||] ~th:[||]).(0)

let test_run_scalar () =
  let e = Expr.((theta 0 *: var 0 *: var 1) +: (const 0.1 *: var 0)) in
  let p = Tape.Plan.make (Tape.compile [| e |]) in
  let f = Tape.Plan.run_scalar p in
  let x = [| 0.7; 0.3 |] and th = [| 5. |] in
  Alcotest.(check (float 0.)) "scalar = interpreted" (Expr.eval e ~x ~th)
    (f x th);
  (* repeated calls reuse the domain-local workspace *)
  Alcotest.(check (float 0.)) "second call identical" (f x th) (f x th);
  let two = Tape.Plan.make (Tape.compile [| e; e |]) in
  Alcotest.check_raises "multi-output rejected"
    (Invalid_argument "Tape.Plan.run_scalar: tape has more than one output")
    (fun () -> ignore (Tape.Plan.run_scalar two : Vec.t -> Vec.t -> float))

let test_plan_validation () =
  let t = Tape.compile [| Expr.(var 0 +: theta 0) |] in
  let p = Tape.Plan.make t in
  Alcotest.check_raises "missing variable"
    (Invalid_argument "Tape: variable out of range") (fun () ->
      Tape.Plan.run p ~x:[||] ~th:[| 1. |] ~out:(Vec.zeros 1));
  Alcotest.check_raises "bad chunk"
    (Invalid_argument "Tape.Plan.make: chunk must be >= 1") (fun () ->
      ignore (Tape.Plan.make ~chunk:0 t))

let test_batch_validation () =
  (* the batch entry point fails loudly, spelling the shapes out, and
     evaluates nothing on a bad batch *)
  let t = Tape.compile [| Expr.(var 0 +: theta 0) |] in
  let p = Tape.Plan.make t in
  Alcotest.check_raises "empty batch"
    (Invalid_argument
       "Tape.Plan.run_batch: empty batch (xs 0x1, ths 0x1, out 0x1)")
    (fun () ->
      Tape.Plan.run_batch p ~xs:(Mat.zeros 0 1) ~ths:(Mat.zeros 0 1)
        ~out:(Mat.zeros 0 1));
  Alcotest.check_raises "row mismatch"
    (Invalid_argument
       "Tape.Plan.run_batch: batch row mismatch (xs 4x1, ths 3x1, out 4x1)")
    (fun () ->
      Tape.Plan.run_batch p ~xs:(Mat.zeros 4 1) ~ths:(Mat.zeros 3 1)
        ~out:(Mat.zeros 4 1));
  Alcotest.check_raises "inputs too narrow"
    (Invalid_argument
       "Tape.Plan.run_batch: inputs too narrow (xs 4x0, ths 4x1, out 4x1; \
        tape needs >= 1 vars, >= 1 thetas)")
    (fun () ->
      Tape.Plan.run_batch p ~xs:(Mat.zeros 4 0) ~ths:(Mat.zeros 4 1)
        ~out:(Mat.zeros 4 1));
  Alcotest.check_raises "output width mismatch"
    (Invalid_argument
       "Tape.Plan.run_batch: output width mismatch (xs 4x1, ths 4x1, out \
        4x2; tape has 1 outputs)")
    (fun () ->
      Tape.Plan.run_batch p ~xs:(Mat.zeros 4 1) ~ths:(Mat.zeros 4 1)
        ~out:(Mat.zeros 4 2))

let test_ite_selects_like_interpreter () =
  (* guard <= 0 picks the then-branch, > 0 the else-branch — and the
     eagerly evaluated inactive branch never corrupts the result *)
  let e = Expr.(Ite (var 0, const 1., const 2.)) in
  let p = Tape.Plan.make (Tape.compile [| e |]) in
  Alcotest.(check (float 0.)) "guard negative" 1.
    (Tape.Plan.run_alloc p ~x:[| -1. |] ~th:[||]).(0);
  Alcotest.(check (float 0.)) "guard zero" 1.
    (Tape.Plan.run_alloc p ~x:[| 0. |] ~th:[||]).(0);
  Alcotest.(check (float 0.)) "guard positive" 2.
    (Tape.Plan.run_alloc p ~x:[| 1. |] ~th:[||]).(0)

let suites =
  [
    ( "tape",
      [
        Alcotest.test_case "constants preloaded" `Quick test_constants_preloaded;
        Alcotest.test_case "run_scalar" `Quick test_run_scalar;
        Alcotest.test_case "plan validation" `Quick test_plan_validation;
        Alcotest.test_case "batch validation" `Quick test_batch_validation;
        Alcotest.test_case "ite selection" `Quick test_ite_selects_like_interpreter;
        QCheck_alcotest.to_alcotest prop_tape_matches_interpreter;
        QCheck_alcotest.to_alcotest prop_multi_output;
        QCheck_alcotest.to_alcotest prop_cse_shares_instructions;
        QCheck_alcotest.to_alcotest prop_instructions_bounded_by_nodes;
        QCheck_alcotest.to_alcotest prop_interval_sound;
        QCheck_alcotest.to_alcotest prop_batch_matches_scalar;
      ] );
  ]
