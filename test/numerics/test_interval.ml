open Umf_numerics

let check_float = Alcotest.(check (float 1e-12))

let iv = Interval.make

let test_make_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (iv 2. 1.))

let test_basic () =
  let a = iv 1. 3. in
  check_float "lo" 1. (Interval.lo a);
  check_float "hi" 3. (Interval.hi a);
  check_float "width" 2. (Interval.width a);
  check_float "mid" 2. (Interval.midpoint a);
  Alcotest.(check bool) "mem" true (Interval.mem 2.5 a);
  Alcotest.(check bool) "not mem" false (Interval.mem 3.5 a)

let test_hull_intersect () =
  let a = iv 0. 2. and b = iv 1. 4. in
  Alcotest.(check bool) "hull" true
    (Interval.equal (Interval.hull a b) (iv 0. 4.));
  (match Interval.intersect a b with
  | Some c -> Alcotest.(check bool) "intersect" true (Interval.equal c (iv 1. 2.))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "disjoint" true
    (Interval.intersect (iv 0. 1.) (iv 2. 3.) = None)

let test_hull_list () =
  let h = Interval.hull_list [ iv 0. 1.; iv 3. 4.; iv (-1.) 0.5 ] in
  Alcotest.(check bool) "hull of list" true (Interval.equal h (iv (-1.) 4.));
  Alcotest.check_raises "empty list"
    (Invalid_argument "Interval.hull_list: empty list") (fun () ->
      ignore (Interval.hull_list []))

let test_scale () =
  Alcotest.(check bool) "positive scale" true
    (Interval.equal (Interval.scale 2. (iv 1. 3.)) (iv 2. 6.));
  Alcotest.(check bool) "negative scale flips" true
    (Interval.equal (Interval.scale (-1.) (iv 1. 3.)) (iv (-3.) (-1.)))

let test_arith () =
  let a = iv 1. 2. and b = iv (-1.) 3. in
  Alcotest.(check bool) "add" true (Interval.equal (Interval.add a b) (iv 0. 5.));
  Alcotest.(check bool) "sub" true (Interval.equal (Interval.sub a b) (iv (-2.) 3.));
  Alcotest.(check bool) "mul" true (Interval.equal (Interval.mul a b) (iv (-2.) 6.));
  Alcotest.(check bool) "neg" true (Interval.equal (Interval.neg a) (iv (-2.) (-1.)))

let test_mul_signs () =
  Alcotest.(check bool) "neg*neg" true
    (Interval.equal (Interval.mul (iv (-3.) (-1.)) (iv (-2.) (-1.))) (iv 1. 6.));
  Alcotest.(check bool) "straddle*straddle" true
    (Interval.equal (Interval.mul (iv (-1.) 2.) (iv (-3.) 1.)) (iv (-6.) 3.))

let test_div () =
  Alcotest.(check bool) "div" true
    (Interval.equal (Interval.div (iv 1. 2.) (iv 2. 4.)) (iv 0.25 1.));
  Alcotest.check_raises "div by zero-containing" Division_by_zero (fun () ->
      ignore (Interval.div (iv 1. 2.) (iv (-1.) 1.)))

let test_sq () =
  Alcotest.(check bool) "sq straddle" true
    (Interval.equal (Interval.sq (iv (-2.) 1.)) (iv 0. 4.));
  Alcotest.(check bool) "sq positive" true
    (Interval.equal (Interval.sq (iv 1. 3.)) (iv 1. 9.))

let test_monotone () =
  let e = Interval.monotone Float.exp (iv 0. 1.) in
  check_float "exp lo" 1. (Interval.lo e);
  check_float "exp hi" (Float.exp 1.) (Interval.hi e);
  let d = Interval.monotone (fun x -> -.x) (iv 0. 1.) in
  Alcotest.(check bool) "decreasing" true (Interval.equal d (iv (-1.) 0.))

let test_clamp_sample () =
  let a = iv 0. 10. in
  check_float "clamp in" 5. (Interval.clamp a 5.);
  check_float "clamp below" 0. (Interval.clamp a (-3.));
  check_float "clamp above" 10. (Interval.clamp a 42.);
  let s = Interval.sample a 3 in
  Alcotest.(check int) "sample count" 3 (Array.length s);
  check_float "sample mid" 5. s.(1);
  let one = Interval.sample a 1 in
  check_float "single sample is midpoint" 5. one.(0)

let arb_iv =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%g,%g)" a b)
    QCheck.Gen.(pair (float_range (-50.) 50.) (float_range (-50.) 50.))

let norm (a, b) = Interval.make (Float.min a b) (Float.max a b)

(* fundamental soundness: interval ops contain all pointwise results *)
let prop_mul_sound =
  QCheck.Test.make ~name:"mul contains pointwise products" ~count:300
    (QCheck.pair arb_iv arb_iv) (fun (p, q) ->
      let a = norm p and b = norm q in
      let prod = Interval.mul a b in
      let pts = [ Interval.lo a; Interval.midpoint a; Interval.hi a ] in
      let qts = [ Interval.lo b; Interval.midpoint b; Interval.hi b ] in
      List.for_all
        (fun x -> List.for_all (fun y -> Interval.mem (x *. y) prod) qts)
        pts)

let prop_add_width =
  QCheck.Test.make ~name:"add widths add" ~count:300 (QCheck.pair arb_iv arb_iv)
    (fun (p, q) ->
      let a = norm p and b = norm q in
      Float.abs
        (Interval.width (Interval.add a b)
        -. (Interval.width a +. Interval.width b))
      < 1e-9)

let suites =
  [
    ( "interval",
      [
        Alcotest.test_case "make validation" `Quick test_make_invalid;
        Alcotest.test_case "basic accessors" `Quick test_basic;
        Alcotest.test_case "hull/intersect" `Quick test_hull_intersect;
        Alcotest.test_case "hull of list" `Quick test_hull_list;
        Alcotest.test_case "scale" `Quick test_scale;
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "mul sign cases" `Quick test_mul_signs;
        Alcotest.test_case "division" `Quick test_div;
        Alcotest.test_case "square" `Quick test_sq;
        Alcotest.test_case "monotone map" `Quick test_monotone;
        Alcotest.test_case "clamp/sample" `Quick test_clamp_sample;
        QCheck_alcotest.to_alcotest prop_mul_sound;
        QCheck_alcotest.to_alcotest prop_add_width;
      ] );
  ]
