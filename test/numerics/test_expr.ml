open Umf_numerics
open Expr

let check_float = Alcotest.(check (float 1e-12))

(* f(x, th) = a x0 + th0 x0 x1  (the SIR infection rate) *)
let infection a = (const a *: var 0) +: (theta 0 *: var 0 *: var 1)

let test_eval () =
  let e = infection 0.1 in
  check_float "infection" ((0.1 *. 0.7) +. (5. *. 0.7 *. 0.3))
    (eval e ~x:[| 0.7; 0.3 |] ~th:[| 5. |])

let test_eval_ops () =
  let x = [| 2.; 3. |] and th = [| 4. |] in
  check_float "sub" (-1.) (eval (var 0 -: var 1) ~x ~th);
  check_float "div" (2. /. 3.) (eval (var 0 /: var 1) ~x ~th);
  check_float "neg" (-2.) (eval (neg (var 0)) ~x ~th);
  check_float "pow" 8. (eval (pow (var 0) 3) ~x ~th);
  check_float "pow 0" 1. (eval (pow (var 0) 0) ~x ~th);
  check_float "min" 2. (eval (min_ (var 0) (var 1)) ~x ~th);
  check_float "max" 4. (eval (max_ (var 1) (theta 0)) ~x ~th);
  check_float "ite low" 2. (eval (Ite (const (-1.), var 0, var 1)) ~x ~th);
  check_float "ite high" 3. (eval (Ite (const 1., var 0, var 1)) ~x ~th)

let test_eval_out_of_range () =
  Alcotest.check_raises "var range" (Invalid_argument "Expr.eval: variable out of range")
    (fun () -> ignore (eval (var 2) ~x:[| 1. |] ~th:[||]));
  Alcotest.check_raises "constructor" (Invalid_argument "Expr.var: negative index")
    (fun () -> ignore (var (-1)))

let test_diff_polynomial () =
  (* d/dx0 (a x0 + th x0 x1) = a + th x1 *)
  let e = infection 0.1 in
  let d = diff_var e 0 in
  check_float "derivative" (0.1 +. (5. *. 0.3)) (eval d ~x:[| 0.7; 0.3 |] ~th:[| 5. |]);
  let d1 = diff_var e 1 in
  check_float "d/dx1" (5. *. 0.7) (eval d1 ~x:[| 0.7; 0.3 |] ~th:[| 5. |])

let test_diff_theta () =
  let e = infection 0.1 in
  check_float "d/dth" (0.7 *. 0.3)
    (eval (diff_theta e 0) ~x:[| 0.7; 0.3 |] ~th:[| 5. |])

let test_diff_quotient_pow () =
  (* d/dx (x^2 / (1 + x)) = (2x(1+x) - x^2) / (1+x)^2 *)
  let e = pow (var 0) 2 /: (const 1. +: var 0) in
  let d = diff_var e 0 in
  let x = 1.5 in
  let expected = ((2. *. x *. (1. +. x)) -. (x *. x)) /. ((1. +. x) ** 2.) in
  check_float "quotient rule" expected (eval d ~x:[| x |] ~th:[||])

let test_diff_minmax_piecewise () =
  (* d/dx max(0, 1 - x) = -1 for x < 1, 0 for x > 1 *)
  let e = max_ (const 0.) (const 1. -: var 0) in
  let d = diff_var e 0 in
  check_float "active branch" (-1.) (eval d ~x:[| 0.5 |] ~th:[||]);
  check_float "inactive branch" 0. (eval d ~x:[| 2. |] ~th:[||])

let test_diff_matches_fd () =
  let e =
    (theta 0 *: var 0 *: var 1)
    +: (var 0 /: (const 1. +: (var 1 *: var 1)))
    -: pow (var 0) 3
  in
  let x = [| 0.8; 0.4 |] and th = [| 2.5 |] in
  let analytic = eval (diff_var e 0) ~x ~th in
  let fd = Diff.gradient (fun y -> eval e ~x:y ~th) x in
  check_float "matches FD (1e-6)" 0. (Float.round ((analytic -. fd.(0)) /. 1e-6) *. 1e-6)

let test_interval_enclosure () =
  let e = infection 0.1 in
  let enc =
    eval_interval e
      ~x:[| Interval.make 0.5 0.9; Interval.make 0.1 0.3 |]
      ~th:[| Interval.make 1. 10. |]
  in
  (* check that pointwise evaluations land inside *)
  List.iter
    (fun (s, i, th) ->
      Alcotest.(check bool) "pointwise inside" true
        (Interval.mem (eval e ~x:[| s; i |] ~th:[| th |]) enc))
    [ (0.5, 0.1, 1.); (0.9, 0.3, 10.); (0.7, 0.2, 5.) ]

let test_interval_ite () =
  (* undecided guard takes the hull of both branches *)
  let e = Ite (var 0, const 1., const 5.) in
  let enc = eval_interval e ~x:[| Interval.make (-1.) 1. |] ~th:[||] in
  Alcotest.(check bool) "hull of branches" true
    (Interval.lo enc = 1. && Interval.hi enc = 5.);
  let decided = eval_interval e ~x:[| Interval.make (-2.) (-1.) |] ~th:[||] in
  check_float "decided guard" 1. (Interval.lo decided);
  check_float "decided guard hi" 1. (Interval.hi decided)

let test_simplify () =
  let e = (const 0. *: var 0) +: (const 1. *: theta 0) -: const 0. in
  Alcotest.(check bool) "collapses" true (simplify e = Theta 0);
  let c = (const 2. *: const 3.) +: const 4. in
  Alcotest.(check bool) "constant folds" true (simplify c = Const 10.);
  (* simplify preserves evaluation on a nontrivial tree *)
  let t = infection 0.1 /: (const 1. +: pow (var 1) 2) in
  let x = [| 0.7; 0.3 |] and th = [| 5. |] in
  check_float "semantics preserved" (eval t ~x ~th) (eval (simplify t) ~x ~th)

let test_affine_detection () =
  Alcotest.(check bool) "infection affine in theta" true
    (is_affine_in_theta (infection 0.1));
  Alcotest.(check bool) "theta^2 not affine" false
    (is_affine_in_theta (pow (theta 0) 2));
  Alcotest.(check bool) "theta*theta not affine" false
    (is_affine_in_theta (theta 0 *: theta 0));
  Alcotest.(check bool) "min over theta not affine" false
    (is_affine_in_theta (min_ (theta 0) (const 1.)));
  Alcotest.(check bool) "theta-free min ok" true
    (is_affine_in_theta (theta 0 *: min_ (var 0) (const 1.)))

let test_multilinear_detection () =
  Alcotest.(check bool) "x*y*th multilinear" true
    (is_multilinear (var 0 *: var 1 *: theta 0));
  Alcotest.(check bool) "x^2 not" false (is_multilinear (pow (var 0) 2));
  Alcotest.(check bool) "x*x not" false (is_multilinear (var 0 *: var 0));
  Alcotest.(check bool) "division not" false (is_multilinear (var 0 /: var 1));
  Alcotest.(check bool) "sum of products ok" true
    (is_multilinear ((var 0 *: theta 0) +: var 1))

let test_leaves () =
  let e = infection 0.1 in
  Alcotest.(check (list int)) "vars" [ 0; 1 ] (vars e);
  Alcotest.(check (list int)) "thetas" [ 0 ] (thetas e)

let test_pp () =
  Alcotest.(check bool) "prints" true
    (String.length (to_string (infection 0.1)) > 0)

(* random expression generator for property tests *)
let rec expr_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun c -> Const c) (float_range (-3.) 3.);
        map (fun i -> Var i) (int_range 0 1);
        return (Theta 0);
      ]
  else begin
    let sub = expr_gen (depth - 1) in
    oneof
      [
        map2 (fun a b -> Add (a, b)) sub sub;
        map2 (fun a b -> Sub (a, b)) sub sub;
        map2 (fun a b -> Mul (a, b)) sub sub;
        map (fun a -> Neg a) sub;
        map2 (fun a b -> Min (a, b)) sub sub;
        map2 (fun a b -> Max (a, b)) sub sub;
        sub;
      ]
  end

let arb_expr = QCheck.make ~print:to_string (expr_gen 4)

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:300 arb_expr
    (fun e ->
      let x = [| 0.37; -1.2 |] and th = [| 2.3 |] in
      let a = eval e ~x ~th and b = eval (simplify e) ~x ~th in
      Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a))

let prop_interval_sound =
  QCheck.Test.make ~name:"interval enclosure sound" ~count:300 arb_expr
    (fun e ->
      let xa = Interval.make (-0.5) 0.8 and xb = Interval.make 0.1 1.2 in
      let ta = Interval.make 0.5 2. in
      let enc = eval_interval e ~x:[| xa; xb |] ~th:[| ta |] in
      List.for_all
        (fun (u, v, w) ->
          let p =
            eval e
              ~x:[| Interval.lo xa +. (u *. Interval.width xa);
                    Interval.lo xb +. (v *. Interval.width xb) |]
              ~th:[| Interval.lo ta +. (w *. Interval.width ta) |]
          in
          Interval.lo enc -. 1e-9 <= p && p <= Interval.hi enc +. 1e-9)
        [ (0., 0., 0.); (1., 1., 1.); (0.5, 0.5, 0.5); (0., 1., 0.5); (1., 0., 0.2) ])

(* the full grammar, Div/Pow/Ite included, for the enclosure property;
   divisions make some draws partial (Division_by_zero from interval
   division, non-finite points), filtered with [assume] *)
let rec full_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun c -> Const c) (float_range (-3.) 3.);
        map (fun i -> Var i) (int_range 0 1);
        return (Theta 0);
      ]
  else begin
    let sub = full_gen (depth - 1) in
    oneof
      [
        map2 (fun a b -> Add (a, b)) sub sub;
        map2 (fun a b -> Sub (a, b)) sub sub;
        map2 (fun a b -> Mul (a, b)) sub sub;
        map2 (fun a b -> Div (a, b)) sub sub;
        map (fun a -> Neg a) sub;
        map2 (fun a n -> Pow (a, n)) sub (int_range 0 3);
        map2 (fun a b -> Min (a, b)) sub sub;
        map2 (fun a b -> Max (a, b)) sub sub;
        map3 (fun g a b -> Ite (g, a, b)) sub sub sub;
        sub;
      ]
  end

(* a random tree, a random box (per-coordinate lo and width) and random
   relative sample positions inside the box *)
let arb_boxed =
  let open QCheck.Gen in
  let iv = pair (float_range (-2.) 2.) (float_range 0. 2.) in
  let point =
    triple (float_range 0. 1.) (float_range 0. 1.) (float_range 0. 1.)
  in
  QCheck.make
    ~print:(fun (e, _, _) -> to_string e)
    (triple (full_gen 4) (triple iv iv iv) (list_size (int_range 1 5) point))

let prop_interval_sound_random =
  QCheck.Test.make ~name:"interval enclosure sound (random boxes/points)"
    ~count:500 arb_boxed (fun (e, ((la, wa), (lb, wb), (lt, wt)), points) ->
      let xa = Interval.make la (la +. wa) in
      let xb = Interval.make lb (lb +. wb) in
      let ta = Interval.make lt (lt +. wt) in
      let enc =
        try eval_interval e ~x:[| xa; xb |] ~th:[| ta |]
        with Division_by_zero -> QCheck.assume false; assert false
      in
      List.for_all
        (fun (u, v, w) ->
          let p =
            eval e
              ~x:[| la +. (u *. wa); lb +. (v *. wb) |]
              ~th:[| lt +. (w *. wt) |]
          in
          (not (Float.is_finite p))
          || (let tol = 1e-6 *. Float.max 1. (Float.abs p) in
              Interval.lo enc -. tol <= p && p <= Interval.hi enc +. tol))
        points)

let prop_simplify_preserves_eval_random =
  QCheck.Test.make ~name:"simplify preserves evaluation (random points)"
    ~count:500 arb_boxed (fun (e, ((la, wa), (lb, wb), (lt, wt)), points) ->
      List.for_all
        (fun (u, v, w) ->
          let x = [| la +. (u *. wa); lb +. (v *. wb) |] in
          let th = [| lt +. (w *. wt) |] in
          let a = eval e ~x ~th and b = eval (simplify e) ~x ~th in
          if not (Float.is_finite a) then true
          else Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a))
        points)

(* smooth expressions (no Min/Max kinks): FD must match tightly *)
let rec smooth_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun c -> Const c) (float_range (-3.) 3.);
        map (fun i -> Var i) (int_range 0 1);
        return (Theta 0);
      ]
  else begin
    let sub = smooth_gen (depth - 1) in
    oneof
      [
        map2 (fun a b -> Add (a, b)) sub sub;
        map2 (fun a b -> Sub (a, b)) sub sub;
        map2 (fun a b -> Mul (a, b)) sub sub;
        map (fun a -> Neg a) sub;
        map (fun a -> Pow (a, 2)) sub;
        sub;
      ]
  end

let prop_diff_matches_fd =
  QCheck.Test.make ~name:"symbolic derivative matches FD (smooth)" ~count:300
    (QCheck.make ~print:to_string (smooth_gen 4)) (fun e ->
      let x = [| 0.43; 0.91 |] and th = [| 1.7 |] in
      let analytic = eval (diff_var e 0) ~x ~th in
      let h = 1e-5 in
      let xp = [| x.(0) +. h; x.(1) |] and xm = [| x.(0) -. h; x.(1) |] in
      let fd = (eval e ~x:xp ~th -. eval e ~x:xm ~th) /. (2. *. h) in
      QCheck.assume (Float.is_finite fd && Float.is_finite analytic);
      Float.abs (analytic -. fd) <= 1e-4 *. Float.max 1. (Float.abs fd))

let suites =
  [
    ( "expr",
      [
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "eval all operators" `Quick test_eval_ops;
        Alcotest.test_case "range validation" `Quick test_eval_out_of_range;
        Alcotest.test_case "polynomial derivative" `Quick test_diff_polynomial;
        Alcotest.test_case "theta derivative" `Quick test_diff_theta;
        Alcotest.test_case "quotient/power rules" `Quick test_diff_quotient_pow;
        Alcotest.test_case "min/max piecewise derivative" `Quick test_diff_minmax_piecewise;
        Alcotest.test_case "derivative vs FD" `Quick test_diff_matches_fd;
        Alcotest.test_case "interval enclosure" `Quick test_interval_enclosure;
        Alcotest.test_case "interval ite" `Quick test_interval_ite;
        Alcotest.test_case "simplify" `Quick test_simplify;
        Alcotest.test_case "affine-in-theta detection" `Quick test_affine_detection;
        Alcotest.test_case "multilinear detection" `Quick test_multilinear_detection;
        Alcotest.test_case "leaves" `Quick test_leaves;
        Alcotest.test_case "pretty printing" `Quick test_pp;
        QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
        QCheck_alcotest.to_alcotest prop_interval_sound;
        QCheck_alcotest.to_alcotest prop_interval_sound_random;
        QCheck_alcotest.to_alcotest prop_simplify_preserves_eval_random;
        QCheck_alcotest.to_alcotest prop_diff_matches_fd;
      ] );
  ]
