open Umf_numerics

let check_close tol msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let square = [ (0., 0.); (1., 0.); (1., 1.); (0., 1.) ]

let test_cross () =
  Alcotest.(check bool) "left turn positive" true
    (Geometry.cross (0., 0.) (1., 0.) (1., 1.) > 0.);
  Alcotest.(check bool) "right turn negative" true
    (Geometry.cross (0., 0.) (1., 0.) (1., -1.) < 0.);
  check_close 1e-12 "collinear" 0. (Geometry.cross (0., 0.) (1., 1.) (2., 2.))

let test_hull_square () =
  let pts = (0.5, 0.5) :: (0.2, 0.7) :: square in
  let hull = Geometry.convex_hull pts in
  Alcotest.(check int) "4 hull points" 4 (List.length hull);
  List.iter
    (fun p ->
      Alcotest.(check bool) "hull point is a corner" true (List.mem p square))
    hull

let test_hull_ccw () =
  let hull = Geometry.convex_hull square in
  (* shoelace signed area positive iff CCW *)
  let signed =
    List.fold_left
      (fun acc ((x1, y1), (x2, y2)) -> acc +. ((x1 *. y2) -. (x2 *. y1)))
      0. (Geometry.edges hull)
  in
  Alcotest.(check bool) "counter-clockwise" true (signed > 0.)

let test_hull_collinear () =
  let hull = Geometry.convex_hull [ (0., 0.); (1., 0.); (2., 0.); (3., 0.) ] in
  Alcotest.(check int) "collinear collapses to 2" 2 (List.length hull)

let test_hull_degenerate () =
  Alcotest.(check int) "empty" 0 (List.length (Geometry.convex_hull []));
  Alcotest.(check int) "single" 1 (List.length (Geometry.convex_hull [ (1., 1.) ]));
  Alcotest.(check int) "duplicates collapse" 1
    (List.length (Geometry.convex_hull [ (1., 1.); (1., 1.) ]))

let test_area () =
  check_close 1e-12 "unit square" 1. (Geometry.polygon_area square);
  check_close 1e-12 "triangle" 0.5
    (Geometry.polygon_area [ (0., 0.); (1., 0.); (0., 1.) ]);
  check_close 1e-12 "degenerate" 0. (Geometry.polygon_area [ (0., 0.); (1., 0.) ])

let test_point_in_polygon () =
  Alcotest.(check bool) "inside" true
    (Geometry.point_in_convex_polygon (0.5, 0.5) square);
  Alcotest.(check bool) "outside" false
    (Geometry.point_in_convex_polygon (1.5, 0.5) square);
  Alcotest.(check bool) "boundary" true
    (Geometry.point_in_convex_polygon (1., 0.5) square);
  Alcotest.(check bool) "corner" true
    (Geometry.point_in_convex_polygon (0., 0.) square)

let test_outward_normal () =
  (* bottom edge of CCW square: outward normal points down *)
  let nx, ny = Geometry.outward_normal (0., 0.) (1., 0.) in
  check_close 1e-12 "nx" 0. nx;
  check_close 1e-12 "ny" (-1.) ny

let test_edge_midpoints () =
  let mids = Geometry.edge_midpoints square in
  Alcotest.(check int) "4 edges" 4 (List.length mids);
  List.iter
    (fun ((mx, my), (nx, ny)) ->
      (* stepping outward along the normal leaves the square *)
      let out = (mx +. (0.1 *. nx), my +. (0.1 *. ny)) in
      Alcotest.(check bool) "normal points outward" false
        (Geometry.point_in_convex_polygon ~tol:1e-9 out square))
    mids

let test_resample () =
  let pts = Geometry.resample_boundary square 8 in
  Alcotest.(check int) "8 points" 8 (List.length pts);
  List.iter
    (fun p ->
      Alcotest.(check bool) "on boundary" true
        (Geometry.point_in_convex_polygon ~tol:1e-9 p square))
    pts

let test_hausdorff () =
  check_close 1e-12 "identical sets" 0. (Geometry.hausdorff square square);
  let shifted = List.map (fun (x, y) -> (x +. 1., y)) square in
  check_close 1e-12 "shifted square" 1. (Geometry.hausdorff square shifted)

let test_bounding_box () =
  let (xmin, ymin), (xmax, ymax) =
    Geometry.bounding_box [ (1., 2.); (-1., 5.); (3., 0.) ]
  in
  check_close 1e-12 "xmin" (-1.) xmin;
  check_close 1e-12 "ymin" 0. ymin;
  check_close 1e-12 "xmax" 3. xmax;
  check_close 1e-12 "ymax" 5. ymax

let test_centroid () =
  let cx, cy = Geometry.centroid square in
  check_close 1e-12 "cx" 0.5 cx;
  check_close 1e-12 "cy" 0.5 cy

let random_points_gen =
  QCheck.Gen.(
    list_size (int_range 3 30)
      (pair (float_range (-10.) 10.) (float_range (-10.) 10.)))

let prop_hull_contains_all =
  QCheck.Test.make ~name:"hull contains all input points" ~count:200
    (QCheck.make random_points_gen) (fun pts ->
      let hull = Geometry.convex_hull pts in
      List.length hull < 3
      || List.for_all
           (fun p -> Geometry.point_in_convex_polygon ~tol:1e-6 p hull)
           pts)

let prop_hull_idempotent =
  QCheck.Test.make ~name:"hull is idempotent" ~count:200
    (QCheck.make random_points_gen) (fun pts ->
      let h1 = Geometry.convex_hull pts in
      let h2 = Geometry.convex_hull h1 in
      List.sort compare h1 = List.sort compare h2)

let suites =
  [
    ( "geometry",
      [
        Alcotest.test_case "cross product" `Quick test_cross;
        Alcotest.test_case "hull of square" `Quick test_hull_square;
        Alcotest.test_case "hull orientation" `Quick test_hull_ccw;
        Alcotest.test_case "hull collinear" `Quick test_hull_collinear;
        Alcotest.test_case "hull degenerate" `Quick test_hull_degenerate;
        Alcotest.test_case "polygon area" `Quick test_area;
        Alcotest.test_case "point in polygon" `Quick test_point_in_polygon;
        Alcotest.test_case "outward normal" `Quick test_outward_normal;
        Alcotest.test_case "edge midpoints + normals" `Quick test_edge_midpoints;
        Alcotest.test_case "boundary resampling" `Quick test_resample;
        Alcotest.test_case "hausdorff" `Quick test_hausdorff;
        Alcotest.test_case "bounding box" `Quick test_bounding_box;
        Alcotest.test_case "centroid" `Quick test_centroid;
        QCheck_alcotest.to_alcotest prop_hull_contains_all;
        QCheck_alcotest.to_alcotest prop_hull_idempotent;
      ] );
  ]
