open Umf_numerics

let check_close tol msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_bisection () =
  let root = Rootfind.bisection (fun x -> (x *. x) -. 2.) 0. 2. in
  check_close 1e-10 "sqrt 2" (sqrt 2.) root

let test_bisection_endpoint_root () =
  check_close 1e-12 "endpoint" 1. (Rootfind.bisection (fun x -> x -. 1.) 1. 2.)

let test_bisection_no_bracket () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Rootfind: endpoints do not bracket a root") (fun () ->
      ignore (Rootfind.bisection (fun x -> (x *. x) +. 1.) 0. 1.))

let test_brent () =
  let root = Rootfind.brent (fun x -> Float.cos x -. x) 0. 1. in
  check_close 1e-9 "dottie number" 0.7390851332151607 root

let test_brent_cubic () =
  let root = Rootfind.brent (fun x -> ((x +. 3.) *. (x -. 1.)) ** 1. *. (x -. 1.)) (-4.) (0.) in
  check_close 1e-8 "cubic root" (-3.) root

let test_newton () =
  let root = Rootfind.newton (fun x -> (x *. x *. x) -. 8.) 3. in
  check_close 1e-8 "cube root of 8" 2. root

let test_newton_divergence () =
  (* f(x) = x^(1/3) (odd cube root) famously diverges under Newton *)
  let cbrt x = if x >= 0. then x ** (1. /. 3.) else -.((-.x) ** (1. /. 3.)) in
  Alcotest.(check bool) "diverges or fails" true
    (try
       let r = Rootfind.newton ~max_iter:50 cbrt 1. in
       Float.abs r < 1e-6
     with Failure _ -> true)

let prop_brent_finds_planted_root =
  let gen = QCheck.Gen.(float_range (-5.) 5.) in
  QCheck.Test.make ~name:"brent finds planted root" ~count:100 (QCheck.make gen)
    (fun r ->
      let f x = (x -. r) *. ((x *. x) +. 1.) in
      let root = Rootfind.brent f (-10.) 10. in
      Float.abs (root -. r) < 1e-7)

let suites =
  [
    ( "rootfind",
      [
        Alcotest.test_case "bisection" `Quick test_bisection;
        Alcotest.test_case "bisection endpoint" `Quick test_bisection_endpoint_root;
        Alcotest.test_case "bracket validation" `Quick test_bisection_no_bracket;
        Alcotest.test_case "brent" `Quick test_brent;
        Alcotest.test_case "brent repeated root region" `Quick test_brent_cubic;
        Alcotest.test_case "newton" `Quick test_newton;
        Alcotest.test_case "newton divergence" `Quick test_newton_divergence;
        QCheck_alcotest.to_alcotest prop_brent_finds_planted_root;
      ] );
  ]
