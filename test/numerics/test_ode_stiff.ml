open Umf_numerics

let check_close tol msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let decay lambda _t y = Vec.scale (-.lambda) y

let test_backward_euler_accuracy () =
  let y =
    Ode_stiff.integrate_to ~method_:`BackwardEuler (decay 1.) ~t0:0.
      ~y0:[| 1. |] ~t1:1. ~dt:1e-3
  in
  check_close 1e-3 "exp(-1)" (Float.exp (-1.)) y.(0)

let test_trapezoidal_second_order () =
  let err dt =
    let y =
      Ode_stiff.integrate_to ~method_:`Trapezoidal (decay 1.) ~t0:0.
        ~y0:[| 1. |] ~t1:1. ~dt
    in
    Float.abs (y.(0) -. Float.exp (-1.))
  in
  let e1 = err 0.1 and e2 = err 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "second order: ratio %.2f" (e1 /. e2))
    true
    (e1 /. e2 > 3.2 && e1 /. e2 < 4.8)

let test_stiff_stability () =
  (* lambda = 1000 with dt = 0.01: explicit RK4 blows up (h*lambda = 10),
     backward Euler stays stable and lands on the equilibrium *)
  let stiff _t y = [| -1000. *. (y.(0) -. 1.) |] in
  let explicit = Ode.integrate_to stiff ~t0:0. ~y0:[| 0. |] ~t1:1. ~dt:0.01 in
  Alcotest.(check bool) "explicit unstable" true
    (Float.abs explicit.(0) > 10. || Float.is_nan explicit.(0));
  let implicit =
    Ode_stiff.integrate_to ~method_:`BackwardEuler stiff ~t0:0. ~y0:[| 0. |]
      ~t1:1. ~dt:0.01
  in
  check_close 1e-6 "implicit finds equilibrium" 1. implicit.(0)

let test_nonlinear_stage () =
  (* logistic: nonlinear implicit equation per step; closed form
     x(t) = 1 / (1 + 4 e^{-t}) from x(0) = 0.2 *)
  let f _t y = [| y.(0) *. (1. -. y.(0)) |] in
  let y =
    Ode_stiff.integrate_to ~method_:`Trapezoidal f ~t0:0. ~y0:[| 0.2 |] ~t1:10.
      ~dt:0.1
  in
  check_close 1e-4 "logistic closed form" (1. /. (1. +. (4. *. Float.exp (-10.)))) y.(0)

let test_matches_explicit_on_smooth () =
  let f _t y = [| y.(1); -.y.(0) |] in
  let a = Ode.integrate_to f ~t0:0. ~y0:[| 1.; 0. |] ~t1:2. ~dt:1e-3 in
  let b =
    Ode_stiff.integrate_to ~method_:`Trapezoidal f ~t0:0. ~y0:[| 1.; 0. |]
      ~t1:2. ~dt:1e-3
  in
  Alcotest.(check bool) "agrees with RK4" true (Vec.approx_equal ~tol:1e-5 a b)

let test_trajectory_form () =
  let traj =
    Ode_stiff.integrate (decay 2.) ~t0:0. ~y0:[| 3. |] ~t1:1. ~dt:0.25
  in
  Alcotest.(check int) "5 nodes" 5 (Ode.Traj.length traj);
  check_close 1e-12 "starts at y0" 3. (Ode.Traj.first traj).(0)

let test_validation () =
  Alcotest.check_raises "dt" (Invalid_argument "Ode_stiff: dt <= 0") (fun () ->
      ignore (Ode_stiff.integrate (decay 1.) ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt:0.))

let suites =
  [
    ( "ode_stiff",
      [
        Alcotest.test_case "backward euler accuracy" `Quick test_backward_euler_accuracy;
        Alcotest.test_case "trapezoidal order" `Quick test_trapezoidal_second_order;
        Alcotest.test_case "stiff stability" `Quick test_stiff_stability;
        Alcotest.test_case "nonlinear stage" `Quick test_nonlinear_stage;
        Alcotest.test_case "matches explicit (smooth)" `Quick test_matches_explicit_on_smooth;
        Alcotest.test_case "trajectory form" `Quick test_trajectory_form;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
