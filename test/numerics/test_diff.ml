open Umf_numerics

let check_close tol msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let test_derivative () =
  check_close 1e-7 "d/dx sin at 0" 1. (Diff.derivative Float.sin 0.);
  check_close 1e-6 "d/dx x^2 at 3" 6. (Diff.derivative (fun x -> x *. x) 3.)

let test_gradient () =
  let f v = (v.(0) *. v.(0)) +. (3. *. v.(1)) in
  let g = Diff.gradient f [| 2.; 5. |] in
  check_close 1e-5 "df/dx" 4. g.(0);
  check_close 1e-5 "df/dy" 3. g.(1)

let test_jacobian () =
  let f v = [| v.(0) *. v.(1); v.(0) +. v.(1); Float.sin v.(0) |] in
  let j = Diff.jacobian f [| 1.; 2. |] in
  Alcotest.(check int) "rows" 3 (Mat.rows j);
  Alcotest.(check int) "cols" 2 (Mat.cols j);
  check_close 1e-5 "j00" 2. (Mat.get j 0 0);
  check_close 1e-5 "j01" 1. (Mat.get j 0 1);
  check_close 1e-5 "j10" 1. (Mat.get j 1 0);
  check_close 1e-5 "j20" (Float.cos 1.) (Mat.get j 2 0)

let test_jacobian_tv () =
  let f v = [| v.(0) *. v.(1); v.(0) +. v.(1) |] in
  let x = [| 1.; 2. |] and p = [| 0.5; -1. |] in
  let jtv = Diff.jacobian_tv f x p in
  let j = Diff.jacobian f x in
  let expected = Mat.tmulv j p in
  Alcotest.(check bool) "matches explicit Jt p" true
    (Vec.approx_equal ~tol:1e-5 expected jtv)

let prop_gradient_linear_exact =
  let gen = QCheck.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.)) in
  QCheck.Test.make ~name:"gradient exact for linear maps" ~count:100
    (QCheck.make gen) (fun (a, b) ->
      let f v = (a *. v.(0)) +. (b *. v.(1)) in
      let g = Diff.gradient f [| 0.3; -0.7 |] in
      Float.abs (g.(0) -. a) < 1e-6 && Float.abs (g.(1) -. b) < 1e-6)

let suites =
  [
    ( "diff",
      [
        Alcotest.test_case "scalar derivative" `Quick test_derivative;
        Alcotest.test_case "gradient" `Quick test_gradient;
        Alcotest.test_case "jacobian" `Quick test_jacobian;
        Alcotest.test_case "jacobian transpose-vector" `Quick test_jacobian_tv;
        QCheck_alcotest.to_alcotest prop_gradient_linear_exact;
      ] );
  ]
