open Umf_numerics

let check_float = Alcotest.(check (float 1e-9))

let test_mean_var () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_float "variance" (32. /. 7.) (Stats.variance xs);
  check_float "std" (sqrt (32. /. 7.)) (Stats.std xs)

let test_empty_mean () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

let test_quantiles () =
  let xs = [| 3.; 1.; 2.; 4. |] in
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 4. (Stats.quantile xs 1.);
  check_float "median" 2.5 (Stats.median xs);
  check_float "q25" 1.75 (Stats.quantile xs 0.25)

let test_quantile_invalid () =
  Alcotest.check_raises "q > 1" (Invalid_argument "Stats.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.quantile [| 1. |] 1.5))

let test_histogram () =
  let xs = [| 0.1; 0.2; 0.6; 0.9; -5.; 7. |] in
  let h = Stats.histogram ~lo:0. ~hi:1. ~bins:2 xs in
  Alcotest.(check (array int)) "bins" [| 3; 3 |] h

let test_running () =
  let acc = Stats.Running.create () in
  List.iter (Stats.Running.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Running.count acc);
  check_float "mean" 5. (Stats.Running.mean acc);
  check_float "variance" (32. /. 7.) (Stats.Running.variance acc);
  check_float "min" 2. (Stats.Running.min acc);
  check_float "max" 9. (Stats.Running.max acc)

let test_covariance () =
  let xs = [| 1.; 2.; 3. |] and ys = [| 2.; 4.; 6. |] in
  check_float "cov" 2. (Stats.covariance xs ys);
  check_float "corr" 1. (Stats.correlation xs ys);
  let zs = [| 6.; 4.; 2. |] in
  check_float "anticorr" (-1.) (Stats.correlation xs zs)

let test_ci () =
  let xs = Array.make 100 3. in
  let lo, hi = Stats.confidence_interval_95 xs in
  check_float "degenerate ci lo" 3. lo;
  check_float "degenerate ci hi" 3. hi

let prop_running_matches_batch =
  let gen = QCheck.Gen.(list_size (int_range 2 50) (float_range (-10.) 10.)) in
  QCheck.Test.make ~name:"running matches batch stats" ~count:200
    (QCheck.make gen) (fun xs ->
      let arr = Array.of_list xs in
      let acc = Stats.Running.create () in
      Array.iter (Stats.Running.add acc) arr;
      Float.abs (Stats.Running.mean acc -. Stats.mean arr) < 1e-9
      && Float.abs (Stats.Running.variance acc -. Stats.variance arr) < 1e-7)

let prop_quantile_monotone =
  let gen = QCheck.Gen.(list_size (int_range 1 50) (float_range (-10.) 10.)) in
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200 (QCheck.make gen)
    (fun xs ->
      let arr = Array.of_list xs in
      Stats.quantile arr 0.2 <= Stats.quantile arr 0.8 +. 1e-12)

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "mean/variance/std" `Quick test_mean_var;
        Alcotest.test_case "empty mean raises" `Quick test_empty_mean;
        Alcotest.test_case "quantiles" `Quick test_quantiles;
        Alcotest.test_case "quantile validation" `Quick test_quantile_invalid;
        Alcotest.test_case "histogram with clamping" `Quick test_histogram;
        Alcotest.test_case "running accumulator" `Quick test_running;
        Alcotest.test_case "covariance/correlation" `Quick test_covariance;
        Alcotest.test_case "confidence interval" `Quick test_ci;
        QCheck_alcotest.to_alcotest prop_running_matches_batch;
        QCheck_alcotest.to_alcotest prop_quantile_monotone;
      ] );
  ]
