open Umf_numerics

let check_float = Alcotest.(check (float 1e-12))

let check_vec msg expected actual =
  Alcotest.(check bool) msg true (Vec.approx_equal ~tol:1e-12 expected actual)

let test_create () =
  let v = Vec.create 3 2.5 in
  check_float "filled" 2.5 (Vec.get v 1);
  Alcotest.(check int) "dim" 3 (Vec.dim v)

let test_zeros () =
  check_float "zero" 0. (Vec.sum (Vec.zeros 5))

let test_add_sub () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b)

let test_dim_mismatch () =
  Alcotest.check_raises "add mismatch" (Invalid_argument "Vec: dimension mismatch")
    (fun () -> ignore (Vec.add [| 1. |] [| 1.; 2. |]))

let test_scale_axpy () =
  let a = [| 1.; -2. |] in
  check_vec "scale" [| 3.; -6. |] (Vec.scale 3. a);
  check_vec "axpy" [| 3.; 0. |] (Vec.axpy 2. a [| 1.; 4. |]);
  let y = [| 1.; 4. |] in
  Vec.axpy_in_place 2. a y;
  check_vec "axpy_in_place" [| 3.; 0. |] y

let test_dot_norms () =
  let a = [| 3.; 4. |] in
  check_float "dot" 25. (Vec.dot a a);
  check_float "norm2" 5. (Vec.norm2 a);
  check_float "norm1" 7. (Vec.norm1 a);
  check_float "norm_inf" 4. (Vec.norm_inf a);
  check_float "dist_inf" 2. (Vec.dist_inf a [| 1.; 2. |])

let test_elementwise () =
  let a = [| 1.; 5.; 3. |] and b = [| 2.; 4.; 3. |] in
  check_vec "cmin" [| 1.; 4.; 3. |] (Vec.cmin a b);
  check_vec "cmax" [| 2.; 5.; 3. |] (Vec.cmax a b);
  check_vec "mul" [| 2.; 20.; 9. |] (Vec.mul a b)

let test_minmax () =
  let a = [| 3.; -1.; 7.; 0. |] in
  check_float "min" (-1.) (Vec.min_elt a);
  check_float "max" 7. (Vec.max_elt a);
  Alcotest.(check int) "argmin" 1 (Vec.argmin a);
  Alcotest.(check int) "argmax" 2 (Vec.argmax a)

let test_clamp () =
  let lo = [| 0.; 0. |] and hi = [| 1.; 1. |] in
  check_vec "clamp" [| 0.; 1. |] (Vec.clamp ~lo ~hi [| -0.5; 2. |])

let test_lerp () =
  check_vec "lerp mid" [| 1.5; 3. |] (Vec.lerp [| 1.; 2. |] [| 2.; 4. |] 0.5);
  check_vec "lerp 0" [| 1.; 2. |] (Vec.lerp [| 1.; 2. |] [| 2.; 4. |] 0.);
  check_vec "lerp 1" [| 2.; 4. |] (Vec.lerp [| 1.; 2. |] [| 2.; 4. |] 1.)

let test_le () =
  Alcotest.(check bool) "le true" true (Vec.le [| 1.; 2. |] [| 1.; 3. |]);
  Alcotest.(check bool) "le false" false (Vec.le [| 1.; 4. |] [| 1.; 3. |])

let test_linspace () =
  let v = Vec.linspace 0. 1. 5 in
  check_vec "linspace" [| 0.; 0.25; 0.5; 0.75; 1. |] v

let test_stats () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check_float "sum" 10. (Vec.sum a);
  check_float "mean" 2.5 (Vec.mean a)

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Vec.mean [||]))

(* properties *)
let vec_gen =
  QCheck.Gen.(
    list_size (int_range 1 8) (float_range (-100.) 100.) >|= Array.of_list)

let arb_vec = QCheck.make ~print:Vec.to_string vec_gen

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:200
    (QCheck.pair arb_vec arb_vec) (fun (a, b) ->
      QCheck.assume (Vec.dim a = Vec.dim b);
      Vec.approx_equal (Vec.add a b) (Vec.add b a))

let prop_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    (QCheck.pair arb_vec arb_vec) (fun (a, b) ->
      QCheck.assume (Vec.dim a = Vec.dim b);
      Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let prop_cauchy_schwarz =
  QCheck.Test.make ~name:"Cauchy-Schwarz" ~count:200
    (QCheck.pair arb_vec arb_vec) (fun (a, b) ->
      QCheck.assume (Vec.dim a = Vec.dim b);
      Float.abs (Vec.dot a b) <= (Vec.norm2 a *. Vec.norm2 b) +. 1e-6)

let prop_clamp_in_box =
  QCheck.Test.make ~name:"clamp lands in box" ~count:200 arb_vec (fun v ->
      let lo = Vec.create (Vec.dim v) (-1.) and hi = Vec.create (Vec.dim v) 1. in
      let c = Vec.clamp ~lo ~hi v in
      Vec.le lo c && Vec.le c hi)

let suites =
  [
    ( "vec",
      [
        Alcotest.test_case "create" `Quick test_create;
        Alcotest.test_case "zeros" `Quick test_zeros;
        Alcotest.test_case "add/sub" `Quick test_add_sub;
        Alcotest.test_case "dimension mismatch" `Quick test_dim_mismatch;
        Alcotest.test_case "scale/axpy" `Quick test_scale_axpy;
        Alcotest.test_case "dot and norms" `Quick test_dot_norms;
        Alcotest.test_case "elementwise" `Quick test_elementwise;
        Alcotest.test_case "min/max/arg" `Quick test_minmax;
        Alcotest.test_case "clamp" `Quick test_clamp;
        Alcotest.test_case "lerp" `Quick test_lerp;
        Alcotest.test_case "le" `Quick test_le;
        Alcotest.test_case "linspace" `Quick test_linspace;
        Alcotest.test_case "sum/mean" `Quick test_stats;
        Alcotest.test_case "mean of empty raises" `Quick test_mean_empty;
        QCheck_alcotest.to_alcotest prop_add_comm;
        QCheck_alcotest.to_alcotest prop_triangle;
        QCheck_alcotest.to_alcotest prop_cauchy_schwarz;
        QCheck_alcotest.to_alcotest prop_clamp_in_box;
      ] );
  ]
