open Umf_numerics

let check_close tol msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* dy/dt = -y, y(0) = 1: y(t) = exp(-t) *)
let decay _t y = Vec.scale (-1.) y

(* harmonic oscillator: x'' = -x as a 2-d system *)
let oscillator _t y = [| y.(1); -.y.(0) |]

let test_euler_order () =
  (* halving dt should roughly halve the global Euler error *)
  let err dt =
    let y = Ode.integrate_to ~method_:`Euler decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt in
    Float.abs (y.(0) -. Float.exp (-1.))
  in
  let e1 = err 0.01 and e2 = err 0.005 in
  Alcotest.(check bool) "first order" true (e1 /. e2 > 1.6 && e1 /. e2 < 2.4)

let test_rk4_accuracy () =
  let y = Ode.integrate_to decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt:0.01 in
  check_close 1e-9 "exp(-1)" (Float.exp (-1.)) y.(0)

let test_rk4_order () =
  let err dt =
    let y = Ode.integrate_to decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt in
    Float.abs (y.(0) -. Float.exp (-1.))
  in
  let e1 = err 0.1 and e2 = err 0.05 in
  Alcotest.(check bool) "fourth order" true (e1 /. e2 > 12. && e1 /. e2 < 20.)

let test_oscillator_energy () =
  let y = Ode.integrate_to oscillator ~t0:0. ~y0:[| 1.; 0. |] ~t1:(2. *. Float.pi) ~dt:0.001 in
  check_close 1e-6 "back to start x" 1. y.(0);
  check_close 1e-6 "back to start v" 0. y.(1)

let test_integrate_traj () =
  let traj = Ode.integrate decay ~t0:0. ~y0:[| 1. |] ~t1:2. ~dt:0.1 in
  check_close 1e-12 "starts at t0" 0. (Ode.Traj.t0 traj);
  check_close 1e-9 "ends at t1" 2. (Ode.Traj.t1 traj);
  check_close 1e-6 "final value" (Float.exp (-2.)) (Ode.Traj.last traj).(0);
  (* interpolation between stored nodes *)
  let mid = Ode.Traj.at traj 1.0 in
  check_close 1e-4 "interpolated" (Float.exp (-1.)) mid.(0)

let test_traj_clamping () =
  let traj = Ode.integrate decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt:0.1 in
  let before = Ode.Traj.at traj (-5.) and after = Ode.Traj.at traj 10. in
  check_close 1e-12 "clamp low" 1. before.(0);
  check_close 1e-12 "clamp high" (Ode.Traj.last traj).(0) after.(0)

let test_traj_component_sample () =
  let traj = Ode.integrate oscillator ~t0:0. ~y0:[| 1.; 0. |] ~t1:1. ~dt:0.1 in
  let xs = Ode.Traj.component traj 0 in
  Alcotest.(check int) "component length" (Ode.Traj.length traj) (Array.length xs);
  let samples = Ode.Traj.sample traj [| 0.; 0.5; 1. |] in
  Alcotest.(check int) "sample count" 3 (Array.length samples)

let test_traj_map () =
  let traj = Ode.integrate decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt:0.1 in
  let doubled = Ode.Traj.map (Vec.scale 2.) traj in
  check_close 1e-12 "map scales states" (2. *. (Ode.Traj.last traj).(0))
    (Ode.Traj.last doubled).(0);
  check_close 1e-12 "times preserved" (Ode.Traj.t1 traj) (Ode.Traj.t1 doubled)

let test_traj_validation () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Traj.of_arrays: times not strictly increasing") (fun () ->
      ignore (Ode.Traj.of_arrays [| 0.; 0. |] [| [| 1. |]; [| 2. |] |]))

let test_adaptive_accuracy () =
  let traj = Ode.integrate_adaptive ~rtol:1e-9 ~atol:1e-12 decay ~t0:0. ~y0:[| 1. |] ~t1:3. in
  check_close 1e-8 "adaptive exp(-3)" (Float.exp (-3.)) (Ode.Traj.last traj).(0)

let test_adaptive_stiffish () =
  (* fast transient then slow decay; adaptive must take small steps early *)
  let f _t y = [| -50. *. (y.(0) -. Float.cos y.(1)); 0.1 |] in
  let traj = Ode.integrate_adaptive ~rtol:1e-6 f ~t0:0. ~y0:[| 0.; 0. |] ~t1:1. in
  Alcotest.(check bool) "completes" true (Ode.Traj.length traj > 10)

let test_adaptive_zero_span () =
  let traj = Ode.integrate_adaptive decay ~t0:1. ~y0:[| 2. |] ~t1:1. in
  Alcotest.(check int) "single point" 1 (Ode.Traj.length traj);
  check_close 1e-12 "initial state" 2. (Ode.Traj.first traj).(0)

let test_invalid_span () =
  Alcotest.check_raises "t1 < t0" (Invalid_argument "Ode: t1 < t0") (fun () ->
      ignore (Ode.integrate decay ~t0:1. ~y0:[| 1. |] ~t1:0. ~dt:0.1))

let test_fixed_point () =
  (* logistic: equilibrium at 1 from x0 = 0.2 *)
  let f _t y = [| y.(0) *. (1. -. y.(0)) |] in
  let eq = Ode.fixed_point ~tol:1e-10 f [| 0.2 |] in
  check_close 1e-6 "logistic equilibrium" 1. eq.(0)

let test_fixed_point_failure () =
  (* pure rotation never settles *)
  Alcotest.check_raises "no equilibrium"
    (Failure "Ode.fixed_point: no equilibrium reached") (fun () ->
      ignore (Ode.fixed_point ~max_time:5. oscillator [| 1.; 0. |]))

let prop_rk4_linear_exact =
  (* RK4 integrates polynomials of degree <= 3 in t essentially exactly *)
  QCheck.Test.make ~name:"rk4 exact on cubic rhs" ~count:50
    (QCheck.make QCheck.Gen.(float_range (-2.) 2.))
    (fun a ->
      let f t _y = [| a *. t *. t |] in
      let y = Ode.integrate_to f ~t0:0. ~y0:[| 0. |] ~t1:1. ~dt:0.25 in
      Float.abs (y.(0) -. (a /. 3.)) < 1e-10)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_check_flags_nan () =
  (* rhs turns NaN halfway through the horizon *)
  let f t _y = [| (if t > 0.5 then Float.nan else 1.) |] in
  (* without the sanitizer the NaN propagates silently to the result *)
  let y = Ode.integrate_to f ~t0:0. ~y0:[| 0. |] ~t1:1. ~dt:0.1 in
  Alcotest.(check bool) "nan propagates unchecked" true (Float.is_nan y.(0));
  (* with it, the failure points at the offending time and step *)
  (match Ode.integrate_to ~check:true f ~t0:0. ~y0:[| 0. |] ~t1:1. ~dt:0.1 with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message localises the NaN: %s" msg)
        true
        (contains_substring msg "non-finite"
        && contains_substring msg "t = " && contains_substring msg "step"));
  match
    Ode.integrate ~check:true f ~t0:0. ~y0:[| 0. |] ~t1:1. ~dt:0.1
  with
  | _ -> Alcotest.fail "expected Failure (integrate)"
  | exception Failure _ -> ()

let test_check_flags_bad_initial_state () =
  let f _t y = Vec.copy y in
  match
    Ode.integrate_to ~check:true f ~t0:0. ~y0:[| Float.infinity |] ~t1:1.
      ~dt:0.1
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool) "flags step 0" true (contains_substring msg "step 0")

let test_check_adaptive () =
  let f t y = [| (if t > 0.3 then Float.nan else y.(0)) |] in
  match Ode.integrate_adaptive ~check:true f ~t0:0. ~y0:[| 1. |] ~t1:1. with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool) "adaptive flags non-finite" true
        (contains_substring msg "non-finite")

let test_check_clean_run_unchanged () =
  let f _t y = [| -.y.(0) |] in
  let a = Ode.integrate_to f ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt:0.05 in
  let b = Ode.integrate_to ~check:true f ~t0:0. ~y0:[| 1. |] ~t1:1. ~dt:0.05 in
  Alcotest.(check (float 0.)) "identical results" a.(0) b.(0)

let suites =
  [
    ( "ode",
      [
        Alcotest.test_case "check flags nan" `Quick test_check_flags_nan;
        Alcotest.test_case "check flags bad initial state" `Quick
          test_check_flags_bad_initial_state;
        Alcotest.test_case "check in adaptive" `Quick test_check_adaptive;
        Alcotest.test_case "check leaves clean runs unchanged" `Quick
          test_check_clean_run_unchanged;
        Alcotest.test_case "euler first order" `Quick test_euler_order;
        Alcotest.test_case "rk4 accuracy" `Quick test_rk4_accuracy;
        Alcotest.test_case "rk4 fourth order" `Quick test_rk4_order;
        Alcotest.test_case "oscillator period" `Quick test_oscillator_energy;
        Alcotest.test_case "trajectory recording" `Quick test_integrate_traj;
        Alcotest.test_case "trajectory clamping" `Quick test_traj_clamping;
        Alcotest.test_case "component/sample" `Quick test_traj_component_sample;
        Alcotest.test_case "trajectory map" `Quick test_traj_map;
        Alcotest.test_case "trajectory validation" `Quick test_traj_validation;
        Alcotest.test_case "adaptive accuracy" `Quick test_adaptive_accuracy;
        Alcotest.test_case "adaptive fast transient" `Quick test_adaptive_stiffish;
        Alcotest.test_case "adaptive zero span" `Quick test_adaptive_zero_span;
        Alcotest.test_case "span validation" `Quick test_invalid_span;
        Alcotest.test_case "fixed point" `Quick test_fixed_point;
        Alcotest.test_case "fixed point failure" `Quick test_fixed_point_failure;
        QCheck_alcotest.to_alcotest prop_rk4_linear_exact;
      ] );
  ]
