open Umf_numerics

let check_close tol msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let quadratic x = (x -. 1.3) ** 2. +. 0.5

let test_golden () =
  let x, fx = Optim.golden_section_min quadratic (-10.) 10. in
  check_close 1e-5 "argmin" 1.3 x;
  check_close 1e-9 "min value" 0.5 fx

let test_brent_min () =
  let x, _ = Optim.brent_min quadratic (-10.) 10. in
  check_close 1e-6 "argmin" 1.3 x

let test_brent_nonsymmetric () =
  let f x = Float.exp x -. (3. *. x) in
  (* minimum at x = ln 3 *)
  let x, _ = Optim.brent_min f 0. 3. in
  check_close 1e-6 "argmin" (Float.log 3.) x

let test_grid_min () =
  let x, _ = Optim.grid_min_1d quadratic 0. 2. 201 in
  check_close 1e-2 "grid argmin" 1.3 x

let box2 lo1 hi1 lo2 hi2 = Optim.Box.make [| lo1; lo2 |] [| hi1; hi2 |]

let test_box_make_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Box.make: lo > hi")
    (fun () -> ignore (Optim.Box.make [| 1. |] [| 0. |]))

let test_box_vertices () =
  let b = box2 0. 1. 2. 3. in
  let vs = Optim.Box.vertices b in
  Alcotest.(check int) "4 vertices" 4 (List.length vs);
  Alcotest.(check bool) "contains (0,2)" true
    (List.exists (fun v -> v = [| 0.; 2. |]) vs);
  Alcotest.(check bool) "contains (1,3)" true
    (List.exists (fun v -> v = [| 1.; 3. |]) vs)

let test_box_vertices_degenerate () =
  let b = Optim.Box.make [| 0.; 5. |] [| 1.; 5. |] in
  Alcotest.(check int) "2 vertices when one axis degenerate" 2
    (List.length (Optim.Box.vertices b))

let test_box_grid () =
  let b = box2 0. 1. 0. 1. in
  Alcotest.(check int) "3x3 grid" 9 (List.length (Optim.Box.sample_grid b 3))

let test_box_mem_clamp () =
  let b = box2 0. 1. 0. 1. in
  Alcotest.(check bool) "mem" true (Optim.Box.mem [| 0.5; 0.5 |] b);
  Alcotest.(check bool) "not mem" false (Optim.Box.mem [| 1.5; 0.5 |] b);
  Alcotest.(check bool) "clamp" true
    (Vec.approx_equal (Optim.Box.clamp b [| 1.5; -0.5 |]) [| 1.; 0. |])

let test_box_sample_uniform () =
  let b = box2 2. 3. (-1.) 1. in
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "uniform sample in box" true
      (Optim.Box.mem (Optim.Box.sample_uniform rng b) b)
  done

let test_minimize_box_quadratic () =
  let f v = ((v.(0) -. 0.4) ** 2.) +. ((v.(1) +. 0.2) ** 2.) in
  let x, fx = Optim.minimize_box ~grid:5 f (box2 (-1.) 1. (-1.) 1.) in
  check_close 5e-2 "x0" 0.4 x.(0);
  check_close 5e-2 "x1" (-0.2) x.(1);
  Alcotest.(check bool) "small min" true (fx < 1e-2)

let test_minimize_box_multilinear () =
  (* multilinear: exact at a vertex *)
  let f v = v.(0) *. v.(1) in
  let _, fx = Optim.minimize_box f (box2 (-1.) 2. (-1.) 3.) in
  check_close 1e-12 "vertex minimum" (-3.) fx

let test_maximize_box () =
  let f v = v.(0) +. (2. *. v.(1)) in
  let _, fx = Optim.maximize_box f (box2 0. 1. 0. 1.) in
  check_close 1e-9 "affine max" 3. fx

let test_argmax_vertices () =
  let f v = (2. *. v.(0)) -. v.(1) in
  let x, fx = Optim.argmax_vertices f (box2 0. 1. 0. 1.) in
  check_close 1e-12 "value" 2. fx;
  Alcotest.(check bool) "at corner (1,0)" true (x = [| 1.; 0. |])

let test_nelder_mead_rosenbrock () =
  let f v =
    let a = 1. -. v.(0) and b = v.(1) -. (v.(0) *. v.(0)) in
    (a *. a) +. (100. *. b *. b)
  in
  let x, fx = Optim.nelder_mead ~max_iter:5000 ~tol:1e-14 f [| -1.2; 1. |] in
  Alcotest.(check bool) "rosenbrock solved" true
    (Float.abs (x.(0) -. 1.) < 1e-3 && Float.abs (x.(1) -. 1.) < 1e-3 && fx < 1e-6)

let prop_minimize_box_below_midpoint =
  (* the reported minimum is never worse than the box midpoint *)
  let gen = QCheck.Gen.(pair (float_range (-2.) 2.) (float_range (-2.) 2.)) in
  QCheck.Test.make ~name:"box min <= f(midpoint)" ~count:50 (QCheck.make gen)
    (fun (a, b) ->
      let f v = Float.sin (a *. v.(0)) +. ((v.(1) -. b) ** 2.) in
      let box = box2 (-3.) 3. (-3.) 3. in
      let _, fx = Optim.minimize_box f box in
      fx <= f (Optim.Box.midpoint box) +. 1e-9)

let suites =
  [
    ( "optim",
      [
        Alcotest.test_case "golden section" `Quick test_golden;
        Alcotest.test_case "brent min" `Quick test_brent_min;
        Alcotest.test_case "brent asymmetric" `Quick test_brent_nonsymmetric;
        Alcotest.test_case "grid min" `Quick test_grid_min;
        Alcotest.test_case "box validation" `Quick test_box_make_invalid;
        Alcotest.test_case "box vertices" `Quick test_box_vertices;
        Alcotest.test_case "degenerate vertices" `Quick test_box_vertices_degenerate;
        Alcotest.test_case "box grid" `Quick test_box_grid;
        Alcotest.test_case "box mem/clamp" `Quick test_box_mem_clamp;
        Alcotest.test_case "box uniform samples" `Quick test_box_sample_uniform;
        Alcotest.test_case "box min quadratic" `Quick test_minimize_box_quadratic;
        Alcotest.test_case "box min multilinear exact" `Quick test_minimize_box_multilinear;
        Alcotest.test_case "box max affine" `Quick test_maximize_box;
        Alcotest.test_case "argmax over vertices" `Quick test_argmax_vertices;
        Alcotest.test_case "nelder-mead rosenbrock" `Quick test_nelder_mead_rosenbrock;
        QCheck_alcotest.to_alcotest prop_minimize_box_below_midpoint;
      ] );
  ]
