let () =
  Alcotest.run "umf_numerics"
    (Test_vec.suites @ Test_mat.suites @ Test_interval.suites @ Test_rng.suites
   @ Test_stats.suites @ Test_ode.suites @ Test_ode_stiff.suites @ Test_optim.suites
   @ Test_rootfind.suites @ Test_geometry.suites @ Test_diff.suites
   @ Test_expr.suites @ Test_tape.suites)
