open Umf_numerics

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.uint64 a = Rng.uint64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.uint64 a = Rng.uint64 b)

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  Alcotest.(check bool) "copy continues identically" true
    (Rng.uint64 a = Rng.uint64 b)

let test_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.uint64 a = Rng.uint64 b)

let test_float_range_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_range () =
  let rng = Rng.create 9 in
  let counts = Array.make 5 0 in
  for _ = 1 to 5000 do
    let i = Rng.int rng 5 in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 5);
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_int_invalid () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Rng.int: need n > 0")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_exponential_mean () =
  let rng = Rng.create 13 in
  let rate = 2.5 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng rate
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true
    (Float.abs (mean -. (1. /. rate)) < 0.01)

let test_exponential_invalid () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Rng.exponential: need rate > 0")
    (fun () -> ignore (Rng.exponential (Rng.create 1) 0.))

let test_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let acc = Stats.Running.create () in
  for _ = 1 to n do
    Stats.Running.add acc (Rng.gaussian rng)
  done;
  Alcotest.(check bool) "mean near 0" true
    (Float.abs (Stats.Running.mean acc) < 0.02);
  Alcotest.(check bool) "std near 1" true
    (Float.abs (Stats.Running.std acc -. 1.) < 0.02)

let test_categorical () =
  let rng = Rng.create 21 in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Rng.categorical rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  Alcotest.(check bool) "ratio near 3" true (Float.abs (ratio -. 3.) < 0.3)

let test_categorical_invalid () =
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.categorical: all weights zero") (fun () ->
      ignore (Rng.categorical (Rng.create 1) [| 0.; 0. |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Rng.categorical: negative weight") (fun () ->
      ignore (Rng.categorical (Rng.create 1) [| 1.; -1. |]))

let test_shuffle_permutation () =
  let rng = Rng.create 23 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "deterministic from seed" `Quick test_determinism;
        Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "float in [0,1)" `Quick test_float_range_bounds;
        Alcotest.test_case "float mean" `Slow test_float_mean;
        Alcotest.test_case "int uniformity" `Slow test_int_range;
        Alcotest.test_case "int validation" `Quick test_int_invalid;
        Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        Alcotest.test_case "exponential validation" `Quick test_exponential_invalid;
        Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
        Alcotest.test_case "categorical frequencies" `Slow test_categorical;
        Alcotest.test_case "categorical validation" `Quick test_categorical_invalid;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      ] );
  ]
