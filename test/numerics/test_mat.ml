open Umf_numerics

let check_float = Alcotest.(check (float 1e-9))

let check_vec msg expected actual =
  Alcotest.(check bool) msg true (Vec.approx_equal ~tol:1e-9 expected actual)

let m22 a b c d = Mat.of_arrays [| [| a; b |]; [| c; d |] |]

let test_identity () =
  let i3 = Mat.identity 3 in
  check_float "diag" 1. (Mat.get i3 1 1);
  check_float "offdiag" 0. (Mat.get i3 0 2)

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows")
    (fun () -> ignore (Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_matmul () =
  let a = m22 1. 2. 3. 4. and b = m22 5. 6. 7. 8. in
  let c = Mat.matmul a b in
  check_float "c00" 19. (Mat.get c 0 0);
  check_float "c01" 22. (Mat.get c 0 1);
  check_float "c10" 43. (Mat.get c 1 0);
  check_float "c11" 50. (Mat.get c 1 1)

let test_mulv () =
  let a = m22 1. 2. 3. 4. in
  check_vec "mulv" [| 5.; 11. |] (Mat.mulv a [| 1.; 2. |]);
  check_vec "tmulv" [| 7.; 10. |] (Mat.tmulv a [| 1.; 2. |])

let test_transpose () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check int) "cols" 2 (Mat.cols t);
  check_float "t21" 6. (Mat.get t 2 1)

let test_solve () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = m22 2. 1. 1. 3. in
  check_vec "solve" [| 1.; 3. |] (Mat.solve a [| 5.; 10. |])

let test_solve_pivoting () =
  (* leading zero forces a row swap *)
  let a = m22 0. 1. 1. 0. in
  check_vec "pivot solve" [| 2.; 1. |] (Mat.solve a [| 1.; 2. |])

let test_solve_singular () =
  let a = m22 1. 2. 2. 4. in
  Alcotest.check_raises "singular" (Failure "Mat.solve: singular matrix")
    (fun () -> ignore (Mat.solve a [| 1.; 2. |]))

let test_solve_many () =
  let a = m22 2. 1. 1. 3. in
  let b = Mat.of_arrays [| [| 5.; 2. |]; [| 10.; 3. |] |] in
  let x = Mat.solve_many a b in
  Alcotest.(check bool) "column solutions" true
    (Mat.approx_equal ~tol:1e-9 (Mat.matmul a x) b)

let test_inverse () =
  let a = m22 4. 7. 2. 6. in
  let inv = Mat.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Mat.approx_equal ~tol:1e-9 (Mat.matmul a inv) (Mat.identity 2))

let test_norms () =
  let a = m22 1. (-2.) 3. 4. in
  check_float "norm_inf" 7. (Mat.norm_inf a);
  check_float "max_abs" 4. (Mat.max_abs a)

let test_row_col () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  check_vec "row" [| 3.; 4. |] (Mat.row a 1);
  check_vec "col" [| 2.; 4.; 6. |] (Mat.col a 1)

let test_add_sub_scale () =
  let a = m22 1. 2. 3. 4. and b = m22 1. 1. 1. 1. in
  Alcotest.(check bool) "add" true
    (Mat.approx_equal (Mat.add a b) (m22 2. 3. 4. 5.));
  Alcotest.(check bool) "sub" true
    (Mat.approx_equal (Mat.sub a b) (m22 0. 1. 2. 3.));
  Alcotest.(check bool) "scale" true
    (Mat.approx_equal (Mat.scale 2. a) (m22 2. 4. 6. 8.))

(* random well-conditioned systems round-trip through solve *)
let prop_solve_roundtrip =
  let gen =
    QCheck.Gen.(
      let dim = int_range 1 6 in
      dim >>= fun n ->
      let entry = float_range (-5.) 5. in
      pair
        (array_size (return (n * n)) entry)
        (array_size (return n) entry))
  in
  QCheck.Test.make ~name:"solve round-trips" ~count:100 (QCheck.make gen)
    (fun (entries, b) ->
      let n = Array.length b in
      let a =
        Mat.init n n (fun i j ->
            (* diagonal dominance keeps the system well-conditioned *)
            entries.((i * n) + j) +. if i = j then 20. else 0.)
      in
      let x = Mat.solve a b in
      Vec.approx_equal ~tol:1e-6 (Mat.mulv a x) b)

let test_null_space_conservation () =
  (* SIR change vectors as rows: infection, recovery, immunity loss;
     the null space is the conservation law S + I + R = const *)
  let a =
    Mat.of_arrays [| [| -1.; 1.; 0. |]; [| 0.; -1.; 1. |]; [| 1.; 0.; -1. |] |]
  in
  let basis = Mat.null_space a in
  Alcotest.(check int) "one conservation law" 1 (Array.length basis);
  let v = basis.(0) in
  check_vec "A v = 0" (Vec.zeros 3) (Mat.mulv a v);
  Alcotest.(check bool) "proportional to (1,1,1)" true
    (Float.abs (v.(0) -. v.(1)) < 1e-9 && Float.abs (v.(1) -. v.(2)) < 1e-9
    && Float.abs v.(0) > 1e-12)

let test_null_space_full_rank () =
  let a = m22 1. 2. 3. 4. in
  Alcotest.(check int) "trivial null space" 0 (Array.length (Mat.null_space a))

let test_null_space_zero_and_rect () =
  Alcotest.(check int) "zero matrix: all of R^3" 3
    (Array.length (Mat.null_space (Mat.create 2 3 0.)));
  (* rectangular: rows (1, 1, 0) and (0, 1, 1) leave one free direction *)
  let a = Mat.of_arrays [| [| 1.; 1.; 0. |]; [| 0.; 1.; 1. |] |] in
  let basis = Mat.null_space a in
  Alcotest.(check int) "one free direction" 1 (Array.length basis);
  check_vec "A v = 0" (Vec.zeros 2) (Mat.mulv a basis.(0))

let suites =
  [
    ( "mat",
      [
        Alcotest.test_case "identity" `Quick test_identity;
        Alcotest.test_case "null space conservation" `Quick
          test_null_space_conservation;
        Alcotest.test_case "null space full rank" `Quick
          test_null_space_full_rank;
        Alcotest.test_case "null space zero/rectangular" `Quick
          test_null_space_zero_and_rect;
        Alcotest.test_case "of_arrays ragged" `Quick test_of_arrays_ragged;
        Alcotest.test_case "matmul" `Quick test_matmul;
        Alcotest.test_case "mulv/tmulv" `Quick test_mulv;
        Alcotest.test_case "transpose" `Quick test_transpose;
        Alcotest.test_case "solve" `Quick test_solve;
        Alcotest.test_case "solve with pivoting" `Quick test_solve_pivoting;
        Alcotest.test_case "singular detection" `Quick test_solve_singular;
        Alcotest.test_case "solve many" `Quick test_solve_many;
        Alcotest.test_case "inverse" `Quick test_inverse;
        Alcotest.test_case "norms" `Quick test_norms;
        Alcotest.test_case "row/col" `Quick test_row_col;
        Alcotest.test_case "add/sub/scale" `Quick test_add_sub_scale;
        QCheck_alcotest.to_alcotest prop_solve_roundtrip;
      ] );
  ]
