(* End-to-end smoke test for the serve daemon: exercises Serve.process
   (batching, caching, deadlines, backpressure) and the serve_fd pipe
   transport without spawning the binary. *)

open Umf
module Json = Obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let parse line =
  match Json.of_string line with
  | Json.Obj _ as j -> j
  | _ | (exception Failure _) -> fail "response is not a JSON object: %s" line

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "response lacks %S: %s" name (Json.to_string j)

let bool_member name j =
  match member name j with
  | Json.Bool b -> b
  | v -> fail "%S is not a bool: %s" name (Json.to_string v)

let str_member name j =
  match member name j with
  | Json.Str s -> s
  | v -> fail "%S is not a string: %s" name (Json.to_string v)

(* the payload a cache hit must reproduce bitwise: the Json printer
   round-trips floats (%.17g), so re-rendered equality of the parsed
   members is byte equality of the original payload *)
let payload line =
  let j = parse line in
  (Json.to_string (member "result" j), Json.to_string (member "cert" j))

let bounds_req ?(id = 1) ?(extra = "") () =
  Printf.sprintf
    "{\"id\":%d,\"op\":\"bounds\",\"model\":\"sir\",\"coord\":1,\
     \"horizon\":2,\"steps\":60,\"times\":[0.0,1.0,2.0]%s}"
    id extra

let with_server ?(queue_limit = 64) f =
  let t =
    Serve.create (Serve.config ~domains:2 ~queue_limit ())
  in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) (fun () -> f t)

(* --- cache: warm hit is bitwise-identical to the cold run ---------- *)

let test_cache_identity () =
  with_server (fun t ->
      let cold =
        match Serve.process t [ bounds_req () ] with
        | [ r ] -> r
        | rs -> fail "expected 1 cold response, got %d" (List.length rs)
      in
      let warm = List.hd (Serve.process t [ bounds_req () ]) in
      if not (bool_member "ok" (parse cold)) then
        fail "cold request failed: %s" cold;
      if bool_member "cached" (parse cold) then
        fail "cold request claims cached: %s" cold;
      if not (bool_member "cached" (parse warm)) then
        fail "second identical request missed the cache: %s" warm;
      if payload cold <> payload warm then
        fail "warm payload differs from cold:\n  %s\n  %s" cold warm;
      (* the cert ledger is present and carries all four budget lines *)
      let cert = member "cert" (parse warm) in
      List.iter
        (fun l ->
          ignore (member l (member "budget" cert)))
        [ "discretisation"; "truncation"; "rounding"; "optimiser" ])

(* --- determinism: same batch on two fresh servers ------------------ *)

let test_batch_determinism () =
  let batch =
    [
      bounds_req ~id:1 ();
      bounds_req ~id:2 ~extra:",\"scenario\":{\"uncertain\":3}" ();
      "{\"id\":3,\"op\":\"hull\",\"model\":\"sir\",\"horizon\":2,\
       \"steps\":60}";
      bounds_req ~id:4 ();
    ]
  in
  let run () = with_server (fun t -> Serve.process t batch) in
  let a = run () and b = run () in
  if List.length a <> List.length batch then
    fail "expected %d responses, got %d" (List.length batch)
      (List.length a);
  List.iteri
    (fun i (ra, rb) ->
      if not (bool_member "ok" (parse ra)) then
        fail "batch request %d failed: %s" i ra;
      if payload ra <> payload rb then
        fail "batch request %d differs across servers:\n  %s\n  %s" i ra rb)
    (List.combine a b);
  (* responses come back in request order *)
  List.iteri
    (fun i r ->
      match member "id" (parse r) with
      | Json.Num n when int_of_float n = i + 1 -> ()
      | v -> fail "response %d has id %s" i (Json.to_string v))
    a

(* --- deadlines: structured error, worker survives ------------------ *)

let test_deadline () =
  with_server (fun t ->
      let expired =
        List.hd
          (Serve.process t
             [ bounds_req ~extra:",\"deadline_ms\":0.001,\"cache\":false" () ])
      in
      let j = parse expired in
      if bool_member "ok" j then fail "expired request succeeded: %s" expired;
      let err = member "error" j in
      if str_member "kind" err <> "deadline_exceeded" then
        fail "expected deadline_exceeded, got: %s" expired;
      (* the partial ledger rides along *)
      ignore (member "budget" (member "cert" j));
      (* the worker that unwound still answers the next request *)
      let next = List.hd (Serve.process t [ bounds_req ~id:9 () ]) in
      if not (bool_member "ok" (parse next)) then
        fail "worker did not survive deadline expiry: %s" next)

(* --- backpressure: queue limit refuses the excess ------------------ *)

let test_overload () =
  with_server ~queue_limit:1 (fun t ->
      let rs =
        Serve.process t
          [ bounds_req ~id:1 (); bounds_req ~id:2 ~extra:",\"tol\":1e-5" ();
            "{\"id\":3,\"op\":\"ping\"}" ]
      in
      match List.map parse rs with
      | [ r1; r2; r3 ] ->
          if not (bool_member "ok" r1) then fail "admitted request failed";
          if bool_member "ok" r2 then fail "excess request was admitted";
          if str_member "kind" (member "error" r2) <> "overloaded" then
            fail "expected overloaded, got: %s" (Json.to_string r2);
          (* service ops don't count against the analysis queue *)
          if not (bool_member "ok" r3) then fail "ping was refused"
      | rs -> fail "expected 3 responses, got %d" (List.length rs))

(* --- transport: pipelined lines over a pipe ------------------------ *)

let test_pipe_transport () =
  with_server (fun t ->
      let req_r, req_w = Unix.pipe ~cloexec:false () in
      let resp_r, resp_w = Unix.pipe ~cloexec:false () in
      let input =
        String.concat "\n"
          [ "{\"id\":\"a\",\"op\":\"ping\"}";
            "{\"id\":\"b\",\"op\":\"models\"}"; bounds_req ~id:7 (); "" ]
      in
      let writer =
        Thread.create
          (fun () ->
            ignore (Unix.write_substring req_w input 0 (String.length input));
            Unix.close req_w)
          ()
      in
      let server =
        Thread.create
          (fun () ->
            Serve.serve_fd t ~input:req_r ~output:resp_w;
            Unix.close resp_w)
          ()
      in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read resp_r chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Thread.join writer;
      Thread.join server;
      Unix.close req_r;
      Unix.close resp_r;
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> String.trim l <> "")
      in
      if List.length lines <> 3 then
        fail "expected 3 response lines over the pipe, got %d"
          (List.length lines);
      List.iter2
        (fun want line ->
          let j = parse line in
          if not (bool_member "ok" j) then fail "pipe response failed: %s" line;
          if Json.to_string (member "id" j) <> want then
            fail "pipe response out of order: %s" line)
        [ "\"a\""; "\"b\""; "7" ] lines;
      (* the models endpoint lists the registry *)
      match member "result" (parse (List.nth lines 1)) with
      | Json.Obj _ | Json.Arr _ -> ()
      | v -> fail "models result malformed: %s" (Json.to_string v))

let () =
  test_cache_identity ();
  test_batch_determinism ();
  test_deadline ();
  test_overload ();
  test_pipe_transport ();
  print_endline
    "serve-smoke OK (cache identity, batch determinism, deadline, \
     backpressure, pipe transport)"
