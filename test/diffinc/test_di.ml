open Umf_numerics
open Umf_diffinc

(* 1-D controlled decay: f(x, th) = th - x, th in [1, 2] *)
let decay_di () =
  Di.make ~dim:1
    ~theta:(Optim.Box.make [| 1. |] [| 2. |])
    (fun x th -> [| th.(0) -. x.(0) |])

let test_make_validation () =
  Alcotest.check_raises "dim 0" (Invalid_argument "Di.make: need dim > 0")
    (fun () ->
      ignore (Di.make ~dim:0 ~theta:(Optim.Box.make [||] [||]) (fun _ _ -> [||])))

let test_integrate_constant () =
  let di = decay_di () in
  (* x(t) -> th as t -> inf *)
  let traj = Di.integrate_constant di ~theta:[| 1.5 |] ~x0:[| 0. |] ~horizon:20. ~dt:0.01 in
  Alcotest.(check (float 1e-6)) "converges to theta" 1.5 (Ode.Traj.last traj).(0)

let test_integrate_control_clamps () =
  let di = decay_di () in
  (* a control outside the box must be clamped into [1,2] *)
  let traj =
    Di.integrate_control di
      ~control:(fun _t _x -> [| 100. |])
      ~x0:[| 0. |] ~horizon:20. ~dt:0.01
  in
  Alcotest.(check (float 1e-6)) "clamped to theta_max" 2. (Ode.Traj.last traj).(0)

let test_of_population () =
  let tr name change rate = { Umf_meanfield.Population.name; change; rate } in
  let m =
    Umf_meanfield.Population.make ~name:"bd" ~var_names:[| "X" |]
      ~theta_names:[| "th" |]
      ~theta:(Optim.Box.make [| 1. |] [| 2. |])
      [
        tr "birth" [| 1. |] (fun x th -> th.(0) *. (1. -. x.(0)));
        tr "death" [| -1. |] (fun x _ -> x.(0));
      ]
  in
  let di = Di.of_population m in
  Alcotest.(check int) "dim" 1 di.Di.dim;
  let f = di.Di.drift [| 0.25 |] [| 2. |] in
  Alcotest.(check (float 1e-12)) "drift matches" ((2. *. 0.75) -. 0.25) f.(0)

let test_costate_fd_vs_analytic () =
  (* f(x, th) = (th x1 x2, x1 - x2): analytic Jacobian known *)
  let drift x th = [| th.(0) *. x.(0) *. x.(1); x.(0) -. x.(1) |] in
  let jac x th =
    Mat.of_arrays
      [| [| th.(0) *. x.(1); th.(0) *. x.(0) |]; [| 1.; -1. |] |]
  in
  let box = Optim.Box.make [| 1. |] [| 2. |] in
  let di_fd = Di.make ~dim:2 ~theta:box drift in
  let di_an = Di.make ~jacobian:jac ~dim:2 ~theta:box drift in
  let x = [| 0.3; 0.7 |] and p = [| 1.; -2. |] and theta = [| 1.5 |] in
  let r_fd = Di.costate_rhs di_fd ~x ~theta ~p in
  let r_an = Di.costate_rhs di_an ~x ~theta ~p in
  Alcotest.(check bool) "fd matches analytic" true
    (Vec.approx_equal ~tol:1e-5 r_an r_fd)

let test_hamiltonian () =
  let di = decay_di () in
  Alcotest.(check (float 1e-12)) "H = f . p" 3.
    (Di.hamiltonian di ~x:[| 0.5 |] ~p:[| 3. |] [| 1.5 |])

let test_argmax_vertices_affine () =
  let di = decay_di () in
  (* H = (th - x) p: p > 0 -> th_max; p < 0 -> th_min *)
  let up = Di.argmax_hamiltonian di ~x:[| 0. |] ~p:[| 1. |] in
  let dn = Di.argmax_hamiltonian di ~x:[| 0. |] ~p:[| -1. |] in
  Alcotest.(check (float 1e-12)) "p>0 -> max" 2. up.(0);
  Alcotest.(check (float 1e-12)) "p<0 -> min" 1. dn.(0)

let test_argmax_box_nonaffine () =
  (* H concave in theta with interior max: f = -(th - 1.3)^2 * x *)
  let di =
    Di.make ~dim:1
      ~theta:(Optim.Box.make [| 0. |] [| 3. |])
      (fun x th -> [| -.((th.(0) -. 1.3) ** 2.) *. x.(0) |])
  in
  let star = Di.argmax_hamiltonian ~opt:(`Box 7) di ~x:[| 1. |] ~p:[| 1. |] in
  Alcotest.(check (float 0.05)) "interior argmax found" 1.3 star.(0)

let suites =
  [
    ( "di",
      [
        Alcotest.test_case "make validation" `Quick test_make_validation;
        Alcotest.test_case "integrate constant" `Quick test_integrate_constant;
        Alcotest.test_case "control clamping" `Quick test_integrate_control_clamps;
        Alcotest.test_case "of_population" `Quick test_of_population;
        Alcotest.test_case "costate fd vs analytic" `Quick test_costate_fd_vs_analytic;
        Alcotest.test_case "hamiltonian" `Quick test_hamiltonian;
        Alcotest.test_case "argmax affine (vertices)" `Quick test_argmax_vertices_affine;
        Alcotest.test_case "argmax non-affine (box)" `Quick test_argmax_box_nonaffine;
      ] );
  ]
