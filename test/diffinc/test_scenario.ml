open Umf_numerics
open Umf_diffinc

(* the clock system: max x2(2) = 1 needs a switch at t = 1, so the
   hierarchy is strict: constant theta gives 0, piecewise-2 achieves
   1 (switch aligned with the grid), imprecise achieves 1 *)
let clock () =
  Di.make ~dim:2
    ~theta:(Optim.Box.make [| -1. |] [| 1. |])
    (fun x th -> [| 1.; th.(0) *. (x.(0) -. 1.) |])

let x0 = [| 0.; 0. |]

let test_uncertain_limited () =
  let _, hi = Scenario.extremal_coord Scenario.Uncertain (clock ()) ~x0 ~coord:1 ~horizon:2. in
  (* constant theta: integral of theta*(t-1) over [0,2] = 0 *)
  Alcotest.(check (float 1e-6)) "constant theta achieves 0" 0. hi

let test_piecewise_2_achieves_optimum () =
  let _, hi =
    Scenario.extremal_coord (Scenario.Piecewise 2) (clock ()) ~x0 ~coord:1 ~horizon:2.
  in
  Alcotest.(check (float 1e-3)) "two pieces reach T^2/4" 1. hi

let test_hierarchy_monotone () =
  let di = clock () in
  let hi s = snd (Scenario.extremal_coord s di ~x0 ~coord:1 ~horizon:2.) in
  let h1 = hi Scenario.Uncertain in
  let h2 = hi (Scenario.Piecewise 2) in
  let h4 = hi (Scenario.Piecewise 4) in
  let hinf = hi Scenario.Imprecise in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.3f <= %.3f <= %.3f <= %.3f" h1 h2 h4 hinf)
    true
    (h1 <= h2 +. 1e-6 && h2 <= h4 +. 1e-3 && h4 <= hinf +. 1e-3)

let test_piecewise_1_equals_uncertain () =
  let di =
    Di.make ~dim:1
      ~theta:(Optim.Box.make [| 1. |] [| 2. |])
      (fun x th -> [| th.(0) -. x.(0) |])
  in
  let u_lo, u_hi =
    Scenario.extremal_coord ~grid:5 Scenario.Uncertain di ~x0:[| 0. |] ~coord:0 ~horizon:1.
  in
  let p_lo, p_hi =
    Scenario.extremal_coord ~grid:5 (Scenario.Piecewise 1) di ~x0:[| 0. |] ~coord:0 ~horizon:1.
  in
  Alcotest.(check (float 1e-3)) "lower equal" u_lo p_lo;
  Alcotest.(check (float 1e-3)) "upper equal" u_hi p_hi

let test_piecewise_within_imprecise () =
  (* SIR-like: piecewise envelopes never exceed the Pontryagin bound *)
  let di =
    Di.make ~dim:2
      ~theta:(Optim.Box.make [| 1. |] [| 10. |])
      (fun x th ->
        let s = x.(0) and i = x.(1) in
        [|
          1. -. (1.1 *. s) -. i -. (th.(0) *. s *. i);
          (0.1 *. s) +. (th.(0) *. s *. i) -. (5. *. i);
        |])
  in
  let x0 = [| 0.7; 0.3 |] in
  let p_lo, p_hi =
    Scenario.extremal_coord ~grid:3 (Scenario.Piecewise 3) di ~x0 ~coord:1 ~horizon:3.
  in
  let i_lo, i_hi =
    Scenario.extremal_coord ~steps:200 Scenario.Imprecise di ~x0 ~coord:1 ~horizon:3.
  in
  Alcotest.(check bool) "piecewise within imprecise" true
    (i_lo <= p_lo +. 1e-3 && p_hi <= i_hi +. 1e-3);
  (* and strictly better than constant theta on the upper side *)
  let _, u_hi = Scenario.extremal_coord ~grid:7 Scenario.Uncertain di ~x0 ~coord:1 ~horizon:3. in
  Alcotest.(check bool)
    (Printf.sprintf "piecewise beats constant: %.4f > %.4f" p_hi u_hi)
    true (p_hi > u_hi +. 0.01)

let test_deterministic_degenerate () =
  let di = clock () in
  (* the known control theta(t) = sign(t - 1) attains exactly T^2/4 *)
  let control t = if t < 1. then [| -1. |] else [| 1. |] in
  let lo, hi =
    Scenario.extremal_coord (Scenario.Deterministic control) di ~x0 ~coord:1
      ~horizon:2.
  in
  Alcotest.(check (float 1e-6)) "lo = hi" lo hi;
  Alcotest.(check (float 1e-3)) "value" 1. hi

let test_rate_limited_interpolates () =
  let di = clock () in
  let hi s = snd (Scenario.extremal_coord ~grid:5 s di ~x0 ~coord:1 ~horizon:2.) in
  let h0 = hi (Scenario.RateLimited 0.) in
  let h_slow = hi (Scenario.RateLimited 0.5) in
  let h_fast = hi (Scenario.RateLimited 50.) in
  let h_imp = hi Scenario.Imprecise in
  (* L = 0 is the constant case (value 0 on the clock system) *)
  Alcotest.(check (float 1e-6)) "L=0 = uncertain" 0. h0;
  Alcotest.(check bool)
    (Printf.sprintf "monotone in L: %.3f <= %.3f <= %.3f" h0 h_slow h_fast)
    true
    (h0 <= h_slow +. 1e-6 && h_slow <= h_fast +. 1e-3);
  (* a slew-limited adversary cannot reach the bang-bang optimum *)
  Alcotest.(check bool)
    (Printf.sprintf "L=0.5 strictly below imprecise: %.3f < %.3f" h_slow h_imp)
    true
    (h_slow < h_imp -. 0.05);
  (* a fast slew rate essentially recovers it *)
  Alcotest.(check bool)
    (Printf.sprintf "L=50 near imprecise: %.3f vs %.3f" h_fast h_imp)
    true
    (h_fast > h_imp -. 0.08)

let test_validation () =
  let di = clock () in
  Alcotest.check_raises "bad k"
    (Invalid_argument "Scenario.extremal_coord: need k >= 1") (fun () ->
      ignore
        (Scenario.extremal_coord (Scenario.Piecewise 0) di ~x0 ~coord:1 ~horizon:1.));
  Alcotest.check_raises "bad coord"
    (Invalid_argument "Scenario.extremal_coord: coordinate out of range")
    (fun () ->
      ignore (Scenario.extremal_coord Scenario.Uncertain di ~x0 ~coord:5 ~horizon:1.))

let suites =
  [
    ( "scenario",
      [
        Alcotest.test_case "uncertain limited" `Quick test_uncertain_limited;
        Alcotest.test_case "piecewise-2 optimal on clock" `Quick test_piecewise_2_achieves_optimum;
        Alcotest.test_case "hierarchy monotone" `Quick test_hierarchy_monotone;
        Alcotest.test_case "piecewise-1 = uncertain" `Quick test_piecewise_1_equals_uncertain;
        Alcotest.test_case "deterministic degenerate" `Quick test_deterministic_degenerate;
        Alcotest.test_case "rate-limited interpolates" `Slow test_rate_limited_interpolates;
        Alcotest.test_case "piecewise within imprecise (SIR)" `Slow test_piecewise_within_imprecise;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
