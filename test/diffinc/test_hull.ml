open Umf_numerics
open Umf_diffinc

let integrator_di () =
  Di.make ~dim:1 ~theta:(Optim.Box.make [| -1. |] [| 1. |]) (fun _x th -> [| th.(0) |])

(* coupled linear system: ẋ1 = -x1 + x2, ẋ2 = -x2 + θ, θ ∈ [1, 2] *)
let coupled_di () =
  Di.make ~dim:2 ~theta:(Optim.Box.make [| 1. |] [| 2. |])
    (fun x th -> [| -.x.(0) +. x.(1); -.x.(1) +. th.(0) |])

let test_integrator_hull_exact () =
  let di = integrator_di () in
  let h = Hull.bounds di ~x0:[| 0. |] ~horizon:2. ~dt:0.01 in
  let lo = Hull.lower_at h 2. and hi = Hull.upper_at h 2. in
  Alcotest.(check (float 1e-6)) "lower -T" (-2.) lo.(0);
  Alcotest.(check (float 1e-6)) "upper +T" 2. hi.(0)

let test_hull_ordered () =
  let di = coupled_di () in
  let h = Hull.bounds di ~x0:[| 0.5; 0.5 |] ~horizon:5. ~dt:0.01 in
  Array.iteri
    (fun i t ->
      ignore t;
      Alcotest.(check bool) "lower <= upper" true (Vec.le h.Hull.lower.(i) h.Hull.upper.(i)))
    h.Hull.times

let test_hull_contains_constant_solutions () =
  let di = coupled_di () in
  let h = Hull.bounds di ~x0:[| 0.5; 0.5 |] ~horizon:4. ~dt:0.01 in
  List.iter
    (fun theta ->
      let traj =
        Di.integrate_constant di ~theta:[| theta |] ~x0:[| 0.5; 0.5 |] ~horizon:4. ~dt:0.01
      in
      List.iter
        (fun t ->
          let x = Ode.Traj.at traj t in
          Alcotest.(check bool)
            (Printf.sprintf "theta=%g inside at t=%g" theta t)
            true
            (Hull.contains ~tol:1e-4 h t (Vec.add x [| 0.; 0. |])))
        [ 0.5; 1.; 2.; 3.9 ])
    [ 1.; 1.3; 1.7; 2. ]

let test_hull_contains_switching_solutions () =
  let di = coupled_di () in
  let h = Hull.bounds di ~x0:[| 0.5; 0.5 |] ~horizon:4. ~dt:0.01 in
  let rng = Rng.create 5 in
  let states = Reach.sample_states di ~x0:[| 0.5; 0.5 |] ~horizon:4. ~n_controls:15 rng in
  List.iter
    (fun x ->
      (* allow integration slack at the boundary *)
      let eps = 1e-6 in
      let lo = Hull.lower_at h 4. and hi = Hull.upper_at h 4. in
      Alcotest.(check bool) "switching solution inside" true
        (Vec.le (Vec.sub lo [| eps; eps |]) x && Vec.le x (Vec.add hi [| eps; eps |])))
    states

let test_width_grows_with_theta_box () =
  let make w =
    Di.make ~dim:1
      ~theta:(Optim.Box.make [| 1. -. w |] [| 1. +. w |])
      (fun x th -> [| th.(0) -. x.(0) |])
  in
  let width w =
    let h = Hull.bounds (make w) ~x0:[| 0. |] ~horizon:5. ~dt:0.01 in
    (Hull.final_width h).(0)
  in
  let w_small = width 0.1 and w_big = width 0.9 in
  Alcotest.(check bool) "wider theta, wider hull" true (w_big > w_small *. 3.)

let test_clip () =
  let di = integrator_di () in
  let clip = Optim.Box.make [| -0.5 |] [| 0.5 |] in
  let h = Hull.bounds ~clip di ~x0:[| 0. |] ~horizon:3. ~dt:0.01 in
  let lo = Hull.lower_at h 3. and hi = Hull.upper_at h 3. in
  Alcotest.(check (float 1e-9)) "clipped below" (-0.5) lo.(0);
  Alcotest.(check (float 1e-9)) "clipped above" 0.5 hi.(0)

let test_zero_horizon () =
  let di = integrator_di () in
  let h = Hull.bounds di ~x0:[| 0.3 |] ~horizon:0. ~dt:0.01 in
  Alcotest.(check (float 1e-12)) "degenerate" 0.3 (Hull.lower_at h 0.).(0);
  Alcotest.(check (float 1e-12)) "width zero" 0. (Hull.final_width h).(0)

let test_validation () =
  let di = integrator_di () in
  Alcotest.check_raises "dt" (Invalid_argument "Hull.bounds: dt <= 0") (fun () ->
      ignore (Hull.bounds di ~x0:[| 0. |] ~horizon:1. ~dt:0.))

(* soundness property on a family of multilinear 2-D systems *)
let prop_hull_sound_multilinear =
  let gen = QCheck.Gen.(pair (float_range 0.2 1.5) (float_range 0.2 1.5)) in
  QCheck.Test.make ~name:"hull contains solutions (multilinear)" ~count:15
    (QCheck.make gen) (fun (a, b) ->
      let di =
        Di.make ~dim:2
          ~theta:(Optim.Box.make [| 0.5 |] [| 1.5 |])
          (fun x th ->
            [|
              (a *. (1. -. x.(0))) -. (th.(0) *. x.(0) *. x.(1));
              (th.(0) *. x.(0) *. x.(1)) -. (b *. x.(1));
            |])
      in
      let x0 = [| 0.6; 0.3 |] in
      let h = Hull.bounds di ~x0 ~horizon:2. ~dt:0.02 in
      List.for_all
        (fun theta ->
          let traj = Di.integrate_constant di ~theta:[| theta |] ~x0 ~horizon:2. ~dt:0.02 in
          List.for_all
            (fun t ->
              let x = Ode.Traj.at traj t in
              let lo = Hull.lower_at h t and hi = Hull.upper_at h t in
              Vec.le (Vec.sub lo [| 1e-6; 1e-6 |]) x
              && Vec.le x (Vec.add hi [| 1e-6; 1e-6 |]))
            [ 0.5; 1.; 1.5; 2. ])
        [ 0.5; 0.8; 1.2; 1.5 ])

let suites =
  [
    ( "hull",
      [
        Alcotest.test_case "integrator exact" `Quick test_integrator_hull_exact;
        Alcotest.test_case "ordering invariant" `Quick test_hull_ordered;
        Alcotest.test_case "contains constant-theta solutions" `Quick test_hull_contains_constant_solutions;
        Alcotest.test_case "contains switching solutions" `Quick test_hull_contains_switching_solutions;
        Alcotest.test_case "width grows with theta" `Quick test_width_grows_with_theta_box;
        Alcotest.test_case "clipping" `Quick test_clip;
        Alcotest.test_case "zero horizon" `Quick test_zero_horizon;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest prop_hull_sound_multilinear;
      ] );
  ]
