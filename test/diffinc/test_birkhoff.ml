open Umf_numerics
open Umf_diffinc

(* decoupled contraction towards (θ, θ): equilibria span the segment
   from (1,1) to (2,2); the Birkhoff centre must contain that segment *)
let segment_di () =
  Di.make ~dim:2 ~theta:(Optim.Box.make [| 1. |] [| 2. |])
    (fun x th -> [| th.(0) -. x.(0); th.(0) -. x.(1) |])

(* independent per-coordinate parameters: equilibria fill [1,2]^2 *)
let square_di () =
  Di.make ~dim:2
    ~theta:(Optim.Box.make [| 1.; 1. |] [| 2.; 2. |])
    (fun x th -> [| th.(0) -. x.(0); th.(1) -. x.(1) |])

let test_contains_extreme_equilibria () =
  let b = Birkhoff.compute (segment_di ()) ~x_start:[| 0.; 0. |] in
  Alcotest.(check bool) "converged" false b.Birkhoff.escaped;
  Alcotest.(check bool) "contains (1,1)" true (Birkhoff.contains b (1.0001, 1.0001));
  Alcotest.(check bool) "contains (2,2)" true (Birkhoff.contains b (1.9999, 1.9999));
  Alcotest.(check bool) "contains mid equilibrium" true (Birkhoff.contains b (1.5, 1.5))

let test_excludes_far_points () =
  let b = Birkhoff.compute (segment_di ()) ~x_start:[| 0.; 0. |] in
  Alcotest.(check bool) "excludes origin" false (Birkhoff.contains b (0., 0.));
  Alcotest.(check bool) "excludes (3,3)" false (Birkhoff.contains b (3., 3.))

let test_square_system_area () =
  let b = Birkhoff.compute (square_di ()) ~x_start:[| 0.; 0. |] in
  (* true Birkhoff centre is the unit square [1,2]^2 of area 1 *)
  Alcotest.(check bool) "area close to 1" true
    (Birkhoff.area b > 0.9 && Birkhoff.area b < 1.15);
  List.iter
    (fun p -> Alcotest.(check bool) "corner included" true (Birkhoff.contains b p))
    [ (1.01, 1.01); (1.99, 1.01); (1.01, 1.99); (1.99, 1.99) ]

let test_no_outward_drift_on_boundary () =
  let di = square_di () in
  let b = Birkhoff.compute di ~x_start:[| 0.; 0. |] in
  (* the defining property: at every boundary point, no parameter choice
     makes the drift point outward (up to tolerance) *)
  let vertices = Optim.Box.vertices di.Di.theta in
  List.iter
    (fun ((mx, my), (nx, ny)) ->
      let worst =
        List.fold_left
          (fun acc th ->
            let f = di.Di.drift [| mx; my |] th in
            Float.max acc ((f.(0) *. nx) +. (f.(1) *. ny)))
          Float.neg_infinity vertices
      in
      Alcotest.(check bool)
        (Printf.sprintf "no escape at (%.2f, %.2f)" mx my)
        true (worst < 0.05))
    (Geometry.edge_midpoints b.Birkhoff.polygon)

let test_polygon_simplified () =
  let b = Birkhoff.compute (square_di ()) ~x_start:[| 0.; 0. |] in
  Alcotest.(check bool) "vertex budget respected" true
    (List.length b.Birkhoff.polygon <= 256)

let test_dim_validation () =
  let di =
    Di.make ~dim:1 ~theta:(Optim.Box.make [| 0. |] [| 1. |]) (fun _ th -> [| th.(0) |])
  in
  Alcotest.check_raises "1-D rejected"
    (Invalid_argument "Birkhoff.compute: system is not 2-D") (fun () ->
      ignore (Birkhoff.compute di ~x_start:[| 0. |]))

let suites =
  [
    ( "birkhoff",
      [
        Alcotest.test_case "contains equilibrium segment" `Quick test_contains_extreme_equilibria;
        Alcotest.test_case "excludes far points" `Quick test_excludes_far_points;
        Alcotest.test_case "square system area" `Quick test_square_system_area;
        Alcotest.test_case "no outward drift on boundary" `Quick test_no_outward_drift_on_boundary;
        Alcotest.test_case "polygon simplified" `Quick test_polygon_simplified;
        Alcotest.test_case "dimension validation" `Quick test_dim_validation;
      ] );
  ]
