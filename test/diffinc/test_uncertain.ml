open Umf_numerics
open Umf_diffinc

let decay_di () =
  Di.make ~dim:1 ~theta:(Optim.Box.make [| 1. |] [| 2. |])
    (fun x th -> [| th.(0) -. x.(0) |])

let test_envelope_closed_form () =
  (* x^θ(t) = θ (1 - e^{-t}) from x0 = 0; envelope = [x^1(t), x^2(t)] *)
  let di = decay_di () in
  let times = [| 0.; 0.5; 1.; 2. |] in
  let lower, upper = Uncertain.transient_envelope di ~x0:[| 0. |] ~times in
  Array.iteri
    (fun i t ->
      let e = 1. -. Float.exp (-.t) in
      Alcotest.(check (float 1e-4)) (Printf.sprintf "lo t=%g" t) e lower.(i).(0);
      Alcotest.(check (float 1e-4)) (Printf.sprintf "hi t=%g" t) (2. *. e) upper.(i).(0))
    times

let test_envelope_ordering () =
  let di = decay_di () in
  let times = Vec.linspace 0. 3. 7 in
  let lower, upper = Uncertain.transient_envelope di ~x0:[| 0.5 |] ~times in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool) "lo <= hi" true (Vec.le lower.(i) upper.(i)))
    times

let test_envelope_within_pontryagin () =
  (* Eq. 12: the uncertain set is included in the imprecise one *)
  let di = decay_di () in
  let times = [| 0.5; 1.5; 3. |] in
  let lower, upper = Uncertain.transient_envelope di ~x0:[| 0.5 |] ~times in
  Array.iteri
    (fun i t ->
      let imp_lo =
        (Pontryagin.solve di ~x0:[| 0.5 |] ~horizon:t ~sense:`Min (`Coord 0)).value
      in
      let imp_hi =
        (Pontryagin.solve di ~x0:[| 0.5 |] ~horizon:t ~sense:`Max (`Coord 0)).value
      in
      Alcotest.(check bool) "imprecise lower <= uncertain lower" true
        (imp_lo <= lower.(i).(0) +. 1e-5);
      Alcotest.(check bool) "uncertain upper <= imprecise upper" true
        (upper.(i).(0) <= imp_hi +. 1e-5))
    times

let test_equilibria () =
  let di = decay_di () in
  let eqs = Uncertain.equilibria ~grid:5 di ~x0:[| 0. |] in
  Alcotest.(check int) "5 equilibria" 5 (List.length eqs);
  (* equilibria of ẋ = θ - x are x = θ, spanning [1, 2] *)
  let values = List.map (fun e -> e.(0)) eqs in
  Alcotest.(check (float 1e-6)) "min eq" 1. (List.fold_left Float.min 10. values);
  Alcotest.(check (float 1e-6)) "max eq" 2. (List.fold_left Float.max 0. values)

let test_extremal_coord () =
  let di = decay_di () in
  let lo, hi = Uncertain.extremal_coord di ~x0:[| 0. |] ~coord:0 ~horizon:1. in
  let e = 1. -. Float.exp (-1.) in
  Alcotest.(check (float 1e-4)) "lo" e lo;
  Alcotest.(check (float 1e-4)) "hi" (2. *. e) hi

let test_extremal_validation () =
  let di = decay_di () in
  Alcotest.check_raises "coord"
    (Invalid_argument "Uncertain.extremal_coord: coordinate out of range")
    (fun () -> ignore (Uncertain.extremal_coord di ~x0:[| 0. |] ~coord:1 ~horizon:1.))

let suites =
  [
    ( "uncertain",
      [
        Alcotest.test_case "envelope closed form" `Quick test_envelope_closed_form;
        Alcotest.test_case "envelope ordering" `Quick test_envelope_ordering;
        Alcotest.test_case "uncertain within imprecise" `Quick test_envelope_within_pontryagin;
        Alcotest.test_case "equilibria" `Quick test_equilibria;
        Alcotest.test_case "extremal coord" `Quick test_extremal_coord;
        Alcotest.test_case "validation" `Quick test_extremal_validation;
      ] );
  ]
