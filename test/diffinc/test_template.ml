open Umf_numerics
open Umf_diffinc

(* 2-D integrator: reach set at T is exactly the square [-T, T]^2 *)
let integrator2 () =
  Di.make ~dim:2
    ~theta:(Optim.Box.make [| -1.; -1. |] [| 1.; 1. |])
    (fun _x th -> [| th.(0); th.(1) |])

let test_directions () =
  let d4 = Template.directions_2d 4 in
  Alcotest.(check int) "4 dirs" 4 (Array.length d4);
  Alcotest.(check (float 1e-9)) "unit" 1. (Vec.norm2 d4.(1));
  let ax = Template.axis_directions 3 in
  Alcotest.(check int) "6 axis dirs" 6 (Array.length ax);
  Alcotest.check_raises "k >= 3"
    (Invalid_argument "Template.directions_2d: need k >= 3") (fun () ->
      ignore (Template.directions_2d 2))

let test_axis_template_is_rectangle () =
  let di = integrator2 () in
  let t =
    Template.compute ~steps:100 di ~x0:[| 0.; 0. |] ~horizon:1.
      ~directions:(Template.axis_directions 2)
  in
  (* support in +/- e_i is T = 1 *)
  Array.iter
    (fun s -> Alcotest.(check (float 1e-6)) "support 1" 1. s)
    t.Template.support;
  Alcotest.(check (float 1e-4)) "square area 4" 4. (Template.area_2d t)

let test_octagon_refines_rectangle () =
  (* the integrator's true reach set IS the square, so diagonal
     directions have support sqrt(2)*... no: support of square [-1,1]^2
     in direction (1,1)/sqrt2 is sqrt 2 -- the octagon template equals
     the square. Use instead the DISC system: dx = theta with
     |theta|_2-ish... With a box theta the reach set is the square, and
     the 8-direction template must recover exactly the square's area *)
  let di = integrator2 () in
  let t8 =
    Template.compute ~steps:100 di ~x0:[| 0.; 0. |] ~horizon:1.
      ~directions:(Template.directions_2d 8)
  in
  Alcotest.(check (float 1e-3)) "8-template recovers square" 4.
    (Template.area_2d t8)

let test_template_refines_on_sir () =
  (* on the SIR-like reach set (not a rectangle), more directions give a
     strictly smaller polygon that still contains the inner Monte-Carlo
     reach cloud *)
  let di =
    Di.make ~dim:2
      ~theta:(Optim.Box.make [| 1. |] [| 10. |])
      (fun x th ->
        let s = x.(0) and i = x.(1) in
        [|
          1. -. (1.1 *. s) -. i -. (th.(0) *. s *. i);
          (0.1 *. s) +. (th.(0) *. s *. i) -. (5. *. i);
        |])
  in
  let x0 = [| 0.7; 0.3 |] in
  let rect =
    Template.compute ~steps:150 di ~x0 ~horizon:2.
      ~directions:(Template.axis_directions 2)
  in
  let oct =
    Template.compute ~steps:150 di ~x0 ~horizon:2.
      ~directions:(Template.directions_2d 12)
  in
  let a_rect = Template.area_2d rect and a_oct = Template.area_2d oct in
  Alcotest.(check bool)
    (Printf.sprintf "refinement shrinks: %.5f < %.5f" a_oct a_rect)
    true
    (a_oct < a_rect *. 0.95);
  (* soundness: genuinely reachable states satisfy the template *)
  let rng = Rng.create 3 in
  let cloud = Reach.sample_states di ~x0 ~horizon:2. ~n_controls:40 rng in
  List.iter
    (fun x ->
      Alcotest.(check bool) "reachable state inside template" true
        (Template.mem ~tol:1e-4 oct x))
    cloud

let test_mem () =
  let t =
    {
      Template.directions = Template.axis_directions 2;
      support = [| 1.; 1.; 1.; 1. |];
    }
  in
  Alcotest.(check bool) "inside" true (Template.mem t [| 0.5; -0.5 |]);
  Alcotest.(check bool) "outside" false (Template.mem t [| 1.5; 0. |]);
  Alcotest.(check bool) "boundary" true (Template.mem t [| 1.; 1. |])

let test_polygon_validation () =
  let t =
    { Template.directions = [| [| 1.; 0.; 0. |] |]; support = [| 1. |] }
  in
  Alcotest.check_raises "3d rejected"
    (Invalid_argument "Template.polygon_2d: directions are not 2-D") (fun () ->
      ignore (Template.polygon_2d t))

let suites =
  [
    ( "template",
      [
        Alcotest.test_case "direction generators" `Quick test_directions;
        Alcotest.test_case "axis template = rectangle" `Quick test_axis_template_is_rectangle;
        Alcotest.test_case "8 directions on a square" `Quick test_octagon_refines_rectangle;
        Alcotest.test_case "refinement on SIR" `Quick test_template_refines_on_sir;
        Alcotest.test_case "membership" `Quick test_mem;
        Alcotest.test_case "polygon validation" `Quick test_polygon_validation;
      ] );
  ]
