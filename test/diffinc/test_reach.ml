open Umf_numerics
open Umf_diffinc

let integrator2_di () =
  Di.make ~dim:2
    ~theta:(Optim.Box.make [| -1.; -1. |] [| 1.; 1. |])
    (fun _x th -> [| th.(0); th.(1) |])

let test_samples_reachable () =
  (* for the 2-D integrator the reach set at T is the box [-T, T]^2 *)
  let di = integrator2_di () in
  let rng = Rng.create 1 in
  let states = Reach.sample_states di ~x0:[| 0.; 0. |] ~horizon:1.5 ~n_controls:50 rng in
  Alcotest.(check int) "count" 50 (List.length states);
  List.iter
    (fun x ->
      Alcotest.(check bool) "inside reach box" true
        (Float.abs x.(0) <= 1.5 +. 1e-9 && Float.abs x.(1) <= 1.5 +. 1e-9))
    states

let test_vertex_bias_hits_corners () =
  (* with full vertex bias and zero switches the extreme corners appear *)
  let di = integrator2_di () in
  let rng = Rng.create 2 in
  let states =
    Reach.sample_states ~switches:0 ~vertex_bias:1. di ~x0:[| 0.; 0. |]
      ~horizon:1. ~n_controls:64 rng
  in
  let corner_hit =
    List.exists (fun x -> Float.abs (Float.abs x.(0) -. 1.) < 1e-6) states
  in
  Alcotest.(check bool) "some corner reached" true corner_hit

let test_hull_2d () =
  let di = integrator2_di () in
  let rng = Rng.create 3 in
  let hull = Reach.hull_2d di ~x0:[| 0.; 0. |] ~horizon:1. ~n_controls:200 rng in
  Alcotest.(check bool) "non-trivial hull" true (List.length hull >= 3);
  (* the sampled hull under-approximates the true reach square [-1,1]^2 *)
  Alcotest.(check bool) "hull inside true reach set" true
    (List.for_all (fun (x, y) -> Float.abs x <= 1. +. 1e-9 && Float.abs y <= 1. +. 1e-9) hull);
  Alcotest.(check bool) "hull has positive area" true
    (Geometry.polygon_area hull > 1.)

let test_dim_validation () =
  let di =
    Di.make ~dim:1 ~theta:(Optim.Box.make [| 0. |] [| 1. |]) (fun _ th -> [| th.(0) |])
  in
  Alcotest.check_raises "not 2d" (Invalid_argument "Reach.hull_2d: system is not 2-D")
    (fun () ->
      ignore (Reach.hull_2d di ~x0:[| 0. |] ~horizon:1. ~n_controls:5 (Rng.create 1)))

let suites =
  [
    ( "reach",
      [
        Alcotest.test_case "samples reachable" `Quick test_samples_reachable;
        Alcotest.test_case "vertex bias reaches corners" `Quick test_vertex_bias_hits_corners;
        Alcotest.test_case "2-D hull" `Quick test_hull_2d;
        Alcotest.test_case "dimension validation" `Quick test_dim_validation;
      ] );
  ]
