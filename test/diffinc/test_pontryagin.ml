open Umf_numerics
open Umf_diffinc

(* ẋ = θ, θ ∈ [-1, 1]: reach set of x(T) is exactly [x0 - T, x0 + T] *)
let integrator_di () =
  Di.make ~dim:1 ~theta:(Optim.Box.make [| -1. |] [| 1. |]) (fun _x th -> [| th.(0) |])

(* ẋ = θ x, θ ∈ [a, b], x0 > 0: max x(T) = x0 e^{bT} *)
let exponential_di a b =
  Di.make ~dim:1 ~theta:(Optim.Box.make [| a |] [| b |])
    (fun x th -> [| th.(0) *. x.(0) |])

(* clock + steered coordinate: ẋ1 = 1, ẋ2 = θ (x1 - T/2), θ ∈ [-1, 1].
   max x2(T): θ = -1 before T/2, +1 after; value = T²/4; switch at T/2 *)
let clock_di () =
  Di.make ~dim:2 ~theta:(Optim.Box.make [| -1. |] [| 1. |])
    (fun x th -> [| 1.; th.(0) *. (x.(0) -. 1.) |])

let test_integrator_bounds () =
  let di = integrator_di () in
  let rmax = Pontryagin.solve di ~x0:[| 0.5 |] ~horizon:2. ~sense:`Max (`Coord 0) in
  let rmin = Pontryagin.solve di ~x0:[| 0.5 |] ~horizon:2. ~sense:`Min (`Coord 0) in
  Alcotest.(check (float 1e-6)) "max" 2.5 rmax.value;
  Alcotest.(check (float 1e-6)) "min" (-1.5) rmin.value;
  Alcotest.(check bool) "max converged" true rmax.converged;
  Alcotest.(check bool) "no switches" true (Pontryagin.switch_times rmax ~coord:0 = [])

let test_exponential_growth () =
  let di = exponential_di 0.2 1.1 in
  let r = Pontryagin.solve di ~x0:[| 1. |] ~horizon:1.5 ~sense:`Max (`Coord 0) in
  Alcotest.(check (float 1e-3)) "max = e^{bT}" (Float.exp (1.1 *. 1.5)) r.value;
  let rmin = Pontryagin.solve di ~x0:[| 1. |] ~horizon:1.5 ~sense:`Min (`Coord 0) in
  Alcotest.(check (float 1e-3)) "min = e^{aT}" (Float.exp (0.2 *. 1.5)) rmin.value

let test_bangbang_switch () =
  (* horizon 2: switch at exactly t = 1, value = 2²/4 = 1 *)
  let di = clock_di () in
  let r = Pontryagin.solve ~steps:500 di ~x0:[| 0.; 0. |] ~horizon:2. ~sense:`Max (`Coord 1) in
  Alcotest.(check (float 1e-3)) "value T^2/4" 1. r.value;
  (match Pontryagin.switch_times r ~coord:0 with
  | [ s ] -> Alcotest.(check (float 0.02)) "switch at T/2" 1. s
  | l ->
      Alcotest.failf "expected one switch, got %d (%s)" (List.length l)
        (String.concat "," (List.map (Printf.sprintf "%.3f") l)))

let test_linear_objective () =
  (* maximize x1 + x2 for ẋ = (θ1, θ2), θ ∈ [0,1]²: value = x0 sum + 2T *)
  let di =
    Di.make ~dim:2 ~theta:(Optim.Box.make [| 0.; 0. |] [| 1.; 1. |])
      (fun _x th -> [| th.(0); th.(1) |])
  in
  let r =
    Pontryagin.solve di ~x0:[| 0.; 0. |] ~horizon:3. ~sense:`Max
      (`Linear [| 1.; 1. |])
  in
  Alcotest.(check (float 1e-6)) "linear objective" 6. r.value

let test_result_trajectory_consistent () =
  let di = integrator_di () in
  let r = Pontryagin.solve ~steps:100 di ~x0:[| 0. |] ~horizon:1. ~sense:`Max (`Coord 0) in
  Alcotest.(check int) "grid size" 101 (Array.length r.times);
  Alcotest.(check int) "states" 101 (Array.length r.x);
  Alcotest.(check int) "controls" 100 (Array.length r.control);
  Alcotest.(check (float 1e-12)) "starts at x0" 0. r.x.(0).(0);
  Alcotest.(check (float 1e-9)) "final state matches value" r.value r.x.(100).(0);
  (* costate of the integrator is constant = c *)
  Alcotest.(check (float 1e-9)) "terminal costate" 1. r.p.(100).(0);
  Alcotest.(check (float 1e-9)) "initial costate" 1. r.p.(0).(0)

let test_min_max_ordering () =
  let di = exponential_di (-0.5) 0.7 in
  let lo = (Pontryagin.solve di ~x0:[| 1. |] ~horizon:1. ~sense:`Min (`Coord 0)).value in
  let hi = (Pontryagin.solve di ~x0:[| 1. |] ~horizon:1. ~sense:`Max (`Coord 0)).value in
  Alcotest.(check bool) "min <= max" true (lo <= hi)

let test_bound_series () =
  let di = integrator_di () in
  let series =
    Pontryagin.bound_series di ~x0:[| 0. |] ~coord:0 ~times:[| 0.; 0.5; 1. |]
  in
  let lo0, hi0 = series.(0) in
  Alcotest.(check (float 1e-12)) "t=0 lo" 0. lo0;
  Alcotest.(check (float 1e-12)) "t=0 hi" 0. hi0;
  let lo1, hi1 = series.(2) in
  Alcotest.(check (float 1e-6)) "t=1 lo" (-1.) lo1;
  Alcotest.(check (float 1e-6)) "t=1 hi" 1. hi1;
  (* envelope of the pure integrator is monotone in T *)
  let lo05, hi05 = series.(1) in
  Alcotest.(check bool) "monotone" true (lo1 <= lo05 && hi05 <= hi1)

let test_validation () =
  let di = integrator_di () in
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Pontryagin.solve: need horizon > 0") (fun () ->
      ignore (Pontryagin.solve di ~x0:[| 0. |] ~horizon:0. ~sense:`Max (`Coord 0)));
  Alcotest.check_raises "bad coord"
    (Invalid_argument "Pontryagin: coordinate out of range") (fun () ->
      ignore (Pontryagin.solve di ~x0:[| 0. |] ~horizon:1. ~sense:`Max (`Coord 3)))

(* soundness: Pontryagin max dominates any random admissible control *)
let prop_dominates_random_controls =
  QCheck.Test.make ~name:"max dominates sampled controls" ~count:20
    (QCheck.make (QCheck.Gen.int_range 0 10_000)) (fun seed ->
      let di = clock_di () in
      let rng = Rng.create seed in
      let hi =
        (Pontryagin.solve ~steps:200 di ~x0:[| 0.; 0. |] ~horizon:2. ~sense:`Max
           (`Coord 1))
          .value
      in
      let states =
        Reach.sample_states di ~x0:[| 0.; 0. |] ~horizon:2. ~n_controls:10 rng
      in
      List.for_all (fun x -> x.(1) <= hi +. 1e-4) states)

let suites =
  [
    ( "pontryagin",
      [
        Alcotest.test_case "pure integrator" `Quick test_integrator_bounds;
        Alcotest.test_case "exponential growth" `Quick test_exponential_growth;
        Alcotest.test_case "bang-bang switch at T/2" `Quick test_bangbang_switch;
        Alcotest.test_case "linear objective" `Quick test_linear_objective;
        Alcotest.test_case "result trajectory consistency" `Quick test_result_trajectory_consistent;
        Alcotest.test_case "min <= max" `Quick test_min_max_ordering;
        Alcotest.test_case "bound series" `Quick test_bound_series;
        Alcotest.test_case "validation" `Quick test_validation;
        QCheck_alcotest.to_alcotest prop_dominates_random_controls;
      ] );
  ]
