open Umf_numerics
open Umf_meanfield
open Umf_diffinc

(* bilinear controlled system, symbolic: f = th x (1 - x) - x *)
let sys () =
  let open Expr in
  let tr name change rate = { Model.name; change; rate } in
  Model.make ~name:"logistic" ~var_names:[| "X" |] ~theta_names:[| "th" |]
    ~theta:(Optim.Box.make [| 2. |] [| 4. |])
    ~x0:[| 0.3 |]
    [
      tr "birth" [| 1. |] (theta 0 *: var 0 *: (const 1. -: var 0));
      tr "death" [| -1. |] (var 0);
    ]

let test_di_has_exact_jacobian () =
  let s = sys () in
  let di = Certified.di s in
  (* costate rhs with the symbolic jacobian vs finite differences *)
  let di_fd = Di.make ~dim:1 ~theta:di.Di.theta di.Di.drift in
  let x = [| 0.3 |] and theta = [| 3. |] and p = [| 1.5 |] in
  let a = Di.costate_rhs di ~x ~theta ~p in
  let b = Di.costate_rhs di_fd ~x ~theta ~p in
  Alcotest.(check bool) "exact vs FD costate" true (Vec.approx_equal ~tol:1e-5 a b);
  (* the exact value: d/dx (th x (1-x) - x) = th (1 - 2x) - 1 *)
  Alcotest.(check (float 1e-12)) "analytic value"
    (-.((3. *. (1. -. 0.6)) -. 1.) *. 1.5)
    a.(0)

let test_certified_hull_contains_sampled_hull () =
  let s = sys () in
  let di = Certified.di s in
  let x0 = [| 0.3 |] in
  let sampled = Hull.bounds di ~x0 ~horizon:2. ~dt:0.01 in
  let certified = Certified.hull_bounds s ~x0 ~horizon:2. ~dt:0.01 in
  (* certified interval bounds enclose the numerically optimised ones *)
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "certified wider at t=%g" t)
        true
        ((Hull.lower_at certified t).(0) <= (Hull.lower_at sampled t).(0) +. 1e-6
        && (Hull.upper_at certified t).(0) >= (Hull.upper_at sampled t).(0) -. 1e-6))
    [ 0.5; 1.; 2. ];
  (* and still sound: every constant-theta solution inside *)
  List.iter
    (fun th ->
      let traj = Di.integrate_constant di ~theta:[| th |] ~x0 ~horizon:2. ~dt:0.01 in
      List.iter
        (fun t ->
          Alcotest.(check bool) "solution within certified hull" true
            (Hull.contains ~tol:1e-5 certified t (Ode.Traj.at traj t)))
        [ 0.5; 1.; 2. ])
    [ 2.; 3.; 4. ]

let test_certified_hull_not_too_loose () =
  let s = sys () in
  let x0 = [| 0.3 |] in
  let certified = Certified.hull_bounds s ~x0 ~horizon:2. ~dt:0.01 in
  let w = (Hull.final_width certified).(0) in
  Alcotest.(check bool)
    (Printf.sprintf "width %.3f below 0.6" w)
    true (w < 0.6)

let test_recommendation () =
  let s = sys () in
  Alcotest.(check bool) "affine: vertices" true
    (Certified.recommended_hamiltonian_opt s = `Vertices);
  let open Expr in
  let quad =
    Model.make ~name:"quad" ~var_names:[| "X" |] ~theta_names:[| "th" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0. |]
      [ { Model.name = "t"; change = [| 1. |]; rate = pow (theta 0) 2 } ]
  in
  Alcotest.(check bool) "non-affine: box" true
    (Certified.recommended_hamiltonian_opt quad = `Box 5)

let test_auto_select_vertices () =
  (* the lint-gated solver must pick vertex enumeration for the
     affine-in-theta SIR drift, record it in the result, and compute
     exactly the same bound as the plain solver with explicit opt *)
  let s = Umf_models.Sir.make Umf_models.Sir.default_params in
  let x0 = Umf_models.Sir.x0 in
  let r =
    Certified.pontryagin ~steps:100 s ~x0 ~horizon:2. ~sense:`Max (`Coord 1)
  in
  Alcotest.(check bool) "sir: auto-selected vertices" true
    (r.Pontryagin.opt = `Vertices);
  let plain =
    Pontryagin.solve ~steps:100 ~opt:`Vertices (Certified.di s) ~x0 ~horizon:2.
      ~sense:`Max (`Coord 1)
  in
  Alcotest.(check (float 1e-12)) "sir: identical bound"
    plain.Pontryagin.value r.Pontryagin.value;
  (* same on the GPS Poisson network (affine in theta despite Div/Ite) *)
  let g = Umf_models.Gps.make_poisson Umf_models.Gps.default_params in
  let gx0 = Umf_models.Gps.x0_poisson in
  let gr =
    Certified.pontryagin ~steps:60 g ~x0:gx0 ~horizon:1. ~sense:`Max (`Coord 0)
  in
  Alcotest.(check bool) "gps: auto-selected vertices" true
    (gr.Pontryagin.opt = `Vertices);
  let gplain =
    Pontryagin.solve ~steps:60 ~opt:`Vertices (Certified.di g) ~x0:gx0
      ~horizon:1. ~sense:`Max (`Coord 0)
  in
  Alcotest.(check (float 1e-12)) "gps: identical bound"
    gplain.Pontryagin.value gr.Pontryagin.value

let test_auto_select_box_when_not_affine () =
  let open Expr in
  let quad =
    Model.make ~name:"quad" ~var_names:[| "X" |] ~theta_names:[| "th" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0. |]
      [ { Model.name = "t"; change = [| 1. |]; rate = pow (theta 0) 2 } ]
  in
  let r =
    Certified.pontryagin ~steps:40 quad ~x0:[| 0. |] ~horizon:0.5 ~sense:`Max
      (`Coord 0)
  in
  Alcotest.(check bool) "non-affine falls back to box search" true
    (match r.Pontryagin.opt with `Box _ -> true | `Vertices -> false)

let suites =
  [
    ( "certified",
      [
        Alcotest.test_case "auto-select vertices (sir, gps)" `Quick
          test_auto_select_vertices;
        Alcotest.test_case "auto-select box (non-affine)" `Quick
          test_auto_select_box_when_not_affine;
        Alcotest.test_case "exact jacobian wiring" `Quick test_di_has_exact_jacobian;
        Alcotest.test_case "certified hull encloses sampled" `Quick test_certified_hull_contains_sampled_hull;
        Alcotest.test_case "certified hull reasonably tight" `Quick test_certified_hull_not_too_loose;
        Alcotest.test_case "hamiltonian opt recommendation" `Quick test_recommendation;
      ] );
  ]
