open Umf_numerics
open Umf_diffinc

(* controlled growth: dx = th x, th in [-0.5, 0.5], x0 = 0.5:
   max x(t) = 0.5 e^{0.5 t} *)
let growth () =
  Di.make ~dim:1
    ~theta:(Optim.Box.make [| -0.5 |] [| 0.5 |])
    (fun x th -> [| th.(0) *. x.(0) |])

let test_safe_case () =
  (* x stays below 0.5 e^1 ~ 0.824 over [0, 2]: bound 1.0 is safe *)
  let di = growth () in
  match Safety.verify di ~x0:[| 0.5 |] ~horizon:2. [ Safety.le ~coord:0 ~dim:1 1.5 ] with
  | Safety.Safe margin ->
      Alcotest.(check bool)
        (Printf.sprintf "positive margin %.3f" margin)
        true
        (margin > 0. && margin < 1.)
  | Safety.Violated _ -> Alcotest.fail "expected safe"

let test_violated_case () =
  let di = growth () in
  match
    Safety.verify di ~x0:[| 0.5 |] ~horizon:2. [ Safety.le ~coord:0 ~dim:1 1.0 ]
  with
  | Safety.Safe _ -> Alcotest.fail "expected violation (max ~ 1.36)"
  | Safety.Violated w ->
      Alcotest.(check bool) "value above bound" true (w.Safety.value > 1.0);
      Alcotest.(check bool) "time within horizon" true
        (w.Safety.time > 0. && w.Safety.time <= 2.);
      (* the witness control must actually reproduce the violation *)
      let traj =
        Di.integrate_control di
          ~control:(fun t _x ->
            let r = w.Safety.control in
            let k = Array.length r.Pontryagin.control in
            let h = r.Pontryagin.times.(1) -. r.Pontryagin.times.(0) in
            let i = Stdlib.min (k - 1) (Stdlib.max 0 (int_of_float (t /. h))) in
            r.Pontryagin.control.(i))
          ~x0:[| 0.5 |] ~horizon:w.Safety.time ~dt:1e-3
      in
      Alcotest.(check (float 5e-3)) "witness reproduces value" w.Safety.value
        (Ode.Traj.last traj).(0)

let test_ge_constraint () =
  (* x can crash to 0.5 e^{-1} ~ 0.184: requiring x >= 0.3 is violated *)
  let di = growth () in
  (match
     Safety.verify di ~x0:[| 0.5 |] ~horizon:2. [ Safety.ge ~coord:0 ~dim:1 0.3 ]
   with
  | Safety.Safe _ -> Alcotest.fail "expected violation"
  | Safety.Violated w ->
      Alcotest.(check bool) "label mentions >=" true
        (String.length w.Safety.constraint_.Safety.label > 0));
  match
    Safety.verify di ~x0:[| 0.5 |] ~horizon:2. [ Safety.ge ~coord:0 ~dim:1 0.1 ]
  with
  | Safety.Safe _ -> ()
  | Safety.Violated _ -> Alcotest.fail "x >= 0.1 should be safe"

let test_initial_violation () =
  let di = growth () in
  match
    Safety.verify di ~x0:[| 0.5 |] ~horizon:1. [ Safety.le ~coord:0 ~dim:1 0.4 ]
  with
  | Safety.Safe _ -> Alcotest.fail "x0 already violates"
  | Safety.Violated w ->
      Alcotest.(check (float 1e-12)) "violation at t=0" 0. w.Safety.time;
      Alcotest.(check (float 1e-12)) "value is x0" 0.5 w.Safety.value

let test_multiple_constraints () =
  let di = growth () in
  let cs =
    [ Safety.le ~coord:0 ~dim:1 2.; Safety.ge ~coord:0 ~dim:1 0.05 ]
  in
  match Safety.verify di ~x0:[| 0.5 |] ~horizon:2. cs with
  | Safety.Safe margin -> Alcotest.(check bool) "both safe" true (margin > 0.)
  | Safety.Violated _ -> Alcotest.fail "both constraints hold"

let test_sir_design_check () =
  (* the sir_epidemic example's conclusion, as a formal verification:
     b = 5 violates xI <= 0.12 over a long horizon, b = 7 satisfies it *)
  let module Sir = Umf_models.Sir in
  let fragile = Sir.di { Sir.default_params with Sir.b = 5. } in
  let robust = Sir.di { Sir.default_params with Sir.b = 7. } in
  let c = [ Safety.le ~label:"infected below 12%" ~coord:1 ~dim:2 0.12 ] in
  (match Safety.verify ~steps:200 ~check_points:10 fragile ~x0:[| 0.9; 0.05 |] ~horizon:25. c with
  | Safety.Safe _ -> Alcotest.fail "b=5 should be unsafe"
  | Safety.Violated w ->
      Alcotest.(check bool) "late-time violation" true (w.Safety.time > 1.));
  match Safety.verify ~steps:200 ~check_points:10 robust ~x0:[| 0.9; 0.05 |] ~horizon:25. c with
  | Safety.Safe margin ->
      Alcotest.(check bool) "b=7 safe with margin" true (margin > 0.)
  | Safety.Violated _ -> Alcotest.fail "b=7 should be safe"

let test_validation () =
  let di = growth () in
  Alcotest.check_raises "no constraints"
    (Invalid_argument "Safety.verify: no constraints") (fun () ->
      ignore (Safety.verify di ~x0:[| 0.5 |] ~horizon:1. []));
  Alcotest.check_raises "dimension"
    (Invalid_argument "Safety.verify: constraint c dimension mismatch")
    (fun () ->
      ignore
        (Safety.verify di ~x0:[| 0.5 |] ~horizon:1.
           [ { Safety.label = "c"; normal = [| 1.; 0. |]; bound = 1. } ]))

let suites =
  [
    ( "safety",
      [
        Alcotest.test_case "safe verdict with margin" `Quick test_safe_case;
        Alcotest.test_case "violation with witness" `Quick test_violated_case;
        Alcotest.test_case "lower-bound constraints" `Quick test_ge_constraint;
        Alcotest.test_case "initial violation" `Quick test_initial_violation;
        Alcotest.test_case "multiple constraints" `Quick test_multiple_constraints;
        Alcotest.test_case "SIR design verification" `Slow test_sir_design_check;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
