let () =
  Alcotest.run "umf_diffinc"
    (Test_di.suites @ Test_pontryagin.suites @ Test_hull.suites
   @ Test_uncertain.suites @ Test_reach.suites @ Test_birkhoff.suites
   @ Test_template.suites @ Test_scenario.suites @ Test_certified.suites @ Test_safety.suites)
